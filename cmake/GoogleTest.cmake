# Resolve a GoogleTest to link the suites against, in order of preference:
#
#  1. A system-installed GTest (libgtest-dev providing a CMake config or the
#     classic FindGTest module) — the offline-friendly default.
#  2. A vendored source tree: either third_party/googletest in this repo or
#     the Debian-style /usr/src/googletest source drop.
#  3. FetchContent from the upstream release tarball (needs network); enable
#     with -DDYNATUNE_FETCH_GTEST=ON to force this path.
#
# Afterwards the canonical GTest::gtest / GTest::gtest_main targets exist.

option(DYNATUNE_FETCH_GTEST "Download GoogleTest with FetchContent instead of using a system/vendored copy" OFF)

set(_dynatune_gtest_found FALSE)

if(NOT DYNATUNE_FETCH_GTEST)
  find_package(GTest QUIET)
  if(GTest_FOUND OR GTEST_FOUND)
    set(_dynatune_gtest_found TRUE)
    message(STATUS "dynatune: using system GoogleTest")
  endif()
endif()

if(NOT _dynatune_gtest_found AND NOT DYNATUNE_FETCH_GTEST)
  foreach(_gtest_src
      "${CMAKE_SOURCE_DIR}/third_party/googletest"
      "/usr/src/googletest")
    if(EXISTS "${_gtest_src}/CMakeLists.txt")
      message(STATUS "dynatune: building vendored GoogleTest from ${_gtest_src}")
      set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
      add_subdirectory("${_gtest_src}" "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
      set(_dynatune_gtest_found TRUE)
      break()
    endif()
  endforeach()
endif()

if(NOT _dynatune_gtest_found)
  message(STATUS "dynatune: fetching GoogleTest v1.14.0 with FetchContent")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()

# Older FindGTest modules and in-tree builds export gtest/gtest_main without
# the GTest:: namespace; alias them so the rest of the build can rely on it.
if(NOT TARGET GTest::gtest AND TARGET gtest)
  add_library(GTest::gtest ALIAS gtest)
endif()
if(NOT TARGET GTest::gtest_main AND TARGET gtest_main)
  add_library(GTest::gtest_main ALIAS gtest_main)
endif()

include(GoogleTest)
