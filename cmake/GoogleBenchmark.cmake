# Resolve Google Benchmark for bench/micro_core, in order of preference:
#
#  1. A system-installed library (libbenchmark-dev) — the offline-friendly
#     default.
#  2. FetchContent from the upstream release (needs network); enable with
#     -DDYNATUNE_FETCH_BENCHMARK=ON. CI uses this so micro_core is built and
#     smoke-run even on bare runners instead of being silently skipped.
#
# Afterwards `dynatune_benchmark_FOUND` says whether benchmark::benchmark
# exists to link against.

option(DYNATUNE_FETCH_BENCHMARK
  "Download Google Benchmark with FetchContent instead of using a system copy" OFF)

set(dynatune_benchmark_FOUND FALSE)

if(NOT DYNATUNE_FETCH_BENCHMARK)
  find_package(benchmark QUIET)
  if(benchmark_FOUND)
    set(dynatune_benchmark_FOUND TRUE)
    message(STATUS "dynatune: using system Google Benchmark")
  endif()
endif()

if(NOT dynatune_benchmark_FOUND AND DYNATUNE_FETCH_BENCHMARK)
  message(STATUS "dynatune: fetching Google Benchmark v1.8.4 with FetchContent")
  include(FetchContent)
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_INSTALL_DOCS OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_WERROR OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(googlebenchmark
    GIT_REPOSITORY https://github.com/google/benchmark.git
    GIT_TAG v1.8.4
    GIT_SHALLOW TRUE)
  FetchContent_MakeAvailable(googlebenchmark)
  set(dynatune_benchmark_FOUND TRUE)
endif()

if(NOT dynatune_benchmark_FOUND)
  message(STATUS "dynatune: Google Benchmark not found, micro_core will be skipped "
                 "(install libbenchmark-dev or configure with -DDYNATUNE_FETCH_BENCHMARK=ON)")
endif()
