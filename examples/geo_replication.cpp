// Geo-replicated SMR (the paper's §II-C motivation): five servers spread
// across AWS regions with heterogeneous 105-310 ms RTTs. Shows per-path
// tuning — each follower gets its own Et and its own heartbeat pace — and
// compares failover against static baseline Raft on the same topology.
//
// Run: ./geo_replication [--kills=N]
#include <cstdio>

#include "common/cli.hpp"
#include "scenario/runner.hpp"

using namespace dyna;
using namespace std::chrono_literals;

namespace {

scenario::ScenarioResult run_failovers(bool dynatune, std::size_t kills) {
  scenario::ScenarioSpec spec;
  spec.name = "geo-replication";
  spec.variant = dynatune ? scenario::Variant::Dynatune : scenario::Variant::Raft;
  spec.servers = 5;
  spec.seed = 7;
  spec.topology.wan = cluster::WanTopology::aws_five_regions();
  spec.await_leader = 60s;
  spec.warmup = 12s;
  spec.sample_paths = true;  // per-follower RTT / Et / h after warm-up
  spec.faults = scenario::FaultPlan::leader_kills(kills, 12s);
  spec.faults.clock_skew_ms = 15.0;  // NTP-grade clocks across regions
  return scenario::ScenarioRunner::run(spec);
}

void print_paths(const scenario::ScenarioResult& r) {
  const auto& names = cluster::WanTopology::aws_five_regions().region_names;
  if (r.paths_leader == kNoNode) return;
  std::printf("\n%s leader: %s\n", r.variant.c_str(),
              names[static_cast<std::size_t>(r.paths_leader)].c_str());
  for (const auto& p : r.paths) {
    std::printf("  %-11s rtt=%3.0f ms  Et=%6.1f ms  h=%6.1f ms\n",
                names[static_cast<std::size_t>(p.follower)].c_str(), p.rtt_ms, p.et_ms, p.h_ms);
  }
}

double mean_ots(const scenario::ScenarioResult& r) {
  return scenario::summarize_failovers(r.failovers).ots.mean;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{10})));

  std::printf("Geo-replicated KV store across Tokyo / London / California / Sydney / Sao Paulo\n");
  const scenario::ScenarioResult raft = run_failovers(false, kills);
  print_paths(raft);
  const scenario::ScenarioResult dyna = run_failovers(true, kills);
  print_paths(dyna);

  const double raft_ots = mean_ots(raft);
  const double dyna_ots = mean_ots(dyna);
  std::printf("\nmean out-of-service time over %zu leader failures:\n", kills);
  std::printf("  Raft     : %7.0f ms\n", raft_ots);
  std::printf("  Dynatune : %7.0f ms  (%.0f%% lower)\n", dyna_ots,
              100.0 * (1.0 - dyna_ots / raft_ots));
  return 0;
}
