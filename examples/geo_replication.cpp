// Geo-replicated SMR (the paper's §II-C motivation): five servers spread
// across AWS regions with heterogeneous 105-310 ms RTTs. Shows per-path
// tuning — each follower gets its own Et and its own heartbeat pace — and
// compares failover against static baseline Raft on the same topology.
//
// Run: ./geo_replication [--kills=N]
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/topology.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"

using namespace dyna;
using namespace std::chrono_literals;

namespace {

double run_failovers(bool dynatune, std::size_t kills, bool print_paths) {
  cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(5, 7)
                                        : cluster::make_raft_config(5, 7);
  cluster::Cluster c(std::move(cfg));
  const auto topo = cluster::WanTopology::aws_five_regions();
  topo.apply(c.network());

  if (!c.await_leader(60s)) return -1.0;
  c.sim().run_for(12s);

  if (print_paths) {
    const NodeId leader = c.current_leader();
    std::printf("\n%s leader: %s\n", dynatune ? "Dynatune" : "Raft",
                topo.region_names[static_cast<std::size_t>(leader)].c_str());
    for (const NodeId id : c.server_ids()) {
      if (id == leader) continue;
      std::printf("  %-11s rtt=%3.0f ms  Et=%6.1f ms  h=%6.1f ms\n",
                  topo.region_names[static_cast<std::size_t>(id)].c_str(),
                  to_ms(c.network().condition(leader, id).rtt),
                  to_ms(c.node(id).policy().election_timeout()),
                  to_ms(c.node(leader).effective_heartbeat_interval(id)));
    }
  }

  cluster::FailoverOptions opt;
  opt.kills = kills;
  opt.settle = 12s;
  opt.clock_skew_ms = 15.0;  // NTP-grade clocks across regions
  const auto samples = cluster::FailoverExperiment::run(c, opt);
  Welford ots;
  for (const auto& s : samples) {
    if (s.ok) ots.add(s.ots_ms);
  }
  return ots.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{10})));

  std::printf("Geo-replicated KV store across Tokyo / London / California / Sydney / Sao Paulo\n");
  const double raft_ots = run_failovers(false, kills, true);
  const double dyna_ots = run_failovers(true, kills, true);

  std::printf("\nmean out-of-service time over %zu leader failures:\n", kills);
  std::printf("  Raft     : %7.0f ms\n", raft_ots);
  std::printf("  Dynatune : %7.0f ms  (%.0f%% lower)\n", dyna_ots,
              100.0 * (1.0 - dyna_ots / raft_ots));
  return 0;
}
