// Packet-loss storm: a cloud path degrades from clean to 30 % loss and back
// (the GCP incident pattern the paper cites). Dynatune raises the heartbeat
// rate just enough to keep the delivery target, then relaxes — no elections,
// no wasted CPU. The textual version of Fig 7 for one cluster size.
//
// Run: ./loss_storm [--servers=N]
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "common/cli.hpp"
#include "dynatune/policy.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto servers = static_cast<std::size_t>(cli.get_or("servers", std::int64_t{5}));

  cluster::ClusterConfig cfg = cluster::make_dynatune_config(servers, 5);
  net::LinkCondition base;
  base.rtt = 200ms;
  base.jitter = 2ms;
  cfg.links = net::ConditionSchedule::loss_ramp_up_down(base, 0.0, 0.30, 0.10, 25s);
  cluster::CostModel cost;
  cost.charge_tuning = true;
  cfg.perf_cost = cost;
  cluster::Cluster c(std::move(cfg));

  if (!c.await_leader(30s)) {
    std::printf("no leader - aborting\n");
    return 1;
  }
  const TimePoint start = c.sim().now();

  std::printf("%zu servers, RTT 200 ms, loss ramps 0 -> 30%% -> 0\n\n", servers);
  std::printf("%8s %9s %8s %10s %14s %10s\n", "t(s)", "loss(%)", "K", "h(ms)", "hb/s(leader)",
              "cpu(%)");
  std::uint64_t last_sent = 0;
  for (int tick = 0; tick < 35; ++tick) {
    c.sim().run_for(5s);
    const NodeId leader = c.current_leader();
    if (leader == kNoNode) continue;

    // Average h and implied K across followers.
    double h_mean = 0.0;
    int n = 0;
    for (const NodeId id : c.server_ids()) {
      if (id == leader) continue;
      h_mean += to_ms(c.node(leader).effective_heartbeat_interval(id));
      ++n;
    }
    h_mean /= n;
    double et_sample = 0.0;
    for (const NodeId id : c.server_ids()) {
      if (id == leader) continue;
      et_sample = to_ms(c.node(id).policy().election_timeout());
      break;
    }
    const std::uint64_t sent = c.network().traffic(leader).sent;
    const double hb_rate = static_cast<double>(sent - last_sent) / 5.0;
    last_sent = sent;

    std::printf("%8.0f %9.1f %8.1f %10.1f %14.0f %10.1f\n", to_sec(c.sim().now()),
                c.network().condition(0, 1).loss * 100.0, et_sample / h_mean, h_mean, hb_rate,
                c.perf()->cpu_percent_at(leader, c.sim().now() - 5s));
  }

  std::printf("\nelections during the storm: %zu (heartbeat redundancy kept detection quiet)\n",
              c.probe().elections_started_in(start, c.sim().now()));
  return 0;
}
