// Packet-loss storm: a cloud path degrades from clean to 30 % loss and back
// (the GCP incident pattern the paper cites). Dynatune raises the heartbeat
// rate just enough to keep the delivery target, then relaxes — no elections,
// no wasted CPU. The textual version of Fig 7 for one cluster size.
//
// Run: ./loss_storm [--servers=N]
#include <cstdio>

#include "common/cli.hpp"
#include "scenario/runner.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto servers = static_cast<std::size_t>(cli.get_or("servers", std::int64_t{5}));

  net::LinkCondition base;
  base.rtt = 200ms;
  base.jitter = 2ms;

  scenario::ScenarioSpec spec;
  spec.name = "loss-storm";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = servers;
  spec.seed = 5;
  spec.topology.schedule = net::ConditionSchedule::loss_ramp_up_down(base, 0.0, 0.30, 0.10, 25s);
  cluster::CostModel cost;
  cost.charge_tuning = true;
  spec.perf_cost = cost;
  spec.samples = scenario::SamplePlan::every(5s, 175s, /*kth=*/3);

  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  if (!r.leader_elected) {
    std::printf("no leader - aborting\n");
    return 1;
  }

  std::printf("%zu servers, RTT 200 ms, loss ramps 0 -> 30%% -> 0\n\n", servers);
  std::printf("%8s %9s %8s %10s %14s %10s\n", "t(s)", "loss(%)", "K", "h(ms)", "hb/s(leader)",
              "cpu(%)");
  for (const auto& p : r.samples) {
    if (p.h_mean_ms <= 0.0) continue;  // leaderless bin
    // Implied K = Et / h: how many heartbeats Dynatune spends per timeout to
    // hold the delivery target at the current loss rate.
    std::printf("%8.0f %9.1f %8.1f %10.1f %14.0f %10.1f\n", p.t_sec, p.loss_pct,
                p.et_median_ms / p.h_mean_ms, p.h_mean_ms, p.hb_per_sec, p.leader_cpu_pct);
  }

  std::printf("\nelections during the storm: %zu (heartbeat redundancy kept detection quiet)\n",
              r.elections);
  return 0;
}
