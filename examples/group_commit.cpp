// Group commit at production intensity: a closed-loop client fleet over a
// mixed GET/PUT workload, run twice through the scenario API — batching off,
// then batching on with the ReadIndex fast path — under the batch-aware CPU
// cost model. Prints the side-by-side throughput/latency comparison and the
// leader's coalescing telemetry.
//
// Run: ./group_commit [--clients=48] [--get-ratio=0.5] [--seconds=5]
//                     [--seed=7]
#include <cstdio>

#include "common/cli.hpp"
#include "scenario/runner.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto clients = static_cast<std::size_t>(cli.get_or("clients", std::int64_t{48}));
  const double get_ratio = cli.get_or("get-ratio", 0.5);
  const auto seconds = cli.get_or("seconds", std::int64_t{5});
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}));

  // One spec describes the deployment and the workload; only the batching
  // knobs differ between the two runs.
  scenario::ScenarioSpec spec;
  spec.name = "group-commit";
  spec.servers = 5;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(/*rtt=*/2ms);
  spec.durable_log = false;
  // Batch-aware CPU model: a commit round costs 2 ms fixed + 50 us per
  // command it carries. Unbatched, every command is its own round.
  spec.round_service_time = 2ms;
  spec.command_service_time = 50us;

  wl::MixConfig mix;
  mix.clients = clients;
  mix.get_ratio = get_ratio;
  mix.value_bytes_min = 16;
  mix.value_bytes_max = 128;
  mix.duration = std::chrono::seconds(seconds);
  spec.workload = scenario::WorkloadPlan::closed_loop(mix);

  std::printf("closed loop: %zu sessions, %.0f%% GET, %lld sim-s per mode\n\n", clients,
              get_ratio * 100.0, static_cast<long long>(seconds));

  wl::MixResult results[2];
  for (const bool batched : {false, true}) {
    spec.group_commit = batched;
    spec.read_index = batched;  // GETs skip the log in the batched config

    // materialize + run_on (instead of run) keeps the live cluster around
    // for the leader-side telemetry below.
    auto c = scenario::ScenarioRunner::materialize(spec);
    const scenario::ScenarioResult r = scenario::ScenarioRunner::run_on(*c, spec);
    if (!r.leader_elected || r.mix.empty()) {
      std::printf("no leader / no workload result - aborting\n");
      return 1;
    }
    const wl::MixResult& m = results[batched ? 1 : 0] = r.mix[0];

    raft::RaftNode& leader = c->node(c->current_leader());
    std::printf("%s:\n", batched ? "batching on (+ ReadIndex)" : "batching off");
    std::printf("  %.0f req/s (%.0f GET + %.0f PUT), mean %.1f ms, p99 %.1f ms\n",
                m.achieved_rps, m.get_rps, m.put_rps, m.mean_latency_ms, m.p99_latency_ms);
    std::printf("  leader: %llu batch frames carried %llu commands; "
                "%llu reads served without a log write; log grew to %llu entries\n\n",
                static_cast<unsigned long long>(leader.batches_sealed()),
                static_cast<unsigned long long>(leader.batched_commands()),
                static_cast<unsigned long long>(leader.reads_served()),
                static_cast<unsigned long long>(leader.last_log_index()));
  }

  std::printf("group commit speedup: %.1fx throughput, p99 %.1f ms -> %.1f ms\n",
              results[1].achieved_rps / results[0].achieved_rps,
              results[0].p99_latency_ms, results[1].p99_latency_ms);
  return 0;
}
