// Sharded KV: four independent Raft groups on one shared simulated network,
// a keyspace router spreading client traffic across them, and a shard-local
// fault that the other shards never notice.
//
// Walks the src/shard/ surface end to end: ShardedCluster (k groups, one
// Simulator/Network), ShardRouter (hash partitioning + leader cache),
// ShardedKvClient (route-by-key with redirect handling), and a closed-loop
// pool whose sessions span every shard.
//
// Run: ./sharded_kv
#include <cstdio>

#include "shard/client.hpp"
#include "shard/router.hpp"
#include "shard/sharded_cluster.hpp"
#include "workload/closed_loop.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main() {
  // 1. Describe the deployment: 4 consensus groups of 3 servers each, all
  //    multiplexed onto ONE simulated network (ids 0..11). The group field
  //    is a per-group template; each group derives its own seed.
  shard::ShardedConfig cfg;
  cfg.shards = 4;
  cfg.partition = shard::PartitionMode::Hash;
  cfg.group = cluster::make_dynatune_config(/*servers=*/3, /*seed=*/2025);

  shard::ShardedCluster sc(cfg);
  if (!sc.await_all_leaders(30s)) {
    std::printf("not every shard elected a leader - aborting\n");
    return 1;
  }
  for (std::size_t g = 0; g < sc.shards(); ++g) {
    std::printf("shard %zu: servers", g);
    for (const NodeId id : sc.shard(g).server_ids()) std::printf(" %d", id);
    std::printf(", leader %d\n", sc.shard(g).current_leader());
  }

  // 2. Talk to the whole keyspace through one routed client. Keys hash to
  //    shards deterministically; a completed op publishes the leader it
  //    found, so later sessions skip the leader walk.
  shard::ShardRouter router = sc.make_router();
  shard::ShardedKvClient client(sc, router, sc.fork_rng(1));
  for (const char* key : {"alpha", "bravo", "charlie", "delta", "echo"}) {
    client.put(key, std::string("value-of-") + key, [key, &client](const kv::ClientResult& r) {
      std::printf("PUT %-7s -> shard %zu (%s, %.1f ms)\n", key, client.shard_of(key),
                  r.ok ? "ok" : "FAILED", to_ms(r.latency));
    });
    sc.sim().run_for(1s);
  }

  // 3. Drive all four groups at once: a closed-loop pool whose sessions
  //    route per-op through the router. Aggregate and per-shard throughput
  //    come back separately.
  wl::MixConfig mix;
  mix.clients = 8;
  mix.get_ratio = 0.5;
  mix.duration = 5s;
  wl::ClosedLoopPool pool(sc, router, mix, sc.fork_rng(2));
  const wl::MixResult result = pool.run();
  std::printf("\nclosed loop: %.0f req/s aggregate (%llu ops, p99 %.1f ms)\n",
              result.achieved_rps, static_cast<unsigned long long>(result.completed),
              result.p99_latency_ms);
  for (std::size_t g = 0; g < sc.shards(); ++g) {
    std::printf("  shard %zu: %llu completed\n", g,
                static_cast<unsigned long long>(pool.per_shard()[g].completed));
  }

  // 4. Shard-local fault: crash shard 0's leader. Shard 0 re-elects; the
  //    other shards' service never blips (their leaders and terms hold).
  const NodeId victim = sc.shard(0).current_leader();
  std::printf("\ncrashing shard 0's leader (server %d) ...\n", victim);
  sc.shard(0).crash(victim);
  if (!sc.await_all_leaders(60s)) {
    std::printf("shard 0 failed to re-elect - aborting\n");
    return 1;
  }
  std::printf("shard 0 re-elected: leader %d\n", sc.shard(0).current_leader());
  for (std::size_t g = 1; g < sc.shards(); ++g) {
    std::printf("  shard %zu leader still %d, available=%d\n", g,
                sc.shard(g).current_leader(),
                cluster::service_available(sc.shard(g)) ? 1 : 0);
  }

  // The routed client keeps working across the failover - the stale leader
  // hint rides KvClient's redirect/retry machinery to the new leader.
  bool ok = false;
  client.put("alpha", "post-failover", [&ok](const kv::ClientResult& r) { ok = r.ok; });
  sc.sim().run_for(10s);
  std::printf("\nPUT alpha after failover: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
