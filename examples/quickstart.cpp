// Quickstart: build a 5-server Dynatune cluster, write/read through the KV
// API, kill the leader, and watch Dynatune's fast failover — all in a few
// dozen lines of user-facing API.
//
// Run: ./quickstart
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "kvstore/client.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main() {
  // 1. A five-server cluster with Dynatune enabled, 100 ms RTT links.
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(/*servers=*/5, /*seed=*/2024);
  net::LinkCondition link;
  link.rtt = 100ms;
  link.jitter = 2ms;
  cfg.links = net::ConditionSchedule::constant(link);
  cluster::Cluster c(std::move(cfg));

  // 2. Wait for the initial election and let Dynatune warm up.
  if (!c.await_leader(30s)) {
    std::printf("no leader elected - aborting\n");
    return 1;
  }
  c.sim().run_for(10s);
  const NodeId leader = c.current_leader();
  std::printf("leader: server %d (term %llu)\n", leader,
              static_cast<unsigned long long>(c.node(leader).term()));

  // Dynatune telemetry: tuned election timeouts per follower.
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    std::printf("  server %d: Et=%.1f ms  randomizedTimeout=%.1f ms  (leader h=%.1f ms)\n", id,
                to_ms(c.node(id).policy().election_timeout()),
                to_ms(c.node(id).randomized_timeout()),
                to_ms(c.node(leader).effective_heartbeat_interval(id)));
  }

  // 3. Talk to the service through a client session.
  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(1));
  client.put("greeting", "hello from dynatune", [](const kv::ClientResult& r) {
    std::printf("PUT greeting -> %s (%.1f ms)\n", r.value.c_str(), to_ms(r.latency));
  });
  c.sim().run_for(2s);
  client.get("greeting", [](const kv::ClientResult& r) {
    std::printf("GET greeting -> \"%s\" (%.1f ms)\n", r.value.c_str(), to_ms(r.latency));
  });
  c.sim().run_for(2s);

  // 4. Freeze the leader ("container sleep") and measure the failover.
  std::printf("\nfreezing leader %d ...\n", leader);
  const TimePoint t_kill = c.sim().now();
  c.pause(leader);
  c.sim().run_for(10s);

  const auto detection = c.probe().first_timeout_after(t_kill);
  const auto new_leader = c.probe().first_leader_after(t_kill, leader);
  if (detection && new_leader) {
    std::printf("failure detected after %.0f ms; server %d took over after %.0f ms (OTS)\n",
                to_ms(detection->when - t_kill), new_leader->leader,
                to_ms(new_leader->when - t_kill));
  }

  // 5. The service keeps working; the old leader rejoins as a follower.
  client.put("after-failover", "still available", [](const kv::ClientResult& r) {
    std::printf("PUT after-failover -> %s\n", r.ok ? r.value.c_str() : "FAILED");
  });
  c.sim().run_for(5s);
  c.resume(leader);
  c.sim().run_for(5s);
  std::printf("old leader role after rejoin: %s\n",
              std::string(raft::to_string(c.node(leader).role())).c_str());
  return 0;
}
