// Quickstart: describe a 5-server Dynatune cluster as a ScenarioSpec, talk
// to it through the KV API, then measure a leader failover by declaring a
// fault plan and letting ScenarioRunner execute it — all in a few dozen
// lines of user-facing API.
//
// Run: ./quickstart
#include <cstdio>

#include "kvstore/client.hpp"
#include "scenario/runner.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main() {
  // 1. One value describes the whole deployment: variant, size, seed, links.
  scenario::ScenarioSpec spec;
  spec.name = "quickstart";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 5;
  spec.seed = 2024;
  spec.topology = scenario::TopologySpec::constant(/*rtt=*/100ms, /*jitter=*/2ms);

  // 2. Materialize it into a live cluster, wait for the initial election,
  //    and let Dynatune warm up.
  auto c = scenario::ScenarioRunner::materialize(spec);
  if (!c->await_leader(30s)) {
    std::printf("no leader elected - aborting\n");
    return 1;
  }
  c->sim().run_for(10s);
  const NodeId leader = c->current_leader();
  std::printf("leader: server %d (term %llu)\n", leader,
              static_cast<unsigned long long>(c->node(leader).term()));

  // Dynatune telemetry: tuned election timeouts per follower.
  for (const NodeId id : c->server_ids()) {
    if (id == leader) continue;
    std::printf("  server %d: Et=%.1f ms  randomizedTimeout=%.1f ms  (leader h=%.1f ms)\n", id,
                to_ms(c->node(id).policy().election_timeout()),
                to_ms(c->node(id).randomized_timeout()),
                to_ms(c->node(leader).effective_heartbeat_interval(id)));
  }

  // 3. Talk to the service through a client session.
  kv::KvClient client(c->sim(), c->network(), c->server_ids(), c->fork_rng(1));
  client.put("greeting", "hello from dynatune", [](const kv::ClientResult& r) {
    std::printf("PUT greeting -> %s (%.1f ms)\n", r.value.c_str(), to_ms(r.latency));
  });
  c->sim().run_for(2s);
  client.get("greeting", [](const kv::ClientResult& r) {
    std::printf("GET greeting -> \"%s\" (%.1f ms)\n", r.value.c_str(), to_ms(r.latency));
  });
  c->sim().run_for(2s);

  // 4. Failover measurement is declarative: add a fault plan to the same
  //    spec and run it. The runner freezes the leader ("container sleep"),
  //    reads detection / OTS off the probe's event stream, and revives it.
  std::printf("\nmeasuring one leader failover on a fresh run of the same spec ...\n");
  spec.warmup = 10s;
  spec.faults = scenario::FaultPlan::leader_kills(/*kills=*/1, /*settle=*/2s);
  const scenario::ScenarioResult result = scenario::ScenarioRunner::run(spec);
  for (const auto& s : result.failovers) {
    if (!s.ok) continue;
    std::printf("failure detected after %.0f ms; new leader after %.0f ms (OTS)\n",
                s.detection_ms, s.ots_ms);
    std::printf("(paper §IV-B1: Dynatune detection 237 ms vs Raft 1205 ms)\n");
  }

  // 5. The original cluster keeps working the whole time.
  client.put("still-here", "service available", [](const kv::ClientResult& r) {
    std::printf("PUT still-here -> %s\n", r.ok ? r.value.c_str() : "FAILED");
  });
  c->sim().run_for(5s);
  std::printf("cluster healthy: %s\n", cluster::service_available(*c) ? "yes" : "no");
  return 0;
}
