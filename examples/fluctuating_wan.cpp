// Live view of Dynatune adapting to a fluctuating WAN: the RTT ramps up and
// back down while we print the tuned parameters every few seconds — the
// textual version of the paper's Fig 6a.
//
// Run: ./fluctuating_wan
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main() {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(5, 11);
  net::LinkCondition base;
  base.jitter = 2ms;
  // 40 -> 200 -> 40 ms in 20 ms steps, 8 s per step (compressed Fig 6a).
  cfg.links = net::ConditionSchedule::rtt_ramp_up_down(base, 40ms, 200ms, 20ms, 8s);
  cluster::Cluster c(std::move(cfg));

  if (!c.await_leader(30s)) {
    std::printf("no leader - aborting\n");
    return 1;
  }

  std::printf("%8s %8s %14s %16s %12s %6s\n", "t(s)", "rtt(ms)", "median Et(ms)",
              "3rd-rand(ms)", "leader h(ms)", "avail");
  for (int tick = 0; tick < 40; ++tick) {
    c.sim().run_for(4s);
    const NodeId leader = c.current_leader();

    // Median tuned election timeout across followers.
    std::vector<double> ets;
    double h_mean = 0.0;
    int h_n = 0;
    for (const NodeId id : c.server_ids()) {
      if (id == leader) continue;
      ets.push_back(to_ms(c.node(id).policy().election_timeout()));
      if (leader != kNoNode) {
        h_mean += to_ms(c.node(leader).effective_heartbeat_interval(id));
        ++h_n;
      }
    }
    std::sort(ets.begin(), ets.end());
    const double et_median = ets.empty() ? 0.0 : ets[ets.size() / 2];

    std::printf("%8.0f %8.0f %14.1f %16.1f %12.1f %6s\n", to_sec(c.sim().now()),
                to_ms(c.network().condition(0, 1).rtt), et_median,
                to_ms(c.randomized_timeout_kth(3)), h_n > 0 ? h_mean / h_n : 0.0,
                cluster::service_available(c) ? "yes" : "OTS");
  }

  std::printf("\ntimer expiries during the run: %zu, elections: %zu\n",
              c.probe().timeouts().size(),
              c.probe().elections_started_in(kSimEpoch, c.sim().now()));
  std::printf("(Dynatune follows the RTT with its tuned Et; pre-vote absorbs any\n"
              " false detections, so availability holds throughout the ramp.)\n");
  return 0;
}
