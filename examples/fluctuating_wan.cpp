// Live view of Dynatune adapting to a fluctuating WAN: the RTT ramps up and
// back down while the scenario's sampling plan records the tuned parameters
// every few seconds — the textual version of the paper's Fig 6a.
//
// Run: ./fluctuating_wan
#include <cstdio>

#include "scenario/runner.hpp"

using namespace dyna;
using namespace std::chrono_literals;

int main() {
  net::LinkCondition base;
  base.jitter = 2ms;

  scenario::ScenarioSpec spec;
  spec.name = "fluctuating-wan";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 5;
  spec.seed = 11;
  // 40 -> 200 -> 40 ms in 20 ms steps, 8 s per step (compressed Fig 6a).
  spec.topology.schedule = net::ConditionSchedule::rtt_ramp_up_down(base, 40ms, 200ms, 20ms, 8s);
  spec.samples = scenario::SamplePlan::every(4s, 160s, /*kth=*/3);

  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  if (!r.leader_elected) {
    std::printf("no leader - aborting\n");
    return 1;
  }

  std::printf("%8s %8s %14s %16s %12s %6s\n", "t(s)", "rtt(ms)", "median Et(ms)",
              "3rd-rand(ms)", "leader h(ms)", "avail");
  for (const auto& p : r.samples) {
    std::printf("%8.0f %8.0f %14.1f %16.1f %12.1f %6s\n", p.t_sec, p.rtt_ms, p.et_median_ms,
                p.randomized_kth_ms, p.h_mean_ms, p.available ? "yes" : "OTS");
  }

  std::printf("\ntimer expiries during the run: %zu, elections: %zu\n", r.timer_expiries,
              r.elections);
  std::printf("(Dynatune follows the RTT with its tuned Et; pre-vote absorbs any\n"
              " false detections, so availability holds throughout the ramp.)\n");
  return 0;
}
