// Log replication: commitment, catch-up, conflict resolution, client path.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "kvstore/client.hpp"
#include "kvstore/command.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

raft::Command make_cmd(const std::string& key, const std::string& value) {
  raft::Command cmd;
  cmd.payload = kv::encode(kv::KvCommand{kv::Op::Put, key, value, {}});
  return cmd;
}

TEST(Replication, SubmittedEntryCommitsEverywhere) {
  Cluster c(cluster::make_raft_config(5, 1));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const auto index = c.node(leader).submit(make_cmd("k", "v"));
  ASSERT_TRUE(index.has_value());
  c.sim().run_for(2s);
  for (const NodeId id : c.server_ids()) {
    EXPECT_GE(c.node(id).commit_index(), *index) << "node " << id;
    EXPECT_EQ(c.state_machine(id).data().at("k"), "v") << "node " << id;
  }
}

TEST(Replication, NonLeaderRejectsSubmit) {
  Cluster c(cluster::make_raft_config(3, 2));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    EXPECT_FALSE(c.node(id).submit(make_cmd("a", "b")).has_value());
  }
}

TEST(Replication, NoopCommittedAtLeadershipStart) {
  Cluster c(cluster::make_raft_config(3, 3));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(2s);
  const NodeId leader = c.current_leader();
  const auto& log = c.node(leader).log();
  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(log.front().command.is_noop());
  EXPECT_EQ(log.front().term, c.node(leader).term());
  EXPECT_GE(c.node(leader).commit_index(), log.front().index);
}

TEST(Replication, BatchOfEntriesReplicatesInOrder) {
  Cluster c(cluster::make_raft_config(5, 4));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c.node(leader).submit(make_cmd("k" + std::to_string(i), "v")).has_value());
  }
  c.sim().run_for(3s);
  for (const NodeId id : c.server_ids()) {
    EXPECT_EQ(c.state_machine(id).size(), 100u) << "node " << id;
    EXPECT_EQ(c.node(id).log().size(), c.node(leader).log().size());
  }
}

TEST(Replication, PausedFollowerCatchesUpOnResume) {
  Cluster c(cluster::make_raft_config(5, 5));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId lagger = leader == 0 ? 1 : 0;
  c.pause(lagger);
  for (int i = 0; i < 50; ++i) {
    c.node(leader).submit(make_cmd("k" + std::to_string(i), "v"));
  }
  c.sim().run_for(2s);
  EXPECT_LT(c.node(lagger).commit_index(), c.node(leader).commit_index());
  c.resume(lagger);
  c.sim().run_for(5s);
  EXPECT_EQ(c.node(lagger).commit_index(), c.node(leader).commit_index());
  EXPECT_EQ(c.state_machine(lagger).size(), 50u);
}

TEST(Replication, DivergentUncommittedEntriesAreTruncated) {
  // Partition the leader with one follower; its appends cannot commit. The
  // majority side elects a new leader and commits different entries. On heal
  // the minority's conflicting suffix must be truncated away.
  Cluster c(cluster::make_raft_config(5, 6));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(2s);
  const NodeId old_leader = c.current_leader();
  NodeId buddy = kNoNode;
  std::vector<NodeId> majority;
  for (const NodeId id : c.server_ids()) {
    if (id == old_leader) continue;
    if (buddy == kNoNode) {
      buddy = id;
    } else {
      majority.push_back(id);
    }
  }
  auto set_partition = [&](bool blocked) {
    for (const NodeId a : {old_leader, buddy}) {
      for (const NodeId b : majority) {
        c.network().set_blocked(a, b, blocked);
        c.network().set_blocked(b, a, blocked);
      }
    }
  };
  set_partition(true);

  // Minority side: uncommittable entries.
  for (int i = 0; i < 5; ++i) {
    c.node(old_leader).submit(make_cmd("stale" + std::to_string(i), "x"));
  }
  c.sim().run_for(10s);
  const auto stale_commit = c.node(old_leader).commit_index();

  // Majority side elects and commits fresh entries.
  raft::Term max_term = 0;
  for (const NodeId id : majority) max_term = std::max(max_term, c.node(id).term());
  NodeId new_leader = kNoNode;
  for (const NodeId id : majority) {
    if (c.node(id).is_leader() && c.node(id).term() == max_term) new_leader = id;
  }
  ASSERT_NE(new_leader, kNoNode);
  for (int i = 0; i < 5; ++i) {
    c.node(new_leader).submit(make_cmd("fresh" + std::to_string(i), "y"));
  }
  c.sim().run_for(3s);
  EXPECT_GT(c.node(new_leader).commit_index(), stale_commit);

  set_partition(false);
  c.sim().run_for(10s);

  // Everyone converges on the new leader's log; stale entries are gone.
  for (const NodeId id : c.server_ids()) {
    EXPECT_EQ(c.node(id).log().size(), c.node(new_leader).log().size()) << "node " << id;
    EXPECT_EQ(c.state_machine(id).data().count("stale0"), 0u) << "node " << id;
    EXPECT_EQ(c.state_machine(id).data().at("fresh0"), "y") << "node " << id;
  }
}

TEST(ClientPath, PutAndGetThroughKvClient) {
  Cluster c(cluster::make_raft_config(3, 7));
  ASSERT_TRUE(c.await_leader(30s));
  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(1));

  std::string put_result, get_result;
  client.put("alpha", "42", [&](const kv::ClientResult& r) {
    ASSERT_TRUE(r.ok);
    put_result = r.value;
  });
  c.sim().run_for(3s);
  EXPECT_TRUE(put_result.rfind("OK", 0) == 0) << put_result;

  client.get("alpha", [&](const kv::ClientResult& r) {
    ASSERT_TRUE(r.ok);
    get_result = r.value;
  });
  c.sim().run_for(3s);
  EXPECT_EQ(get_result, "42");
  EXPECT_EQ(client.completed(), 2u);
}

TEST(ClientPath, ClientFollowsLeaderRedirects) {
  Cluster c(cluster::make_raft_config(5, 8));
  ASSERT_TRUE(c.await_leader(30s));
  // A fresh client starts with a random target; redirects must route it.
  for (int attempt = 0; attempt < 5; ++attempt) {
    kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(100 + attempt));
    bool done = false;
    client.put("k" + std::to_string(attempt), "v", [&](const kv::ClientResult& r) {
      EXPECT_TRUE(r.ok);
      done = true;
    });
    c.sim().run_for(5s);
    EXPECT_TRUE(done);
  }
}

TEST(ClientPath, ClientSurvivesLeaderFailover) {
  Cluster c(cluster::make_raft_config(5, 9));
  ASSERT_TRUE(c.await_leader(30s));
  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(2));

  // Establish the leader as the client's target.
  bool warm = false;
  client.put("w", "1", [&](const kv::ClientResult& r) { warm = r.ok; });
  c.sim().run_for(3s);
  ASSERT_TRUE(warm);

  const NodeId old_leader = c.current_leader();
  c.pause(old_leader);
  bool done = false;
  client.put("after-failover", "2", [&](const kv::ClientResult& r) {
    EXPECT_TRUE(r.ok);
    done = true;
  });
  c.sim().run_for(30s);
  EXPECT_TRUE(done);
  EXPECT_GT(client.retries(), 0u);
  c.resume(old_leader);
}

}  // namespace
}  // namespace dyna
