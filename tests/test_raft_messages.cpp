// Wire-format helpers: message sizing, heartbeat classification, role names.
#include <gtest/gtest.h>

#include "raft/message.hpp"
#include "raft/types.hpp"

namespace dyna::raft {
namespace {

TEST(Messages, EmptyAppendIsHeartbeat) {
  AppendEntriesRequest req;
  EXPECT_TRUE(req.is_heartbeat());
  req.entries = EntryView::of({LogEntry{1, 1, Command{"x", kNoNode, 0}}});
  EXPECT_FALSE(req.is_heartbeat());
}

TEST(Messages, ApproxSizeGrowsWithEntries) {
  AppendEntriesRequest req;
  const std::size_t empty = approx_size(Message(req));
  req.entries = EntryView::of({LogEntry{1, 1, Command{std::string(100, 'a'), kNoNode, 0}}});
  const std::size_t one = approx_size(Message(req));
  req.entries = EntryView::of({LogEntry{1, 1, Command{std::string(100, 'a'), kNoNode, 0}},
                               LogEntry{1, 2, Command{std::string(100, 'b'), kNoNode, 0}}});
  const std::size_t two = approx_size(Message(req));
  EXPECT_GT(one, empty + 100);
  EXPECT_NEAR(static_cast<double>(two - one), static_cast<double>(one - empty), 1.0);
}

TEST(Messages, ApproxSizeCoversAllVariants) {
  EXPECT_GT(approx_size(Message(AppendEntriesRequest{})), 0u);
  EXPECT_GT(approx_size(Message(AppendEntriesResponse{})), 0u);
  EXPECT_GT(approx_size(Message(PreVoteRequest{})), 0u);
  EXPECT_GT(approx_size(Message(PreVoteResponse{})), 0u);
  EXPECT_GT(approx_size(Message(RequestVoteRequest{})), 0u);
  EXPECT_GT(approx_size(Message(RequestVoteResponse{})), 0u);
  EXPECT_GT(approx_size(Message(ClientRequest{})), 0u);
  EXPECT_GT(approx_size(Message(ClientResponse{})), 0u);
}

TEST(Messages, ClientPayloadCountsTowardSize) {
  ClientRequest small;
  ClientRequest big;
  big.command.payload = std::string(500, 'x');
  EXPECT_EQ(approx_size(Message(big)), approx_size(Message(small)) + 500);
}

TEST(Messages, HeartbeatMetaDefaults) {
  HeartbeatMeta meta;
  EXPECT_EQ(meta.id, 0u);
  EXPECT_FALSE(meta.measured_rtt.has_value());
}

TEST(Types, RoleNames) {
  EXPECT_EQ(to_string(Role::Follower), "follower");
  EXPECT_EQ(to_string(Role::PreCandidate), "pre-candidate");
  EXPECT_EQ(to_string(Role::Candidate), "candidate");
  EXPECT_EQ(to_string(Role::Leader), "leader");
}

TEST(Types, NoopDetection) {
  Command cmd;
  EXPECT_TRUE(cmd.is_noop());
  cmd.payload = "p";
  EXPECT_FALSE(cmd.is_noop());
}

TEST(Types, LogEntryEquality) {
  const LogEntry a{3, 7, Command{"x", 2, 9}};
  LogEntry b = a;
  EXPECT_EQ(a, b);
  b.term = 4;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dyna::raft
