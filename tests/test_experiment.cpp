// Experiment strategies behind the scenario API: failover measurement and
// fluctuation timelines, driven through ScenarioSpec/ScenarioRunner.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "scenario/runner.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

scenario::ScenarioSpec raft_spec(std::uint64_t seed, std::size_t servers = 5) {
  scenario::ScenarioSpec spec;
  spec.variant = scenario::Variant::Raft;
  spec.servers = servers;
  spec.seed = seed;
  return spec;
}

TEST(Failover, MeasuresDetectionAndOts) {
  scenario::ScenarioSpec spec = raft_spec(1);
  spec.faults = scenario::FaultPlan::leader_kills(3, 3s);
  const auto samples = scenario::ScenarioRunner::run(spec).failovers;
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) {
    ASSERT_TRUE(s.ok);
    EXPECT_GT(s.detection_ms, 0.0);
    EXPECT_GT(s.ots_ms, s.detection_ms);  // election comes after detection
    EXPECT_NEAR(s.election_ms, s.ots_ms - s.detection_ms, 1e-9);
    // Baseline Raft with Et=1000: detection within the randomized bound (plus
    // in-flight slack), i.e. far below the 10 s settle.
    EXPECT_LT(s.detection_ms, 2500.0);
    EXPECT_GT(s.mean_randomized_ms, 1000.0);
    EXPECT_LT(s.mean_randomized_ms, 2000.0);
  }
}

TEST(Failover, ClusterKeepsWorkingAcrossManyKills) {
  scenario::ScenarioSpec spec = raft_spec(2);
  spec.faults = scenario::FaultPlan::leader_kills(6, 2s);
  const auto result = scenario::ScenarioRunner::run(spec);
  std::size_t ok = 0;
  for (const auto& s : result.failovers) {
    if (s.ok) ++ok;
  }
  EXPECT_EQ(ok, result.failovers.size());
  EXPECT_EQ(result.failovers.size(), 6u);
}

TEST(Failover, ClockSkewPerturbsMeasurementsOnly) {
  // With skew the *measured* values wobble but stay plausible; the cluster
  // itself is unaffected (Raft never reads the probe's clock).
  scenario::ScenarioSpec spec = raft_spec(3);
  spec.faults = scenario::FaultPlan::leader_kills(3, 3s);
  spec.faults.clock_skew_ms = 20.0;
  const auto samples = scenario::ScenarioRunner::run(spec).failovers;
  for (const auto& s : samples) {
    ASSERT_TRUE(s.ok);
    EXPECT_GT(s.detection_ms, 500.0);
    EXPECT_LT(s.detection_ms, 3000.0);
  }
}

TEST(Timeline, SamplesTrackSchedule) {
  net::LinkCondition base;
  scenario::ScenarioSpec spec = raft_spec(4);
  spec.topology.schedule = net::ConditionSchedule::rtt_steps(base, {50ms, 150ms}, 10s);
  spec.samples = scenario::SamplePlan::every(1s, 16s);
  const auto result = scenario::ScenarioRunner::run(spec);
  ASSERT_TRUE(result.leader_elected);
  ASSERT_EQ(result.samples.size(), 16u);
  // Early samples see 50 ms, late ones 150 ms.
  EXPECT_NEAR(result.samples.front().rtt_ms, 50.0, 1e-9);
  EXPECT_NEAR(result.samples.back().rtt_ms, 150.0, 1e-9);
  for (const auto& p : result.samples) {
    EXPECT_TRUE(p.available);  // healthy cluster throughout
    EXPECT_GT(p.randomized_kth_ms, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.ots_seconds, 0.0);
}

TEST(Timeline, KthUsesRunningNodesOnly) {
  scenario::ScenarioSpec spec = raft_spec(5);
  spec.samples = scenario::SamplePlan::every(1s, 3s, /*kth=*/3);
  const auto result = scenario::ScenarioRunner::run(spec);
  ASSERT_TRUE(result.leader_elected);
  for (const auto& p : result.samples) {
    EXPECT_GE(p.randomized_kth_ms, 1000.0);  // baseline draws in [1000, 2000)
    EXPECT_LT(p.randomized_kth_ms, 2000.0);
  }
}

TEST(Probe, LeaderAndTimeoutQueries) {
  Cluster c(cluster::make_raft_config(3, 6));
  ASSERT_TRUE(c.await_leader(30s));
  EXPECT_FALSE(c.probe().leaders().empty());
  const auto first = c.probe().first_leader_after(kSimEpoch);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->leader, c.current_leader());
  // Exclusion filter skips the given node.
  const auto excluded = c.probe().first_leader_after(kSimEpoch, first->leader);
  if (excluded) {
    EXPECT_NE(excluded->leader, first->leader);
  }
}

TEST(Probe, ElectionCountsInWindow) {
  Cluster c(cluster::make_raft_config(3, 7));
  ASSERT_TRUE(c.await_leader(30s));
  const auto t0 = c.sim().now();
  EXPECT_GE(c.probe().elections_started_in(kSimEpoch, t0), 1u);
  c.sim().run_for(5s);
  EXPECT_EQ(c.probe().elections_started_in(t0, c.sim().now()), 0u);  // stable
}

TEST(Probe, ClockOffsetsShiftRecordedTimes) {
  cluster::Probe probe;
  probe.set_clock_offset(1, 50ms);
  probe.on_election_timeout(1, 3, kSimEpoch + 100ms);
  probe.on_election_timeout(2, 3, kSimEpoch + 100ms);
  ASSERT_EQ(probe.timeouts().size(), 2u);
  EXPECT_EQ(probe.timeouts()[0].when, kSimEpoch + 150ms);
  EXPECT_EQ(probe.timeouts()[1].when, kSimEpoch + 100ms);
}

}  // namespace
}  // namespace dyna
