// Experiment drivers: failover measurement and fluctuation timelines.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

TEST(Failover, MeasuresDetectionAndOts) {
  Cluster c(cluster::make_raft_config(5, 1));
  cluster::FailoverOptions opt;
  opt.kills = 3;
  opt.settle = 3s;
  const auto samples = cluster::FailoverExperiment::run(c, opt);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) {
    ASSERT_TRUE(s.ok);
    EXPECT_GT(s.detection_ms, 0.0);
    EXPECT_GT(s.ots_ms, s.detection_ms);  // election comes after detection
    EXPECT_NEAR(s.election_ms, s.ots_ms - s.detection_ms, 1e-9);
    // Baseline Raft with Et=1000: detection within the randomized bound (plus
    // in-flight slack), i.e. far below the 10 s settle.
    EXPECT_LT(s.detection_ms, 2500.0);
    EXPECT_GT(s.mean_randomized_ms, 1000.0);
    EXPECT_LT(s.mean_randomized_ms, 2000.0);
  }
}

TEST(Failover, ClusterKeepsWorkingAcrossManyKills) {
  Cluster c(cluster::make_raft_config(5, 2));
  cluster::FailoverOptions opt;
  opt.kills = 6;
  opt.settle = 2s;
  const auto samples = cluster::FailoverExperiment::run(c, opt);
  std::size_t ok = 0;
  for (const auto& s : samples) {
    if (s.ok) ++ok;
  }
  EXPECT_EQ(ok, samples.size());
}

TEST(Failover, ClockSkewPerturbsMeasurementsOnly) {
  // With skew the *measured* values wobble but stay plausible; the cluster
  // itself is unaffected (Raft never reads the probe's clock).
  Cluster c(cluster::make_raft_config(5, 3));
  cluster::FailoverOptions opt;
  opt.kills = 3;
  opt.settle = 3s;
  opt.clock_skew_ms = 20.0;
  const auto samples = cluster::FailoverExperiment::run(c, opt);
  for (const auto& s : samples) {
    ASSERT_TRUE(s.ok);
    EXPECT_GT(s.detection_ms, 500.0);
    EXPECT_LT(s.detection_ms, 3000.0);
  }
}

TEST(Timeline, SamplesTrackSchedule) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(5, 4);
  net::LinkCondition base;
  cfg.links = net::ConditionSchedule::rtt_steps(base, {50ms, 150ms}, 10s);
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));

  cluster::TimelineOptions opt;
  opt.duration = 16s;
  opt.sample_every = 1s;
  const auto points = cluster::run_randomized_timeline(c, opt);
  ASSERT_EQ(points.size(), 16u);
  // Early samples see 50 ms, late ones 150 ms.
  EXPECT_NEAR(points.front().rtt_ms, 50.0, 1e-9);
  EXPECT_NEAR(points.back().rtt_ms, 150.0, 1e-9);
  for (const auto& p : points) {
    EXPECT_FALSE(p.ots);  // healthy cluster throughout
    EXPECT_GT(p.randomized_kth_ms, 0.0);
  }
}

TEST(Timeline, KthUsesRunningNodesOnly) {
  Cluster c(cluster::make_raft_config(5, 5));
  ASSERT_TRUE(c.await_leader(30s));
  cluster::TimelineOptions opt;
  opt.duration = 3s;
  opt.kth = 3;
  const auto points = cluster::run_randomized_timeline(c, opt);
  for (const auto& p : points) {
    EXPECT_GE(p.randomized_kth_ms, 1000.0);  // baseline draws in [1000, 2000)
    EXPECT_LT(p.randomized_kth_ms, 2000.0);
  }
}

TEST(Probe, LeaderAndTimeoutQueries) {
  Cluster c(cluster::make_raft_config(3, 6));
  ASSERT_TRUE(c.await_leader(30s));
  EXPECT_FALSE(c.probe().leaders().empty());
  const auto first = c.probe().first_leader_after(kSimEpoch);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->leader, c.current_leader());
  // Exclusion filter skips the given node.
  const auto excluded = c.probe().first_leader_after(kSimEpoch, first->leader);
  if (excluded) {
    EXPECT_NE(excluded->leader, first->leader);
  }
}

TEST(Probe, ElectionCountsInWindow) {
  Cluster c(cluster::make_raft_config(3, 7));
  ASSERT_TRUE(c.await_leader(30s));
  const auto t0 = c.sim().now();
  EXPECT_GE(c.probe().elections_started_in(kSimEpoch, t0), 1u);
  c.sim().run_for(5s);
  EXPECT_EQ(c.probe().elections_started_in(t0, c.sim().now()), 0u);  // stable
}

TEST(Probe, ClockOffsetsShiftRecordedTimes) {
  cluster::Probe probe;
  probe.set_clock_offset(1, 50ms);
  probe.on_election_timeout(1, 3, kSimEpoch + 100ms);
  probe.on_election_timeout(2, 3, kSimEpoch + 100ms);
  ASSERT_EQ(probe.timeouts().size(), 2u);
  EXPECT_EQ(probe.timeouts()[0].when, kSimEpoch + 150ms);
  EXPECT_EQ(probe.timeouts()[1].when, kSimEpoch + 100ms);
}

}  // namespace
}  // namespace dyna
