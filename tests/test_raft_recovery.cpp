// Crash/recovery and pause/resume semantics.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "kvstore/command.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

raft::Command make_cmd(const std::string& key, const std::string& value) {
  raft::Command cmd;
  cmd.payload = kv::encode(kv::KvCommand{kv::Op::Put, key, value, {}});
  return cmd;
}

TEST(Recovery, CrashedNodeIsGone) {
  Cluster c(cluster::make_raft_config(3, 1));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId victim = leader == 0 ? 1 : 0;
  c.crash(victim);
  EXPECT_EQ(c.node_if_alive(victim), nullptr);
  c.sim().run_for(3s);
  EXPECT_NE(c.current_leader(), kNoNode);  // majority still serves
}

TEST(Recovery, RestartReplaysLogIntoFreshStateMachine) {
  Cluster c(cluster::make_raft_config(3, 2));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  for (int i = 0; i < 20; ++i) c.node(leader).submit(make_cmd("k" + std::to_string(i), "v"));
  c.sim().run_for(3s);

  const NodeId victim = leader == 0 ? 1 : 0;
  ASSERT_EQ(c.state_machine(victim).size(), 20u);
  c.crash(victim);
  c.sim().run_for(1s);
  c.restart(victim);
  c.sim().run_for(5s);

  EXPECT_EQ(c.state_machine(victim).size(), 20u);
  EXPECT_EQ(c.state_machine(victim).data(), c.state_machine(leader).data());
  EXPECT_EQ(c.node(victim).commit_index(), c.node(leader).commit_index());
}

TEST(Recovery, RestartedNodeRemembersTermAndVote) {
  Cluster c(cluster::make_raft_config(3, 3));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const raft::Term term = c.node(leader).term();
  const NodeId victim = leader == 0 ? 1 : 0;
  c.crash(victim);
  c.restart(victim);
  // Persistent term must survive the crash (never goes backwards).
  EXPECT_GE(c.node(victim).term(), term);
}

TEST(Recovery, CrashedLeaderIsReplacedAndRejoinsAsFollower) {
  Cluster c(cluster::make_raft_config(5, 4));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId old_leader = c.current_leader();
  for (int i = 0; i < 10; ++i) c.node(old_leader).submit(make_cmd("k" + std::to_string(i), "v"));
  c.sim().run_for(2s);
  c.crash(old_leader);
  c.sim().run_for(10s);
  const NodeId new_leader = c.current_leader();
  ASSERT_NE(new_leader, kNoNode);
  ASSERT_NE(new_leader, old_leader);
  c.restart(old_leader);
  c.sim().run_for(5s);
  EXPECT_FALSE(c.node(old_leader).is_leader());
  EXPECT_EQ(c.node(old_leader).leader_hint(), new_leader);
  EXPECT_EQ(c.state_machine(old_leader).data(), c.state_machine(new_leader).data());
}

TEST(Recovery, CommittedEntriesSurviveMinorityCrash) {
  Cluster c(cluster::make_raft_config(5, 5));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  c.node(leader).submit(make_cmd("durable", "yes"));
  c.sim().run_for(2s);
  // Crash two followers (minority) and restart them.
  std::vector<NodeId> victims;
  for (const NodeId id : c.server_ids()) {
    if (id != leader && victims.size() < 2) victims.push_back(id);
  }
  for (const NodeId v : victims) c.crash(v);
  c.sim().run_for(2s);
  for (const NodeId v : victims) c.restart(v);
  c.sim().run_for(5s);
  for (const NodeId id : c.server_ids()) {
    EXPECT_EQ(c.state_machine(id).data().at("durable"), "yes") << "node " << id;
  }
}

TEST(Pause, FrozenTimersResumeWithRemainingTime) {
  Cluster c(cluster::make_raft_config(5, 6));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId frozen = leader == 0 ? 1 : 0;
  const raft::Term before = c.node(frozen).term();
  c.pause(frozen);
  c.sim().run_for(30s);  // far longer than any election timeout
  EXPECT_EQ(c.node(frozen).term(), before);  // frozen: no timeouts fired
  c.resume(frozen);
  c.sim().run_for(3s);
  // Back in the flock, same leader, no disruption (pre-vote + frozen state).
  EXPECT_EQ(c.current_leader(), leader);
  EXPECT_EQ(c.node(frozen).leader_hint(), leader);
}

TEST(Pause, PausedNodeProcessesNothing) {
  Cluster c(cluster::make_raft_config(3, 7));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId frozen = leader == 0 ? 1 : 0;
  c.pause(frozen);
  const auto commit_before = c.node(frozen).commit_index();
  for (int i = 0; i < 10; ++i) c.node(leader).submit(make_cmd("k" + std::to_string(i), "v"));
  c.sim().run_for(3s);
  EXPECT_EQ(c.node(frozen).commit_index(), commit_before);
  c.resume(frozen);
  c.sim().run_for(5s);
  EXPECT_EQ(c.node(frozen).commit_index(), c.node(leader).commit_index());
}

TEST(Pause, DoublePauseAndResumeAreIdempotent) {
  Cluster c(cluster::make_raft_config(3, 8));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId frozen = leader == 0 ? 1 : 0;
  c.node(frozen).pause();
  c.node(frozen).pause();  // no-op
  EXPECT_TRUE(c.node(frozen).paused());
  c.node(frozen).resume();
  c.node(frozen).resume();  // no-op
  EXPECT_FALSE(c.node(frozen).paused());
  c.sim().run_for(2s);
  EXPECT_NE(c.current_leader(), kNoNode);
}

/// Crash-recovery property sweep: random crash/restart sequences never lose
/// committed data.
class RecoverySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoverySeedSweep, CommittedDataAlwaysSurvives) {
  Cluster c(cluster::make_raft_config(5, GetParam()));
  Rng rng(derive_seed(GetParam(), 0xFA11));
  ASSERT_TRUE(c.await_leader(60s));
  int written = 0;
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(c.await_leader(60s)) << "round " << round;
    c.sim().run_for(2s);
    const NodeId leader = c.current_leader();
    if (leader == kNoNode) continue;
    if (auto* n = c.node_if_alive(leader); n != nullptr && n->running()) {
      if (n->submit(make_cmd("round" + std::to_string(round), "v")).has_value()) ++written;
    }
    c.sim().run_for(2s);
    // Crash one random node and bring it back.
    const NodeId victim = static_cast<NodeId>(rng.uniform_index(c.size()));
    if (c.node_if_alive(victim) != nullptr) {
      c.crash(victim);
      c.sim().run_for(3s);
      c.restart(victim);
    }
    c.sim().run_for(3s);
  }
  c.sim().run_for(10s);
  ASSERT_TRUE(c.await_leader(60s));
  c.sim().run_for(5s);
  const NodeId leader = c.current_leader();
  ASSERT_NE(leader, kNoNode);
  EXPECT_GE(static_cast<int>(c.state_machine(leader).size()), written - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySeedSweep, ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace dyna
