// The paper's tuning formulas, including its own worked numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "dynatune/tuning.hpp"

namespace dyna::dt {
namespace {

using namespace std::chrono_literals;

DynatuneConfig base_config() {
  DynatuneConfig cfg;
  cfg.min_heartbeats_per_timeout = 1;  // exercise the raw paper formula
  return cfg;
}

TEST(ComputeK, PaperWorkedExample) {
  // p = 0.3, x = 0.999: K = ceil(log_0.3(0.001)) = ceil(5.737) = 6 (§III-D2).
  EXPECT_EQ(compute_k(0.3, 0.999, 1, 50), 6);
}

TEST(ComputeK, ZeroLossNeedsOneHeartbeat) {
  EXPECT_EQ(compute_k(0.0, 0.999, 1, 50), 1);
  EXPECT_EQ(compute_k(-0.1, 0.999, 1, 50), 1);
}

TEST(ComputeK, TotalLossClampsToMax) {
  EXPECT_EQ(compute_k(1.0, 0.999, 1, 50), 50);
  EXPECT_EQ(compute_k(0.9999, 0.999, 1, 50), 50);
}

TEST(ComputeK, KnownValuesAcrossLossLevels) {
  // ceil(ln(0.001)/ln(p)) for the paper's Fig 7 loss ladder.
  EXPECT_EQ(compute_k(0.05, 0.999, 1, 50), 3);
  EXPECT_EQ(compute_k(0.10, 0.999, 1, 50), 3);
  EXPECT_EQ(compute_k(0.15, 0.999, 1, 50), 4);
  EXPECT_EQ(compute_k(0.20, 0.999, 1, 50), 5);
  EXPECT_EQ(compute_k(0.25, 0.999, 1, 50), 5);
  EXPECT_EQ(compute_k(0.30, 0.999, 1, 50), 6);
}

TEST(ComputeK, TinyLossStillOne) {
  EXPECT_EQ(compute_k(1e-6, 0.999, 1, 50), 1);
  EXPECT_EQ(compute_k(0.0009, 0.999, 1, 50), 1);  // p < 1-x: one suffices
}

TEST(ComputeK, RespectsFloor) {
  EXPECT_EQ(compute_k(0.0, 0.999, 2, 50), 2);
  EXPECT_EQ(compute_k(0.3, 0.999, 10, 50), 10);
}

TEST(ComputeK, HigherTargetNeedsMoreHeartbeats) {
  const int k_999 = compute_k(0.2, 0.999, 1, 50);
  const int k_9 = compute_k(0.2, 0.9, 1, 50);
  EXPECT_GT(k_999, k_9);
}

TEST(ComputeEt, PaperFormulaMuPlusSSigma) {
  DynatuneConfig cfg = base_config();
  cfg.safety_factor = 2.0;
  EXPECT_EQ(compute_election_timeout(100.0, 10.0, cfg), from_ms(120.0));
}

TEST(ComputeEt, ZeroSigmaGivesMean) {
  DynatuneConfig cfg = base_config();
  EXPECT_EQ(compute_election_timeout(100.0, 0.0, cfg), from_ms(100.0));
}

TEST(ComputeEt, ClampedToMinimum) {
  DynatuneConfig cfg = base_config();
  cfg.min_election_timeout = 10ms;
  EXPECT_EQ(compute_election_timeout(0.5, 0.0, cfg), cfg.min_election_timeout);
}

TEST(ComputeEt, ClampedToMaximum) {
  DynatuneConfig cfg = base_config();
  cfg.max_election_timeout = 10s;
  EXPECT_EQ(compute_election_timeout(1e6, 0.0, cfg), cfg.max_election_timeout);
}

TEST(ComputeH, EvenDivisionOfEt) {
  DynatuneConfig cfg = base_config();
  EXPECT_EQ(compute_heartbeat_interval(from_ms(120.0), 6, cfg), from_ms(20.0));
  EXPECT_EQ(compute_heartbeat_interval(from_ms(100.0), 1, cfg), from_ms(100.0));
}

TEST(ComputeH, FlooredAtMinimum) {
  DynatuneConfig cfg = base_config();
  cfg.min_heartbeat = 1ms;
  EXPECT_EQ(compute_heartbeat_interval(from_ms(10.0), 50, cfg), cfg.min_heartbeat);
}

/// Property sweep over (p, x): the chosen K really achieves the delivery
/// target, and K-1 would not (minimality), within clamps.
class KTargetSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KTargetSweep, KIsMinimalAndSufficient) {
  const auto [p, x] = GetParam();
  const int k = compute_k(p, x, 1, 1000);
  // Sufficiency: 1 - p^K >= x.
  EXPECT_GE(1.0 - std::pow(p, k), x - 1e-12) << "p=" << p << " x=" << x;
  // Minimality: K-1 heartbeats would miss the target.
  if (k > 1) {
    EXPECT_LT(1.0 - std::pow(p, k - 1), x + 1e-12) << "p=" << p << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KTargetSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(0.9, 0.99, 0.999, 0.9999)));

/// Property sweep: h*K never exceeds Et (heartbeats fit inside the timeout),
/// and h respects the floor.
class HFitSweep : public ::testing::TestWithParam<double> {};

TEST_P(HFitSweep, HeartbeatsFitWithinEt) {
  DynatuneConfig cfg = base_config();
  const Duration et = from_ms(GetParam());
  for (int k = 1; k <= 50; ++k) {
    const Duration h = compute_heartbeat_interval(et, k, cfg);
    EXPECT_GE(h, cfg.min_heartbeat);
    if (h > cfg.min_heartbeat) {
      EXPECT_LE(h * k, et + Duration(k));  // integer division dust allowed
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ets, HFitSweep, ::testing::Values(20.0, 55.0, 100.0, 250.0, 1000.0));

}  // namespace
}  // namespace dyna::dt
