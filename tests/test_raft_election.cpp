// Leader-election behaviour: uniqueness, failover, pre-vote stickiness.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;
using testutil::count_leaders;
using testutil::start_cluster;

TEST(Election, FiveNodesElectExactlyOneLeader) {
  auto c = start_cluster(cluster::make_raft_config(5, 1));
  c->sim().run_for(2s);
  EXPECT_EQ(count_leaders(*c), 1u);
}

TEST(Election, ThreeNodeClusterWorks) {
  auto c = start_cluster(cluster::make_raft_config(3, 2));
  EXPECT_EQ(count_leaders(*c), 1u);
}

TEST(Election, SingleNodeClusterSelfElects) {
  auto c = start_cluster(cluster::make_raft_config(1, 3));
  EXPECT_TRUE(c->node(0).is_leader());
}

TEST(Election, AllNodesLearnTheLeader) {
  auto c = start_cluster(cluster::make_raft_config(5, 4));
  c->sim().run_for(2s);
  const NodeId leader = c->current_leader();
  for (const NodeId id : c->server_ids()) {
    EXPECT_EQ(c->node(id).leader_hint(), leader) << "node " << id;
  }
}

TEST(Election, LeaderPauseTriggersFailover) {
  auto c = start_cluster(cluster::make_raft_config(5, 5));
  const NodeId old_leader = c->current_leader();
  const raft::Term old_term = c->node(old_leader).term();
  c->pause(old_leader);
  const TimePoint t_kill = c->sim().now();
  c->sim().run_for(10s);
  const NodeId new_leader = c->current_leader();
  ASSERT_NE(new_leader, kNoNode);
  EXPECT_NE(new_leader, old_leader);
  EXPECT_GT(c->node(new_leader).term(), old_term);
  EXPECT_TRUE(c->probe().first_timeout_after(t_kill).has_value());
}

TEST(Election, ResumedOldLeaderStepsDown) {
  auto c = start_cluster(cluster::make_raft_config(5, 6));
  const NodeId old_leader = c->current_leader();
  c->pause(old_leader);
  c->sim().run_for(10s);
  ASSERT_NE(c->current_leader(), kNoNode);
  c->resume(old_leader);
  c->sim().run_for(5s);
  EXPECT_FALSE(c->node(old_leader).role() == raft::Role::Leader);
  EXPECT_EQ(count_leaders(*c), 1u);
}

TEST(Election, PreVotePreventsIsolatedNodeDisruption) {
  // Classic pre-vote property: an isolated follower keeps timing out but
  // must not inflate its term, so on heal it rejoins without deposing the
  // leader.
  auto c = start_cluster(cluster::make_raft_config(5, 7));
  const NodeId leader = c->current_leader();
  const raft::Term stable_term = c->node(leader).term();
  NodeId victim = kNoNode;
  for (const NodeId id : c->server_ids()) {
    if (id != leader) {
      victim = id;
      break;
    }
  }
  c->network().isolate(victim, true);
  c->sim().run_for(30s);  // many election timeouts on the victim
  EXPECT_EQ(c->node(victim).term(), stable_term);  // pre-vote never bumped it
  c->network().isolate(victim, false);
  c->sim().run_for(5s);
  EXPECT_EQ(c->current_leader(), leader) << "leader must survive the heal";
  EXPECT_EQ(c->node(leader).term(), stable_term);
  EXPECT_EQ(c->node(victim).leader_hint(), leader);
}

TEST(Election, RandomizedTimeoutWithinEtTo2Et) {
  auto c = start_cluster(cluster::make_raft_config(5, 8));
  const Duration et = c->config().raft.election_timeout;
  for (const NodeId id : c->server_ids()) {
    const Duration r = c->node(id).randomized_timeout();
    EXPECT_GE(r, et);
    EXPECT_LT(r, 2 * et);
  }
}

TEST(Election, TickGranularityQuantizesTimeouts) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(5, 9);
  cfg.raft.tick = 100ms;
  auto c = start_cluster(std::move(cfg));
  for (const NodeId id : c->server_ids()) {
    const auto ns = c->node(id).randomized_timeout().count();
    EXPECT_EQ(ns % Duration(100ms).count(), 0) << "node " << id << " not tick-aligned";
  }
}

TEST(Election, EventuallyReelectsAfterRepeatedKills) {
  Cluster c(cluster::make_raft_config(5, 10));
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(c.await_leader(60s)) << "round " << round;
    const NodeId leader = c.current_leader();
    c.pause(leader);
    c.sim().run_for(15s);
    ASSERT_NE(c.current_leader(), kNoNode) << "round " << round;
    c.resume(leader);
    c.sim().run_for(3s);
  }
}

TEST(Election, MinorityCannotElect) {
  auto c = start_cluster(cluster::make_raft_config(5, 11));
  const NodeId leader = c->current_leader();
  // Cut the leader plus one follower off: the pair is a minority.
  NodeId buddy = kNoNode;
  for (const NodeId id : c->server_ids()) {
    if (id != leader) {
      buddy = id;
      break;
    }
  }
  for (const NodeId a : {leader, buddy}) {
    for (const NodeId b : c->server_ids()) {
      if (b == leader || b == buddy) continue;
      c->network().set_blocked(a, b, true);
      c->network().set_blocked(b, a, true);
    }
  }
  c->sim().run_for(15s);
  // Majority side elected a fresh leader; minority side has none at max term.
  raft::Term max_term = 0;
  for (const NodeId id : c->server_ids()) max_term = std::max(max_term, c->node(id).term());
  NodeId majority_leader = kNoNode;
  for (const NodeId id : c->server_ids()) {
    if (c->node(id).is_leader() && c->node(id).term() == max_term) majority_leader = id;
  }
  ASSERT_NE(majority_leader, kNoNode);
  EXPECT_NE(majority_leader, leader);
  EXPECT_NE(majority_leader, buddy);
}

/// Election liveness across seeds and variants (property sweep).
class ElectionSeedSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::string>> {};

TEST_P(ElectionSeedSweep, LeaderEmergesAndFailoverWorks) {
  const auto [seed, variant] = GetParam();
  cluster::ClusterConfig cfg = variant == "dynatune" ? cluster::make_dynatune_config(5, seed)
                               : variant == "low"    ? cluster::make_raft_low_config(5, seed)
                                                     : cluster::make_raft_config(5, seed);
  auto c = start_cluster(std::move(cfg), 60s);
  const NodeId first = c->current_leader();
  c->sim().run_for(8s);
  c->pause(first);
  c->sim().run_for(30s);
  EXPECT_NE(c->current_leader(), kNoNode);
  EXPECT_NE(c->current_leader(), first);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndVariants, ElectionSeedSweep,
    ::testing::Combine(::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL),
                       ::testing::Values(std::string("raft"), std::string("low"),
                                         std::string("dynatune"))));

}  // namespace
}  // namespace dyna
