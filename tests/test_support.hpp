// Shared fixtures and builders for the gtest suites.
//
// Suites stay independent binaries; everything here is header-only and
// deterministic. Three building blocks cover most setup boilerplate:
//   * test_rng       — the canonical seeded Rng,
//   * NetHarness     — bare Simulator + Network + receive recorder,
//   * start_cluster  — variant factory config -> running cluster with a leader.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "dynatune/policy.hpp"
#include "net/condition.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace dyna::testutil {

using namespace std::chrono_literals;

/// Canonical deterministic RNG for tests that just need seeded randomness.
[[nodiscard]] inline Rng test_rng(std::uint64_t seed = 42) { return Rng(seed); }

/// Bare-metal network harness: one Simulator, one Network, and a recorder of
/// everything delivered. Payloads are ints wrapped in net::TestPayload,
/// mirroring how the unit suites exercise the transport.
struct NetHarness {
  explicit NetHarness(net::Network::Config cfg = {}, std::uint64_t seed = 42)
      : net(sim, Rng(seed), cfg) {}

  sim::Simulator sim;
  net::Network net;
  std::vector<std::pair<NodeId, int>> received;  ///< (receiver, payload)

  /// Add a node whose deliveries are appended to `received`.
  NodeId add_receiver() {
    const NodeId id = net.add_node(nullptr);
    net.set_handler(id, [this, id](NodeId /*from*/, const net::Message& p) {
      ASSERT_NE(p.test(), nullptr);
      received.emplace_back(id, static_cast<int>(p.test()->value));
    });
    return id;
  }

  /// Just the delivered payloads, in delivery order (all receivers merged).
  [[nodiscard]] std::vector<int> payloads() const {
    std::vector<int> out;
    out.reserve(received.size());
    for (const auto& [node, value] : received) out.push_back(value);
    return out;
  }
};

/// A constant-rate link schedule — the single most common network shape in
/// the suites.
[[nodiscard]] inline net::ConditionSchedule constant_link(Duration rtt, Duration jitter = {},
                                                          double loss = 0.0) {
  net::LinkCondition link;
  link.rtt = rtt;
  link.jitter = jitter;
  link.loss = loss;
  return net::ConditionSchedule::constant(link);
}

/// Build the cluster and drive the simulation until a leader exists. A missing
/// leader throws, which gtest reports as that one test failing — callers would
/// otherwise feed kNoNode into Cluster::node() and abort the whole binary.
[[nodiscard]] inline std::unique_ptr<cluster::Cluster> start_cluster(
    cluster::ClusterConfig cfg, Duration await_timeout = 30s) {
  auto c = std::make_unique<cluster::Cluster>(std::move(cfg));
  if (!c->await_leader(await_timeout)) {
    throw std::runtime_error("start_cluster: no leader elected within " +
                             std::to_string(to_ms(await_timeout)) + " ms");
  }
  return c;
}

/// Number of live nodes currently believing they are leader.
[[nodiscard]] inline std::size_t count_leaders(cluster::Cluster& c) {
  std::size_t n = 0;
  for (const NodeId id : c.server_ids()) {
    if (auto* node = c.node_if_alive(id); node != nullptr && node->is_leader()) ++n;
  }
  return n;
}

/// The DynatunePolicy installed on `id` (only valid on Dynatune/Fix-K variants).
[[nodiscard]] inline dt::DynatunePolicy& policy_of(cluster::Cluster& c, NodeId id) {
  return dynamic_cast<dt::DynatunePolicy&>(c.node(id).policy());
}

}  // namespace dyna::testutil
