// Raft safety invariants under a randomized nemesis.
//
// Each parameterized case runs a 5-server cluster under continuous client
// load while a nemesis randomly pauses/resumes nodes, crashes/restarts them
// and partitions/heals links. After healing and quiescence we assert the
// four classic Raft safety properties:
//   1. Election Safety — at most one leader per term
//   2. Log Matching — logs agree on every (index, term) they share
//   3. Leader Completeness / commit durability — committed entries survive
//   4. State Machine Safety — replicas apply identical sequences
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "kvstore/client.hpp"
#include "raft/observer.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

/// Records every committed entry per node, in apply order.
class CommitTracker final : public raft::Observer {
 public:
  struct Commit {
    raft::LogIndex index;
    raft::Term term;
    std::string payload;
  };

  void on_entry_committed(NodeId node, const raft::LogEntry& entry, TimePoint) override {
    auto& seq = commits_[node];
    if (!seq.empty() && entry.index != 1) {
      // Apply order must be gapless and monotone on every replica. A jump
      // back to index 1 is a crash-restart replaying the durable log.
      ASSERT_EQ(entry.index, seq.back().index + 1) << "apply gap on node " << node;
    }
    seq.push_back({entry.index, entry.term, entry.command.payload});
  }

  [[nodiscard]] const std::map<NodeId, std::vector<Commit>>& commits() const { return commits_; }

 private:
  std::map<NodeId, std::vector<Commit>> commits_;
};

struct NemesisState {
  enum class Status { Up, Paused, Crashed };
  std::vector<Status> status;
  std::set<std::pair<NodeId, NodeId>> blocked;
};

class SafetySweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(SafetySweep, InvariantsHoldUnderNemesis) {
  const auto [seed, dynatune] = GetParam();
  CommitTracker tracker;
  cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(5, seed)
                                        : cluster::make_raft_config(5, seed);
  cfg.observers.push_back(&tracker);
  net::LinkCondition link;
  link.rtt = 30ms;
  link.jitter = 3ms;
  link.loss = 0.01;  // background datagram loss to exercise those paths
  cfg.links = net::ConditionSchedule::constant(link);
  Cluster c(std::move(cfg));
  Rng rng(derive_seed(seed, 0x5AFE));
  ASSERT_TRUE(c.await_leader(60s));

  // Continuous client load (stopped before the final convergence check).
  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(0xC1));
  int key = 0;
  bool pumping = true;
  std::function<void()> pump = [&] {
    if (!pumping) return;
    client.put("key" + std::to_string(key % 40), "v" + std::to_string(key), nullptr);
    ++key;
    c.sim().schedule_after(20ms, pump);
  };
  c.sim().schedule_after(0ms, pump);

  NemesisState nem;
  nem.status.assign(c.size(), NemesisState::Status::Up);
  auto disrupted = [&] {
    std::size_t n = 0;
    for (const auto s : nem.status) {
      if (s != NemesisState::Status::Up) ++n;
    }
    return n;
  };

  // 90 simulated seconds of mayhem.
  for (int step = 0; step < 180; ++step) {
    c.sim().run_for(500ms);
    const NodeId victim = static_cast<NodeId>(rng.uniform_index(c.size()));
    const auto idx = static_cast<std::size_t>(victim);
    switch (nem.status[idx]) {
      case NemesisState::Status::Up: {
        const double dice = rng.uniform();
        if (dice < 0.25 && disrupted() < 2) {
          c.pause(victim);
          nem.status[idx] = NemesisState::Status::Paused;
        } else if (dice < 0.40 && disrupted() < 2) {
          c.crash(victim);
          nem.status[idx] = NemesisState::Status::Crashed;
        } else if (dice < 0.60) {
          // Toggle a random directed link block.
          const NodeId other = static_cast<NodeId>(rng.uniform_index(c.size()));
          if (other != victim) {
            const auto pair = std::make_pair(victim, other);
            const bool blocked = nem.blocked.contains(pair);
            c.network().set_blocked(victim, other, !blocked);
            if (blocked) {
              nem.blocked.erase(pair);
            } else {
              nem.blocked.insert(pair);
            }
          }
        }
        break;
      }
      case NemesisState::Status::Paused:
        if (rng.uniform() < 0.5) {
          c.resume(victim);
          nem.status[idx] = NemesisState::Status::Up;
        }
        break;
      case NemesisState::Status::Crashed:
        if (rng.uniform() < 0.5) {
          c.restart(victim);
          nem.status[idx] = NemesisState::Status::Up;
        }
        break;
    }
  }

  // Heal everything and quiesce.
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (nem.status[i] == NemesisState::Status::Paused) c.resume(id);
    if (nem.status[i] == NemesisState::Status::Crashed) c.restart(id);
  }
  for (const auto& [a, b] : nem.blocked) c.network().set_blocked(a, b, false);
  ASSERT_TRUE(c.await_leader(120s));
  c.sim().run_for(20s);
  pumping = false;  // stop the load, then let the cluster fully quiesce
  c.sim().run_for(10s);

  // ---- 1. Election Safety ----
  std::map<raft::Term, NodeId> leader_of_term;
  for (const auto& e : c.probe().leaders()) {
    const auto it = leader_of_term.find(e.term);
    if (it != leader_of_term.end()) {
      EXPECT_EQ(it->second, e.leader) << "two leaders in term " << e.term;
    }
    leader_of_term[e.term] = e.leader;
  }

  // ---- 2. Log Matching ----
  for (const NodeId a : c.server_ids()) {
    for (const NodeId b : c.server_ids()) {
      if (a >= b) continue;
      const auto& la = c.node(a).log();
      const auto& lb = c.node(b).log();
      const std::size_t n = std::min(la.size(), lb.size());
      for (std::size_t i = n; i-- > 0;) {
        if (la[i].term == lb[i].term) {
          // Same (index, term) => identical entry AND identical prefix.
          ASSERT_EQ(la[i].command, lb[i].command) << "log mismatch at " << i + 1;
          for (std::size_t j = 0; j < i; ++j) {
            ASSERT_EQ(la[j].term, lb[j].term) << "prefix term mismatch at " << j + 1;
            ASSERT_EQ(la[j].command, lb[j].command) << "prefix mismatch at " << j + 1;
          }
          break;
        }
      }
    }
  }

  // ---- 3+4. Commit durability & State Machine Safety ----
  // If any replica ever applied entry e at index i, no replica may apply a
  // different entry at i — across the whole run, including crash-restart
  // replays.
  std::map<raft::LogIndex, std::pair<raft::Term, std::string>> applied_at;
  for (const auto& [node, seq] : tracker.commits()) {
    for (const auto& commit : seq) {
      const auto [it, inserted] =
          applied_at.try_emplace(commit.index, commit.term, commit.payload);
      if (!inserted) {
        ASSERT_EQ(it->second.first, commit.term)
            << "node " << node << " committed different term at " << commit.index;
        ASSERT_EQ(it->second.second, commit.payload)
            << "node " << node << " committed different payload at " << commit.index;
      }
    }
  }

  // Final replicas agree byte-for-byte.
  const NodeId ref = c.server_ids().front();
  for (const NodeId id : c.server_ids()) {
    EXPECT_EQ(c.state_machine(id).data(), c.state_machine(ref).data()) << "node " << id;
    EXPECT_EQ(c.state_machine(id).revision(), c.state_machine(ref).revision()) << "node " << id;
    EXPECT_EQ(c.node(id).commit_index(), c.node(ref).commit_index()) << "node " << id;
  }

  // Liveness: the healed cluster served traffic.
  EXPECT_GT(client.completed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(NemesisRuns, SafetySweep,
                         ::testing::Combine(::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL,
                                                              6ULL, 7ULL, 8ULL),
                                            ::testing::Bool()));

}  // namespace
}  // namespace dyna
