// Block-diagonal link-table equivalence: the new net::Network (tiled layout,
// sparse cross-pair promotion, epoch-stamped lazy reset) must be
// observationally indistinguishable from the dense reference implementation
// it replaced — delivery traces, traffic counters, conditions, pause/park
// semantics, FIFO watermarks, stream state and partition flags, across
// multi-trial reset reuse.
//
// The reference below (`denseref::Network`) is a verbatim copy of the dense
// implementation as it stood before the block-diagonal change: a flat
// node_count*node_count table re-strided on every add_node, with an eager
// O(n^2) reset_for_trial. Both implementations are driven through the same
// seeded randomized scripts (sends on both transports, link-schedule
// overrides, directional blocks, isolate, pauses with parked reliable
// traffic, mid-flight resets) and must produce bit-identical observable
// behaviour — in dense single-tile mode AND in grouped mode with
// cross-group client traffic exercising the sparse path.
//
// Also pinned here: the layout unit contract (add_nodes batch ids,
// link_table_bytes accounting, const reads never promote, reset drops
// promoted pairs, the 32-bit epoch wrap hard-clear) and the grouped-mode
// reset geometry precondition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/condition.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"

namespace dyna::denseref {

using net::ConditionSchedule;
using net::Handler;
using net::LinkCondition;
using net::Message;
using net::NodeTraffic;
using net::Transport;

// ---- Verbatim dense reference (pre-block-diagonal net::Network) ---------------------

class Network {
 public:
  using Config = net::Network::Config;  // knobs unchanged across the rewrite

  Network(sim::Simulator& simulator, Rng rng, Config config)
      : sim_(&simulator), rng_(std::move(rng)), config_(config) {}

  Network(sim::Simulator& simulator, Rng rng)
      : Network(simulator, std::move(rng), Config{}) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(Handler handler = nullptr) {
    nodes_.push_back(NodeState{});
    nodes_.back().handler = std::move(handler);
    grow_links();
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void set_handler(NodeId node, Handler handler) {
    state(node).handler = std::move(handler);
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  void reset_for_trial(Rng rng, std::size_t node_count);

  void set_default_schedule(ConditionSchedule schedule) {
    default_schedule_ = std::move(schedule);
  }

  void set_link_schedule(NodeId from, NodeId to, ConditionSchedule schedule) {
    DYNA_EXPECTS(valid(from) && valid(to));
    link(from, to).override_schedule =
        std::make_unique<ConditionSchedule>(std::move(schedule));
  }

  [[nodiscard]] const LinkCondition& condition(NodeId from, NodeId to) const {
    return schedule_for(link(from, to)).at(sim_->now());
  }

  void send(NodeId from, NodeId to, Message payload, Transport transport,
            std::size_t bytes = 256);

  void set_paused(NodeId node, bool paused);

  [[nodiscard]] bool paused(NodeId node) const { return state(node).paused; }

  void set_blocked(NodeId from, NodeId to, bool blocked) {
    DYNA_EXPECTS(valid(from) && valid(to));
    link(from, to).blocked = blocked;
  }

  [[nodiscard]] bool link_blocked(NodeId from, NodeId to) const {
    return link(from, to).blocked;
  }

  void isolate(NodeId node, bool isolated) {
    for (NodeId other = 0; other < static_cast<NodeId>(nodes_.size()); ++other) {
      if (other == node) continue;
      set_blocked(node, other, isolated);
      set_blocked(other, node, isolated);
    }
  }

  [[nodiscard]] const NodeTraffic& traffic(NodeId node) const { return state(node).traffic; }

  [[nodiscard]] Duration stall_penalty(NodeId node, TimePoint t);

 private:
  struct StallWindow {
    TimePoint start = kNever;
    TimePoint end = kSimEpoch;
  };

  void roll_stall(StallWindow& window);

  struct NodeState {
    Handler handler;
    bool paused = false;
    std::deque<std::pair<NodeId, Message>> parked;
    NodeTraffic traffic;
    StallWindow stall;
  };

  struct StreamState {
    Duration last_rtt{0};
    TimePoint last_send = kNever;
    TimePoint turbulent_until = kSimEpoch;
  };

  struct Link {
    std::unique_ptr<ConditionSchedule> override_schedule;
    TimePoint reliable_last_delivery = kSimEpoch;
    StreamState stream;
    bool blocked = false;
  };

  [[nodiscard]] bool valid(NodeId n) const noexcept {
    return n >= 0 && static_cast<std::size_t>(n) < nodes_.size();
  }

  NodeState& state(NodeId n) {
    DYNA_EXPECTS(valid(n));
    return nodes_[static_cast<std::size_t>(n)];
  }

  const NodeState& state(NodeId n) const {
    DYNA_EXPECTS(valid(n));
    return nodes_[static_cast<std::size_t>(n)];
  }

  Link& link(NodeId from, NodeId to) {
    DYNA_EXPECTS(valid(from) && valid(to));
    return links_[static_cast<std::size_t>(from) * nodes_.size() +
                  static_cast<std::size_t>(to)];
  }

  [[nodiscard]] const Link& link(NodeId from, NodeId to) const {
    DYNA_EXPECTS(valid(from) && valid(to));
    return links_[static_cast<std::size_t>(from) * nodes_.size() +
                  static_cast<std::size_t>(to)];
  }

  void grow_links();

  [[nodiscard]] const ConditionSchedule& schedule_for(const Link& l) const {
    return l.override_schedule != nullptr ? *l.override_schedule : default_schedule_;
  }

  [[nodiscard]] Duration sample_one_way_delay(const LinkCondition& cond);

  void deliver(NodeId from, NodeId to, const Message& payload, Transport transport,
               std::size_t bytes);

  void schedule_delivery(Link& l, NodeId from, NodeId to, Message&& payload,
                         Transport transport, std::size_t bytes, Duration delay);

  std::uint32_t arena_acquire(Message&& payload);
  Message arena_release(std::uint32_t slot);

  sim::Simulator* sim_;
  Rng rng_;
  Config config_;
  ConditionSchedule default_schedule_{};
  std::vector<NodeState> nodes_;
  std::vector<Link> links_;  ///< dense n*n, indexed from*n+to

  std::vector<Message> arena_;
  std::vector<std::uint32_t> arena_free_;
};

Duration Network::sample_one_way_delay(const LinkCondition& cond) {
  const double half_rtt_ms = to_ms(cond.rtt) / 2.0;
  const double jitter_ms = to_ms(cond.jitter);
  double delay_ms = half_rtt_ms;
  if (jitter_ms > 0.0) delay_ms += rng_.normal(0.0, jitter_ms);
  delay_ms += rng_.uniform(0.0, 0.1);
  delay_ms = std::max(delay_ms, std::max(0.05 * half_rtt_ms, 0.01));
  return from_ms(delay_ms);
}

Duration Network::stall_penalty(NodeId node, TimePoint t) {
  if (config_.stall.mean_interval <= Duration{0}) return Duration{0};
  StallWindow& w = state(node).stall;
  if (w.start == kNever) {
    w.start = kSimEpoch;
    w.end = kSimEpoch;
    roll_stall(w);
  }
  while (w.end <= t) roll_stall(w);
  return t >= w.start ? w.end - t : Duration{0};
}

void Network::roll_stall(StallWindow& w) {
  const double gap_sec = rng_.exponential(1.0 / to_sec(config_.stall.mean_interval));
  w.start = w.end + from_ms(gap_sec * 1000.0);
  const double dur_ms =
      config_.stall.duration_median_ms * std::exp(config_.stall.duration_sigma * rng_.normal());
  w.end = w.start + from_ms(dur_ms);
}

void Network::reset_for_trial(Rng rng, std::size_t node_count) {
  DYNA_EXPECTS(node_count >= 1);
  rng_ = std::move(rng);
  const bool resized = node_count != nodes_.size();
  nodes_.resize(node_count);
  for (NodeState& n : nodes_) {
    n.paused = false;
    n.parked.clear();
    n.traffic = NodeTraffic{};
    n.stall = StallWindow{};
  }
  if (resized) {
    links_.clear();
    links_.resize(node_count * node_count);
  } else {
    for (Link& l : links_) {
      l.override_schedule.reset();
      l.reliable_last_delivery = kSimEpoch;
      l.stream = StreamState{};
      l.blocked = false;
    }
  }
  arena_.clear();
  arena_free_.clear();
}

void Network::grow_links() {
  const std::size_t n = nodes_.size();
  const std::size_t old_n = n - 1;
  std::vector<Link> grown(n * n);
  for (std::size_t from = 0; from < old_n; ++from) {
    for (std::size_t to = 0; to < old_n; ++to) {
      grown[from * n + to] = std::move(links_[from * old_n + to]);
    }
  }
  links_ = std::move(grown);
}

std::uint32_t Network::arena_acquire(Message&& payload) {
  std::uint32_t slot;
  if (!arena_free_.empty()) {
    slot = arena_free_.back();
    arena_free_.pop_back();
    arena_[slot] = std::move(payload);
  } else {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(std::move(payload));
  }
  return slot;
}

Message Network::arena_release(std::uint32_t slot) {
  Message out = std::move(arena_[slot]);
  arena_[slot] = Message{};
  arena_free_.push_back(slot);
  return out;
}

void Network::send(NodeId from, NodeId to, Message payload, Transport transport,
                   std::size_t bytes) {
  DYNA_EXPECTS(valid(from) && valid(to));
  DYNA_EXPECTS(from != to);

  NodeState& src = state(from);
  src.traffic.sent += 1;
  src.traffic.sent_bytes += bytes;

  Link& l = link(from, to);
  if (l.blocked) return;

  const LinkCondition cond = schedule_for(l).at(sim_->now());
  Duration delay = sample_one_way_delay(cond);
  delay += stall_penalty(from, sim_->now());
  delay += stall_penalty(to, sim_->now() + delay);

  if (transport == Transport::Datagram) {
    if (rng_.bernoulli(cond.loss)) {
      state(to).traffic.lost += 1;
      return;
    }
    const bool duplicated = rng_.bernoulli(cond.duplicate);
    if (duplicated) {
      schedule_delivery(l, from, to, Message(payload), transport, bytes, delay);
      schedule_delivery(l, from, to, std::move(payload), transport, bytes,
                        sample_one_way_delay(cond));
    } else {
      schedule_delivery(l, from, to, std::move(payload), transport, bytes, delay);
    }
    return;
  }

  int retransmits = 0;
  while (retransmits < config_.max_retransmits && rng_.bernoulli(cond.loss)) {
    ++retransmits;
    delay += cond.rtt + config_.retransmit_penalty;
  }

  if (config_.tcp_turbulence) {
    StreamState& st = l.stream;
    const bool jumped = st.last_rtt > Duration{0} &&
                        to_ms(cond.rtt) > to_ms(st.last_rtt) * (1.0 + config_.turbulence_threshold);
    const Duration activity_window =
        std::max(st.last_rtt * 4, Duration(std::chrono::milliseconds(250)));
    const bool was_active = st.last_send != kNever && sim_->now() - st.last_send <= activity_window;
    if (jumped && was_active) {
      st.turbulent_until =
          sim_->now() + from_ms(to_ms(cond.rtt) * config_.turbulence_duration_rtts);
    }
    st.last_rtt = cond.rtt;
    st.last_send = sim_->now();
    if (sim_->now() < st.turbulent_until) {
      delay += st.turbulent_until - sim_->now();
    }
  }

  schedule_delivery(l, from, to, std::move(payload), transport, bytes, delay);
}

void Network::schedule_delivery(Link& l, NodeId from, NodeId to, Message&& payload,
                                Transport transport, std::size_t bytes, Duration delay) {
  TimePoint when = sim_->now() + delay;
  if (transport == Transport::Reliable) {
    TimePoint& last = l.reliable_last_delivery;
    when = std::max(when, last + Duration{1});
    last = when;
  }
  const std::uint32_t slot = arena_acquire(std::move(payload));
  const auto nbytes = static_cast<std::uint32_t>(bytes);
  sim_->schedule_at(when, [this, from, to, slot, transport, nbytes] {
    const Message msg = arena_release(slot);
    deliver(from, to, msg, transport, nbytes);
  });
}

void Network::deliver(NodeId from, NodeId to, const Message& payload, Transport transport,
                      std::size_t bytes) {
  NodeState& dst = state(to);
  if (dst.paused) {
    if (transport == Transport::Datagram) {
      dst.traffic.dropped_paused += 1;
      return;
    }
    dst.parked.emplace_back(from, payload);
    return;
  }
  dst.traffic.received += 1;
  dst.traffic.received_bytes += bytes;
  if (dst.handler) dst.handler(from, payload);
}

void Network::set_paused(NodeId node, bool paused) {
  NodeState& st = state(node);
  if (st.paused == paused) return;
  st.paused = paused;
  if (!paused && !st.parked.empty()) {
    auto parked = std::move(st.parked);
    st.parked.clear();
    for (auto& [from, payload] : parked) {
      const std::uint32_t slot = arena_acquire(std::move(payload));
      sim_->schedule_after(Duration{0}, [this, from = from, node, slot] {
        const Message msg = arena_release(slot);
        deliver(from, node, msg, Transport::Reliable, 0);
      });
    }
  }
}

}  // namespace dyna::denseref

namespace dyna {
namespace {

using namespace std::chrono_literals;
using testutil::constant_link;

/// Full delivery trace: (receiver, payload id, delivery time).
using NetTrace = std::vector<std::tuple<NodeId, int, TimePoint>>;

/// One harness instantiation: Simulator + network (either implementation) +
/// delivery recorder. `Grouped` selects the block-diagonal layout on the new
/// Network; the reference has no such mode and always runs dense.
template <class Net>
struct Harness {
  sim::Simulator sim;
  Net net;
  NetTrace trace;

  Harness(std::uint64_t net_seed, std::size_t group_size, std::size_t groups,
          std::size_t clients)
      : net(sim, Rng(net_seed)) {
    if constexpr (std::is_same_v<Net, net::Network>) {
      if (groups > 1) net.configure_groups(group_size, groups);
    }
    add_endpoints(group_size * groups + clients);
  }

  void add_endpoints(std::size_t count) {
    while (net.node_count() < count) hook(net.add_node(nullptr));
  }

  void hook(NodeId id) {
    net.set_handler(id, [this, id](NodeId /*from*/, const net::Message& p) {
      ASSERT_NE(p.test(), nullptr);
      trace.emplace_back(id, static_cast<int>(p.test()->value), sim.now());
    });
  }
};

/// Drive one network through a seeded randomized script. Every decision
/// comes from the script rng (independent of the network's internal jitter
/// stream), so two implementations fed the same seed execute the same call
/// sequence — and must then draw identically from their own rngs.
template <class H>
void run_random_script(H& h, std::uint64_t seed, int rounds) {
  Rng script(seed);
  const auto n = static_cast<std::size_t>(h.net.node_count());
  auto pick_pair = [&](NodeId& from, NodeId& to) {
    from = static_cast<NodeId>(script.uniform_index(n));
    do {
      to = static_cast<NodeId>(script.uniform_index(n));
    } while (to == from);
  };
  int payload = 0;
  h.net.set_default_schedule(constant_link(40ms, 2ms, 0.02));
  for (int round = 0; round < rounds; ++round) {
    NodeId from{};
    NodeId to{};
    const double dice = script.uniform(0.0, 1.0);
    if (dice < 0.55) {
      pick_pair(from, to);
      const auto transport =
          script.bernoulli(0.5) ? net::Transport::Datagram : net::Transport::Reliable;
      h.net.send(from, to, net::TestPayload{payload++}, transport, 64);
    } else if (dice < 0.70) {
      // Hammer one directed pair with a reliable burst: FIFO watermarks and
      // stream state must behave identically (incl. cross-tile pairs).
      pick_pair(from, to);
      for (int k = 0; k < 4; ++k) {
        h.net.send(from, to, net::TestPayload{payload++}, net::Transport::Reliable, 128);
      }
    } else if (dice < 0.78) {
      pick_pair(from, to);
      h.net.set_blocked(from, to, script.bernoulli(0.6));
    } else if (dice < 0.86) {
      pick_pair(from, to);
      const double rtt_ms = script.uniform(5.0, 120.0);
      const double loss = script.bernoulli(0.3) ? 0.2 : 0.0;
      h.net.set_link_schedule(from, to, constant_link(from_ms(rtt_ms), 1ms, loss));
    } else if (dice < 0.92) {
      const auto node = static_cast<NodeId>(script.uniform_index(n));
      h.net.set_paused(node, script.bernoulli(0.5));
    } else if (dice < 0.95) {
      const auto node = static_cast<NodeId>(script.uniform_index(n));
      h.net.isolate(node, script.bernoulli(0.7));
    } else {
      h.sim.run_for(from_ms(script.uniform(1.0, 30.0)));
    }
  }
  // Unpause everyone so parked reliable traffic flushes, then drain.
  for (std::size_t i = 0; i < n; ++i) h.net.set_paused(static_cast<NodeId>(i), false);
  h.sim.run_all();
}

template <class A, class B>
void expect_observably_equal(A& a, B& b) {
  EXPECT_EQ(a.trace, b.trace);
  ASSERT_EQ(a.net.node_count(), b.net.node_count());
  const auto n = static_cast<NodeId>(a.net.node_count());
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_EQ(a.net.traffic(id).sent, b.net.traffic(id).sent) << "node " << id;
    EXPECT_EQ(a.net.traffic(id).received, b.net.traffic(id).received) << "node " << id;
    EXPECT_EQ(a.net.traffic(id).sent_bytes, b.net.traffic(id).sent_bytes) << "node " << id;
    EXPECT_EQ(a.net.traffic(id).received_bytes, b.net.traffic(id).received_bytes);
    EXPECT_EQ(a.net.traffic(id).lost, b.net.traffic(id).lost) << "node " << id;
    EXPECT_EQ(a.net.traffic(id).dropped_paused, b.net.traffic(id).dropped_paused);
    EXPECT_EQ(a.net.paused(id), b.net.paused(id)) << "node " << id;
  }
  for (NodeId from = 0; from < n; ++from) {
    for (NodeId to = 0; to < n; ++to) {
      if (from == to) continue;
      EXPECT_EQ(a.net.condition(from, to).rtt, b.net.condition(from, to).rtt)
          << from << "->" << to;
      EXPECT_EQ(a.net.condition(from, to).loss, b.net.condition(from, to).loss);
      EXPECT_EQ(a.net.link_blocked(from, to), b.net.link_blocked(from, to))
          << from << "->" << to;
    }
  }
}

// ---- Randomized equivalence: dense single-tile mode --------------------------------

TEST(NetEquivalence, DenseModeMatchesDenseReference) {
  for (const std::uint64_t seed : {11u, 23u, 57u}) {
    Harness<denseref::Network> ref(seed, 12, 1, 0);
    Harness<net::Network> got(seed, 12, 1, 0);
    run_random_script(ref, 1000 + seed, 300);
    run_random_script(got, 1000 + seed, 300);
    expect_observably_equal(ref, got);
  }
}

// ---- Randomized equivalence: grouped mode with cross-group clients -----------------

TEST(NetEquivalence, GroupedModeMatchesDenseReference) {
  // 3 groups of 4 servers + 3 client endpoints beyond the tiled region.
  // Every cross-tile pair the script touches (client traffic, cross-group
  // blocks/overrides, isolate sweeps) takes the sparse-promotion path in
  // the new layout and the plain dense path in the reference.
  for (const std::uint64_t seed : {5u, 31u, 83u}) {
    Harness<denseref::Network> ref(seed, 4, 1, 15 - 4);  // dense: plain 15 nodes
    Harness<net::Network> got(seed, 4, 3, 3);            // tiled 12 + 3 clients
    ASSERT_EQ(ref.net.node_count(), got.net.node_count());
    run_random_script(ref, 2000 + seed, 400);
    run_random_script(got, 2000 + seed, 400);
    expect_observably_equal(ref, got);
    EXPECT_GT(got.net.cross_link_count(), 0u)
        << "script never exercised the sparse cross-pair path";
  }
}

TEST(NetEquivalence, GroupedModeMultiTrialResetMatchesDenseReference) {
  // Dirty both implementations, reset both back to the tiled region (client
  // endpoints drop, as in the sharded sweep contract), re-add clients, run a
  // different script. The epoch-stamped lazy reset must be observationally
  // identical to the reference's eager O(n^2) walk — repeatedly.
  Harness<denseref::Network> ref(9, 4, 1, 11);  // dense: plain 15 nodes
  Harness<net::Network> got(9, 4, 3, 3);        // tiled 12 + 3 clients
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    run_random_script(ref, 3000 + trial, 250);
    run_random_script(got, 3000 + trial, 250);
    expect_observably_equal(ref, got);
    ref.sim.reset();
    got.sim.reset();
    ref.net.reset_for_trial(Rng(500 + trial), 12);
    got.net.reset_for_trial(Rng(500 + trial), 12);
    ref.trace.clear();
    got.trace.clear();
    // Client endpoints re-register after every reset, like KvClients do.
    ref.add_endpoints(15);
    got.add_endpoints(15);
    // Tiled servers keep their handlers across the reset; re-hook anyway to
    // mirror what the reference needs (its table was rebuilt) — handler
    // identity is not part of the observable contract.
    for (NodeId id = 0; id < 12; ++id) {
      ref.hook(id);
      got.hook(id);
    }
  }
}

// ---- Layout unit contract ----------------------------------------------------------

TEST(BlockDiagonalLayout, AddNodesBatchIsContiguous) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1));
  EXPECT_EQ(net.add_nodes(5), 0);
  EXPECT_EQ(net.add_nodes(3), 5);
  EXPECT_EQ(net.add_node(), 8);
  EXPECT_EQ(net.node_count(), 9u);
}

TEST(BlockDiagonalLayout, LinkTableBytesIsTilesPlusPromotedPairs) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1));
  net.configure_groups(5, 8);
  net.add_nodes(40);
  const std::size_t tiles_only = net.link_table_bytes();
  // 8 tiles of 5x5 links, nothing promoted.
  EXPECT_EQ(net.cross_link_count(), 0u);
  EXPECT_LT(tiles_only, net::Network::dense_link_table_bytes(40));
  EXPECT_EQ(net::Network::dense_link_table_bytes(40) / tiles_only, 8u);

  // A mutating cross-group touch promotes exactly one sparse entry.
  net.set_blocked(0, 7, true);
  EXPECT_EQ(net.cross_link_count(), 1u);
  EXPECT_GT(net.link_table_bytes(), tiles_only);
  EXPECT_TRUE(net.link_blocked(0, 7));

  // Reset drops promoted pairs: absence IS the freshly-built state.
  net.reset_for_trial(Rng(2), 40);
  EXPECT_EQ(net.cross_link_count(), 0u);
  EXPECT_EQ(net.link_table_bytes(), tiles_only);
  EXPECT_FALSE(net.link_blocked(0, 7));
}

TEST(BlockDiagonalLayout, ConstReadsNeverPromoteCrossPairs) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1));
  net.configure_groups(3, 4);
  net.add_nodes(12);
  const net::Network& cnet = net;
  // Cross-group const reads see the shared stateless default entry.
  EXPECT_FALSE(cnet.link_blocked(0, 3));
  EXPECT_EQ(cnet.condition(0, 3).rtt, net::LinkCondition{}.rtt);
  EXPECT_EQ(net.cross_link_count(), 0u);
  // In-group reads hit the tile; still nothing promoted.
  EXPECT_FALSE(cnet.link_blocked(0, 1));
  EXPECT_EQ(net.cross_link_count(), 0u);
}

TEST(BlockDiagonalLayout, EpochWrapHardClearsStaleStamps) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1));
  net.configure_groups(3, 2);
  net.add_nodes(6);
  net.set_blocked(0, 1, true);   // tile state at the pre-wrap epoch
  net.set_blocked(0, 3, true);   // promoted cross pair
  net.set_trial_epoch_for_test(0xFFFFFFFFu);
  // This reset wraps the 32-bit epoch: the wrap path must hard-clear every
  // tile cell so stamps from the previous period cannot alias live epochs.
  net.reset_for_trial(Rng(2), 6);
  EXPECT_FALSE(net.link_blocked(0, 1));
  EXPECT_FALSE(net.link_blocked(0, 3));
  EXPECT_EQ(net.cross_link_count(), 0u);
  // And the network still behaves: state set after the wrap sticks.
  net.set_blocked(0, 1, true);
  EXPECT_TRUE(net.link_blocked(0, 1));
  net.reset_for_trial(Rng(3), 6);
  EXPECT_FALSE(net.link_blocked(0, 1));
}

TEST(BlockDiagonalLayout, GroupedResetRequiresTiledGeometry) {
  // In grouped mode the tiled geometry is fixed for the network's lifetime;
  // a reset to any other node count is a geometry change, which must rebuild
  // the Network (ShardedCluster::reset does) — the precondition aborts.
  ASSERT_DEATH(
      {
        sim::Simulator sim;
        net::Network net(sim, Rng(1));
        net.configure_groups(3, 2);
        net.add_nodes(6);
        net.reset_for_trial(Rng(2), 9);
      },
      "precondition");
}

TEST(BlockDiagonalLayout, DenseModeGeometricGrowthPreservesState) {
  // Incremental add_node doubles the stride instead of re-striding per add;
  // existing per-pair state must survive every growth step.
  sim::Simulator sim;
  net::Network net(sim, Rng(1));
  net.add_node();
  net.add_node();
  net.set_blocked(0, 1, true);
  net.set_link_schedule(1, 0, constant_link(70ms));
  for (int i = 0; i < 10; ++i) net.add_node();
  EXPECT_TRUE(net.link_blocked(0, 1));
  EXPECT_EQ(net.condition(1, 0).rtt, 70ms);
  EXPECT_FALSE(net.link_blocked(0, 11));
}

}  // namespace
}  // namespace dyna
