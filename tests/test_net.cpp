#include <gtest/gtest.h>

#include <vector>

#include "net/condition.hpp"
#include "net/network.hpp"
#include "test_support.hpp"

namespace dyna::net {
namespace {

using namespace std::chrono_literals;

using Harness = testutil::NetHarness;

TEST(Network, DeliversDatagram) {
  Harness h;
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.send(a, b, Message(7), Transport::Datagram);
  h.sim.run_all();
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0], std::make_pair(b, 7));
}

TEST(Network, DeliveryTakesAboutHalfRtt) {
  Harness h;
  LinkCondition cond;
  cond.rtt = 100ms;
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.send(a, b, Message(1), Transport::Datagram);
  h.sim.run_all();
  const double t = to_ms(h.sim.now());
  EXPECT_NEAR(t, 50.0, 1.0);  // one-way = rtt/2 (+ sub-ms OS noise)
}

TEST(Network, EmpiricalLossRateMatchesConfig) {
  Harness h;
  LinkCondition cond;
  cond.rtt = 1ms;
  cond.loss = 0.25;
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  const int n = 20000;
  for (int i = 0; i < n; ++i) h.net.send(a, b, Message(i), Transport::Datagram);
  h.sim.run_all();
  EXPECT_NEAR(static_cast<double>(h.received.size()) / n, 0.75, 0.02);
  EXPECT_EQ(h.net.traffic(b).lost + h.received.size(), static_cast<std::uint64_t>(n));
}

TEST(Network, ReliableNeverLosesAndStaysFifo) {
  Harness h;
  LinkCondition cond;
  cond.rtt = 50ms;
  cond.jitter = 20ms;  // heavy jitter would reorder datagrams
  cond.loss = 0.3;     // reliable transport absorbs loss as delay
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  const int n = 500;
  for (int i = 0; i < n; ++i) h.net.send(a, b, Message(i), Transport::Reliable);
  h.sim.run_all();
  ASSERT_EQ(h.received.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(h.received[i].second, i) << "reordered at " << i;
}

TEST(Network, DatagramsCanReorderUnderJitter) {
  Harness h;
  LinkCondition cond;
  cond.rtt = 50ms;
  cond.jitter = 15ms;
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  for (int i = 0; i < 500; ++i) h.net.send(a, b, Message(i), Transport::Datagram);
  h.sim.run_all();
  bool reordered = false;
  for (std::size_t i = 1; i < h.received.size(); ++i) {
    if (h.received[i].second < h.received[i - 1].second) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, DuplicateProbabilityProducesDuplicates) {
  Harness h;
  LinkCondition cond;
  cond.rtt = 1ms;
  cond.duplicate = 0.5;
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  const int n = 2000;
  for (int i = 0; i < n; ++i) h.net.send(a, b, Message(i), Transport::Datagram);
  h.sim.run_all();
  EXPECT_NEAR(static_cast<double>(h.received.size()), n * 1.5, n * 0.06);
}

TEST(Network, TrafficCountersTrackBytes) {
  Harness h;
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.send(a, b, Message(1), Transport::Reliable, 100);
  h.net.send(a, b, Message(2), Transport::Reliable, 50);
  h.sim.run_all();
  EXPECT_EQ(h.net.traffic(a).sent, 2u);
  EXPECT_EQ(h.net.traffic(a).sent_bytes, 150u);
  EXPECT_EQ(h.net.traffic(b).received, 2u);
  EXPECT_EQ(h.net.traffic(b).received_bytes, 150u);
}

TEST(Network, PerLinkScheduleOverridesDefault) {
  Harness h;
  LinkCondition fast;
  fast.rtt = 10ms;
  LinkCondition slow;
  slow.rtt = 300ms;
  h.net.set_default_schedule(ConditionSchedule::constant(fast));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  const NodeId c = h.add_receiver();
  h.net.set_path_schedule(a, c, ConditionSchedule::constant(slow));
  EXPECT_EQ(h.net.condition(a, b).rtt, 10ms);
  EXPECT_EQ(h.net.condition(a, c).rtt, 300ms);
  EXPECT_EQ(h.net.condition(c, a).rtt, 300ms);
}

TEST(ConditionSchedule, ConstantAlwaysSame) {
  LinkCondition c;
  c.rtt = 77ms;
  const auto sched = ConditionSchedule::constant(c);
  EXPECT_EQ(sched.at(kSimEpoch).rtt, 77ms);
  EXPECT_EQ(sched.at(kSimEpoch + 1h).rtt, 77ms);
}

TEST(ConditionSchedule, StepsSwitchAtBoundaries) {
  LinkCondition base;
  const auto sched = ConditionSchedule::rtt_steps(base, {10ms, 20ms, 30ms}, 60s);
  EXPECT_EQ(sched.at(kSimEpoch).rtt, 10ms);
  EXPECT_EQ(sched.at(kSimEpoch + 59s).rtt, 10ms);
  EXPECT_EQ(sched.at(kSimEpoch + 60s).rtt, 20ms);
  EXPECT_EQ(sched.at(kSimEpoch + 120s).rtt, 30ms);
  EXPECT_EQ(sched.at(kSimEpoch + 10h).rtt, 30ms);
}

TEST(ConditionSchedule, RampUpDownIsSymmetric) {
  LinkCondition base;
  const auto sched = ConditionSchedule::rtt_ramp_up_down(base, 50ms, 200ms, 10ms, 60s);
  // 16 steps up (50..200), 15 steps down (190..50) = 31 segments.
  EXPECT_EQ(sched.segments().size(), 31u);
  EXPECT_EQ(sched.segments().front().condition.rtt, 50ms);
  EXPECT_EQ(sched.segments()[15].condition.rtt, 200ms);
  EXPECT_EQ(sched.segments().back().condition.rtt, 50ms);
}

TEST(ConditionSchedule, SpikePattern) {
  LinkCondition base;
  const auto sched = ConditionSchedule::rtt_spike(base, 50ms, 500ms, kSimEpoch + 60s, 60s);
  EXPECT_EQ(sched.at(kSimEpoch + 30s).rtt, 50ms);
  EXPECT_EQ(sched.at(kSimEpoch + 90s).rtt, 500ms);
  EXPECT_EQ(sched.at(kSimEpoch + 150s).rtt, 50ms);
}

TEST(ConditionSchedule, LossRampHitsAllLevels) {
  LinkCondition base;
  const auto sched = ConditionSchedule::loss_ramp_up_down(base, 0.0, 0.30, 0.05, 180s);
  // 0,5,...,30 up (7) + 25,...,0 down (6) = 13 segments.
  EXPECT_EQ(sched.segments().size(), 13u);
  EXPECT_DOUBLE_EQ(sched.segments()[6].condition.loss, 0.30);
  EXPECT_DOUBLE_EQ(sched.segments().back().condition.loss, 0.0);
}

TEST(Network, ScheduleChangesDelayMidFlight) {
  Harness h;
  LinkCondition slow;
  slow.rtt = 200ms;
  LinkCondition fast;
  fast.rtt = 20ms;
  h.net.set_default_schedule(ConditionSchedule(
      {{kSimEpoch, slow}, {kSimEpoch + 1s, fast}}));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.send(a, b, Message(1), Transport::Datagram);
  h.sim.run_all();
  EXPECT_NEAR(to_ms(h.sim.now()), 100.0, 2.0);
  h.sim.run_until(kSimEpoch + 2s);
  h.net.send(a, b, Message(2), Transport::Datagram);
  h.sim.run_all();
  EXPECT_NEAR(to_ms(h.sim.now()) - 2000.0, 10.0, 1.0);
}

}  // namespace
}  // namespace dyna::net
