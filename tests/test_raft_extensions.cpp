// The paper's §IV-E future-work optimizations, implemented as config flags:
//  (a) suppress empty heartbeats when replication traffic covers liveness
//  (b) consolidated broadcast heartbeat timer paced at the minimum tuned h
#include <gtest/gtest.h>

#include <atomic>

#include "cluster/cluster.hpp"
#include "kvstore/client.hpp"
#include "kvstore/command.hpp"
#include "raft/observer.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

class HeartbeatCounter final : public raft::Observer {
 public:
  void on_message_sent(NodeId from, NodeId, raft::MsgKind kind, std::size_t,
                       TimePoint) override {
    if (kind == raft::MsgKind::Heartbeat) ++sent_[from];
    if (kind == raft::MsgKind::Append) ++appends_[from];
  }

  [[nodiscard]] std::uint64_t heartbeats(NodeId node) const {
    const auto it = sent_.find(node);
    return it == sent_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::uint64_t appends(NodeId node) const {
    const auto it = appends_.find(node);
    return it == appends_.end() ? 0 : it->second;
  }

 private:
  std::map<NodeId, std::uint64_t> sent_;
  std::map<NodeId, std::uint64_t> appends_;
};

struct LoadedRun {
  std::uint64_t heartbeats = 0;
  std::uint64_t appends = 0;
  std::size_t elections = 0;
  std::uint64_t completed = 0;
};

LoadedRun run_under_load(bool suppress, std::uint64_t seed) {
  HeartbeatCounter counter;
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(5, seed);
  cfg.raft.suppress_heartbeats_under_load = suppress;
  cfg.observers.push_back(&counter);
  Cluster c(std::move(cfg));
  if (!c.await_leader(30s)) return {};
  c.sim().run_for(8s);  // warm up tuning
  const TimePoint load_start = c.sim().now();
  const NodeId leader = c.current_leader();

  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(1));
  bool pumping = true;
  int i = 0;
  std::function<void()> pump = [&] {
    if (!pumping) return;
    client.put("k" + std::to_string(i++ % 32), "v", nullptr);
    c.sim().schedule_after(2ms, pump);  // ~500 req/s: constant append traffic
  };
  c.sim().schedule_after(0ms, pump);
  c.sim().run_for(30s);
  pumping = false;
  c.sim().run_for(2s);

  LoadedRun out;
  out.heartbeats = counter.heartbeats(leader);
  out.appends = counter.appends(leader);
  out.elections = c.probe().elections_started_in(load_start, c.sim().now());
  out.completed = client.completed();
  return out;
}

TEST(SuppressHeartbeats, FewerEmptyBeatsUnderLoadSameAvailability) {
  const LoadedRun baseline = run_under_load(false, 31);
  const LoadedRun suppressed = run_under_load(true, 31);
  ASSERT_GT(baseline.completed, 1000u);
  ASSERT_GT(suppressed.completed, 1000u);
  // The optimization must cut the leader's empty-heartbeat volume hard...
  EXPECT_LT(suppressed.heartbeats, baseline.heartbeats / 2)
      << "baseline=" << baseline.heartbeats << " suppressed=" << suppressed.heartbeats;
  // ...without destabilizing the cluster (no elections under steady load).
  EXPECT_EQ(suppressed.elections, 0u);
  EXPECT_GT(suppressed.appends, 0u);
}

TEST(SuppressHeartbeats, IdleClusterStillHeartbeats) {
  HeartbeatCounter counter;
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(3, 32);
  cfg.raft.suppress_heartbeats_under_load = true;
  cfg.observers.push_back(&counter);
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(10s);
  // No client load: heartbeats must keep flowing (they are the liveness and
  // the measurement channel).
  EXPECT_GT(counter.heartbeats(c.current_leader()), 50u);
}

TEST(SuppressHeartbeats, FailoverStillWorksUnderLoad) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(5, 33);
  cfg.raft.suppress_heartbeats_under_load = true;
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(8s);
  const NodeId leader = c.current_leader();
  c.pause(leader);
  c.sim().run_for(15s);
  EXPECT_NE(c.current_leader(), kNoNode);
  EXPECT_NE(c.current_leader(), leader);
  c.resume(leader);
}

TEST(ConsolidatedTimer, BroadcastPacedAtMinimumTunedH) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(3, 34);
  cfg.raft.per_follower_heartbeat = false;       // single broadcast timer
  cfg.raft.consolidated_heartbeat_timer = true;  // paced at min tuned h
  net::LinkCondition fast;
  fast.rtt = 40ms;
  net::LinkCondition slow;
  slow.rtt = 240ms;
  cfg.links = net::ConditionSchedule::constant(fast);
  HeartbeatCounter counter;
  cfg.observers.push_back(&counter);
  Cluster c(std::move(cfg));
  c.network().set_path_schedule(0, 2, net::ConditionSchedule::constant(slow));
  c.network().set_path_schedule(1, 2, net::ConditionSchedule::constant(slow));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(10s);
  const NodeId leader = c.current_leader();
  // The broadcast must be paced by the *minimum* tuned h across followers
  // (which follower that is depends on who won the election).
  double min_h_ms = 1e9;
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    min_h_ms = std::min(min_h_ms, to_ms(c.node(leader).effective_heartbeat_interval(id)));
  }
  const std::uint64_t before = counter.heartbeats(leader);
  c.sim().run_for(10s);
  const double rate = static_cast<double>(counter.heartbeats(leader) - before) / 10.0;
  const double expected = 2.0 * 1000.0 / min_h_ms;  // 2 followers, one beat each per min-h
  EXPECT_GT(rate, expected * 0.6) << "min_h=" << min_h_ms;
  EXPECT_LT(rate, expected * 1.6) << "min_h=" << min_h_ms;
}

TEST(ConsolidatedTimer, StaticConfigUnaffectedByFlag) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(3, 35);
  cfg.raft.consolidated_heartbeat_timer = true;  // StaticPolicy: min h == h
  HeartbeatCounter counter;
  cfg.observers.push_back(&counter);
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const std::uint64_t before = counter.heartbeats(leader);
  c.sim().run_for(10s);
  const double rate = static_cast<double>(counter.heartbeats(leader) - before) / 10.0;
  // 2 followers x 10 beats/s at the default 100 ms interval.
  EXPECT_NEAR(rate, 20.0, 5.0);
}

}  // namespace
}  // namespace dyna
