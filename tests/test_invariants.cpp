// InvariantChecker self-tests: the checker must actually fire when safety is
// broken (forged observer events, corrupted log entries, forked terms,
// diverged state machines) and must stay silent on healthy histories —
// including post-restart replay, which rewinds a node's apply watermark.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "raft/invariant_checker.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using raft::InvariantChecker;
using raft::LogEntry;
using testutil::start_cluster;

LogEntry make_entry(raft::LogIndex index, raft::Term term, std::string payload) {
  LogEntry e;
  e.index = index;
  e.term = term;
  e.command.payload = std::move(payload);
  return e;
}

// ---- Streaming checks -------------------------------------------------------------

TEST(InvariantChecker, ElectionSafetyFlagsTwoLeadersInOneTerm) {
  InvariantChecker chk;
  chk.on_leader_established(1, 5, TimePoint{});
  chk.on_leader_established(1, 5, TimePoint{});  // same leader again: fine
  EXPECT_TRUE(chk.ok());
  chk.on_leader_established(2, 5, TimePoint{});  // forked term
  EXPECT_FALSE(chk.ok());
  EXPECT_EQ(chk.count(), 1u);
  chk.on_leader_established(2, 6, TimePoint{});  // new term: fine
  EXPECT_EQ(chk.count(), 1u);
}

TEST(InvariantChecker, MonotonicApplyFlagsRegression) {
  InvariantChecker chk;
  chk.on_entry_committed(1, make_entry(1, 1, "a"), TimePoint{});
  chk.on_entry_committed(1, make_entry(2, 1, "b"), TimePoint{});
  chk.on_entry_committed(1, make_entry(5, 2, "c"), TimePoint{});  // gap: fine
  EXPECT_TRUE(chk.ok());
  chk.on_entry_committed(1, make_entry(4, 2, "d"), TimePoint{});  // regression
  EXPECT_EQ(chk.count(), 1u);
}

TEST(InvariantChecker, NodeRestartRewindsWatermarkSoReplayIsClean) {
  InvariantChecker chk;
  chk.on_entry_committed(1, make_entry(1, 1, "a"), TimePoint{});
  chk.on_entry_committed(1, make_entry(2, 1, "b"), TimePoint{});
  chk.on_node_started(1, TimePoint{});  // crash + restart: applies replay from 1
  chk.on_entry_committed(1, make_entry(1, 1, "a"), TimePoint{});
  chk.on_entry_committed(1, make_entry(2, 1, "b"), TimePoint{});
  EXPECT_TRUE(chk.ok());
}

TEST(InvariantChecker, ApplyDivergenceFlagsDifferentEntryAtSameIndex) {
  InvariantChecker chk;
  chk.on_entry_committed(1, make_entry(3, 2, "x"), TimePoint{});
  chk.on_entry_committed(2, make_entry(3, 2, "x"), TimePoint{});  // agrees: fine
  EXPECT_TRUE(chk.ok());
  chk.on_entry_committed(3, make_entry(3, 2, "y"), TimePoint{});  // payload differs
  EXPECT_EQ(chk.count(), 1u);
  InvariantChecker chk2;
  chk2.on_entry_committed(1, make_entry(3, 2, "x"), TimePoint{});
  chk2.on_entry_committed(2, make_entry(3, 4, "x"), TimePoint{});  // term differs
  EXPECT_EQ(chk2.count(), 1u);
}

TEST(InvariantChecker, FingerprintCoversTermPayloadAndConfigChange) {
  const LogEntry base = make_entry(1, 3, "cmd");
  LogEntry term_diff = base;
  term_diff.term = 4;
  LogEntry payload_diff = base;
  payload_diff.command.payload = "cmd2";
  LogEntry cfg_diff = base;
  cfg_diff.command.config_change = raft::ConfigChange::AddLearner;
  cfg_diff.command.config_target = 7;
  const std::uint64_t h = InvariantChecker::fingerprint(base);
  EXPECT_NE(h, InvariantChecker::fingerprint(term_diff));
  EXPECT_NE(h, InvariantChecker::fingerprint(payload_diff));
  EXPECT_NE(h, InvariantChecker::fingerprint(cfg_diff));
  EXPECT_EQ(h & 1, 1u);  // 0 is reserved for "unset"
}

// ---- End-of-trial audit helpers ---------------------------------------------------

TEST(InvariantChecker, AuditLogEntryFlagsCorruptedFollowerLog) {
  InvariantChecker chk;
  chk.on_entry_committed(1, make_entry(4, 2, "good"), TimePoint{});
  chk.audit_log_entry(2, make_entry(4, 2, "good"));
  EXPECT_TRUE(chk.ok());
  chk.audit_log_entry(3, make_entry(4, 2, "corrupt"));
  EXPECT_EQ(chk.count(), 1u);
}

TEST(InvariantChecker, AuditLeaderCoverageFlagsTruncatedLeader) {
  InvariantChecker chk;
  chk.on_entry_committed(1, make_entry(10, 2, "a"), TimePoint{});
  chk.audit_leader_coverage(2, 10);  // covers: fine
  EXPECT_TRUE(chk.ok());
  chk.audit_leader_coverage(2, 9);  // leader's log ends before a committed index
  EXPECT_EQ(chk.count(), 1u);
}

TEST(InvariantChecker, AuditAppliedStateFlagsDivergedReplicas) {
  InvariantChecker chk;
  chk.audit_applied_state(1, 7, "state-A");
  chk.audit_applied_state(2, 7, "state-A");
  chk.audit_applied_state(3, 6, "state-earlier");  // different prefix: fine
  EXPECT_TRUE(chk.ok());
  chk.audit_applied_state(4, 7, "state-B");
  EXPECT_EQ(chk.count(), 1u);
}

TEST(InvariantChecker, ClearResetsEverything) {
  InvariantChecker chk;
  chk.on_leader_established(1, 5, TimePoint{});
  chk.on_leader_established(2, 5, TimePoint{});
  chk.on_entry_committed(1, make_entry(1, 1, "a"), TimePoint{});
  EXPECT_FALSE(chk.ok());
  chk.clear();
  EXPECT_TRUE(chk.ok());
  EXPECT_EQ(chk.count(), 0u);
  EXPECT_EQ(chk.max_committed(), 0u);
  // A fresh term-5 leader claim after clear is not a violation.
  chk.on_leader_established(3, 5, TimePoint{});
  EXPECT_TRUE(chk.ok());
}

TEST(InvariantChecker, CountKeepsIncrementingPastStorageCap) {
  InvariantChecker chk;
  chk.on_entry_committed(1, make_entry(1, 1, "base"), TimePoint{});
  for (std::size_t i = 0; i < InvariantChecker::kMaxStored + 10; ++i) {
    chk.audit_log_entry(2, make_entry(1, 1, "corrupt" + std::to_string(i)));
  }
  EXPECT_EQ(chk.count(), InvariantChecker::kMaxStored + 10);
  EXPECT_EQ(chk.violations().size(), InvariantChecker::kMaxStored);
}

// ---- Cluster integration ----------------------------------------------------------

TEST(InvariantCluster, HealthyTrialAuditsClean) {
  auto c = start_cluster(cluster::make_raft_config(5, 17));
  for (int i = 0; i < 30; ++i) {
    const NodeId leader = c->current_leader();
    ASSERT_NE(leader, kNoNode);
    raft::Command cmd;
    cmd.payload = "put k" + std::to_string(i) + " v";
    (void)c->node(leader).submit(std::move(cmd));
    c->sim().run_for(50ms);
  }
  c->sim().run_for(2s);
  EXPECT_GT(c->checker().max_committed(), 0u);
  EXPECT_EQ(c->audit_invariants(), 0u);
  EXPECT_TRUE(c->checker().ok());
}

TEST(InvariantCluster, AuditCatchesForgedDivergenceOnRealHistory) {
  // Take a real committed history, then audit a tampered copy of one entry —
  // the end-of-trial sweep must flag it against the streaming commit table.
  auto c = start_cluster(cluster::make_raft_config(3, 23));
  const NodeId leader = c->current_leader();
  ASSERT_NE(leader, kNoNode);
  raft::Command cmd;
  cmd.payload = "put key value";
  const auto idx = c->node(leader).submit(std::move(cmd));
  ASSERT_TRUE(idx.has_value());
  c->sim().run_for(2s);
  ASSERT_GE(c->checker().max_committed(), *idx);

  LogEntry tampered;
  bool found = false;
  c->node(leader).log().for_each(*idx, *idx, [&](const LogEntry& e) {
    tampered = e;
    found = true;
  });
  ASSERT_TRUE(found);
  tampered.command.payload = "put key EVIL";
  c->checker().audit_log_entry(leader, tampered);
  EXPECT_EQ(c->checker().count(), 1u);

  // The untampered cluster state still audits clean on a fresh pass.
  c->checker().clear();
  c->sim().run_for(500ms);
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(InvariantCluster, CheckerSurvivesTrialReset) {
  auto c = start_cluster(cluster::make_raft_config(3, 29));
  c->checker().on_leader_established(999, 12345, TimePoint{});
  c->checker().on_leader_established(998, 12345, TimePoint{});
  EXPECT_FALSE(c->checker().ok());
  c->reset(std::uint64_t{29});
  EXPECT_TRUE(c->checker().ok()) << "reset must clear checker state between trials";
  ASSERT_TRUE(c->await_leader(30s));
  c->sim().run_for(1s);
  EXPECT_EQ(c->audit_invariants(), 0u);
}

}  // namespace
}  // namespace dyna
