// Dynamic membership: learner add / promote / remove via config-change log
// entries, the one-in-flight gate, leader self-removal with abdication,
// FaultPlan validation, and the client/router plumbing that keeps requests
// off removed nodes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster.hpp"
#include "kvstore/client.hpp"
#include "scenario/runner.hpp"
#include "shard/router.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using raft::ConfigChange;
using testutil::start_cluster;

cluster::ClusterConfig membership_config(std::size_t servers, std::uint64_t seed) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(servers, seed);
  cfg.durable_log = true;  // add_server requires restartable storage
  return cfg;
}

void commit_some(cluster::Cluster& c, int n, const char* tag) {
  for (int i = 0; i < n; ++i) {
    const NodeId leader = c.current_leader();
    ASSERT_NE(leader, kNoNode);
    raft::Command cmd;
    cmd.payload = std::string("put ") + tag + std::to_string(i) + " v";
    (void)c.node(leader).submit(std::move(cmd));
    c.sim().run_for(50ms);
  }
}

/// Propose + await commit of one config change; fails the test on timeout.
raft::LogIndex change(cluster::Cluster& c, ConfigChange kind, NodeId target) {
  const auto idx = c.propose_config_change(kind, target);
  EXPECT_TRUE(idx.has_value()) << "no leader or change already in flight";
  if (!idx.has_value()) return 0;
  EXPECT_TRUE(c.await_applied(*idx, 30s)) << "config change did not commit";
  c.sim().run_for(1s);  // settle: let followers apply and learners catch up
  return *idx;
}

// ---- Learner lifecycle ------------------------------------------------------------

TEST(Membership, LearnerJoinsCatchesUpAndNeverVotes) {
  auto c = start_cluster(membership_config(3, 41));
  commit_some(*c, 20, "pre");

  const NodeId joiner = c->add_server(/*as_learner=*/true);
  change(*c, ConfigChange::AddLearner, joiner);

  const NodeId leader = c->current_leader();
  ASSERT_NE(leader, kNoNode);
  EXPECT_EQ(c->node(leader).voter_count(), 3u) << "a learner must not extend the quorum";
  EXPECT_TRUE(c->node(joiner).is_learner());

  // The learner replicates the full history.
  c->sim().run_for(3s);
  EXPECT_GE(c->node(joiner).last_applied(), c->node(leader).commit_index() - 1);

  // Even with every voter's traffic frozen, the learner never campaigns.
  for (const NodeId id : c->server_ids()) {
    if (id != joiner) c->pause(id);
  }
  c->sim().run_for(10s);
  EXPECT_FALSE(c->node(joiner).is_leader());
  for (const NodeId id : c->server_ids()) {
    if (id != joiner) c->resume(id);
  }
  ASSERT_TRUE(c->await_leader(30s));
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(Membership, PromoteTurnsLearnerIntoVoter) {
  auto c = start_cluster(membership_config(3, 43));
  const NodeId joiner = c->add_server(/*as_learner=*/true);
  change(*c, ConfigChange::AddLearner, joiner);
  change(*c, ConfigChange::Promote, joiner);

  const NodeId leader = c->current_leader();
  ASSERT_NE(leader, kNoNode);
  EXPECT_EQ(c->node(leader).voter_count(), 4u);
  EXPECT_FALSE(c->node(joiner).is_learner());
  commit_some(*c, 10, "post");
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(Membership, RemoveFollowerShrinksClusterAndServiceContinues) {
  auto c = start_cluster(membership_config(5, 47));
  commit_some(*c, 10, "pre");
  const NodeId leader = c->current_leader();
  NodeId victim = kNoNode;
  for (const NodeId id : c->server_ids()) {
    if (id != leader) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);

  change(*c, ConfigChange::Remove, victim);
  // Note: the victim itself may never apply the Remove (the leader stops
  // replicating to it once the entry commits), so has_left() is only
  // guaranteed on self-removal. The quorum view is what matters:
  c->finalize_removal(victim);

  const auto ids = c->server_ids();
  EXPECT_EQ(ids.size(), 4u);
  for (const NodeId id : ids) EXPECT_NE(id, victim);
  EXPECT_EQ(c->node(c->current_leader()).voter_count(), 4u);

  commit_some(*c, 10, "post");
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(Membership, RemoveLeaderAbdicatesAndClusterReElects) {
  auto c = start_cluster(membership_config(5, 53));
  commit_some(*c, 5, "pre");
  const NodeId old_leader = c->current_leader();
  ASSERT_NE(old_leader, kNoNode);

  const auto idx = c->propose_config_change(ConfigChange::Remove, old_leader);
  ASSERT_TRUE(idx.has_value());
  ASSERT_TRUE(c->await_applied(*idx, 30s));
  c->sim().run_for(5s);  // abdication + re-election window

  ASSERT_TRUE(c->await_leader(30s));
  const NodeId new_leader = c->current_leader();
  EXPECT_NE(new_leader, old_leader);
  EXPECT_TRUE(c->node(old_leader).has_left());
  c->finalize_removal(old_leader);

  commit_some(*c, 10, "post");
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(Membership, OnlyOneConfigChangeInFlight) {
  auto c = start_cluster(membership_config(3, 59));
  const NodeId joiner = c->add_server(/*as_learner=*/true);
  const auto first = c->propose_config_change(ConfigChange::AddLearner, joiner);
  ASSERT_TRUE(first.has_value());
  // Uncommitted first change: a second proposal must be refused.
  const auto second = c->propose_config_change(ConfigChange::Promote, joiner);
  EXPECT_FALSE(second.has_value());
  // Once committed, the gate reopens.
  ASSERT_TRUE(c->await_applied(*first, 30s));
  c->sim().run_for(1s);
  EXPECT_TRUE(c->propose_config_change(ConfigChange::Promote, joiner).has_value());
}

TEST(Membership, TrialResetRestoresFoundingRoster) {
  auto c = start_cluster(membership_config(3, 61));
  const auto founding = c->server_ids();
  const NodeId joiner = c->add_server(/*as_learner=*/true);
  change(*c, ConfigChange::AddLearner, joiner);
  change(*c, ConfigChange::Promote, joiner);
  EXPECT_EQ(c->server_ids().size(), 4u);

  c->reset(std::uint64_t{61});
  EXPECT_EQ(c->server_ids(), founding);
  ASSERT_TRUE(c->await_leader(30s));
  EXPECT_EQ(c->node(c->current_leader()).voter_count(), 3u);
  EXPECT_EQ(c->audit_invariants(), 0u);
}

// ---- Scenario-level churn ---------------------------------------------------------

TEST(MembershipScenario, ChurnRoundsCompleteWithZeroViolations) {
  scenario::ScenarioSpec spec;
  spec.name = "churn";
  spec.servers = 5;
  spec.seed = 71;
  spec.warmup = 2s;
  spec.durable_log = true;
  spec.faults = scenario::FaultPlan::membership_churn(/*rounds=*/2, /*settle=*/1s);
  wl::MixConfig mix;
  mix.clients = 2;
  mix.duration = 5s;
  spec.workload = scenario::WorkloadPlan::closed_loop(mix);

  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  EXPECT_TRUE(r.leader_elected);
  EXPECT_EQ(r.membership_rounds, 2u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

// ---- FaultPlan validation ---------------------------------------------------------

TEST(FaultPlanValidate, AcceptsDisjointWindowsAndSanePlans) {
  scenario::FaultPlan plan;
  plan.partition_windows.push_back({1s, 2s, {0, 1}});
  plan.partition_windows.push_back({4s, 2s, {0}});  // same node, disjoint in time
  plan.asym_windows.push_back({1s, 2s, {2}, true, false});
  plan.rolling = scenario::FaultPlan::RollingRestart{2, 3s, 1s};
  plan.churn = scenario::FaultPlan::MembershipChurn{1, 1s, 30s};
  EXPECT_NO_THROW(plan.validate(5));
}

TEST(FaultPlanValidate, RejectsOverlappingWindowsOnSameNode) {
  scenario::FaultPlan plan;
  plan.partition_windows.push_back({1s, 3s, {0, 1}});
  plan.partition_windows.push_back({2s, 3s, {1, 2}});  // node 1 overlaps [2s,4s)
  EXPECT_THROW(plan.validate(5), std::invalid_argument);

  // Overlap across the symmetric and directed lists is also rejected.
  scenario::FaultPlan mixed;
  mixed.partition_windows.push_back({1s, 3s, {0}});
  mixed.asym_windows.push_back({2s, 3s, {0}, true, false});
  EXPECT_THROW(mixed.validate(5), std::invalid_argument);

  // Same windows on different nodes are fine.
  scenario::FaultPlan disjoint;
  disjoint.partition_windows.push_back({1s, 3s, {0}});
  disjoint.asym_windows.push_back({1s, 3s, {1}, true, false});
  EXPECT_NO_THROW(disjoint.validate(5));
}

TEST(FaultPlanValidate, RejectsOutOfRangeNodesAndBadDurations) {
  scenario::FaultPlan plan;
  plan.partition_windows.push_back({1s, 2s, {5}});  // node 5 of a 5-server cluster
  EXPECT_THROW(plan.validate(5), std::invalid_argument);

  scenario::FaultPlan zero;
  zero.partition_windows.push_back({1s, Duration{0}, {0}});
  EXPECT_THROW(zero.validate(5), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsBadRollingPacingAndZeroChurn) {
  scenario::FaultPlan plan = scenario::FaultPlan::rolling_restart(2, /*stagger=*/1s,
                                                                  /*down_time=*/2s);
  EXPECT_THROW(plan.validate(5), std::invalid_argument);  // down_time > stagger

  scenario::FaultPlan zero_stagger = scenario::FaultPlan::rolling_restart(1, Duration{0});
  EXPECT_THROW(zero_stagger.validate(5), std::invalid_argument);

  scenario::FaultPlan churn;
  churn.churn = scenario::FaultPlan::MembershipChurn{0, 1s, 30s};
  EXPECT_THROW(churn.validate(5), std::invalid_argument);
}

// ---- Client / router plumbing -----------------------------------------------------

TEST(MembershipClient, RemoveServerLeavesRotationAndRetargets) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1), {});
  const NodeId s0 = net.add_node(nullptr);
  const NodeId s1 = net.add_node(nullptr);
  const NodeId s2 = net.add_node(nullptr);
  kv::KvClient client(sim, net, {s0, s1, s2}, Rng(2));

  const NodeId departed = client.target();
  client.remove_server(departed);
  EXPECT_NE(client.target(), departed) << "client must not keep targeting a removed server";
  client.remove_server(departed);  // idempotent: already gone

  const NodeId s3 = net.add_node(nullptr);
  client.add_server(s3);
  client.add_server(s3);  // idempotent: no duplicate rotation entry
  // Rotating through the full ring now visits s3 and never the departed node.
  bool saw_new = false;
  for (int i = 0; i < 8; ++i) {
    client.remove_server(kNoNode);  // no-op; keeps API exercised
    if (client.target() == s3) saw_new = true;
    EXPECT_NE(client.target(), departed);
    client.set_target(client.target());  // still a known server
    // advance the ring deterministically via the public remove/add dance:
    const NodeId cur = client.target();
    client.remove_server(cur);
    client.add_server(cur);
  }
  EXPECT_TRUE(saw_new);
}

TEST(MembershipRouter, NoteRemovedInvalidatesStaleLeaderCache) {
  shard::ShardRouter router(4);
  router.note_leader(0, 10);
  router.note_leader(1, 11);
  router.note_leader(2, 10);
  router.note_removed(10);
  EXPECT_EQ(router.leader_hint(0), kNoNode);
  EXPECT_EQ(router.leader_hint(1), 11);
  EXPECT_EQ(router.leader_hint(2), kNoNode);
}

}  // namespace
}  // namespace dyna
