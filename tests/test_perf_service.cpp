// ServiceQueue (FIFO CPU) and PerfModel (cost accounting) tests.
#include <gtest/gtest.h>

#include "cluster/perf_model.hpp"
#include "cluster/service_queue.hpp"
#include "sim/simulator.hpp"

namespace dyna::cluster {
namespace {

using namespace std::chrono_literals;

TEST(ServiceQueue, JobsCompleteInFifoOrderAtComputedTimes) {
  sim::Simulator sim;
  ServiceQueue q(sim);
  std::vector<std::pair<int, double>> completions;  // (job, t_ms)
  for (int i = 0; i < 3; ++i) {
    q.enqueue(10ms, [&, i] { completions.emplace_back(i, to_ms(sim.now())); });
  }
  sim.run_all();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].first, 0);
  EXPECT_NEAR(completions[0].second, 10.0, 1e-9);
  EXPECT_NEAR(completions[1].second, 20.0, 1e-9);
  EXPECT_NEAR(completions[2].second, 30.0, 1e-9);
}

TEST(ServiceQueue, IdleServerStartsImmediately) {
  sim::Simulator sim;
  ServiceQueue q(sim);
  q.enqueue(5ms, [] {});
  sim.run_all();
  sim.run_for(100ms);
  double done_at = 0;
  q.enqueue(5ms, [&] { done_at = to_ms(sim.now()); });
  sim.run_all();
  EXPECT_NEAR(done_at, 110.0, 1e-9);  // starts at 105 + 5 service
}

TEST(ServiceQueue, BacklogGrowsUnderOverload) {
  sim::Simulator sim;
  ServiceQueue q(sim);
  for (int i = 0; i < 100; ++i) q.enqueue(10ms, [] {});
  EXPECT_NEAR(to_ms(q.backlog()), 1000.0, 1e-9);
  EXPECT_EQ(q.admitted(), 100u);
  EXPECT_EQ(q.completed(), 0u);
  sim.run_for(500ms);
  EXPECT_EQ(q.completed(), 50u);
  EXPECT_NEAR(to_ms(q.backlog()), 500.0, 1e-9);
}

TEST(ServiceQueue, ZeroServiceTimeCompletesSameInstant) {
  sim::Simulator sim;
  ServiceQueue q(sim);
  bool done = false;
  q.enqueue(Duration{0}, [&] { done = true; });
  sim.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), kSimEpoch);
}

TEST(PerfModel, ChargesSendAndReceiveCosts) {
  CostModel cost;
  cost.heartbeat_send = 100us;
  cost.heartbeat_recv = 50us;
  cost.per_byte = Duration{0};
  PerfModel perf(cost, 1s);
  // 1000 heartbeats sent by node 0, received by node 1, within the first bin.
  for (int i = 0; i < 1000; ++i) {
    perf.on_message_sent(0, 1, raft::MsgKind::Heartbeat, 64, kSimEpoch + i * 1ms);
    perf.on_message_received(1, 0, raft::MsgKind::Heartbeat, 64, kSimEpoch + i * 1ms);
  }
  // node 0: 1000 * 100us = 100 ms busy in a 1 s bin => 10% CPU.
  EXPECT_NEAR(perf.cpu_percent_at(0, kSimEpoch + 500ms), 10.0, 1e-6);
  EXPECT_NEAR(perf.cpu_percent_at(1, kSimEpoch + 500ms), 5.0, 1e-6);
  EXPECT_EQ(perf.total_busy(0), 100ms);
}

TEST(PerfModel, BinsSeparateTimeWindows) {
  CostModel cost;
  cost.heartbeat_send = 1ms;
  cost.per_byte = Duration{0};
  PerfModel perf(cost, 1s);
  perf.on_message_sent(0, 1, raft::MsgKind::Heartbeat, 0, kSimEpoch + 100ms);
  perf.on_message_sent(0, 1, raft::MsgKind::Heartbeat, 0, kSimEpoch + 2500ms);
  EXPECT_GT(perf.cpu_percent_at(0, kSimEpoch + 500ms), 0.0);
  EXPECT_DOUBLE_EQ(perf.cpu_percent_at(0, kSimEpoch + 1500ms), 0.0);
  EXPECT_GT(perf.cpu_percent_at(0, kSimEpoch + 2700ms), 0.0);
  EXPECT_DOUBLE_EQ(perf.cpu_percent_at(0, kSimEpoch + 10s), 0.0);  // beyond data
}

TEST(PerfModel, TuningSurchargeOnlyWhenEnabled) {
  CostModel with;
  with.charge_tuning = true;
  with.per_byte = Duration{0};
  CostModel without;
  without.charge_tuning = false;
  without.per_byte = Duration{0};
  PerfModel a(with, 1s), b(without, 1s);
  a.on_message_received(0, 1, raft::MsgKind::Heartbeat, 0, kSimEpoch);
  b.on_message_received(0, 1, raft::MsgKind::Heartbeat, 0, kSimEpoch);
  EXPECT_EQ(a.total_busy(0) - b.total_busy(0), with.tuning_per_heartbeat);
}

TEST(PerfModel, PerByteCostScalesWithSize) {
  CostModel cost;
  cost.append_send = Duration{0};
  cost.per_byte = 10ns;
  PerfModel perf(cost, 1s);
  perf.on_message_sent(0, 1, raft::MsgKind::Append, 1000, kSimEpoch);
  EXPECT_EQ(perf.total_busy(0), 10us);
}

TEST(PerfModel, CpuSeriesCoversAllBins) {
  CostModel cost;
  PerfModel perf(cost, 1s);
  perf.on_message_sent(0, 1, raft::MsgKind::Heartbeat, 64, kSimEpoch + 4500ms);
  const auto series = perf.cpu_series(0, "node0");
  ASSERT_EQ(series.points().size(), 5u);  // bins 0..4
  EXPECT_GT(series.points().back().value, 0.0);
}

}  // namespace
}  // namespace dyna::cluster
