// Sharded multi-raft (src/shard/): router correctness, routed-client
// redirect handling, per-shard isolation under faults, and the reset/sweep
// determinism contract on the shared substrate.
//
// Four pillars:
//   * ShardRouter — deterministic assignment in both partition modes, full
//     shard coverage, range contiguity, and key_for_shard round-trips;
//   * ShardedKvClient — an op lands in exactly its key's group (and nowhere
//     else), publishing the discovered leader back to the router;
//   * isolation — killing one shard's leader mid-workload leaves every other
//     shard's final applied state byte-identical to an undisturbed run;
//   * determinism — sharded sweeps are bit-identical across thread counts
//     and fresh-vs-reused substrates, and ShardedCluster::reset matches
//     fresh construction (including across a geometry change).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "scenario/runner.hpp"
#include "shard/client.hpp"
#include "shard/router.hpp"
#include "shard/sharded_cluster.hpp"
#include "workload/closed_loop.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;

// ---- Router ------------------------------------------------------------------------

TEST(ShardRouter, HashModeCoversEveryShardDeterministically) {
  const shard::ShardRouter router(4, shard::PartitionMode::Hash);
  std::vector<std::size_t> hits(4, 0);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::size_t s = router.shard_of(key);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, router.shard_of(key));  // assignment is a pure function
    ++hits[s];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    // FNV-1a over 2000 distinct keys: every shard sees a healthy share.
    EXPECT_GT(hits[s], 300u) << "shard " << s;
  }
}

TEST(ShardRouter, RangeModeIsContiguousInKeyOrder) {
  const shard::ShardRouter router(4, shard::PartitionMode::Range);
  // Walk the first-byte axis in lexicographic order: assignments must be
  // non-decreasing (contiguous ranges) and cover every shard.
  std::size_t prev = 0;
  std::set<std::size_t> seen;
  for (int b = 0; b < 256; ++b) {
    std::string key(1, static_cast<char>(b));
    key += "suffix";
    const std::size_t s = router.shard_of(key);
    ASSERT_LT(s, 4u);
    EXPECT_GE(s, prev) << "byte " << b;
    prev = s;
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);
  // Exact quarter boundaries on the first byte (step = 2^64/4).
  EXPECT_EQ(router.shard_of(std::string(1, '\x00')), 0u);
  EXPECT_EQ(router.shard_of(std::string(1, '\x40')), 1u);
  EXPECT_EQ(router.shard_of(std::string(1, '\x80')), 2u);
  EXPECT_EQ(router.shard_of(std::string(1, '\xC0')), 3u);
  EXPECT_EQ(router.shard_of(std::string(8, '\xFF')), 3u);  // top of the space
}

TEST(ShardRouter, KeyForShardRoundTripsInBothModes) {
  for (const auto mode : {shard::PartitionMode::Hash, shard::PartitionMode::Range}) {
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const shard::ShardRouter router(shards, mode);
      for (std::size_t s = 0; s < shards; ++s) {
        for (int i = 0; i < 50; ++i) {
          const std::string stem = "sess0-op" + std::to_string(i);
          const std::string key = router.key_for_shard(s, stem);
          EXPECT_EQ(router.shard_of(key), s)
              << to_string(mode) << " shards=" << shards << " stem=" << stem;
          EXPECT_EQ(key, router.key_for_shard(s, stem));  // deterministic
          EXPECT_NE(key.find(stem), std::string::npos);   // stem embedded
        }
      }
    }
  }
}

TEST(ShardRouter, SingleShardIsIdentityRouting) {
  const shard::ShardRouter router(1, shard::PartitionMode::Range);
  EXPECT_EQ(router.shard_of("anything"), 0u);
  EXPECT_EQ(router.key_for_shard(0, "stem"), "stem");  // keys pass through
}

TEST(ShardRouter, LeaderCacheStartsEmptyAndPublishes) {
  shard::ShardRouter router(3);
  EXPECT_EQ(router.leader_hint(1), kNoNode);
  router.note_leader(1, NodeId{4});
  EXPECT_EQ(router.leader_hint(1), NodeId{4});
  EXPECT_EQ(router.leader_hint(0), kNoNode);  // other shards untouched
}

// ---- Routed client -----------------------------------------------------------------

shard::ShardedConfig small_sharded(std::size_t shards, std::uint64_t seed,
                                   std::size_t servers = 3) {
  shard::ShardedConfig cfg;
  cfg.shards = shards;
  cfg.group = cluster::make_raft_config(servers, seed);
  return cfg;
}

TEST(ShardedKvClient, OpLandsOnlyInItsKeysGroupAndPublishesLeader) {
  shard::ShardedCluster sc(small_sharded(2, 7));
  ASSERT_TRUE(sc.await_all_leaders(30s));

  shard::ShardRouter router = sc.make_router();
  shard::ShardedKvClient client(sc, router, sc.fork_rng(1));

  const std::string key = router.key_for_shard(0, "alpha");
  bool done = false;
  client.put(key, "v1", [&done](const kv::ClientResult& r) {
    EXPECT_TRUE(r.ok);
    done = true;
  });
  sc.sim().run_for(5s);
  ASSERT_TRUE(done);

  // The write committed in group 0 and is invisible to group 1 — every one
  // of group 1's replicas is empty.
  sc.sim().run_for(2s);  // let group 0's followers apply
  bool in_home = false;
  for (const NodeId id : sc.shard(0).server_ids()) {
    in_home |= sc.shard(0).state_machine(id).data().count(key) > 0;
  }
  EXPECT_TRUE(in_home);
  for (const NodeId id : sc.shard(1).server_ids()) {
    EXPECT_EQ(sc.shard(1).state_machine(id).size(), 0u) << "node " << id;
  }

  // Success published the discovered leader back to the router.
  EXPECT_EQ(router.leader_hint(0), sc.shard(0).current_leader());
  EXPECT_EQ(router.leader_hint(1), kNoNode);  // group 1 never contacted
}

TEST(ShardedKvClient, RedirectRecoversAfterLeaderChange) {
  shard::ShardedCluster sc(small_sharded(2, 11));
  ASSERT_TRUE(sc.await_all_leaders(30s));
  shard::ShardRouter router = sc.make_router();

  // First client discovers group 0's leader and publishes it.
  const std::string key = router.key_for_shard(0, "beta");
  {
    shard::ShardedKvClient first(sc, router, sc.fork_rng(2));
    bool done = false;
    first.put(key, "v1", [&done](const kv::ClientResult& r) {
      EXPECT_TRUE(r.ok);
      done = true;
    });
    sc.sim().run_for(5s);
    ASSERT_TRUE(done);
  }
  const NodeId old_leader = router.leader_hint(0);
  ASSERT_NE(old_leader, kNoNode);

  // Depose it. A later client starts from the now-stale hint and must ride
  // redirects/timeouts to the new leader.
  sc.shard(0).crash(old_leader);
  ASSERT_TRUE(sc.await_all_leaders(60s));
  ASSERT_NE(sc.shard(0).current_leader(), old_leader);

  shard::ShardedKvClient second(sc, router, sc.fork_rng(3));
  bool done = false;
  second.put(key, "v2", [&done](const kv::ClientResult& r) {
    EXPECT_TRUE(r.ok);
    done = true;
  });
  sc.sim().run_for(20s);
  ASSERT_TRUE(done);
  EXPECT_EQ(router.leader_hint(0), sc.shard(0).current_leader());
}

// ---- Isolation under leader kill ---------------------------------------------------

/// Run a pinned, ops-bounded closed-loop pool over a 3-shard deployment,
/// optionally crashing shard 0's leader mid-run. Returns every replica
/// snapshot of shards 1 and 2 after the dust settles.
std::vector<std::string> pinned_run_snapshots(bool kill_shard0_leader) {
  shard::ShardedCluster sc(small_sharded(3, 21));
  EXPECT_TRUE(sc.await_all_leaders(30s));
  shard::ShardRouter router = sc.make_router();

  wl::MixConfig mix;
  mix.clients = 6;  // two sessions pinned per shard
  mix.get_ratio = 0.0;
  mix.ops_per_client = 30;
  mix.duration = 120s;  // ops-mode: duration only bounds a stuck run
  mix.disjoint_keyspace = true;
  mix.pin_sessions_to_shards = true;
  wl::ClosedLoopPool pool(sc, router, mix, sc.fork_rng(0xC10D));

  if (kill_shard0_leader) {
    sc.sim().schedule_after(300ms, [&sc] {
      const NodeId leader = sc.shard(0).current_leader();
      if (leader != kNoNode) sc.shard(0).crash(leader);
    });
  }
  const wl::MixResult result = pool.run();
  EXPECT_EQ(result.completed + result.failed, 6u * 30u);

  sc.sim().run_for(5s);  // let followers catch up on applies
  std::vector<std::string> snapshots;
  for (const std::size_t g : {std::size_t{1}, std::size_t{2}}) {
    for (const NodeId id : sc.shard(g).server_ids()) {
      snapshots.push_back(sc.shard(g).state_machine(id).snapshot());
    }
  }
  return snapshots;
}

TEST(ShardIsolation, LeaderKillLeavesOtherShardsFinalStateUntouched) {
  // Pinned sessions + disjoint keys + per-session op quotas make each
  // shard's final store a pure function of its own command stream. Shard 0
  // losing its leader mid-run (stalled ops, elections, retries) must not
  // change what shards 1 and 2 end up applying — the sharding point.
  const std::vector<std::string> baseline = pinned_run_snapshots(false);
  const std::vector<std::string> disturbed = pinned_run_snapshots(true);
  ASSERT_EQ(baseline.size(), disturbed.size());
  ASSERT_EQ(baseline.size(), 6u);  // 2 shards x 3 replicas
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_FALSE(baseline[i].empty());
    EXPECT_EQ(baseline[i], disturbed[i]) << "replica " << i;
  }
}

// ---- Partition windows (FaultPlan) -------------------------------------------------

TEST(PartitionWindows, IsolatingTheLeaderForcesAnElectionThenHeals) {
  scenario::ScenarioSpec spec;
  spec.name = "partition-window";
  spec.servers = 5;
  spec.seed = 5;
  spec.samples = scenario::SamplePlan::every(1s, 8s);

  auto c = scenario::ScenarioRunner::materialize(spec);
  ASSERT_TRUE(c->await_leader(30s));
  const NodeId old_leader = c->current_leader();

  // Cut the sitting leader off for 3 s starting 500 ms into measurement.
  spec.faults = scenario::FaultPlan::partitions(
      {{.start = 500ms, .duration = 3s, .nodes = {old_leader}}});
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run_on(*c, spec);

  EXPECT_GE(r.elections, 1u);  // the remaining quorum elected a successor
  EXPECT_NE(c->current_leader(), kNoNode);
  EXPECT_TRUE(cluster::service_available(*c));  // healed: commits flow again
}

TEST(PartitionWindows, MinoritySetInsideWindowStillReachesItself) {
  // Two nodes cut together still talk to each other (symmetric set cut, not
  // a full isolation of each) — the window models a group partition.
  sim::Simulator sim;
  net::Network net(sim, Rng(3));
  std::vector<int> got(4, 0);
  for (NodeId id = 0; id < 4; ++id) {
    net.add_node([&got, id](NodeId, const net::Message& m) {
      if (m.test() != nullptr) ++got[id];
    });
  }

  scenario::ScenarioSpec spec;
  spec.faults = scenario::FaultPlan::partitions({{.start = 0ms, .duration = 1s,
                                                  .nodes = {0, 1}}});
  // Exercise through the runner-internal scheduling by replaying its
  // contract directly: nodes {0,1} blocked against {2,3} both ways.
  for (const auto& w : spec.faults.partition_windows) {
    for (const NodeId in : w.nodes) {
      for (NodeId out = 0; out < 4; ++out) {
        if (std::find(w.nodes.begin(), w.nodes.end(), out) != w.nodes.end()) continue;
        net.set_blocked(in, out, true);
        net.set_blocked(out, in, true);
      }
    }
  }
  using net::Transport;
  net.send(0, 1, net::Message(1), Transport::Datagram);  // inside the set: delivered
  net.send(0, 2, net::Message(2), Transport::Datagram);  // across the cut: dropped
  net.send(3, 1, net::Message(3), Transport::Datagram);  // across the cut: dropped
  net.send(2, 3, net::Message(4), Transport::Datagram);  // outside the set: delivered
  sim.run_for(5s);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 0);
  EXPECT_EQ(got[3], 1);
}

// ---- Reset / determinism contract --------------------------------------------------

scenario::ScenarioSpec sharded_spec(std::uint64_t seed, std::size_t shards = 2) {
  scenario::ScenarioSpec spec;
  spec.name = "sharded";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 3;
  spec.shards = shards;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(40ms, 1ms, 0.005);
  wl::MixConfig mix;
  mix.clients = 4;
  mix.get_ratio = 0.3;
  mix.duration = 3s;
  spec.workload = scenario::WorkloadPlan::closed_loop(mix);
  spec.faults = scenario::FaultPlan::leader_kills(1, 1s);
  return spec;
}

TEST(ShardedReset, ReusedSubstrateMatchesFreshConstruction) {
  const scenario::ScenarioSpec first = sharded_spec(31);
  scenario::ScenarioSpec second = sharded_spec(32);

  auto sc = scenario::ScenarioRunner::materialize_sharded(first);
  (void)scenario::ScenarioRunner::run_on(*sc, first);
  sc->reset(second.seed);
  const scenario::ScenarioResult reused = scenario::ScenarioRunner::run_on(*sc, second);

  const scenario::ScenarioResult fresh = scenario::ScenarioRunner::run(second);
  EXPECT_EQ(fresh, reused);
  EXPECT_EQ(reused.shard_stats.size(), 2u);
}

TEST(ShardedReset, GeometryChangeRebuildsAndStaysExact) {
  // 2 shards -> 3 shards forces the network-rebuild path (handlers capture
  // the id->group stride); the result must still match fresh construction.
  const scenario::ScenarioSpec first = sharded_spec(41, 2);
  scenario::ScenarioSpec second = sharded_spec(42, 3);

  auto sc = scenario::ScenarioRunner::materialize_sharded(first);
  (void)scenario::ScenarioRunner::run_on(*sc, first);

  shard::ShardedConfig next;
  next.shards = second.shards;
  next.partition = second.partition_mode;
  next.group = cluster::make_dynatune_config(second.servers, second.seed);
  next.group.links = net::ConditionSchedule::constant(
      scenario::TopologySpec::constant(40ms, 1ms, 0.005).base);
  sc->reset(std::move(next));
  const scenario::ScenarioResult reused = scenario::ScenarioRunner::run_on(*sc, second);

  const scenario::ScenarioResult fresh = scenario::ScenarioRunner::run(second);
  EXPECT_EQ(fresh, reused);
  EXPECT_EQ(reused.shard_stats.size(), 3u);
}

TEST(ShardedSweep, ByteIdenticalAcrossThreadCountsAndReuse) {
  scenario::SweepSpec sweep;
  sweep.base = sharded_spec(0);
  sweep.variants = {scenario::Variant::Raft, scenario::Variant::Dynatune};
  sweep.sizes = {3};
  sweep.seeds = 3;
  sweep.master_seed = 99;

  sweep.reuse_substrate = false;
  sweep.threads = 1;
  const auto reference = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(reference.size(), 6u);
  for (const auto& r : reference) ASSERT_EQ(r.shard_stats.size(), 2u);

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const bool reuse : {false, true}) {
      sweep.threads = threads;
      sweep.reuse_substrate = reuse;
      const auto got = scenario::ScenarioRunner::run_sweep(sweep);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "threads=" << threads << " reuse=" << reuse << " cell " << i;
      }
    }
  }
}

TEST(ShardedSweep, GroupSizeAxisReusesOneSlotAcrossGeometries) {
  // A sweep over two group sizes runs back to back on one worker at
  // threads=1, so the second cell hits the sharded slot's geometry-change
  // reset (network rebuild) rather than the in-place path — and must still
  // match fresh construction exactly.
  scenario::SweepSpec sweep;
  sweep.base = sharded_spec(0);
  sweep.variants = {scenario::Variant::Raft};
  sweep.sizes = {3, 5};
  sweep.seeds = 2;
  sweep.master_seed = 7;
  sweep.threads = 1;

  sweep.reuse_substrate = false;
  const auto fresh = scenario::ScenarioRunner::run_sweep(sweep);
  sweep.reuse_substrate = true;
  const auto reused = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(fresh.size(), 4u);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i], reused[i]) << "cell " << i;
    EXPECT_EQ(fresh[i].shard_stats.size(), 2u);
  }
}

// ---- Kilo-node geometry (block-diagonal link table) --------------------------------

scenario::ScenarioSpec kilo_spec(std::uint64_t seed, std::size_t shards) {
  // 32 groups x 33 servers = 1056 nodes: every inter-group client pair rides
  // the sparse cross-tile path, and each trial reset exercises the
  // epoch-stamp contract over a thousand-node substrate.
  scenario::ScenarioSpec spec;
  spec.name = "kilo";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 33;
  spec.shards = shards;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(40ms, 1ms, 0.005);
  wl::MixConfig mix;
  mix.clients = 4;
  mix.get_ratio = 0.3;
  mix.duration = 1s;
  spec.workload = scenario::WorkloadPlan::closed_loop(mix);
  return spec;
}

TEST(KiloSharded, SweepByteIdenticalAcrossThreadCountsAndReuse) {
  scenario::SweepSpec sweep;
  sweep.base = kilo_spec(0, 32);
  sweep.variants = {scenario::Variant::Dynatune};
  sweep.sizes = {33};
  sweep.seeds = 2;
  sweep.master_seed = 205;

  sweep.reuse_substrate = false;
  sweep.threads = 1;
  const auto reference = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(reference.size(), 2u);
  for (const auto& r : reference) ASSERT_EQ(r.shard_stats.size(), 32u);

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const bool reuse : {false, true}) {
      sweep.threads = threads;
      sweep.reuse_substrate = reuse;
      const auto got = scenario::ScenarioRunner::run_sweep(sweep);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "threads=" << threads << " reuse=" << reuse << " cell " << i;
      }
    }
  }
}

TEST(KiloSharded, GeometryChangeRebuildsAtKiloScale) {
  // Shrinking 32 -> 16 groups at 33 servers each changes the tiled geometry,
  // which the grouped-mode reset precondition forbids in place: the slot must
  // rebuild the network — and still match fresh construction bit for bit.
  const scenario::ScenarioSpec first = kilo_spec(61, 32);
  scenario::ScenarioSpec second = kilo_spec(62, 16);

  auto sc = scenario::ScenarioRunner::materialize_sharded(first);
  (void)scenario::ScenarioRunner::run_on(*sc, first);

  shard::ShardedConfig next;
  next.shards = second.shards;
  next.partition = second.partition_mode;
  next.group = cluster::make_dynatune_config(second.servers, second.seed);
  next.group.links = net::ConditionSchedule::constant(
      scenario::TopologySpec::constant(40ms, 1ms, 0.005).base);
  sc->reset(std::move(next));
  const scenario::ScenarioResult reused = scenario::ScenarioRunner::run_on(*sc, second);

  const scenario::ScenarioResult fresh = scenario::ScenarioRunner::run(second);
  EXPECT_EQ(fresh, reused);
  EXPECT_EQ(reused.shard_stats.size(), 16u);
}

TEST(ShardedSpec, SingleShardPathIsUntouched) {
  // shards=1 dispatches down the classic single-cluster path: identical
  // results to a spec that predates the shard knobs, no shard stats.
  scenario::ScenarioSpec spec = sharded_spec(17);
  spec.shards = 1;
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  EXPECT_TRUE(r.shard_stats.empty());
  scenario::ScenarioSpec again = sharded_spec(17);
  again.shards = 1;
  again.partition_mode = shard::PartitionMode::Range;  // ignored at shards=1
  EXPECT_EQ(scenario::ScenarioRunner::run(again), r);
}

}  // namespace
}  // namespace dyna
