// The declarative scenario layer: spec -> runner -> sink.
//
// Covers spec compilation (variants, custom factories, tick overrides),
// topology layering (default schedule, WAN matrix, per-direction asymmetric
// overrides, correlated loss bursts), plan execution, and the CSV/table
// sinks' unified schemas.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dynatune/policy.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using testutil::constant_link;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

// ---- Spec -> cluster compilation --------------------------------------------------

TEST(ScenarioSpec, VariantsCompileToNamedConfigs) {
  for (const auto& [variant, name] :
       {std::pair{scenario::Variant::Raft, "Raft"},
        std::pair{scenario::Variant::RaftLow, "Raft-Low"},
        std::pair{scenario::Variant::Dynatune, "Dynatune"},
        std::pair{scenario::Variant::FixK, "Fix-K"}}) {
    scenario::ScenarioSpec spec;
    spec.variant = variant;
    spec.servers = 3;
    auto c = scenario::ScenarioRunner::materialize(spec);
    EXPECT_EQ(c->config().name, name);
    EXPECT_EQ(c->size(), 3u);
  }
}

TEST(ScenarioSpec, CustomFactoryOverridesVariant) {
  scenario::ScenarioSpec spec;
  spec.variant = scenario::Variant::Raft;  // ignored
  spec.servers = 3;
  spec.seed = 9;
  spec.config_factory = [](std::size_t servers, std::uint64_t seed) {
    cluster::ClusterConfig cfg = cluster::make_raft_low_config(servers, seed);
    cfg.name = "custom";
    return cfg;
  };
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  EXPECT_EQ(r.variant, "custom");
  EXPECT_TRUE(r.leader_elected);
}

TEST(ScenarioSpec, RaftTickOverrideReachesConfig) {
  scenario::ScenarioSpec spec;
  spec.raft_tick = 10ms;
  auto c = scenario::ScenarioRunner::materialize(spec);
  EXPECT_EQ(c->config().raft.tick, 10ms);
}

// ---- Topology layering ------------------------------------------------------------

TEST(ScenarioTopology, AsymmetricOverridesReachNetworkCondition) {
  // Forward and reverse directions of one path carry different schedules;
  // both must be visible through Network::condition() while untouched links
  // keep the base condition.
  scenario::ScenarioSpec spec;
  spec.servers = 3;
  spec.topology = scenario::TopologySpec::constant(40ms);
  spec.topology.add_asymmetric_pair(0, 1, constant_link(100ms), constant_link(300ms));
  auto c = scenario::ScenarioRunner::materialize(spec);

  EXPECT_EQ(c->network().condition(0, 1).rtt, 100ms);
  EXPECT_EQ(c->network().condition(1, 0).rtt, 300ms);
  EXPECT_EQ(c->network().condition(0, 2).rtt, 40ms);
  EXPECT_EQ(c->network().condition(2, 1).rtt, 40ms);

  // The cluster still elects and runs over the asymmetric mesh.
  EXPECT_TRUE(c->await_leader(30s));
}

TEST(ScenarioTopology, WanMatrixAppliesPerPair) {
  scenario::ScenarioSpec spec;
  spec.servers = 5;
  spec.topology.wan = cluster::WanTopology::aws_five_regions();
  auto c = scenario::ScenarioRunner::materialize(spec);
  EXPECT_EQ(c->network().condition(0, 1).rtt, 210ms);  // tokyo <-> london
  EXPECT_EQ(c->network().condition(3, 4).rtt, 310ms);  // sydney <-> sao-paulo
}

TEST(ConditionSchedule, LossBurstsAlternateCleanAndBursty) {
  net::LinkCondition base;
  base.rtt = 80ms;
  const auto s = net::ConditionSchedule::loss_bursts(base, /*burst_loss=*/0.4,
                                                     /*period=*/60s, /*burst_len=*/10s,
                                                     /*bursts=*/3, kSimEpoch + 30s);
  EXPECT_DOUBLE_EQ(s.at(kSimEpoch).loss, 0.0);
  EXPECT_DOUBLE_EQ(s.at(kSimEpoch + 35s).loss, 0.4);   // inside burst 1
  EXPECT_DOUBLE_EQ(s.at(kSimEpoch + 45s).loss, 0.0);   // between bursts
  EXPECT_DOUBLE_EQ(s.at(kSimEpoch + 95s).loss, 0.4);   // inside burst 2
  EXPECT_DOUBLE_EQ(s.at(kSimEpoch + 155s).loss, 0.4);  // inside burst 3
  EXPECT_DOUBLE_EQ(s.at(kSimEpoch + 500s).loss, 0.0);  // after the last burst
  for (const auto& seg : s.segments()) {
    EXPECT_EQ(seg.condition.rtt, 80ms);  // bursts change loss only
  }
}

TEST(ScenarioTopology, LossBurstsDriveTheDefaultSchedule) {
  // A burst schedule installed through the spec is what every link sees:
  // correlated across the whole mesh, visible in Network::condition(), and
  // survivable by the cluster (Dynatune's K raises heartbeat redundancy).
  net::LinkCondition base;
  base.rtt = 60ms;
  scenario::ScenarioSpec spec;
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 5;
  spec.seed = 21;
  spec.topology.schedule = net::ConditionSchedule::loss_bursts(base, 0.3, 20s, 5s, 3,
                                                               kSimEpoch + 10s);
  spec.samples = scenario::SamplePlan::every(1s, 60s);
  auto c = scenario::ScenarioRunner::materialize(spec);
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run_on(*c, spec);
  ASSERT_TRUE(r.leader_elected);

  // Burst visible on two different links at the same instants (correlated).
  bool saw_burst = false;
  for (const auto& p : r.samples) {
    if (p.loss_pct > 29.0) saw_burst = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_EQ(c->network().condition(0, 1).loss, c->network().condition(2, 3).loss);
  // Datagram heartbeats really experienced the bursts.
  std::uint64_t lost = 0;
  for (const NodeId id : c->server_ids()) lost += c->network().traffic(id).lost;
  EXPECT_GT(lost, 0u);
}

// ---- Plans ------------------------------------------------------------------------

TEST(ScenarioRunner, PathSamplesRecordPerFollowerTelemetry) {
  scenario::ScenarioSpec spec;
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 5;
  spec.seed = 3;
  spec.topology = scenario::TopologySpec::constant(100ms);
  spec.warmup = 10s;
  spec.sample_paths = true;
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  ASSERT_TRUE(r.leader_elected);
  ASSERT_NE(r.paths_leader, kNoNode);
  ASSERT_EQ(r.paths.size(), 4u);  // every follower
  for (const auto& p : r.paths) {
    EXPECT_NE(p.follower, r.paths_leader);
    EXPECT_NEAR(p.rtt_ms, 100.0, 1e-9);
    EXPECT_GT(p.et_ms, 0.0);
    EXPECT_GT(p.h_ms, 0.0);
  }
}

TEST(ScenarioRunner, WorkloadPlanProducesLevels) {
  scenario::ScenarioSpec spec;
  spec.servers = 3;
  spec.seed = 12;
  spec.topology = scenario::TopologySpec::constant(20ms);
  spec.durable_log = false;
  spec.warmup = 1s;
  wl::RampConfig ramp;
  ramp.start_rps = 100;
  ramp.step_rps = 100;
  ramp.max_rps = 300;
  ramp.level_duration = 1s;
  spec.workload = scenario::WorkloadPlan::open_loop_ramp(ramp);
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  ASSERT_TRUE(r.leader_elected);
  ASSERT_EQ(r.levels.size(), 3u);
  EXPECT_GT(r.levels.front().completed, 0u);
  EXPECT_DOUBLE_EQ(r.levels.back().offered_rps, 300.0);
}

// ---- Sinks ------------------------------------------------------------------------

scenario::ScenarioResult small_failover_result() {
  scenario::ScenarioSpec spec;
  spec.name = "sink-test";
  spec.servers = 3;
  spec.seed = 4;
  spec.faults = scenario::FaultPlan::leader_kills(2, 2s);
  spec.samples = scenario::SamplePlan::every(1s, 3s);
  return scenario::ScenarioRunner::run(spec);
}

TEST(ResultSink, CsvSchemasCarryIdentityColumns) {
  const scenario::ScenarioResult r = small_failover_result();
  ASSERT_EQ(r.failovers.size(), 2u);
  ASSERT_EQ(r.samples.size(), 3u);

  const std::string dir = ::testing::TempDir();
  {
    scenario::CsvSink failover(dir + "scenario_failover.csv", scenario::CsvSection::Failover);
    failover.consume(r);
    scenario::CsvSink samples(dir + "scenario_samples.csv", scenario::CsvSection::Samples);
    samples.consume(r);
    scenario::CsvSink levels(dir + "scenario_levels.csv", scenario::CsvSection::Levels);
    levels.consume(r);
  }

  const auto failover_lines = read_lines(dir + "scenario_failover.csv");
  ASSERT_EQ(failover_lines.size(), 1u + r.failovers.size());
  EXPECT_EQ(failover_lines[0],
            "scenario,variant,servers,seed,kill,detection_ms,ots_ms,election_ms,"
            "mean_randomized_ms,ok");
  EXPECT_EQ(failover_lines[1].rfind("sink-test,Raft,3,4,0,", 0), 0u);

  const auto sample_lines = read_lines(dir + "scenario_samples.csv");
  ASSERT_EQ(sample_lines.size(), 1u + r.samples.size());
  EXPECT_EQ(sample_lines[0],
            "scenario,variant,servers,seed,t_sec,rtt_ms,loss_pct,randomized_kth_ms,"
            "et_median_ms,h_mean_ms,hb_per_sec,leader_cpu_pct,follower_cpu_pct,available");

  const auto level_lines = read_lines(dir + "scenario_levels.csv");
  ASSERT_EQ(level_lines.size(), 1u);  // header only: no workload plan ran
}

TEST(ResultSink, TableSinkRendersOneRowPerResult) {
  const scenario::ScenarioResult r = small_failover_result();
  scenario::TableSink table;
  table.consume(r);
  table.consume(r);

  const std::string path = ::testing::TempDir() + "scenario_table.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    table.print(f);
    std::fclose(f);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);  // header + rule + 2 rows
  EXPECT_NE(lines[0].find("scenario"), std::string::npos);
  EXPECT_NE(lines[2].find("sink-test"), std::string::npos);
  EXPECT_NE(lines[2].find("2/2"), std::string::npos);
}

}  // namespace
}  // namespace dyna
