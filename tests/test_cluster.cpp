// Cluster harness: wiring, telemetry and fault-injection API.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/topology.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

TEST(Cluster, BuildsRequestedSize) {
  Cluster c(cluster::make_raft_config(7, 1));
  EXPECT_EQ(c.size(), 7u);
  EXPECT_EQ(c.server_ids().size(), 7u);
  EXPECT_EQ(c.network().node_count(), 7u);
}

TEST(Cluster, VariantFactoriesConfigureCorrectly) {
  const auto raft = cluster::make_raft_config(5, 1);
  EXPECT_EQ(raft.raft.election_timeout, 1000ms);
  EXPECT_EQ(raft.raft.heartbeat_interval, 100ms);
  EXPECT_FALSE(raft.raft.measure_network);

  const auto low = cluster::make_raft_low_config(5, 1);
  EXPECT_EQ(low.raft.election_timeout, 100ms);
  EXPECT_EQ(low.raft.heartbeat_interval, 10ms);

  const auto dyn = cluster::make_dynatune_config(5, 1);
  EXPECT_TRUE(dyn.raft.measure_network);
  EXPECT_TRUE(dyn.raft.datagram_heartbeats);
  EXPECT_TRUE(dyn.raft.per_follower_heartbeat);
  EXPECT_EQ(dyn.raft.tick, 1ms);

  const auto fixk = cluster::make_fixk_config(5, 1);
  EXPECT_EQ(fixk.name, "Fix-K");
}

TEST(Cluster, CurrentLeaderIsNoNodeBeforeElection) {
  Cluster c(cluster::make_raft_config(3, 2));
  EXPECT_EQ(c.current_leader(), kNoNode);  // t = 0, nothing fired yet
}

TEST(Cluster, AwaitLeaderTimesOutWhenQuorumImpossible) {
  Cluster c(cluster::make_raft_config(3, 3));
  c.crash(0);
  c.crash(1);  // only one node left: no quorum
  EXPECT_FALSE(c.await_leader(5s));
}

TEST(Cluster, RandomizedTimeoutKthIsOrdered) {
  Cluster c(cluster::make_raft_config(5, 4));
  ASSERT_TRUE(c.await_leader(30s));
  Duration prev{0};
  for (std::size_t k = 1; k <= 5; ++k) {
    const Duration v = c.randomized_timeout_kth(k);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Cluster, CrashedNodesCountAsInfiniteTimeout) {
  Cluster c(cluster::make_raft_config(3, 5));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId victim = leader == 0 ? 1 : 0;
  c.crash(victim);
  EXPECT_EQ(c.randomized_timeout_kth(3), Duration::max());
}

TEST(Cluster, ServiceAvailableTracksLeaderPresence) {
  Cluster c(cluster::make_raft_config(3, 6));
  ASSERT_TRUE(c.await_leader(30s));
  EXPECT_TRUE(cluster::service_available(c));
  const NodeId leader = c.current_leader();
  c.pause(leader);
  c.sim().run_for(200ms);  // leader frozen, no successor yet
  EXPECT_FALSE(cluster::service_available(c));
  c.sim().run_for(15s);
  EXPECT_TRUE(cluster::service_available(c));  // successor elected
  c.resume(leader);
}

TEST(Cluster, ForkRngIsDeterministic) {
  Cluster a(cluster::make_raft_config(3, 7));
  Cluster b(cluster::make_raft_config(3, 7));
  Rng ra = a.fork_rng(5);
  Rng rb = b.fork_rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ra.bits(), rb.bits());
}

TEST(Cluster, IdenticalSeedsGiveIdenticalElectionOutcome) {
  auto run = [] {
    Cluster c(cluster::make_raft_config(5, 99));
    c.await_leader(30s);
    c.sim().run_for(5s);
    return std::make_tuple(c.current_leader(), c.node(c.current_leader()).term(),
                           c.sim().executed());
  };
  EXPECT_EQ(run(), run());
}

TEST(Cluster, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    Cluster c(cluster::make_raft_config(5, seed));
    c.await_leader(30s);
    c.sim().run_for(5s);
    std::vector<Duration> draws;
    for (const NodeId id : c.server_ids()) draws.push_back(c.node(id).randomized_timeout());
    return draws;
  };
  // The randomized-timeout draws almost surely differ across seeds.
  EXPECT_NE(run(101), run(202));
}

TEST(Cluster, PerfModelDisabledByDefault) {
  Cluster c(cluster::make_raft_config(3, 8));
  EXPECT_EQ(c.perf(), nullptr);
}

TEST(Cluster, PerfModelChargesTraffic) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(3, 9);
  cfg.perf_cost = cluster::CostModel{};
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(10s);
  ASSERT_NE(c.perf(), nullptr);
  const NodeId leader = c.current_leader();
  EXPECT_GT(c.perf()->total_busy(leader).count(), 0);
}

TEST(Topology, AwsMatrixIsSymmetricAndComplete) {
  const auto t = cluster::WanTopology::aws_five_regions();
  ASSERT_EQ(t.size(), 5u);
  ASSERT_EQ(t.rtt.size(), 5u);
  for (std::size_t a = 0; a < 5; ++a) {
    ASSERT_EQ(t.rtt[a].size(), 5u);
    EXPECT_EQ(t.rtt[a][a], Duration{0});
    for (std::size_t b = 0; b < 5; ++b) {
      EXPECT_EQ(t.rtt[a][b], t.rtt[b][a]) << a << "," << b;
      if (a != b) {
        EXPECT_GT(t.rtt[a][b], 50ms);
      }
    }
  }
}

TEST(Topology, ApplyInstallsPerPairConditions) {
  Cluster c(cluster::make_raft_config(5, 10));
  const auto topo = cluster::WanTopology::aws_five_regions();
  topo.apply(c.network());
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_EQ(c.network().condition(static_cast<NodeId>(a), static_cast<NodeId>(b)).rtt,
                topo.rtt[a][b]);
    }
  }
}

TEST(Topology, GeoClusterElectsLeader) {
  Cluster c(cluster::make_raft_config(5, 11));
  cluster::WanTopology::aws_five_regions().apply(c.network());
  EXPECT_TRUE(c.await_leader(60s));
}

}  // namespace
}  // namespace dyna
