// DynatunePolicy unit tests: warm-up gating, tuning, piggyback, fallback.
#include <gtest/gtest.h>

#include "dynatune/policy.hpp"

namespace dyna::dt {
namespace {

using namespace std::chrono_literals;

raft::HeartbeatMeta meta(std::uint64_t id, Duration rtt) {
  raft::HeartbeatMeta m;
  m.id = id;
  m.send_ts = kSimEpoch;
  m.measured_rtt = rtt;
  return m;
}

DynatuneConfig test_config() {
  DynatuneConfig cfg;
  cfg.min_list_size = 5;
  return cfg;
}

TEST(Policy, DefaultsBeforeWarmup) {
  DynatunePolicy p(test_config());
  EXPECT_EQ(p.election_timeout(), p.config().default_election_timeout);
  EXPECT_EQ(p.heartbeat_interval(1), p.config().default_heartbeat);
  EXPECT_FALSE(p.warmed_up());
}

TEST(Policy, WarmupAdvertisesDefaultPace) {
  DynatunePolicy p(test_config());
  for (std::uint64_t i = 1; i < 5; ++i) {
    const auto h = p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(*h, p.config().default_heartbeat);  // Step 0: default pace
    EXPECT_FALSE(p.warmed_up());
  }
}

TEST(Policy, TunesAfterMinListSize) {
  DynatunePolicy p(test_config());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  }
  ASSERT_TRUE(p.warmed_up());
  ASSERT_TRUE(p.tuned_election_timeout().has_value());
  // sigma = 0 => Et = mean = 100 ms; K floor 2 => h = 50 ms.
  EXPECT_NEAR(to_ms(*p.tuned_election_timeout()), 100.0, 0.5);
  EXPECT_NEAR(to_ms(p.election_timeout()), 100.0, 0.5);
  ASSERT_TRUE(p.tuned_heartbeat().has_value());
  EXPECT_NEAR(to_ms(*p.tuned_heartbeat()), 50.0, 0.5);
}

TEST(Policy, SigmaWidensEt) {
  DynatunePolicy p(test_config());
  const double rtts[] = {90, 95, 100, 105, 110, 120, 80, 100, 100, 100};
  std::uint64_t id = 0;
  for (const double r : rtts) p.on_heartbeat_meta(0, meta(++id, from_ms(r)), kSimEpoch);
  ASSERT_TRUE(p.warmed_up());
  EXPECT_GT(to_ms(p.election_timeout()), 100.0);  // mu + 2 sigma > mu
}

TEST(Policy, LossDrivesHeartbeatIntervalDown) {
  DynatunePolicy p(test_config());
  // 30% loss pattern: skip every ids = 0 mod 3 (approximately).
  std::uint64_t id = 0;
  for (int i = 0; i < 60; ++i) {
    ++id;
    if (id % 3 == 0) continue;  // "lost"
    p.on_heartbeat_meta(0, meta(id, 100ms), kSimEpoch);
  }
  ASSERT_TRUE(p.warmed_up());
  // p ~ 1/3 => K = 6 (paper example) => h ~ Et/6 ~ 17 ms.
  ASSERT_TRUE(p.tuned_heartbeat().has_value());
  EXPECT_LT(to_ms(*p.tuned_heartbeat()), 25.0);
  EXPECT_GT(to_ms(*p.tuned_heartbeat()), 10.0);
}

TEST(Policy, FixedKOverridesLossTuning) {
  DynatuneConfig cfg = test_config();
  cfg.fixed_k = 10;
  DynatunePolicy p(cfg);
  for (std::uint64_t i = 1; i <= 10; ++i) p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  ASSERT_TRUE(p.tuned_heartbeat().has_value());
  EXPECT_NEAR(to_ms(*p.tuned_heartbeat()), 10.0, 0.5);  // Et/10 regardless of p=0
}

TEST(Policy, OneSampleShortOfMinListSizeKeepsDefaults) {
  // Step 0 boundary: min_list_size - 1 samples is still warm-up — every
  // parameter stays at its conservative default and nothing is tuned.
  DynatunePolicy p(test_config());
  const std::size_t n = p.config().min_list_size;
  for (std::uint64_t i = 1; i < n; ++i) p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  EXPECT_EQ(p.rtt().count(), n - 1);
  EXPECT_FALSE(p.warmed_up());
  EXPECT_FALSE(p.tuned_election_timeout().has_value());
  EXPECT_FALSE(p.tuned_heartbeat().has_value());
  EXPECT_EQ(p.election_timeout(), p.config().default_election_timeout);
  EXPECT_EQ(p.heartbeat_interval(0), p.config().default_heartbeat);
  // The very next sample crosses the threshold and tuning kicks in.
  p.on_heartbeat_meta(0, meta(n, 100ms), kSimEpoch);
  EXPECT_TRUE(p.warmed_up());
  EXPECT_TRUE(p.tuned_election_timeout().has_value());
}

TEST(Policy, ExpiryDiscardsPartialWarmupState) {
  // An election-timer expiry during warm-up throws away the partial
  // measurement lists: progress toward min_list_size never survives a
  // timeout, so tuning restarts from zero samples.
  DynatunePolicy p(test_config());
  std::uint64_t id = 0;
  for (int i = 0; i < 3; ++i) p.on_heartbeat_meta(0, meta(++id, 100ms), kSimEpoch);
  ASSERT_EQ(p.rtt().count(), 3u);
  p.on_election_timeout();
  EXPECT_EQ(p.rtt().count(), 0u);
  EXPECT_EQ(p.loss().count(), 0u);
  EXPECT_EQ(p.election_timeout(), p.config().default_election_timeout);
  // Partial re-warm, then another expiry: discarded again, still untuned.
  for (int i = 0; i < 2; ++i) p.on_heartbeat_meta(0, meta(++id, 100ms), kSimEpoch);
  p.on_election_timeout();
  EXPECT_EQ(p.rtt().count(), 0u);
  EXPECT_EQ(p.loss().count(), 0u);
  EXPECT_FALSE(p.warmed_up());
  EXPECT_FALSE(p.tuned_election_timeout().has_value());
}

TEST(Policy, ConsecutiveExpiriesKeepMeasurementStateEmpty) {
  // Back-to-back expiries with no heartbeats in between (a dead leader
  // during a contested election) must be safe and leave nothing behind.
  DynatunePolicy p(test_config());
  for (std::uint64_t i = 1; i <= 5; ++i) p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  ASSERT_TRUE(p.warmed_up());
  for (int round = 0; round < 5; ++round) {
    p.on_election_timeout();
    EXPECT_EQ(p.rtt().count(), 0u) << "round " << round;
    EXPECT_EQ(p.loss().count(), 0u) << "round " << round;
    EXPECT_FALSE(p.warmed_up()) << "round " << round;
  }
  // Well past fallback_after_rounds: defaults are back in force.
  EXPECT_EQ(p.election_timeout(), p.config().default_election_timeout);
  EXPECT_EQ(p.heartbeat_interval(0), p.config().default_heartbeat);
}

TEST(Policy, ElectionTimeoutDiscardsDataButKeepsTunedEt) {
  DynatunePolicy p(test_config());
  for (std::uint64_t i = 1; i <= 5; ++i) p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  ASSERT_TRUE(p.warmed_up());
  const Duration tuned = p.election_timeout();
  p.on_election_timeout();
  EXPECT_EQ(p.rtt().count(), 0u);   // lists discarded (Step 0)
  EXPECT_EQ(p.loss().count(), 0u);
  EXPECT_EQ(p.election_timeout(), tuned);  // fights the election with tuned Et
}

TEST(Policy, RepeatedTimeoutsFallBackToDefaults) {
  DynatuneConfig cfg = test_config();
  cfg.fallback_after_rounds = 3;
  DynatunePolicy p(cfg);
  for (std::uint64_t i = 1; i <= 5; ++i) p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  ASSERT_TRUE(p.warmed_up());
  p.on_election_timeout();
  p.on_election_timeout();
  EXPECT_NE(p.election_timeout(), cfg.default_election_timeout);
  p.on_election_timeout();  // third strike
  EXPECT_EQ(p.election_timeout(), cfg.default_election_timeout);
}

TEST(Policy, SuccessfulRetuneResetsTimeoutCounter) {
  DynatuneConfig cfg = test_config();
  cfg.fallback_after_rounds = 3;
  DynatunePolicy p(cfg);
  std::uint64_t id = 0;
  for (int i = 0; i < 5; ++i) p.on_heartbeat_meta(0, meta(++id, 100ms), kSimEpoch);
  p.on_election_timeout();
  p.on_election_timeout();
  // Warm up again -> successful retune resets the strike counter.
  for (int i = 0; i < 5; ++i) p.on_heartbeat_meta(0, meta(++id, 100ms), kSimEpoch);
  p.on_election_timeout();
  p.on_election_timeout();
  EXPECT_NE(p.election_timeout(), cfg.default_election_timeout);
}

TEST(Policy, LeaderChangeResetsEverything) {
  DynatunePolicy p(test_config());
  for (std::uint64_t i = 1; i <= 5; ++i) p.on_heartbeat_meta(0, meta(i, 100ms), kSimEpoch);
  ASSERT_TRUE(p.warmed_up());
  p.on_leader_changed(2, 7);
  EXPECT_FALSE(p.warmed_up());
  EXPECT_EQ(p.election_timeout(), p.config().default_election_timeout);
  EXPECT_EQ(p.rtt().count(), 0u);
}

TEST(Policy, LeaderSideAppliesPiggybackedH) {
  DynatunePolicy p(test_config());
  EXPECT_EQ(p.heartbeat_interval(3), p.config().default_heartbeat);
  p.on_tuned_heartbeat(3, 42ms);
  EXPECT_EQ(p.heartbeat_interval(3), 42ms);
  EXPECT_EQ(p.heartbeat_interval(4), p.config().default_heartbeat);  // per-path
}

TEST(Policy, LeaderSideClampsInsaneH) {
  DynatunePolicy p(test_config());
  p.on_tuned_heartbeat(3, Duration{0});
  EXPECT_GE(p.heartbeat_interval(3), p.config().min_heartbeat);
}

TEST(Policy, BecomingLeaderClearsPerFollowerState) {
  DynatunePolicy p(test_config());
  p.on_tuned_heartbeat(3, 42ms);
  p.on_became_leader();
  EXPECT_EQ(p.heartbeat_interval(3), p.config().default_heartbeat);
}

TEST(Policy, MetaWithoutRttOnlyFeedsLoss) {
  DynatunePolicy p(test_config());
  raft::HeartbeatMeta m;
  m.id = 1;  // no measured_rtt (first heartbeat of a path)
  p.on_heartbeat_meta(0, m, kSimEpoch);
  EXPECT_EQ(p.rtt().count(), 0u);
  EXPECT_EQ(p.loss().count(), 1u);
}

}  // namespace
}  // namespace dyna::dt
