// Fault-injection engine: injector firing modes, crash-point integration
// (a firing fells the node mid-operation and the cluster revives it), and
// the replay contract — any observed firing is reproducible from
// (seed, schedule) by pinning RunLength to the recorded visit ordinal.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "fault/injector.hpp"
#include "scenario/runner.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using testutil::start_cluster;

// ---- Injector unit behavior -------------------------------------------------------

TEST(Injector, NoneModeNeverFires) {
  fault::InjectorConfig cfg;  // mode defaults to None
  fault::Injector inj(cfg);
  inj.arm(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.visit(fault::CrashPoint::PreSend));
  }
  EXPECT_EQ(inj.fired(), 0u);
  EXPECT_EQ(inj.visits(), 0u);  // None mode does not even count visits
}

TEST(Injector, RunLengthFiresAtExactOrdinal) {
  fault::InjectorConfig cfg;
  cfg.mode = fault::Mode::RunLength;
  cfg.run_length = 7;
  fault::Injector inj(cfg);
  inj.arm(99);
  for (std::uint64_t v = 1; v <= 20; ++v) {
    const bool fired = inj.visit(fault::CrashPoint::BeforePersistAppend);
    EXPECT_EQ(fired, v == 7) << "visit " << v;
  }
  ASSERT_EQ(inj.firings().size(), 1u);
  EXPECT_EQ(inj.firings()[0].visit, 7u);
  EXPECT_EQ(inj.firings()[0].point, fault::CrashPoint::BeforePersistAppend);
}

TEST(Injector, MaxFiresCapsRepeatedRuns) {
  fault::InjectorConfig cfg;
  cfg.mode = fault::Mode::Independent;
  cfg.independent_prob = 1.0;  // every enabled visit wants to fire
  cfg.max_fires = 2;
  fault::Injector inj(cfg);
  inj.arm(5);
  int fires = 0;
  for (int i = 0; i < 50; ++i) {
    if (inj.visit(fault::CrashPoint::PreSend)) ++fires;
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(inj.fired(), 2u);
}

TEST(Injector, PointsMaskFiltersCrashPoints) {
  fault::InjectorConfig cfg;
  cfg.mode = fault::Mode::RunLength;
  cfg.run_length = 1;
  cfg.points_mask = fault::point_bit(fault::CrashPoint::MidBatchSeal);
  fault::Injector inj(cfg);
  inj.arm(3);
  EXPECT_FALSE(inj.visit(fault::CrashPoint::PreSend));            // masked out
  EXPECT_FALSE(inj.visit(fault::CrashPoint::AfterPersistAppend)); // masked out
  EXPECT_EQ(inj.visits(), 0u);  // masked visits don't advance the ordinal
  EXPECT_TRUE(inj.visit(fault::CrashPoint::MidBatchSeal));
}

TEST(Injector, SameSeedSameFiringSequence) {
  fault::InjectorConfig cfg;
  cfg.mode = fault::Mode::Independent;
  cfg.independent_prob = 0.05;
  cfg.max_fires = 100;
  fault::Injector a(cfg);
  fault::Injector b(cfg);
  a.arm(1234);
  b.arm(1234);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.visit(fault::CrashPoint::PreSend), b.visit(fault::CrashPoint::PreSend));
  }
  EXPECT_EQ(a.firings().size(), b.firings().size());
}

TEST(Injector, UniformOverRunTargetInRangeAndSeedStable) {
  fault::InjectorConfig cfg;
  cfg.mode = fault::Mode::UniformOverRun;
  cfg.uniform_max = 50;
  fault::Injector inj(cfg);
  inj.arm(7);
  std::uint64_t fired_at = 0;
  for (std::uint64_t v = 1; v <= 50; ++v) {
    if (inj.visit(fault::CrashPoint::PreSend)) fired_at = v;
  }
  ASSERT_GE(fired_at, 1u);
  ASSERT_LE(fired_at, 50u);
  // Re-arming with the same seed redraws the same target.
  inj.arm(7);
  std::uint64_t fired_again = 0;
  for (std::uint64_t v = 1; v <= 50; ++v) {
    if (inj.visit(fault::CrashPoint::PreSend)) fired_again = v;
  }
  EXPECT_EQ(fired_at, fired_again);
}

// ---- Cluster integration ----------------------------------------------------------

cluster::ClusterConfig fault_config(fault::InjectorConfig inj, std::uint64_t seed = 7) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(5, seed);
  cfg.durable_log = true;
  cfg.fault = inj;
  return cfg;
}

/// Drive load so crash points in the replication path accumulate visits.
void drive_commits(cluster::Cluster& c, int commands) {
  for (int i = 0; i < commands; ++i) {
    const NodeId leader = c.current_leader();
    if (leader != kNoNode) {
      raft::Command cmd;
      cmd.payload = "put k" + std::to_string(i) + " v";
      (void)c.node(leader).submit(std::move(cmd));
    }
    c.sim().run_for(50ms);
    if (c.current_leader() == kNoNode) (void)c.await_leader(10s);
  }
}

TEST(FaultCluster, CrashPointFellsNodeAndClusterRecovers) {
  fault::InjectorConfig inj;
  inj.mode = fault::Mode::RunLength;
  inj.run_length = 40;  // every node dies at its 40th enabled visit
  inj.restart_delay = 500ms;
  auto c = start_cluster(fault_config(inj));
  drive_commits(*c, 100);

  EXPECT_GE(c->fault_firings(), 1u) << "no crash point ever fired under load";
  // The restart_delay has long passed for every firing: all servers live.
  c->sim().run_for(2s);
  ASSERT_TRUE(c->await_leader(10s));
  for (const NodeId id : c->server_ids()) {
    EXPECT_NE(c->node_if_alive(id), nullptr) << "node " << id << " was not revived";
  }
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(FaultCluster, FiringsAreReproducibleFromSeed) {
  fault::InjectorConfig inj;
  inj.mode = fault::Mode::UniformOverRun;
  inj.uniform_max = 200;
  inj.restart_delay = 500ms;

  std::vector<std::vector<fault::Firing>> runs[2];
  for (int run = 0; run < 2; ++run) {
    auto c = start_cluster(fault_config(inj, /*seed=*/21));
    drive_commits(*c, 60);
    for (const NodeId id : c->server_ids()) {
      runs[run].push_back(c->injector(id)->firings());
    }
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(FaultCluster, RecordedFiringReplaysViaRunLength) {
  // Observe a probabilistic firing, then pin RunLength to the recorded visit
  // ordinal (and the mask to the recorded point) — the same node must fire
  // at the same ordinal. This is the (seed, schedule) replay handle.
  fault::InjectorConfig probe;
  probe.mode = fault::Mode::UniformOverRun;
  probe.uniform_max = 150;
  probe.restart_delay = 500ms;

  NodeId fired_node = kNoNode;
  fault::Firing observed{};
  {
    auto c = start_cluster(fault_config(probe, /*seed=*/33));
    drive_commits(*c, 80);
    for (const NodeId id : c->server_ids()) {
      if (!c->injector(id)->firings().empty()) {
        fired_node = id;
        observed = c->injector(id)->firings().front();
        break;
      }
    }
  }
  ASSERT_NE(fired_node, kNoNode) << "probe run produced no firing; widen the drive";

  fault::InjectorConfig replay;
  replay.mode = fault::Mode::RunLength;
  replay.run_length = observed.visit;
  replay.points_mask = fault::point_bit(observed.point);
  replay.restart_delay = 500ms;
  {
    auto c = start_cluster(fault_config(replay, /*seed=*/33));
    drive_commits(*c, 80);
    const auto& firings = c->injector(fired_node)->firings();
    ASSERT_FALSE(firings.empty()) << "replay produced no firing on the recorded node";
    EXPECT_EQ(firings.front().point, observed.point);
  }
}

TEST(FaultCluster, InjectorsRearmAcrossTrialReset) {
  fault::InjectorConfig inj;
  inj.mode = fault::Mode::RunLength;
  inj.run_length = 30;
  inj.restart_delay = 500ms;
  auto c = start_cluster(fault_config(inj, 11));
  drive_commits(*c, 60);
  const std::uint64_t first = c->fault_firings();
  EXPECT_GE(first, 1u);

  c->reset(std::uint64_t{11});  // same seed: the trial replays identically
  ASSERT_TRUE(c->await_leader(30s));
  drive_commits(*c, 60);
  EXPECT_EQ(c->fault_firings(), first);
  EXPECT_EQ(c->audit_invariants(), 0u);
}

TEST(FaultScenario, RunnerCompilesCrashPointsAndCountsFirings) {
  scenario::ScenarioSpec spec;
  spec.name = "crash-points";
  spec.servers = 5;
  spec.seed = 5;
  spec.warmup = 2s;
  fault::InjectorConfig inj;
  inj.mode = fault::Mode::UniformOverRun;
  inj.uniform_max = 400;
  inj.restart_delay = 500ms;
  spec.faults = scenario::FaultPlan::probabilistic_crashes(inj);
  wl::MixConfig mix;
  mix.clients = 4;
  mix.duration = 10s;
  spec.workload = scenario::WorkloadPlan::closed_loop(mix);

  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  EXPECT_TRUE(r.leader_elected);
  EXPECT_EQ(r.invariant_violations, 0u);
  // UniformOverRun across 5 nodes over a 10s loaded window: expect at least
  // one plug pulled (deterministic for this seed — pinned, not flaky).
  EXPECT_GE(r.crash_firings, 1u);
}

}  // namespace
}  // namespace dyna
