// End-to-end Dynatune behaviour on a live cluster: measurement plumbing,
// convergence of tuned parameters, fallback on spikes, and the headline
// detection-time improvement (directional, not absolute).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "dynatune/policy.hpp"
#include "scenario/runner.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;
using testutil::constant_link;
using testutil::policy_of;
using testutil::start_cluster;

TEST(DynatuneIntegration, FollowersWarmUpAndTuneEt) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(5, 1);
  cfg.links = constant_link(100ms);
  auto c = start_cluster(std::move(cfg));
  c->sim().run_for(10s);
  const NodeId leader = c->current_leader();
  int warmed = 0;
  for (const NodeId id : c->server_ids()) {
    if (id == leader) continue;
    auto& p = policy_of(*c, id);
    if (p.warmed_up()) {
      ++warmed;
      ASSERT_TRUE(p.tuned_election_timeout().has_value());
      // Et = mu + 2 sigma over ~100 ms RTT with sub-ms jitter.
      EXPECT_NEAR(to_ms(*p.tuned_election_timeout()), 100.0, 15.0) << "node " << id;
    }
  }
  EXPECT_GE(warmed, 3);  // occasional fallback re-warm is tolerated
}

TEST(DynatuneIntegration, LeaderMeasuresPerPathRtt) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(3, 2);
  cfg.links = constant_link(40ms);
  Cluster c(std::move(cfg));
  // Make one path slow before traffic flows.
  c.network().set_path_schedule(0, 2, constant_link(240ms));
  c.network().set_path_schedule(1, 2, constant_link(240ms));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(10s);
  const NodeId leader = c.current_leader();
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    const auto rtt = c.node(leader).last_measured_rtt(id);
    ASSERT_TRUE(rtt.has_value()) << "node " << id;
    const double expect = (id == 2 || leader == 2) ? 240.0 : 40.0;
    EXPECT_NEAR(to_ms(*rtt), expect, expect * 0.25) << "node " << id;
  }
}

TEST(DynatuneIntegration, PerFollowerHeartbeatIntervalsDiffer) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(3, 3);
  cfg.links = constant_link(40ms);
  Cluster c(std::move(cfg));
  c.network().set_path_schedule(0, 2, constant_link(240ms));
  c.network().set_path_schedule(1, 2, constant_link(240ms));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(15s);
  const NodeId leader = c.current_leader();
  std::vector<double> intervals;
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    intervals.push_back(to_ms(c.node(leader).effective_heartbeat_interval(id)));
  }
  ASSERT_EQ(intervals.size(), 2u);
  // The slow path's h must be several times the fast path's.
  const double hi = std::max(intervals[0], intervals[1]);
  const double lo = std::min(intervals[0], intervals[1]);
  EXPECT_GT(hi / lo, 2.5);
}

TEST(DynatuneIntegration, RttSpikeTriggersFallbackWithoutOts) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(5, 4);
  net::LinkCondition base;
  base.jitter = 1ms;
  cfg.links = net::ConditionSchedule::rtt_spike(base, 50ms, 500ms, kSimEpoch + 30s, 30s);
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(25s);  // tuned at RTT 50
  const NodeId leader_before = c.current_leader();
  const raft::Term term_before = c.node(leader_before).term();

  // Cross the spike, sampling availability each second.
  int unavailable = 0;
  for (int i = 0; i < 40; ++i) {
    c.sim().run_for(1s);
    if (!cluster::service_available(c)) ++unavailable;
  }
  EXPECT_LE(unavailable, 1);  // pre-vote absorbs the false detections
  EXPECT_EQ(c.current_leader(), leader_before);
  EXPECT_EQ(c.node(leader_before).term(), term_before);  // no real election
  // Fallback happened: some follower timers expired during the spike.
  EXPECT_GT(c.probe().timeouts().size(), 0u);
}

TEST(DynatuneIntegration, ReTunesToSpikeLevelDuringLongSpike) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(5, 5);
  net::LinkCondition base;
  base.jitter = 1ms;
  cfg.links = net::ConditionSchedule::rtt_spike(base, 50ms, 400ms, kSimEpoch + 20s, 120s);
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_until(kSimEpoch + 80s);  // a minute into the spike
  const NodeId leader = c.current_leader();
  ASSERT_NE(leader, kNoNode);
  int tuned_high = 0;
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    const auto et = policy_of(c, id).tuned_election_timeout();
    if (et && to_ms(*et) > 300.0) ++tuned_high;
  }
  EXPECT_GE(tuned_high, 3);  // followers re-learned the 400 ms regime
}

TEST(DynatuneIntegration, DetectionFasterThanBaselineRaft) {
  auto run = [](bool dynatune) {
    scenario::ScenarioSpec spec;
    spec.variant = dynatune ? scenario::Variant::Dynatune : scenario::Variant::Raft;
    spec.servers = 5;
    spec.seed = 6;
    spec.topology = scenario::TopologySpec::constant(100ms);
    spec.faults = scenario::FaultPlan::leader_kills(10, 8s);
    const auto samples = scenario::ScenarioRunner::run(spec).failovers;
    double sum = 0;
    int n = 0;
    for (const auto& s : samples) {
      if (s.ok) {
        sum += s.detection_ms;
        ++n;
      }
    }
    return n > 0 ? sum / n : 1e9;
  };
  const double raft_detect = run(false);
  const double dyna_detect = run(true);
  // The paper reports -80%; directionally we demand at least 3x better.
  EXPECT_LT(dyna_detect * 3.0, raft_detect)
      << "dynatune=" << dyna_detect << " raft=" << raft_detect;
}

TEST(DynatuneIntegration, HeartbeatsUseDatagramChannel) {
  cluster::ClusterConfig cfg = cluster::make_dynatune_config(3, 7);
  // Datagram heartbeats must actually experience loss.
  cfg.links = constant_link(50ms, {}, 0.3);
  Cluster c(std::move(cfg));
  ASSERT_TRUE(c.await_leader(60s));
  c.sim().run_for(20s);
  // Heavy datagram loss is visible in the traffic counters.
  std::uint64_t lost = 0;
  for (const NodeId id : c.server_ids()) lost += c.network().traffic(id).lost;
  EXPECT_GT(lost, 0u);
  // And the followers' loss estimators see a rate near the configured one.
  const NodeId leader = c.current_leader();
  ASSERT_NE(leader, kNoNode);
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    auto& p = policy_of(c, id);
    if (p.warmed_up() && p.loss().count() > 30) {
      EXPECT_NEAR(p.loss().loss_rate(), 0.3, 0.12) << "node " << id;
    }
  }
}

TEST(DynatuneIntegration, BaselineRaftAttachesNoMeta) {
  Cluster c(cluster::make_raft_config(3, 8));
  ASSERT_TRUE(c.await_leader(30s));
  c.sim().run_for(5s);
  const NodeId leader = c.current_leader();
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    EXPECT_FALSE(c.node(leader).last_measured_rtt(id).has_value());
  }
}

}  // namespace
}  // namespace dyna
