#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace dyna {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DeriveSeed, StreamsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(derive_seed(7, s));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(DeriveSeed, PureFunction) {
  EXPECT_EQ(derive_seed(123, 5), derive_seed(123, 5));
  EXPECT_NE(derive_seed(123, 5), derive_seed(124, 5));
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 7.5);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(4);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT(rng.uniform_index(bound), bound);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng(6);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_index(5)]++;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRateMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal(10.0, 3.0);
    sum += z;
    sumsq += z * z;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(12);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

/// Property sweep: every seed yields in-range, reproducible draws.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, ReproducibleAndInRange) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 500; ++i) {
    const double u = a.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    ASSERT_DOUBLE_EQ(u, b.uniform());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 0xDEADBEEFULL, 0xFFFFFFFFFFFFFFFFULL,
                                           42ULL, 31337ULL));

}  // namespace
}  // namespace dyna
