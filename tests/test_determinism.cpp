// Whole-system determinism: a trial is a pure function of its seed.
//
// Every experiment in this repo rests on this property — two clusters with
// the same seed, driven through the same fault script, must produce
// bit-identical event traces, logs and state machines.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "kvstore/client.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

/// Serialize everything observable about a run into one comparable string.
std::string trace_of(std::uint64_t seed, bool dynatune) {
  cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(5, seed)
                                        : cluster::make_raft_config(5, seed);
  net::LinkCondition link;
  link.rtt = 60ms;
  link.jitter = 5ms;
  link.loss = 0.02;
  cfg.links = net::ConditionSchedule::constant(link);
  cfg.transport.stall.mean_interval = 3s;
  Cluster c(std::move(cfg));
  c.await_leader(60s);

  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(1));
  for (int i = 0; i < 20; ++i) {
    client.put("k" + std::to_string(i), "v" + std::to_string(i), nullptr);
  }
  c.sim().run_for(5s);

  // Scripted fault sequence.
  const NodeId leader = c.current_leader();
  if (leader != kNoNode) {
    c.pause(leader);
    c.sim().run_for(8s);
    c.resume(leader);
  }
  c.sim().run_for(8s);

  std::ostringstream out;
  out << "events=" << c.sim().executed() << ";";
  for (const auto& e : c.probe().role_changes()) {
    out << e.node << ":" << to_string(e.from) << ">" << to_string(e.to) << "@"
        << e.when.time_since_epoch().count() << "#" << e.term << ";";
  }
  for (const auto& e : c.probe().leaders()) {
    out << "L" << e.leader << "#" << e.term << "@" << e.when.time_since_epoch().count() << ";";
  }
  for (const NodeId id : c.server_ids()) {
    out << "n" << id << ":commit=" << c.node(id).commit_index()
        << ",term=" << c.node(id).term() << ",log=" << c.node(id).log().size()
        << ",rev=" << c.state_machine(id).revision() << ";";
  }
  return out.str();
}

class DeterminismSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(DeterminismSweep, IdenticalSeedIdenticalTrace) {
  const auto [seed, dynatune] = GetParam();
  const std::string a = trace_of(seed, dynatune);
  const std::string b = trace_of(seed, dynatune);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Combine(::testing::Values(3ULL, 17ULL, 255ULL),
                                            ::testing::Bool()));

TEST(Determinism, DifferentSeedsProduceDifferentTraces) {
  EXPECT_NE(trace_of(1001, true), trace_of(2002, true));
}

TEST(Determinism, FailoverExperimentReproducible) {
  auto run = [] {
    Cluster c(cluster::make_raft_config(5, 88));
    cluster::FailoverOptions opt;
    opt.kills = 3;
    opt.settle = 3s;
    const auto samples = cluster::FailoverExperiment::run(c, opt);
    std::ostringstream out;
    for (const auto& s : samples) out << s.detection_ms << "," << s.ots_ms << ";";
    return out.str();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dyna
