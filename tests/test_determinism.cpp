// Whole-system determinism: a trial is a pure function of its seed.
//
// Every experiment in this repo rests on this property — two clusters with
// the same seed, driven through the same fault script, must produce
// bit-identical event traces, logs and state machines.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "kvstore/client.hpp"
#include "scenario/runner.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;
using testutil::constant_link;

/// Serialize everything observable about a run into one comparable string.
std::string trace_of(std::uint64_t seed, bool dynatune) {
  cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(5, seed)
                                        : cluster::make_raft_config(5, seed);
  cfg.links = constant_link(60ms, 5ms, 0.02);
  cfg.transport.stall.mean_interval = 3s;
  Cluster c(std::move(cfg));
  c.await_leader(60s);

  kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(1));
  for (int i = 0; i < 20; ++i) {
    client.put("k" + std::to_string(i), "v" + std::to_string(i), nullptr);
  }
  c.sim().run_for(5s);

  // Scripted fault sequence.
  const NodeId leader = c.current_leader();
  if (leader != kNoNode) {
    c.pause(leader);
    c.sim().run_for(8s);
    c.resume(leader);
  }
  c.sim().run_for(8s);

  std::ostringstream out;
  out << "events=" << c.sim().executed() << ";";
  for (const auto& e : c.probe().role_changes()) {
    out << e.node << ":" << to_string(e.from) << ">" << to_string(e.to) << "@"
        << e.when.time_since_epoch().count() << "#" << e.term << ";";
  }
  for (const auto& e : c.probe().leaders()) {
    out << "L" << e.leader << "#" << e.term << "@" << e.when.time_since_epoch().count() << ";";
  }
  for (const NodeId id : c.server_ids()) {
    out << "n" << id << ":commit=" << c.node(id).commit_index()
        << ",term=" << c.node(id).term() << ",log=" << c.node(id).log().size()
        << ",rev=" << c.state_machine(id).revision() << ";";
  }
  return out.str();
}

class DeterminismSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(DeterminismSweep, IdenticalSeedIdenticalTrace) {
  const auto [seed, dynatune] = GetParam();
  const std::string a = trace_of(seed, dynatune);
  const std::string b = trace_of(seed, dynatune);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Combine(::testing::Values(3ULL, 17ULL, 255ULL),
                                            ::testing::Bool()));

TEST(Determinism, DifferentSeedsProduceDifferentTraces) {
  EXPECT_NE(trace_of(1001, true), trace_of(2002, true));
}

/// Full scenario path: timeline sampling plus failover kills on a
/// fluctuating Dynatune WAN, serialized down to every metric field. Two runs
/// with one seed must agree byte-for-byte; a different seed must not.
std::string experiment_trace_of(std::uint64_t seed) {
  net::LinkCondition base;
  base.jitter = 2ms;
  base.loss = 0.01;

  scenario::ScenarioSpec spec;
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 5;
  spec.seed = seed;
  spec.topology.schedule = net::ConditionSchedule::rtt_steps(base, {40ms, 160ms, 80ms}, 20s);
  spec.await_leader = 60s;
  spec.samples = scenario::SamplePlan::every(1s, 30s);
  spec.faults = scenario::FaultPlan::leader_kills(2, 3s);

  auto c = scenario::ScenarioRunner::materialize(spec);
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run_on(*c, spec);

  std::ostringstream out;
  out.precision(17);  // doubles round-trip exactly -> byte-identical or bust

  for (const auto& p : r.samples) {
    out << "T" << p.t_sec << "," << p.randomized_kth_ms << "," << p.rtt_ms << ","
        << !p.available << ";";
  }
  for (const auto& s : r.failovers) {
    out << "F" << s.detection_ms << "," << s.ots_ms << "," << s.election_ms << ","
        << s.mean_randomized_ms << "," << s.ok << ";";
  }

  out << "events=" << c->sim().executed() << ";";
  for (const NodeId id : c->server_ids()) {
    const auto& t = c->network().traffic(id);
    out << "n" << id << ":commit=" << c->node(id).commit_index()
        << ",term=" << c->node(id).term() << ",sent=" << t.sent << ",recv=" << t.received
        << ",lost=" << t.lost << ";";
  }
  return out.str();
}

TEST(Determinism, FullExperimentPathByteIdentical) {
  const std::string a = experiment_trace_of(7);
  EXPECT_EQ(a, experiment_trace_of(7));
  EXPECT_FALSE(a.empty());
}

TEST(Determinism, FullExperimentPathSeedSensitive) {
  EXPECT_NE(experiment_trace_of(7), experiment_trace_of(8));
}

TEST(Determinism, FailoverScenarioReproducible) {
  auto run = [] {
    scenario::ScenarioSpec spec;
    spec.variant = scenario::Variant::Raft;
    spec.servers = 5;
    spec.seed = 88;
    spec.faults = scenario::FaultPlan::leader_kills(3, 3s);
    const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
    std::ostringstream out;
    for (const auto& s : r.failovers) out << s.detection_ms << "," << s.ots_ms << ";";
    return out.str();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dyna
