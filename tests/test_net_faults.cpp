// Fault-model tests: pause semantics, partitions, stalls, TCP turbulence.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "test_support.hpp"

namespace dyna::net {
namespace {

using namespace std::chrono_literals;

using Harness = testutil::NetHarness;

TEST(Pause, DatagramsDroppedWhilePaused) {
  Harness h;
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.set_paused(b, true);
  h.net.send(a, b, Message(1), Transport::Datagram);
  h.sim.run_all();
  EXPECT_TRUE(h.received.empty());
  EXPECT_EQ(h.net.traffic(b).dropped_paused, 1u);
  h.net.set_paused(b, false);
  h.sim.run_all();
  EXPECT_TRUE(h.received.empty());  // datagrams are gone for good
}

TEST(Pause, ReliableParkedAndFlushedOnResume) {
  Harness h;
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.set_paused(b, true);
  for (int i = 0; i < 5; ++i) h.net.send(a, b, Message(i), Transport::Reliable);
  h.sim.run_all();
  EXPECT_TRUE(h.received.empty());
  h.net.set_paused(b, false);
  h.sim.run_all();
  EXPECT_EQ(h.payloads(), (std::vector<int>{0, 1, 2, 3, 4}));  // order preserved
}

TEST(Pause, MessagesSentBeforePauseStillArriveAfterResume) {
  Harness h;
  LinkCondition cond;
  cond.rtt = 100ms;
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.send(a, b, Message(9), Transport::Reliable);  // in flight ~50ms
  h.net.set_paused(b, true);
  h.sim.run_for(200ms);  // delivery parked
  EXPECT_TRUE(h.received.empty());
  h.net.set_paused(b, false);
  h.sim.run_all();
  EXPECT_EQ(h.payloads(), std::vector<int>{9});
}

TEST(Partition, BlockedLinkDropsSilently) {
  Harness h;
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  h.net.set_blocked(a, b, true);
  h.net.send(a, b, Message(1), Transport::Reliable);
  h.net.send(a, b, Message(2), Transport::Datagram);
  h.sim.run_all();
  EXPECT_TRUE(h.received.empty());
  h.net.set_blocked(a, b, false);
  h.net.send(a, b, Message(3), Transport::Reliable);
  h.sim.run_all();
  EXPECT_EQ(h.payloads(), std::vector<int>{3});
}

TEST(Partition, IsolateCutsBothDirections) {
  Harness h;
  const NodeId a = h.add_receiver();
  const NodeId b = h.add_receiver();
  const NodeId c = h.add_receiver();
  h.net.isolate(b, true);
  h.net.send(a, b, Message(1), Transport::Datagram);
  h.net.send(b, a, Message(2), Transport::Datagram);
  h.net.send(a, c, Message(3), Transport::Datagram);
  h.sim.run_all();
  EXPECT_EQ(h.payloads(), std::vector<int>{3});  // only a->c got through
  h.net.isolate(b, false);
  h.net.send(a, b, Message(4), Transport::Datagram);
  h.sim.run_all();
  EXPECT_EQ(h.payloads(), (std::vector<int>{3, 4}));
}

TEST(Stalls, DisabledByDefault) {
  Harness h;
  const NodeId a = h.net.add_node();
  (void)a;
  EXPECT_EQ(h.net.stall_penalty(a, kSimEpoch + 1h), Duration{0});
}

TEST(Stalls, ProduceDelayBursts) {
  Network::Config cfg;
  cfg.stall.mean_interval = 100ms;  // very frequent for the test
  cfg.stall.duration_median_ms = 20.0;
  cfg.stall.duration_sigma = 0.5;
  Harness h(cfg);
  LinkCondition cond;
  cond.rtt = 10ms;
  h.net.set_default_schedule(ConditionSchedule::constant(cond));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();

  // Send a message every 5 ms for 10 s and look at delivery delays.
  int sent = 0;
  std::vector<double> delays;
  std::function<void()> pump = [&] {
    if (sent >= 2000) return;
    ++sent;
    const TimePoint t0 = h.sim.now();
    h.net.send(a, b, Message(sent), Transport::Datagram);
    h.sim.schedule_after(5ms, pump);
    (void)t0;
  };
  h.sim.schedule_after(0ms, pump);
  h.sim.run_until(kSimEpoch + 30s);

  // Stalls must have delayed a visible share of messages beyond the nominal
  // one-way delay, but most messages travel clean.
  EXPECT_GT(h.received.size(), 1500u);
}

TEST(Stalls, PenaltyIsRenewalProcess) {
  Network::Config cfg;
  cfg.stall.mean_interval = 50ms;
  cfg.stall.duration_median_ms = 10.0;
  cfg.stall.duration_sigma = 0.3;
  Harness h(cfg);
  const NodeId a = h.net.add_node();
  // Penalties are non-negative and eventually zero between windows.
  int zero = 0, positive = 0;
  for (int i = 0; i < 1000; ++i) {
    const Duration p = h.net.stall_penalty(a, kSimEpoch + i * 7ms);
    ASSERT_GE(p.count(), 0);
    if (p.count() == 0) {
      ++zero;
    } else {
      ++positive;
    }
  }
  EXPECT_GT(zero, 0);
  EXPECT_GT(positive, 0);
}

TEST(Turbulence, RttJumpStallsActiveReliableStream) {
  Network::Config cfg;
  cfg.tcp_turbulence = true;
  Harness h(cfg);
  LinkCondition lo;
  lo.rtt = 50ms;
  LinkCondition hi;
  hi.rtt = 500ms;
  h.net.set_default_schedule(ConditionSchedule({{kSimEpoch, lo}, {kSimEpoch + 1s, hi}}));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();

  // Keep the stream active across the jump.
  for (int i = 0; i < 20; ++i) {
    h.sim.schedule_at(kSimEpoch + i * 100ms, [&, i] {
      h.net.send(a, b, Message(i), Transport::Datagram);  // keepalive marker
      h.net.send(a, b, Message(1000 + i), Transport::Reliable);
    });
  }
  h.sim.run_until(kSimEpoch + 990ms);
  const std::size_t before = h.received.size();
  // First post-jump reliable send happens at t=1.0s; turbulence holds the
  // stream for 1.5 x 500 ms = 750 ms, so nothing reliable arrives before
  // ~1.75s + one-way.
  h.sim.run_until(kSimEpoch + 1700ms);
  std::size_t reliable_during_turbulence = 0;
  for (std::size_t i = before; i < h.received.size(); ++i) {
    if (h.received[i].second >= 1000) ++reliable_during_turbulence;
  }
  EXPECT_EQ(reliable_during_turbulence, 0u);
  h.sim.run_until(kSimEpoch + 5s);
  int reliable_total = 0;
  for (int v : h.payloads()) {
    if (v >= 1000) ++reliable_total;
  }
  EXPECT_EQ(reliable_total, 20);  // reliable means reliable: all arrive eventually
}

TEST(Turbulence, IdleStreamsAreExempt) {
  Network::Config cfg;
  cfg.tcp_turbulence = true;
  Harness h(cfg);
  LinkCondition lo;
  lo.rtt = 50ms;
  LinkCondition hi;
  hi.rtt = 500ms;
  h.net.set_default_schedule(ConditionSchedule({{kSimEpoch, lo}, {kSimEpoch + 1s, hi}}));
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();

  // One pre-jump send long before, then silence across the jump.
  h.sim.schedule_at(kSimEpoch + 10ms, [&] {
    h.net.send(a, b, Message(1), Transport::Reliable);
  });
  h.sim.run_until(kSimEpoch + 2s);
  const std::size_t before = h.received.size();
  // Idle across the jump: this send sees the new RTT cleanly (~250 ms).
  h.net.send(a, b, Message(2), Transport::Reliable);
  h.sim.run_until(kSimEpoch + 2s + 400ms);
  EXPECT_EQ(h.received.size(), before + 1);
}

TEST(Turbulence, GradualChangesDoNotTrigger) {
  Network::Config cfg;
  cfg.tcp_turbulence = true;
  Harness h(cfg);
  LinkCondition base;
  // +20% steps stay under the 50% threshold.
  auto sched = ConditionSchedule::rtt_steps(base, {100ms, 120ms, 144ms}, 500ms);
  h.net.set_default_schedule(sched);
  const NodeId a = h.net.add_node();
  const NodeId b = h.add_receiver();
  for (int i = 0; i < 15; ++i) {
    h.sim.schedule_at(kSimEpoch + i * 100ms, [&, i] {
      h.net.send(a, b, Message(i), Transport::Reliable);
    });
  }
  h.sim.run_until(kSimEpoch + 5s);
  EXPECT_EQ(h.received.size(), 15u);
  // All delays stay near one-way (<= ~80 ms), i.e. no turbulence holds.
}

}  // namespace
}  // namespace dyna::net
