// Sweep execution: cross-product enumeration, seed pairing, bit-identical
// results across thread counts, and the first n > 5 coverage (election,
// failover and Dynatune warm-up at n = 7 and n = 9) through ScenarioRunner.
#include <gtest/gtest.h>

#include "dynatune/policy.hpp"
#include "scenario/runner.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using testutil::policy_of;

TEST(ScenarioSweep, CrossProductEnumerationIsVariantMajorAndSeedPaired) {
  scenario::SweepSpec sweep;
  sweep.base.name = "enum";
  sweep.base.topology = scenario::TopologySpec::constant(40ms);
  sweep.base.await_leader = 100ms;  // no leader needed: enumeration test only
  sweep.variants = {scenario::Variant::Raft, scenario::Variant::Dynatune};
  sweep.sizes = {3, 5};
  sweep.seeds = 2;
  sweep.master_seed = 77;
  sweep.threads = 2;

  const auto results = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(results.size(), 8u);

  const std::uint64_t s0 = scenario::ScenarioRunner::sweep_seed(sweep, 0);
  const std::uint64_t s1 = scenario::ScenarioRunner::sweep_seed(sweep, 1);
  EXPECT_NE(s0, s1);

  std::size_t i = 0;
  for (const std::string variant : {"Raft", "Dynatune"}) {
    for (const std::size_t n : {3u, 5u}) {
      for (const std::uint64_t seed : {s0, s1}) {
        EXPECT_EQ(results[i].variant, variant) << "cell " << i;
        EXPECT_EQ(results[i].servers, n) << "cell " << i;
        EXPECT_EQ(results[i].seed, seed) << "cell " << i;
        ++i;
      }
    }
  }
}

TEST(ScenarioSweep, BitIdenticalAcrossThreadCounts) {
  // The acceptance contract: a >= 3 sizes x >= 5 seeds sweep produces
  // bit-identical ScenarioResults on 1 thread and on N threads. Equality is
  // the defaulted == over every sample series and counter — any divergence
  // in any double fails.
  scenario::SweepSpec sweep;
  sweep.base.name = "determinism";
  sweep.base.variant = scenario::Variant::Dynatune;
  sweep.base.topology = scenario::TopologySpec::constant(60ms, 2ms, 0.01);
  sweep.base.faults = scenario::FaultPlan::leader_kills(1, 2s);
  sweep.base.samples = scenario::SamplePlan::every(1s, 3s, /*kth=*/2);
  sweep.sizes = {3, 5, 7};
  sweep.seeds = 5;
  sweep.master_seed = 99;

  sweep.threads = 1;
  const auto serial = scenario::ScenarioRunner::run_sweep(sweep);
  sweep.threads = 8;
  const auto parallel = scenario::ScenarioRunner::run_sweep(sweep);

  ASSERT_EQ(serial.size(), 15u);
  ASSERT_EQ(parallel.size(), 15u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i << " (n=" << serial[i].servers
                                      << ", seed=" << serial[i].seed << ")";
  }
}

// ---- n > 5: first exercise of the n*n link table / arena above five servers ----

class LargeClusterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LargeClusterSweep, ElectsAndSurvivesFailovers) {
  const std::size_t n = GetParam();
  scenario::ScenarioSpec spec;
  spec.name = "scale";
  spec.variant = scenario::Variant::Raft;
  spec.servers = n;
  spec.seed = 5 + n;
  spec.topology = scenario::TopologySpec::constant(80ms, 1ms);
  spec.faults = scenario::FaultPlan::leader_kills(2, 3s);
  spec.samples = scenario::SamplePlan::every(1s, 5s, /*kth=*/n / 2 + 1);

  const scenario::ScenarioResult r = scenario::ScenarioRunner::run(spec);
  ASSERT_TRUE(r.leader_elected);
  ASSERT_EQ(r.failovers.size(), 2u);
  for (const auto& s : r.failovers) {
    EXPECT_TRUE(s.ok);
    EXPECT_GT(s.detection_ms, 0.0);
    EXPECT_GT(s.ots_ms, s.detection_ms);
  }
  for (const auto& p : r.samples) {
    EXPECT_GT(p.randomized_kth_ms, 0.0);  // f+1 nodes always running
  }
}

TEST_P(LargeClusterSweep, DynatuneWarmsUpAndTunes) {
  const std::size_t n = GetParam();
  scenario::ScenarioSpec spec;
  spec.name = "scale-dynatune";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = n;
  spec.seed = 50 + n;
  spec.topology = scenario::TopologySpec::constant(100ms, 1ms);
  spec.warmup = 10s;
  spec.sample_paths = true;

  auto c = scenario::ScenarioRunner::materialize(spec);
  const scenario::ScenarioResult r = scenario::ScenarioRunner::run_on(*c, spec);
  ASSERT_TRUE(r.leader_elected);
  ASSERT_EQ(r.paths.size(), n - 1);

  // A majority of followers warmed up and tuned Et toward the 100 ms RTT.
  std::size_t warmed = 0;
  for (const NodeId id : c->server_ids()) {
    if (id == r.paths_leader) continue;
    auto& p = policy_of(*c, id);
    if (p.warmed_up() && p.tuned_election_timeout().has_value()) {
      EXPECT_NEAR(to_ms(*p.tuned_election_timeout()), 100.0, 25.0) << "node " << id;
      ++warmed;
    }
  }
  EXPECT_GE(warmed, n / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(N7N9, LargeClusterSweep, ::testing::Values(7u, 9u));

}  // namespace
}  // namespace dyna
