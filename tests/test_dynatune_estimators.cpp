// RTT and packet-loss estimators (the paper's RTTs / ids lists).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dynatune/loss_estimator.hpp"
#include "dynatune/rtt_estimator.hpp"

namespace dyna::dt {
namespace {

using namespace std::chrono_literals;

TEST(RttEstimator, StartsEmpty) {
  RttEstimator est(100);
  EXPECT_TRUE(est.empty());
  EXPECT_EQ(est.count(), 0u);
}

TEST(RttEstimator, MeanAndStddevOfKnownSamples) {
  RttEstimator est(100);
  est.record(100ms);
  est.record(110ms);
  est.record(120ms);
  EXPECT_EQ(est.count(), 3u);
  EXPECT_NEAR(est.mean_ms(), 110.0, 1e-9);
  EXPECT_NEAR(est.stddev_ms(), 8.1649658, 1e-6);  // population stddev
}

TEST(RttEstimator, WindowEvictsOldest) {
  RttEstimator est(3);
  est.record(10ms);
  est.record(20ms);
  est.record(30ms);
  est.record(40ms);  // evicts 10
  EXPECT_EQ(est.count(), 3u);
  EXPECT_NEAR(est.mean_ms(), 30.0, 1e-9);
}

TEST(RttEstimator, ResetDiscardsEverything) {
  RttEstimator est(10);
  est.record(50ms);
  est.reset();
  EXPECT_TRUE(est.empty());
  est.record(70ms);
  EXPECT_NEAR(est.mean_ms(), 70.0, 1e-9);
}

TEST(RttEstimator, TracksShiftingDistribution) {
  // After an RTT regime change, a full window refill converges the mean.
  RttEstimator est(50);
  for (int i = 0; i < 50; ++i) est.record(100ms);
  EXPECT_NEAR(est.mean_ms(), 100.0, 1e-9);
  for (int i = 0; i < 50; ++i) est.record(500ms);
  EXPECT_NEAR(est.mean_ms(), 500.0, 1e-9);
  EXPECT_NEAR(est.stddev_ms(), 0.0, 1e-9);
}

TEST(LossEstimator, NoLossGivesZero) {
  LossEstimator est(100);
  for (std::uint64_t id = 1; id <= 50; ++id) EXPECT_TRUE(est.record(id));
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
}

TEST(LossEstimator, FewerThanTwoIdsMeansZero) {
  LossEstimator est(10);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
  est.record(5);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
}

TEST(LossEstimator, ComputesPaperFormula) {
  // ids {1,2,4,5}: expected = 5, received = 4 => p = 1 - 4/5 = 0.2.
  LossEstimator est(100);
  for (std::uint64_t id : {1, 2, 4, 5}) est.record(id);
  EXPECT_NEAR(est.loss_rate(), 0.2, 1e-12);
}

TEST(LossEstimator, DuplicatesIgnored) {
  LossEstimator est(100);
  EXPECT_TRUE(est.record(1));
  EXPECT_FALSE(est.record(1));
  EXPECT_TRUE(est.record(2));
  EXPECT_FALSE(est.record(2));
  EXPECT_EQ(est.count(), 2u);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
}

TEST(LossEstimator, ReorderedIdsHandled) {
  // Arrival order 3,1,2 is the in-order set {1,2,3}: no loss.
  LossEstimator est(100);
  est.record(3);
  est.record(1);
  est.record(2);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
}

TEST(LossEstimator, WindowEvictsSmallestId) {
  LossEstimator est(3);
  for (std::uint64_t id : {1, 2, 3, 4}) est.record(id);  // evicts 1
  EXPECT_EQ(est.count(), 3u);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);  // {2,3,4} contiguous
}

TEST(LossEstimator, StaleStragglerBelowWindowIgnored) {
  LossEstimator est(3);
  for (std::uint64_t id : {10, 11, 12}) est.record(id);
  EXPECT_FALSE(est.record(1));  // below the retained window once full
  EXPECT_EQ(est.count(), 3u);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
}

TEST(LossEstimator, ResetRestartsMeasurement) {
  LossEstimator est(100);
  est.record(1);
  est.record(5);
  EXPECT_GT(est.loss_rate(), 0.0);
  est.reset();
  EXPECT_EQ(est.count(), 0u);
  EXPECT_DOUBLE_EQ(est.loss_rate(), 0.0);
}

/// Property: feeding a Bernoulli(p) loss pattern yields an estimate near p.
class LossRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossRateSweep, EstimateMatchesTrueRate) {
  const double p = GetParam();
  LossEstimator est(1000);
  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 17);
  for (std::uint64_t id = 1; id <= 5000; ++id) {
    if (!rng.bernoulli(p)) est.record(id);
  }
  EXPECT_NEAR(est.loss_rate(), p, 0.03) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Rates, LossRateSweep,
                         ::testing::Values(0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.5));

/// Property: the estimator is insensitive to arrival permutations within a
/// bounded reorder horizon.
TEST(LossEstimator, OrderInsensitiveWithinWindow) {
  Rng rng(99);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t id = 1; id <= 500; ++id) {
    if (!rng.bernoulli(0.2)) ids.push_back(id);
  }
  LossEstimator in_order(1000);
  for (const auto id : ids) in_order.record(id);

  // Local shuffles (swap neighbours) simulate datagram reordering.
  std::vector<std::uint64_t> shuffled = ids;
  for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2) std::swap(shuffled[i], shuffled[i + 1]);
  LossEstimator reordered(1000);
  for (const auto id : shuffled) reordered.record(id);

  EXPECT_DOUBLE_EQ(in_order.loss_rate(), reordered.loss_rate());
}

}  // namespace
}  // namespace dyna::dt
