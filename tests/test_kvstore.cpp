// KV command codec and state machine semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kvstore/command.hpp"
#include "kvstore/state_machine.hpp"

namespace dyna::kv {
namespace {

TEST(Codec, PutRoundTrips) {
  const KvCommand cmd{Op::Put, "key", "value", {}};
  const auto decoded = decode(encode(cmd));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cmd);
}

TEST(Codec, GetAndDelRoundTrip) {
  for (const Op op : {Op::Get, Op::Del}) {
    const KvCommand cmd{op, "some-key", {}, {}};
    const auto decoded = decode(encode(cmd));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, cmd);
  }
}

TEST(Codec, CasRoundTrips) {
  const KvCommand cmd{Op::Cas, "k", "new", "expected"};
  const auto decoded = decode(encode(cmd));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cmd);
}

TEST(Codec, BinarySafeFields) {
  KvCommand cmd{Op::Put, std::string("k\0ey", 4), std::string("v:1:\n,\"x", 8), {}};
  const auto decoded = decode(encode(cmd));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, cmd.key);
  EXPECT_EQ(decoded->value, cmd.value);
}

TEST(Codec, EmptyFieldsSurvive) {
  const KvCommand cmd{Op::Put, "", "", {}};
  const auto decoded = decode(encode(cmd));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cmd);
}

TEST(Codec, RejectsMalformedInput) {
  EXPECT_FALSE(decode("").has_value());
  EXPECT_FALSE(decode("X3:abc").has_value());       // unknown op
  EXPECT_FALSE(decode("P").has_value());            // missing fields
  EXPECT_FALSE(decode("P3:ab").has_value());        // truncated key
  EXPECT_FALSE(decode("P3:abc").has_value());       // PUT without value
  EXPECT_FALSE(decode("Pabc").has_value());         // no length prefix
  EXPECT_FALSE(decode("P3:abc2:xytrailing").has_value());  // trailing bytes
  EXPECT_FALSE(decode("P-1:a1:b").has_value());     // negative length
}

TEST(StateMachine, PutThenGet) {
  KvStateMachine sm;
  EXPECT_EQ(sm.apply(encode({Op::Put, "a", "1", {}})), "OK 1");
  EXPECT_EQ(sm.apply(encode({Op::Get, "a", {}, {}})), "1");
  EXPECT_EQ(sm.size(), 1u);
}

TEST(StateMachine, GetMissingIsNil) {
  KvStateMachine sm;
  EXPECT_EQ(sm.apply(encode({Op::Get, "nope", {}, {}})), "(nil)");
}

TEST(StateMachine, DeleteRemovesAndBumpsRevision) {
  KvStateMachine sm;
  sm.apply(encode({Op::Put, "a", "1", {}}));
  EXPECT_EQ(sm.apply(encode({Op::Del, "a", {}, {}})), "OK 2");
  EXPECT_EQ(sm.apply(encode({Op::Get, "a", {}, {}})), "(nil)");
  EXPECT_EQ(sm.apply(encode({Op::Del, "a", {}, {}})), "(nil)");  // no revision bump
  EXPECT_EQ(sm.revision(), 2u);
}

TEST(StateMachine, CasSucceedsOnlyOnMatch) {
  KvStateMachine sm;
  sm.apply(encode({Op::Put, "a", "1", {}}));
  EXPECT_EQ(sm.apply(encode({Op::Cas, "a", "2", "wrong"})), "FAIL");
  EXPECT_EQ(sm.apply(encode({Op::Get, "a", {}, {}})), "1");
  EXPECT_EQ(sm.apply(encode({Op::Cas, "a", "2", "1"})), "OK 2");
  EXPECT_EQ(sm.apply(encode({Op::Get, "a", {}, {}})), "2");
}

TEST(StateMachine, CasOnMissingKeyFails) {
  KvStateMachine sm;
  EXPECT_EQ(sm.apply(encode({Op::Cas, "ghost", "v", ""})), "FAIL");
}

TEST(StateMachine, MalformedPayloadIsError) {
  KvStateMachine sm;
  EXPECT_EQ(sm.apply("garbage"), "ERR malformed");
  EXPECT_EQ(sm.revision(), 0u);
}

TEST(StateMachine, RevisionCountsMutationsOnly) {
  KvStateMachine sm;
  sm.apply(encode({Op::Put, "a", "1", {}}));
  sm.apply(encode({Op::Get, "a", {}, {}}));
  sm.apply(encode({Op::Get, "a", {}, {}}));
  EXPECT_EQ(sm.revision(), 1u);
}

TEST(StateMachine, DeterministicReplay) {
  // Identical payload sequences must produce identical stores — the property
  // State Machine Replication rests on.
  std::vector<std::string> ops;
  for (int i = 0; i < 50; ++i) {
    ops.push_back(encode({Op::Put, "k" + std::to_string(i % 7), "v" + std::to_string(i), {}}));
    if (i % 5 == 0) ops.push_back(encode({Op::Del, "k" + std::to_string(i % 7), {}, {}}));
  }
  KvStateMachine a, b;
  for (const auto& op : ops) {
    const std::string ra = a.apply(op);
    const std::string rb = b.apply(op);
    ASSERT_EQ(ra, rb);
  }
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.revision(), b.revision());
}

/// Codec property sweep: random commands always round-trip.
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomCommandsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    KvCommand cmd;
    const std::uint64_t pick = rng.uniform_index(4);
    cmd.op = pick == 0 ? Op::Put : pick == 1 ? Op::Get : pick == 2 ? Op::Del : Op::Cas;
    auto rand_str = [&rng] {
      std::string s;
      const std::uint64_t len = rng.uniform_index(20);
      for (std::uint64_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>(rng.uniform_index(256)));
      }
      return s;
    };
    cmd.key = rand_str();
    if (cmd.op == Op::Put || cmd.op == Op::Cas) cmd.value = rand_str();
    if (cmd.op == Op::Cas) cmd.expected = rand_str();
    const auto decoded = decode(encode(cmd));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, cmd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

}  // namespace
}  // namespace dyna::kv
