// The trial-reuse reset contract: a reused substrate must be observationally
// indistinguishable from fresh construction.
//
// Three levels, matching the reset surface:
//   * Simulator — reset-then-reuse replays a randomized schedule/cancel/run
//     script identically to a fresh engine (times, order, counters);
//   * Network — a network that carried traffic, link overrides, partitions,
//     pauses with parked messages and in-flight deliveries replays a
//     deterministic script identically to a fresh network after
//     reset_for_trial (delivery trace, traffic counters, FIFO watermarks);
//   * Cluster / sweep — the same sweep produces byte-identical
//     ScenarioResult vectors via (a) fresh construction per trial and
//     (b) reused substrates, across thread counts 1/2/8, with policies both
//     resettable (Static/Dynatune) and not (custom factory fallback).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using testutil::constant_link;

// ---- Simulator ---------------------------------------------------------------------

/// Trace of one engine run: (fire time, tag) in execution order.
using SimTrace = std::vector<std::pair<TimePoint, int>>;

/// Drive `sim` through a seeded random script of schedules, cancels and
/// steps; returns the execution trace.
SimTrace run_sim_script(sim::Simulator& sim, std::uint64_t seed) {
  SimTrace trace;
  Rng rng(seed);
  std::vector<sim::EventId> live;
  for (int round = 0; round < 200; ++round) {
    const int tag = round;
    const auto delay = from_ms(rng.uniform(0.0, 50.0));
    live.push_back(sim.schedule_after(delay, [&trace, &sim, tag] {
      trace.emplace_back(sim.now(), tag);
    }));
    if (!live.empty() && rng.bernoulli(0.3)) {
      const auto victim = static_cast<std::size_t>(rng.uniform_index(live.size()));
      sim.cancel(live[victim]);  // may be stale: cancel() must cope either way
    }
    if (rng.bernoulli(0.5)) sim.step();
  }
  sim.run_all();
  return trace;
}

TEST(SimulatorReset, ResetThenReuseReplaysIdentically) {
  sim::Simulator reused;
  // Dirty the engine: a full script, plus pending events left behind.
  run_sim_script(reused, 7);
  reused.schedule_after(10ms, [] {});
  reused.schedule_after(20ms, [] {});
  reused.reset();

  EXPECT_EQ(reused.pending(), 0u);
  EXPECT_EQ(reused.executed(), 0u);
  EXPECT_EQ(reused.now(), kSimEpoch);

  sim::Simulator fresh;
  const SimTrace a = run_sim_script(fresh, 99);
  const SimTrace b = run_sim_script(reused, 99);
  EXPECT_EQ(a, b);
  EXPECT_EQ(fresh.executed(), reused.executed());
  EXPECT_EQ(fresh.pending(), reused.pending());
  EXPECT_EQ(fresh.now(), reused.now());
}

TEST(SimulatorReset, StepAfterResetIsEmpty) {
  sim::Simulator s;
  s.schedule_after(5ms, [] { FAIL() << "event survived reset"; });
  s.reset();
  EXPECT_FALSE(s.step());
}

TEST(SimulatorReset, ForgottenTimerNeverCancelsFreshEvents) {
  sim::Simulator s;
  int fired = 0;
  sim::Timer timer(s, [&fired] { ++fired; });
  timer.arm(5ms);  // occupies slot 0, generation 1
  s.reset();
  timer.forget();
  EXPECT_FALSE(timer.armed());

  // The fresh engine hands out slot 0 / generation 1 again. A destructor
  // that cancelled instead of forgetting would kill this stranger's event.
  int stranger = 0;
  s.schedule_after(1ms, [&stranger] { ++stranger; });
  s.run_all();
  EXPECT_EQ(stranger, 1);
  EXPECT_EQ(fired, 0);
}

// ---- Network -----------------------------------------------------------------------

/// Full delivery trace: (receiver, payload, delivery time).
using NetTrace = std::vector<std::tuple<NodeId, int, TimePoint>>;

struct TracedNet {
  sim::Simulator sim;
  net::Network net;
  NetTrace trace;

  explicit TracedNet(std::uint64_t seed) : net(sim, Rng(seed)) { add_nodes(); }

  void add_nodes() {
    for (int i = 0; i < 3; ++i) {
      const NodeId id = net.add_node(nullptr);
      hook(id);
    }
  }

  void hook(NodeId id) {
    net.set_handler(id, [this, id](NodeId /*from*/, const net::Message& p) {
      ASSERT_NE(p.test(), nullptr);
      trace.emplace_back(id, static_cast<int>(p.test()->value), sim.now());
    });
  }

  /// A deterministic workout: mixed transports, jitter/loss, an override
  /// link, a partition, a pause with parked reliable traffic.
  void run_script() {
    net.set_default_schedule(constant_link(40ms, 3ms, 0.05));
    net.set_link_schedule(0, 1, constant_link(10ms));
    net.set_blocked(2, 0, true);
    int payload = 0;
    for (int round = 0; round < 40; ++round) {
      if (round == 10) net.set_paused(1, true);
      if (round == 20) net.set_paused(1, false);
      net.send(0, 1, payload++, net::Transport::Datagram);
      net.send(1, 2, payload++, net::Transport::Reliable);
      net.send(2, 0, payload++, net::Transport::Datagram);  // blocked
      net.send(2, 1, payload++, net::Transport::Reliable);
      sim.run_for(15ms);
    }
    sim.run_all();
  }
};

TEST(NetworkReset, ResetThenReuseReplaysIdentically) {
  TracedNet reused(5);
  reused.run_script();  // dirty everything: counters, watermarks, overrides
  // Leave state mid-flight on purpose: in-flight messages, a pause with
  // parked traffic, a partition, then reset both layers.
  reused.net.set_paused(1, true);
  reused.net.send(0, 1, 999, net::Transport::Reliable);
  reused.net.send(2, 1, 998, net::Transport::Reliable);
  reused.sim.run_for(100ms);
  reused.sim.reset();
  reused.net.reset_for_trial(Rng(77), 3);
  reused.trace.clear();

  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_FALSE(reused.net.paused(id));
    EXPECT_EQ(reused.net.traffic(id).sent, 0u);
    EXPECT_EQ(reused.net.traffic(id).received, 0u);
    EXPECT_EQ(reused.net.traffic(id).lost, 0u);
    EXPECT_EQ(reused.net.traffic(id).dropped_paused, 0u);
  }

  TracedNet fresh(77);
  fresh.run_script();
  reused.run_script();

  EXPECT_EQ(fresh.trace, reused.trace);
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(fresh.net.traffic(id).sent, reused.net.traffic(id).sent) << "node " << id;
    EXPECT_EQ(fresh.net.traffic(id).received, reused.net.traffic(id).received);
    EXPECT_EQ(fresh.net.traffic(id).sent_bytes, reused.net.traffic(id).sent_bytes);
    EXPECT_EQ(fresh.net.traffic(id).lost, reused.net.traffic(id).lost);
  }
}

TEST(NetworkReset, ResizesAcrossTrials) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1));
  for (int i = 0; i < 5; ++i) net.add_node(nullptr);
  EXPECT_EQ(net.node_count(), 5u);
  net.reset_for_trial(Rng(2), 3);
  EXPECT_EQ(net.node_count(), 3u);
  net.reset_for_trial(Rng(3), 7);
  EXPECT_EQ(net.node_count(), 7u);
  // New links start clean in both directions.
  EXPECT_EQ(net.condition(6, 0).rtt, net::LinkCondition{}.rtt);
}

// ---- Cluster -----------------------------------------------------------------------

scenario::ScenarioSpec reuse_spec(std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "reuse";
  spec.variant = scenario::Variant::Dynatune;
  spec.servers = 5;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(60ms, 2ms, 0.01);
  spec.faults = scenario::FaultPlan::leader_kills(1, 2s);
  spec.samples = scenario::SamplePlan::every(1s, 3s, /*kth=*/2);
  return spec;
}

TEST(ClusterReset, SeedResetMatchesFreshConstruction) {
  const scenario::ScenarioSpec first = reuse_spec(11);
  scenario::ScenarioSpec second = reuse_spec(22);

  // Reused: one cluster, two trials through reset(seed).
  auto c = scenario::ScenarioRunner::materialize(first);
  (void)scenario::ScenarioRunner::run_on(*c, first);
  c->reset(second.seed);
  const scenario::ScenarioResult reused = scenario::ScenarioRunner::run_on(*c, second);

  const scenario::ScenarioResult fresh = scenario::ScenarioRunner::run(second);
  EXPECT_EQ(fresh, reused);
}

TEST(ClusterReset, ReconfigureAcrossSizesAndVariantsMatchesFresh) {
  // Trial 1: Dynatune n=5. Trial 2 reuses the same substrate as Raft n=3.
  const scenario::ScenarioSpec first = reuse_spec(3);
  scenario::ScenarioSpec second = reuse_spec(4);
  second.variant = scenario::Variant::Raft;
  second.servers = 3;

  auto c = scenario::ScenarioRunner::materialize(first);
  (void)scenario::ScenarioRunner::run_on(*c, first);
  cluster::ClusterConfig cfg = cluster::make_raft_config(3, second.seed);
  cfg.links = constant_link(60ms, 2ms, 0.01);  // the spec's topology layer
  c->reset(std::move(cfg));
  const scenario::ScenarioResult reused = scenario::ScenarioRunner::run_on(*c, second);

  const scenario::ScenarioResult fresh = scenario::ScenarioRunner::run(second);
  EXPECT_EQ(fresh, reused);
}

scenario::ScenarioSpec snapshot_crash_spec(std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "reuse-snapshot";
  spec.servers = 3;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(40ms);
  spec.snapshot_threshold = 25;
  spec.snapshot_trailing = 5;
  wl::RampConfig ramp;
  ramp.start_rps = 100;
  ramp.step_rps = 100;
  ramp.max_rps = 200;
  ramp.level_duration = 1s;
  spec.workload = scenario::WorkloadPlan::open_loop_ramp(ramp);
  spec.faults = scenario::FaultPlan::crash_restart_kills(1, 2s);
  return spec;
}

TEST(ClusterReset, SnapshotStateDoesNotLeakAcrossTrials) {
  // Trial 1 dirties every snapshot surface: nodes take snapshots, storage
  // persists blobs and a compaction line, a crash/restart recovers from
  // them. Trial 2 on the reused substrate must match fresh construction —
  // i.e. reset_for_trial cleared the node's snapshot handle, the storage's
  // blob and its durable log_start line.
  const scenario::ScenarioSpec first = snapshot_crash_spec(31);
  scenario::ScenarioSpec second = snapshot_crash_spec(32);

  auto c = scenario::ScenarioRunner::materialize(first);
  (void)scenario::ScenarioRunner::run_on(*c, first);
  c->reset(second.seed);
  const scenario::ScenarioResult reused = scenario::ScenarioRunner::run_on(*c, second);

  const scenario::ScenarioResult fresh = scenario::ScenarioRunner::run(second);
  EXPECT_EQ(fresh, reused);
}

// ---- Sweeps ------------------------------------------------------------------------

scenario::SweepSpec isolation_sweep() {
  scenario::SweepSpec sweep;
  sweep.base = reuse_spec(0);
  sweep.variants = {scenario::Variant::Raft, scenario::Variant::Dynatune};
  sweep.sizes = {3, 5};
  sweep.seeds = 4;
  sweep.master_seed = 1234;
  return sweep;
}

TEST(SweepReuse, FreshAndReusedAreByteIdenticalAcrossThreadCounts) {
  scenario::SweepSpec sweep = isolation_sweep();

  sweep.reuse_substrate = false;
  sweep.threads = 1;
  const auto reference = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(reference.size(), 16u);

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const bool reuse : {false, true}) {
      sweep.threads = threads;
      sweep.reuse_substrate = reuse;
      const auto got = scenario::ScenarioRunner::run_sweep(sweep);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "threads=" << threads << " reuse=" << reuse << " cell " << i;
      }
    }
  }
}

TEST(SweepReuse, NonResettableCustomPolicyFallsBackAndStaysExact) {
  // A config_factory policy is opaque to the harness (not resettable), so
  // reuse must rebuild nodes per trial — and still match fresh exactly.
  scenario::SweepSpec sweep = isolation_sweep();
  sweep.variants.clear();
  sweep.sizes = {3};
  sweep.base.config_factory = [](std::size_t servers, std::uint64_t seed) {
    cluster::ClusterConfig cfg = cluster::make_raft_config(servers, seed);
    cfg.raft.election_timeout = 700ms;
    cfg.name = "custom";
    return cfg;
  };

  sweep.reuse_substrate = false;
  const auto fresh = scenario::ScenarioRunner::run_sweep(sweep);
  sweep.reuse_substrate = true;
  const auto reused = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i], reused[i]) << "cell " << i;
    EXPECT_EQ(fresh[i].variant, "custom");
  }
}

TEST(SweepReuse, SeedDependentConfigFactoryRecompilesEveryTrial) {
  // A config_factory may legitimately vary with the trial seed, so the
  // reuse path must recompile the config per trial — the seed-only fast
  // path would silently pin every trial of a cell to the first seed's
  // config.
  scenario::SweepSpec sweep = isolation_sweep();
  sweep.variants.clear();
  sweep.sizes = {3};
  sweep.seeds = 6;
  sweep.base.config_factory = [](std::size_t servers, std::uint64_t seed) {
    cluster::ClusterConfig cfg = cluster::make_raft_config(servers, seed);
    // Election timeout depends on the seed: 400..900 ms.
    cfg.raft.election_timeout = std::chrono::milliseconds(400 + (seed % 6) * 100);
    cfg.name = "seeded";
    return cfg;
  };

  sweep.reuse_substrate = false;
  const auto fresh = scenario::ScenarioRunner::run_sweep(sweep);
  sweep.reuse_substrate = true;
  const auto reused = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i], reused[i]) << "cell " << i;
  }
}

TEST(SweepReuse, RegistryPoliciesSweepWithFirstClassNames) {
  scenario::PolicyRegistry::global().add(
      "test-raft-snappy", [](std::size_t servers, std::uint64_t seed) {
        cluster::ClusterConfig cfg = cluster::make_raft_config(servers, seed);
        cfg.raft.election_timeout = 300ms;
        return cfg;
      });
  ASSERT_TRUE(scenario::PolicyRegistry::global().contains("test-raft-snappy"));

  scenario::SweepSpec sweep = isolation_sweep();
  sweep.variants = {scenario::Variant::Raft};
  sweep.policies = {"test-raft-snappy"};
  sweep.sizes = {3};
  sweep.seeds = 2;

  const auto results = scenario::ScenarioRunner::run_sweep(sweep);
  ASSERT_EQ(results.size(), 4u);  // (Raft + registered) x 1 size x 2 seeds
  EXPECT_EQ(results[0].variant, "Raft");
  EXPECT_EQ(results[1].variant, "Raft");
  EXPECT_EQ(results[2].variant, "test-raft-snappy");
  EXPECT_EQ(results[3].variant, "test-raft-snappy");

  // Registered cells are exact too: fresh vs reused.
  sweep.reuse_substrate = false;
  const auto fresh = scenario::ScenarioRunner::run_sweep(sweep);
  EXPECT_EQ(fresh, results);
}

/// Sink that records results (order included) for the streaming contract.
class CollectingSink final : public scenario::ResultSink {
 public:
  void consume(const scenario::ScenarioResult& r) override { results.push_back(r); }
  std::vector<scenario::ScenarioResult> results;
};

TEST(SweepReuse, StreamingSinkMatchesVectorSweepInOrder) {
  scenario::SweepSpec sweep = isolation_sweep();
  sweep.threads = 8;  // stress the reorder window

  const auto expected = scenario::ScenarioRunner::run_sweep(sweep);
  CollectingSink sink;
  scenario::ScenarioRunner::run_sweep(sweep, sink);
  ASSERT_EQ(sink.results.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sink.results[i], expected[i]) << "stream position " << i;
  }
}

}  // namespace
}  // namespace dyna
