#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dyna {
namespace {

double naive_mean(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double naive_stddev(const std::vector<double>& v) {
  const double m = naive_mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, SingleValue) {
  Welford w;
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
}

TEST(Welford, MatchesNaiveComputation) {
  Rng rng(1);
  std::vector<double> v;
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(50.0, 12.0);
    v.push_back(x);
    w.add(x);
  }
  EXPECT_NEAR(w.mean(), naive_mean(v), 1e-9);
  EXPECT_NEAR(w.stddev(), naive_stddev(v), 1e-9);
}

TEST(Welford, NumericallyStableWithLargeOffset) {
  // Catastrophic cancellation killer: tiny variance on a huge mean.
  Welford w;
  for (int i = 0; i < 1000; ++i) w.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(w.mean(), 1e9, 1e-3);
  EXPECT_NEAR(w.stddev(), 0.5, 1e-6);
}

TEST(Welford, ResetClears) {
  Welford w;
  w.add(1);
  w.add(2);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(SlidingWindow, FillsToCapacityThenEvictsOldest) {
  SlidingWindow w(3);
  w.add(1);
  w.add(2);
  w.add(3);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10);  // evicts 1 -> {2,3,10}
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  w.add(11);  // evicts 2 -> {3,10,11}
  EXPECT_DOUBLE_EQ(w.mean(), 8.0);
}

TEST(SlidingWindow, MinMaxTrackWindowNotHistory) {
  SlidingWindow w(2);
  w.add(100);
  w.add(1);
  w.add(2);  // 100 evicted
  EXPECT_DOUBLE_EQ(w.max(), 2.0);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
}

TEST(SlidingWindow, StatsMatchNaiveOverRetainedWindow) {
  Rng rng(2);
  const std::size_t cap = 50;
  SlidingWindow w(cap);
  std::vector<double> all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    all.push_back(x);
    w.add(x);
  }
  const std::vector<double> tail(all.end() - cap, all.end());
  EXPECT_NEAR(w.mean(), naive_mean(tail), 1e-9);
  EXPECT_NEAR(w.stddev(), naive_stddev(tail), 1e-9);
}

TEST(SlidingWindow, IncrementalMatchesRecomputeOverLongRuns) {
  // The O(1) incremental mean/stddev must track a full recompute of the
  // retained window through hundreds of refill cycles, including with a
  // large common offset (cancellation stress on the inverse Welford update).
  for (const double offset : {0.0, 1e6}) {
    const std::size_t cap = 100;
    SlidingWindow w(cap);
    Rng rng(11);
    std::vector<double> all;
    for (int i = 0; i < 50'000; ++i) {
      const double x = offset + rng.normal(100.0, 25.0);
      all.push_back(x);
      w.add(x);
      if (i % 997 == 0 && all.size() >= cap) {
        const std::vector<double> tail(all.end() - static_cast<std::ptrdiff_t>(cap), all.end());
        ASSERT_NEAR(w.mean(), naive_mean(tail), 1e-9 * std::max(1.0, offset)) << "i=" << i;
        ASSERT_NEAR(w.stddev(), naive_stddev(tail), 1e-6) << "i=" << i;
      }
    }
  }
}

TEST(SlidingWindow, ClearEmpties) {
  SlidingWindow w(4);
  w.add(1);
  w.clear();
  EXPECT_TRUE(w.empty());
  w.add(7);
  EXPECT_DOUBLE_EQ(w.mean(), 7.0);
}

TEST(Summary, PercentilesOfKnownData) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, SingleSample) {
  const Summary s = Summary::of({3.5});
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, PercentileSortedInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Summary::percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Summary::percentile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Summary::percentile_sorted(v, 1.0), 10.0);
}

/// Property: window of capacity c always reports stats over exactly the last
/// min(n, c) samples, for a sweep of capacities.
class WindowCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowCapacitySweep, AlwaysMatchesTail) {
  const std::size_t cap = GetParam();
  SlidingWindow w(cap);
  Rng rng(3 + cap);
  std::vector<double> all;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.normal(0.0, 1.0);
    all.push_back(x);
    w.add(x);
    const std::size_t expect = std::min(all.size(), cap);
    ASSERT_EQ(w.size(), expect);
    const std::vector<double> tail(all.end() - static_cast<std::ptrdiff_t>(expect), all.end());
    ASSERT_NEAR(w.mean(), naive_mean(tail), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, WindowCapacitySweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 10u, 64u, 199u, 500u));

}  // namespace
}  // namespace dyna
