#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/types.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;

TEST(Types, MillisecondConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(to_ms(Duration(1500ms)), 1500.0);
  EXPECT_EQ(from_ms(1500.0), Duration(1500ms));
  EXPECT_DOUBLE_EQ(to_ms(from_ms(0.125)), 0.125);
}

TEST(Types, SecondsConversion) {
  EXPECT_DOUBLE_EQ(to_sec(Duration(2500ms)), 2.5);
  const TimePoint t = kSimEpoch + 3s;
  EXPECT_DOUBLE_EQ(to_sec(t), 3.0);
  EXPECT_DOUBLE_EQ(to_ms(t), 3000.0);
}

TEST(Types, NeverIsAfterEverything) {
  EXPECT_GT(kNever, kSimEpoch + std::chrono::hours(24 * 365));
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--kills=100", "--name=test", "--verbose", "--rate=2.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_or("kills", std::int64_t{0}), 100);
  EXPECT_EQ(cli.get_or("name", std::string("x")), "test");
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_FALSE(cli.flag("quiet"));
  EXPECT_DOUBLE_EQ(cli.get_or("rate", 0.0), 2.5);
}

TEST(Cli, MissingKeysUseDefaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_or("kills", std::int64_t{7}), 7);
  EXPECT_EQ(cli.get_or("name", std::string("dflt")), "dflt");
  EXPECT_FALSE(cli.get("anything").has_value());
}

TEST(Cli, IgnoresNonDashArguments) {
  const char* argv[] = {"prog", "positional", "--a=1"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_or("a", std::int64_t{0}), 1);
  EXPECT_FALSE(cli.get("positional").has_value());
}

TEST(Cli, ScaledKeepsMinimumOfOne) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_GE(cli.scaled(1), 1);
  EXPECT_EQ(cli.scaled(100), static_cast<std::int64_t>(100 * cli.bench_scale()));
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/dyna_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({CsvWriter::cell(1.5), CsvWriter::cell("x")});
    csv.row({CsvWriter::cell(2.0), CsvWriter::cell("y")});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2,y");
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/dyna_csv_quote.csv";
  {
    CsvWriter csv(path, {"v"});
    csv.row({CsvWriter::cell("has,comma")});
    csv.row({CsvWriter::cell("has\"quote")});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dyna
