// Open-loop workload generator: rates, latency floor, saturation behaviour.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "kvstore/client.hpp"
#include "workload/open_loop.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

std::unique_ptr<Cluster> make_loaded_cluster(std::uint64_t seed, Duration service_time) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(3, seed);
  net::LinkCondition link;
  link.rtt = 20ms;
  cfg.links = net::ConditionSchedule::constant(link);
  cfg.request_service_time = service_time;
  cfg.durable_log = false;
  auto c = std::make_unique<Cluster>(std::move(cfg));
  if (!c->await_leader(30s)) return nullptr;
  return c;
}

TEST(OpenLoop, AchievedMatchesOfferedBelowCapacity) {
  auto c = make_loaded_cluster(1, 100us);  // capacity 10k req/s
  ASSERT_NE(c, nullptr);
  kv::KvClient client(c->sim(), c->network(), c->server_ids(), c->fork_rng(1));
  wl::RampConfig ramp;
  ramp.start_rps = 500;
  ramp.step_rps = 500;
  ramp.max_rps = 1500;
  ramp.level_duration = 2s;
  wl::OpenLoopRamp runner(*c, client, ramp, c->fork_rng(2));
  const auto levels = runner.run();
  ASSERT_EQ(levels.size(), 3u);
  for (const auto& l : levels) {
    EXPECT_NEAR(l.achieved_rps, l.offered_rps, l.offered_rps * 0.15)
        << "offered " << l.offered_rps;
    EXPECT_EQ(l.failed, 0u);
  }
}

TEST(OpenLoop, LatencyFloorIsRoundTripBound) {
  auto c = make_loaded_cluster(2, 50us);
  ASSERT_NE(c, nullptr);
  kv::KvClient client(c->sim(), c->network(), c->server_ids(), c->fork_rng(3));
  wl::RampConfig ramp;
  ramp.start_rps = 200;
  ramp.step_rps = 0;  // single level
  ramp.max_rps = 200;
  ramp.level_duration = 3s;
  wl::OpenLoopRamp runner(*c, client, ramp, c->fork_rng(4));
  const auto levels = runner.run();
  ASSERT_EQ(levels.size(), 1u);
  // client->leader 10ms + replication RTT 20ms + return 10ms = ~40ms floor.
  EXPECT_GE(levels[0].mean_latency_ms, 35.0);
  EXPECT_LE(levels[0].mean_latency_ms, 80.0);
}

TEST(OpenLoop, ThroughputPinsAtServiceCapacity) {
  auto c = make_loaded_cluster(3, 1ms);  // capacity 1000 req/s
  ASSERT_NE(c, nullptr);
  kv::KvClient client(c->sim(), c->network(), c->server_ids(), c->fork_rng(5));
  wl::RampConfig ramp;
  ramp.start_rps = 500;
  ramp.step_rps = 500;
  ramp.max_rps = 2500;
  ramp.level_duration = 2s;
  wl::OpenLoopRamp runner(*c, client, ramp, c->fork_rng(6));
  const auto levels = runner.run();
  const double peak = wl::OpenLoopRamp::peak_throughput(levels);
  EXPECT_NEAR(peak, 1000.0, 120.0);
  // Latency must blow past the floor once offered > capacity.
  EXPECT_GT(levels.back().mean_latency_ms, levels.front().mean_latency_ms * 3.0);
}

TEST(OpenLoop, PeakThroughputHelper) {
  std::vector<wl::LevelResult> levels(3);
  levels[0].achieved_rps = 10;
  levels[1].achieved_rps = 30;
  levels[2].achieved_rps = 20;
  EXPECT_DOUBLE_EQ(wl::OpenLoopRamp::peak_throughput(levels), 30.0);
  EXPECT_DOUBLE_EQ(wl::OpenLoopRamp::peak_throughput({}), 0.0);
}

TEST(OpenLoop, HigherServiceTimeLowersPeak) {
  // The Fig 5 mechanism in miniature: Dynatune's service overhead must shift
  // the peak down proportionally.
  auto run = [](Duration service) {
    auto c = make_loaded_cluster(4, service);
    if (c == nullptr) return 0.0;
    kv::KvClient client(c->sim(), c->network(), c->server_ids(), c->fork_rng(7));
    wl::RampConfig ramp;
    ramp.start_rps = 400;
    ramp.step_rps = 400;
    ramp.max_rps = 2000;
    ramp.level_duration = 2s;
    wl::OpenLoopRamp runner(*c, client, ramp, c->fork_rng(8));
    return wl::OpenLoopRamp::peak_throughput(runner.run());
  };
  const double fast = run(1ms);
  const double slow = run(from_ms(1.25));
  EXPECT_GT(fast, slow);
  EXPECT_NEAR(slow / fast, 0.8, 0.1);
}

}  // namespace
}  // namespace dyna
