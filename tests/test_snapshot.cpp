// Snapshot compaction and InstallSnapshot: log-level compaction mechanics,
// deterministic state-machine serialization, cluster-level catch-up across
// the compaction point, and exact-suffix recovery after crash/restart.
//
// The invariants under test:
//   * compact_to drops whole segments only — views handed out before
//     compaction stay valid, and the straddling run's slice bookkeeping
//     advances without touching the segment;
//   * snapshot() is deterministic: equal logical states serialize
//     byte-identically regardless of the history that produced them;
//   * a follower behind the compaction point (paused or crashed across it)
//     converges through InstallSnapshot, not full replay;
//   * restart applies exactly (snapshot_index, commit] — once;
//   * Cluster::restart over log-discarding storage is rejected loudly;
//   * crash/restart sweeps remain bit-identical across thread counts.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "kvstore/command.hpp"
#include "kvstore/state_machine.hpp"
#include "raft/log.hpp"
#include "scenario/runner.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

raft::Command make_cmd(const std::string& key, const std::string& value) {
  raft::Command cmd;
  cmd.payload = kv::encode(kv::KvCommand{kv::Op::Put, key, value, {}});
  return cmd;
}

raft::LogEntry entry_of(raft::Term term, raft::LogIndex index, std::string payload) {
  raft::LogEntry e;
  e.term = term;
  e.index = index;
  e.command.payload = std::move(payload);
  return e;
}

// ---- RaftLog compaction mechanics --------------------------------------------------

TEST(LogCompaction, CompactDropsPrefixAndKeepsViewsValid) {
  raft::RaftLog log;
  for (raft::LogIndex i = 1; i <= 10; ++i) log.append(entry_of(1, i, "p" + std::to_string(i)));

  // A view over the whole log seals the tail; it must survive compaction.
  raft::EntryView whole = log.view(1, 10);
  ASSERT_EQ(whole.size(), 10u);

  log.compact_to(6, 1);
  EXPECT_EQ(log.compacted_to(), 6u);
  EXPECT_EQ(log.compacted_term(), 1u);
  EXPECT_EQ(log.first_index(), 7u);
  EXPECT_EQ(log.last_index(), 10u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(log.term_at(6), 1u);  // the compaction point stays addressable
  for (raft::LogIndex i = 7; i <= 10; ++i) {
    EXPECT_EQ(log.entry(i).index, i);
    EXPECT_EQ(log.entry(i).command.payload, "p" + std::to_string(i));
  }

  // The pre-compaction view still reads the dropped prefix (its segment is
  // whole and alive — compaction never splits segments).
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(whole[i].index, i + 1);
    EXPECT_EQ(whole[i].command.payload, "p" + std::to_string(i + 1));
  }

  // A fresh view over the live suffix works and appends continue at the end.
  raft::EntryView suffix = log.view(7, 4);
  EXPECT_EQ(suffix.first_index(), 7u);
  EXPECT_EQ(suffix.last_index(), 10u);
  log.append(entry_of(2, 11, "p11"));
  EXPECT_EQ(log.back().index, 11u);
}

TEST(LogCompaction, CompactIntoOpenTailSealsAndTrims) {
  raft::RaftLog log;
  for (raft::LogIndex i = 1; i <= 5; ++i) log.append(entry_of(1, i, "t" + std::to_string(i)));
  // No views taken: everything lives in the open tail. Compacting into it
  // seals the tail and trims the straddling run's slice.
  log.compact_to(3, 1);
  EXPECT_EQ(log.first_index(), 4u);
  EXPECT_EQ(log.last_index(), 5u);
  EXPECT_EQ(log.entry(4).command.payload, "t4");
  EXPECT_EQ(log.entry(5).command.payload, "t5");
  log.append(entry_of(1, 6, "t6"));
  EXPECT_EQ(log.view(4, 3).last_index(), 6u);
}

TEST(LogCompaction, TruncateAfterCompactWithViewsOutstanding) {
  raft::RaftLog log;
  for (raft::LogIndex i = 1; i <= 8; ++i) log.append(entry_of(1, i, "x" + std::to_string(i)));
  raft::EntryView pre = log.view(3, 5);  // [3, 7], seals the tail
  log.compact_to(4, 1);

  // Conflict resolution above the snapshot line, with the view alive.
  log.truncate_from(6);
  EXPECT_EQ(log.last_index(), 5u);
  EXPECT_EQ(log.first_index(), 5u);
  EXPECT_EQ(log.entry(5).command.payload, "x5");

  // The new leader's entries overwrite the cut suffix.
  log.append(entry_of(3, 6, "y6"));
  EXPECT_EQ(log.term_at(6), 3u);
  EXPECT_EQ(log.term_at(4), 1u);  // compaction point term is remembered

  // The view still reads what it aliased at take time.
  ASSERT_EQ(pre.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(pre[i].command.payload, "x" + std::to_string(i + 3));
  }
}

TEST(LogCompaction, InstallReplacesEverything) {
  raft::RaftLog log;
  for (raft::LogIndex i = 1; i <= 6; ++i) log.append(entry_of(2, i, "old"));
  raft::EntryView keepalive = log.view(1, 6);

  log.install(100, 7);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.compacted_to(), 100u);
  EXPECT_EQ(log.first_index(), 101u);
  EXPECT_EQ(log.last_index(), 100u);
  EXPECT_EQ(log.term_at(100), 7u);

  log.append(entry_of(7, 101, "new"));
  EXPECT_EQ(log.entry(101).command.payload, "new");
  EXPECT_EQ(keepalive.size(), 6u);  // released segments outlive the install
  EXPECT_EQ(keepalive[0].command.payload, "old");
}

TEST(LogCompaction, AssignWithDurableCompactionLine) {
  std::vector<raft::LogEntry> suffix;
  for (raft::LogIndex i = 41; i <= 45; ++i) suffix.push_back(entry_of(4, i, "s"));
  raft::RaftLog log;
  log.append(entry_of(1, 1, "stale"));  // recovery replaces whatever was here
  log.assign(40, 3, suffix);
  EXPECT_EQ(log.compacted_to(), 40u);
  EXPECT_EQ(log.compacted_term(), 3u);
  EXPECT_EQ(log.first_index(), 41u);
  EXPECT_EQ(log.last_index(), 45u);
  EXPECT_EQ(log.term_at(40), 3u);
  EXPECT_EQ(log.entry(43).index, 43u);
}

/// Randomized append/truncate/view/compact script against a reference
/// vector holding the full history. After every step the live range must
/// match the reference, and every view taken must keep matching the copy
/// that was current at take time — including views whose span was later
/// compacted away entirely.
TEST(LogCompaction, RandomizedScriptWithCompactionMatchesReference) {
  for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    Rng rng(seed);
    raft::RaftLog log;
    std::vector<raft::LogEntry> ref;  // full history, index i at ref[i-1]
    raft::LogIndex compacted = 0;
    raft::Term term = 1;

    struct TakenView {
      raft::EntryView view;
      std::vector<raft::LogEntry> copy;
    };
    std::vector<TakenView> taken;

    const auto live = [&]() -> std::size_t { return ref.size() - compacted; };

    for (int step = 0; step < 500; ++step) {
      const double dice = rng.uniform();
      if (dice < 0.40 || live() == 0) {
        const std::size_t batch = 1 + rng.uniform_index(4);
        for (std::size_t b = 0; b < batch; ++b) {
          auto e = entry_of(term, ref.size() + 1, "p" + std::to_string(step));
          ref.push_back(e);
          log.append(std::move(e));
        }
      } else if (dice < 0.55) {
        // Truncate somewhere above the snapshot line.
        const raft::LogIndex cut = compacted + 1 + rng.uniform_index(live());
        ref.resize(cut - 1);
        log.truncate_from(cut);
        ++term;
      } else if (dice < 0.75) {
        // View over a random live span.
        const raft::LogIndex first = compacted + 1 + rng.uniform_index(live());
        const std::size_t count = 1 + rng.uniform_index(ref.size() - first + 1);
        raft::EntryView v = log.view(first, count);
        std::vector<raft::LogEntry> copy(ref.begin() + static_cast<std::ptrdiff_t>(first - 1),
                                         ref.begin() +
                                             static_cast<std::ptrdiff_t>(first - 1 + count));
        ASSERT_EQ(v.size(), copy.size());
        taken.push_back({std::move(v), std::move(copy)});
      } else {
        // Compact to a random live index (a snapshot landed there).
        const raft::LogIndex c = compacted + 1 + rng.uniform_index(live());
        log.compact_to(c, ref[c - 1].term);
        compacted = c;
      }

      ASSERT_EQ(log.compacted_to(), compacted) << "step " << step;
      ASSERT_EQ(log.size(), live()) << "step " << step;
      for (raft::LogIndex i = compacted + 1; i <= ref.size(); ++i) {
        ASSERT_EQ(log.entry(i), ref[i - 1]) << "step " << step << " index " << i;
      }
      if (compacted > 0) {
        ASSERT_EQ(log.term_at(compacted), ref[compacted - 1].term) << "step " << step;
      }
    }

    for (const TakenView& t : taken) {
      ASSERT_EQ(t.view.size(), t.copy.size());
      for (std::size_t i = 0; i < t.copy.size(); ++i) {
        ASSERT_EQ(t.view[i], t.copy[i]);
      }
    }
  }
}

// ---- State-machine serialization ---------------------------------------------------

TEST(KvSnapshot, RoundTripRestoresStateAndRevision) {
  kv::KvStateMachine a;
  a.apply(kv::encode(kv::KvCommand{kv::Op::Put, "alpha", "1", {}}));
  a.apply(kv::encode(kv::KvCommand{kv::Op::Put, "beta", "2", {}}));
  a.apply(kv::encode(kv::KvCommand{kv::Op::Put, "alpha", "3", {}}));
  a.apply(kv::encode(kv::KvCommand{kv::Op::Del, "beta", "", {}}));
  const std::string blob = a.snapshot();

  kv::KvStateMachine b;
  b.apply(kv::encode(kv::KvCommand{kv::Op::Put, "junk", "x", {}}));  // overwritten
  b.restore(blob);
  EXPECT_EQ(b.revision(), a.revision());
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.data().at("alpha"), "3");
  EXPECT_EQ(b.data().count("beta"), 0u);
  EXPECT_EQ(b.data().count("junk"), 0u);
  // The restored machine's own snapshot is byte-identical (it is shipped to
  // other replicas and compared across them).
  EXPECT_EQ(b.snapshot(), blob);
}

TEST(KvSnapshot, EqualStatesSerializeIdenticallyWhateverTheHistory) {
  // Same logical state {a=1, b=2} at revision 4, reached through different
  // insertion/deletion orders — the hash map's iteration order differs, the
  // blobs must not.
  kv::KvStateMachine first;
  first.apply(kv::encode(kv::KvCommand{kv::Op::Put, "a", "1", {}}));
  first.apply(kv::encode(kv::KvCommand{kv::Op::Put, "b", "2", {}}));
  first.apply(kv::encode(kv::KvCommand{kv::Op::Put, "c", "3", {}}));
  first.apply(kv::encode(kv::KvCommand{kv::Op::Del, "c", "", {}}));

  kv::KvStateMachine second;
  second.apply(kv::encode(kv::KvCommand{kv::Op::Put, "c", "9", {}}));
  second.apply(kv::encode(kv::KvCommand{kv::Op::Put, "b", "2", {}}));
  second.apply(kv::encode(kv::KvCommand{kv::Op::Del, "c", "", {}}));
  second.apply(kv::encode(kv::KvCommand{kv::Op::Put, "a", "1", {}}));

  EXPECT_EQ(first.snapshot(), second.snapshot());
}

// ---- Cluster-level compaction ------------------------------------------------------

cluster::ClusterConfig snapshot_config(std::size_t servers, std::uint64_t seed,
                                       std::size_t threshold, std::size_t trailing) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(servers, seed);
  cfg.raft.snapshot_threshold = threshold;
  cfg.raft.snapshot_trailing = trailing;
  return cfg;
}

TEST(SnapshotCompaction, BoundsEveryReplicasLog) {
  Cluster c(snapshot_config(5, 21, /*threshold=*/50, /*trailing=*/10));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(c.node(leader).submit(make_cmd("k" + std::to_string(i % 40), "v")).has_value());
    if (i % 25 == 0) c.sim().run_for(200ms);
  }
  c.sim().run_for(5s);

  EXPECT_GT(c.node(leader).snapshots_taken(), 0u);
  for (const NodeId id : c.server_ids()) {
    // Live log stays within one threshold of the trailing buffer — bounded,
    // instead of the ~300 entries an uncompacted log would hold.
    EXPECT_LE(c.node(id).log().size(), 50u + 10u) << "node " << id;
    EXPECT_GT(c.node(id).first_log_index(), 1u) << "node " << id;
    EXPECT_EQ(c.node(id).commit_index(), c.node(leader).commit_index()) << "node " << id;
    EXPECT_EQ(c.state_machine(id).revision(), c.state_machine(leader).revision());
    EXPECT_EQ(c.state_machine(id).size(), 40u) << "node " << id;
  }
}

TEST(SnapshotCompaction, CompactionOffByDefault) {
  Cluster c(cluster::make_raft_config(3, 22));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  for (int i = 0; i < 120; ++i) c.node(leader).submit(make_cmd("k" + std::to_string(i), "v"));
  c.sim().run_for(5s);
  for (const NodeId id : c.server_ids()) {
    EXPECT_EQ(c.node(id).snapshots_taken(), 0u) << "node " << id;
    EXPECT_EQ(c.node(id).first_log_index(), 1u) << "node " << id;
    EXPECT_EQ(c.node(id).snapshot_index(), 0u) << "node " << id;
  }
}

TEST(SnapshotCompaction, FarBehindFollowerCatchesUpViaInstallSnapshot) {
  Cluster c(snapshot_config(5, 23, /*threshold=*/40, /*trailing=*/8));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId lagger = leader == 0 ? 1 : 0;
  // Isolate the lagger with dropped (not parked) traffic: on heal nothing
  // replays, so only a snapshot can bridge the compacted gap.
  for (const NodeId id : c.server_ids()) {
    if (id == lagger) continue;
    c.network().set_blocked(id, lagger, true);
    c.network().set_blocked(lagger, id, true);
  }

  // Push the leader far past the isolation point: it compacts entries the
  // lagger never saw, so plain AppendEntries can no longer bridge the gap.
  for (int i = 0; i < 200; ++i) {
    c.node(leader).submit(make_cmd("k" + std::to_string(i % 30), "v" + std::to_string(i)));
    if (i % 20 == 0) c.sim().run_for(200ms);
  }
  c.sim().run_for(3s);
  ASSERT_GT(c.node(leader).log().compacted_to(), c.node(lagger).last_log_index());

  for (const NodeId id : c.server_ids()) {
    if (id == lagger) continue;
    c.network().set_blocked(id, lagger, false);
    c.network().set_blocked(lagger, id, false);
  }
  c.sim().run_for(10s);

  EXPECT_EQ(c.node(lagger).commit_index(), c.node(leader).commit_index());
  EXPECT_EQ(c.state_machine(lagger).revision(), c.state_machine(leader).revision());
  EXPECT_EQ(c.state_machine(lagger).data().at("k0"), c.state_machine(leader).data().at("k0"));
  // The lagger holds a snapshot it never took itself: it was installed.
  EXPECT_GT(c.node(lagger).snapshot_index(), 0u);
  EXPECT_EQ(c.node(lagger).snapshots_taken(), 0u);
}

TEST(SnapshotCompaction, CrashedFollowerRecoversAcrossCompactionPoint) {
  Cluster c(snapshot_config(5, 24, /*threshold=*/40, /*trailing=*/8));
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId victim = leader == 0 ? 1 : 0;
  c.sim().run_for(1s);
  c.crash(victim);

  for (int i = 0; i < 200; ++i) {
    c.node(leader).submit(make_cmd("c" + std::to_string(i % 25), "v" + std::to_string(i)));
    if (i % 20 == 0) c.sim().run_for(200ms);
  }
  c.sim().run_for(3s);
  ASSERT_GT(c.node(leader).log().compacted_to(), 0u);

  c.restart(victim);
  c.sim().run_for(10s);

  EXPECT_EQ(c.node(victim).commit_index(), c.node(leader).commit_index());
  EXPECT_EQ(c.state_machine(victim).revision(), c.state_machine(leader).revision());
  EXPECT_EQ(c.state_machine(victim).size(), c.state_machine(leader).size());
  EXPECT_GT(c.node(victim).snapshot_index(), 0u);
}

/// Per-node apply ledger: every on_entry_committed lands here, in order.
class ApplyLedger final : public raft::Observer {
 public:
  void on_entry_committed(NodeId node, const raft::LogEntry& entry, TimePoint) override {
    applied_[node].push_back(entry.index);
  }
  [[nodiscard]] const std::vector<raft::LogIndex>& applied(NodeId node) {
    return applied_[node];
  }

 private:
  std::map<NodeId, std::vector<raft::LogIndex>> applied_;
};

TEST(SnapshotCompaction, RestartAppliesExactlyTheSuffixOnce) {
  ApplyLedger ledger;
  // Trailing is large enough that the leader never compacts past the
  // victim's log end while it is down — the restart recovers from the
  // victim's *own* snapshot plus normal AppendEntries catch-up.
  cluster::ClusterConfig cfg = snapshot_config(3, 25, /*threshold=*/20, /*trailing=*/50);
  cfg.observers.push_back(&ledger);
  Cluster c(cfg);
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  const NodeId victim = leader == 0 ? 1 : 0;

  for (int i = 0; i < 60; ++i) {
    c.node(leader).submit(make_cmd("a" + std::to_string(i), "v"));
    if (i % 10 == 0) c.sim().run_for(200ms);
  }
  c.sim().run_for(2s);
  ASSERT_GT(c.node(victim).snapshots_taken(), 0u);  // it has its own snapshot
  c.crash(victim);

  for (int i = 0; i < 10; ++i) c.node(leader).submit(make_cmd("b" + std::to_string(i), "v"));
  c.sim().run_for(2s);

  const std::size_t applied_before = ledger.applied(victim).size();
  c.restart(victim);
  const raft::LogIndex snap = c.node(victim).snapshot_index();
  ASSERT_GT(snap, 0u);
  ASSERT_EQ(c.node(victim).last_applied(), snap);  // restored, not replayed
  c.sim().run_for(5s);

  const raft::LogIndex commit = c.node(victim).commit_index();
  ASSERT_EQ(commit, c.node(leader).commit_index());

  // Applied after restart: exactly snap+1 .. commit, each index once, in
  // order. Anything before snap came out of the snapshot blob; a replica
  // that replayed (or double-applied) any of it would diverge in revision.
  const auto& applied = ledger.applied(victim);
  ASSERT_GE(applied.size(), applied_before);
  const std::vector<raft::LogIndex> after(applied.begin() +
                                              static_cast<std::ptrdiff_t>(applied_before),
                                          applied.end());
  ASSERT_EQ(after.size(), static_cast<std::size_t>(commit - snap));
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], snap + 1 + i) << "apply position " << i;
  }
  EXPECT_EQ(c.state_machine(victim).revision(), c.state_machine(leader).revision());
}

TEST(SnapshotCompaction, RestartOverLogDiscardingStorageThrows) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(3, 26);
  cfg.durable_log = false;  // NullStorage: hard state survives, the log does not
  Cluster c(cfg);
  ASSERT_TRUE(c.await_leader(30s));
  const NodeId leader = c.current_leader();
  c.node(leader).submit(make_cmd("k", "v"));
  c.sim().run_for(1s);
  c.crash(leader);
  EXPECT_THROW(c.restart(leader), std::runtime_error);
}

// ---- Crash/restart scenarios through the sweep machinery ---------------------------

scenario::SweepSpec crash_restart_sweep(unsigned threads) {
  scenario::ScenarioSpec base;
  base.name = "crash-restart";
  base.servers = 5;
  base.topology = scenario::TopologySpec::constant(40ms, 2ms, 0.01);
  base.snapshot_threshold = 30;
  base.snapshot_trailing = 8;
  wl::RampConfig ramp;
  ramp.start_rps = 100;
  ramp.step_rps = 100;
  ramp.max_rps = 200;
  ramp.level_duration = 1s;
  base.workload = scenario::WorkloadPlan::open_loop_ramp(ramp);
  base.faults = scenario::FaultPlan::crash_restart_kills(2, 3s);

  scenario::SweepSpec sweep;
  sweep.base = std::move(base);
  sweep.sizes = {3, 5};
  sweep.seeds = 3;
  sweep.master_seed = 4242;
  sweep.threads = threads;
  return sweep;
}

TEST(SnapshotCompaction, CrashRestartSweepIsIdenticalAcrossThreadCounts) {
  const auto reference = scenario::ScenarioRunner::run_sweep(crash_restart_sweep(1));
  ASSERT_EQ(reference.size(), 6u);
  std::size_t ok = 0;
  for (const auto& r : reference) {
    EXPECT_TRUE(r.leader_elected);
    EXPECT_FALSE(r.levels.empty());
    for (const auto& f : r.failovers) ok += f.ok ? 1 : 0;
  }
  EXPECT_GT(ok, 0u);  // crashes were actually injected and survived

  for (const unsigned threads : {2u, 8u}) {
    const auto got = scenario::ScenarioRunner::run_sweep(crash_restart_sweep(threads));
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], reference[i]) << "threads=" << threads << " trial " << i;
    }
  }
}

}  // namespace
}  // namespace dyna
