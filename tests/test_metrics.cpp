// Metrics: empirical CDFs, time series, table formatting.
#include <gtest/gtest.h>

#include "metrics/cdf.hpp"
#include "metrics/report.hpp"
#include "metrics/timeseries.hpp"

namespace dyna::metrics {
namespace {

TEST(Cdf, QuantilesOfUniformGrid) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EmpiricalCdf cdf(std::move(v));
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_NEAR(cdf.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(cdf.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(cdf.mean(), 50.5, 1e-9);
}

TEST(Cdf, ProbabilityAtSteps) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.probability_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.probability_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.probability_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.probability_at(100.0), 1.0);
}

TEST(Cdf, AddKeepsSortedInvariant) {
  EmpiricalCdf cdf;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) cdf.add(x);
  const auto& s = cdf.sorted_samples();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
}

TEST(Cdf, PointsEndAtFullProbability) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EmpiricalCdf cdf(std::move(v));
  const auto pts = cdf.points(20);
  ASSERT_FALSE(pts.empty());
  EXPECT_LE(pts.size(), 22u);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(Cdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.probability_at(1.0), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

TEST(TimeSeries, PushAndRangeMean) {
  TimeSeries ts("x");
  for (int i = 0; i < 10; ++i) ts.push_sec(i, i * 10.0);
  EXPECT_EQ(ts.points().size(), 10u);
  EXPECT_DOUBLE_EQ(ts.mean_in(0.0, 10.0), 45.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(5.0, 7.0), 55.0);  // values 50, 60
  EXPECT_DOUBLE_EQ(ts.mean_in(100.0, 200.0), 0.0);
}

TEST(TimeSeries, MinMax) {
  TimeSeries ts("x");
  ts.push_sec(0, 5);
  ts.push_sec(1, -2);
  ts.push_sec(2, 9);
  EXPECT_DOUBLE_EQ(ts.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 9.0);
}

TEST(TimeSeries, PushWithTimePoint) {
  TimeSeries ts("x");
  ts.push(kSimEpoch + std::chrono::seconds(3), 7.0);
  EXPECT_DOUBLE_EQ(ts.points().front().t_sec, 3.0);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-1.5), "-1.5");
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  // Render into a temp file and check basic structure.
  const std::string path = ::testing::TempDir() + "/table_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::fclose(f);
  std::FILE* in = std::fopen(path.c_str(), "r");
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, in), nullptr);
  EXPECT_TRUE(std::string(buf).find("name") != std::string::npos);
  ASSERT_NE(std::fgets(buf, sizeof buf, in), nullptr);  // rule
  EXPECT_EQ(buf[0], '-');
  std::fclose(in);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dyna::metrics
