// Thread pool and deterministic trial runner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"

namespace dyna::par {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.post([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.post([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, TasksCanPostMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.post([&] {
    ++count;
    pool.post([&] { ++count; });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, PostBatchRunsEverythingOnce) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 1000; ++i) {
    tasks.emplace_back([&count] { count.fetch_add(1); });
  }
  pool.post_batch(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, CurrentWorkerIndexIsStableAndInRange) {
  ThreadPool pool(4);
  EXPECT_EQ(ThreadPool::current_worker(), -1);  // not a pool thread
  std::atomic<int> bad{0};
  for (int i = 0; i < 200; ++i) {
    pool.post([&bad] {
      const int w = ThreadPool::current_worker();
      if (w < 0 || w >= 4) bad.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, IdleWorkersStealFromLoadedPeers) {
  // Two workers; worker A blocks on a gate while the batch lands in both
  // deques. Worker B must steal A's share for the sweep to finish.
  ThreadPool pool(2);
  std::atomic<bool> gate{false};
  std::atomic<int> done{0};
  std::vector<ThreadPool::Task> tasks;
  tasks.emplace_back([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 63; ++i) {
    tasks.emplace_back([&done, &gate] {
      if (done.fetch_add(1) + 1 == 63) gate.store(true);  // unblock the gate
    });
  }
  pool.post_batch(std::move(tasks));
  pool.wait_idle();  // without stealing the gate never opens: deadlock
  EXPECT_EQ(done.load(), 63);
}

TEST(TrialRunner, ResultsInTrialOrder) {
  const auto results = run_trials<std::size_t>(
      50, 1, [](std::size_t trial, std::uint64_t) { return trial * 2; }, 4);
  ASSERT_EQ(results.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * 2);
}

TEST(TrialRunner, SeedsDerivedFromTrialIndexOnly) {
  std::vector<std::uint64_t> seeds_a, seeds_b;
  run_trials<int>(20, 7,
                  [&seeds_a](std::size_t, std::uint64_t seed) {
                    // NOTE: runs concurrently; collect via per-trial slot.
                    (void)seed;
                    return 0;
                  },
                  1);
  // Deterministic check done via derive_seed directly:
  for (std::size_t i = 0; i < 20; ++i) {
    seeds_a.push_back(derive_seed(7, i));
    seeds_b.push_back(derive_seed(7, i));
  }
  EXPECT_EQ(seeds_a, seeds_b);
}

TEST(TrialRunner, IdenticalAcrossThreadCounts) {
  auto trial = [](std::size_t trial_idx, std::uint64_t seed) {
    // A seed-dependent pseudo-simulation.
    Rng rng(seed);
    double acc = static_cast<double>(trial_idx);
    for (int i = 0; i < 1000; ++i) acc += rng.uniform();
    return acc;
  };
  const auto one = run_trials<double>(32, 123, trial, 1);
  const auto two = run_trials<double>(32, 123, trial, 2);
  const auto eight = run_trials<double>(32, 123, trial, 8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(TrialRunner, ExplicitBlockSizesDoNotChangeResults) {
  auto trial = [](std::size_t i, std::uint64_t seed) {
    Rng rng(seed);
    return static_cast<double>(i) + rng.uniform();
  };
  const auto reference = run_trials<double>(100, 5, trial, 1);
  for (const std::size_t block : {1u, 3u, 7u, 64u, 1000u}) {
    EXPECT_EQ(run_trials<double>(100, 5, trial, 4, block), reference) << "block " << block;
  }
}

TEST(TrialRunner, ForTrialsVisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(257);
  for_trials(257, 9, [&visits](std::size_t i, std::uint64_t seed) {
    EXPECT_EQ(seed, derive_seed(9, i));
    visits[i].fetch_add(1);
  }, 8);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "trial " << i;
  }
}

TEST(TrialRunner, ExceptionInTrialPropagates) {
  EXPECT_THROW(run_trials<int>(16, 1,
                               [](std::size_t i, std::uint64_t) {
                                 if (i == 7) throw std::runtime_error("trial 7");
                                 return 0;
                               },
                               2),
               std::runtime_error);
}

TEST(TrialRunner, ZeroTrialsIsEmpty) {
  const auto results = run_trials<int>(0, 1, [](std::size_t, std::uint64_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(TrialRunner, DistinctSeedsPerTrial) {
  std::vector<std::uint64_t> seeds(16);
  run_trials<int>(16, 9,
                  [&seeds](std::size_t trial, std::uint64_t seed) {
                    seeds[trial] = seed;  // distinct slots: no race
                    return 0;
                  },
                  4);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace dyna::par
