// Thread pool and deterministic trial runner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"

namespace dyna::par {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.post([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.post([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, TasksCanPostMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.post([&] {
    ++count;
    pool.post([&] { ++count; });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(TrialRunner, ResultsInTrialOrder) {
  const auto results = run_trials<std::size_t>(
      50, 1, [](std::size_t trial, std::uint64_t) { return trial * 2; }, 4);
  ASSERT_EQ(results.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * 2);
}

TEST(TrialRunner, SeedsDerivedFromTrialIndexOnly) {
  std::vector<std::uint64_t> seeds_a, seeds_b;
  run_trials<int>(20, 7,
                  [&seeds_a](std::size_t, std::uint64_t seed) {
                    // NOTE: runs concurrently; collect via per-trial slot.
                    (void)seed;
                    return 0;
                  },
                  1);
  // Deterministic check done via derive_seed directly:
  for (std::size_t i = 0; i < 20; ++i) {
    seeds_a.push_back(derive_seed(7, i));
    seeds_b.push_back(derive_seed(7, i));
  }
  EXPECT_EQ(seeds_a, seeds_b);
}

TEST(TrialRunner, IdenticalAcrossThreadCounts) {
  auto trial = [](std::size_t trial_idx, std::uint64_t seed) {
    // A seed-dependent pseudo-simulation.
    Rng rng(seed);
    double acc = static_cast<double>(trial_idx);
    for (int i = 0; i < 1000; ++i) acc += rng.uniform();
    return acc;
  };
  const auto one = run_trials<double>(32, 123, trial, 1);
  const auto two = run_trials<double>(32, 123, trial, 2);
  const auto eight = run_trials<double>(32, 123, trial, 8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(TrialRunner, ZeroTrialsIsEmpty) {
  const auto results = run_trials<int>(0, 1, [](std::size_t, std::uint64_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(TrialRunner, DistinctSeedsPerTrial) {
  std::vector<std::uint64_t> seeds(16);
  run_trials<int>(16, 9,
                  [&seeds](std::size_t trial, std::uint64_t seed) {
                    seeds[trial] = seed;  // distinct slots: no race
                    return 0;
                  },
                  4);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace dyna::par
