#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace dyna::sim {
namespace {

using namespace std::chrono_literals;

TEST(Simulator, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kSimEpoch);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(30ms, [&] { order.push_back(3); });
  sim.schedule_after(10ms, [&] { order.push_back(1); });
  sim.schedule_after(20ms, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), kSimEpoch + 30ms);
}

TEST(Simulator, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(5ms, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbackCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) sim.schedule_after(1ms, chain);
  };
  sim.schedule_after(1ms, chain);
  sim.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), kSimEpoch + 5ms);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(10ms, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_after(1ms, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(10ms, [&] { ++fired; });
  sim.schedule_after(100ms, [&] { ++fired; });
  sim.run_until(kSimEpoch + 50ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), kSimEpoch + 50ms);
  sim.run_for(50ms);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), kSimEpoch + 100ms);
}

TEST(Simulator, RunForTilesTimeExactly) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.run_for(7ms);
  EXPECT_EQ(sim.now(), kSimEpoch + 70ms);
}

TEST(Simulator, EventAtHorizonBoundaryFires) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(50ms, [&] { ran = true; });
  sim.run_until(kSimEpoch + 50ms);
  EXPECT_TRUE(ran);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.run_for(100ms);
  bool ran = false;
  sim.schedule_at(kSimEpoch + 10ms, [&] { ran = true; });  // in the past
  sim.step();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), kSimEpoch + 100ms);  // clock never goes backwards
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  const EventId a = sim.schedule_after(1ms, [] {});
  sim.schedule_after(2ms, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, DeterministicTrace) {
  auto trace = [] {
    Simulator sim;
    std::vector<std::int64_t> times;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(std::chrono::milliseconds((i * 37) % 50), [&times, &sim] {
        times.push_back(sim.now().time_since_epoch().count());
      });
    }
    sim.run_all();
    return times;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(Timer, FiresOncePerArm) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(10ms);
  sim.run_for(100ms);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(10ms);
  sim.run_for(5ms);
  t.arm(10ms);  // pushes deadline to 15ms
  sim.run_for(6ms);
  EXPECT_EQ(fired, 0);  // old deadline (10ms) must not fire
  sim.run_for(10ms);
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(10ms);
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run_for(50ms);
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DeadlineReflectsArm) {
  Simulator sim;
  Timer t(sim, [] {});
  EXPECT_EQ(t.deadline(), kNever);
  t.arm(25ms);
  EXPECT_EQ(t.deadline(), kSimEpoch + 25ms);
  t.cancel();
  EXPECT_EQ(t.deadline(), kNever);
}

TEST(Timer, CanRearmFromItsOwnCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] {});
  Timer periodic(sim, [&] {
    if (++fired < 4) periodic.arm(10ms);
  });
  periodic.arm(10ms);
  sim.run_for(1s);
  EXPECT_EQ(fired, 4);
}

TEST(Timer, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.arm(10ms);
  }
  sim.run_for(50ms);
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace dyna::sim
