// Cancellation semantics of the slot/generation event engine.
//
// The engine recycles slots through a free list and validates EventIds by
// generation counter, so the dangerous edges are exactly the ones this suite
// pins down: a stale id aimed at a recycled slot, cancel after fire, timer
// re-arm storms, and — the property everything else rests on — firing order
// byte-identical to the seed engine (priority_queue + hash sets), which a
// reference implementation below replays side by side.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace dyna::sim {
namespace {

using namespace std::chrono_literals;

TEST(Cancellation, StaleIdAgainstRecycledSlotIsRejected) {
  Simulator sim;
  bool first = false;
  bool second = false;
  const EventId a = sim.schedule_after(10ms, [&] { first = true; });
  ASSERT_TRUE(sim.cancel(a));
  // The next schedule recycles a's slot under a fresh generation.
  const EventId b = sim.schedule_after(10ms, [&] { second = true; });
  EXPECT_NE(a, b);
  // The stale id must neither report success nor touch the new event.
  EXPECT_FALSE(sim.cancel(a));
  sim.run_all();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(Cancellation, StaleIdAfterFireAgainstRecycledSlot) {
  Simulator sim;
  const EventId a = sim.schedule_after(1ms, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(a));  // already fired
  int fired = 0;
  const EventId b = sim.schedule_after(1ms, [&] { ++fired; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.cancel(a));  // still stale, must not kill b
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Cancellation, GenerationsStayUniqueAcrossHeavyReuse) {
  // Churn one logical event through thousands of schedule/cancel cycles; all
  // ids must be distinct and only the last survivor may fire.
  Simulator sim;
  std::unordered_set<EventId> ids;
  int fired = 0;
  EventId last = kInvalidEvent;
  for (int i = 0; i < 5000; ++i) {
    if (last != kInvalidEvent) {
      EXPECT_TRUE(sim.cancel(last));
    }
    last = sim.schedule_after(1ms, [&] { ++fired; });
    EXPECT_NE(last, kInvalidEvent);
    EXPECT_TRUE(ids.insert(last).second) << "EventId reused at iteration " << i;
  }
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Cancellation, DoubleCancelAndCancelAfterFire) {
  Simulator sim;
  const EventId a = sim.schedule_after(5ms, [] {});
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(a));
  const EventId b = sim.schedule_after(5ms, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
}

TEST(Cancellation, TimerRearmStorm) {
  // The Raft idiom under stress: every heartbeat re-arms the election timer,
  // so a long trial drives one Timer through thousands of cancel+schedule
  // cycles. Only the final deadline may fire, and the engine must not
  // accumulate live events or slots.
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  for (int i = 0; i < 10000; ++i) {
    t.arm(Duration(std::chrono::milliseconds(10 + (i % 7))));
  }
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(t.armed());
  sim.run_for(1s);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(sim.pending(), 0u);

  // Re-arming from the fired state keeps working (fresh generation again).
  t.arm(5ms);
  sim.run_for(10ms);
  EXPECT_EQ(fired, 2);
}

TEST(Cancellation, RearmInsideCallbackReusesCleanly) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  Timer storm(sim, [&] {
    // Mid-event re-arm of another timer: exercises slot recycling while the
    // engine is inside step().
    if (fired < 3) {
      t.arm(1ms);
      storm.arm(2ms);
    }
  });
  storm.arm(2ms);
  sim.run_for(1s);
  EXPECT_EQ(fired, 3);
}

// ---- Reference engine: the seed implementation, kept verbatim ---------------

/// The pre-refactor engine (priority_queue + live/cancelled hash sets). The
/// production engine must match its observable behaviour event for event.
class ReferenceSimulator {
 public:
  using Fn = std::function<void()>;

  std::uint64_t schedule_at(TimePoint when, Fn fn) {
    if (when < now_) when = now_;
    const std::uint64_t id = ++next_id_;
    queue_.push(Entry{when, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  std::uint64_t schedule_after(Duration delay, Fn fn) {
    return schedule_at(now_ + (delay.count() > 0 ? delay : Duration{0}), std::move(fn));
  }

  bool cancel(std::uint64_t id) {
    if (live_.erase(id) == 0) return false;
    cancelled_.insert(id);
    return true;
  }

  bool step() {
    while (!queue_.empty()) {
      Entry top = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      if (cancelled_.erase(top.id) > 0) continue;
      live_.erase(top.id);
      now_ = top.when;
      top.fn();
      return true;
    }
    return false;
  }

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t id;
    Fn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };
  TimePoint now_ = kSimEpoch;
  std::uint64_t next_id_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// One (fire-time, tag) pair per executed event: the full observable trace.
struct FireRecord {
  std::int64_t when_ns;
  int tag;
  bool operator==(const FireRecord&) const = default;
};

TEST(Cancellation, TraceByteIdenticalToSeedEngine) {
  // Drive both engines through the same randomized schedule/cancel/step
  // script — same delays, same cancel picks, same mid-callback schedules —
  // and require identical fire traces, cancel outcomes and pending counts.
  // Two seeds cover different interleavings; ties (quantized delays) are
  // frequent on purpose to stress FIFO ordering.
  for (const std::uint64_t seed : {1ULL, 99ULL}) {
    Rng script_new(seed);
    Rng script_ref(seed);

    Simulator sim;
    ReferenceSimulator ref;
    std::vector<FireRecord> trace_new;
    std::vector<FireRecord> trace_ref;
    std::vector<EventId> ids_new;
    std::vector<std::uint64_t> ids_ref;

    auto drive = [](auto& engine, auto& rng, auto& trace, auto& ids) {
      for (int round = 0; round < 400; ++round) {
        const int burst = 1 + static_cast<int>(rng.uniform_index(4));
        for (int b = 0; b < burst; ++b) {
          const int tag = round * 16 + b;
          const Duration delay{std::chrono::milliseconds(rng.uniform_index(20))};
          ids.push_back(engine.schedule_after(delay, [&engine, &rng, &trace, tag] {
            trace.push_back(FireRecord{engine.now().time_since_epoch().count(), tag});
            // Half the callbacks schedule a follow-up, as timers/deliveries do.
            if (rng.bernoulli(0.5)) {
              const Duration d{std::chrono::milliseconds(1 + rng.uniform_index(5))};
              engine.schedule_after(d, [&trace, &engine, tag] {
                trace.push_back(
                    FireRecord{engine.now().time_since_epoch().count(), tag + 8});
              });
            }
          }));
        }
        // Cancel a random historical id (often stale → must return false
        // identically on both engines).
        if (!ids.empty() && rng.bernoulli(0.4)) {
          const auto pick = rng.uniform_index(ids.size());
          const bool r = engine.cancel(ids[pick]);
          trace.push_back(FireRecord{static_cast<std::int64_t>(r), -1 - static_cast<int>(pick)});
        }
        if (rng.bernoulli(0.6)) engine.step();
      }
      while (engine.step()) {
      }
    };

    drive(sim, script_new, trace_new, ids_new);
    drive(ref, script_ref, trace_ref, ids_ref);

    ASSERT_EQ(trace_new.size(), trace_ref.size()) << "seed " << seed;
    EXPECT_EQ(trace_new, trace_ref) << "seed " << seed;
    EXPECT_EQ(sim.now(), ref.now()) << "seed " << seed;
    EXPECT_EQ(sim.pending(), ref.pending()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dyna::sim
