// Fuzz soak over the fault zoo: 200+ randomized schedules crossing crash
// points x symmetric/asymmetric partitions x rolling restarts x membership
// churn, with the invariant checker on everywhere. Each schedule is a pure
// function of its trial seed (SweepSpec::mutate), so the soak is bit-identical
// across thread counts and fresh/reused substrates — and any surviving
// violation is replayable from (master_seed, seed index) alone.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;

/// Derive a fault schedule from the trial seed. Fault classes draw their
/// partition targets from disjoint node sets ({0,1} symmetric, {2,3}
/// directed) so every generated plan passes FaultPlan::validate by
/// construction — the fuzzer explores behavior, not plan-validation errors.
void mutate_faults(scenario::ScenarioSpec& spec, std::size_t /*index*/, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0xF022));
  scenario::FaultPlan plan;

  // Crash points on ~2/3 of schedules, cycling through all three modes.
  if (rng.uniform_index(3) != 0) {
    fault::InjectorConfig inj;
    switch (rng.uniform_index(3)) {
      case 0:
        inj.mode = fault::Mode::Independent;
        inj.independent_prob = 1e-3;
        break;
      case 1:
        inj.mode = fault::Mode::RunLength;
        inj.run_length = 50 + rng.uniform_index(350);
        break;
      default:
        inj.mode = fault::Mode::UniformOverRun;
        inj.uniform_max = 200 + rng.uniform_index(1800);
        break;
    }
    inj.restart_delay = Duration(std::chrono::milliseconds(200 + rng.uniform_index(600)));
    plan.crash_points = inj;
  }

  // Symmetric partition window on node 0 or 1.
  if (rng.uniform_index(2) == 0) {
    scenario::FaultPlan::PartitionWindow w;
    w.start = Duration(std::chrono::milliseconds(500 + rng.uniform_index(1500)));
    w.duration = Duration(std::chrono::milliseconds(400 + rng.uniform_index(1100)));
    w.nodes = {static_cast<NodeId>(rng.uniform_index(2))};
    plan.partition_windows.push_back(w);
  }

  // Asymmetric (directed) window on node 2 or 3.
  if (rng.uniform_index(2) == 0) {
    scenario::FaultPlan::DirectedPartitionWindow w;
    w.start = Duration(std::chrono::milliseconds(500 + rng.uniform_index(1500)));
    w.duration = Duration(std::chrono::milliseconds(400 + rng.uniform_index(1100)));
    w.nodes = {static_cast<NodeId>(2 + rng.uniform_index(2))};
    w.block_inbound = rng.uniform_index(2) == 0;
    w.block_outbound = !w.block_inbound || rng.uniform_index(2) == 0;
    plan.asym_windows.push_back(w);
  }

  // One rolling-restart pass on a quarter of schedules.
  if (rng.uniform_index(4) == 0) {
    plan.rolling = scenario::FaultPlan::RollingRestart{1, 1500ms, 500ms};
  }

  // One membership-churn round on a third of schedules.
  if (rng.uniform_index(3) == 0) {
    plan.churn = scenario::FaultPlan::MembershipChurn{1, 500ms, 10s};
  }

  plan.validate(spec.servers);  // by construction; a throw is a fuzzer bug
  spec.faults = plan;
}

scenario::SweepSpec soak_sweep(std::size_t seeds, unsigned threads, bool reuse) {
  scenario::ScenarioSpec base;
  base.name = "fault-fuzz";
  base.servers = 5;
  base.warmup = 1s;
  base.durable_log = true;  // every fault class must be able to recover
  wl::MixConfig mix;
  mix.clients = 2;
  mix.duration = 3s;
  base.workload = scenario::WorkloadPlan::closed_loop(mix);

  scenario::SweepSpec sweep;
  sweep.base = base;
  sweep.seeds = seeds;
  sweep.master_seed = 0xFA22;
  sweep.threads = threads;
  sweep.reuse_substrate = reuse;
  sweep.mutate = mutate_faults;
  return sweep;
}

TEST(FaultFuzz, SoakOf200SchedulesHoldsEveryInvariant) {
  const auto results = scenario::ScenarioRunner::run_sweep(soak_sweep(200, 8, true));
  ASSERT_EQ(results.size(), 200u);

  std::uint64_t violations = 0;
  std::uint64_t firings = 0;
  std::size_t churn_rounds = 0;
  std::size_t elected = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    violations += results[i].invariant_violations;
    firings += results[i].crash_firings;
    churn_rounds += results[i].membership_rounds;
    elected += results[i].leader_elected ? 1 : 0;
    EXPECT_EQ(results[i].invariant_violations, 0u)
        << "schedule " << i << " broke a safety invariant (replay: master_seed=0xFA22, "
        << "seed index " << i << ")";
  }
  EXPECT_EQ(violations, 0u);
  // Coverage: the corpus must actually exercise the machinery it claims to.
  EXPECT_GE(firings, 1u) << "no crash point fired across 200 schedules";
  EXPECT_GE(churn_rounds, 1u) << "no membership round completed across 200 schedules";
  EXPECT_GE(elected, 190u) << "too many schedules never elected a leader";

  // The full soak replays bit-identically single-threaded on fresh substrates.
  const auto replay = scenario::ScenarioRunner::run_sweep(soak_sweep(200, 1, false));
  EXPECT_TRUE(results == replay) << "soak is not reproducible across threads/substrates";
}

TEST(FaultFuzz, CrossOfThreadsAndSubstrateReuseIsBitIdentical) {
  const auto baseline = scenario::ScenarioRunner::run_sweep(soak_sweep(24, 1, false));
  ASSERT_EQ(baseline.size(), 24u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const bool reuse : {false, true}) {
      if (threads == 1 && !reuse) continue;  // that's the baseline itself
      const auto run = scenario::ScenarioRunner::run_sweep(soak_sweep(24, threads, reuse));
      EXPECT_TRUE(run == baseline)
          << "divergence at threads=" << threads << " reuse=" << reuse;
    }
  }
}

}  // namespace
}  // namespace dyna
