// Group commit end to end: batch frame encoding, batch-aware apply, the
// grouped CPU cost model, per-command completion fan-out, the ReadIndex
// fast path, closed-loop workload determinism, and the trial-reuse reset
// contract for the new leader-side accumulator state.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kvstore/client.hpp"
#include "kvstore/command.hpp"
#include "kvstore/state_machine.hpp"
#include "scenario/runner.hpp"
#include "test_support.hpp"
#include "workload/closed_loop.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

// ---- Batch frame encoding ---------------------------------------------------------

TEST(BatchFrame, RoundTripPreservesMembersInOrder) {
  const std::vector<std::string> members = {
      kv::encode({kv::Op::Put, "k1", "v1", {}}),
      kv::encode({kv::Op::Get, "k2", {}, {}}),
      kv::encode({kv::Op::Cas, "k3", "new", "old"}),
      kv::encode({kv::Op::Del, "a:b:c", {}, {}}),  // binary-safe framing
  };
  std::string frame;
  for (const auto& m : members) {
    const std::size_t before = frame.size();
    kv::batch_append(frame, m);
    // batch_overhead must predict the exact growth (frame tag aside).
    const std::size_t tag = before == 0 ? 1 : 0;
    EXPECT_EQ(frame.size() - before, kv::batch_overhead(m) + tag);
  }
  ASSERT_TRUE(kv::is_batch(frame));

  std::vector<std::string> decoded;
  ASSERT_TRUE(kv::for_each_batched(frame, [&](std::string_view m) {
    decoded.emplace_back(m);
  }));
  EXPECT_EQ(decoded, members);
}

TEST(BatchFrame, MalformedFramesAreRejectedNotCrashed) {
  EXPECT_FALSE(kv::for_each_batched("", [](std::string_view) {}));
  EXPECT_FALSE(kv::for_each_batched("Pnot-a-batch", [](std::string_view) {}));
  EXPECT_FALSE(kv::for_each_batched("B9999:short", [](std::string_view) {}));
  EXPECT_FALSE(kv::for_each_batch_result("junk", [](std::string_view) {}));

  kv::KvStateMachine sm;
  EXPECT_EQ(sm.apply("B12:truncated"), "ERR malformed-batch");
  EXPECT_EQ(sm.revision(), 0u);  // nothing half-applied at frame level
}

TEST(BatchFrame, BatchApplyEqualsSequentialApply) {
  // The core group-commit equivalence: applying a batch frame must produce
  // the same store state and the same per-command results as applying the
  // members one at a time.
  Rng rng = testutil::test_rng(7);
  std::vector<std::string> script;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(rng.uniform_index(20));
    switch (rng.uniform_index(4)) {
      case 0: script.push_back(kv::encode({kv::Op::Put, key, std::to_string(i), {}})); break;
      case 1: script.push_back(kv::encode({kv::Op::Get, key, {}, {}})); break;
      case 2: script.push_back(kv::encode({kv::Op::Del, key, {}, {}})); break;
      default:
        script.push_back(kv::encode({kv::Op::Cas, key, "swapped", std::to_string(i - 1)}));
        break;
    }
  }

  kv::KvStateMachine sequential;
  kv::KvStateMachine batched;
  std::vector<std::string> seq_results;
  for (const auto& p : script) seq_results.push_back(sequential.apply(p));

  // Re-play the same script through randomly sized frames (1..8 members).
  std::vector<std::string> batch_results;
  std::size_t i = 0;
  while (i < script.size()) {
    const std::size_t n = 1 + rng.uniform_index(8);
    std::string frame;
    std::size_t members = 0;
    for (; members < n && i + members < script.size(); ++members) {
      kv::batch_append(frame, script[i + members]);
    }
    const std::string blob = batched.apply(frame);
    ASSERT_TRUE(kv::for_each_batch_result(blob, [&](std::string_view one) {
      batch_results.emplace_back(one);
    }));
    i += members;
  }

  EXPECT_EQ(seq_results, batch_results);
  EXPECT_EQ(sequential.snapshot(), batched.snapshot());
  EXPECT_EQ(sequential.revision(), batched.revision());
}

// ---- Grouped CPU cost model -------------------------------------------------------

TEST(ServiceQueueGrouped, PendingCommandsShareOneRound) {
  sim::Simulator sim;
  cluster::ServiceQueue q(sim);
  q.configure_group({2ms, 100us, 8, true});

  std::vector<double> done_ms;
  for (int i = 0; i < 8; ++i) {
    q.enqueue_command([&] { done_ms.push_back(to_ms(sim.now())); });
  }
  EXPECT_EQ(q.pending_commands(), 8u);
  sim.run_for(1s);

  // One round: 2ms fixed + 8 * 0.1ms marginal, all completions together.
  ASSERT_EQ(done_ms.size(), 8u);
  for (const double t : done_ms) EXPECT_DOUBLE_EQ(t, 2.8);
  EXPECT_EQ(q.rounds_served(), 1u);
  EXPECT_EQ(q.pending_commands(), 0u);
}

TEST(ServiceQueueGrouped, RoundSizeCapSplitsTheBacklog) {
  sim::Simulator sim;
  cluster::ServiceQueue q(sim);
  q.configure_group({1ms, 100us, 4, true});

  std::vector<double> done_ms;
  for (int i = 0; i < 6; ++i) {
    q.enqueue_command([&] { done_ms.push_back(to_ms(sim.now())); });
  }
  sim.run_for(1s);

  // Round 1: 4 commands at 1 + 0.4 = 1.4ms; round 2: 2 commands 1.2ms later.
  ASSERT_EQ(done_ms.size(), 6u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(done_ms[static_cast<std::size_t>(i)], 1.4);
  for (int i = 4; i < 6; ++i) EXPECT_DOUBLE_EQ(done_ms[static_cast<std::size_t>(i)], 2.6);
  EXPECT_EQ(q.rounds_served(), 2u);
}

TEST(ServiceQueueGrouped, UnbatchedBaselinePaysARoundPerCommand) {
  sim::Simulator sim;
  cluster::ServiceQueue q(sim);
  q.configure_group({2ms, 100us, 8, false});  // coalesce off

  std::vector<double> done_ms;
  for (int i = 0; i < 3; ++i) {
    q.enqueue_command([&] { done_ms.push_back(to_ms(sim.now())); });
  }
  sim.run_for(1s);

  // Each command is its own round under the same cost split: 2.1ms apiece.
  ASSERT_EQ(done_ms.size(), 3u);
  EXPECT_DOUBLE_EQ(done_ms[0], 2.1);
  EXPECT_DOUBLE_EQ(done_ms[1], 4.2);
  EXPECT_DOUBLE_EQ(done_ms[2], 6.3);
}

// ---- Cluster-level group commit ---------------------------------------------------

cluster::ClusterConfig batching_config(std::uint64_t seed, bool group_commit,
                                       bool read_index = false) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(3, seed);
  net::LinkCondition link;
  link.rtt = 10ms;
  cfg.links = net::ConditionSchedule::constant(link);
  cfg.durable_log = false;
  cfg.raft.group_commit = group_commit;
  cfg.raft.read_index = read_index;
  return cfg;
}

TEST(GroupCommit, EveryBatchedCommandCompletesIndividually) {
  auto c = testutil::start_cluster(batching_config(11, /*group_commit=*/true));
  wl::MixConfig mix;
  mix.clients = 12;
  mix.get_ratio = 0.0;
  mix.ops_per_client = 25;
  mix.duration = 60s;
  wl::ClosedLoopPool pool(*c, mix, c->fork_rng(1));
  const wl::MixResult r = pool.run();

  // Closed-loop, ops-bound: the fan-out path must complete every single
  // command even though most rode a multi-command frame.
  EXPECT_EQ(r.completed, 12u * 25u);
  EXPECT_EQ(r.failed, 0u);

  raft::RaftNode& leader = c->node(c->current_leader());
  EXPECT_GT(leader.batches_sealed(), 0u);
  EXPECT_GT(leader.batched_commands(), leader.batches_sealed());
  // 12 concurrent sessions coalesce: far fewer entries than commands.
  EXPECT_LT(leader.last_log_index(), 12u * 25u);
}

TEST(GroupCommit, BatchedMatchesUnbatchedFinalState) {
  // Same seed, same closed-loop script, disjoint per-session keyspaces so the
  // final store state is interleaving-independent: batching on and off must
  // land on byte-identical state machines.
  auto run = [](bool group_commit) {
    auto c = testutil::start_cluster(batching_config(23, group_commit));
    wl::MixConfig mix;
    mix.clients = 8;
    mix.get_ratio = 0.0;
    mix.keyspace = 50;
    mix.value_bytes_min = 8;
    mix.value_bytes_max = 64;
    mix.ops_per_client = 30;
    mix.duration = 60s;
    mix.disjoint_keyspace = true;
    wl::ClosedLoopPool pool(*c, mix, c->fork_rng(2));
    const wl::MixResult r = pool.run();
    EXPECT_EQ(r.completed, 8u * 30u);
    c->sim().run_for(2s);  // let followers catch up
    // Store contents only (revision counts batched GET no-ops identically,
    // but interleaving can reorder revisions across sessions; keys/values
    // are the invariant).
    return c->state_machine(c->current_leader()).snapshot();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ReadIndex, GetsSkipTheLogAndReadYourWrites) {
  auto c = testutil::start_cluster(
      batching_config(31, /*group_commit=*/true, /*read_index=*/true));
  kv::KvClient client(c->sim(), c->network(), c->server_ids(), c->fork_rng(3));

  std::string got;
  bool put_done = false;
  client.put("answer", "42", [&](const kv::ClientResult& r) {
    ASSERT_TRUE(r.ok);
    put_done = true;
    // Issued from the PUT completion: a serializable read admitted after the
    // write commits must observe it.
    client.get("answer", [&](const kv::ClientResult& g) {
      ASSERT_TRUE(g.ok);
      got = g.value;
    });
  });
  c->sim().run_for(5s);
  ASSERT_TRUE(put_done);
  EXPECT_EQ(got, "42");

  raft::RaftNode& leader = c->node(c->current_leader());
  const raft::LogIndex after_put = leader.last_log_index();
  EXPECT_EQ(leader.reads_served(), 1u);

  // A burst of GETs: all answered, zero log growth.
  int gets_ok = 0;
  for (int i = 0; i < 20; ++i) {
    client.get("answer", [&](const kv::ClientResult& g) {
      if (g.ok && g.value == "42") ++gets_ok;
    });
  }
  c->sim().run_for(5s);
  EXPECT_EQ(gets_ok, 20);
  EXPECT_EQ(leader.reads_served(), 21u);
  EXPECT_EQ(leader.last_log_index(), after_put);
}

// ---- Determinism and trial reuse --------------------------------------------------

scenario::SweepSpec mixed_sweep() {
  scenario::SweepSpec sweep;
  sweep.base.name = "mix";
  sweep.base.servers = 3;
  sweep.base.topology = scenario::TopologySpec::constant(10ms);
  sweep.base.durable_log = false;
  sweep.base.group_commit = true;
  sweep.base.read_index = true;
  sweep.base.round_service_time = 200us;
  sweep.base.command_service_time = 20us;
  wl::MixConfig mix;
  mix.clients = 6;
  mix.get_ratio = 0.5;
  mix.value_bytes_min = 8;
  mix.value_bytes_max = 32;
  mix.ops_per_client = 20;
  mix.duration = 60s;
  sweep.base.workload = scenario::WorkloadPlan::closed_loop(mix);
  sweep.seeds = 3;
  sweep.master_seed = 404;
  return sweep;
}

TEST(ClosedLoop, MixedSweepBitIdenticalAcrossThreadCounts) {
  // The determinism contract extended to the new workload: a batched,
  // mixed-GET/PUT closed-loop sweep is bit-identical on 1, 2 and 8 threads.
  scenario::SweepSpec sweep = mixed_sweep();
  sweep.threads = 1;
  const auto t1 = scenario::ScenarioRunner::run_sweep(sweep);
  sweep.threads = 2;
  const auto t2 = scenario::ScenarioRunner::run_sweep(sweep);
  sweep.threads = 8;
  const auto t8 = scenario::ScenarioRunner::run_sweep(sweep);

  ASSERT_EQ(t1.size(), 3u);
  ASSERT_EQ(t2.size(), 3u);
  ASSERT_EQ(t8.size(), 3u);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i].mix.size(), 1u);
    EXPECT_GT(t1[i].mix[0].completed, 0u);
    EXPECT_GT(t1[i].mix[0].gets, 0u);
    EXPECT_GT(t1[i].mix[0].puts, 0u);
    EXPECT_EQ(t1[i], t2[i]) << "seed cell " << i;
    EXPECT_EQ(t1[i], t8[i]) << "seed cell " << i;
  }
}

TEST(TrialReuse, BatchAccumulatorStateDoesNotLeakAcrossTrials) {
  // Substrate reuse with group commit + ReadIndex in play: the second trial
  // on a reused cluster must equal a fresh cluster bit for bit, and no
  // accumulator / route / pending-read state may survive the reset.
  auto run_pool = [](Cluster& c) {
    wl::MixConfig mix;
    mix.clients = 6;
    mix.get_ratio = 0.3;
    mix.ops_per_client = 15;
    mix.duration = 60s;
    wl::ClosedLoopPool pool(c, mix, c.fork_rng(5));
    return pool.run();
  };

  auto reused = std::make_unique<Cluster>(batching_config(47, true, true));
  ASSERT_TRUE(reused->await_leader(30s));
  const wl::MixResult first = run_pool(*reused);
  EXPECT_GT(first.completed, 0u);

  reused->reset(/*seed=*/99);
  for (const NodeId id : reused->server_ids()) {
    raft::RaftNode& n = reused->node(id);
    EXPECT_EQ(n.pending_batch_commands(), 0u) << "node " << id;
    EXPECT_EQ(n.pending_batch_routes(), 0u) << "node " << id;
    EXPECT_EQ(n.pending_read_count(), 0u) << "node " << id;
    EXPECT_EQ(n.batches_sealed(), 0u) << "node " << id;
    EXPECT_EQ(n.reads_served(), 0u) << "node " << id;
    EXPECT_EQ(reused->service_queue(id).pending_commands(), 0u) << "node " << id;
  }
  ASSERT_TRUE(reused->await_leader(30s));
  const wl::MixResult second = run_pool(*reused);

  auto fresh = std::make_unique<Cluster>(batching_config(99, true, true));
  ASSERT_TRUE(fresh->await_leader(30s));
  const wl::MixResult baseline = run_pool(*fresh);

  EXPECT_EQ(second, baseline);
}

}  // namespace
}  // namespace dyna
