// Clock skew in the measurement path (§IV-D's multi-machine AWS setting).
//
// FaultPlan::clock_skew_ms models per-node NTP error: the probe shifts
// every recorded timestamp by the reporting node's fixed offset, exactly the
// distortion a log-file reader sees when detection and OTS instants come from
// different machines' clocks. Dynatune's RTT measurement itself is immune (the
// follower echoes the leader's timestamp verbatim), so skew must distort only
// the *reported* experiment numbers — never the simulation itself.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "scenario/runner.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;

scenario::ScenarioSpec skew_spec(std::uint64_t seed, bool dynatune,
                                 std::optional<double> skew_ms) {
  scenario::ScenarioSpec spec;
  spec.variant = dynatune ? scenario::Variant::Dynatune : scenario::Variant::Raft;
  spec.servers = 5;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(60ms, 3ms, 0.01);
  spec.faults = scenario::FaultPlan::leader_kills(3, 3s);
  spec.faults.clock_skew_ms = skew_ms;
  return spec;
}

std::vector<scenario::FailoverSample> run_failover(std::uint64_t seed, bool dynatune,
                                                   std::optional<double> skew_ms) {
  return scenario::ScenarioRunner::run(skew_spec(seed, dynatune, skew_ms)).failovers;
}

std::string serialize(const std::vector<scenario::FailoverSample>& samples) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& s : samples) {
    out << s.detection_ms << "," << s.ots_ms << "," << s.election_ms << ","
        << s.mean_randomized_ms << "," << s.ok << ";";
  }
  return out.str();
}

TEST(ClockSkew, SkewedExperimentIsReproducible) {
  const auto a = run_failover(31, /*dynatune=*/true, 25.0);
  const auto b = run_failover(31, /*dynatune=*/true, 25.0);
  EXPECT_EQ(serialize(a), serialize(b));
}

TEST(ClockSkew, SkewDistortsReportedInstantsOnly) {
  // Same seed, same cluster dynamics — only the probe's reading frame moves.
  // The failovers must still all succeed, but the reported detection/OTS
  // numbers must differ from the one-clock run (offsets are drawn from a
  // forked RNG stream, so the simulation itself is untouched).
  const auto plain = run_failover(32, /*dynatune=*/true, std::nullopt);
  const auto skewed = run_failover(32, /*dynatune=*/true, 40.0);
  ASSERT_EQ(plain.size(), skewed.size());

  bool any_shift = false;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].ok) << "kill " << i;
    ASSERT_TRUE(skewed[i].ok) << "kill " << i;
    // The underlying election really happened at the same simulated instants:
    // mean randomizedTimeout is read straight off node state, not probe logs.
    EXPECT_DOUBLE_EQ(plain[i].mean_randomized_ms, skewed[i].mean_randomized_ms);
    if (std::abs(plain[i].detection_ms - skewed[i].detection_ms) > 1e-9 ||
        std::abs(plain[i].ots_ms - skewed[i].ots_ms) > 1e-9) {
      any_shift = true;
    }
  }
  EXPECT_TRUE(any_shift) << "40 ms stddev skew left every reported instant unchanged";

  // 40 ms of NTP error cannot move a reported instant by seconds.
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_LT(std::abs(plain[i].ots_ms - skewed[i].ots_ms), 500.0);
    EXPECT_LT(std::abs(plain[i].detection_ms - skewed[i].detection_ms), 500.0);
  }
}

TEST(ClockSkew, ZeroSkewMatchesOneClockRun) {
  // sigma = 0 draws all-zero offsets from the forked stream; the reported
  // numbers must match the nullopt (single clock) run byte for byte.
  const auto plain = run_failover(33, /*dynatune=*/false, std::nullopt);
  const auto zero = run_failover(33, /*dynatune=*/false, 0.0);
  EXPECT_EQ(serialize(plain), serialize(zero));
}

TEST(ClockSkew, SkewAppliesAcrossTheFullScenarioPath) {
  // Timeline sampling + failover kills on a fluctuating link, as the paper's
  // composite figures run them, with skew active throughout. The run must
  // stay deterministic and the timeline (sampled from node state, not probe
  // logs) must be identical to the unskewed run.
  auto run = [](std::optional<double> skew) {
    net::LinkCondition base;
    base.jitter = 2ms;

    scenario::ScenarioSpec spec;
    spec.variant = scenario::Variant::Dynatune;
    spec.servers = 5;
    spec.seed = 34;
    spec.topology.schedule = net::ConditionSchedule::rtt_steps(base, {40ms, 120ms}, 15s);
    spec.await_leader = 60s;
    spec.samples = scenario::SamplePlan::every(1s, 20s);

    auto c = scenario::ScenarioRunner::materialize(spec);
    const auto timeline = scenario::ScenarioRunner::run_on(*c, spec).samples;

    scenario::ScenarioSpec kill_spec = spec;
    kill_spec.samples = {};
    kill_spec.faults = scenario::FaultPlan::leader_kills(2, 3s);
    kill_spec.faults.clock_skew_ms = skew;
    const auto kills = scenario::ScenarioRunner::run_on(*c, kill_spec).failovers;

    std::ostringstream out;
    out.precision(17);
    for (const auto& p : timeline) {
      out << p.t_sec << "," << p.randomized_kth_ms << "," << !p.available << ";";
    }
    return std::make_pair(out.str(), serialize(kills));
  };

  const auto [timeline_plain, kills_plain] = run(std::nullopt);
  const auto [timeline_skewed, kills_skewed] = run(15.0);
  EXPECT_EQ(timeline_plain, timeline_skewed);
  EXPECT_NE(kills_plain, kills_skewed);

  const auto [timeline_again, kills_again] = run(15.0);
  EXPECT_EQ(timeline_skewed, timeline_again);
  EXPECT_EQ(kills_skewed, kills_again);
}

}  // namespace
}  // namespace dyna
