// Large-cluster (n=33) election/failover determinism and shared-view
// replication exactness.
//
// The segment-store refactor must be invisible at the protocol level: a
// trial remains a pure function of its seed at every cluster size, sweeps
// stay bit-identical across thread counts, and the shared-view replication
// path must yield logs identical to what entry-by-entry copying would
// produce — including across randomized divergence/catch-up histories that
// exercise truncation while views of the old suffix are still alive.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "kvstore/command.hpp"
#include "raft/log.hpp"
#include "scenario/runner.hpp"
#include "test_support.hpp"

namespace dyna {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;

raft::Command make_cmd(const std::string& key, const std::string& value) {
  raft::Command cmd;
  cmd.payload = kv::encode(kv::KvCommand{kv::Op::Put, key, value, {}});
  return cmd;
}

// ---- n=33 election ----------------------------------------------------------------

TEST(LargeCluster, ElectsExactlyOneLeaderAt33) {
  Cluster c(cluster::make_raft_config(33, 1));
  ASSERT_TRUE(c.await_leader(60s));
  c.sim().run_for(3s);
  EXPECT_EQ(testutil::count_leaders(c), 1u);
  // Every follower knows the leader after a few heartbeat rounds.
  const NodeId leader = c.current_leader();
  for (const NodeId id : c.server_ids()) {
    EXPECT_EQ(c.node(id).leader_hint(), leader) << "node " << id;
  }
}

TEST(LargeCluster, DynatuneWarmsUpAndTunesAt33) {
  Cluster c(cluster::make_dynatune_config(33, 2));
  ASSERT_TRUE(c.await_leader(60s));
  c.sim().run_for(30s);  // minListSize samples on every path
  const NodeId leader = c.current_leader();
  std::size_t warmed = 0;
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    if (testutil::policy_of(c, id).warmed_up()) ++warmed;
  }
  // The vast majority of the 32 measurement paths must be warmed up.
  EXPECT_GE(warmed, 28u);
}

// ---- n=33 determinism across runs and thread counts --------------------------------

scenario::SweepSpec failover_sweep(unsigned threads) {
  scenario::ScenarioSpec base;
  base.name = "n33-failover";
  base.servers = 33;
  base.topology = scenario::TopologySpec::constant(80ms);
  base.faults = scenario::FaultPlan::leader_kills(2, 5s);

  scenario::SweepSpec sweep;
  sweep.base = std::move(base);
  sweep.variants = {scenario::Variant::Raft, scenario::Variant::Dynatune};
  sweep.seeds = 3;
  sweep.master_seed = 77;
  sweep.threads = threads;
  return sweep;
}

TEST(LargeCluster, FailoverSweepIsIdenticalAcrossThreadCounts) {
  const auto serial = scenario::ScenarioRunner::run_sweep(failover_sweep(1));
  const auto parallel = scenario::ScenarioRunner::run_sweep(failover_sweep(4));
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial, parallel);  // full results, == over every sample series
  // And the trials actually measured something.
  std::size_t ok = 0;
  for (const auto& r : serial) {
    for (const auto& f : r.failovers) ok += f.ok ? 1 : 0;
  }
  EXPECT_GT(ok, 0u);
}

TEST(LargeCluster, SameSeedSameResultAt33) {
  scenario::ScenarioSpec spec;
  spec.name = "n33-repeat";
  spec.servers = 33;
  spec.seed = 1234;
  spec.variant = scenario::Variant::Dynatune;
  spec.topology = scenario::TopologySpec::constant(60ms, 3ms, 0.01);
  spec.faults = scenario::FaultPlan::leader_kills(1, 5s);
  const auto a = scenario::ScenarioRunner::run(spec);
  const auto b = scenario::ScenarioRunner::run(spec);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.leader_elected);
}

// ---- Shared-view exactness: RaftLog vs the copying path ----------------------------

raft::LogEntry entry_of(raft::Term term, raft::LogIndex index, std::string payload) {
  raft::LogEntry e;
  e.term = term;
  e.index = index;
  e.command.payload = std::move(payload);
  return e;
}

/// Randomized append/truncate/view/adopt script: a RaftLog ("shared-view
/// path") against a plain std::vector<LogEntry> ("copying path"). After
/// every step the two must agree entry-for-entry, and every view taken —
/// including views whose suffix is later truncated away — must keep
/// matching the copy that was current when the view was taken.
TEST(SharedViewExactness, RandomizedScriptMatchesCopyingPath) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Rng rng(seed);
    raft::RaftLog log;
    std::vector<raft::LogEntry> ref;  // the copying path
    raft::Term term = 1;

    struct TakenView {
      raft::EntryView view;
      std::vector<raft::LogEntry> copy;  // materialized at take time
    };
    std::vector<TakenView> taken;

    for (int step = 0; step < 400; ++step) {
      const double dice = rng.uniform();
      if (dice < 0.45 || ref.empty()) {
        // Append a small batch (a submit burst).
        const std::size_t batch = 1 + rng.uniform_index(4);
        for (std::size_t b = 0; b < batch; ++b) {
          auto e = entry_of(term, ref.size() + 1, "p" + std::to_string(step));
          ref.push_back(e);
          log.append(std::move(e));
        }
      } else if (dice < 0.60) {
        // Divergence: truncate a random suffix, bump the term (the new
        // leader's entries overwrite), possibly while views are alive.
        const raft::LogIndex cut = 1 + rng.uniform_index(ref.size());
        ref.resize(cut - 1);
        log.truncate_from(cut);
        ++term;
      } else if (dice < 0.85) {
        // Replication read: a view over a random span.
        const raft::LogIndex first = 1 + rng.uniform_index(ref.size());
        const std::size_t count = 1 + rng.uniform_index(ref.size() - first + 1);
        raft::EntryView v = log.view(first, count);
        std::vector<raft::LogEntry> copy(ref.begin() + static_cast<std::ptrdiff_t>(first - 1),
                                         ref.begin() +
                                             static_cast<std::ptrdiff_t>(first - 1 + count));
        ASSERT_EQ(v.size(), copy.size());
        taken.push_back({std::move(v), std::move(copy)});
      } else {
        // Catch-up adoption: a fresh suffix view appended to a second log
        // must land the same entries a copying follower would hold.
        const std::size_t count = 1 + rng.uniform_index(3);
        for (std::size_t b = 0; b < count; ++b) {
          auto e = entry_of(term, ref.size() + 1, "a" + std::to_string(step));
          ref.push_back(e);
          log.append(std::move(e));
        }
        raft::EntryView suffix = log.view(ref.size() - count + 1, count);
        raft::RaftLog follower;
        // Bring the follower level, then adopt the shared suffix.
        for (std::size_t i = 0; i < ref.size() - count; ++i) {
          follower.append(ref[i]);
        }
        follower.append_view(suffix);
        ASSERT_EQ(follower.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
          ASSERT_EQ(follower[i], ref[i]) << "adopted log diverged at " << i;
        }
      }

      // The log must equal the copying path after every step.
      ASSERT_EQ(log.size(), ref.size()) << "step " << step;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(log[i], ref[i]) << "step " << step << " index " << i;
      }
    }

    // Every view still matches the snapshot of the copying path it aliased,
    // no matter what truncation did to the log afterwards (copy-on-write).
    for (const TakenView& t : taken) {
      ASSERT_EQ(t.view.size(), t.copy.size());
      for (std::size_t i = 0; i < t.copy.size(); ++i) {
        ASSERT_EQ(t.view[i], t.copy[i]);
      }
    }
  }
}

/// Cluster-level divergence/catch-up: partition a leader with a minority,
/// let both sides accumulate entries, heal, and require every replica to
/// converge onto a log identical to the leader's, entry by entry (what the
/// copying path produced by construction before the segment store).
TEST(SharedViewExactness, DivergenceCatchUpConvergesIdenticallyAt33) {
  Cluster c(cluster::make_raft_config(33, 5));
  ASSERT_TRUE(c.await_leader(60s));
  c.sim().run_for(2s);
  const NodeId old_leader = c.current_leader();

  // Minority: the leader plus 15 followers (16 < majority of 33).
  std::vector<NodeId> minority{old_leader};
  std::vector<NodeId> majority;
  for (const NodeId id : c.server_ids()) {
    if (id == old_leader) continue;
    if (minority.size() < 16) {
      minority.push_back(id);
    } else {
      majority.push_back(id);
    }
  }
  auto set_partition = [&](bool blocked) {
    for (const NodeId a : minority) {
      for (const NodeId b : majority) {
        c.network().set_blocked(a, b, blocked);
        c.network().set_blocked(b, a, blocked);
      }
    }
  };
  set_partition(true);

  // Minority side: uncommittable appends replicate to 15 followers.
  for (int i = 0; i < 8; ++i) {
    c.node(old_leader).submit(make_cmd("stale" + std::to_string(i), "x"));
  }
  c.sim().run_for(8s);

  // Majority side elects and commits fresh entries.
  raft::Term max_term = 0;
  for (const NodeId id : majority) max_term = std::max(max_term, c.node(id).term());
  NodeId new_leader = kNoNode;
  for (const NodeId id : majority) {
    if (c.node(id).is_leader() && c.node(id).term() == max_term) new_leader = id;
  }
  ASSERT_NE(new_leader, kNoNode);
  for (int i = 0; i < 8; ++i) {
    c.node(new_leader).submit(make_cmd("fresh" + std::to_string(i), "y"));
  }
  c.sim().run_for(3s);

  set_partition(false);
  c.sim().run_for(15s);

  // Full convergence: every node's log is entry-for-entry the leader's.
  const NodeId leader = c.current_leader();
  ASSERT_NE(leader, kNoNode);
  const auto& leader_log = c.node(leader).log();
  for (const NodeId id : c.server_ids()) {
    const auto& node_log = c.node(id).log();
    ASSERT_EQ(node_log.size(), leader_log.size()) << "node " << id;
    for (std::size_t i = 0; i < leader_log.size(); ++i) {
      ASSERT_EQ(node_log[i], leader_log[i]) << "node " << id << " entry " << i + 1;
    }
    EXPECT_EQ(c.state_machine(id).data().count("stale0"), 0u) << "node " << id;
    EXPECT_EQ(c.state_machine(id).data().at("fresh0"), "y") << "node " << id;
  }
}

}  // namespace
}  // namespace dyna
