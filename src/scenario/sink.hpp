// ResultSink: structured emitters for ScenarioResults.
//
// One result model, three presentation forms:
//   * TableSink — aligned console summary, one row per result;
//   * CsvSink   — the unified CSV path every bench shares. One schema per
//     sample series (failover / samples / levels), each prefixed with the
//     spec identity columns (scenario, variant, servers, seed) so a single
//     file can hold a whole sweep. The committed bench/reference/ snapshots
//     and the CI bench-diff gate consume exactly these schemas.
// print_failover_cdfs() is the Fig 4/8 console CDF presentation.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "metrics/cdf.hpp"
#include "metrics/report.hpp"
#include "scenario/result.hpp"

namespace dyna::scenario {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(const ScenarioResult& result) = 0;

  void consume_all(const std::vector<ScenarioResult>& results) {
    for (const auto& r : results) consume(r);
  }
};

// ---- CSV ------------------------------------------------------------------------

/// Which sample series of a result a CsvSink emits.
enum class CsvSection { Failover, Samples, Levels, Mix, Shard };

[[nodiscard]] std::vector<std::string> csv_header(CsvSection section);

class CsvSink final : public ResultSink {
 public:
  CsvSink(const std::string& path, CsvSection section)
      : csv_(path, csv_header(section)), section_(section) {}

  void consume(const ScenarioResult& result) override;

 private:
  CsvWriter csv_;
  CsvSection section_;
};

// ---- Console --------------------------------------------------------------------

/// One summary row per result: identity, failover means, counters, peak
/// throughput. Rows accumulate; print() renders the aligned table.
class TableSink final : public ResultSink {
 public:
  void consume(const ScenarioResult& result) override;

  void print(std::FILE* out = stdout) const { table_.print(out); }

 private:
  metrics::Table table_{{"scenario", "variant", "n", "seed", "kills ok", "detect(ms)",
                         "OTS(ms)", "elections", "expiries", "OTS(s)", "peak(req/s)"}};
};

/// Compact detection/OTS CDFs for a labeled failover series (Fig 4/8).
void print_failover_cdfs(const std::string& label, const std::vector<FailoverSample>& samples);

}  // namespace dyna::scenario
