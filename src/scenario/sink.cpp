#include "scenario/sink.hpp"

#include "workload/open_loop.hpp"

namespace dyna::scenario {

namespace {

std::vector<std::string> identity_cells(const ScenarioResult& r) {
  return {r.scenario, r.variant, std::to_string(r.servers), std::to_string(r.seed)};
}

void append(std::vector<std::string>& row, std::vector<std::string> tail) {
  for (auto& c : tail) row.push_back(std::move(c));
}

}  // namespace

std::vector<std::string> csv_header(CsvSection section) {
  std::vector<std::string> h{"scenario", "variant", "servers", "seed"};
  switch (section) {
    case CsvSection::Failover:
      append(h, {"kill", "detection_ms", "ots_ms", "election_ms", "mean_randomized_ms", "ok"});
      break;
    case CsvSection::Samples:
      append(h, {"t_sec", "rtt_ms", "loss_pct", "randomized_kth_ms", "et_median_ms",
                 "h_mean_ms", "hb_per_sec", "leader_cpu_pct", "follower_cpu_pct",
                 "available"});
      break;
    case CsvSection::Levels:
      append(h, {"offered_rps", "achieved_rps", "mean_latency_ms", "p99_latency_ms",
                 "completed", "failed"});
      break;
    case CsvSection::Mix:
      append(h, {"achieved_rps", "get_rps", "put_rps", "mean_latency_ms", "p99_latency_ms",
                 "completed", "failed", "gets", "puts"});
      break;
    case CsvSection::Shard:
      append(h, {"shard", "shard_servers", "elected", "completed", "failed", "rps",
                 "elections", "expiries", "applied"});
      break;
  }
  return h;
}

void CsvSink::consume(const ScenarioResult& r) {
  switch (section_) {
    case CsvSection::Failover: {
      std::size_t kill = 0;
      for (const auto& s : r.failovers) {
        auto row = identity_cells(r);
        append(row, {CsvWriter::cell(static_cast<double>(kill++)),
                     CsvWriter::cell(s.detection_ms), CsvWriter::cell(s.ots_ms),
                     CsvWriter::cell(s.election_ms), CsvWriter::cell(s.mean_randomized_ms),
                     s.ok ? "1" : "0"});
        csv_.row(row);
      }
      break;
    }
    case CsvSection::Samples: {
      for (const auto& p : r.samples) {
        auto row = identity_cells(r);
        append(row, {CsvWriter::cell(p.t_sec), CsvWriter::cell(p.rtt_ms),
                     CsvWriter::cell(p.loss_pct), CsvWriter::cell(p.randomized_kth_ms),
                     CsvWriter::cell(p.et_median_ms), CsvWriter::cell(p.h_mean_ms),
                     CsvWriter::cell(p.hb_per_sec), CsvWriter::cell(p.leader_cpu_pct),
                     CsvWriter::cell(p.follower_cpu_pct), p.available ? "1" : "0"});
        csv_.row(row);
      }
      break;
    }
    case CsvSection::Levels: {
      for (const auto& l : r.levels) {
        auto row = identity_cells(r);
        append(row, {CsvWriter::cell(l.offered_rps), CsvWriter::cell(l.achieved_rps),
                     CsvWriter::cell(l.mean_latency_ms), CsvWriter::cell(l.p99_latency_ms),
                     std::to_string(l.completed), std::to_string(l.failed)});
        csv_.row(row);
      }
      break;
    }
    case CsvSection::Mix: {
      for (const auto& m : r.mix) {
        auto row = identity_cells(r);
        append(row, {CsvWriter::cell(m.achieved_rps), CsvWriter::cell(m.get_rps),
                     CsvWriter::cell(m.put_rps), CsvWriter::cell(m.mean_latency_ms),
                     CsvWriter::cell(m.p99_latency_ms), std::to_string(m.completed),
                     std::to_string(m.failed), std::to_string(m.gets),
                     std::to_string(m.puts)});
        csv_.row(row);
      }
      break;
    }
    case CsvSection::Shard: {
      for (const auto& s : r.shard_stats) {
        auto row = identity_cells(r);
        append(row, {std::to_string(s.shard), std::to_string(s.servers),
                     s.leader_elected ? "1" : "0", std::to_string(s.completed),
                     std::to_string(s.failed), CsvWriter::cell(s.achieved_rps),
                     std::to_string(s.elections), std::to_string(s.timer_expiries),
                     std::to_string(s.applied)});
        csv_.row(row);
      }
      break;
    }
  }
}

void TableSink::consume(const ScenarioResult& r) {
  const FailoverStats f = summarize_failovers(r.failovers);
  const std::size_t ok = r.failovers.size() - f.failed_trials;
  std::vector<std::string> row = identity_cells(r);
  append(row, {std::to_string(ok) + "/" + std::to_string(r.failovers.size()),
               r.failovers.empty() ? "-" : metrics::Table::num(f.detection.mean),
               r.failovers.empty() ? "-" : metrics::Table::num(f.ots.mean),
               std::to_string(r.elections), std::to_string(r.timer_expiries),
               metrics::Table::num(r.ots_seconds, 0),
               !r.levels.empty()
                   ? metrics::Table::num(wl::OpenLoopRamp::peak_throughput(r.levels), 0)
                   : (!r.mix.empty() ? metrics::Table::num(r.mix.front().achieved_rps, 0)
                                     : "-")});
  table_.row(std::move(row));
}

void print_failover_cdfs(const std::string& label, const std::vector<FailoverSample>& samples) {
  metrics::print_quantiles(label + " detection", detection_samples(samples));
  metrics::print_quantiles(label + " OTS", ots_samples(samples));
}

}  // namespace dyna::scenario
