// ScenarioSpec: one value fully describing an experiment run.
//
// A spec names a tuning-policy variant (or a custom config factory), a
// cluster size and seed, the network it runs on (base link, time-varying
// schedule, WAN matrix, per-direction overrides), a fault plan, an optional
// workload, and the measurement set to collect. ScenarioRunner compiles a
// spec into a running Cluster and executes it deterministically; SweepSpec
// crosses a base spec over variants x sizes x seeds for parallel sweeps.
//
// Every paper figure, example and integration test is a ScenarioSpec; the
// hand-rolled drivers they used to carry (variant factory, topology apply,
// await-leader, warm-up, kill loop, sampling loop) live behind this API now.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/perf_model.hpp"
#include "cluster/topology.hpp"
#include "common/types.hpp"
#include "dynatune/config.hpp"
#include "fault/injector.hpp"
#include "net/condition.hpp"
#include "net/network.hpp"
#include "shard/router.hpp"
#include "workload/closed_loop.hpp"
#include "workload/open_loop.hpp"

namespace dyna::scenario {

using namespace std::chrono_literals;

/// The paper's tuning-policy variants (§IV-A).
enum class Variant { Raft, RaftLow, Dynatune, FixK };

[[nodiscard]] constexpr std::string_view to_string(Variant v) noexcept {
  switch (v) {
    case Variant::Raft: return "Raft";
    case Variant::RaftLow: return "Raft-Low";
    case Variant::Dynatune: return "Dynatune";
    case Variant::FixK: return "Fix-K";
  }
  return "?";
}

/// Network shape for a scenario. Layered: `schedule` (or constant `base`)
/// applies to every pair, then the WAN matrix (if any), then per-direction
/// overrides — so an asymmetric link can be expressed on top of any mesh.
struct TopologySpec {
  /// Constant condition for every link when no `schedule` is set.
  net::LinkCondition base{};

  /// Time-varying default schedule replacing `constant(base)` (fluctuation
  /// experiments: RTT ramps/spikes, loss ramps, correlated loss bursts).
  std::optional<net::ConditionSchedule> schedule;

  /// Per-pair WAN matrix applied after build (geo experiments).
  std::optional<cluster::WanTopology> wan;

  /// Directed per-link override: the forward and reverse directions of a
  /// path may carry different schedules (asymmetric links).
  struct DirectedOverride {
    NodeId from = 0;
    NodeId to = 0;
    net::ConditionSchedule schedule;
  };
  std::vector<DirectedOverride> overrides;

  /// Symmetric whole-mesh constant link.
  [[nodiscard]] static TopologySpec constant(Duration rtt, Duration jitter = {},
                                             double loss = 0.0) {
    TopologySpec t;
    t.base.rtt = rtt;
    t.base.jitter = jitter;
    t.base.loss = loss;
    return t;
  }

  /// Add an asymmetric pair: `forward` governs a->b, `reverse` governs b->a.
  void add_asymmetric_pair(NodeId a, NodeId b, net::ConditionSchedule forward,
                           net::ConditionSchedule reverse) {
    overrides.push_back({a, b, std::move(forward)});
    overrides.push_back({b, a, std::move(reverse)});
  }
};

/// How a leader kill is delivered: the paper's "container sleep" freezes the
/// process (volatile state survives), a crash/restart cycle loses volatile
/// state and recovers from Storage (snapshot + log suffix). CrashRestart
/// requires durable_log — Cluster::restart rejects log-discarding storage.
enum class FaultMode { PauseResume, CrashRestart };

/// Fault plan: repeated leader kills (§IV-B1), delivered either as
/// pause/resume or as crash/restart, plus scheduled symmetric network
/// partitions. `kills == 0` with no partition windows disables fault
/// injection.
struct FaultPlan {
  std::size_t kills = 0;
  FaultMode mode = FaultMode::PauseResume;
  /// Stabilization time before each kill (lets Dynatune warm up / retune).
  Duration settle = 10s;
  /// Give-up horizon per kill.
  Duration max_wait = 60s;
  /// Old leader revives this long after the new leader appears.
  Duration resume_delay = 2s;
  /// Per-node clock offset stddev (ms) applied to probe timestamps — models
  /// the NTP error of the multi-machine AWS experiment. nullopt = one clock.
  std::optional<double> clock_skew_ms;

  /// Symmetric partition window: `start` after measurement begins, the
  /// listed nodes are cut from every other registered endpoint (both
  /// directions, all transports — Network::set_blocked), healing after
  /// `duration`. Nodes inside the set still reach each other, so a window
  /// listing one group's members isolates that group without splitting it.
  struct PartitionWindow {
    Duration start{0};
    Duration duration = 1s;
    std::vector<NodeId> nodes;
  };
  /// Windows are scheduled up front when measurement starts, independent of
  /// the kill loop (they fire during workload, kill and sample phases alike).
  std::vector<PartitionWindow> partition_windows;

  /// Asymmetric partition window: the listed nodes lose one *direction* of
  /// connectivity to everyone outside the set. block_inbound cuts traffic
  /// toward them (they can send, nobody hears back — the classic half-open
  /// leader), block_outbound cuts traffic from them. Both together equal a
  /// symmetric PartitionWindow.
  struct DirectedPartitionWindow {
    Duration start{0};
    Duration duration = 1s;
    std::vector<NodeId> nodes;
    bool block_inbound = true;
    bool block_outbound = false;
  };
  std::vector<DirectedPartitionWindow> asym_windows;

  /// Rolling restart sweep: `rounds` passes over the live servers, crashing
  /// each in turn for `down_time`, successive crashes `stagger` apart.
  /// Requires durable_log (Cluster::restart enforces it).
  struct RollingRestart {
    std::size_t rounds = 0;
    Duration stagger = 3s;
    Duration down_time = 1s;
  };
  std::optional<RollingRestart> rolling;

  /// Probabilistic crash points compiled into RaftNode/Storage hot spots
  /// (src/fault/injector.hpp). Compiled into the ClusterConfig by the
  /// runner; requires durable_log so felled nodes can recover.
  std::optional<fault::InjectorConfig> crash_points;

  /// Membership churn: per round the runner provisions a fresh server, joins
  /// it as a learner, promotes it to voter, then removes one non-leader
  /// founding-era voter — net cluster size is unchanged, identity rotates.
  struct MembershipChurn {
    std::size_t rounds = 1;
    /// Catch-up / stabilization time between steps of a round.
    Duration settle = 2s;
    /// Give-up horizon per config-change commit.
    Duration max_wait = 30s;
  };
  std::optional<MembershipChurn> churn;

  [[nodiscard]] static FaultPlan leader_kills(std::size_t kills, Duration settle = 10s) {
    FaultPlan f;
    f.kills = kills;
    f.settle = settle;
    return f;
  }

  [[nodiscard]] static FaultPlan crash_restart_kills(std::size_t kills,
                                                     Duration settle = 10s) {
    FaultPlan f = leader_kills(kills, settle);
    f.mode = FaultMode::CrashRestart;
    return f;
  }

  [[nodiscard]] static FaultPlan partitions(std::vector<PartitionWindow> windows) {
    FaultPlan f;
    f.partition_windows = std::move(windows);
    return f;
  }

  [[nodiscard]] static FaultPlan asymmetric_partitions(
      std::vector<DirectedPartitionWindow> windows) {
    FaultPlan f;
    f.asym_windows = std::move(windows);
    return f;
  }

  [[nodiscard]] static FaultPlan rolling_restart(std::size_t rounds, Duration stagger = 3s,
                                                 Duration down_time = 1s) {
    FaultPlan f;
    f.rolling = RollingRestart{rounds, stagger, down_time};
    return f;
  }

  [[nodiscard]] static FaultPlan probabilistic_crashes(fault::InjectorConfig cfg) {
    FaultPlan f;
    f.crash_points = cfg;
    return f;
  }

  [[nodiscard]] static FaultPlan membership_churn(std::size_t rounds, Duration settle = 2s) {
    FaultPlan f;
    f.churn = MembershipChurn{rounds, settle, /*max_wait=*/30s};
    return f;
  }

  /// Reject malformed plans before a trial spends simulated hours on them.
  /// Throws std::invalid_argument (not a contract abort — harnesses test
  /// their schedules against this). Checks: node ids in [0, servers),
  /// positive window durations, no two windows (symmetric or directed)
  /// overlapping on the same node, and sane rolling-restart pacing.
  void validate(std::size_t servers) const {
    struct Interval {
      NodeId node;
      Duration start;
      Duration end;
    };
    std::vector<Interval> intervals;
    const auto add_window = [&](Duration start, Duration duration,
                                const std::vector<NodeId>& nodes) {
      if (duration <= Duration{0}) {
        throw std::invalid_argument("FaultPlan: partition window duration must be > 0");
      }
      for (const NodeId id : nodes) {
        if (id < 0 || static_cast<std::size_t>(id) >= servers) {
          throw std::invalid_argument("FaultPlan: partition window names node " +
                                      std::to_string(id) + " outside [0, " +
                                      std::to_string(servers) + ")");
        }
        intervals.push_back({id, start, start + duration});
      }
    };
    for (const auto& w : partition_windows) add_window(w.start, w.duration, w.nodes);
    for (const auto& w : asym_windows) add_window(w.start, w.duration, w.nodes);
    std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
      return a.node != b.node ? a.node < b.node : a.start < b.start;
    });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      const Interval& prev = intervals[i - 1];
      const Interval& cur = intervals[i];
      if (cur.node == prev.node && cur.start < prev.end) {
        throw std::invalid_argument(
            "FaultPlan: overlapping partition windows on node " + std::to_string(cur.node) +
            " (one starts at " + std::to_string(to_ms(cur.start)) + "ms inside another)");
      }
    }
    if (rolling && rolling->rounds > 0) {
      if (rolling->stagger <= Duration{0} || rolling->down_time <= Duration{0}) {
        throw std::invalid_argument("FaultPlan: rolling restart stagger/down_time must be > 0");
      }
      if (rolling->down_time > rolling->stagger) {
        throw std::invalid_argument(
            "FaultPlan: rolling restart down_time exceeds stagger (two servers would be "
            "down at once; widen stagger or shorten down_time)");
      }
    }
    if (churn && churn->rounds == 0) {
      throw std::invalid_argument("FaultPlan: membership churn needs rounds >= 1");
    }
  }
};

/// Periodic measurement sampling (Figs 6/7 timelines, example telemetry).
/// Disabled while `duration == 0`. Every `sample_every` the runner records a
/// SamplePoint: link condition in force, k-th smallest randomizedTimeout,
/// median follower Et, leader heartbeat pace and send rate, CPU (when the
/// perf model is on) and service availability (the paper's OTS shading).
struct SamplePlan {
  Duration duration{0};
  Duration sample_every = 1s;
  /// 1-based k for randomized_timeout_kth; 3 == f+1 for n=5 (Fig 6).
  std::size_t kth = 3;

  [[nodiscard]] static SamplePlan every(Duration sample_every, Duration duration,
                                        std::size_t kth = 3) {
    SamplePlan s;
    s.duration = duration;
    s.sample_every = sample_every;
    s.kth = kth;
    return s;
  }
};

/// Workload attached to a scenario. Disabled until `enabled` is set. Two
/// kinds: the Fig 5 open-loop ramp (offered rate swept level by level) and a
/// closed-loop client pool at production intensity (mixed GET/PUT, value-size
/// distribution, self-pacing sessions — the load shape group commit is for).
struct WorkloadPlan {
  enum class Kind { OpenLoop, ClosedLoop };

  bool enabled = false;
  Kind kind = Kind::OpenLoop;
  wl::RampConfig ramp{};  ///< Kind::OpenLoop
  wl::MixConfig mix{};    ///< Kind::ClosedLoop

  [[nodiscard]] static WorkloadPlan open_loop_ramp(wl::RampConfig ramp) {
    WorkloadPlan w;
    w.enabled = true;
    w.ramp = ramp;
    return w;
  }

  [[nodiscard]] static WorkloadPlan closed_loop(wl::MixConfig mix) {
    WorkloadPlan w;
    w.enabled = true;
    w.kind = Kind::ClosedLoop;
    w.mix = mix;
    return w;
  }
};

struct ScenarioSpec {
  std::string name = "scenario";

  // ---- Cluster ----
  Variant variant = Variant::Raft;
  /// Dynatune knobs (Dynatune / Fix-K variants).
  dt::DynatuneConfig dynatune{};
  /// K pinned for the Fix-K variant (paper: 10).
  int fix_k = 10;
  /// Escape hatch: a custom cluster-config factory overriding `variant`
  /// (custom policies, ablation knobs). Receives (servers, seed); the runner
  /// still applies topology/transport/perf/workload from the spec on top.
  std::function<cluster::ClusterConfig(std::size_t, std::uint64_t)> config_factory;
  /// Name of a PolicyRegistry-registered policy, overriding `variant` (but
  /// not `config_factory`). Registered policies carry their name into sink
  /// schemas and are sweepable via SweepSpec::policies.
  std::string policy;

  std::size_t servers = 5;
  std::uint64_t seed = 1;

  // ---- Sharding (src/shard/) ----
  /// Number of independent consensus groups behind the keyspace router;
  /// 1 = the classic single-group path, byte-identical to pre-sharding runs.
  /// `servers` is the per-group size, so total nodes = shards * servers.
  std::size_t shards = 1;
  /// How the router splits the keyspace across groups (shards > 1 only).
  shard::PartitionMode partition_mode = shard::PartitionMode::Hash;

  // ---- Network / host model ----
  TopologySpec topology{};
  net::Network::Config transport{};
  /// Override the Raft timeout tick granularity (ablation).
  std::optional<Duration> raft_tick;
  /// Snapshot compaction knobs (see RaftConfig::snapshot_threshold /
  /// snapshot_trailing). Applied only when set, so config_factory-supplied
  /// configs keep their own values; unset + default factories means
  /// compaction stays off (the reference-run default).
  std::optional<std::size_t> snapshot_threshold;
  std::optional<std::size_t> snapshot_trailing;
  /// Per-request FIFO CPU service time (> 0 enables the throughput pipeline).
  Duration request_service_time{0};
  /// Batch-aware CPU model: a commit round costs `round_service_time` plus
  /// `command_service_time` per command it carries (either > 0 enables it and
  /// supersedes `request_service_time` for client requests). With group
  /// commit on, coalesced commands share one round — the saturated peak moves
  /// from 1/(R+C) to B/(R+B*C).
  Duration round_service_time{0};
  Duration command_service_time{0};
  /// Leader-side group commit and its caps (see RaftConfig). Applied only
  /// when set so config_factory-supplied configs keep their own values; the
  /// default factories ship with batching off (the reference-run default).
  std::optional<bool> group_commit;
  std::optional<std::size_t> max_batch_commands;
  std::optional<std::size_t> max_batch_bytes;
  /// Leader ReadIndex fast path for GETs (see RaftConfig::read_index).
  std::optional<bool> read_index;
  bool durable_log = true;
  /// CPU accounting (Fig 7b).
  std::optional<cluster::CostModel> perf_cost;
  Duration perf_bin = 5s;

  // ---- Run shape ----
  Duration await_leader = 30s;
  /// Simulated time after the first leader before any measurement starts
  /// (Dynatune warm-up).
  Duration warmup{0};
  /// Record per-follower path telemetry (RTT / Et / h) after warm-up.
  bool sample_paths = false;

  FaultPlan faults{};
  SamplePlan samples{};
  WorkloadPlan workload{};
};

/// Cross product of one base spec over variants x sizes x seed trials.
/// Enumeration order is fixed (variant-major, then size, then seed index) and
/// trial seeds derive from (master_seed, seed index) alone, so a sweep's
/// results are bit-identical regardless of thread count — the contract
/// tests/test_scenario_sweep.cpp verifies.
struct SweepSpec {
  ScenarioSpec base{};
  /// Empty => {base.variant} (unless `policies` is non-empty).
  std::vector<Variant> variants{};
  /// PolicyRegistry names appended to the variant axis, after `variants`.
  /// When both lists are empty the single cell is the base spec's own
  /// policy/variant selection.
  std::vector<std::string> policies{};
  /// Empty => {base.servers}.
  std::vector<std::size_t> sizes{};
  /// Number of seed trials per (variant, size) cell.
  std::size_t seeds = 1;
  /// 0 => base.seed. Trial i's seed is derive_seed(master_seed, i) — the same
  /// seeds across every (variant, size) cell, so comparisons are paired.
  std::uint64_t master_seed = 0;
  /// Worker threads for par::run_trials; 0 => hardware concurrency.
  unsigned threads = 0;
  /// Run each worker's trials on one reused simulation substrate (warm
  /// allocations, Cluster::reset between trials) instead of constructing a
  /// fresh Cluster per trial. Results are bit-identical either way — that is
  /// the reset contract (tests/test_trial_reuse.cpp); this knob exists for
  /// that very comparison and for bisecting suspected reset leaks.
  bool reuse_substrate = true;

  /// Per-trial spec mutation, applied after the cell axes and trial seed are
  /// assigned: mutate(spec, trial_index, trial_seed). This is the fuzz-soak
  /// hook — a harness derives a different fault schedule per trial from the
  /// trial seed while keeping enumeration order (and thus thread-count
  /// determinism) intact. Presence forces the full-config reset path: the
  /// spec is no longer constant within a cell, so the seed-only fast path
  /// must not skip recompiling it.
  std::function<void(ScenarioSpec&, std::size_t, std::uint64_t)> mutate;
};

/// The paper's single-machine testbed stall process: five 4-core containers
/// demand 20 vCPUs of a 12-core Xeon, so node processes stall for tens of
/// milliseconds routinely and for hundreds in the tail (cfs-quota throttling
/// quanta). Calibrated once; applied identically to every variant.
[[nodiscard]] inline net::StallConfig testbed_stalls() {
  net::StallConfig s;
  s.mean_interval = 4s;
  s.duration_median_ms = 25.0;
  s.duration_sigma = 1.4;
  return s;
}

}  // namespace dyna::scenario
