// PolicyRegistry: named registration of custom tuning policies.
//
// The spec's `config_factory` escape hatch lets a study plug in any
// cluster-config recipe (ablation knobs, experimental policies), but a bare
// factory has no identity: sinks used to label such trials with whatever
// name the factory happened to leave in the config. Registering the factory
// under a name fixes that — the registry stamps the name (plus the runner's
// servers/seed) into every config it builds, so custom policies appear in
// TableSink / CsvSink schemas as first-class variants, sweepable alongside
// the paper's built-ins through SweepSpec::policies.
//
// The global() instance is process-wide and thread-safe; benches register
// their policies at startup, sweeps resolve them by name per trial.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"

namespace dyna::scenario {

class PolicyRegistry {
 public:
  /// Builds the cluster config for one trial of the named policy. The
  /// registry overrides the result's `servers`, `seed` and `name` fields, so
  /// a factory only needs to describe what makes the policy different.
  using Factory = std::function<cluster::ClusterConfig(std::size_t servers, std::uint64_t seed)>;

  /// The process-wide registry.
  [[nodiscard]] static PolicyRegistry& global();

  /// Register `factory` under `name`, replacing any previous registration.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// All registered names, sorted (stable sweep enumeration).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Build the config for one trial of `name`. Aborts on unknown names —
  /// a misspelled policy in a sweep is a driver bug, not a data point.
  [[nodiscard]] cluster::ClusterConfig make(std::string_view name, std::size_t servers,
                                            std::uint64_t seed) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace dyna::scenario
