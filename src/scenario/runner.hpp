// ScenarioRunner: compiles a ScenarioSpec into a running Cluster and
// executes its plans deterministically.
//
// run() is a pure function of the spec (one 64-bit seed in, one
// ScenarioResult out); run_sweep() crosses a base spec over variants x sizes
// x seeds through par::run_trials, with results in enumeration order and
// trial seeds derived from (master_seed, seed index) alone — so a sweep is
// bit-identical across thread counts.
//
// The failover ("container sleep" kill loop, §IV-B1) and timeline-sampling
// (§IV-C1) procedures that used to be public experiment drivers are internal
// strategies here, selected through the spec's FaultPlan / SamplePlan.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "scenario/result.hpp"
#include "scenario/spec.hpp"
#include "shard/sharded_cluster.hpp"

namespace dyna::scenario {

class ResultSink;

class ScenarioRunner {
 public:
  /// Compile the spec into a running cluster: variant config, topology
  /// (default schedule, WAN matrix, per-direction overrides), transport and
  /// perf model all applied. No simulated time has passed yet. Examples and
  /// tests that need live-cluster access build on this; run() does too.
  [[nodiscard]] static std::unique_ptr<cluster::Cluster> materialize(const ScenarioSpec& spec);

  /// Execute one spec end to end: materialize, await leader, warm up, then
  /// run the workload / fault / sampling plans and collect counters.
  [[nodiscard]] static ScenarioResult run(const ScenarioSpec& spec);

  /// Execute the spec's run shape (await leader, warm-up, plans) on a
  /// cluster that already exists — the composition hook for callers that
  /// need live-cluster access before/between/after plans (examples, deep
  /// inspection tests). The cluster is expected to come from materialize()
  /// with the same topology; simulated time continues from wherever the
  /// cluster is.
  [[nodiscard]] static ScenarioResult run_on(cluster::Cluster& cluster,
                                             const ScenarioSpec& spec);

  /// Sharded materialization (spec.shards > 1): k groups of spec.servers on
  /// one shared Simulator/Network, topology applied per group at its node
  /// base. run() dispatches here automatically; exposed for callers that
  /// need live access to the groups.
  [[nodiscard]] static std::unique_ptr<shard::ShardedCluster> materialize_sharded(
      const ScenarioSpec& spec);

  /// Execute the spec's run shape on a sharded deployment: await every
  /// group's leader, warm up, route the workload through a ShardRouter,
  /// round-robin leader kills across groups, then fill per-shard stats.
  [[nodiscard]] static ScenarioResult run_on(shard::ShardedCluster& cluster,
                                             const ScenarioSpec& spec);

  /// Execute the sweep's cross product (variant-major — built-in variants
  /// then registered policies — then size, then seed index) in parallel.
  /// Results are in enumeration order and independent of `sweep.threads` and
  /// `sweep.reuse_substrate`. Each worker runs its trials on one reused
  /// simulation substrate (see Cluster::reset) unless the spec opts out.
  [[nodiscard]] static std::vector<ScenarioResult> run_sweep(const SweepSpec& sweep);

  /// Same sweep, but stream every ScenarioResult into `sink` (in enumeration
  /// order, exactly once) instead of accumulating a result vector — a
  /// 10k-trial sweep writes its CSV in bounded memory. Out-of-order
  /// completions wait in a reorder window whose size is governed by the
  /// in-flight trial blocks (workers ascend their block runs in order), not
  /// by the sweep size.
  static void run_sweep(const SweepSpec& sweep, ResultSink& sink);

  /// The seed trial `seed_index` of a sweep runs under (same for every
  /// (variant, size) cell, so cross-variant comparisons are seed-paired).
  [[nodiscard]] static std::uint64_t sweep_seed(const SweepSpec& sweep, std::size_t seed_index);
};

}  // namespace dyna::scenario
