// ScenarioResult: the one structured result model every driver shares.
//
// A result carries the spec identity (scenario/variant/servers/seed), the
// per-trial sample series its plans produced (failover samples, periodic
// measurement points, workload levels, path telemetry) and run counters.
// All sample types are plain value types with defaulted equality, so sweep
// determinism ("bit-identical across thread counts") is a straight ==.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "workload/closed_loop.hpp"
#include "workload/open_loop.hpp"

namespace dyna::scenario {

/// One leader kill (§IV-B1): detection / OTS / election phases.
struct FailoverSample {
  double detection_ms = 0.0;        ///< kill -> first election-timer expiry
  double ots_ms = 0.0;              ///< kill -> new leader established
  double election_ms = 0.0;         ///< ots - detection
  double mean_randomized_ms = 0.0;  ///< mean randomizedTimeout across followers at kill
  bool ok = false;

  friend bool operator==(const FailoverSample&, const FailoverSample&) = default;
};

/// One periodic measurement sample (Figs 6/7 and the example telemetry).
/// Leader-dependent fields are -1 while the cluster is leaderless; CPU
/// fields are -1 without the perf model.
struct SamplePoint {
  double t_sec = 0.0;
  double rtt_ms = 0.0;             ///< link (0,1) RTT in force at sample time
  double loss_pct = 0.0;           ///< link (0,1) loss in force, percent
  double randomized_kth_ms = 0.0;  ///< k-th smallest randomizedTimeout; -1 if < k running
  double et_median_ms = -1.0;      ///< median follower election timeout
  double h_mean_ms = -1.0;         ///< leader's mean heartbeat interval across followers
  double hb_per_sec = -1.0;        ///< leader send rate over the bin (all transports)
  double leader_cpu_pct = -1.0;
  double follower_cpu_pct = -1.0;
  bool available = true;           ///< some live node leads at max term (!OTS)

  friend bool operator==(const SamplePoint&, const SamplePoint&) = default;
};

/// Per-shard slice of a sharded run (ScenarioSpec::shards > 1): one row per
/// consensus group with its health and its share of the workload.
struct ShardSample {
  std::size_t shard = 0;
  std::size_t servers = 0;         ///< group size (== spec servers)
  bool leader_elected = false;     ///< group has a leader at run end
  std::uint64_t completed = 0;     ///< workload ops answered by this group
  std::uint64_t failed = 0;
  double achieved_rps = 0.0;       ///< completed / measurement window
  std::size_t elections = 0;       ///< elections begun in the window
  std::size_t timer_expiries = 0;  ///< election-timer expiries, whole run
  std::uint64_t applied = 0;       ///< max applied index across the group

  friend bool operator==(const ShardSample&, const ShardSample&) = default;
};

/// Per-follower path telemetry recorded once after warm-up (geo example).
struct PathSample {
  NodeId follower = kNoNode;
  double rtt_ms = 0.0;  ///< leader->follower link RTT in force
  double et_ms = 0.0;   ///< follower's election timeout in force
  double h_ms = 0.0;    ///< leader's heartbeat interval toward the follower

  friend bool operator==(const PathSample&, const PathSample&) = default;
};

struct ScenarioResult {
  // ---- Spec identity ----
  std::string scenario;
  std::string variant;
  std::size_t servers = 0;
  std::uint64_t seed = 0;

  // ---- Sample series (one per plan) ----
  bool leader_elected = false;
  std::vector<FailoverSample> failovers;
  std::vector<SamplePoint> samples;
  std::vector<wl::LevelResult> levels;
  std::vector<wl::MixResult> mix;  ///< closed-loop pool result (0 or 1 entry)
  std::vector<PathSample> paths;
  NodeId paths_leader = kNoNode;  ///< leader when `paths` was recorded
  std::vector<ShardSample> shard_stats;  ///< one per group when shards > 1

  // ---- Run counters (measurement window = warm-up end .. run end) ----
  std::size_t elections = 0;       ///< elections started in the window
  std::size_t timer_expiries = 0;  ///< all election-timer expiries, whole run
  double ots_seconds = 0.0;        ///< leaderless sample-seconds (paper's OTS shading)
  double sim_seconds = 0.0;        ///< total simulated time at run end

  // ---- Safety / fault engine (always recorded; all zero when faults are off) ----
  std::uint64_t invariant_violations = 0;  ///< InvariantChecker count at run end
  std::uint64_t crash_firings = 0;         ///< crash-point firings across all servers
  std::size_t membership_rounds = 0;       ///< churn rounds completed (FaultPlan::churn)

  friend bool operator==(const ScenarioResult&, const ScenarioResult&) = default;
};

// ---- Aggregation helpers ----------------------------------------------------------

/// Summary statistics over a failover series (the Fig 4/8 table rows).
struct FailoverStats {
  Summary detection;
  Summary ots;
  Summary election;
  double mean_randomized_ms = 0.0;
  std::size_t failed_trials = 0;
};

[[nodiscard]] inline FailoverStats summarize_failovers(
    const std::vector<FailoverSample>& samples) {
  FailoverStats out;
  std::vector<double> det, ots, el;
  Welford rand_mean;
  for (const auto& s : samples) {
    if (!s.ok) {
      ++out.failed_trials;
      continue;
    }
    det.push_back(s.detection_ms);
    ots.push_back(s.ots_ms);
    el.push_back(s.election_ms);
    rand_mean.add(s.mean_randomized_ms);
  }
  out.detection = Summary::of(det);
  out.ots = Summary::of(ots);
  out.election = Summary::of(el);
  out.mean_randomized_ms = rand_mean.mean();
  return out;
}

/// Cap the cumulative failover count across `results` at `cap`, dropping the
/// excess in place. Kill-sharded sweeps run whole 25-kill trials, so the last
/// trial can overshoot the requested budget; trimming once, before anything
/// reads the results, keeps every consumer — summary tables, CDFs, CSV sinks
/// — in agreement about which kills exist.
inline void trim_failovers(std::vector<ScenarioResult>& results, std::size_t cap) {
  std::size_t used = 0;
  for (auto& r : results) {
    const std::size_t take = std::min(r.failovers.size(), cap - used);
    r.failovers.resize(take);
    used += take;
  }
}

/// Flatten the failover series of a sweep's results in sweep order (the Fig
/// 4/8 kill-sharding pattern: one logical kill sequence split across
/// parallel clusters). Budget enforcement belongs to trim_failovers — this
/// is a plain concatenation.
[[nodiscard]] inline std::vector<FailoverSample> collect_failovers(
    const std::vector<ScenarioResult>& results) {
  std::vector<FailoverSample> all;
  for (const auto& r : results) {
    all.insert(all.end(), r.failovers.begin(), r.failovers.end());
  }
  return all;
}

[[nodiscard]] inline std::vector<double> detection_samples(
    const std::vector<FailoverSample>& samples) {
  std::vector<double> v;
  for (const auto& s : samples) {
    if (s.ok) v.push_back(s.detection_ms);
  }
  return v;
}

[[nodiscard]] inline std::vector<double> ots_samples(
    const std::vector<FailoverSample>& samples) {
  std::vector<double> v;
  for (const auto& s : samples) {
    if (s.ok) v.push_back(s.ots_ms);
  }
  return v;
}

}  // namespace dyna::scenario
