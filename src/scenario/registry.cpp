#include "scenario/registry.hpp"

namespace dyna::scenario {

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry instance;
  return instance;
}

void PolicyRegistry::add(std::string name, Factory factory) {
  DYNA_EXPECTS(!name.empty());
  DYNA_EXPECTS(factory != nullptr);
  std::lock_guard lock(mu_);
  factories_[std::move(name)] = std::move(factory);
}

bool PolicyRegistry::contains(std::string_view name) const {
  std::lock_guard lock(mu_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> PolicyRegistry::names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration order: already sorted
}

cluster::ClusterConfig PolicyRegistry::make(std::string_view name, std::size_t servers,
                                            std::uint64_t seed) const {
  Factory factory;
  {
    std::lock_guard lock(mu_);
    const auto it = factories_.find(name);
    DYNA_EXPECTS(it != factories_.end());
    factory = it->second;  // copy: never hold the lock across user code
  }
  cluster::ClusterConfig cfg = factory(servers, seed);
  cfg.servers = servers;
  cfg.seed = seed;
  cfg.name = std::string(name);
  return cfg;
}

}  // namespace dyna::scenario
