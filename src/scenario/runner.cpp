#include "scenario/runner.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "kvstore/client.hpp"
#include "parallel/trial_runner.hpp"
#include "workload/open_loop.hpp"

namespace dyna::scenario {

using namespace std::chrono_literals;

namespace {

// ---- Spec -> ClusterConfig --------------------------------------------------------

cluster::ClusterConfig build_config(const ScenarioSpec& spec, std::size_t servers,
                                    std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  if (spec.config_factory) {
    cfg = spec.config_factory(servers, seed);
  } else {
    switch (spec.variant) {
      case Variant::Raft:
        cfg = cluster::make_raft_config(servers, seed);
        break;
      case Variant::RaftLow:
        cfg = cluster::make_raft_low_config(servers, seed);
        break;
      case Variant::Dynatune:
        cfg = cluster::make_dynatune_config(servers, seed, spec.dynatune);
        break;
      case Variant::FixK:
        cfg = cluster::make_fixk_config(servers, seed, spec.fix_k, spec.dynatune);
        break;
    }
  }
  cfg.links = spec.topology.schedule.value_or(net::ConditionSchedule::constant(spec.topology.base));
  cfg.transport = spec.transport;
  if (spec.raft_tick) cfg.raft.tick = *spec.raft_tick;
  cfg.request_service_time = spec.request_service_time;
  cfg.durable_log = spec.durable_log;
  cfg.perf_cost = spec.perf_cost;
  cfg.perf_bin = spec.perf_bin;
  return cfg;
}

// ---- Internal strategies ----------------------------------------------------------

/// The paper's §IV-B1 procedure: repeatedly freeze the leader ("container
/// sleep"), read detection / OTS instants from the probe's event stream,
/// revive, repeat.
std::vector<FailoverSample> run_failovers(cluster::Cluster& c, const FaultPlan& plan) {
  std::vector<FailoverSample> samples;
  samples.reserve(plan.kills);

  // Multi-machine measurement noise (AWS experiment): each server's log
  // timestamps carry a fixed NTP offset.
  if (plan.clock_skew_ms) {
    Rng skew_rng = c.fork_rng(0x5C1E);
    for (const NodeId id : c.server_ids()) {
      c.probe().set_clock_offset(id, from_ms(skew_rng.normal(0.0, *plan.clock_skew_ms)));
    }
  }

  for (std::size_t kill = 0; kill < plan.kills; ++kill) {
    FailoverSample sample;

    if (!c.await_leader(plan.max_wait)) {
      samples.push_back(sample);  // ok == false
      continue;
    }
    c.sim().run_for(plan.settle);
    const NodeId leader = c.current_leader();
    if (leader == kNoNode) {
      samples.push_back(sample);
      continue;
    }

    // Mean randomizedTimeout across the followers just before the kill
    // (the §IV-B1 telemetry: 1454 ms for Raft vs 152 ms for Dynatune; the
    // leader is excluded — its stale draw never gates failure detection).
    {
      Welford w;
      for (const NodeId id : c.server_ids()) {
        if (id == leader) continue;
        if (auto* n = c.node_if_alive(id); n != nullptr && n->running()) {
          w.add(to_ms(n->randomized_timeout()));
        }
      }
      sample.mean_randomized_ms = w.mean();
    }

    const TimePoint t_kill = c.sim().now();
    c.pause(leader);

    // Advance until a successor emerges.
    const TimePoint deadline = t_kill + plan.max_wait;
    std::optional<cluster::Probe::LeaderEvent> new_leader;
    while (c.sim().now() < deadline) {
      new_leader = c.probe().first_leader_after(t_kill, /*exclude=*/leader);
      if (new_leader) break;
      c.sim().run_for(5ms);
    }

    const auto detection = c.probe().first_timeout_after(t_kill);
    if (new_leader && detection) {
      sample.detection_ms = to_ms(detection->when - t_kill);
      sample.ots_ms = to_ms(new_leader->when - t_kill);
      sample.election_ms = sample.ots_ms - sample.detection_ms;
      sample.ok = true;
    }
    samples.push_back(sample);

    c.sim().run_for(plan.resume_delay);
    c.resume(leader);
  }
  return samples;
}

/// Median follower election timeout in force; -1 when no follower is live.
double follower_et_median_ms(cluster::Cluster& c, NodeId leader) {
  std::vector<double> ets;
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    if (auto* n = c.node_if_alive(id); n != nullptr && n->running()) {
      ets.push_back(to_ms(n->policy().election_timeout()));
    }
  }
  if (ets.empty()) return -1.0;
  const auto mid = ets.begin() + static_cast<std::ptrdiff_t>(ets.size() / 2);
  std::nth_element(ets.begin(), mid, ets.end());
  return *mid;
}

/// The §IV-C1 sampling loop generalized: every `sample_every`, record the
/// link condition in force, the k-th smallest randomizedTimeout, follower Et
/// / leader pace telemetry, CPU (when modeled) and availability.
std::vector<SamplePoint> run_samples(cluster::Cluster& c, const SamplePlan& plan) {
  std::vector<SamplePoint> points;
  const auto total =
      static_cast<std::size_t>(plan.duration.count() / plan.sample_every.count());
  points.reserve(total);
  std::uint64_t last_sent = 0;
  NodeId last_leader = c.current_leader();
  if (last_leader != kNoNode) last_sent = c.network().traffic(last_leader).sent;
  for (std::size_t i = 0; i < total; ++i) {
    c.sim().run_for(plan.sample_every);
    const TimePoint now = c.sim().now();

    SamplePoint p;
    p.t_sec = to_sec(now);
    const net::LinkCondition& cond = c.network().condition(0, 1);
    p.rtt_ms = to_ms(cond.rtt);
    p.loss_pct = cond.loss * 100.0;
    const Duration kth = c.randomized_timeout_kth(plan.kth);
    p.randomized_kth_ms = kth == Duration::max() ? -1.0 : to_ms(kth);
    p.available = cluster::service_available(c);

    const NodeId leader = c.current_leader();
    if (leader != kNoNode) {
      p.et_median_ms = follower_et_median_ms(c, leader);
      double h_sum = 0.0;
      int h_n = 0;
      raft::RaftNode& ln = c.node(leader);
      for (const NodeId id : c.server_ids()) {
        if (id == leader) continue;
        h_sum += to_ms(ln.effective_heartbeat_interval(id));
        ++h_n;
      }
      if (h_n > 0) p.h_mean_ms = h_sum / h_n;

      // The send rate is a delta of the leader's cumulative counter; a
      // leadership change between samples makes the previous baseline another
      // node's counter, so the bin after a change has no rate.
      const std::uint64_t sent = c.network().traffic(leader).sent;
      if (leader == last_leader) {
        p.hb_per_sec = static_cast<double>(sent - last_sent) / to_sec(plan.sample_every);
      }
      last_sent = sent;

      if (c.perf() != nullptr) {
        const NodeId follower = leader == 0 ? 1 : 0;
        p.leader_cpu_pct = c.perf()->cpu_percent_at(leader, now - plan.sample_every);
        p.follower_cpu_pct = c.perf()->cpu_percent_at(follower, now - plan.sample_every);
      }
    }
    last_leader = leader;
    points.push_back(p);
  }
  return points;
}

std::vector<PathSample> record_paths(cluster::Cluster& c, NodeId leader) {
  std::vector<PathSample> paths;
  if (leader == kNoNode) return paths;
  raft::RaftNode& ln = c.node(leader);
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    PathSample p;
    p.follower = id;
    p.rtt_ms = to_ms(c.network().condition(leader, id).rtt);
    if (auto* n = c.node_if_alive(id); n != nullptr && n->running()) {
      p.et_ms = to_ms(n->policy().election_timeout());
    }
    p.h_ms = to_ms(ln.effective_heartbeat_interval(id));
    paths.push_back(p);
  }
  return paths;
}

}  // namespace

std::unique_ptr<cluster::Cluster> ScenarioRunner::materialize(const ScenarioSpec& spec) {
  auto c = std::make_unique<cluster::Cluster>(build_config(spec, spec.servers, spec.seed));
  if (spec.topology.wan) {
    DYNA_EXPECTS(spec.topology.wan->size() >= spec.servers);
    spec.topology.wan->apply(c->network());
  }
  for (const auto& o : spec.topology.overrides) {
    c->network().set_link_schedule(o.from, o.to, o.schedule);
  }
  return c;
}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  auto c = materialize(spec);
  return run_on(*c, spec);
}

ScenarioResult ScenarioRunner::run_on(cluster::Cluster& c, const ScenarioSpec& spec) {
  ScenarioResult r;
  r.scenario = spec.name;
  r.servers = spec.servers;
  r.seed = spec.seed;
  r.variant = c.config().name;  // factory-supplied configs keep their own name

  r.leader_elected = c.await_leader(spec.await_leader);
  if (!r.leader_elected) {
    r.timer_expiries = c.probe().timeouts().size();
    r.sim_seconds = to_sec(c.sim().now());
    return r;
  }
  c.sim().run_for(spec.warmup);

  if (spec.sample_paths) {
    r.paths_leader = c.current_leader();
    r.paths = record_paths(c, r.paths_leader);
  }

  const TimePoint measure_start = c.sim().now();

  if (spec.workload.enabled) {
    // Fixed RNG stream ids keep the workload trace a pure function of the
    // cluster seed (and match the pre-scenario-API Fig 5 driver).
    kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(0xC11E47));
    wl::OpenLoopRamp ramp(c, client, spec.workload.ramp, c.fork_rng(0x10AD));
    r.levels = ramp.run();
  }

  if (spec.faults.kills > 0) {
    r.failovers = run_failovers(c, spec.faults);
  }

  if (spec.samples.duration > Duration{0}) {
    r.samples = run_samples(c, spec.samples);
    for (const auto& p : r.samples) {
      if (!p.available) r.ots_seconds += to_sec(spec.samples.sample_every);
    }
  }

  r.elections = c.probe().elections_started_in(measure_start, c.sim().now());
  r.timer_expiries = c.probe().timeouts().size();
  r.sim_seconds = to_sec(c.sim().now());
  return r;
}

std::uint64_t ScenarioRunner::sweep_seed(const SweepSpec& sweep, std::size_t seed_index) {
  const std::uint64_t master = sweep.master_seed != 0 ? sweep.master_seed : sweep.base.seed;
  return derive_seed(master, seed_index);
}

std::vector<ScenarioResult> ScenarioRunner::run_sweep(const SweepSpec& sweep) {
  const std::vector<Variant> variants =
      sweep.variants.empty() ? std::vector<Variant>{sweep.base.variant} : sweep.variants;
  const std::vector<std::size_t> sizes =
      sweep.sizes.empty() ? std::vector<std::size_t>{sweep.base.servers} : sweep.sizes;
  const std::size_t trials = std::max<std::size_t>(1, sweep.seeds);

  std::vector<ScenarioSpec> specs;
  specs.reserve(variants.size() * sizes.size() * trials);
  for (const Variant v : variants) {
    for (const std::size_t n : sizes) {
      for (std::size_t t = 0; t < trials; ++t) {
        ScenarioSpec s = sweep.base;
        s.variant = v;
        s.servers = n;
        s.seed = sweep_seed(sweep, t);
        specs.push_back(std::move(s));
      }
    }
  }

  const unsigned threads =
      sweep.threads != 0 ? sweep.threads : std::thread::hardware_concurrency();
  return par::run_trials<ScenarioResult>(
      specs.size(), sweep.master_seed != 0 ? sweep.master_seed : sweep.base.seed,
      [&specs](std::size_t i, std::uint64_t /*derived*/) { return run(specs[i]); }, threads);
}

}  // namespace dyna::scenario
