#include "scenario/runner.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/stats.hpp"
#include "kvstore/client.hpp"
#include "parallel/trial_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/sink.hpp"
#include "shard/client.hpp"
#include "workload/open_loop.hpp"

namespace dyna::scenario {

using namespace std::chrono_literals;

namespace {

// ---- Spec -> ClusterConfig --------------------------------------------------------

cluster::ClusterConfig build_config(const ScenarioSpec& spec, std::size_t servers,
                                    std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  if (spec.config_factory) {
    cfg = spec.config_factory(servers, seed);
  } else if (!spec.policy.empty()) {
    cfg = PolicyRegistry::global().make(spec.policy, servers, seed);
  } else {
    switch (spec.variant) {
      case Variant::Raft:
        cfg = cluster::make_raft_config(servers, seed);
        break;
      case Variant::RaftLow:
        cfg = cluster::make_raft_low_config(servers, seed);
        break;
      case Variant::Dynatune:
        cfg = cluster::make_dynatune_config(servers, seed, spec.dynatune);
        break;
      case Variant::FixK:
        cfg = cluster::make_fixk_config(servers, seed, spec.fix_k, spec.dynatune);
        break;
    }
  }
  cfg.links = spec.topology.schedule.value_or(net::ConditionSchedule::constant(spec.topology.base));
  cfg.transport = spec.transport;
  if (spec.raft_tick) cfg.raft.tick = *spec.raft_tick;
  if (spec.snapshot_threshold) cfg.raft.snapshot_threshold = *spec.snapshot_threshold;
  if (spec.snapshot_trailing) cfg.raft.snapshot_trailing = *spec.snapshot_trailing;
  cfg.request_service_time = spec.request_service_time;
  cfg.round_service_time = spec.round_service_time;
  cfg.command_service_time = spec.command_service_time;
  if (spec.group_commit) cfg.raft.group_commit = *spec.group_commit;
  if (spec.max_batch_commands) cfg.raft.max_batch_commands = *spec.max_batch_commands;
  if (spec.max_batch_bytes) cfg.raft.max_batch_bytes = *spec.max_batch_bytes;
  if (spec.read_index) cfg.raft.read_index = *spec.read_index;
  cfg.durable_log = spec.durable_log;
  cfg.perf_cost = spec.perf_cost;
  cfg.perf_bin = spec.perf_bin;
  cfg.fault = spec.faults.crash_points;
  if (cfg.fault) cfg.durable_log = true;  // felled nodes must be able to recover
  return cfg;
}

// ---- Internal strategies ----------------------------------------------------------

/// The paper's §IV-B1 procedure: repeatedly freeze the leader ("container
/// sleep"), read detection / OTS instants from the probe's event stream,
/// revive, repeat.
std::vector<FailoverSample> run_failovers(cluster::Cluster& c, const FaultPlan& plan) {
  std::vector<FailoverSample> samples;
  samples.reserve(plan.kills);

  // Multi-machine measurement noise (AWS experiment): each server's log
  // timestamps carry a fixed NTP offset.
  if (plan.clock_skew_ms) {
    Rng skew_rng = c.fork_rng(0x5C1E);
    for (const NodeId id : c.server_ids()) {
      c.probe().set_clock_offset(id, from_ms(skew_rng.normal(0.0, *plan.clock_skew_ms)));
    }
  }

  for (std::size_t kill = 0; kill < plan.kills; ++kill) {
    FailoverSample sample;

    if (!c.await_leader(plan.max_wait)) {
      samples.push_back(sample);  // ok == false
      continue;
    }
    c.sim().run_for(plan.settle);
    const NodeId leader = c.current_leader();
    if (leader == kNoNode) {
      samples.push_back(sample);
      continue;
    }

    // Mean randomizedTimeout across the followers just before the kill
    // (the §IV-B1 telemetry: 1454 ms for Raft vs 152 ms for Dynatune; the
    // leader is excluded — its stale draw never gates failure detection).
    {
      Welford w;
      for (const NodeId id : c.server_ids()) {
        if (id == leader) continue;
        if (auto* n = c.node_if_alive(id); n != nullptr && n->running()) {
          w.add(to_ms(n->randomized_timeout()));
        }
      }
      sample.mean_randomized_ms = w.mean();
    }

    const TimePoint t_kill = c.sim().now();
    if (plan.mode == FaultMode::CrashRestart) {
      c.crash(leader);
    } else {
      c.pause(leader);
    }

    // Advance until a successor emerges.
    const TimePoint deadline = t_kill + plan.max_wait;
    std::optional<cluster::Probe::LeaderEvent> new_leader;
    while (c.sim().now() < deadline) {
      new_leader = c.probe().first_leader_after(t_kill, /*exclude=*/leader);
      if (new_leader) break;
      c.sim().run_for(5ms);
    }

    const auto detection = c.probe().first_timeout_after(t_kill);
    if (new_leader && detection) {
      sample.detection_ms = to_ms(detection->when - t_kill);
      sample.ots_ms = to_ms(new_leader->when - t_kill);
      sample.election_ms = sample.ots_ms - sample.detection_ms;
      sample.ok = true;
    }
    samples.push_back(sample);

    c.sim().run_for(plan.resume_delay);
    if (plan.mode == FaultMode::CrashRestart) {
      c.restart(leader);  // recovers from storage: snapshot + log suffix
    } else {
      c.resume(leader);
    }
  }
  return samples;
}

/// Median follower election timeout in force; -1 when no follower is live.
double follower_et_median_ms(cluster::Cluster& c, NodeId leader) {
  std::vector<double> ets;
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    if (auto* n = c.node_if_alive(id); n != nullptr && n->running()) {
      ets.push_back(to_ms(n->policy().election_timeout()));
    }
  }
  if (ets.empty()) return -1.0;
  const auto mid = ets.begin() + static_cast<std::ptrdiff_t>(ets.size() / 2);
  std::nth_element(ets.begin(), mid, ets.end());
  return *mid;
}

/// The §IV-C1 sampling loop generalized: every `sample_every`, record the
/// link condition in force, the k-th smallest randomizedTimeout, follower Et
/// / leader pace telemetry, CPU (when modeled) and availability.
std::vector<SamplePoint> run_samples(cluster::Cluster& c, const SamplePlan& plan) {
  std::vector<SamplePoint> points;
  const auto total =
      static_cast<std::size_t>(plan.duration.count() / plan.sample_every.count());
  points.reserve(total);
  std::uint64_t last_sent = 0;
  NodeId last_leader = c.current_leader();
  if (last_leader != kNoNode) last_sent = c.network().traffic(last_leader).sent;
  for (std::size_t i = 0; i < total; ++i) {
    c.sim().run_for(plan.sample_every);
    const TimePoint now = c.sim().now();

    SamplePoint p;
    p.t_sec = to_sec(now);
    const net::LinkCondition& cond = c.network().condition(0, 1);
    p.rtt_ms = to_ms(cond.rtt);
    p.loss_pct = cond.loss * 100.0;
    const Duration kth = c.randomized_timeout_kth(plan.kth);
    p.randomized_kth_ms = kth == Duration::max() ? -1.0 : to_ms(kth);
    p.available = cluster::service_available(c);

    const NodeId leader = c.current_leader();
    if (leader != kNoNode) {
      p.et_median_ms = follower_et_median_ms(c, leader);
      double h_sum = 0.0;
      int h_n = 0;
      raft::RaftNode& ln = c.node(leader);
      for (const NodeId id : c.server_ids()) {
        if (id == leader) continue;
        h_sum += to_ms(ln.effective_heartbeat_interval(id));
        ++h_n;
      }
      if (h_n > 0) p.h_mean_ms = h_sum / h_n;

      // The send rate is a delta of the leader's cumulative counter; a
      // leadership change between samples makes the previous baseline another
      // node's counter, so the bin after a change has no rate.
      const std::uint64_t sent = c.network().traffic(leader).sent;
      if (leader == last_leader) {
        p.hb_per_sec = static_cast<double>(sent - last_sent) / to_sec(plan.sample_every);
      }
      last_sent = sent;

      if (c.perf() != nullptr) {
        const NodeId follower = leader == 0 ? 1 : 0;
        p.leader_cpu_pct = c.perf()->cpu_percent_at(leader, now - plan.sample_every);
        p.follower_cpu_pct = c.perf()->cpu_percent_at(follower, now - plan.sample_every);
      }
    }
    last_leader = leader;
    points.push_back(p);
  }
  return points;
}

std::vector<PathSample> record_paths(cluster::Cluster& c, NodeId leader) {
  std::vector<PathSample> paths;
  if (leader == kNoNode) return paths;
  raft::RaftNode& ln = c.node(leader);
  for (const NodeId id : c.server_ids()) {
    if (id == leader) continue;
    PathSample p;
    p.follower = id;
    p.rtt_ms = to_ms(c.network().condition(leader, id).rtt);
    if (auto* n = c.node_if_alive(id); n != nullptr && n->running()) {
      p.et_ms = to_ms(n->policy().election_timeout());
    }
    p.h_ms = to_ms(ln.effective_heartbeat_interval(id));
    paths.push_back(p);
  }
  return paths;
}

/// The per-pair topology layers applied on top of the compiled config (the
/// link-table state Cluster::reset deliberately clears between trials).
void apply_topology(cluster::Cluster& c, const ScenarioSpec& spec) {
  if (spec.topology.wan) {
    DYNA_EXPECTS(spec.topology.wan->size() >= spec.servers);
    spec.topology.wan->apply(c.network());
  }
  for (const auto& o : spec.topology.overrides) {
    c.network().set_link_schedule(o.from, o.to, o.schedule);
  }
}

/// Sharded variant: every group gets its own copy of the spec topology at
/// its node base (overrides are group-local ids).
void apply_topology_sharded(shard::ShardedCluster& sc, const ScenarioSpec& spec) {
  for (std::size_t g = 0; g < sc.shards(); ++g) {
    const NodeId base = sc.shard(g).node_base();
    if (spec.topology.wan) {
      DYNA_EXPECTS(spec.topology.wan->size() >= spec.servers);
      spec.topology.wan->apply(sc.network(), base);
    }
    for (const auto& o : spec.topology.overrides) {
      sc.network().set_link_schedule(base + o.from, base + o.to, o.schedule);
    }
  }
}

// ---- Partition windows ------------------------------------------------------------

/// Symmetrically (un)cut `nodes` from every *other* endpoint registered on
/// the network. Members keep reaching each other, so listing one group's
/// servers isolates the group whole.
void cut_nodes(net::Network& net, const std::vector<NodeId>& nodes, bool blocked) {
  const auto n = static_cast<NodeId>(net.node_count());
  std::vector<char> inside(static_cast<std::size_t>(n), 0);
  for (const NodeId id : nodes) {
    DYNA_EXPECTS(id >= 0 && id < n);
    inside[static_cast<std::size_t>(id)] = 1;
  }
  for (const NodeId a : nodes) {
    for (NodeId b = 0; b < n; ++b) {
      if (inside[static_cast<std::size_t>(b)] != 0) continue;
      net.set_blocked(a, b, blocked);
      net.set_blocked(b, a, blocked);
    }
  }
}

/// Directionally (un)cut `nodes` from every other registered endpoint:
/// inbound blocks traffic *toward* the listed nodes, outbound traffic *from*
/// them. Members keep reaching each other, as in the symmetric case.
void cut_nodes_directed(net::Network& net, const std::vector<NodeId>& nodes, bool inbound,
                        bool outbound, bool blocked) {
  const auto n = static_cast<NodeId>(net.node_count());
  std::vector<char> inside(static_cast<std::size_t>(n), 0);
  for (const NodeId id : nodes) {
    DYNA_EXPECTS(id >= 0 && id < n);
    inside[static_cast<std::size_t>(id)] = 1;
  }
  for (const NodeId a : nodes) {
    for (NodeId b = 0; b < n; ++b) {
      if (inside[static_cast<std::size_t>(b)] != 0) continue;
      if (outbound) net.set_blocked(a, b, blocked);
      if (inbound) net.set_blocked(b, a, blocked);
    }
  }
}

/// Schedule the plan's partition windows (symmetric and directed) relative
/// to now (the measurement start). Endpoints registered after a window
/// begins (e.g. a client built mid-window) are not retroactively cut.
void schedule_partition_windows(sim::Simulator& sim, net::Network& net,
                                const FaultPlan& plan) {
  for (const auto& w : plan.partition_windows) {
    if (w.nodes.empty() || w.duration <= Duration{0}) continue;
    sim.schedule_after(w.start,
                       [&net, nodes = w.nodes] { cut_nodes(net, nodes, true); });
    sim.schedule_after(w.start + w.duration,
                       [&net, nodes = w.nodes] { cut_nodes(net, nodes, false); });
  }
  for (const auto& w : plan.asym_windows) {
    if (w.nodes.empty() || w.duration <= Duration{0}) continue;
    if (!w.block_inbound && !w.block_outbound) continue;
    sim.schedule_after(w.start, [&net, nodes = w.nodes, in = w.block_inbound,
                                 out = w.block_outbound] {
      cut_nodes_directed(net, nodes, in, out, true);
    });
    sim.schedule_after(w.start + w.duration, [&net, nodes = w.nodes, in = w.block_inbound,
                                              out = w.block_outbound] {
      cut_nodes_directed(net, nodes, in, out, false);
    });
  }
}

// ---- Rolling restarts / membership churn ------------------------------------------

/// Staggered crash/restart sweep over the live servers: each round crashes
/// every server in id order, `stagger` apart, each down for `down_time`.
/// Coexists with crash-point injection — both sides' crash/restart guards
/// make the overlapping case (injector fells a server the sweep is about to
/// touch, or vice versa) a deterministic no-op.
void run_rolling_restarts(cluster::Cluster& c, const FaultPlan& plan) {
  const FaultPlan::RollingRestart& r = *plan.rolling;
  for (std::size_t round = 0; round < r.rounds; ++round) {
    for (const NodeId id : c.server_ids()) {
      if (c.node_if_alive(id) != nullptr) c.crash(id);
      c.sim().run_for(r.down_time);
      if (c.node_if_alive(id) == nullptr) c.restart(id);
      c.sim().run_for(r.stagger - r.down_time);
    }
  }
}

/// One churn round: provision a fresh server, join it as a learner, promote
/// it to voter, then remove a non-leader voter and tear it down — net size
/// unchanged, identity rotated. Returns rounds fully completed (a round that
/// cannot commit its config change within max_wait aborts the loop; the
/// invariant audit still runs over whatever membership resulted).
std::size_t run_membership_churn(cluster::Cluster& c, const FaultPlan& plan) {
  const FaultPlan::MembershipChurn& mc = *plan.churn;
  std::size_t completed = 0;
  for (std::size_t round = 0; round < mc.rounds; ++round) {
    if (!c.await_leader(mc.max_wait)) break;

    const NodeId joiner = c.add_server(/*as_learner=*/true);
    const auto add = c.propose_config_change(raft::ConfigChange::AddLearner, joiner);
    if (!add || !c.await_applied(*add, mc.max_wait)) break;
    c.sim().run_for(mc.settle);  // learner catch-up

    const auto promote = c.propose_config_change(raft::ConfigChange::Promote, joiner);
    if (!promote || !c.await_applied(*promote, mc.max_wait)) break;
    c.sim().run_for(mc.settle);

    const NodeId leader = c.current_leader();
    NodeId victim = kNoNode;
    for (const NodeId id : c.server_ids()) {
      if (id != leader && id != joiner) {
        victim = id;
        break;
      }
    }
    if (victim == kNoNode) break;
    const auto remove = c.propose_config_change(raft::ConfigChange::Remove, victim);
    if (!remove || !c.await_applied(*remove, mc.max_wait)) break;
    c.sim().run_for(mc.settle);
    c.finalize_removal(victim);
    ++completed;
  }
  return completed;
}

}  // namespace

std::unique_ptr<cluster::Cluster> ScenarioRunner::materialize(const ScenarioSpec& spec) {
  auto c = std::make_unique<cluster::Cluster>(build_config(spec, spec.servers, spec.seed));
  apply_topology(*c, spec);
  return c;
}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  if (spec.shards > 1) {
    auto sc = materialize_sharded(spec);
    return run_on(*sc, spec);
  }
  auto c = materialize(spec);
  return run_on(*c, spec);
}

std::unique_ptr<shard::ShardedCluster> ScenarioRunner::materialize_sharded(
    const ScenarioSpec& spec) {
  DYNA_EXPECTS(spec.shards >= 1);
  shard::ShardedConfig cfg;
  cfg.shards = spec.shards;
  cfg.partition = spec.partition_mode;
  cfg.group = build_config(spec, spec.servers, spec.seed);
  auto sc = std::make_unique<shard::ShardedCluster>(std::move(cfg));
  apply_topology_sharded(*sc, spec);
  return sc;
}

ScenarioResult ScenarioRunner::run_on(cluster::Cluster& c, const ScenarioSpec& spec) {
  spec.faults.validate(spec.servers);

  ScenarioResult r;
  r.scenario = spec.name;
  r.servers = spec.servers;
  r.seed = spec.seed;
  r.variant = c.config().name;  // factory-supplied configs keep their own name

  r.leader_elected = c.await_leader(spec.await_leader);
  if (!r.leader_elected) {
    r.timer_expiries = c.probe().timeouts().size();
    r.sim_seconds = to_sec(c.sim().now());
    r.invariant_violations = c.audit_invariants();
    r.crash_firings = c.fault_firings();
    return r;
  }
  c.sim().run_for(spec.warmup);

  if (spec.sample_paths) {
    r.paths_leader = c.current_leader();
    r.paths = record_paths(c, r.paths_leader);
  }

  const TimePoint measure_start = c.sim().now();
  schedule_partition_windows(c.sim(), c.network(), spec.faults);

  if (spec.workload.enabled) {
    if (spec.workload.kind == WorkloadPlan::Kind::ClosedLoop) {
      // A fresh stream id: the open-loop streams below must keep their exact
      // fork order so pre-existing reference traces stay byte-identical.
      wl::ClosedLoopPool pool(c, spec.workload.mix, c.fork_rng(0xC10D));
      r.mix.push_back(pool.run());
    } else {
      // Fixed RNG stream ids keep the workload trace a pure function of the
      // cluster seed (and match the pre-scenario-API Fig 5 driver).
      kv::KvClient client(c.sim(), c.network(), c.server_ids(), c.fork_rng(0xC11E47));
      wl::OpenLoopRamp ramp(c, client, spec.workload.ramp, c.fork_rng(0x10AD));
      r.levels = ramp.run();
    }
  }

  if (spec.faults.kills > 0) {
    r.failovers = run_failovers(c, spec.faults);
  }

  if (spec.faults.rolling && spec.faults.rolling->rounds > 0) {
    run_rolling_restarts(c, spec.faults);
  }

  if (spec.faults.churn) {
    r.membership_rounds = run_membership_churn(c, spec.faults);
  }

  if (spec.samples.duration > Duration{0}) {
    r.samples = run_samples(c, spec.samples);
    for (const auto& p : r.samples) {
      if (!p.available) r.ots_seconds += to_sec(spec.samples.sample_every);
    }
  }

  r.elections = c.probe().elections_started_in(measure_start, c.sim().now());
  r.timer_expiries = c.probe().timeouts().size();
  r.sim_seconds = to_sec(c.sim().now());
  r.invariant_violations = c.audit_invariants();
  r.crash_firings = c.fault_firings();
  return r;
}

ScenarioResult ScenarioRunner::run_on(shard::ShardedCluster& sc, const ScenarioSpec& spec) {
  spec.faults.validate(spec.servers);
  if (spec.faults.churn) {
    // Membership churn provisions fresh network endpoints, which a shared
    // substrate's fixed tiled geometry cannot grow mid-trial.
    throw std::runtime_error("ScenarioRunner: membership churn requires shards == 1");
  }

  ScenarioResult r;
  r.scenario = spec.name;
  r.servers = spec.servers;  // per-group size; shards arrive via shard_stats
  r.seed = spec.seed;
  r.variant = sc.shard(0).config().name;

  r.leader_elected = sc.await_all_leaders(spec.await_leader);
  if (!r.leader_elected) {
    for (std::size_t g = 0; g < sc.shards(); ++g) {
      r.timer_expiries += sc.shard(g).probe().timeouts().size();
      r.invariant_violations += sc.shard(g).audit_invariants();
      r.crash_firings += sc.shard(g).fault_firings();
    }
    r.sim_seconds = to_sec(sc.sim().now());
    return r;
  }
  sc.sim().run_for(spec.warmup);

  if (spec.sample_paths) {
    r.paths_leader = sc.shard(0).current_leader();
    r.paths = record_paths(sc.shard(0), r.paths_leader);
  }

  const TimePoint measure_start = sc.sim().now();
  schedule_partition_windows(sc.sim(), sc.network(), spec.faults);

  // One router serves the whole run; the workload publishes discovered
  // leaders into it as it goes.
  shard::ShardRouter router = sc.make_router();
  std::vector<wl::ShardOps> shard_ops(sc.shards());

  if (spec.workload.enabled) {
    if (spec.workload.kind == WorkloadPlan::Kind::ClosedLoop) {
      // Same stream ids as the unsharded path: the trace is a pure function
      // of (config, master seed) either way.
      wl::ClosedLoopPool pool(sc, router, spec.workload.mix, sc.fork_rng(0xC10D));
      r.mix.push_back(pool.run());
      shard_ops = pool.per_shard();
    } else {
      shard::ShardedKvClient client(sc, router, sc.fork_rng(0xC11E47));
      wl::OpenLoopRamp ramp(sc, client, spec.workload.ramp, sc.fork_rng(0x10AD));
      r.levels = ramp.run();
      for (std::size_t g = 0; g < sc.shards(); ++g) {
        shard_ops[g].completed = client.client(g).completed();
        shard_ops[g].failed = client.client(g).failed();
      }
    }
  }

  if (spec.faults.kills > 0) {
    // Kills round-robin across groups: kill k lands on group k % shards, so
    // every group's failover path gets exercised and the sample count still
    // matches the plan.
    FaultPlan one = spec.faults;
    one.kills = 1;
    for (std::size_t k = 0; k < spec.faults.kills; ++k) {
      const auto samples = run_failovers(sc.shard(k % sc.shards()), one);
      r.failovers.insert(r.failovers.end(), samples.begin(), samples.end());
    }
  }

  if (spec.faults.rolling && spec.faults.rolling->rounds > 0) {
    // Group g's sweep advances the one shared simulator, so groups take
    // their rolling rounds in sequence — every group still sees the full
    // schedule against live traffic from the others.
    for (std::size_t g = 0; g < sc.shards(); ++g) {
      run_rolling_restarts(sc.shard(g), spec.faults);
    }
  }

  if (spec.samples.duration > Duration{0}) {
    // Timeline telemetry reads group 0 (its link (base, base+1), its leader
    // pace); availability in the samples is also group 0's — per-group
    // health lands in shard_stats below.
    r.samples = run_samples(sc.shard(0), spec.samples);
    for (const auto& p : r.samples) {
      if (!p.available) r.ots_seconds += to_sec(spec.samples.sample_every);
    }
  }

  const TimePoint now = sc.sim().now();
  const double window_sec = to_sec(now - measure_start);
  for (std::size_t g = 0; g < sc.shards(); ++g) {
    cluster::Cluster& c = sc.shard(g);
    ShardSample s;
    s.shard = g;
    s.servers = spec.servers;
    s.leader_elected = c.current_leader() != kNoNode;
    s.completed = shard_ops[g].completed;
    s.failed = shard_ops[g].failed;
    if (window_sec > 0.0) s.achieved_rps = static_cast<double>(s.completed) / window_sec;
    s.elections = c.probe().elections_started_in(measure_start, now);
    s.timer_expiries = c.probe().timeouts().size();
    for (const NodeId id : c.server_ids()) {
      if (auto* n = c.node_if_alive(id); n != nullptr) {
        s.applied = std::max(s.applied, static_cast<std::uint64_t>(n->last_applied()));
      }
    }
    r.shard_stats.push_back(s);
    r.elections += s.elections;
    r.timer_expiries += s.timer_expiries;
    r.invariant_violations += c.audit_invariants();
    r.crash_firings += c.fault_firings();
  }
  r.sim_seconds = to_sec(now);
  return r;
}

std::uint64_t ScenarioRunner::sweep_seed(const SweepSpec& sweep, std::size_t seed_index) {
  const std::uint64_t master = sweep.master_seed != 0 ? sweep.master_seed : sweep.base.seed;
  return derive_seed(master, seed_index);
}

namespace {

/// One (variant-or-policy, size) cell of a sweep's cross product.
struct SweepCell {
  Variant variant = Variant::Raft;
  std::string policy;  ///< non-empty => PolicyRegistry cell
  std::size_t servers = 0;
};

/// The sweep's enumeration, flattened: trial i belongs to cell i / seeds at
/// seed index i % seeds. No per-trial ScenarioSpec copies — the old path
/// materialized the whole cross product as a spec vector up front, which at
/// 10k trials was 10k allocation-heavy copies of the base spec.
struct SweepPlan {
  std::vector<SweepCell> cells;  ///< variant-major, then size
  std::size_t seeds = 1;
  std::uint64_t master = 0;
  unsigned threads = 1;

  [[nodiscard]] std::size_t total() const noexcept { return cells.size() * seeds; }
};

SweepPlan plan_sweep(const SweepSpec& sweep) {
  SweepPlan plan;
  const std::vector<std::size_t> sizes =
      sweep.sizes.empty() ? std::vector<std::size_t>{sweep.base.servers} : sweep.sizes;

  std::vector<SweepCell> axis;
  for (const Variant v : sweep.variants) axis.push_back({v, {}, 0});
  for (const std::string& p : sweep.policies) axis.push_back({sweep.base.variant, p, 0});
  if (axis.empty()) axis.push_back({sweep.base.variant, sweep.base.policy, 0});

  plan.cells.reserve(axis.size() * sizes.size());
  for (const SweepCell& sel : axis) {
    for (const std::size_t n : sizes) {
      plan.cells.push_back({sel.variant, sel.policy, n});
    }
  }
  plan.seeds = std::max<std::size_t>(1, sweep.seeds);
  plan.master = sweep.master_seed != 0 ? sweep.master_seed : sweep.base.seed;
  plan.threads = sweep.threads != 0 ? sweep.threads : std::thread::hardware_concurrency();
  if (plan.threads == 0) plan.threads = 1;
  return plan;
}

/// Worker-local trial execution: every worker owns one spec value and one
/// simulation substrate, rebuilt only at cell boundaries and reset-in-place
/// between same-cell trials. The reset contract makes this invisible in the
/// results (tests/test_trial_reuse.cpp); reuse_substrate=false falls back to
/// one fresh Cluster per trial for exactly that comparison.
class SweepExecutor {
 public:
  SweepExecutor(const SweepSpec& sweep, const SweepPlan& plan)
      : sweep_(&sweep), plan_(&plan), slots_(plan.threads) {}

  [[nodiscard]] ScenarioResult run_trial(std::size_t index) {
    const int wid = par::ThreadPool::current_worker();
    DYNA_ASSERT(wid >= 0 && static_cast<std::size_t>(wid) < slots_.size());
    Slot& slot = slots_[static_cast<std::size_t>(wid)];

    const std::size_t cell_index = index / plan_->seeds;
    const SweepCell& cell = plan_->cells[cell_index];
    const std::uint64_t seed = derive_seed(plan_->master, index % plan_->seeds);

    const bool new_cell = slot.cell != cell_index;
    if (new_cell || sweep_->mutate != nullptr) {
      // With a mutate hook the spec must be rebuilt from base every trial —
      // mutations would otherwise accumulate across a worker's trial run.
      slot.spec = sweep_->base;
      slot.spec.variant = cell.variant;
      slot.spec.policy = cell.policy;
      slot.spec.servers = cell.servers;
      slot.cell = cell_index;
    }
    slot.spec.seed = seed;
    if (sweep_->mutate) sweep_->mutate(slot.spec, index, seed);

    if (!sweep_->reuse_substrate) {
      slot.cluster.reset();
      slot.sharded.reset();
      return ScenarioRunner::run(slot.spec);
    }
    // The seed-only fast path may skip recompiling the config ONLY when
    // the config is a pure function of (variant, size): a config_factory
    // or registry policy receives the trial seed and may legitimately
    // vary with it, so those recompile (and rebuild nodes) every trial.
    const bool seed_dependent_config = slot.spec.config_factory != nullptr ||
                                       !slot.spec.policy.empty() ||
                                       sweep_->mutate != nullptr;
    if (slot.spec.shards > 1) {
      if (slot.sharded == nullptr) {
        slot.sharded = ScenarioRunner::materialize_sharded(slot.spec);
      } else {
        if (new_cell || seed_dependent_config) {
          shard::ShardedConfig cfg;
          cfg.shards = slot.spec.shards;
          cfg.partition = slot.spec.partition_mode;
          cfg.group = build_config(slot.spec, slot.spec.servers, seed);
          slot.sharded->reset(std::move(cfg));
        } else {
          slot.sharded->reset(seed);
        }
        apply_topology_sharded(*slot.sharded, slot.spec);
      }
      return ScenarioRunner::run_on(*slot.sharded, slot.spec);
    }
    if (slot.cluster == nullptr) {
      slot.cluster = ScenarioRunner::materialize(slot.spec);
    } else {
      if (new_cell || seed_dependent_config) {
        slot.cluster->reset(build_config(slot.spec, slot.spec.servers, seed));
      } else {
        slot.cluster->reset(seed);
      }
      apply_topology(*slot.cluster, slot.spec);
    }
    return ScenarioRunner::run_on(*slot.cluster, slot.spec);
  }

 private:
  struct Slot {
    std::size_t cell = static_cast<std::size_t>(-1);
    ScenarioSpec spec;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<shard::ShardedCluster> sharded;
  };

  const SweepSpec* sweep_;
  const SweepPlan* plan_;
  std::vector<Slot> slots_;
};

}  // namespace

std::vector<ScenarioResult> ScenarioRunner::run_sweep(const SweepSpec& sweep) {
  const SweepPlan plan = plan_sweep(sweep);
  SweepExecutor exec(sweep, plan);
  return par::run_trials<ScenarioResult>(
      plan.total(), plan.master,
      [&exec](std::size_t i, std::uint64_t /*derived*/) { return exec.run_trial(i); },
      plan.threads);
}

void ScenarioRunner::run_sweep(const SweepSpec& sweep, ResultSink& sink) {
  const SweepPlan plan = plan_sweep(sweep);
  SweepExecutor exec(sweep, plan);

  // In-order streaming: whichever worker completes the next-in-order trial
  // drains it (plus any buffered successors) into the sink. Workers ascend
  // their contiguous block runs, so the reorder window stays a few blocks
  // deep regardless of sweep size.
  std::mutex mu;
  std::map<std::size_t, ScenarioResult> window;
  std::size_t next = 0;

  par::for_trials(
      plan.total(), plan.master,
      [&](std::size_t i, std::uint64_t /*derived*/) {
        ScenarioResult r = exec.run_trial(i);
        std::lock_guard lock(mu);
        if (i != next) {
          window.emplace(i, std::move(r));
          return;
        }
        sink.consume(r);
        ++next;
        while (!window.empty() && window.begin()->first == next) {
          sink.consume(window.begin()->second);
          window.erase(window.begin());
          ++next;
        }
      },
      plan.threads);
  DYNA_ASSERT(window.empty());
}

}  // namespace dyna::scenario
