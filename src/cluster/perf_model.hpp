// CPU cost model: turns message traffic into per-node busy time and CPU%.
//
// We cannot reproduce the Go runtime's absolute per-message cost, so the
// constants below are calibrated once against two anchors from the paper —
// baseline peak throughput ~13.7 k req/s (Fig 5) and the Fix-K N=65 leader
// saturating one core (Fig 7b) — and then held fixed across every variant,
// so relative comparisons (Dynatune vs Fix-K vs Raft) remain meaningful.
// CPU% follows `docker stats` semantics: 100% == one fully busy core, and a
// 2-core container tops out at 200% (the paper's Fig 7b axis).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "metrics/timeseries.hpp"
#include "raft/observer.hpp"

namespace dyna::cluster {

using namespace std::chrono_literals;

struct CostModel {
  // Heartbeat path (dominates the Fig 7 experiments): marshalling, socket
  // syscall, raft-loop dispatch.
  Duration heartbeat_send = 200us;
  Duration heartbeat_recv = 80us;
  Duration heartbeat_resp_send = 80us;
  Duration heartbeat_resp_recv = 150us;
  // Replication path.
  Duration append_send = 60us;
  Duration append_recv = 80us;
  Duration append_resp_send = 30us;
  Duration append_resp_recv = 40us;
  // Election path (rare; negligible in steady state).
  Duration vote_send = 50us;
  Duration vote_recv = 50us;
  // Client path.
  Duration client_recv = 25us;
  Duration client_resp_send = 20us;
  // Per-byte handling cost (payload marshalling / copying).
  Duration per_byte = 8ns;
  // Dynatune's follower-side estimator update + retuning per heartbeat
  // (charged only when `charge_tuning` is set — Dynatune/Fix-K variants).
  Duration tuning_per_heartbeat = 25us;

  bool charge_tuning = false;
};

class PerfModel final : public raft::Observer {
 public:
  explicit PerfModel(CostModel cost, Duration bin = 5s, std::size_t max_nodes = 128)
      : cost_(cost), bin_(bin), busy_(max_nodes) {
    DYNA_EXPECTS(bin > Duration{0});
  }

  void on_message_sent(NodeId from, NodeId /*to*/, raft::MsgKind kind, std::size_t bytes,
                       TimePoint when) override {
    charge(from, send_cost(kind, bytes), when);
  }

  void on_message_received(NodeId node, NodeId /*from*/, raft::MsgKind kind, std::size_t bytes,
                           TimePoint when) override {
    charge(node, recv_cost(kind, bytes), when);
  }

  /// CPU percentage for `node` in the bin containing time `t`
  /// (100 == one core fully busy).
  [[nodiscard]] double cpu_percent_at(NodeId node, TimePoint t) const {
    const auto& bins = busy_[static_cast<std::size_t>(node)];
    const std::size_t idx = bin_index(t);
    if (idx >= bins.size()) return 0.0;
    return 100.0 * to_sec(bins[idx]) / to_sec(bin_);
  }

  /// Full CPU% time series for a node (one point per bin midpoint).
  [[nodiscard]] metrics::TimeSeries cpu_series(NodeId node, const std::string& name) const {
    metrics::TimeSeries series(name);
    const auto& bins = busy_[static_cast<std::size_t>(node)];
    for (std::size_t i = 0; i < bins.size(); ++i) {
      const double mid = (static_cast<double>(i) + 0.5) * to_sec(bin_);
      series.push_sec(mid, 100.0 * to_sec(bins[i]) / to_sec(bin_));
    }
    return series;
  }

  [[nodiscard]] Duration total_busy(NodeId node) const {
    Duration total{0};
    for (const Duration d : busy_[static_cast<std::size_t>(node)]) total += d;
    return total;
  }

  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }

 private:
  [[nodiscard]] std::size_t bin_index(TimePoint t) const {
    return static_cast<std::size_t>(t.time_since_epoch().count() / bin_.count());
  }

  void charge(NodeId node, Duration cost, TimePoint when) {
    auto& bins = busy_[static_cast<std::size_t>(node)];
    const std::size_t idx = bin_index(when);
    if (bins.size() <= idx) bins.resize(idx + 1, Duration{0});
    bins[idx] += cost;
  }

  [[nodiscard]] Duration send_cost(raft::MsgKind kind, std::size_t bytes) const {
    const Duration byte_cost = cost_.per_byte * static_cast<std::int64_t>(bytes);
    switch (kind) {
      case raft::MsgKind::Heartbeat: return cost_.heartbeat_send + byte_cost;
      case raft::MsgKind::HeartbeatResponse: return cost_.heartbeat_resp_send + byte_cost;
      case raft::MsgKind::Append: return cost_.append_send + byte_cost;
      case raft::MsgKind::AppendResponse: return cost_.append_resp_send + byte_cost;
      case raft::MsgKind::PreVote:
      case raft::MsgKind::Vote: return cost_.vote_send + byte_cost;
      case raft::MsgKind::PreVoteResponse:
      case raft::MsgKind::VoteResponse: return cost_.vote_send + byte_cost;
      // Snapshot transfer cost is dominated by the blob, i.e. the per-byte
      // term; the fixed part is billed like a (bulk) append.
      case raft::MsgKind::InstallSnapshot: return cost_.append_send + byte_cost;
      case raft::MsgKind::InstallSnapshotResponse: return cost_.append_resp_send + byte_cost;
      case raft::MsgKind::Client: return cost_.client_recv + byte_cost;
      case raft::MsgKind::ClientResponse: return cost_.client_resp_send + byte_cost;
    }
    return byte_cost;
  }

  [[nodiscard]] Duration recv_cost(raft::MsgKind kind, std::size_t bytes) const {
    const Duration byte_cost = cost_.per_byte * static_cast<std::int64_t>(bytes);
    switch (kind) {
      case raft::MsgKind::Heartbeat: {
        Duration c = cost_.heartbeat_recv + byte_cost;
        if (cost_.charge_tuning) c += cost_.tuning_per_heartbeat;  // follower-side retune
        return c;
      }
      case raft::MsgKind::HeartbeatResponse: return cost_.heartbeat_resp_recv + byte_cost;
      case raft::MsgKind::Append: return cost_.append_recv + byte_cost;
      case raft::MsgKind::AppendResponse: return cost_.append_resp_recv + byte_cost;
      case raft::MsgKind::PreVote:
      case raft::MsgKind::Vote: return cost_.vote_recv + byte_cost;
      case raft::MsgKind::PreVoteResponse:
      case raft::MsgKind::VoteResponse: return cost_.vote_recv + byte_cost;
      case raft::MsgKind::InstallSnapshot: return cost_.append_recv + byte_cost;
      case raft::MsgKind::InstallSnapshotResponse: return cost_.append_resp_recv + byte_cost;
      case raft::MsgKind::Client: return cost_.client_recv + byte_cost;
      case raft::MsgKind::ClientResponse: return cost_.client_resp_send + byte_cost;
    }
    return byte_cost;
  }

  CostModel cost_;
  Duration bin_;
  std::vector<std::vector<Duration>> busy_;  // [node][bin] accumulated work
};

}  // namespace dyna::cluster
