// Experiment drivers shared by benches, tests and examples.
//
// FailoverExperiment reproduces the paper's §IV-B1 procedure: repeatedly
// freeze the leader ("container sleep"), read detection / OTS instants from
// the probe's event stream, revive, repeat. The RTT-fluctuation timeline
// reproduces §IV-C1's per-second sampling of the f+1-smallest
// randomizedTimeout and the OTS shading.
#pragma once

#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"

namespace dyna::cluster {

struct FailoverSample {
  double detection_ms = 0.0;        ///< kill -> first election-timer expiry
  double ots_ms = 0.0;              ///< kill -> new leader established
  double election_ms = 0.0;         ///< ots - detection
  double mean_randomized_ms = 0.0;  ///< mean randomizedTimeout across servers at kill
  bool ok = false;
};

struct FailoverOptions {
  std::size_t kills = 50;
  /// Stabilization time before each kill (lets Dynatune warm up / retune).
  Duration settle = std::chrono::seconds(10);
  /// Give-up horizon per kill.
  Duration max_wait = std::chrono::seconds(60);
  /// Old leader revives this long after the new leader appears.
  Duration resume_delay = std::chrono::seconds(2);
  /// Per-node clock offset stddev (ms) applied to probe timestamps — models
  /// the NTP error of the multi-machine AWS experiment. nullopt = one clock.
  std::optional<double> clock_skew_ms;
};

class FailoverExperiment {
 public:
  /// Run `opt.kills` sequential leader kills on the cluster.
  [[nodiscard]] static std::vector<FailoverSample> run(Cluster& cluster, FailoverOptions opt);
};

// ---- Fluctuation timeline (Fig 6) -------------------------------------------------

struct TimelinePoint {
  double t_sec = 0.0;
  double randomized_kth_ms = 0.0;  ///< k-th smallest randomizedTimeout
  double rtt_ms = 0.0;             ///< link RTT in force at sample time
  bool ots = false;                ///< no functioning leader at sample time
};

struct TimelineOptions {
  Duration duration = std::chrono::seconds(120);
  Duration sample_every = std::chrono::seconds(1);
  std::size_t kth = 3;  ///< f+1 for n=5 (the pre-vote majority threshold)
};

/// True when some live node leads at the cluster's maximum term — i.e. the
/// service can commit. The complement is the paper's OTS shading.
[[nodiscard]] bool service_available(Cluster& cluster);

[[nodiscard]] std::vector<TimelinePoint> run_randomized_timeline(Cluster& cluster,
                                                                 TimelineOptions opt);

}  // namespace dyna::cluster
