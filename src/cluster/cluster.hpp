// Cluster harness: builds an N-server replicated KV service over the
// simulated network, wires probes/perf models, and exposes fault injection.
//
// One Cluster == one running deployment inside one Simulator. The three
// paper variants are constructed through the named factories at the bottom.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/perf_model.hpp"
#include "cluster/probe.hpp"
#include "cluster/service_queue.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dynatune/config.hpp"
#include "fault/injector.hpp"
#include "kvstore/state_machine.hpp"
#include "net/network.hpp"
#include "raft/config.hpp"
#include "raft/invariant_checker.hpp"
#include "raft/node.hpp"
#include "sim/simulator.hpp"

namespace dyna::cluster {

struct ClusterConfig {
  std::size_t servers = 5;
  std::uint64_t seed = 42;

  raft::RaftConfig raft = raft::RaftConfig::etcd_default();

  /// Election policy per node; defaults to StaticPolicy(raft.election_timeout,
  /// raft.heartbeat_interval). Dynatune variants install DynatunePolicy here.
  std::function<std::unique_ptr<raft::ElectionPolicy>(NodeId)> policy_factory;

  /// Default link schedule applied to every pair (fluctuation experiments
  /// replace this); per-pair overrides go through network() after build.
  net::ConditionSchedule links =
      net::ConditionSchedule::constant(net::LinkCondition{});

  /// Transport/stall knobs (retransmit model, CPU-contention stalls).
  net::Network::Config transport{};

  /// When > 0, client requests pass through a per-server FIFO CPU with this
  /// service time before reaching Raft (throughput experiments).
  Duration request_service_time{0};

  /// Batch-aware CPU cost split (grouped model): serving a round of k
  /// coalesced client commands costs round_service_time +
  /// k·command_service_time. Active once either is > 0 (and then takes the
  /// client-request path over the flat request_service_time model). The
  /// round size cap and whether commands coalesce at all mirror the raft
  /// group-commit knobs (raft.max_batch_commands / raft.group_commit), so
  /// the CPU model and the consensus batching tell one story.
  Duration round_service_time{0};
  Duration command_service_time{0};

  [[nodiscard]] bool grouped_service() const noexcept {
    return round_service_time > Duration{0} || command_service_time > Duration{0};
  }

  /// Use durable per-server log storage (required for crash/restart tests).
  /// Throughput benchmarks disable it to halve memory use.
  bool durable_log = true;

  /// CPU accounting (Fig 7b); disabled by default to keep hot paths lean.
  std::optional<CostModel> perf_cost;
  Duration perf_bin = std::chrono::seconds(5);

  /// Probabilistic crash points (src/fault/). When set, every server gets a
  /// per-trial Injector seeded from (seed, slot) and a crashed node is
  /// rebuilt from storage after `fault->restart_delay`. Requires
  /// durable_log. Off by default — the hot paths stay branch-free.
  std::optional<fault::InjectorConfig> fault;

  /// Additional observers attached to every node (and re-attached across
  /// restarts). Non-owning; must outlive the cluster.
  std::vector<raft::Observer*> observers;

  std::string name = "cluster";

  // ---- Shared-substrate mode (sharded multi-raft, src/shard/) ----
  /// When set, this cluster is one consensus group multiplexed onto an
  /// externally owned Simulator/Network instead of building its own; its
  /// servers occupy network node ids [node_base, node_base + servers). The
  /// owner (shard::ShardedCluster) holds the network's rng/default schedule
  /// and drives the per-trial substrate reset via the reset_begin/
  /// reset_finish protocol below; this cluster only builds and resets its
  /// own nodes. Both pointers are fixed at construction — a later
  /// reset(config) must carry the same wiring.
  sim::Simulator* shared_sim = nullptr;
  net::Network* shared_net = nullptr;
  NodeId node_base = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Rebuild-in-place for a new trial: observationally identical to
  /// destroying this cluster and constructing a fresh one from `config`, but
  /// reusing the warmed allocations — the simulator's event containers, the
  /// network's n*n link table / in-flight arena / handler closures, the
  /// per-server storage buffers and service queues. Node objects are rebuilt
  /// (a trial starts from a cold deployment), everything beneath them is
  /// reset, not reallocated. Fresh-construction equivalence is the reset
  /// contract pinned by tests/test_trial_reuse.cpp; external observers in
  /// `config.observers` see consecutive trials and must cope on their own.
  void reset(ClusterConfig config);

  /// Seed-only fast path: identical to reset(config) where only
  /// `config.seed` differs from the current one. Skips re-copying the link
  /// schedule / transport config into the network (one allocation-heavy copy
  /// per trial on a 10k-trial sweep).
  void reset(std::uint64_t seed);

  /// Shared-substrate reset protocol (shard::ShardedCluster). reset() is
  /// exactly reset_begin + substrate reset + reset_finish; the split exists
  /// so an owner multiplexing k groups onto one Simulator/Network can call
  /// begin on every group, reset the shared substrate once, then finish
  /// every group. Phase order is load-bearing: reset_begin tears down node
  /// objects against the *old* simulator state (their timer destructors must
  /// not run after the simulator reset — a stale (slot, generation) could
  /// alias a fresh event), and reset_finish rebuilds them against the fresh
  /// one. In shared mode node_base/servers must not change across an
  /// in-place reset (network handlers capture the id→group mapping); a
  /// geometry change requires rebuilding the owner's Network outright.
  void reset_begin(ClusterConfig config);
  void reset_begin(std::uint64_t seed);
  void reset_finish();

  // ---- Accessors ----
  [[nodiscard]] sim::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *net_; }
  /// First network node id of this cluster's servers (0 unless this is a
  /// shared-substrate group).
  [[nodiscard]] NodeId node_base() const noexcept { return cfg_.node_base; }
  [[nodiscard]] Probe& probe() noexcept { return probe_; }
  [[nodiscard]] PerfModel* perf() noexcept { return perf_.get(); }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t size() const noexcept { return cfg_.servers; }
  [[nodiscard]] std::vector<NodeId> server_ids() const;

  /// The node object (must currently exist — i.e. not crashed).
  [[nodiscard]] raft::RaftNode& node(NodeId id);
  [[nodiscard]] raft::RaftNode* node_if_alive(NodeId id);
  [[nodiscard]] kv::KvStateMachine& state_machine(NodeId id);
  [[nodiscard]] ServiceQueue& service_queue(NodeId id);

  /// Highest-term live leader, or kNoNode.
  [[nodiscard]] NodeId current_leader() const;

  /// Advance simulation until a leader exists (true) or `timeout` elapses.
  bool await_leader(Duration timeout);

  /// k-th smallest current randomizedTimeout across servers (1-based k).
  /// Crashed/paused servers count as +infinity. This is Fig 6's metric.
  [[nodiscard]] Duration randomized_timeout_kth(std::size_t k) const;

  // ---- Fault injection ----
  void pause(NodeId id);    ///< freeze node + its network endpoint
  void resume(NodeId id);
  void crash(NodeId id);    ///< lose volatile state; storage survives
  /// Rebuild node + state machine from storage (snapshot + log suffix).
  /// Throws std::runtime_error if the node's storage discards the log
  /// (durable_log=false) — restarting it would lose committed entries.
  void restart(NodeId id);

  // ---- Dynamic membership (single-server changes) ----
  /// Provision a fresh server (storage, state machine, network endpoint) and
  /// start it as a learner (default) or direct voter candidate. Returns the
  /// new server's id. The server only *joins* once a leader commits the
  /// matching AddLearner/AddVoter config entry (propose_config_change).
  /// Requires an owned substrate and durable_log.
  NodeId add_server(bool as_learner = true);

  /// Tear down a server whose Remove entry has committed: the node object is
  /// destroyed and its slot tombstoned for the rest of the trial (a trial
  /// reset restores the founding roster).
  void finalize_removal(NodeId id);

  /// Propose a membership change through the current leader. Returns the log
  /// index of the config entry, or nullopt when there is no leader or a
  /// change is already in flight.
  std::optional<raft::LogIndex> propose_config_change(raft::ConfigChange kind, NodeId target);

  /// Advance simulation until the current leader has applied `index` (true)
  /// or `timeout` elapses.
  bool await_applied(raft::LogIndex index, Duration timeout);

  // ---- Safety invariants / fault engine ----
  /// The always-on invariant checker attached to every node of every trial.
  [[nodiscard]] raft::InvariantChecker& checker() noexcept { return checker_; }

  /// End-of-trial deep audit: every live log entry vs the commit table,
  /// leader completeness, applied-prefix equality. Returns the checker's
  /// total violation count (streaming + audit).
  std::uint64_t audit_invariants();

  /// Per-server crash-point injector (nullptr when fault injection is off).
  [[nodiscard]] fault::Injector* injector(NodeId id);

  /// Total crash-point firings across all servers this trial.
  [[nodiscard]] std::uint64_t fault_firings() const;

  /// Fork an independent RNG stream for drivers built on this cluster.
  [[nodiscard]] Rng fork_rng(std::uint64_t stream) {
    return Rng(derive_seed(cfg_.seed, 0xC0FFEE ^ stream));
  }

 private:
  void build_node(NodeId id, bool as_learner = false);
  void teardown_nodes();
  void reset_substrate();
  void arm_injector(std::size_t idx);
  [[nodiscard]] bool owns_substrate() const noexcept { return owned_sim_ != nullptr; }
  [[nodiscard]] std::size_t index_of(NodeId id) const;
  [[nodiscard]] Duration service_time_for(NodeId id) const;
  [[nodiscard]] GroupCostModel group_model() const;

  ClusterConfig cfg_;
  // Owned in the classic single-group case, borrowed from the owner in
  // shared-substrate mode; sim_/net_ are always the live handles.
  std::unique_ptr<sim::Simulator> owned_sim_;
  std::unique_ptr<net::Network> owned_net_;
  sim::Simulator* sim_ = nullptr;
  net::Network* net_ = nullptr;
  bool pending_reconfigure_ = false;  ///< set by reset_begin, read by reset_finish
  Probe probe_;
  raft::InvariantChecker checker_;
  std::unique_ptr<PerfModel> perf_;
  std::vector<std::shared_ptr<raft::Storage>> storages_;
  std::vector<std::unique_ptr<kv::KvStateMachine>> state_machines_;
  std::vector<std::unique_ptr<raft::RaftNode>> nodes_;
  std::vector<std::unique_ptr<ServiceQueue>> service_;
  /// Server id per slot, kNoNode once removed. Slots are never erased — the
  /// network handler closures capture slot indices — only tombstoned; a
  /// trial reset restores the founding roster [node_base, node_base+servers).
  std::vector<NodeId> roster_;
  /// Per-slot crash-point injectors (empty unless cfg_.fault). Armed once
  /// per trial so max_fires survives mid-trial crash/restart cycles.
  std::vector<std::unique_ptr<fault::Injector>> injectors_;
};

/// True when some live node leads at the cluster's maximum term — i.e. the
/// service can commit. The complement is the paper's OTS shading.
[[nodiscard]] bool service_available(Cluster& cluster);

// ---- Variant factories (paper §IV-A settings) -----------------------------------

/// Baseline "Raft": etcd defaults (Et 1000 ms, h 100 ms), static policy.
[[nodiscard]] ClusterConfig make_raft_config(std::size_t servers, std::uint64_t seed);

/// "Raft-Low": parameters at 1/10 of the defaults.
[[nodiscard]] ClusterConfig make_raft_low_config(std::size_t servers, std::uint64_t seed);

/// "Dynatune": measurement + per-path tuning with the given knobs.
[[nodiscard]] ClusterConfig make_dynatune_config(std::size_t servers, std::uint64_t seed,
                                                 dt::DynatuneConfig dt = {});

/// "Fix-K": Dynatune with h-tuning disabled, K pinned (paper: 10).
[[nodiscard]] ClusterConfig make_fixk_config(std::size_t servers, std::uint64_t seed,
                                             int k = 10, dt::DynatuneConfig dt = {});

}  // namespace dyna::cluster
