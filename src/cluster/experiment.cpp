#include "cluster/experiment.hpp"

#include "common/stats.hpp"

namespace dyna::cluster {

using namespace std::chrono_literals;

std::vector<FailoverSample> FailoverExperiment::run(Cluster& cluster, FailoverOptions opt) {
  std::vector<FailoverSample> samples;
  samples.reserve(opt.kills);

  // Multi-machine measurement noise (AWS experiment): each server's log
  // timestamps carry a fixed NTP offset.
  if (opt.clock_skew_ms) {
    Rng skew_rng = cluster.fork_rng(0x5C1E);
    for (const NodeId id : cluster.server_ids()) {
      cluster.probe().set_clock_offset(id, from_ms(skew_rng.normal(0.0, *opt.clock_skew_ms)));
    }
  }

  for (std::size_t kill = 0; kill < opt.kills; ++kill) {
    FailoverSample sample;

    if (!cluster.await_leader(opt.max_wait)) {
      samples.push_back(sample);  // ok == false
      continue;
    }
    cluster.sim().run_for(opt.settle);
    const NodeId leader = cluster.current_leader();
    if (leader == kNoNode) {
      samples.push_back(sample);
      continue;
    }

    // Mean randomizedTimeout across the followers just before the kill
    // (the §IV-B1 telemetry: 1454 ms for Raft vs 152 ms for Dynatune; the
    // leader is excluded — its stale draw never gates failure detection).
    {
      Welford w;
      for (const NodeId id : cluster.server_ids()) {
        if (id == leader) continue;
        if (auto* n = cluster.node_if_alive(id); n != nullptr && n->running()) {
          w.add(to_ms(n->randomized_timeout()));
        }
      }
      sample.mean_randomized_ms = w.mean();
    }

    const TimePoint t_kill = cluster.sim().now();
    cluster.pause(leader);

    // Advance until a successor emerges.
    const TimePoint deadline = t_kill + opt.max_wait;
    std::optional<Probe::LeaderEvent> new_leader;
    while (cluster.sim().now() < deadline) {
      new_leader = cluster.probe().first_leader_after(t_kill, /*exclude=*/leader);
      if (new_leader) break;
      cluster.sim().run_for(5ms);
    }

    const auto detection = cluster.probe().first_timeout_after(t_kill);
    if (new_leader && detection) {
      sample.detection_ms = to_ms(detection->when - t_kill);
      sample.ots_ms = to_ms(new_leader->when - t_kill);
      sample.election_ms = sample.ots_ms - sample.detection_ms;
      sample.ok = true;
    }
    samples.push_back(sample);

    cluster.sim().run_for(opt.resume_delay);
    cluster.resume(leader);
  }
  return samples;
}

bool service_available(Cluster& cluster) {
  raft::Term max_term = 0;
  for (const NodeId id : cluster.server_ids()) {
    if (auto* n = cluster.node_if_alive(id); n != nullptr && n->running()) {
      max_term = std::max(max_term, n->term());
    }
  }
  for (const NodeId id : cluster.server_ids()) {
    if (auto* n = cluster.node_if_alive(id);
        n != nullptr && n->running() && n->is_leader() && n->term() == max_term) {
      return true;
    }
  }
  return false;
}

std::vector<TimelinePoint> run_randomized_timeline(Cluster& cluster, TimelineOptions opt) {
  std::vector<TimelinePoint> points;
  const auto total = static_cast<std::size_t>(opt.duration.count() / opt.sample_every.count());
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    cluster.sim().run_for(opt.sample_every);
    TimelinePoint p;
    p.t_sec = to_sec(cluster.sim().now());
    const Duration kth = cluster.randomized_timeout_kth(opt.kth);
    p.randomized_kth_ms = kth == Duration::max() ? -1.0 : to_ms(kth);
    p.rtt_ms = to_ms(cluster.network().condition(0, 1).rtt);
    p.ots = !service_available(cluster);
    points.push_back(p);
  }
  return points;
}

}  // namespace dyna::cluster
