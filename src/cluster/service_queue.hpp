// Analytic FIFO CPU server for the client-request path (Fig 5's saturation
// mechanism).
//
// The leader's request pipeline is modelled as a single FIFO server: each
// admitted request occupies the server for its service time; completion
// callbacks fire in order at the computed finish instants. Open-loop load
// beyond 1/service_time therefore builds a genuine backlog, which is what
// bends the latency curve and pins peak throughput.
//
// Two cost models share the server:
//   * flat       — enqueue(service_time, done): one job, one occupancy.
//   * grouped    — enqueue_command(done): a *round* of up to max_commands
//                  coalesced commands costs per_round + k·per_command. This
//                  is what makes group commit genuinely pay: the fixed
//                  per-round cost (request parsing epilogue, log append,
//                  replication bookkeeping) amortizes across the batch,
//                  so saturated peak moves from 1/(R+C) toward 1/C.
//                  With coalesce=false every command is its own round —
//                  the honest unbatched baseline under the same cost split.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace dyna::cluster {

/// Cost split for the grouped model. Active once either duration is > 0.
struct GroupCostModel {
  Duration per_round{0};       ///< fixed cost paid once per serving round
  Duration per_command{0};     ///< marginal cost per coalesced command
  std::size_t max_commands = 64;  ///< round size cap (mirror of max_batch_commands)
  bool coalesce = true;        ///< false: every command is its own round
};

class ServiceQueue {
 public:
  explicit ServiceQueue(sim::Simulator& simulator) : sim_(&simulator) {}

  /// Admit one job; `done` fires when its service completes.
  void enqueue(Duration service_time, std::function<void()> done) {
    DYNA_EXPECTS(service_time >= Duration{0});
    const TimePoint start = std::max(sim_->now(), next_free_);
    next_free_ = start + service_time;
    ++admitted_;
    sim_->schedule_at(next_free_, [this, done = std::move(done)] {
      ++completed_;
      done();
    });
  }

  /// Install (or replace) the grouped cost model. Takes effect for commands
  /// admitted afterwards; typically set once at cluster build time.
  void configure_group(GroupCostModel model) {
    DYNA_EXPECTS(model.per_round >= Duration{0} && model.per_command >= Duration{0});
    DYNA_EXPECTS(model.max_commands >= 1);
    group_ = model;
  }

  [[nodiscard]] const GroupCostModel& group_model() const noexcept { return group_; }

  /// Admit one client command under the grouped cost model; `done` fires when
  /// the round serving it completes. Commands pending when a round starts are
  /// served together (up to max_commands), sharing one per_round cost.
  void enqueue_command(std::function<void()> done) {
    if (!group_.coalesce) {
      // Unbatched baseline: a full round per command, same cost split.
      enqueue(group_.per_round + group_.per_command, std::move(done));
      return;
    }
    ++admitted_;
    pending_.push_back(std::move(done));
    schedule_round(std::max(sim_->now(), next_free_));
  }

  /// Commands waiting for a serving round (grouped model).
  [[nodiscard]] std::size_t pending_commands() const noexcept { return pending_.size(); }

  /// Serving rounds completed under the grouped model.
  [[nodiscard]] std::uint64_t rounds_served() const noexcept { return rounds_served_; }

  /// Current backlog delay a newly admitted job would see.
  [[nodiscard]] Duration backlog() const noexcept {
    const TimePoint now = sim_->now();
    return next_free_ > now ? next_free_ - now : Duration{0};
  }

  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

  /// Back to an empty server (trial reuse). Pending completion events died
  /// with the simulator reset; this clears the backlog watermark + counters.
  void reset_for_trial() noexcept {
    next_free_ = kSimEpoch;
    admitted_ = 0;
    completed_ = 0;
    pending_.clear();
    round_scheduled_ = false;
    rounds_served_ = 0;
  }

 private:
  void schedule_round(TimePoint at) {
    if (round_scheduled_) return;
    round_scheduled_ = true;
    sim_->schedule_at(at, [this] { serve_round(); });
  }

  void serve_round() {
    round_scheduled_ = false;
    if (pending_.empty()) return;
    const TimePoint now = sim_->now();
    if (next_free_ > now) {
      // A flat job slipped in ahead of us (the two models share the server):
      // try again when it frees up.
      schedule_round(next_free_);
      return;
    }
    const std::size_t k = std::min(pending_.size(), group_.max_commands);
    next_free_ = now + group_.per_round +
                 group_.per_command * static_cast<Duration::rep>(k);
    ++rounds_served_;
    std::vector<std::function<void()>> round;
    round.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      round.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    sim_->schedule_at(next_free_, [this, round = std::move(round)] {
      for (const auto& done : round) {
        ++completed_;
        done();
      }
    });
    if (!pending_.empty()) schedule_round(next_free_);
  }

  sim::Simulator* sim_;
  TimePoint next_free_ = kSimEpoch;
  std::uint64_t admitted_ = 0;
  std::uint64_t completed_ = 0;
  GroupCostModel group_;
  std::deque<std::function<void()>> pending_;  ///< grouped model: waiting commands
  bool round_scheduled_ = false;
  std::uint64_t rounds_served_ = 0;
};

}  // namespace dyna::cluster
