// Analytic FIFO CPU server for the client-request path (Fig 5's saturation
// mechanism).
//
// The leader's request pipeline is modelled as a single FIFO server: each
// admitted request occupies the server for its service time; completion
// callbacks fire in order at the computed finish instants. Open-loop load
// beyond 1/service_time therefore builds a genuine backlog, which is what
// bends the latency curve and pins peak throughput.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace dyna::cluster {

class ServiceQueue {
 public:
  explicit ServiceQueue(sim::Simulator& simulator) : sim_(&simulator) {}

  /// Admit one job; `done` fires when its service completes.
  void enqueue(Duration service_time, std::function<void()> done) {
    DYNA_EXPECTS(service_time >= Duration{0});
    const TimePoint start = std::max(sim_->now(), next_free_);
    next_free_ = start + service_time;
    ++admitted_;
    sim_->schedule_at(next_free_, [this, done = std::move(done)] {
      ++completed_;
      done();
    });
  }

  /// Current backlog delay a newly admitted job would see.
  [[nodiscard]] Duration backlog() const noexcept {
    const TimePoint now = sim_->now();
    return next_free_ > now ? next_free_ - now : Duration{0};
  }

  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

  /// Back to an empty server (trial reuse). Pending completion events died
  /// with the simulator reset; this clears the backlog watermark + counters.
  void reset_for_trial() noexcept {
    next_free_ = kSimEpoch;
    admitted_ = 0;
    completed_ = 0;
  }

 private:
  sim::Simulator* sim_;
  TimePoint next_free_ = kSimEpoch;
  std::uint64_t admitted_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace dyna::cluster
