#include "cluster/cluster.hpp"

#include <algorithm>

#include "dynatune/policy.hpp"
#include "raft/storage.hpp"

namespace dyna::cluster {

Cluster::Cluster(ClusterConfig config) : cfg_(std::move(config)) {
  DYNA_EXPECTS(cfg_.servers >= 1);
  Rng master(cfg_.seed);

  net_ = std::make_unique<net::Network>(sim_, master.fork(1), cfg_.transport);
  net_->set_default_schedule(cfg_.links);

  if (cfg_.perf_cost) {
    perf_ = std::make_unique<PerfModel>(*cfg_.perf_cost, cfg_.perf_bin);
  }

  if (!cfg_.policy_factory) {
    const Duration et = cfg_.raft.election_timeout;
    const Duration h = cfg_.raft.heartbeat_interval;
    cfg_.policy_factory = [et, h](NodeId) {
      return std::make_unique<raft::StaticPolicy>(et, h);
    };
  }

  storages_.resize(cfg_.servers);
  state_machines_.resize(cfg_.servers);
  nodes_.resize(cfg_.servers);
  service_.resize(cfg_.servers);

  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    const NodeId id = net_->add_node();  // ids 0..servers-1, in order
    DYNA_ASSERT(id == static_cast<NodeId>(i));
    if (cfg_.durable_log) {
      storages_[i] = std::make_shared<raft::MemoryStorage>();
    } else {
      storages_[i] = std::make_shared<raft::NullStorage>();
    }
    service_[i] = std::make_unique<ServiceQueue>(sim_);
  }
  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    build_node(static_cast<NodeId>(i));
  }
}

std::vector<NodeId> Cluster::server_ids() const {
  std::vector<NodeId> ids(cfg_.servers);
  for (std::size_t i = 0; i < cfg_.servers; ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

void Cluster::build_node(NodeId id) {
  const auto idx = static_cast<std::size_t>(id);
  std::vector<NodeId> peers;
  for (std::size_t p = 0; p < cfg_.servers; ++p) {
    if (static_cast<NodeId>(p) != id) peers.push_back(static_cast<NodeId>(p));
  }

  // Fresh state machine: recovery replays the durable log from scratch.
  state_machines_[idx] = std::make_unique<kv::KvStateMachine>();

  Rng node_rng(derive_seed(cfg_.seed, 0x1000 + static_cast<std::uint64_t>(id)));
  auto node = std::make_unique<raft::RaftNode>(id, std::move(peers), sim_, *net_, cfg_.raft,
                                               storages_[idx], cfg_.policy_factory(id),
                                               std::move(node_rng));
  node->set_apply([this, idx](const raft::LogEntry& entry) {
    return state_machines_[idx]->apply(entry.command.payload);
  });
  node->add_observer(&probe_);
  if (perf_) node->add_observer(perf_.get());
  for (raft::Observer* o : cfg_.observers) node->add_observer(o);
  nodes_[idx] = std::move(node);

  net_->set_handler(id, [this, id, idx](NodeId from, const net::Message& payload) {
    raft::RaftNode* n = nodes_[idx].get();
    if (n == nullptr || !n->running()) return;
    const raft::Message* msg = payload.raft();
    if (msg == nullptr) return;
    if (cfg_.request_service_time > Duration{0} &&
        std::holds_alternative<raft::ClientRequest>(*msg)) {
      // Client requests pass through the CPU before reaching consensus.
      service_[idx]->enqueue(service_time_for(id), [this, idx, from, m = *msg] {
        raft::RaftNode* alive = nodes_[idx].get();
        if (alive != nullptr && alive->running()) alive->handle_message(from, m);
      });
      return;
    }
    n->handle_message(from, *msg);
  });

  nodes_[idx]->start();
}

Duration Cluster::service_time_for(NodeId /*id*/) const { return cfg_.request_service_time; }

raft::RaftNode& Cluster::node(NodeId id) {
  auto* n = node_if_alive(id);
  DYNA_EXPECTS(n != nullptr);
  return *n;
}

raft::RaftNode* Cluster::node_if_alive(NodeId id) {
  DYNA_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].get();
}

kv::KvStateMachine& Cluster::state_machine(NodeId id) {
  DYNA_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < state_machines_.size());
  return *state_machines_[static_cast<std::size_t>(id)];
}

NodeId Cluster::current_leader() const {
  NodeId best = kNoNode;
  raft::Term best_term = 0;
  for (const auto& n : nodes_) {
    if (n && n->running() && n->is_leader() && n->term() >= best_term) {
      best = n->id();
      best_term = n->term();
    }
  }
  return best;
}

bool Cluster::await_leader(Duration timeout) {
  const TimePoint deadline = sim_.now() + timeout;
  while (sim_.now() < deadline) {
    if (current_leader() != kNoNode) return true;
    sim_.run_for(std::chrono::milliseconds(10));
  }
  return current_leader() != kNoNode;
}

Duration Cluster::randomized_timeout_kth(std::size_t k) const {
  DYNA_EXPECTS(k >= 1 && k <= cfg_.servers);
  std::vector<Duration> values;
  values.reserve(cfg_.servers);
  for (const auto& n : nodes_) {
    if (n && n->running()) {
      values.push_back(n->randomized_timeout());
    } else {
      values.push_back(Duration::max());
    }
  }
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   values.end());
  return values[k - 1];
}

void Cluster::pause(NodeId id) {
  node(id).pause();
  net_->set_paused(id, true);
}

void Cluster::resume(NodeId id) {
  net_->set_paused(id, false);
  node(id).resume();
}

void Cluster::crash(NodeId id) {
  const auto idx = static_cast<std::size_t>(id);
  DYNA_EXPECTS(idx < nodes_.size());
  if (nodes_[idx]) {
    nodes_[idx]->stop();
    nodes_[idx].reset();
  }
  net_->set_paused(id, false);  // a dead endpoint just drops traffic
}

void Cluster::restart(NodeId id) {
  const auto idx = static_cast<std::size_t>(id);
  DYNA_EXPECTS(idx < nodes_.size());
  DYNA_EXPECTS(nodes_[idx] == nullptr);
  build_node(id);
}

bool service_available(Cluster& cluster) {
  raft::Term max_term = 0;
  for (const NodeId id : cluster.server_ids()) {
    if (auto* n = cluster.node_if_alive(id); n != nullptr && n->running()) {
      max_term = std::max(max_term, n->term());
    }
  }
  for (const NodeId id : cluster.server_ids()) {
    if (auto* n = cluster.node_if_alive(id);
        n != nullptr && n->running() && n->is_leader() && n->term() == max_term) {
      return true;
    }
  }
  return false;
}

// ---- Variant factories --------------------------------------------------------------

ClusterConfig make_raft_config(std::size_t servers, std::uint64_t seed) {
  ClusterConfig c;
  c.servers = servers;
  c.seed = seed;
  c.raft = raft::RaftConfig::etcd_default();
  c.name = "Raft";
  return c;
}

ClusterConfig make_raft_low_config(std::size_t servers, std::uint64_t seed) {
  ClusterConfig c;
  c.servers = servers;
  c.seed = seed;
  c.raft = raft::RaftConfig::raft_low();
  c.name = "Raft-Low";
  return c;
}

ClusterConfig make_dynatune_config(std::size_t servers, std::uint64_t seed,
                                   dt::DynatuneConfig dt) {
  ClusterConfig c;
  c.servers = servers;
  c.seed = seed;
  c.raft = raft::RaftConfig::dynatune();
  c.raft.election_timeout = dt.default_election_timeout;
  c.raft.heartbeat_interval = dt.default_heartbeat;
  c.policy_factory = [dt](NodeId) { return std::make_unique<dt::DynatunePolicy>(dt); };
  c.name = "Dynatune";
  return c;
}

ClusterConfig make_fixk_config(std::size_t servers, std::uint64_t seed, int k,
                               dt::DynatuneConfig dt) {
  dt.fixed_k = k;
  ClusterConfig c = make_dynatune_config(servers, seed, dt);
  c.name = "Fix-K";
  return c;
}

}  // namespace dyna::cluster
