#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "dynatune/policy.hpp"
#include "raft/storage.hpp"

namespace dyna::cluster {

Cluster::Cluster(ClusterConfig config) : cfg_(std::move(config)) {
  DYNA_EXPECTS(cfg_.servers >= 1);
  DYNA_EXPECTS((cfg_.shared_sim == nullptr) == (cfg_.shared_net == nullptr));
  DYNA_EXPECTS(cfg_.shared_sim != nullptr || cfg_.node_base == 0);

  if (cfg_.shared_sim != nullptr) {
    sim_ = cfg_.shared_sim;
    net_ = cfg_.shared_net;
  } else {
    owned_sim_ = std::make_unique<sim::Simulator>();
    sim_ = owned_sim_.get();
    Rng master(cfg_.seed);
    owned_net_ = std::make_unique<net::Network>(*sim_, master.fork(1), cfg_.transport);
    net_ = owned_net_.get();
    net_->set_default_schedule(cfg_.links);
  }

  if (cfg_.perf_cost) {
    perf_ = std::make_unique<PerfModel>(*cfg_.perf_cost, cfg_.perf_bin);
  }

  if (!cfg_.policy_factory) {
    const Duration et = cfg_.raft.election_timeout;
    const Duration h = cfg_.raft.heartbeat_interval;
    cfg_.policy_factory = [et, h](NodeId) {
      return std::make_unique<raft::StaticPolicy>(et, h);
    };
  }

  storages_.resize(cfg_.servers);
  state_machines_.resize(cfg_.servers);
  nodes_.resize(cfg_.servers);
  service_.resize(cfg_.servers);
  roster_.resize(cfg_.servers);
  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    roster_[i] = cfg_.node_base + static_cast<NodeId>(i);
  }
  if (cfg_.fault) {
    DYNA_EXPECTS(cfg_.durable_log);  // a crash must be restartable
    for (std::size_t i = 0; i < cfg_.servers; ++i) arm_injector(i);
  }

  // Owned substrate: ids 0..servers-1. Shared substrate: the owner
  // constructs groups in node_base order, so the batch lands exactly on this
  // group's slice of the id space. One add_nodes() call = one link-table
  // growth for the whole group instead of an O(n^2) re-stride per server.
  const NodeId first_id = net_->add_nodes(cfg_.servers);
  DYNA_ASSERT(first_id == cfg_.node_base);
  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    if (cfg_.durable_log) {
      storages_[i] = std::make_shared<raft::MemoryStorage>();
    } else {
      storages_[i] = std::make_shared<raft::NullStorage>();
    }
    service_[i] = std::make_unique<ServiceQueue>(*sim_);
    service_[i]->configure_group(group_model());
  }
  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    build_node(cfg_.node_base + static_cast<NodeId>(i));
  }
}

GroupCostModel Cluster::group_model() const {
  GroupCostModel m;
  m.per_round = cfg_.round_service_time;
  m.per_command = cfg_.command_service_time;
  m.max_commands = std::max<std::size_t>(1, cfg_.raft.max_batch_commands);
  m.coalesce = cfg_.raft.group_commit;
  return m;
}

void Cluster::reset(ClusterConfig config) {
  reset_begin(std::move(config));
  reset_substrate();
  reset_finish();
}

void Cluster::reset(std::uint64_t seed) {
  reset_begin(seed);
  reset_substrate();
  reset_finish();
}

void Cluster::reset_begin(ClusterConfig config) {
  // Substrate wiring is fixed at construction; a reconfigure reset must
  // re-state it verbatim (shard::ShardedCluster::group_config does).
  DYNA_EXPECTS(config.shared_sim == (owns_substrate() ? nullptr : sim_));
  DYNA_EXPECTS(config.shared_net == (owns_substrate() ? nullptr : net_));
  DYNA_EXPECTS(owns_substrate() ? config.node_base == 0
                                : (config.node_base == cfg_.node_base &&
                                   config.servers == cfg_.servers));
  cfg_ = std::move(config);
  pending_reconfigure_ = true;
  teardown_nodes();
}

void Cluster::reset_begin(std::uint64_t seed) {
  cfg_.seed = seed;
  pending_reconfigure_ = false;
  teardown_nodes();
}

void Cluster::teardown_nodes() {
  DYNA_EXPECTS(cfg_.servers >= 1);

  // Node objects survive the reset only when their wiring is provably
  // unchanged: same config (seed-only reset), same observer set (a perf
  // model is rebuilt per trial, which moves the observer pointer), and a
  // policy that knows how to reset itself. Everything else rebuilds.
  const bool rebuild_nodes = pending_reconfigure_ || nodes_.size() != cfg_.servers ||
                             cfg_.perf_cost.has_value();

  // Nodes to be rebuilt are destroyed first: their timer destructors cancel
  // against the *old* simulator state. Destroying them after the reset could
  // cancel fresh events whose (slot, generation) collides with a stale id.
  // Kept nodes still hold stale timer handles across the reset — harmless,
  // because reset_for_trial() forgets them without cancelling.
  for (auto& n : nodes_) {
    if (n != nullptr && (rebuild_nodes || !n->policy().resettable_for_trial())) {
      n.reset();
    }
  }

  // Servers added mid-trial (dynamic membership) exist only for that trial.
  // Their nodes/queues hold timer handles against the *old* simulator, so
  // the extra slots are destroyed here, before the substrate reset; the
  // network itself drops ids >= servers in its own reset_for_trial.
  if (nodes_.size() > cfg_.servers) {
    nodes_.resize(cfg_.servers);
    storages_.resize(cfg_.servers);
    state_machines_.resize(cfg_.servers);
    service_.resize(cfg_.servers);
  }
  if (injectors_.size() > cfg_.servers) injectors_.resize(cfg_.servers);
  roster_.resize(cfg_.servers);
  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    roster_[i] = cfg_.node_base + static_cast<NodeId>(i);  // un-tombstone
  }
}

void Cluster::reset_substrate() {
  DYNA_EXPECTS(owns_substrate());
  sim_->reset();

  Rng master(cfg_.seed);  // same stream derivation as the constructor
  if (pending_reconfigure_) {
    net_->reset_for_trial(master.fork(1), cfg_.servers, cfg_.transport);
    net_->set_default_schedule(cfg_.links);
  } else {
    net_->reset_for_trial(master.fork(1), cfg_.servers);
  }
}

void Cluster::reset_finish() {
  probe_.clear();
  checker_.clear();
  if (cfg_.fault) {
    DYNA_EXPECTS(cfg_.durable_log);
    for (std::size_t i = 0; i < cfg_.servers; ++i) arm_injector(i);
  } else {
    injectors_.clear();
  }

  if (pending_reconfigure_ && !cfg_.policy_factory) {
    const Duration et = cfg_.raft.election_timeout;
    const Duration h = cfg_.raft.heartbeat_interval;
    cfg_.policy_factory = [et, h](NodeId) {
      return std::make_unique<raft::StaticPolicy>(et, h);
    };
  }

  // The perf model accumulates per-trial counters: rebuild whenever enabled.
  perf_.reset();
  if (cfg_.perf_cost) {
    perf_ = std::make_unique<PerfModel>(*cfg_.perf_cost, cfg_.perf_bin);
  }

  storages_.resize(cfg_.servers);
  state_machines_.resize(cfg_.servers);
  nodes_.resize(cfg_.servers);
  service_.resize(cfg_.servers);

  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    const bool have_durable =
        dynamic_cast<raft::MemoryStorage*>(storages_[i].get()) != nullptr;
    if (storages_[i] == nullptr || cfg_.durable_log != have_durable) {
      if (cfg_.durable_log) {
        storages_[i] = std::make_shared<raft::MemoryStorage>();
      } else {
        storages_[i] = std::make_shared<raft::NullStorage>();
      }
    } else {
      storages_[i]->reset_for_trial();  // keeps the log buffer capacity
    }
    if (service_[i] == nullptr) {
      service_[i] = std::make_unique<ServiceQueue>(*sim_);
    } else {
      service_[i]->reset_for_trial();
    }
    service_[i]->configure_group(group_model());
  }

  for (std::size_t i = 0; i < cfg_.servers; ++i) {
    if (nodes_[i] != nullptr) {
      // In-place path: fresh state machine, node rewound to construction
      // state with the same RNG derivation the constructor would use.
      state_machines_[i]->reset_for_trial();
      nodes_[i]->reset_for_trial(
          Rng(derive_seed(cfg_.seed, 0x1000 + static_cast<std::uint64_t>(i))));
      nodes_[i]->start();
    } else {
      build_node(cfg_.node_base + static_cast<NodeId>(i));
    }
  }
}

std::vector<NodeId> Cluster::server_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(roster_.size());
  for (const NodeId id : roster_) {
    if (id != kNoNode) ids.push_back(id);
  }
  return ids;
}

std::size_t Cluster::index_of(NodeId id) const {
  // Founding servers sit at their id-derived slot; servers added mid-trial
  // occupy the appended slots (scanned — there are at most a handful).
  if (id >= cfg_.node_base) {
    const std::size_t idx = static_cast<std::size_t>(id - cfg_.node_base);
    if (idx < cfg_.servers) {
      DYNA_EXPECTS(idx < roster_.size() && roster_[idx] == id);
      return idx;
    }
  }
  for (std::size_t i = cfg_.servers; i < roster_.size(); ++i) {
    if (roster_[i] == id) return i;
  }
  DYNA_EXPECTS(!"unknown or removed server id");
  return 0;
}

void Cluster::arm_injector(std::size_t idx) {
  if (!cfg_.fault) return;
  if (injectors_.size() <= idx) injectors_.resize(idx + 1);
  if (injectors_[idx] == nullptr || !(injectors_[idx]->config() == *cfg_.fault)) {
    injectors_[idx] = std::make_unique<fault::Injector>(*cfg_.fault);
  }
  injectors_[idx]->arm(derive_seed(cfg_.seed, 0xFA017 + static_cast<std::uint64_t>(idx)));
}

void Cluster::build_node(NodeId id, bool as_learner) {
  const std::size_t idx = index_of(id);
  std::vector<NodeId> peers;
  for (const NodeId pid : roster_) {
    if (pid != kNoNode && pid != id) peers.push_back(pid);
  }

  // Fresh state machine: on restart the node's start() restores it from the
  // persisted snapshot (if any) and replays only the log suffix behind it.
  state_machines_[idx] = std::make_unique<kv::KvStateMachine>();

  // Streams derive from the *local* index so a shared-substrate group's rng
  // story depends only on (group seed, slot) — and matches the in-place
  // reset path above, which also derives by index.
  Rng node_rng(derive_seed(cfg_.seed, 0x1000 + static_cast<std::uint64_t>(idx)));
  auto node = std::make_unique<raft::RaftNode>(id, std::move(peers), *sim_, *net_, cfg_.raft,
                                               storages_[idx], cfg_.policy_factory(id),
                                               std::move(node_rng));
  node->set_apply([this, idx](const raft::LogEntry& entry) {
    return state_machines_[idx]->apply(entry.command.payload);
  });
  node->set_snapshot_hooks(
      [this, idx] { return state_machines_[idx]->snapshot(); },
      [this, idx](const raft::Snapshot& snap) { state_machines_[idx]->restore(snap.data); });
  // ReadIndex wiring (engages only when raft.read_index is set): the kv
  // layer classifies reads, and a served read queries the state machine
  // directly — apply_one, since a lone GET is never a batch frame.
  node->set_read_hooks(
      [](std::string_view payload) { return kv::is_read_only(payload); },
      [this, idx](std::string_view payload) { return state_machines_[idx]->apply_one(payload); });
  node->add_observer(&probe_);
  node->add_observer(&checker_);
  if (perf_) node->add_observer(perf_.get());
  for (raft::Observer* o : cfg_.observers) node->add_observer(o);
  node->set_self_learner(as_learner);
  if (cfg_.fault) {
    // The on-crash hook runs with the stack still inside RaftNode code (the
    // CrashSignal unwound to the node's entry-point guard), so the teardown
    // — and the later restart — are deferred to fresh simulator events. The
    // (slot, id) binding is stable within a trial; the guards make both
    // events no-ops if driver code crashed/removed the node in between.
    node->set_fault(injectors_[idx].get(), [this, idx, id](NodeId) {
      sim_->schedule_after(Duration{0}, [this, idx, id] {
        if (idx >= roster_.size() || roster_[idx] != id || nodes_[idx] == nullptr) return;
        crash(id);
        sim_->schedule_after(cfg_.fault->restart_delay, [this, idx, id] {
          if (idx >= roster_.size() || roster_[idx] != id || nodes_[idx] != nullptr) return;
          restart(id);
        });
      });
    });
  }
  nodes_[idx] = std::move(node);

  // The handler closure only captures stable identity (this cluster, this
  // index) and reads the config through `this`, so one installation serves
  // every trial of a reused substrate — no per-trial std::function rebuild.
  if (!net_->has_handler(id)) {
    net_->set_handler(id, [this, id, idx](NodeId from, const net::Message& payload) {
      raft::RaftNode* n = nodes_[idx].get();
      if (n == nullptr || !n->running()) return;
      const raft::Message* msg = payload.raft();
      if (msg == nullptr) return;
      if (std::holds_alternative<raft::ClientRequest>(*msg) &&
          (cfg_.grouped_service() || cfg_.request_service_time > Duration{0})) {
        auto deliver = [this, idx, from, m = *msg] {
          raft::RaftNode* alive = nodes_[idx].get();
          if (alive != nullptr && alive->running()) alive->handle_message(from, m);
        };
        if (cfg_.grouped_service()) {
          // Batch-aware CPU: a ReadIndex-eligible read never joins a log
          // round — it pays only the per-command cost (the fast path is the
          // point). Everything else shares grouped rounds.
          const auto& payload = std::get<raft::ClientRequest>(*msg).command.payload;
          if (cfg_.raft.read_index && kv::is_read_only(payload)) {
            service_[idx]->enqueue(cfg_.command_service_time, std::move(deliver));
          } else {
            service_[idx]->enqueue_command(std::move(deliver));
          }
          return;
        }
        // Client requests pass through the CPU before reaching consensus.
        service_[idx]->enqueue(service_time_for(id), std::move(deliver));
        return;
      }
      n->handle_message(from, *msg);
    });
  }

  nodes_[idx]->start();
}

Duration Cluster::service_time_for(NodeId /*id*/) const { return cfg_.request_service_time; }

raft::RaftNode& Cluster::node(NodeId id) {
  auto* n = node_if_alive(id);
  DYNA_EXPECTS(n != nullptr);
  return *n;
}

raft::RaftNode* Cluster::node_if_alive(NodeId id) { return nodes_[index_of(id)].get(); }

kv::KvStateMachine& Cluster::state_machine(NodeId id) {
  return *state_machines_[index_of(id)];
}

ServiceQueue& Cluster::service_queue(NodeId id) { return *service_[index_of(id)]; }

NodeId Cluster::current_leader() const {
  NodeId best = kNoNode;
  raft::Term best_term = 0;
  for (const auto& n : nodes_) {
    if (n && n->running() && n->is_leader() && n->term() >= best_term) {
      best = n->id();
      best_term = n->term();
    }
  }
  return best;
}

bool Cluster::await_leader(Duration timeout) {
  const TimePoint deadline = sim_->now() + timeout;
  // current_leader() walks every node. Between two polls its answer can only
  // change if some node changed role, and the probe observes every role
  // change — so recompute only when the probe's event count moves. (Nothing
  // can pause/crash a node *during* this loop; those faults are injected by
  // driver code between sim advances.) Poll schedule and result are
  // identical to the plain loop, which is what keeps traces bit-identical.
  std::size_t seen = probe_.role_changes().size();
  NodeId leader = current_leader();
  while (sim_->now() < deadline) {
    if (leader != kNoNode) return true;
    sim_->run_for(std::chrono::milliseconds(10));
    const std::size_t changes = probe_.role_changes().size();
    if (changes != seen) {
      seen = changes;
      leader = current_leader();
    }
  }
  return leader != kNoNode;
}

Duration Cluster::randomized_timeout_kth(std::size_t k) const {
  DYNA_EXPECTS(k >= 1 && k <= cfg_.servers);
  std::vector<Duration> values;
  values.reserve(cfg_.servers);
  for (const auto& n : nodes_) {
    if (n && n->running()) {
      values.push_back(n->randomized_timeout());
    } else {
      values.push_back(Duration::max());
    }
  }
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   values.end());
  return values[k - 1];
}

void Cluster::pause(NodeId id) {
  node(id).pause();
  net_->set_paused(id, true);
}

void Cluster::resume(NodeId id) {
  net_->set_paused(id, false);
  node(id).resume();
}

void Cluster::crash(NodeId id) {
  const std::size_t idx = index_of(id);
  if (nodes_[idx]) {
    nodes_[idx]->stop();
    nodes_[idx].reset();
  }
  net_->set_paused(id, false);  // a dead endpoint just drops traffic
}

void Cluster::restart(NodeId id) {
  const std::size_t idx = index_of(id);
  DYNA_EXPECTS(nodes_[idx] == nullptr);
  if (!storages_[idx]->durable_log()) {
    // Reviving a node over log-discarding storage would bring it back with an
    // empty log — committed entries silently missing, a safety violation that
    // used to surface only as divergence much later.
    throw std::runtime_error("Cluster::restart(" + std::to_string(id) +
                             "): storage discards the log (durable_log=false); set "
                             "ClusterConfig::durable_log=true for crash/restart scenarios");
  }
  build_node(id);
}

NodeId Cluster::add_server(bool as_learner) {
  DYNA_EXPECTS(owns_substrate());  // shared-substrate geometry is fixed
  if (!cfg_.durable_log) {
    throw std::runtime_error(
        "Cluster::add_server: joining servers catch up from durable state; set "
        "ClusterConfig::durable_log=true for membership-change scenarios");
  }
  // The network hands out the next endpoint id; it need not be dense with the
  // server roster (workload clients claim endpoints too). index_of resolves
  // appended servers by roster scan, never by id arithmetic.
  const NodeId id = net_->add_node(nullptr);
  const std::size_t idx = roster_.size();
  roster_.push_back(id);
  storages_.push_back(std::make_shared<raft::MemoryStorage>());
  state_machines_.emplace_back();
  nodes_.emplace_back();
  auto queue = std::make_unique<ServiceQueue>(*sim_);
  queue->configure_group(group_model());
  service_.push_back(std::move(queue));
  if (cfg_.fault) arm_injector(idx);
  build_node(id, as_learner);
  return id;
}

void Cluster::finalize_removal(NodeId id) {
  const std::size_t idx = index_of(id);
  if (nodes_[idx] != nullptr) {
    nodes_[idx]->stop();
    nodes_[idx].reset();
  }
  net_->set_paused(id, false);
  roster_[idx] = kNoNode;  // slot survives (handlers capture idx), id is gone
}

std::optional<raft::LogIndex> Cluster::propose_config_change(raft::ConfigChange kind,
                                                             NodeId target) {
  const NodeId leader = current_leader();
  if (leader == kNoNode) return std::nullopt;
  return nodes_[index_of(leader)]->propose_config_change(kind, target);
}

bool Cluster::await_applied(raft::LogIndex index, Duration timeout) {
  const TimePoint deadline = sim_->now() + timeout;
  const auto applied = [this, index] {
    const NodeId leader = current_leader();
    if (leader == kNoNode) return false;
    raft::RaftNode* n = nodes_[index_of(leader)].get();
    return n != nullptr && n->last_applied() >= index;
  };
  while (sim_->now() < deadline) {
    if (applied()) return true;
    sim_->run_for(std::chrono::milliseconds(10));
  }
  return applied();
}

std::uint64_t Cluster::audit_invariants() {
  // Log matching across final state: every entry a node still holds at a
  // committed index must match the commit table built while applying.
  for (std::size_t i = 0; i < roster_.size(); ++i) {
    const NodeId id = roster_[i];
    raft::RaftNode* n = id == kNoNode ? nullptr : nodes_[i].get();
    if (n == nullptr) continue;
    const raft::LogIndex lo = std::max<raft::LogIndex>(n->first_log_index(), 1);
    const raft::LogIndex hi = std::min(n->commit_index(), n->last_log_index());
    if (lo <= hi) {
      n->log().for_each(lo, hi,
                        [&](const raft::LogEntry& e) { checker_.audit_log_entry(id, e); });
    }
  }
  const NodeId leader = current_leader();
  if (leader != kNoNode) {
    checker_.audit_leader_coverage(leader, nodes_[index_of(leader)]->last_log_index());
  }
  for (std::size_t i = 0; i < roster_.size(); ++i) {
    const NodeId id = roster_[i];
    raft::RaftNode* n = id == kNoNode ? nullptr : nodes_[i].get();
    if (n == nullptr || !n->running()) continue;
    checker_.audit_applied_state(id, n->last_applied(), state_machines_[i]->snapshot());
  }
  return checker_.count();
}

fault::Injector* Cluster::injector(NodeId id) {
  const std::size_t idx = index_of(id);
  return idx < injectors_.size() ? injectors_[idx].get() : nullptr;
}

std::uint64_t Cluster::fault_firings() const {
  std::uint64_t total = 0;
  for (const auto& inj : injectors_) {
    if (inj) total += inj->fired();
  }
  return total;
}

bool service_available(Cluster& cluster) {
  raft::Term max_term = 0;
  for (const NodeId id : cluster.server_ids()) {
    if (auto* n = cluster.node_if_alive(id); n != nullptr && n->running()) {
      max_term = std::max(max_term, n->term());
    }
  }
  for (const NodeId id : cluster.server_ids()) {
    if (auto* n = cluster.node_if_alive(id);
        n != nullptr && n->running() && n->is_leader() && n->term() == max_term) {
      return true;
    }
  }
  return false;
}

// ---- Variant factories --------------------------------------------------------------

ClusterConfig make_raft_config(std::size_t servers, std::uint64_t seed) {
  ClusterConfig c;
  c.servers = servers;
  c.seed = seed;
  c.raft = raft::RaftConfig::etcd_default();
  c.name = "Raft";
  return c;
}

ClusterConfig make_raft_low_config(std::size_t servers, std::uint64_t seed) {
  ClusterConfig c;
  c.servers = servers;
  c.seed = seed;
  c.raft = raft::RaftConfig::raft_low();
  c.name = "Raft-Low";
  return c;
}

ClusterConfig make_dynatune_config(std::size_t servers, std::uint64_t seed,
                                   dt::DynatuneConfig dt) {
  ClusterConfig c;
  c.servers = servers;
  c.seed = seed;
  c.raft = raft::RaftConfig::dynatune();
  c.raft.election_timeout = dt.default_election_timeout;
  c.raft.heartbeat_interval = dt.default_heartbeat;
  c.policy_factory = [dt](NodeId) { return std::make_unique<dt::DynatunePolicy>(dt); };
  c.name = "Dynatune";
  return c;
}

ClusterConfig make_fixk_config(std::size_t servers, std::uint64_t seed, int k,
                               dt::DynatuneConfig dt) {
  dt.fixed_k = k;
  ClusterConfig c = make_dynatune_config(servers, seed, dt);
  c.name = "Fix-K";
  return c;
}

}  // namespace dyna::cluster
