// Probe: records the cluster events the paper extracts from log files.
//
// Detection time := leader-kill instant -> first follower election-timer
// expiry. OTS := leader-kill instant -> next leader assuming power. The probe
// stores the raw event streams; experiment drivers do the arithmetic.
//
// Per-node clock offsets model the NTP error of the multi-machine AWS
// experiment (§IV-D): when set, every recorded timestamp is shifted by the
// reporting node's offset — exactly the distortion a log-file reader sees.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "raft/observer.hpp"

namespace dyna::cluster {

class Probe final : public raft::Observer {
 public:
  struct RoleChangeEvent {
    NodeId node;
    raft::Role from;
    raft::Role to;
    raft::Term term;
    TimePoint when;
  };

  struct TimeoutEvent {
    NodeId node;
    raft::Term term;
    TimePoint when;
  };

  struct LeaderEvent {
    NodeId leader;
    raft::Term term;
    TimePoint when;
  };

  // ---- Observer ----
  void on_role_change(NodeId node, raft::Role from, raft::Role to, raft::Term term,
                      TimePoint when) override {
    role_changes_.push_back({node, from, to, term, when + offset(node)});
  }

  void on_election_timeout(NodeId node, raft::Term term, TimePoint when) override {
    timeouts_.push_back({node, term, when + offset(node)});
  }

  void on_leader_established(NodeId leader, raft::Term term, TimePoint when) override {
    leaders_.push_back({leader, term, when + offset(leader)});
  }

  // ---- Clock model ----
  void set_clock_offset(NodeId node, Duration offset) { clock_offset_[node] = offset; }

  // ---- Queries ----
  [[nodiscard]] const std::vector<RoleChangeEvent>& role_changes() const noexcept {
    return role_changes_;
  }
  [[nodiscard]] const std::vector<TimeoutEvent>& timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] const std::vector<LeaderEvent>& leaders() const noexcept { return leaders_; }

  /// First election-timeout event at or after `t` (the "failure detected" log line).
  [[nodiscard]] std::optional<TimeoutEvent> first_timeout_after(TimePoint t) const {
    for (const auto& e : timeouts_) {
      if (e.when >= t) return e;
    }
    return std::nullopt;
  }

  /// First leader establishment at or after `t`, optionally excluding a node
  /// (the killed leader cannot be its own successor).
  [[nodiscard]] std::optional<LeaderEvent> first_leader_after(
      TimePoint t, NodeId exclude = kNoNode) const {
    for (const auto& e : leaders_) {
      if (e.when >= t && e.leader != exclude) return e;
    }
    return std::nullopt;
  }

  /// Number of elections begun (transitions to Candidate) in [a, b).
  [[nodiscard]] std::size_t elections_started_in(TimePoint a, TimePoint b) const {
    std::size_t n = 0;
    for (const auto& e : role_changes_) {
      if (e.to == raft::Role::Candidate && e.when >= a && e.when < b) ++n;
    }
    return n;
  }

  /// Number of leaderships established in [a, b).
  [[nodiscard]] std::size_t leaders_established_in(TimePoint a, TimePoint b) const {
    std::size_t n = 0;
    for (const auto& e : leaders_) {
      if (e.when >= a && e.when < b) ++n;
    }
    return n;
  }

  /// Forget everything, clock offsets included (trial reuse: the next trial
  /// starts from a probe indistinguishable from a fresh one). Event-vector
  /// capacity survives.
  void clear() {
    role_changes_.clear();
    timeouts_.clear();
    leaders_.clear();
    clock_offset_.clear();
  }

 private:
  [[nodiscard]] Duration offset(NodeId node) const {
    const auto it = clock_offset_.find(node);
    return it == clock_offset_.end() ? Duration{0} : it->second;
  }

  std::vector<RoleChangeEvent> role_changes_;
  std::vector<TimeoutEvent> timeouts_;
  std::vector<LeaderEvent> leaders_;
  std::map<NodeId, Duration> clock_offset_;
};

}  // namespace dyna::cluster
