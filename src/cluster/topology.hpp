// WAN topologies: per-pair link conditions for geo-replicated clusters.
//
// The AWS five-region matrix below substitutes for the paper's real
// deployment (§IV-D: m5.large in Tokyo, London, California, Sydney,
// São Paulo). Values are representative public inter-region RTT medians
// (ms); the heterogeneous geometry — near pairs ~105 ms, far pairs ~310 ms —
// is what drives the experiment, not the exact third digit.
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "net/condition.hpp"
#include "net/network.hpp"

namespace dyna::cluster {

using namespace std::chrono_literals;

struct WanTopology {
  std::vector<std::string> region_names;
  /// Symmetric RTT matrix, indexed by server position (diagonal unused).
  std::vector<std::vector<Duration>> rtt;
  /// One-way delay jitter as a fraction of the link RTT (WAN paths wobble
  /// roughly proportionally to their length).
  double jitter_fraction = 0.02;
  /// Steady-state packet loss on every link.
  double loss = 0.0001;

  [[nodiscard]] std::size_t size() const noexcept { return region_names.size(); }

  /// Install per-pair schedules on the network for servers
  /// [base, base + size). `base` > 0 places the matrix onto one group of a
  /// shared-substrate sharded deployment (each group gets its own copy of
  /// the geography).
  void apply(net::Network& network, NodeId base = 0) const {
    DYNA_EXPECTS(rtt.size() == size());
    for (std::size_t a = 0; a < size(); ++a) {
      DYNA_EXPECTS(rtt[a].size() == size());
      for (std::size_t b = a + 1; b < size(); ++b) {
        net::LinkCondition cond;
        cond.rtt = rtt[a][b];
        cond.jitter = from_ms(to_ms(rtt[a][b]) * jitter_fraction);
        cond.loss = loss;
        network.set_path_schedule(base + static_cast<NodeId>(a),
                                  base + static_cast<NodeId>(b),
                                  net::ConditionSchedule::constant(cond));
      }
    }
  }

  /// The paper's real-world deployment: five AWS regions.
  [[nodiscard]] static WanTopology aws_five_regions() {
    WanTopology t;
    t.region_names = {"tokyo", "london", "california", "sydney", "sao-paulo"};
    const auto ms = [](int v) { return Duration(std::chrono::milliseconds(v)); };
    // Symmetric matrix; representative public inter-region medians.
    t.rtt = {
        {ms(0), ms(210), ms(110), ms(105), ms(255)},   // tokyo
        {ms(210), ms(0), ms(140), ms(270), ms(190)},   // london
        {ms(110), ms(140), ms(0), ms(140), ms(175)},   // california
        {ms(105), ms(270), ms(140), ms(0), ms(310)},   // sydney
        {ms(255), ms(190), ms(175), ms(310), ms(0)},   // sao-paulo
    };
    return t;
  }
};

}  // namespace dyna::cluster
