// Probabilistic crash-point injection, modeled on katana's FaultTest.h.
//
// RaftNode compiles *named crash points* into its storage/replication hot
// spots (before/after hard-state persist, before/after log append, snapshot
// install, mid-batch seal, pre-send). When a configured Injector decides a
// visit fires, the crash point throws fault::CrashSignal; the node's entry
// points catch it, stop the node ("pull the plug" — no code after the fire
// point runs, so a BeforePersistAppend crash loses the write exactly like a
// power cut between the in-memory append and the disk append), and hand
// control to the cluster, which schedules a crash + restart.
//
// Determinism contract: every injector draws from its own RNG, seeded
// derive_seed(trial_seed, 0xFA017 + node_slot) and re-armed at trial start.
// Visits are counted per node across enabled points in execution order, so a
// firing is identified by (point, visit ordinal) and any firing observed in
// mode Independent or UniformOverRun can be replayed exactly by pinning
// RunLength to the recorded ordinal under the same (config, seed).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace dyna::fault {

/// Named "pull the plug" sites compiled into RaftNode hot spots. Placement
/// rule: a point sits immediately BEFORE or AFTER one durable side effect, so
/// the two firings bracket exactly one storage mutation.
enum class CrashPoint : std::uint8_t {
  BeforePersistHardState = 0,  ///< before storage_->save_hard_state
  AfterPersistHardState,       ///< after storage_->save_hard_state
  BeforePersistAppend,         ///< before storage_->append (log_ already has the suffix)
  AfterPersistAppend,          ///< after storage_->append
  BeforeSnapshotInstall,       ///< before snapshot adoption / leader-side snapshot persist
  AfterSnapshotInstall,        ///< after snapshot adoption / leader-side snapshot persist
  MidBatchSeal,                ///< inside seal_batch, routes pushed but entry not appended
  PreSend,                     ///< top of RaftNode::send, before the message reaches the wire
  kCount,
};

[[nodiscard]] constexpr const char* to_string(CrashPoint p) noexcept {
  switch (p) {
    case CrashPoint::BeforePersistHardState: return "BeforePersistHardState";
    case CrashPoint::AfterPersistHardState: return "AfterPersistHardState";
    case CrashPoint::BeforePersistAppend: return "BeforePersistAppend";
    case CrashPoint::AfterPersistAppend: return "AfterPersistAppend";
    case CrashPoint::BeforeSnapshotInstall: return "BeforeSnapshotInstall";
    case CrashPoint::AfterSnapshotInstall: return "AfterSnapshotInstall";
    case CrashPoint::MidBatchSeal: return "MidBatchSeal";
    case CrashPoint::PreSend: return "PreSend";
    case CrashPoint::kCount: break;
  }
  return "?";
}

/// Firing decision modes (katana FaultTest.h vocabulary).
enum class Mode : std::uint8_t {
  None = 0,        ///< never fires (injector attached but inert)
  Independent,     ///< each visit fires independently with probability p
  RunLength,       ///< fires at exactly the run_length-th enabled visit
  UniformOverRun,  ///< fires at one visit drawn uniformly from [1, uniform_max]
};

/// Thrown by a firing crash point; caught only by RaftNode's entry-point
/// guards. Deliberately not a std::exception subclass so generic catch
/// blocks in user code cannot swallow a crash.
struct CrashSignal {};

/// Bit for `points_mask` below.
[[nodiscard]] constexpr std::uint32_t point_bit(CrashPoint p) noexcept {
  return 1U << static_cast<unsigned>(p);
}

constexpr std::uint32_t kAllPoints = point_bit(CrashPoint::kCount) - 1;

struct InjectorConfig {
  Mode mode = Mode::None;
  /// Independent: per-visit firing probability.
  double independent_prob = 1e-3;
  /// RunLength: ordinal of the (enabled) visit that fires. Also the replay
  /// handle: pin this to a recorded Firing::visit to reproduce it.
  std::uint64_t run_length = 100;
  /// UniformOverRun: the firing ordinal is drawn uniformly from
  /// [1, uniform_max] when the injector is armed.
  std::uint64_t uniform_max = 1000;
  /// Which crash points participate (bitmask of point_bit; default all).
  std::uint32_t points_mask = kAllPoints;
  /// Cap on firings per node per trial. The count survives mid-trial
  /// restarts, so the default of 1 cannot crash-loop a node.
  std::size_t max_fires = 1;
  /// Delay before the cluster restarts a node felled by a firing.
  Duration restart_delay = std::chrono::seconds(2);

  friend bool operator==(const InjectorConfig&, const InjectorConfig&) = default;
};

/// One firing: which point fired at which enabled-visit ordinal.
struct Firing {
  CrashPoint point;
  std::uint64_t visit;

  friend bool operator==(const Firing&, const Firing&) = default;
};

/// Per-node firing engine. Owned by the Cluster (one per node slot, surviving
/// node rebuilds within a trial); RaftNode holds a raw pointer and calls
/// visit() at each crash point.
class Injector {
 public:
  explicit Injector(InjectorConfig config) : cfg_(config) {}

  /// Re-seed for a new trial: zero counters, redraw the UniformOverRun
  /// target. Must be called exactly once per trial per node slot.
  void arm(std::uint64_t seed) {
    rng_ = Rng(seed);
    visits_ = 0;
    fired_ = 0;
    firings_.clear();
    target_ = 0;
    if (cfg_.mode == Mode::UniformOverRun) {
      DYNA_EXPECTS(cfg_.uniform_max > 0);
      target_ = 1 + rng_.uniform_index(cfg_.uniform_max);
    }
  }

  /// Called by the crash point. Returns true when this visit fires (the
  /// caller then throws CrashSignal).
  [[nodiscard]] bool visit(CrashPoint p) noexcept {
    if (cfg_.mode == Mode::None) return false;
    if ((cfg_.points_mask & point_bit(p)) == 0) return false;
    ++visits_;
    if (fired_ >= cfg_.max_fires) return false;
    bool fire = false;
    switch (cfg_.mode) {
      case Mode::None: break;
      case Mode::Independent: fire = rng_.bernoulli(cfg_.independent_prob); break;
      case Mode::RunLength: fire = visits_ == cfg_.run_length; break;
      case Mode::UniformOverRun: fire = visits_ == target_; break;
    }
    if (fire) {
      ++fired_;
      firings_.push_back(Firing{p, visits_});
    }
    return fire;
  }

  [[nodiscard]] const InjectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t visits() const noexcept { return visits_; }
  [[nodiscard]] std::size_t fired() const noexcept { return fired_; }
  [[nodiscard]] const std::vector<Firing>& firings() const noexcept { return firings_; }

 private:
  InjectorConfig cfg_;
  Rng rng_{0};
  std::uint64_t visits_ = 0;
  std::uint64_t target_ = 0;
  std::size_t fired_ = 0;
  std::vector<Firing> firings_;
};

}  // namespace dyna::fault
