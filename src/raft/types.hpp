// Fundamental Raft vocabulary: terms, log indices, roles, log entries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace dyna::raft {

/// Monotonically increasing election epoch.
using Term = std::uint64_t;

/// 1-based log position; 0 means "before the first entry".
using LogIndex = std::uint64_t;

enum class Role : std::uint8_t {
  Follower,
  PreCandidate,  ///< running a pre-vote round (term not yet incremented)
  Candidate,
  Leader,
};

[[nodiscard]] constexpr std::string_view to_string(Role r) noexcept {
  switch (r) {
    case Role::Follower: return "follower";
    case Role::PreCandidate: return "pre-candidate";
    case Role::Candidate: return "candidate";
    case Role::Leader: return "leader";
  }
  return "?";
}

/// Single-server membership change carried inside a log entry. Applied when
/// the entry commits (apply-on-commit); one change may be in flight per
/// leader reign. Application is idempotent set arithmetic, so a restarted
/// node replaying its committed suffix converges to the same membership.
enum class ConfigChange : std::uint8_t {
  None = 0,
  AddVoter,    ///< target joins (or is promoted to) the voter set
  AddLearner,  ///< target joins as a non-voting learner (replicated, no vote)
  Promote,     ///< learner target becomes a voter
  Remove,      ///< target leaves the membership entirely
};

/// A client command as Raft sees it: opaque payload plus routing metadata so
/// the leader can answer the submitting client once the entry applies.
/// Entries with `config_change != None` are membership changes: the payload
/// stays empty and the apply hook is bypassed in favor of the node's own
/// configuration machinery.
struct Command {
  std::string payload;            ///< state-machine-specific serialization
  NodeId client = kNoNode;        ///< network endpoint to answer (if any)
  std::uint64_t client_seq = 0;   ///< client-chosen id echoed in the response
  ConfigChange config_change = ConfigChange::None;
  NodeId config_target = kNoNode;

  [[nodiscard]] bool is_noop() const noexcept {
    return payload.empty() && config_change == ConfigChange::None;
  }
  [[nodiscard]] bool is_config() const noexcept { return config_change != ConfigChange::None; }

  friend bool operator==(const Command&, const Command&) = default;
};

struct LogEntry {
  Term term = 0;
  LogIndex index = 0;
  Command command;

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

/// A state-machine snapshot: the serialized machine state as of applying
/// `last_index` (whose term is `last_term`). Immutable once built; shared by
/// handle so an in-flight InstallSnapshot copy is a reference-count bump, the
/// same ownership discipline EntryView uses for log segments.
struct Snapshot {
  LogIndex last_index = 0;
  Term last_term = 0;
  std::string data;  ///< state-machine-specific serialization
  /// Membership as of `last_index`, recorded (sorted) only once a config
  /// change has been applied; both empty means "founding membership" and
  /// keeps pre-churn snapshots byte-compatible with the legacy layout.
  std::vector<NodeId> voters;
  std::vector<NodeId> learners;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

using SnapshotHandle = std::shared_ptr<const Snapshot>;

}  // namespace dyna::raft
