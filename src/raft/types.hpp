// Fundamental Raft vocabulary: terms, log indices, roles, log entries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dyna::raft {

/// Monotonically increasing election epoch.
using Term = std::uint64_t;

/// 1-based log position; 0 means "before the first entry".
using LogIndex = std::uint64_t;

enum class Role : std::uint8_t {
  Follower,
  PreCandidate,  ///< running a pre-vote round (term not yet incremented)
  Candidate,
  Leader,
};

[[nodiscard]] constexpr std::string_view to_string(Role r) noexcept {
  switch (r) {
    case Role::Follower: return "follower";
    case Role::PreCandidate: return "pre-candidate";
    case Role::Candidate: return "candidate";
    case Role::Leader: return "leader";
  }
  return "?";
}

/// A client command as Raft sees it: opaque payload plus routing metadata so
/// the leader can answer the submitting client once the entry applies.
struct Command {
  std::string payload;            ///< state-machine-specific serialization
  NodeId client = kNoNode;        ///< network endpoint to answer (if any)
  std::uint64_t client_seq = 0;   ///< client-chosen id echoed in the response

  [[nodiscard]] bool is_noop() const noexcept { return payload.empty(); }

  friend bool operator==(const Command&, const Command&) = default;
};

struct LogEntry {
  Term term = 0;
  LogIndex index = 0;
  Command command;

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

/// A state-machine snapshot: the serialized machine state as of applying
/// `last_index` (whose term is `last_term`). Immutable once built; shared by
/// handle so an in-flight InstallSnapshot copy is a reference-count bump, the
/// same ownership discipline EntryView uses for log segments.
struct Snapshot {
  LogIndex last_index = 0;
  Term last_term = 0;
  std::string data;  ///< state-machine-specific serialization

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

using SnapshotHandle = std::shared_ptr<const Snapshot>;

}  // namespace dyna::raft
