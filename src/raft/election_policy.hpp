// Election-parameter policy: the seam where Dynatune plugs into Raft.
//
// The Raft node owns the mechanics (timers, heartbeat ids, timestamp echoes,
// RTT computation from echoes); the policy decides the *parameters*:
// the follower-side election timeout Et and the leader-side per-follower
// heartbeat interval h. The baseline static policy returns the configured
// constants; DynatunePolicy (src/dynatune) implements the paper's tuning.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "raft/message.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

class ElectionPolicy {
 public:
  virtual ~ElectionPolicy() = default;

  /// Election timeout Et this node should use right now as a follower.
  [[nodiscard]] virtual Duration election_timeout() const = 0;

  /// Heartbeat interval the leader should use toward `follower`.
  [[nodiscard]] virtual Duration heartbeat_interval(NodeId follower) const = 0;

  /// Follower side: heartbeat metadata arrived from the current leader.
  /// Returns the tuned h to piggyback on the response, if any.
  virtual std::optional<Duration> on_heartbeat_meta(NodeId /*leader*/,
                                                    const HeartbeatMeta& /*meta*/,
                                                    TimePoint /*now*/) {
    return std::nullopt;
  }

  /// Leader side: a follower piggybacked a tuned heartbeat interval.
  virtual void on_tuned_heartbeat(NodeId /*follower*/, Duration /*h*/) {}

  /// This node's election timer expired (real failure or false detection).
  /// Dynatune discards measurement state and falls back to defaults here.
  virtual void on_election_timeout() {}

  /// The node observed a (possibly new) leader for `term`.
  virtual void on_leader_changed(NodeId /*leader*/, Term /*term*/) {}

  /// This node just became leader: any per-follower leader-side state from a
  /// previous reign must reset.
  virtual void on_became_leader() {}

  /// Whether the harness may reuse this policy object across independent
  /// trials via reset_for_trial(). The safe default is false: an unknown
  /// (user-supplied) policy forces a fresh policy/node per trial instead of
  /// risking state leaking between trials.
  [[nodiscard]] virtual bool resettable_for_trial() const { return false; }

  /// Return to the freshly-constructed state, keeping buffer capacity.
  /// Called only when resettable_for_trial() is true.
  virtual void reset_for_trial() {}
};

/// Baseline policy: the static parameters every mainstream Raft deployment
/// uses (paper's "Raft" and "Raft-Low" variants).
class StaticPolicy final : public ElectionPolicy {
 public:
  StaticPolicy(Duration election_timeout, Duration heartbeat_interval)
      : et_(election_timeout), h_(heartbeat_interval) {}

  [[nodiscard]] Duration election_timeout() const override { return et_; }
  [[nodiscard]] Duration heartbeat_interval(NodeId) const override { return h_; }

  [[nodiscard]] bool resettable_for_trial() const override { return true; }
  void reset_for_trial() override {}  // stateless

 private:
  Duration et_;
  Duration h_;
};

}  // namespace dyna::raft
