// Always-on Raft safety invariant checker.
//
// A passive Observer attached by the Cluster to every node in every trial
// (tests, benches, and the sweep substrate alike), plus an end-of-trial deep
// audit driven by the harness. Violations are recorded, never thrown: a trial
// that breaks safety still completes and reports, so sweeps can count
// violations across thousands of trials.
//
// Streaming checks (per observer event, O(1) amortized):
//   * Election safety — at most one leader per term.
//   * Log matching / leader completeness witness — the first node to apply
//     index i registers fingerprint(term, command) in a commit table; every
//     later apply of i (any node, including post-restart replay) must match.
//   * Monotonic commit/apply — each node's applied indices are strictly
//     increasing between (re)starts.
//
// End-of-trial audit (O(total live log), run by Cluster::audit_invariants):
//   * Every entry still in any node's log at a committed index must match the
//     commit table (log matching across the cluster's final state).
//   * The current leader's log+snapshot must cover every committed index
//     (leader completeness).
//   * Replicas with equal last_applied must have byte-identical state-machine
//     serializations (applied-prefix equality).
//
// The fingerprint is 64-bit FNV-1a over (term, payload, config-change kind
// and target) with the low bit forced to 1 so 0 means "unset"; a divergent
// commit escaping detection needs a 63-bit collision.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "raft/observer.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

class InvariantChecker final : public Observer {
 public:
  struct Violation {
    std::string what;
  };

  /// Cap on stored violation descriptions (the count keeps incrementing).
  static constexpr std::size_t kMaxStored = 32;

  // ---- Streaming checks (Observer) ----

  void on_leader_established(NodeId leader, Term term, TimePoint when) override {
    const auto [it, inserted] = leader_by_term_.emplace(term, leader);
    if (!inserted && it->second != leader) {
      record("election safety: term " + std::to_string(term) + " has leaders " +
             std::to_string(it->second) + " and " + std::to_string(leader) + " at " +
             std::to_string(to_ms(when)) + "ms");
    }
  }

  void on_node_started(NodeId node, TimePoint /*when*/) override {
    applied_watermark_[node] = 0;
  }

  void on_entry_committed(NodeId node, const LogEntry& entry, TimePoint when) override {
    // Monotonic apply: strictly increasing between (re)starts. Gaps are fine
    // (snapshot install jumps the watermark forward).
    auto& mark = applied_watermark_[node];
    if (entry.index <= mark) {
      record("monotonic apply: node " + std::to_string(node) + " applied index " +
             std::to_string(entry.index) + " after " + std::to_string(mark) + " at " +
             std::to_string(to_ms(when)) + "ms");
    } else {
      mark = entry.index;
    }
    check_against_table(node, entry, "apply divergence");
    if (entry.index > max_committed_) max_committed_ = entry.index;
  }

  // ---- End-of-trial audit helpers (driven by Cluster::audit_invariants) ----

  /// Audit one log entry of a node's final state against the commit table.
  void audit_log_entry(NodeId node, const LogEntry& entry) {
    check_against_table(node, entry, "log divergence");
  }

  /// Leader completeness: the leader's reachable history (snapshot floor +
  /// log tail) must cover every index some replica applied.
  void audit_leader_coverage(NodeId leader, LogIndex last_log_index) {
    if (last_log_index < max_committed_) {
      record("leader completeness: leader " + std::to_string(leader) + " log ends at " +
             std::to_string(last_log_index) + " but index " + std::to_string(max_committed_) +
             " was applied somewhere");
    }
  }

  /// Applied-prefix equality: replicas at the same last_applied must agree on
  /// the serialized state machine.
  void audit_applied_state(NodeId node, LogIndex last_applied, const std::string& serialized) {
    const auto it = state_by_applied_.find(last_applied);
    if (it == state_by_applied_.end()) {
      state_by_applied_.emplace(last_applied, std::pair<NodeId, std::string>{node, serialized});
    } else if (it->second.second != serialized) {
      record("applied-prefix equality: nodes " + std::to_string(it->second.first) + " and " +
             std::to_string(node) + " diverge at last_applied " + std::to_string(last_applied));
    }
  }

  // ---- Results ----

  [[nodiscard]] bool ok() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept { return violations_; }
  [[nodiscard]] LogIndex max_committed() const noexcept { return max_committed_; }

  /// Wipe all trial state (called by the cluster between trials).
  void clear() {
    leader_by_term_.clear();
    applied_watermark_.clear();
    committed_.clear();
    state_by_applied_.clear();
    violations_.clear();
    count_ = 0;
    max_committed_ = 0;
  }

  /// 64-bit fingerprint of a log entry's identity (exposed for tests).
  [[nodiscard]] static std::uint64_t fingerprint(const LogEntry& entry) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001b3ULL;
      }
    };
    mix(static_cast<std::uint64_t>(entry.term));
    mix(static_cast<std::uint64_t>(entry.command.config_change));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(entry.command.config_target)));
    for (const char c : entry.command.payload) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    return h | 1;
  }

 private:
  void check_against_table(NodeId node, const LogEntry& entry, const char* kind) {
    if (entry.index == 0) return;
    const std::size_t slot = static_cast<std::size_t>(entry.index);
    if (committed_.size() <= slot) committed_.resize(slot + 1, 0);
    const std::uint64_t h = fingerprint(entry);
    if (committed_[slot] == 0) {
      committed_[slot] = h;
    } else if (committed_[slot] != h) {
      record(std::string(kind) + ": node " + std::to_string(node) + " holds a different entry at " +
             "committed index " + std::to_string(entry.index) + " (term " +
             std::to_string(entry.term) + ")");
    }
  }

  void record(std::string what) {
    ++count_;
    if (violations_.size() < kMaxStored) violations_.push_back(Violation{std::move(what)});
  }

  std::unordered_map<Term, NodeId> leader_by_term_;
  std::unordered_map<NodeId, LogIndex> applied_watermark_;
  /// Index-keyed fingerprints of applied entries; 0 = unset.
  std::vector<std::uint64_t> committed_;
  std::unordered_map<LogIndex, std::pair<NodeId, std::string>> state_by_applied_;
  std::vector<Violation> violations_;
  std::uint64_t count_ = 0;
  LogIndex max_committed_ = 0;
};

}  // namespace dyna::raft
