#include "raft/node.hpp"

#include <algorithm>
#include <utility>

// Group commit speaks the kv batch frame directly (batch_append /
// for_each_batch_result). The simulator has a single state-machine family;
// funnelling three framing callbacks through the cluster would buy no
// generality worth the indirection. Read classification stays a hook
// (set_read_hooks) because it genuinely belongs to the host.
#include "kvstore/command.hpp"

namespace dyna::raft {

namespace {

[[nodiscard]] inline MsgKind kind_of(const AppendEntriesRequest& r) {
  return r.is_heartbeat() ? MsgKind::Heartbeat : MsgKind::Append;
}
[[nodiscard]] inline MsgKind kind_of(const AppendEntriesResponse& r) {
  return r.heartbeat ? MsgKind::HeartbeatResponse : MsgKind::AppendResponse;
}
[[nodiscard]] inline MsgKind kind_of(const PreVoteRequest&) { return MsgKind::PreVote; }
[[nodiscard]] inline MsgKind kind_of(const PreVoteResponse&) { return MsgKind::PreVoteResponse; }
[[nodiscard]] inline MsgKind kind_of(const RequestVoteRequest&) { return MsgKind::Vote; }
[[nodiscard]] inline MsgKind kind_of(const RequestVoteResponse&) { return MsgKind::VoteResponse; }
[[nodiscard]] inline MsgKind kind_of(const InstallSnapshotRequest&) {
  return MsgKind::InstallSnapshot;
}
[[nodiscard]] inline MsgKind kind_of(const InstallSnapshotResponse&) {
  return MsgKind::InstallSnapshotResponse;
}
[[nodiscard]] inline MsgKind kind_of(const ClientRequest&) { return MsgKind::Client; }
[[nodiscard]] inline MsgKind kind_of(const ClientResponse&) { return MsgKind::ClientResponse; }

/// Kind and wire size of a message, computed in one variant dispatch (the
/// receive path needs both for traffic accounting).
struct MsgInfo {
  MsgKind kind;
  std::size_t bytes;
};

[[nodiscard]] MsgInfo info_of(const Message& m) {
  return std::visit([](const auto& p) { return MsgInfo{kind_of(p), approx_size(p)}; }, m);
}

}  // namespace

RaftNode::RaftNode(NodeId id, std::vector<NodeId> peers, sim::Simulator& simulator,
                   net::Network& network, RaftConfig config, std::shared_ptr<Storage> storage,
                   std::unique_ptr<ElectionPolicy> policy, Rng rng)
    : id_(id),
      peers_(std::move(peers)),
      sim_(&simulator),
      net_(&network),
      config_(config),
      storage_(std::move(storage)),
      policy_(std::move(policy)),
      rng_(std::move(rng)),
      election_timer_(simulator, [this] { with_crash_guard([this] { on_election_deadline(); }); }) {
  DYNA_EXPECTS(storage_ != nullptr);
  DYNA_EXPECTS(policy_ != nullptr);
  DYNA_EXPECTS(std::find(peers_.begin(), peers_.end(), id_) == peers_.end());
  for (const NodeId p : peers_) DYNA_EXPECTS(p >= 0);
  founding_peers_ = peers_;
  rebuild_peer_slots();
  peer_learner_.assign(peers_.size(), 0);
  peer_state_.resize(peers_.size());
}

void RaftNode::start() {
  DYNA_EXPECTS(!running_);
  auto [term, voted_for] = storage_->load_hard_state();
  term_ = term;
  voted_for_ = voted_for;
  // Recovery = snapshot + durable suffix: restore the state machine from the
  // persisted snapshot (if any) and replay only the entries behind it,
  // instead of the whole log from index 1.
  snapshot_ = storage_->load_snapshot();
  const auto [compacted_to, compacted_term] = storage_->log_start();
  log_.assign(compacted_to, compacted_term, storage_->load_log());
  if (snapshot_) {
    DYNA_ASSERT(snapshot_->last_index >= compacted_to);
    if (restore_) restore_(*snapshot_);
    commit_index_ = snapshot_->last_index;
    last_applied_ = snapshot_->last_index;
    // Membership as of the snapshot line; config entries in the replayed
    // suffix re-apply on commit and converge on the final roster.
    if (!snapshot_->voters.empty() || !snapshot_->learners.empty()) {
      install_membership(snapshot_->voters, snapshot_->learners);
    }
  }
  running_ = true;
  role_ = Role::Follower;
  leader_ = kNoNode;
  refresh_randomized_timeout(/*force_redraw=*/true);
  election_timer_.arm(randomized_timeout_);
  for (Observer* o : observers_) o->on_node_started(id_, sim_->now());
}

void RaftNode::stop() {
  running_ = false;
  election_timer_.cancel();
  if (flush_scheduled_) {
    // The flush lambda captures `this`; a crashed node may be destroyed
    // before the event fires, so it must not outlive the node.
    sim_->cancel(flush_event_);
    flush_scheduled_ = false;
    flush_event_ = sim::kInvalidEvent;
  }
  for (PeerState& ps : peer_state_) ps.heartbeat_timer.reset();
  broadcast_timer_.reset();
  // A crash drops accumulated-but-unsealed commands and pending reads on the
  // floor (clients recover via their own timeouts), exactly like unreplicated
  // log entries.
  batch_acc_.clear();
  batch_acc_bytes_ = 0;
  batch_routes_.clear();
  pending_reads_.clear();
}

void RaftNode::reset_for_trial(Rng rng) {
  DYNA_EXPECTS(policy_->resettable_for_trial());
  rng_ = std::move(rng);
  policy_->reset_for_trial();

  // Timer handles predate the simulator reset: forget them (cancelling could
  // hit an unrelated fresh event with a colliding slot/generation).
  election_timer_.forget();
  for (PeerState& ps : peer_state_) {
    if (ps.heartbeat_timer) ps.heartbeat_timer->forget();
    ps.heartbeat_timer.reset();
    ps = PeerState{};
  }
  if (broadcast_timer_) broadcast_timer_->forget();
  broadcast_timer_.reset();

  // Membership changes are trial state: return to the founding roster.
  if (membership_changed_ || peers_.size() != founding_peers_.size()) {
    peers_ = founding_peers_;
    rebuild_peer_slots();
    peer_state_.resize(peers_.size());
  }
  peer_learner_.assign(peers_.size(), 0);
  self_learner_ = false;
  left_ = false;
  membership_changed_ = false;
  pending_config_ = 0;

  // Persistent-state mirrors and the log: start() reloads them from the
  // (reset) storage; clearing here keeps the segment store's tail capacity.
  term_ = 0;
  voted_for_ = kNoNode;
  snapshot_.reset();  // the trial's snapshot blob must not leak into the next
  snapshots_taken_ = 0;

  role_ = Role::Follower;
  leader_ = kNoNode;
  commit_index_ = 0;
  last_applied_ = 0;
  running_ = false;
  paused_ = false;

  randomized_timeout_ = Duration{};
  randomized_base_ = Duration{};
  last_leader_contact_ = kSimEpoch;

  prevote_target_ = 0;
  prevote_grants_.clear();
  vote_grants_.clear();

  // Like the timer handles above: the event predates the simulator reset, so
  // forget the handle rather than cancel through it.
  flush_scheduled_ = false;
  flush_event_ = sim::kInvalidEvent;
  match_scratch_.clear();
  frozen_election_remaining_.reset();
  frozen_broadcast_remaining_.reset();

  batch_acc_.clear();
  batch_acc_bytes_ = 0;
  batch_routes_.clear();
  batches_sealed_ = 0;
  batched_commands_ = 0;
  pending_reads_.clear();
  barrier_clock_ = 0;
  reads_served_ = 0;
}

void RaftNode::add_observer(Observer* observer) {
  DYNA_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

std::optional<Duration> RaftNode::last_measured_rtt(NodeId follower) const {
  const int slot = peer_slot(follower);
  if (slot < 0 || !peer_state_[static_cast<std::size_t>(slot)].has_rtt) return std::nullopt;
  return peer_state_[static_cast<std::size_t>(slot)].last_rtt;
}

// ---- Pause / resume ("container sleep") --------------------------------------

void RaftNode::pause() {
  if (paused_ || !running_) return;
  paused_ = true;
  const TimePoint now = sim_->now();
  if (election_timer_.armed()) {
    frozen_election_remaining_ = election_timer_.deadline() - now;
    election_timer_.cancel();
  }
  for (PeerState& ps : peer_state_) {
    if (ps.heartbeat_timer && ps.heartbeat_timer->armed()) {
      ps.frozen_heartbeat_remaining = ps.heartbeat_timer->deadline() - now;
      ps.heartbeat_frozen = true;
      ps.heartbeat_timer->cancel();
    }
  }
  if (broadcast_timer_ && broadcast_timer_->armed()) {
    frozen_broadcast_remaining_ = broadcast_timer_->deadline() - now;
    broadcast_timer_->cancel();
  }
}

void RaftNode::resume() {
  if (!paused_ || !running_) return;
  paused_ = false;
  if (frozen_election_remaining_) {
    election_timer_.arm(*frozen_election_remaining_);
    frozen_election_remaining_.reset();
  } else if (role_ != Role::Leader) {
    reset_election_timer();
  }
  for (PeerState& ps : peer_state_) {
    if (ps.heartbeat_frozen) {
      if (ps.heartbeat_timer) ps.heartbeat_timer->arm(ps.frozen_heartbeat_remaining);
      ps.heartbeat_frozen = false;
    }
  }
  if (frozen_broadcast_remaining_ && broadcast_timer_) {
    broadcast_timer_->arm(*frozen_broadcast_remaining_);
  }
  frozen_broadcast_remaining_.reset();
}

// ---- Timers -------------------------------------------------------------------

Duration RaftNode::draw_randomized_timeout(Duration base) {
  // randomizedTimeout is uniform in [Et, 2*Et). etcd counts in ticks, so with
  // a coarse tick the draw is quantized (baseline: 100 ms steps).
  if (config_.tick > Duration{0} && base >= config_.tick) {
    const auto ticks = static_cast<std::uint64_t>(base.count() / config_.tick.count());
    const std::uint64_t randomized = ticks + rng_.uniform_index(ticks);
    return config_.tick * static_cast<std::int64_t>(randomized);
  }
  const double base_ms = to_ms(base);
  return from_ms(base_ms + rng_.uniform(0.0, base_ms));
}

void RaftNode::refresh_randomized_timeout(bool force_redraw) {
  const Duration base = policy_->election_timeout();
  // Hysteresis: retuning shifts Et by a hair on every heartbeat (fresh RTT
  // sample); redrawing for sub-2% changes would churn the randomization for
  // no benefit. Structural changes (RTT steps, fallback) always exceed it.
  const auto delta = base > randomized_base_ ? base - randomized_base_ : randomized_base_ - base;
  if (force_redraw || delta * 50 > base) {
    randomized_base_ = base;
    randomized_timeout_ = draw_randomized_timeout(base);
  }
}

void RaftNode::reset_election_timer() {
  refresh_randomized_timeout(/*force_redraw=*/false);
  election_timer_.arm(randomized_timeout_);
}

void RaftNode::on_election_deadline() {
  if (!running_ || paused_) return;
  if (role_ == Role::Leader) return;  // stale (leaders cancel this timer)
  // Learners and removed servers never campaign. The timer stays quiet until
  // leader contact re-arms it (or a Promote entry restores candidacy).
  if (self_learner_ || left_) return;

  for (Observer* o : observers_) o->on_election_timeout(id_, term_, sim_->now());
  // Dynatune: discard measurement state, fall back to conservative defaults.
  policy_->on_election_timeout();
  leader_ = kNoNode;

  if (config_.prevote) {
    start_prevote();
  } else {
    start_election();
  }
}

// ---- Role transitions -----------------------------------------------------------

void RaftNode::notify_role_change(Role from, Role to) {
  if (from == to) return;
  for (Observer* o : observers_) o->on_role_change(id_, from, to, term_, sim_->now());
}

void RaftNode::become_follower(Term term, NodeId leader) {
  const Role old_role = role_;
  DYNA_EXPECTS(term >= term_);
  const bool term_changed = term > term_;
  if (term_changed) {
    term_ = term;
    voted_for_ = kNoNode;
    persist_hard_state();
  }
  role_ = Role::Follower;
  if (leader != kNoNode && leader != leader_) {
    leader_ = leader;
    policy_->on_leader_changed(leader, term_);
  } else if (leader != kNoNode) {
    leader_ = leader;
  } else if (term_changed) {
    leader_ = kNoNode;
  }
  prevote_target_ = 0;  // grants gathered before this step-down are void
  prevote_grants_.clear();
  vote_grants_.clear();
  for (PeerState& ps : peer_state_) ps.heartbeat_timer.reset();
  broadcast_timer_.reset();
  fail_pending_client_work();
  notify_role_change(old_role, role_);
  if (term_changed || old_role != Role::Follower) {
    refresh_randomized_timeout(/*force_redraw=*/true);
  }
  reset_election_timer();
}

void RaftNode::start_prevote() {
  const Role old_role = role_;
  role_ = Role::PreCandidate;
  notify_role_change(old_role, role_);
  // Grants accumulate across retry rounds for the same prospective term;
  // they only reset when the target term moves.
  if (prevote_target_ != term_ + 1) {
    prevote_target_ = term_ + 1;
    prevote_grants_.clear();
  }
  prevote_grants_.insert(id_);
  // Fresh randomized draw for the retry round (the paper's "randomizes ...
  // each time a timeout occurs").
  refresh_randomized_timeout(/*force_redraw=*/true);
  election_timer_.arm(randomized_timeout_);
  if (prevote_grants_.size() >= majority()) {
    start_election();
    return;
  }
  PreVoteRequest req;
  req.term = prevote_target_;
  req.candidate = id_;
  req.last_log_index = last_log_index();
  req.last_log_term = term_at(last_log_index());
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    if (peer_learner_[slot] != 0) continue;  // learners hold no vote
    send(peers_[slot], req, net::Transport::Reliable, MsgKind::PreVote);
  }
}

void RaftNode::start_election() {
  const Role old_role = role_;
  role_ = Role::Candidate;
  ++term_;
  voted_for_ = id_;
  persist_hard_state();
  leader_ = kNoNode;
  vote_grants_.clear();
  vote_grants_.insert(id_);
  notify_role_change(old_role, role_);
  refresh_randomized_timeout(/*force_redraw=*/true);
  election_timer_.arm(randomized_timeout_);
  if (vote_grants_.size() >= majority()) {
    become_leader();
    return;
  }
  RequestVoteRequest req;
  req.term = term_;
  req.candidate = id_;
  req.last_log_index = last_log_index();
  req.last_log_term = term_at(last_log_index());
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    if (peer_learner_[slot] != 0) continue;  // learners hold no vote
    send(peers_[slot], req, net::Transport::Reliable, MsgKind::Vote);
  }
}

void RaftNode::become_leader() {
  DYNA_EXPECTS(role_ == Role::Candidate);
  const Role old_role = role_;
  role_ = Role::Leader;
  leader_ = id_;
  notify_role_change(old_role, role_);
  for (Observer* o : observers_) o->on_leader_established(id_, term_, sim_->now());
  policy_->on_became_leader();

  election_timer_.cancel();
  for (PeerState& ps : peer_state_) {
    ps = PeerState{};  // fresh reign: no match, no RTT, no suppression state
    ps.next_index = last_log_index() + 1;
  }

  // Inherit any uncommitted config change from an earlier reign: the
  // one-in-flight rule spans leaders, not reigns.
  pending_config_ = 0;
  if (commit_index_ < last_log_index()) {
    log_.for_each(commit_index_ + 1, last_log_index(), [this](const LogEntry& entry) {
      if (entry.command.is_config()) pending_config_ = entry.index;
    });
  }

  // Commit a no-op for the new term so earlier-term entries become
  // committable (Raft §5.4.2).
  LogEntry noop;
  noop.term = term_;
  noop.index = last_log_index() + 1;
  const LogEntry& appended = log_.append(std::move(noop));
  persist_append(std::span<const LogEntry>(&appended, 1));

  for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) {
    replicate_to(slot);
  }
  maybe_advance_commit();
  arm_heartbeat_timers();
}

// ---- Leader machinery ------------------------------------------------------------

void RaftNode::arm_heartbeat_timers() {
  if (config_.per_follower_heartbeat) {
    for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
      auto timer = std::make_unique<sim::Timer>(*sim_, [this, slot] {
        with_crash_guard([this, slot] {
          if (role_ != Role::Leader || !running_ || paused_) return;
          send_heartbeat(slot);
          PeerState& ps = peer_state_[slot];
          if (ps.heartbeat_timer) {
            ps.heartbeat_timer->arm(policy_->heartbeat_interval(peers_[slot]));
          }
        });
      });
      // Stagger the initial phase per follower: real per-follower timers are
      // desynchronized, and keeping them so prevents every follower's
      // election timer from being reset in lockstep (which would manufacture
      // artificial split-vote storms on leader failure).
      const Duration h = policy_->heartbeat_interval(peers_[slot]);
      timer->arm(h / 2 + from_ms(to_ms(h) * 0.5 * rng_.uniform()));
      peer_state_[slot].heartbeat_timer = std::move(timer);
    }
  } else {
    broadcast_timer_ = std::make_unique<sim::Timer>(*sim_, [this] {
      with_crash_guard([this] {
        if (role_ != Role::Leader || !running_ || paused_) return;
        broadcast_heartbeats();
        broadcast_timer_->arm(broadcast_interval());
      });
    });
    broadcast_timer_->arm(broadcast_interval());
  }
}

Duration RaftNode::broadcast_interval() const {
  if (!config_.consolidated_heartbeat_timer) return config_.heartbeat_interval;
  // §IV-E (b): one timer paced at the minimum tuned h across followers, so
  // every path still receives at least its required heartbeat rate.
  Duration min_h = config_.heartbeat_interval;
  for (const NodeId peer : peers_) {
    min_h = std::min(min_h, policy_->heartbeat_interval(peer));
  }
  return std::max(min_h, Duration(std::chrono::milliseconds(1)));
}

void RaftNode::broadcast_heartbeats() {
  for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) send_heartbeat(slot);
}

void RaftNode::send_heartbeat(std::size_t slot) {
  if (role_ != Role::Leader) return;
  PeerState& ps = peer_state_[slot];
  const NodeId follower = peers_[slot];
  // Heartbeats double as replication retries: if the follower is behind,
  // ship entries instead of an empty beat.
  if (ps.next_index <= last_log_index()) {
    replicate_to(slot);
    return;
  }
  // §IV-E (a): replication traffic within the current interval already reset
  // the follower's election timer — skip the redundant empty beat.
  if (config_.suppress_heartbeats_under_load && ps.last_sent != kNever &&
      sim_->now() - ps.last_sent < policy_->heartbeat_interval(follower)) {
    return;
  }
  AppendEntriesRequest req;
  req.term = term_;
  req.leader = id_;
  req.prev_log_index = last_log_index();
  req.prev_log_term = term_at(req.prev_log_index);
  req.leader_commit = commit_index_;
  req.read_barrier = barrier_clock_;  // 0 unless ReadIndex is live
  if (config_.measure_network) {
    HeartbeatMeta meta;
    meta.id = ++ps.next_heartbeat_id;
    meta.send_ts = sim_->now();
    if (ps.has_rtt) meta.measured_rtt = ps.last_rtt;
    req.meta = meta;
  }
  const auto transport =
      config_.datagram_heartbeats ? net::Transport::Datagram : net::Transport::Reliable;
  ps.last_sent = sim_->now();
  send(follower, std::move(req), transport, MsgKind::Heartbeat);
}

void RaftNode::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  flush_event_ = sim_->schedule_after(config_.batch_delay, [this] {
    flush_scheduled_ = false;
    flush_event_ = sim::kInvalidEvent;
    with_crash_guard([this] {
      if (!running_ || paused_) return;
      seal_batch();
      flush_replication();
      send_read_probes();
    });
  });
}

void RaftNode::flush_replication() {
  if (role_ != Role::Leader) return;
  for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) {
    if (peer_state_[slot].next_index <= last_log_index()) replicate_to(slot);
  }
  maybe_advance_commit();
}

void RaftNode::replicate_to(std::size_t slot) {
  DYNA_EXPECTS(role_ == Role::Leader);
  PeerState& ps = peer_state_[slot];
  const LogIndex next = ps.next_index;
  if (next <= log_.compacted_to()) {
    // The entries this follower needs are gone (compacted): ship the whole
    // snapshot instead. Every replication path funnels through here —
    // heartbeat retries, flushes and rejection rewinds alike.
    send_install_snapshot(slot);
    return;
  }
  AppendEntriesRequest req;
  req.term = term_;
  req.leader = id_;
  req.prev_log_index = next - 1;
  req.prev_log_term = term_at(req.prev_log_index);
  req.leader_commit = commit_index_;
  req.read_barrier = barrier_clock_;  // 0 unless ReadIndex is live
  const LogIndex last = last_log_index();
  if (next <= last) {
    const std::size_t count =
        std::min<std::size_t>(last - next + 1, config_.max_entries_per_append);
    // Shared view into the segment store: the first request of a broadcast
    // round seals the fresh suffix (a move); every later follower aliases
    // the same immutable segment. No per-follower entry copies.
    req.entries = log_.view(next, count);
    // Pipeline optimistically; rejections rewind next_index below.
    ps.next_index = next + count;
  }
  const MsgKind kind = req.entries.empty() ? MsgKind::Heartbeat : MsgKind::Append;
  ps.last_sent = sim_->now();
  send(peers_[slot], std::move(req), net::Transport::Reliable, kind);
}

void RaftNode::send_install_snapshot(std::size_t slot) {
  DYNA_EXPECTS(role_ == Role::Leader);
  // A compacted prefix implies a snapshot covering it (compaction only ever
  // happens behind a freshly persisted snapshot).
  DYNA_ASSERT(snapshot_ != nullptr && snapshot_->last_index >= log_.compacted_to());
  PeerState& ps = peer_state_[slot];
  InstallSnapshotRequest req;
  req.term = term_;
  req.leader = id_;
  req.snapshot = snapshot_;  // handle copy: the blob itself is never duplicated
  // Pipeline optimistically, like replicate_to; the response (or a later
  // rejection) corrects next_index if the transfer did not take.
  ps.next_index = snapshot_->last_index + 1;
  ps.last_sent = sim_->now();
  send(peers_[slot], std::move(req), net::Transport::Reliable, MsgKind::InstallSnapshot);
}

void RaftNode::maybe_advance_commit() {
  if (role_ != Role::Leader) return;
  // Exact O(n) pre-check: the majority-th largest match can only exceed
  // commit_index_ when at least `majority` replicas (leader included) match
  // beyond it. The idle heartbeat path used to allocate and sort an n-wide
  // vector on every response; now it is one predictable array walk.
  std::size_t above = last_log_index() > commit_index_ ? 1 : 0;
  for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) {
    if (peer_learner_[slot] != 0) continue;  // learners replicate, never count
    if (peer_state_[slot].match_index > commit_index_) ++above;
  }
  if (above < majority()) return;

  match_scratch_.clear();
  match_scratch_.push_back(last_log_index());  // leader matches itself
  for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) {
    if (peer_learner_[slot] != 0) continue;
    match_scratch_.push_back(peer_state_[slot].match_index);
  }
  const auto kth = match_scratch_.begin() + static_cast<std::ptrdiff_t>(majority() - 1);
  std::nth_element(match_scratch_.begin(), kth, match_scratch_.end(), std::greater<>());
  const LogIndex candidate = *kth;
  if (candidate > commit_index_ && term_at(candidate) == term_) {
    commit_index_ = candidate;
    apply_committed();
  }
}

void RaftNode::apply_committed() {
  // Walk [last_applied_+1, commit_index_] as contiguous runs. Applying an
  // entry cannot re-enter the log or move commit_index_ synchronously
  // (sends only schedule events), so one pass per call suffices.
  if (last_applied_ >= commit_index_) return;
  const LogIndex from = last_applied_ + 1;
  const LogIndex to = commit_index_;
  log_.for_each(from, to, [&](const LogEntry& entry) {
    ++last_applied_;
    std::string result;
    if (entry.command.is_config()) {
      apply_config_change(entry);
    } else if (apply_ && !entry.command.is_noop()) {
      result = apply_(entry);
    }
    for (Observer* o : observers_) o->on_entry_committed(id_, entry, sim_->now());
    if (role_ == Role::Leader && !batch_routes_.empty() &&
        batch_routes_.front().index == entry.index) {
      // Group-commit fan-out: one committed batch entry completes every
      // member individually. The state machine returned member results in
      // the frame's length-prefixed framing and order; the front route maps
      // them back to (client, seq). Routes die with the reign (see
      // fail_pending_client_work), so a front match is always ours.
      BatchRoute route = std::move(batch_routes_.front());
      batch_routes_.pop_front();
      std::size_t member = 0;
      const bool ok = kv::for_each_batch_result(result, [&](std::string_view one) {
        DYNA_ASSERT(member < route.members.size());
        ClientResponse resp;
        resp.ok = true;
        resp.leader_hint = id_;
        resp.client_seq = route.members[member].second;
        resp.index = entry.index;
        resp.result = std::string(one);
        send(route.members[member].first, std::move(resp), net::Transport::Reliable,
             MsgKind::ClientResponse);
        ++member;
      });
      DYNA_ASSERT(ok && member == route.members.size());
    } else if (role_ == Role::Leader && entry.command.client != kNoNode) {
      ClientResponse resp;
      resp.ok = true;
      resp.leader_hint = id_;
      resp.client_seq = entry.command.client_seq;
      resp.index = entry.index;
      resp.result = std::move(result);
      send(entry.command.client, std::move(resp), net::Transport::Reliable,
           MsgKind::ClientResponse);
    }
  });
  if (left_ && role_ == Role::Leader) {
    // A committed Remove for this node applied: the entry is replicated, so
    // the rest of the cluster can elect without us — abdicate.
    become_follower(term_, kNoNode);
    return;
  }
  drain_reads();  // the apply watermark moved; waiting reads may now be servable
  maybe_take_snapshot();
}

void RaftNode::maybe_take_snapshot() {
  // Compaction policy: once more than `snapshot_threshold` applied entries
  // sit behind the last compaction point, fold them into a snapshot and drop
  // the log prefix, keeping `snapshot_trailing` entries so slightly-lagging
  // followers still catch up via AppendEntries. Never called mid-apply: the
  // walk in apply_committed has finished, so the state machine is exactly at
  // last_applied_.
  if (config_.snapshot_threshold == 0 || !snapshot_fn_) return;
  if (last_applied_ - log_.compacted_to() < config_.snapshot_threshold) return;
  auto snap = std::make_shared<Snapshot>();
  snap->last_index = last_applied_;
  snap->last_term = log_.term_at(last_applied_);
  snap->data = snapshot_fn_();
  if (membership_changed_) {
    // Record the roster as of last_applied_ (sorted for determinism) so a
    // snapshot-led recovery rejoins the post-churn membership. Pre-churn
    // snapshots stay byte-identical to the legacy layout.
    if (!self_learner_ && !left_) snap->voters.push_back(id_);
    if (self_learner_ && !left_) snap->learners.push_back(id_);
    for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
      (peer_learner_[slot] != 0 ? snap->learners : snap->voters).push_back(peers_[slot]);
    }
    std::sort(snap->voters.begin(), snap->voters.end());
    std::sort(snap->learners.begin(), snap->learners.end());
  }
  snapshot_ = std::move(snap);
  crash_point(fault::CrashPoint::BeforeSnapshotInstall);
  storage_->save_snapshot(snapshot_);
  crash_point(fault::CrashPoint::AfterSnapshotInstall);
  ++snapshots_taken_;
  const LogIndex keep = std::min<LogIndex>(config_.snapshot_trailing, last_applied_);
  const LogIndex cut = last_applied_ - keep;
  if (cut > log_.compacted_to()) {
    const Term cut_term = log_.term_at(cut);
    log_.compact_to(cut, cut_term);
    storage_->compact_log_to(cut, cut_term);
  }
}

// ---- Message dispatch --------------------------------------------------------------

void RaftNode::handle_message(NodeId from, const Message& message) {
  if (!running_ || paused_) return;
  with_crash_guard([&] { dispatch_message(from, message); });
}

void RaftNode::dispatch_message(NodeId from, const Message& message) {
  const MsgInfo info = info_of(message);
  for (Observer* o : observers_) {
    o->on_message_received(id_, from, info.kind, info.bytes, sim_->now());
  }
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AppendEntriesRequest>) {
          on_append_entries(from, m);
        } else if constexpr (std::is_same_v<T, AppendEntriesResponse>) {
          on_append_response(from, m);
        } else if constexpr (std::is_same_v<T, PreVoteRequest>) {
          on_prevote_request(from, m);
        } else if constexpr (std::is_same_v<T, PreVoteResponse>) {
          on_prevote_response(from, m);
        } else if constexpr (std::is_same_v<T, RequestVoteRequest>) {
          on_vote_request(from, m);
        } else if constexpr (std::is_same_v<T, RequestVoteResponse>) {
          on_vote_response(from, m);
        } else if constexpr (std::is_same_v<T, InstallSnapshotRequest>) {
          on_install_snapshot(from, m);
        } else if constexpr (std::is_same_v<T, InstallSnapshotResponse>) {
          on_install_snapshot_response(from, m);
        } else if constexpr (std::is_same_v<T, ClientRequest>) {
          on_client_request(from, m);
        } else {
          static_assert(std::is_same_v<T, ClientResponse>, "unhandled message type");
          // Raft servers do not consume client responses; ignore.
        }
      },
      message);
}

void RaftNode::send(NodeId to, Message message, net::Transport transport, MsgKind kind) {
  if (!running_ || paused_) return;
  crash_point(fault::CrashPoint::PreSend);
  const std::size_t bytes = approx_size(message);
  for (Observer* o : observers_) o->on_message_sent(id_, to, kind, bytes, sim_->now());
  net_->send(id_, to, std::move(message), transport, bytes);
}

// ---- AppendEntries ---------------------------------------------------------------

void RaftNode::on_append_entries(NodeId from, const AppendEntriesRequest& req) {
  AppendEntriesResponse resp;
  resp.heartbeat = req.is_heartbeat();

  const MsgKind resp_kind =
      resp.heartbeat ? MsgKind::HeartbeatResponse : MsgKind::AppendResponse;

  if (req.term < term_) {
    resp.term = term_;
    resp.success = false;
    resp.conflict_hint = last_log_index() + 1;
    send(from, std::move(resp), net::Transport::Reliable, resp_kind);
    return;
  }

  // Valid leader for req.term: adopt it. Two leaders can never share a term.
  DYNA_ASSERT(!(role_ == Role::Leader && req.term == term_));
  if (req.term > term_ || role_ != Role::Follower || leader_ != req.leader) {
    become_follower(req.term, req.leader);
  } else {
    leader_ = req.leader;
  }
  last_leader_contact_ = sim_->now();
  reset_election_timer();

  resp.term = term_;
  // ReadIndex: echo the barrier on every same-term response — even a log
  // mismatch confirms we regard the sender as leader for this term, which is
  // all the quorum leadership check needs.
  resp.barrier_ack = req.read_barrier;

  // Consistency check. Anything at or below the compaction point is covered
  // by the snapshot — committed state, which matches the leader's by Raft
  // safety — so only a prev_log_index above it needs a term comparison.
  if (req.prev_log_index > last_log_index()) {
    resp.success = false;
    resp.conflict_hint = last_log_index() + 1;
  } else if (req.prev_log_index > log_.compacted_to() &&
             term_at(req.prev_log_index) != req.prev_log_term) {
    // Back off to the first index of the conflicting term (never past the
    // snapshot line — everything behind it is settled).
    const Term conflict_term = term_at(req.prev_log_index);
    LogIndex hint = req.prev_log_index;
    while (hint > log_.first_index() && term_at(hint - 1) == conflict_term) --hint;
    resp.success = false;
    resp.conflict_hint = hint;
  } else {
    if (!req.entries.empty() && req.entries.first_index() == last_log_index() + 1) {
      // Pure append (the steady-state case): adopt the leader's immutable
      // segment by reference — the follower's copy of this suffix IS the
      // leader's materialization, shared cluster-wide.
      log_.append_view(req.entries);
      persist_append(std::span<const LogEntry>(req.entries.begin(), req.entries.size()));
    } else {
      // Overlap with what we already hold: append genuinely new entries,
      // truncating on divergence, entry by entry.
      for (const LogEntry& entry : req.entries) {
        if (entry.index <= log_.compacted_to()) continue;  // behind the snapshot
        if (entry.index <= last_log_index()) {
          if (term_at(entry.index) != entry.term) {
            storage_->truncate_from(entry.index);
            log_.truncate_from(entry.index);
            const LogEntry& appended = log_.append(entry);
            persist_append(std::span<const LogEntry>(&appended, 1));
          }
          // else: duplicate of what we already hold — skip.
        } else {
          DYNA_ASSERT(entry.index == last_log_index() + 1);
          const LogEntry& appended = log_.append(entry);
          persist_append(std::span<const LogEntry>(&appended, 1));
        }
      }
    }
    resp.success = true;
    resp.match_index = req.prev_log_index + req.entries.size();
    const LogIndex new_commit = std::min<LogIndex>(req.leader_commit, resp.match_index);
    if (new_commit > commit_index_) {
      commit_index_ = new_commit;
      apply_committed();
    }
  }

  // Dynatune measurement: echo the stamp, ride the tuned h back.
  if (req.meta) {
    resp.echo_id = req.meta->id;
    resp.echo_send_ts = req.meta->send_ts;
    resp.tuned_heartbeat = policy_->on_heartbeat_meta(req.leader, *req.meta, sim_->now());
    if (resp.tuned_heartbeat) {
      for (Observer* o : observers_) {
        o->on_params_tuned(id_, policy_->election_timeout(), *resp.tuned_heartbeat, sim_->now());
      }
    }
    // The policy may have just retuned Et; re-randomize the pending deadline
    // if its base changed (Dynatune applies tuned Et immediately).
    reset_election_timer();
  }

  const bool datagram = resp.heartbeat && config_.datagram_heartbeats;
  send(from, std::move(resp), datagram ? net::Transport::Datagram : net::Transport::Reliable,
       resp_kind);
}

void RaftNode::on_append_response(NodeId from, const AppendEntriesResponse& resp) {
  if (resp.term > term_) {
    become_follower(resp.term, kNoNode);
    return;
  }
  if (role_ != Role::Leader || resp.term < term_) return;
  const int slot = peer_slot(from);
  if (slot < 0) return;  // stranger: not one of our peers
  PeerState& ps = peer_state_[static_cast<std::size_t>(slot)];

  // Measurement: RTT from the echoed leader-local timestamp (clock-skew free).
  if (resp.echo_send_ts) {
    ps.last_rtt = sim_->now() - *resp.echo_send_ts;
    ps.has_rtt = true;
  }
  if (resp.tuned_heartbeat) {
    policy_->on_tuned_heartbeat(from, *resp.tuned_heartbeat);
    // If the freshly tuned interval is shorter than the pending deadline
    // allows, bring the next beat forward (the paper applies h immediately).
    if (config_.per_follower_heartbeat && ps.heartbeat_timer && ps.heartbeat_timer->armed()) {
      const TimePoint earliest = sim_->now() + *resp.tuned_heartbeat;
      if (ps.heartbeat_timer->deadline() > earliest) ps.heartbeat_timer->arm_at(earliest);
    }
  }

  // ReadIndex: record the highest barrier this follower has echoed. Update
  // before maybe_advance_commit so a drain triggered by the commit advance
  // already sees this ack.
  if (resp.barrier_ack > ps.acked_barrier) ps.acked_barrier = resp.barrier_ack;

  if (resp.success) {
    ps.match_index = std::max(ps.match_index, resp.match_index);
    ps.next_index = std::max(ps.next_index, resp.match_index + 1);
    maybe_advance_commit();
  } else {
    // Rejection: rewind and retry immediately. When the rewind lands behind
    // the compaction point, replicate_to escalates to InstallSnapshot.
    const LogIndex hint = std::max<LogIndex>(1, resp.conflict_hint);
    ps.next_index = std::min(ps.next_index, hint);
    if (ps.next_index <= last_log_index()) replicate_to(static_cast<std::size_t>(slot));
  }
  if (!pending_reads_.empty()) drain_reads();
}

// ---- InstallSnapshot -------------------------------------------------------------

void RaftNode::on_install_snapshot(NodeId from, const InstallSnapshotRequest& req) {
  DYNA_EXPECTS(req.snapshot != nullptr);
  InstallSnapshotResponse resp;
  if (req.term < term_) {
    resp.term = term_;
    resp.success = false;
    send(from, std::move(resp), net::Transport::Reliable, MsgKind::InstallSnapshotResponse);
    return;
  }
  if (req.term > term_ || role_ != Role::Follower || leader_ != req.leader) {
    become_follower(req.term, req.leader);
  } else {
    leader_ = req.leader;
  }
  last_leader_contact_ = sim_->now();
  reset_election_timer();
  resp.term = term_;

  const Snapshot& snap = *req.snapshot;
  if (snap.last_index <= commit_index_) {
    // Stale transfer (a race with an AppendEntries catch-up that already
    // committed past it): everything it covers we already hold and applied.
    resp.success = true;
    resp.last_index = snap.last_index;
  } else {
    crash_point(fault::CrashPoint::BeforeSnapshotInstall);
    if (restore_) restore_(snap);
    snapshot_ = req.snapshot;  // adopt the shared handle; no blob copy
    storage_->save_snapshot(snapshot_);
    if (snap.last_index <= last_log_index() &&
        log_.term_at(snap.last_index) == snap.last_term) {
      // Our log extends past the snapshot and agrees with it: keep the
      // suffix, drop only the covered prefix.
      log_.compact_to(snap.last_index, snap.last_term);
      storage_->compact_log_to(snap.last_index, snap.last_term);
    } else {
      // Behind or divergent: the snapshot replaces the whole log.
      log_.install(snap.last_index, snap.last_term);
      storage_->reset_log(snap.last_index, snap.last_term);
    }
    commit_index_ = snap.last_index;
    last_applied_ = snap.last_index;
    if (!snap.voters.empty() || !snap.learners.empty()) {
      install_membership(snap.voters, snap.learners);
    }
    crash_point(fault::CrashPoint::AfterSnapshotInstall);
    resp.success = true;
    resp.last_index = snap.last_index;
  }
  send(from, std::move(resp), net::Transport::Reliable, MsgKind::InstallSnapshotResponse);
}

void RaftNode::on_install_snapshot_response(NodeId from, const InstallSnapshotResponse& resp) {
  if (resp.term > term_) {
    become_follower(resp.term, kNoNode);
    return;
  }
  if (role_ != Role::Leader || resp.term < term_ || !resp.success) return;
  const int slot = peer_slot(from);
  if (slot < 0) return;  // stranger: not one of our peers
  PeerState& ps = peer_state_[static_cast<std::size_t>(slot)];
  ps.match_index = std::max(ps.match_index, resp.last_index);
  ps.next_index = std::max(ps.next_index, resp.last_index + 1);
  maybe_advance_commit();
  if (ps.next_index <= last_log_index()) replicate_to(static_cast<std::size_t>(slot));
}

// ---- Pre-vote ----------------------------------------------------------------------

bool RaftNode::heard_from_leader_recently() const {
  if (leader_ == kNoNode || leader_ == id_) return false;
  return (sim_->now() - last_leader_contact_) < policy_->election_timeout();
}

void RaftNode::on_prevote_request(NodeId from, const PreVoteRequest& req) {
  PreVoteResponse resp;
  resp.term = term_;
  resp.target_term = req.term;
  // Grant iff the candidate could plausibly win: its log is up to date, its
  // prospective term is not behind ours, and we ourselves have lost the
  // leader (leader stickiness — the key to surviving RTT spikes).
  resp.granted = !self_learner_ && !left_ && req.term >= term_ &&
                 log_up_to_date(req.last_log_index, req.last_log_term) &&
                 !heard_from_leader_recently();
  send(from, std::move(resp), net::Transport::Reliable, MsgKind::PreVoteResponse);
}

void RaftNode::on_prevote_response(NodeId from, const PreVoteResponse& resp) {
  if (resp.term > term_) {
    become_follower(resp.term, kNoNode);
    return;
  }
  if (role_ != Role::PreCandidate || resp.target_term != prevote_target_) return;
  if (!resp.granted) return;
  prevote_grants_.insert(from);
  if (prevote_grants_.size() >= majority()) {
    start_election();
  }
}

// ---- Votes --------------------------------------------------------------------------

void RaftNode::on_vote_request(NodeId from, const RequestVoteRequest& req) {
  if (req.term > term_) {
    become_follower(req.term, kNoNode);
  }
  RequestVoteResponse resp;
  resp.term = term_;
  resp.granted = !self_learner_ && !left_ && req.term == term_ &&
                 (voted_for_ == kNoNode || voted_for_ == req.candidate) &&
                 log_up_to_date(req.last_log_index, req.last_log_term);
  if (resp.granted) {
    voted_for_ = req.candidate;
    persist_hard_state();
    reset_election_timer();  // granting a vote defers our own candidacy
  }
  send(from, std::move(resp), net::Transport::Reliable, MsgKind::VoteResponse);
}

void RaftNode::on_vote_response(NodeId from, const RequestVoteResponse& resp) {
  if (resp.term > term_) {
    become_follower(resp.term, kNoNode);
    return;
  }
  if (role_ != Role::Candidate || resp.term < term_ || !resp.granted) return;
  vote_grants_.insert(from);
  if (vote_grants_.size() >= majority()) {
    become_leader();
  }
}

// ---- Client path ----------------------------------------------------------------------

void RaftNode::on_client_request(NodeId from, const ClientRequest& req) {
  if (role_ != Role::Leader) {
    ClientResponse resp;
    resp.ok = false;
    resp.leader_hint = leader_;
    resp.client_seq = req.command.client_seq;
    send(from, std::move(resp), net::Transport::Reliable, MsgKind::ClientResponse);
    return;
  }

  // ReadIndex fast path: a read-only command never touches the log. Remember
  // the commit index and take a barrier ticket; the read completes once a
  // quorum echoes the ticket back (leadership confirmed after admission) and
  // the state machine catches up to the remembered index.
  if (config_.read_index && read_only_fn_ && read_fn_ && read_only_fn_(req.command.payload)) {
    PendingRead pr;
    pr.barrier = ++barrier_clock_;
    pr.read_index = commit_index_;
    pr.payload = req.command.payload;
    pr.client = from;
    pr.client_seq = req.command.client_seq;
    pending_reads_.push_back(std::move(pr));
    if (peers_.empty()) {
      drain_reads();  // single-node cluster: the leader IS the quorum
    } else {
      schedule_flush();  // the flush rides a barrier probe to the quorum
    }
    return;
  }

  // Group commit: accumulate into the open batch; seal early when a cap
  // trips, otherwise let the batch_delay flush seal the window.
  if (config_.group_commit) {
    const std::size_t add = kv::batch_overhead(req.command.payload);
    if (!batch_acc_.empty() && batch_acc_bytes_ + add > config_.max_batch_bytes) {
      seal_batch();  // this member would overflow the byte cap: seal without it
      flush_replication();
    }
    batch_acc_.push_back(PendingCommand{req.command.payload, from, req.command.client_seq});
    batch_acc_bytes_ += add;
    if (batch_acc_.size() >= config_.max_batch_commands ||
        batch_acc_bytes_ >= config_.max_batch_bytes) {
      seal_batch();
      flush_replication();
    } else {
      schedule_flush();
    }
    return;
  }

  Command cmd = req.command;
  cmd.client = from;  // route the eventual response to the sender
  submit(std::move(cmd));
}

LogIndex RaftNode::append_leader_entry(Command command) {
  LogEntry entry;
  entry.term = term_;
  entry.index = last_log_index() + 1;
  entry.command = std::move(command);
  const LogIndex index = entry.index;
  const LogEntry& appended = log_.append(std::move(entry));
  persist_append(std::span<const LogEntry>(&appended, 1));
  return index;
}

std::optional<LogIndex> RaftNode::submit(Command command) {
  if (role_ != Role::Leader || !running_ || paused_) return std::nullopt;
  std::optional<LogIndex> index;
  with_crash_guard([&] {
    index = append_leader_entry(std::move(command));
    schedule_flush();
    if (majority() == 1) maybe_advance_commit();  // single-node cluster
  });
  return index;
}

std::optional<LogIndex> RaftNode::propose_config_change(ConfigChange kind, NodeId target) {
  DYNA_EXPECTS(kind != ConfigChange::None);
  DYNA_EXPECTS(target >= 0);
  if (role_ != Role::Leader || !running_ || paused_) return std::nullopt;
  // Single-server changes only, one at a time: consecutive changes share a
  // majority, so election safety holds without joint consensus.
  if (pending_config_ > commit_index_) return std::nullopt;
  std::optional<LogIndex> index;
  with_crash_guard([&] {
    Command cmd;
    cmd.config_change = kind;
    cmd.config_target = target;
    index = append_leader_entry(std::move(cmd));
    pending_config_ = *index;
    schedule_flush();
    if (majority() == 1) maybe_advance_commit();
  });
  return index;
}

void RaftNode::seal_batch() {
  if (batch_acc_.empty() || role_ != Role::Leader) return;
  batch_acc_bytes_ = 0;
  if (batch_acc_.size() == 1) {
    // A batch of one gains nothing from the frame: submit it as a plain
    // entry with the ordinary single-client routing (and keep the batch
    // counters honest — nothing was coalesced).
    PendingCommand pc = std::move(batch_acc_.front());
    batch_acc_.clear();
    Command cmd;
    cmd.payload = std::move(pc.payload);
    cmd.client = pc.client;
    cmd.client_seq = pc.client_seq;
    append_leader_entry(std::move(cmd));
    if (majority() == 1) maybe_advance_commit();
    return;
  }
  ++batches_sealed_;
  batched_commands_ += batch_acc_.size();
  std::string frame;
  BatchRoute route;
  route.members.reserve(batch_acc_.size());
  for (PendingCommand& pc : batch_acc_) {
    kv::batch_append(frame, pc.payload);
    route.members.emplace_back(pc.client, pc.client_seq);
  }
  batch_acc_.clear();
  Command cmd;
  cmd.payload = std::move(frame);
  // cmd.client stays kNoNode: completion fan-out is driven by the route, not
  // the single-client field.
  route.index = last_log_index() + 1;
  batch_routes_.push_back(std::move(route));
  crash_point(fault::CrashPoint::MidBatchSeal);
  append_leader_entry(std::move(cmd));
  if (majority() == 1) maybe_advance_commit();
}

void RaftNode::send_read_probes() {
  // Confirm leadership for pending reads without waiting for the next
  // heartbeat: ship an empty AppendEntries carrying the current barrier to
  // every follower this flush round didn't already reach (replicate_to and
  // send_heartbeat stamp the barrier too, so a follower that just received
  // entries needs no probe).
  if (pending_reads_.empty() || role_ != Role::Leader) return;
  const TimePoint now = sim_->now();
  for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) {
    PeerState& ps = peer_state_[slot];
    if (ps.last_sent == now) continue;
    AppendEntriesRequest req;
    req.term = term_;
    req.leader = id_;
    req.prev_log_index = last_log_index();
    req.prev_log_term = term_at(req.prev_log_index);
    req.leader_commit = commit_index_;
    req.read_barrier = barrier_clock_;
    if (config_.measure_network) {
      HeartbeatMeta meta;
      meta.id = ++ps.next_heartbeat_id;
      meta.send_ts = now;
      if (ps.has_rtt) meta.measured_rtt = ps.last_rtt;
      req.meta = meta;
    }
    // Probes always ride the reliable channel: a lost ack is a stalled read,
    // not just a late timeout reset.
    ps.last_sent = now;
    send(peers_[slot], std::move(req), net::Transport::Reliable, MsgKind::Heartbeat);
  }
}

void RaftNode::drain_reads() {
  if (pending_reads_.empty() || role_ != Role::Leader) return;
  // ReadIndex precondition: this reign has committed an entry (its no-op),
  // so commit_index_ provably covers every write an earlier leader could
  // have acknowledged.
  if (term_at(commit_index_) != term_) return;
  while (!pending_reads_.empty()) {
    const PendingRead& pr = pending_reads_.front();
    if (pr.read_index > last_applied_) return;  // machine not caught up yet
    std::size_t confirmed = 1;  // the leader itself
    for (std::size_t slot = 0; slot < peer_state_.size(); ++slot) {
      if (peer_learner_[slot] != 0) continue;  // quorum is over voters only
      if (peer_state_[slot].acked_barrier >= pr.barrier) ++confirmed;
    }
    if (confirmed < majority()) return;  // FIFO: later reads can't pass either
    ClientResponse resp;
    resp.ok = true;
    resp.leader_hint = id_;
    resp.client_seq = pr.client_seq;
    resp.index = pr.read_index;
    resp.result = read_fn_(pr.payload);
    send(pr.client, std::move(resp), net::Transport::Reliable, MsgKind::ClientResponse);
    ++reads_served_;
    pending_reads_.pop_front();
  }
}

void RaftNode::fail_pending_client_work() {
  // Step-down: NACK accumulated-but-unsealed commands and pending reads so
  // their clients re-route to the new leader instead of timing out. Routes
  // for already-sealed batches die too — if those entries survive into the
  // new reign and commit, their members' clients retry and find the result
  // via normal redirect (same as any unacknowledged single entry).
  for (const PendingCommand& pc : batch_acc_) {
    ClientResponse resp;
    resp.ok = false;
    resp.leader_hint = leader_;
    resp.client_seq = pc.client_seq;
    send(pc.client, std::move(resp), net::Transport::Reliable, MsgKind::ClientResponse);
  }
  batch_acc_.clear();
  batch_acc_bytes_ = 0;
  for (const PendingRead& pr : pending_reads_) {
    ClientResponse resp;
    resp.ok = false;
    resp.leader_hint = leader_;
    resp.client_seq = pr.client_seq;
    send(pr.client, std::move(resp), net::Transport::Reliable, MsgKind::ClientResponse);
  }
  pending_reads_.clear();
  batch_routes_.clear();
}

// ---- Log helpers -----------------------------------------------------------------------

Term RaftNode::term_at(LogIndex index) const { return log_.term_at(index); }

bool RaftNode::log_up_to_date(LogIndex their_index, Term their_term) const {
  const Term my_term = term_at(last_log_index());
  if (their_term != my_term) return their_term > my_term;
  return their_index >= last_log_index();
}

void RaftNode::persist_hard_state() {
  crash_point(fault::CrashPoint::BeforePersistHardState);
  storage_->save_hard_state(term_, voted_for_);
  crash_point(fault::CrashPoint::AfterPersistHardState);
}

void RaftNode::persist_append(std::span<const LogEntry> entries) {
  // The in-memory log_ already holds the suffix: a BeforePersistAppend crash
  // is the plug pulled between the volatile append and the durable one, so
  // the entries are lost on restart — exactly the window a real fsync gap
  // leaves open.
  crash_point(fault::CrashPoint::BeforePersistAppend);
  storage_->append(entries);
  crash_point(fault::CrashPoint::AfterPersistAppend);
}

// ---- Membership --------------------------------------------------------------------

void RaftNode::rebuild_peer_slots() {
  NodeId max_peer = -1;
  for (const NodeId p : peers_) max_peer = std::max(max_peer, p);
  peer_slot_.assign(static_cast<std::size_t>(max_peer + 1), -1);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    peer_slot_[static_cast<std::size_t>(peers_[i])] = static_cast<int>(i);
  }
}

void RaftNode::rebuild_leader_timers() {
  if (role_ != Role::Leader || !running_) return;
  for (PeerState& ps : peer_state_) ps.heartbeat_timer.reset();
  broadcast_timer_.reset();
  arm_heartbeat_timers();
}

void RaftNode::add_peer(NodeId peer, bool learner) {
  if (peer == id_) return;
  const int slot = peer_slot(peer);
  if (slot >= 0) {
    peer_learner_[static_cast<std::size_t>(slot)] = learner ? 1 : 0;
    return;
  }
  peers_.push_back(peer);
  peer_learner_.push_back(learner ? 1 : 0);
  PeerState ps;
  ps.next_index = last_log_index() + 1;
  peer_state_.push_back(std::move(ps));
  rebuild_peer_slots();
  if (role_ == Role::Leader) {
    rebuild_leader_timers();
    replicate_to(peer_state_.size() - 1);
  }
}

void RaftNode::remove_peer(NodeId peer) {
  const int slot = peer_slot(peer);
  if (slot < 0) return;
  const auto s = static_cast<std::size_t>(slot);
  if (peer_state_[s].heartbeat_timer) peer_state_[s].heartbeat_timer.reset();
  peers_.erase(peers_.begin() + slot);
  peer_learner_.erase(peer_learner_.begin() + slot);
  peer_state_.erase(peer_state_.begin() + slot);
  rebuild_peer_slots();
  // Stale grants from the departed voter must not count toward any quorum.
  prevote_grants_.erase(peer);
  vote_grants_.erase(peer);
  if (role_ == Role::Leader) {
    // Per-follower timer lambdas capture slots, which just shifted.
    rebuild_leader_timers();
    maybe_advance_commit();  // quorum shrank: pending entries may commit now
  }
}

void RaftNode::install_membership(const std::vector<NodeId>& voters,
                                  const std::vector<NodeId>& learners) {
  const auto contains = [](const std::vector<NodeId>& v, NodeId n) {
    return std::find(v.begin(), v.end(), n) != v.end();
  };
  std::vector<NodeId> next_peers;
  std::vector<std::uint8_t> next_learner;
  for (const NodeId n : voters) {
    if (n == id_) continue;
    next_peers.push_back(n);
    next_learner.push_back(0);
  }
  for (const NodeId n : learners) {
    if (n == id_) continue;
    next_peers.push_back(n);
    next_learner.push_back(1);
  }
  const bool self_learner = contains(learners, id_);
  const bool left = !self_learner && !contains(voters, id_);
  if (next_peers == peers_ && next_learner == peer_learner_ && self_learner == self_learner_ &&
      left == left_) {
    return;  // identical view: take no action (keeps legacy trials untouched)
  }
  membership_changed_ = true;
  self_learner_ = self_learner;
  left_ = left;
  peers_ = std::move(next_peers);
  peer_learner_ = std::move(next_learner);
  peer_state_.clear();
  peer_state_.resize(peers_.size());
  for (PeerState& ps : peer_state_) ps.next_index = last_log_index() + 1;
  rebuild_peer_slots();
  if (role_ == Role::Leader) rebuild_leader_timers();
}

void RaftNode::apply_config_change(const LogEntry& entry) {
  const NodeId target = entry.command.config_target;
  membership_changed_ = true;
  switch (entry.command.config_change) {
    case ConfigChange::None:
      break;
    case ConfigChange::AddVoter:
      if (target == id_) {
        self_learner_ = false;
        left_ = false;
      } else {
        add_peer(target, /*learner=*/false);
      }
      break;
    case ConfigChange::AddLearner:
      if (target == id_) {
        self_learner_ = true;
      } else {
        add_peer(target, /*learner=*/true);
      }
      break;
    case ConfigChange::Promote:
      if (target == id_) {
        self_learner_ = false;
      } else {
        add_peer(target, /*learner=*/false);  // idempotent: promotes if present
      }
      break;
    case ConfigChange::Remove:
      if (target == id_) {
        left_ = true;  // leader abdication happens after the apply walk
      } else {
        remove_peer(target);
      }
      break;
  }
  if (entry.index >= pending_config_) pending_config_ = 0;
}

}  // namespace dyna::raft
