// Observation interface for probes, telemetry and CPU-cost models.
//
// Observers are non-owning and purely passive: they must not call back into
// the node. The cluster probe (detection/OTS extraction), the perf model
// (CPU accounting) and test assertions all implement this interface.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "raft/message.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

class Observer {
 public:
  virtual ~Observer() = default;

  virtual void on_role_change(NodeId /*node*/, Role /*from*/, Role /*to*/, Term /*term*/,
                              TimePoint /*when*/) {}

  /// The node's election timer expired (it will start a pre-vote/election).
  /// This is the paper's "failure detected" instant.
  virtual void on_election_timeout(NodeId /*node*/, Term /*term*/, TimePoint /*when*/) {}

  /// `leader` won the election for `term` and assumed leadership.
  virtual void on_leader_established(NodeId /*leader*/, Term /*term*/, TimePoint /*when*/) {}

  /// The node (re)started: volatile state is gone, applies restart from the
  /// node's snapshot floor. Lets checkers rewind per-node watermarks.
  virtual void on_node_started(NodeId /*node*/, TimePoint /*when*/) {}

  virtual void on_entry_committed(NodeId /*node*/, const LogEntry& /*entry*/,
                                  TimePoint /*when*/) {}

  virtual void on_message_sent(NodeId /*from*/, NodeId /*to*/, MsgKind /*kind*/,
                               std::size_t /*bytes*/, TimePoint /*when*/) {}

  virtual void on_message_received(NodeId /*node*/, NodeId /*from*/, MsgKind /*kind*/,
                                   std::size_t /*bytes*/, TimePoint /*when*/) {}

  /// Dynatune telemetry: the node retuned its election parameters.
  virtual void on_params_tuned(NodeId /*node*/, Duration /*election_timeout*/,
                               Duration /*heartbeat_interval*/, TimePoint /*when*/) {}
};

}  // namespace dyna::raft
