// A complete Raft server: leader election with pre-vote, heartbeats, log
// replication, commitment, crash/recovery persistence — plus the Dynatune
// measurement plumbing (heartbeat ids, timestamp echoes, RTT computation)
// behind the ElectionPolicy seam.
//
// The node is driven entirely by simulator events: timer expiries and
// network deliveries. It never reads wall-clock time or global state, so a
// trial is a pure function of (config, seeds, fault schedule).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "raft/config.hpp"
#include "raft/election_policy.hpp"
#include "raft/log.hpp"
#include "raft/message.hpp"
#include "raft/observer.hpp"
#include "raft/storage.hpp"
#include "sim/simulator.hpp"

namespace dyna::raft {

class RaftNode {
 public:
  /// Applies a committed entry to the host's state machine. Return value is
  /// the result string sent back to the client (leader only).
  using ApplyFn = std::function<std::string(const LogEntry&)>;

  /// Serializes the host state machine as of the entries applied so far
  /// (called only from the apply path, so the machine is exactly at
  /// last_applied). Wired by the cluster alongside ApplyFn.
  using SnapshotFn = std::function<std::string()>;

  /// Resets the host state machine to a snapshot's contents (recovery and
  /// InstallSnapshot adoption).
  using RestoreFn = std::function<void(const Snapshot&)>;

  /// Classifies a client payload as read-only (ReadIndex eligibility). The
  /// raft layer stays payload-agnostic: the host supplies the classifier.
  using ReadOnlyFn = std::function<bool(std::string_view)>;

  /// Answers a read-only payload from the host state machine (called only
  /// once the ReadIndex rule is satisfied — see drain_reads()).
  using ReadFn = std::function<std::string(std::string_view)>;

  RaftNode(NodeId id, std::vector<NodeId> peers, sim::Simulator& simulator,
           net::Network& network, RaftConfig config, std::shared_ptr<Storage> storage,
           std::unique_ptr<ElectionPolicy> policy, Rng rng);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Begin operating (arm the election timer). Reloads persistent state.
  void start();

  /// Rebuild-in-place for trial reuse: return every member to its
  /// freshly-constructed value (buffer capacity kept) with a new RNG, so a
  /// subsequent start() is indistinguishable from starting a brand-new node
  /// over the same (already reset) Storage. Preconditions: the owning
  /// harness has reset the Simulator and Storage, and the policy is
  /// resettable_for_trial(). Stale timer handles are forgotten, never
  /// cancelled — after a simulator reset they could alias fresh events.
  void reset_for_trial(Rng rng);

  /// Permanently stop (crash). Timers cancelled; messages ignored. Restart
  /// by constructing a fresh node over the same Storage.
  void stop();

  /// Freeze, as if the hosting container were paused: timers hold their
  /// remaining durations, nothing is processed until resume().
  void pause();
  void resume();

  /// Entry point for all network traffic (wired up by the cluster).
  void handle_message(NodeId from, const Message& message);

  /// Submit a command (leader only). Returns the assigned log index, or
  /// nullopt when this node is not the leader.
  std::optional<LogIndex> submit(Command command);

  /// Propose a single-server membership change (leader only). At most one
  /// change may be uncommitted at a time; returns nullopt when this node is
  /// not the leader or a change is already in flight.
  std::optional<LogIndex> propose_config_change(ConfigChange kind, NodeId target);

  /// Attach a fault injector (crash points fire through it) and the callback
  /// invoked after a firing has stopped the node. The callback runs with the
  /// stack fully unwound out of raft code, but must still defer teardown of
  /// the node object to a fresh simulator event.
  void set_fault(fault::Injector* injector, std::function<void(NodeId)> on_crash) {
    fault_ = injector;
    on_crash_ = std::move(on_crash);
  }

  /// Mark this node a non-voting learner before start() (joining servers).
  void set_self_learner(bool learner) noexcept { self_learner_ = learner; }

  void set_apply(ApplyFn apply) { apply_ = std::move(apply); }
  void set_snapshot_hooks(SnapshotFn take, RestoreFn restore) {
    snapshot_fn_ = std::move(take);
    restore_ = std::move(restore);
  }
  /// Wire the ReadIndex fast path (both hooks required for it to engage).
  void set_read_hooks(ReadOnlyFn classify, ReadFn read) {
    read_only_fn_ = std::move(classify);
    read_fn_ = std::move(read);
  }
  void add_observer(Observer* observer);

  // ---- Introspection ---------------------------------------------------------

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] Term term() const noexcept { return term_; }
  [[nodiscard]] bool is_leader() const noexcept { return role_ == Role::Leader; }
  [[nodiscard]] NodeId leader_hint() const noexcept { return leader_; }
  [[nodiscard]] bool running() const noexcept { return running_ && !paused_; }
  [[nodiscard]] bool paused() const noexcept { return paused_; }
  [[nodiscard]] LogIndex commit_index() const noexcept { return commit_index_; }
  [[nodiscard]] LogIndex last_applied() const noexcept { return last_applied_; }
  [[nodiscard]] LogIndex last_log_index() const noexcept { return log_.last_index(); }
  [[nodiscard]] LogIndex first_log_index() const noexcept { return log_.first_index(); }
  /// Index the current snapshot covers through (0 = no snapshot).
  [[nodiscard]] LogIndex snapshot_index() const noexcept {
    return snapshot_ ? snapshot_->last_index : 0;
  }
  [[nodiscard]] std::uint64_t snapshots_taken() const noexcept { return snapshots_taken_; }
  [[nodiscard]] const RaftLog& log() const noexcept { return log_; }
  [[nodiscard]] SnapshotHandle snapshot() const noexcept { return snapshot_; }
  /// Current membership view (config-change state; see ConfigChange).
  [[nodiscard]] const std::vector<NodeId>& peers() const noexcept { return peers_; }
  [[nodiscard]] bool is_learner() const noexcept { return self_learner_; }
  /// True once a committed Remove for this node has applied.
  [[nodiscard]] bool has_left() const noexcept { return left_; }
  [[nodiscard]] std::size_t voter_count() const noexcept {
    std::size_t voters = self_learner_ || left_ ? 0 : 1;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (peer_learner_[i] == 0) ++voters;
    }
    return voters;
  }
  [[nodiscard]] ElectionPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const RaftConfig& config() const noexcept { return config_; }

  /// The currently drawn randomizedTimeout (the quantity Fig 6 plots).
  [[nodiscard]] Duration randomized_timeout() const noexcept { return randomized_timeout_; }

  /// Leader-side: last RTT measured toward `follower` (measurement mode).
  [[nodiscard]] std::optional<Duration> last_measured_rtt(NodeId follower) const;

  /// Leader-side: heartbeat interval currently in force toward `follower`.
  [[nodiscard]] Duration effective_heartbeat_interval(NodeId follower) const {
    return policy_->heartbeat_interval(follower);
  }

  // Group-commit / ReadIndex accounting (bench + leak checks).
  [[nodiscard]] std::uint64_t batches_sealed() const noexcept { return batches_sealed_; }
  [[nodiscard]] std::uint64_t batched_commands() const noexcept { return batched_commands_; }
  [[nodiscard]] std::uint64_t reads_served() const noexcept { return reads_served_; }
  [[nodiscard]] std::size_t pending_batch_commands() const noexcept { return batch_acc_.size(); }
  [[nodiscard]] std::size_t pending_batch_routes() const noexcept { return batch_routes_.size(); }
  [[nodiscard]] std::size_t pending_read_count() const noexcept { return pending_reads_.size(); }

 private:
  // ---- Role transitions ----
  void become_follower(Term term, NodeId leader);
  void start_prevote();
  void start_election();
  void become_leader();

  // ---- Timer handling ----
  void on_election_deadline();
  void reset_election_timer();
  void refresh_randomized_timeout(bool force_redraw);
  [[nodiscard]] Duration draw_randomized_timeout(Duration base) ;

  // ---- Message handlers ----
  void dispatch_message(NodeId from, const Message& message);
  void on_append_entries(NodeId from, const AppendEntriesRequest& req);
  void on_append_response(NodeId from, const AppendEntriesResponse& resp);
  void on_install_snapshot(NodeId from, const InstallSnapshotRequest& req);
  void on_install_snapshot_response(NodeId from, const InstallSnapshotResponse& resp);
  void on_prevote_request(NodeId from, const PreVoteRequest& req);
  void on_prevote_response(NodeId from, const PreVoteResponse& resp);
  void on_vote_request(NodeId from, const RequestVoteRequest& req);
  void on_vote_response(NodeId from, const RequestVoteResponse& resp);
  void on_client_request(NodeId from, const ClientRequest& req);

  // ---- Leader machinery (peer-indexed: `slot` addresses peers_[slot]) ----
  void arm_heartbeat_timers();
  void send_heartbeat(std::size_t slot);
  void broadcast_heartbeats();
  [[nodiscard]] Duration broadcast_interval() const;
  void schedule_flush();
  void flush_replication();
  void replicate_to(std::size_t slot);
  LogIndex append_leader_entry(Command command);
  void seal_batch();
  void drain_reads();
  void send_read_probes();
  void fail_pending_client_work();
  void send_install_snapshot(std::size_t slot);
  void maybe_advance_commit();
  void apply_committed();
  void maybe_take_snapshot();

  // ---- Helpers ----
  void persist_hard_state();
  void persist_append(std::span<const LogEntry> entries);
  [[nodiscard]] bool log_up_to_date(LogIndex their_index, Term their_term) const;
  [[nodiscard]] Term term_at(LogIndex index) const;
  /// Quorum over the VOTER set (learners replicate but never count).
  [[nodiscard]] std::size_t majority() const noexcept { return voter_count() / 2 + 1; }
  [[nodiscard]] bool heard_from_leader_recently() const;
  void send(NodeId to, Message message, net::Transport transport, MsgKind kind);
  void notify_role_change(Role from, Role to);

  // ---- Membership (single-server changes, applied on commit) ----
  void apply_config_change(const LogEntry& entry);
  void add_peer(NodeId peer, bool learner);
  void remove_peer(NodeId peer);
  void rebuild_peer_slots();
  /// Adopt an explicit membership (snapshot restore / install). No-op when it
  /// matches the current view, so legacy trials take identical paths.
  void install_membership(const std::vector<NodeId>& voters,
                          const std::vector<NodeId>& learners);
  /// Re-arm leader replication timers after the peer set changed (the
  /// per-follower timer lambdas capture slots, which just moved).
  void rebuild_leader_timers();

  // ---- Fault injection ----
  /// Fires the named crash point when the injector decides this visit dies.
  void crash_point(fault::CrashPoint p) {
    if (fault_ != nullptr && fault_->visit(p)) throw fault::CrashSignal{};
  }
  /// Wraps an entry point (message delivery, timer callback, submit): a
  /// CrashSignal unwinding out of `f` stops the node and reports the crash.
  /// Zero overhead when no injector is attached; nested guards don't catch,
  /// so the unwind always reaches the outermost entry point.
  template <typename F>
  void with_crash_guard(F&& f) {
    if (fault_ == nullptr || guard_depth_ > 0) {
      f();
      return;
    }
    ++guard_depth_;
    struct Depth {
      int& d;
      ~Depth() { --d; }
    } depth{guard_depth_};
    try {
      f();
    } catch (const fault::CrashSignal&) {
      stop();
      if (on_crash_) on_crash_(id_);
    }
  }

  /// Everything the leader tracks per follower, in one dense vector parallel
  /// to peers_ (slot i describes peers_[i]). Replaces six node-keyed
  /// std::maps: heartbeat fan-out and response handling are O(n) array walks
  /// with no allocation and no red-black-tree pointer chasing.
  struct PeerState {
    LogIndex next_index = 0;
    LogIndex match_index = 0;
    std::uint64_t next_heartbeat_id = 0;    ///< measurement sequence (Dynatune)
    Duration last_rtt{0};
    bool has_rtt = false;
    TimePoint last_sent = kNever;           ///< heartbeat suppression watermark
    std::uint64_t acked_barrier = 0;        ///< highest ReadIndex barrier echoed back
    std::unique_ptr<sim::Timer> heartbeat_timer;  ///< per-follower mode only
    Duration frozen_heartbeat_remaining{0};       ///< pause() bookkeeping
    bool heartbeat_frozen = false;
  };

  /// Dense slot of `peer` in peers_ / peer_state_, or -1 for strangers.
  [[nodiscard]] int peer_slot(NodeId peer) const noexcept {
    const auto i = static_cast<std::size_t>(peer);
    return peer >= 0 && i < peer_slot_.size() ? peer_slot_[i] : -1;
  }

  // ---- Identity / wiring ----
  NodeId id_;
  std::vector<NodeId> peers_;
  std::vector<int> peer_slot_;  ///< NodeId -> index into peers_/peer_state_
  std::vector<std::uint8_t> peer_learner_;  ///< slot-parallel to peers_: 1 = learner
  std::vector<NodeId> founding_peers_;      ///< construction-time peer set (trial reset)
  sim::Simulator* sim_;
  net::Network* net_;
  RaftConfig config_;
  std::shared_ptr<Storage> storage_;
  std::unique_ptr<ElectionPolicy> policy_;
  Rng rng_;
  ApplyFn apply_;
  SnapshotFn snapshot_fn_;
  RestoreFn restore_;
  std::vector<Observer*> observers_;

  // ---- Persistent state (mirrored in storage_) ----
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
  RaftLog log_;  ///< segment store; entry i+1 lives at log_[i]
  SnapshotHandle snapshot_;  ///< current snapshot (mirrored in storage_)
  std::uint64_t snapshots_taken_ = 0;  ///< snapshots this node built itself

  // ---- Volatile state ----
  Role role_ = Role::Follower;
  NodeId leader_ = kNoNode;
  LogIndex commit_index_ = 0;
  LogIndex last_applied_ = 0;
  bool running_ = false;
  bool paused_ = false;

  // ---- Membership state ----
  bool self_learner_ = false;        ///< this node is a non-voting learner
  bool left_ = false;                ///< a committed Remove for this node applied
  bool membership_changed_ = false;  ///< any config entry applied this trial
  LogIndex pending_config_ = 0;      ///< index of the in-flight change (leader)

  // ---- Fault injection ----
  fault::Injector* fault_ = nullptr;
  std::function<void(NodeId)> on_crash_;
  int guard_depth_ = 0;

  // Election timing.
  sim::Timer election_timer_;
  Duration randomized_timeout_{};
  Duration randomized_base_{};  // Et used for the current draw
  TimePoint last_leader_contact_ = kSimEpoch;

  // Pre-vote state. Grants accumulate per *target term* across retry rounds
  // (etcd semantics): a grant answering an earlier round still counts as long
  // as the prospective term is unchanged — essential for elections to ignite
  // when the RTT exceeds the election timeout.
  Term prevote_target_ = 0;
  std::set<NodeId> prevote_grants_;

  // Candidate state.
  std::set<NodeId> vote_grants_;

  // Leader state: one dense PeerState per follower (slot-parallel to peers_),
  // including measurement plumbing, suppression watermarks, per-follower
  // heartbeat timers and their pause()-frozen remainders.
  std::vector<PeerState> peer_state_;
  std::unique_ptr<sim::Timer> broadcast_timer_;  // broadcast mode
  bool flush_scheduled_ = false;
  /// The pending flush event (valid iff flush_scheduled_). stop() must cancel
  /// it: a crash can destroy this node while the event is in flight, and the
  /// lambda captures `this`.
  sim::EventId flush_event_ = sim::kInvalidEvent;
  std::vector<LogIndex> match_scratch_;  ///< maybe_advance_commit, reused

  // ---- Group commit (leader only; config_.group_commit) ----
  // Commands accepted within a batch_delay window accumulate here, then seal
  // into ONE multi-command log entry. The route deque remembers, per sealed
  // batch entry, which (client, seq) each member result fans back out to —
  // routes and commits are both FIFO in index order, so the front route
  // always describes the next batch entry to apply. Admission is pipelined:
  // batch N+1 accumulates while batch N is still replicating.
  struct PendingCommand {
    std::string payload;
    NodeId client = kNoNode;
    std::uint64_t client_seq = 0;
  };
  struct BatchRoute {
    LogIndex index = 0;
    std::vector<std::pair<NodeId, std::uint64_t>> members;  ///< (client, seq)
  };
  std::vector<PendingCommand> batch_acc_;
  std::size_t batch_acc_bytes_ = 0;  ///< frame bytes batch_acc_ would seal to
  std::deque<BatchRoute> batch_routes_;
  std::uint64_t batches_sealed_ = 0;    ///< multi-command frames only
  std::uint64_t batched_commands_ = 0;  ///< members of those frames

  // ---- ReadIndex fast path (leader only; config_.read_index) ----
  // A pending read remembers the commit index at admission and a barrier
  // ticket; it completes once a quorum has echoed a barrier >= the ticket
  // (leadership confirmed after admission) and the state machine has applied
  // through the remembered index. FIFO: reads never overtake each other.
  struct PendingRead {
    std::uint64_t barrier = 0;
    LogIndex read_index = 0;
    std::string payload;
    NodeId client = kNoNode;
    std::uint64_t client_seq = 0;
  };
  std::deque<PendingRead> pending_reads_;
  std::uint64_t barrier_clock_ = 0;  ///< monotone; stamped on every AppendEntries
  std::uint64_t reads_served_ = 0;
  ReadOnlyFn read_only_fn_;
  ReadFn read_fn_;

  // Pause bookkeeping for the node-wide timers.
  std::optional<Duration> frozen_election_remaining_;
  std::optional<Duration> frozen_broadcast_remaining_;
};

}  // namespace dyna::raft
