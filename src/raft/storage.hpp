// Persistent state interface.
//
// Raft requires currentTerm, votedFor and the log to survive crashes. The
// cluster harness keeps one Storage per server across crash/restart cycles;
// a restarted node reloads from it. The in-memory implementation is exact
// (the experiments do not model disk latency — the paper ran on unthrottled
// NVMe and its results are network-bound).
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

class Storage {
 public:
  virtual ~Storage() = default;

  virtual void save_hard_state(Term term, NodeId voted_for) = 0;
  [[nodiscard]] virtual std::pair<Term, NodeId> load_hard_state() const = 0;

  /// Append entries at the end of the durable log.
  virtual void append(std::span<const LogEntry> entries) = 0;

  /// Remove all entries with index >= first_removed.
  virtual void truncate_from(LogIndex first_removed) = 0;

  /// Read-only view of the durable log, valid until the next mutation of
  /// this Storage. Recovery copies it into the node's segment store once —
  /// the interface itself never forces a copy (a node with a large log used
  /// to pay a full vector copy here on every restart).
  [[nodiscard]] virtual std::span<const LogEntry> load_log() const = 0;

  /// Wipe everything — the disk of a brand-new deployment. Distinct from
  /// crash/restart (which persists): this is the trial-reuse path, where one
  /// Storage object serves consecutive independent trials and must keep its
  /// buffer capacity while dropping all content.
  virtual void reset_for_trial() = 0;
};

/// Storage that persists hard state but discards the log. For workloads that
/// never exercise crash-recovery (e.g. the throughput benchmarks) this halves
/// the memory footprint of long runs. Restarting a node over NullStorage
/// yields an empty log — only use it where restarts don't happen.
class NullStorage final : public Storage {
 public:
  void save_hard_state(Term term, NodeId voted_for) override {
    term_ = term;
    voted_for_ = voted_for;
  }

  [[nodiscard]] std::pair<Term, NodeId> load_hard_state() const override {
    return {term_, voted_for_};
  }

  void append(std::span<const LogEntry>) override {}
  void truncate_from(LogIndex) override {}
  [[nodiscard]] std::span<const LogEntry> load_log() const override { return {}; }

  void reset_for_trial() override {
    term_ = 0;
    voted_for_ = kNoNode;
  }

 private:
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
};

class MemoryStorage final : public Storage {
 public:
  void save_hard_state(Term term, NodeId voted_for) override {
    term_ = term;
    voted_for_ = voted_for;
  }

  [[nodiscard]] std::pair<Term, NodeId> load_hard_state() const override {
    return {term_, voted_for_};
  }

  void append(std::span<const LogEntry> entries) override {
    for (const auto& e : entries) {
      DYNA_EXPECTS(e.index == log_.size() + 1);  // contiguous, 1-based
      log_.push_back(e);
    }
  }

  void truncate_from(LogIndex first_removed) override {
    DYNA_EXPECTS(first_removed >= 1);
    if (first_removed <= log_.size()) {
      log_.resize(first_removed - 1);
    }
  }

  [[nodiscard]] std::span<const LogEntry> load_log() const override { return log_; }

  void reset_for_trial() override {
    term_ = 0;
    voted_for_ = kNoNode;
    log_.clear();  // capacity survives for the next trial's log
  }

 private:
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
  std::vector<LogEntry> log_;
};

}  // namespace dyna::raft
