// Persistent state interface.
//
// Raft requires currentTerm, votedFor and the log to survive crashes. The
// cluster harness keeps one Storage per server across crash/restart cycles;
// a restarted node reloads from it. The in-memory implementation is exact
// (the experiments do not model disk latency — the paper ran on unthrottled
// NVMe and its results are network-bound).
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

class Storage {
 public:
  virtual ~Storage() = default;

  virtual void save_hard_state(Term term, NodeId voted_for) = 0;
  [[nodiscard]] virtual std::pair<Term, NodeId> load_hard_state() const = 0;

  /// Append entries at the end of the durable log.
  virtual void append(std::span<const LogEntry> entries) = 0;

  /// Remove all entries with index >= first_removed.
  virtual void truncate_from(LogIndex first_removed) = 0;

  /// Read-only view of the durable log, valid until the next mutation of
  /// this Storage. Recovery copies it into the node's segment store once —
  /// the interface itself never forces a copy (a node with a large log used
  /// to pay a full vector copy here on every restart). With an active
  /// snapshot the view is the suffix starting at log_start().first + 1.
  [[nodiscard]] virtual std::span<const LogEntry> load_log() const = 0;

  /// Persist the state-machine snapshot blob alongside hard state. The
  /// handle is shared, not copied — the durable snapshot is the same
  /// immutable object the node (and any in-flight InstallSnapshot) holds.
  virtual void save_snapshot(SnapshotHandle snapshot) { (void)snapshot; }

  /// Last persisted snapshot, or nullptr. Recovery restores the state
  /// machine from it and replays only the log suffix behind it.
  [[nodiscard]] virtual SnapshotHandle load_snapshot() const { return nullptr; }

  /// Drop durable entries with index <= c (term of entry c is term_c): the
  /// persisted snapshot covers them. load_log() afterwards starts at c + 1.
  virtual void compact_log_to(LogIndex c, Term term_c) { (void)c; (void)term_c; }

  /// Replace the whole durable log with an empty suffix starting after
  /// (s, term_s) — the InstallSnapshot wipe when the local log conflicts
  /// with the leader's snapshot.
  virtual void reset_log(LogIndex s, Term term_s) { (void)s; (void)term_s; }

  /// (compacted-through index, its term) of the durable log; (0, 0) while
  /// uncompacted. load_log() entries are contiguous from first + 1.
  [[nodiscard]] virtual std::pair<LogIndex, Term> log_start() const { return {0, 0}; }

  /// Whether the log (and snapshot) actually survive a crash/restart cycle.
  /// Cluster::restart refuses to revive a node whose storage discards the
  /// log — that would silently resurrect it with committed entries missing.
  [[nodiscard]] virtual bool durable_log() const { return false; }

  /// Wipe everything — the disk of a brand-new deployment. Distinct from
  /// crash/restart (which persists): this is the trial-reuse path, where one
  /// Storage object serves consecutive independent trials and must keep its
  /// buffer capacity while dropping all content.
  virtual void reset_for_trial() = 0;
};

/// Storage that persists hard state but discards the log. For workloads that
/// never exercise crash-recovery (e.g. the throughput benchmarks) this halves
/// the memory footprint of long runs. Restarting a node over NullStorage
/// would yield an empty log, so Cluster::restart rejects it (durable_log()
/// stays false, as do the snapshot defaults inherited from Storage).
class NullStorage final : public Storage {
 public:
  void save_hard_state(Term term, NodeId voted_for) override {
    term_ = term;
    voted_for_ = voted_for;
  }

  [[nodiscard]] std::pair<Term, NodeId> load_hard_state() const override {
    return {term_, voted_for_};
  }

  void append(std::span<const LogEntry>) override {}
  void truncate_from(LogIndex) override {}
  [[nodiscard]] std::span<const LogEntry> load_log() const override { return {}; }

  void reset_for_trial() override {
    term_ = 0;
    voted_for_ = kNoNode;
  }

 private:
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
};

class MemoryStorage final : public Storage {
 public:
  void save_hard_state(Term term, NodeId voted_for) override {
    term_ = term;
    voted_for_ = voted_for;
  }

  [[nodiscard]] std::pair<Term, NodeId> load_hard_state() const override {
    return {term_, voted_for_};
  }

  void append(std::span<const LogEntry> entries) override {
    for (const auto& e : entries) {
      DYNA_EXPECTS(e.index == start_.first + log_.size() + 1);  // contiguous suffix
      log_.push_back(e);
    }
  }

  void truncate_from(LogIndex first_removed) override {
    DYNA_EXPECTS(first_removed > start_.first);
    if (first_removed <= start_.first + log_.size()) {
      log_.resize(static_cast<std::size_t>(first_removed - start_.first - 1));
    }
  }

  [[nodiscard]] std::span<const LogEntry> load_log() const override { return log_; }

  void save_snapshot(SnapshotHandle snapshot) override { snapshot_ = std::move(snapshot); }

  [[nodiscard]] SnapshotHandle load_snapshot() const override { return snapshot_; }

  void compact_log_to(LogIndex c, Term term_c) override {
    DYNA_EXPECTS(c >= start_.first && c <= start_.first + log_.size());
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(c - start_.first));
    start_ = {c, term_c};
  }

  void reset_log(LogIndex s, Term term_s) override {
    log_.clear();
    start_ = {s, term_s};
  }

  [[nodiscard]] std::pair<LogIndex, Term> log_start() const override { return start_; }

  [[nodiscard]] bool durable_log() const override { return true; }

  void reset_for_trial() override {
    term_ = 0;
    voted_for_ = kNoNode;
    log_.clear();  // capacity survives for the next trial's log
    start_ = {0, 0};
    snapshot_.reset();  // snapshot blobs must not leak into the next trial
  }

 private:
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
  std::vector<LogEntry> log_;  ///< suffix [start_.first + 1, ...]
  std::pair<LogIndex, Term> start_{0, 0};  ///< durable compaction line
  SnapshotHandle snapshot_;
};

}  // namespace dyna::raft
