// Raft wire protocol, including the Dynatune measurement metadata.
//
// Dynatune's rule is to piggyback everything on existing messages: the leader
// stamps heartbeats with a sequential id, its local send timestamp, and the
// RTT it measured on the previous exchange; the follower echoes the stamp
// (so the leader can compute RTT on its own clock, immune to skew) and rides
// its freshly tuned heartbeat interval back on the response. No new message
// types are introduced — exactly as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "raft/log.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

/// Measurement metadata attached to heartbeats when network measurement is
/// enabled (Dynatune mode). Absent in baseline Raft.
struct HeartbeatMeta {
  std::uint64_t id = 0;                 ///< per (leader,follower) sequence number
  TimePoint send_ts{};                  ///< leader-local send timestamp
  std::optional<Duration> measured_rtt; ///< RTT of the previous exchange
};

struct AppendEntriesRequest {
  Term term = 0;
  NodeId leader = kNoNode;
  LogIndex prev_log_index = 0;
  Term prev_log_term = 0;
  /// Shared view into the leader's segment store: copying this message (per
  /// follower, per in-flight duplicate) bumps a reference count instead of
  /// deep-copying an entry vector. See raft/log.hpp.
  EntryView entries;
  LogIndex leader_commit = 0;
  std::optional<HeartbeatMeta> meta;  ///< present on measurement heartbeats
  /// ReadIndex barrier clock (leader's value at send; 0 = feature off). The
  /// follower echoes it so the leader can prove it was still leader when a
  /// pending read was enqueued — piggybacked on every AppendEntries, no new
  /// message type (the same discipline HeartbeatMeta follows).
  std::uint64_t read_barrier = 0;

  [[nodiscard]] bool is_heartbeat() const noexcept { return entries.empty(); }
};

struct AppendEntriesResponse {
  Term term = 0;
  bool success = false;
  bool heartbeat = false;     ///< answers an empty (heartbeat) AppendEntries
  LogIndex match_index = 0;   ///< valid when success
  LogIndex conflict_hint = 0; ///< leader backs next_index off to this on reject
  // --- Dynatune piggyback ---
  std::optional<std::uint64_t> echo_id;  ///< heartbeat id being answered
  std::optional<TimePoint> echo_send_ts; ///< leader timestamp echoed verbatim
  std::optional<Duration> tuned_heartbeat; ///< follower-computed h for this path
  std::uint64_t barrier_ack = 0;  ///< request's read_barrier echoed verbatim
};

struct PreVoteRequest {
  Term term = 0;  ///< target term: candidate's current term + 1 (not persisted)
  NodeId candidate = kNoNode;
  LogIndex last_log_index = 0;
  Term last_log_term = 0;
};

struct PreVoteResponse {
  Term term = 0;         ///< voter's current term (for candidate step-down)
  Term target_term = 0;  ///< the prospective term this grant is for
  bool granted = false;
};

struct RequestVoteRequest {
  Term term = 0;
  NodeId candidate = kNoNode;
  LogIndex last_log_index = 0;
  Term last_log_term = 0;
};

struct RequestVoteResponse {
  Term term = 0;
  bool granted = false;
};

/// Raft §7: ship a whole state-machine snapshot to a follower whose
/// next_index fell behind the leader's compaction point. The snapshot rides
/// as a shared handle — per-follower and in-flight copies bump a reference
/// count, never duplicate the blob (the same discipline EntryView applies to
/// log segments). The simulator's messages arrive whole, so there is no
/// offset/done chunking.
struct InstallSnapshotRequest {
  Term term = 0;
  NodeId leader = kNoNode;
  SnapshotHandle snapshot;  ///< never null on the wire
};

struct InstallSnapshotResponse {
  Term term = 0;
  bool success = false;
  LogIndex last_index = 0;  ///< snapshot index the follower now covers
};

struct ClientRequest {
  Command command;
};

struct ClientResponse {
  bool ok = false;
  NodeId leader_hint = kNoNode;  ///< where to retry when ok == false
  std::uint64_t client_seq = 0;
  LogIndex index = 0;            ///< log position the command committed at
  std::string result;            ///< state-machine output
};

using Message = std::variant<AppendEntriesRequest, AppendEntriesResponse, PreVoteRequest,
                             PreVoteResponse, RequestVoteRequest, RequestVoteResponse,
                             InstallSnapshotRequest, InstallSnapshotResponse, ClientRequest,
                             ClientResponse>;

/// Message classes for traffic/CPU accounting.
enum class MsgKind : std::uint8_t {
  Heartbeat,
  HeartbeatResponse,
  Append,
  AppendResponse,
  PreVote,
  PreVoteResponse,
  Vote,
  VoteResponse,
  InstallSnapshot,
  InstallSnapshotResponse,
  Client,
  ClientResponse,
};

/// Rough wire sizes used for traffic accounting (bytes), one overload per
/// payload type so dispatch sites that already know the alternative (or that
/// visit for other reasons) don't pay a second variant dispatch.
[[nodiscard]] inline std::size_t approx_size(const AppendEntriesRequest& r) {
  std::size_t s = 64;
  for (const auto& e : r.entries) s += 48 + e.command.payload.size();
  return s;
}
[[nodiscard]] inline std::size_t approx_size(const AppendEntriesResponse&) { return 64; }
[[nodiscard]] inline std::size_t approx_size(const PreVoteRequest&) { return 48; }
[[nodiscard]] inline std::size_t approx_size(const PreVoteResponse&) { return 32; }
[[nodiscard]] inline std::size_t approx_size(const RequestVoteRequest&) { return 48; }
[[nodiscard]] inline std::size_t approx_size(const RequestVoteResponse&) { return 32; }
[[nodiscard]] inline std::size_t approx_size(const InstallSnapshotRequest& r) {
  return 64 + (r.snapshot ? r.snapshot->data.size() : 0);
}
[[nodiscard]] inline std::size_t approx_size(const InstallSnapshotResponse&) { return 48; }
[[nodiscard]] inline std::size_t approx_size(const ClientRequest& r) {
  return 48 + r.command.payload.size();
}
[[nodiscard]] inline std::size_t approx_size(const ClientResponse& r) {
  return 48 + r.result.size();
}

[[nodiscard]] inline std::size_t approx_size(const Message& m) {
  return std::visit([](const auto& p) { return approx_size(p); }, m);
}

}  // namespace dyna::raft
