// Shared-log segment store: the zero-copy replication substrate.
//
// The Raft log is append-mostly and its replicated suffixes are immutable
// once written, so the log is held as a chain of ref-counted immutable
// segments plus one open (mutable) tail:
//
//      runs_[0]        runs_[1]     ...   runs_[k]          tail_
//   [1 .. a]           [a+1 .. b]         [c+1 .. d]     [d+1 .. last]
//   (segment handle, slice) — contiguous, ascending      plain vector
//
// When the leader needs to ship entries it asks for a view(first, count):
// the open tail is sealed (a move, not a copy) into a fresh segment and the
// view is a (segment handle, span) pair. Every follower's AppendEntries in
// the same broadcast round shares the same segment — one suffix
// materialization per round regardless of follower count, and copying an
// in-flight message is a reference-count bump instead of a vector deep-copy.
//
// The same sharing works on the receive side: a follower whose log ends
// exactly where an incoming view begins adopts the view's segment into its
// own run chain (append_view) — replicas of one cluster physically share
// the immutable bulk of the log, one materialization cluster-wide. This is
// the shared-relay-log idea production systems use (cf. tarantool's
// relay/limbo design) transplanted into the simulator.
//
// Truncation (follower conflict resolution) is copy-on-write: whole runs
// past the cut are dropped; a straddling run's surviving prefix is copied
// into the open tail while outstanding views keep the old immutable segment
// alive. A view is therefore always valid for the lifetime of its handle,
// no matter what the log does afterwards.
//
// Compaction (snapshots) is the mirror image at the front: runs fully
// behind the snapshot line are unlinked (segments die when the last view
// drops them); a run straddling the line keeps its segment whole and only
// advances its slice bookkeeping. Segments are never split or rewritten, so
// the view-validity guarantee above holds across compaction too.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "raft/types.hpp"

namespace dyna::raft {

/// Immutable, ref-counted run of contiguous log entries. `first_index` is the
/// Raft index of entries()[0]; entries are never mutated after construction.
class LogSegment {
 public:
  LogSegment(LogIndex first_index, std::vector<LogEntry> entries)
      : first_(first_index), entries_(std::move(entries)) {
    DYNA_EXPECTS(first_ >= 1);
  }

  [[nodiscard]] LogIndex first_index() const noexcept { return first_; }
  [[nodiscard]] LogIndex last_index() const noexcept { return first_ + entries_.size() - 1; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const LogEntry* data() const noexcept { return entries_.data(); }

 private:
  LogIndex first_;
  std::vector<LogEntry> entries_;
};

using SegmentHandle = std::shared_ptr<const LogSegment>;

/// Cheap shared view over a contiguous span of log entries inside one
/// segment: a handle plus (first index, count). Copying a view bumps a
/// reference count; the entries themselves are never copied. This is what
/// AppendEntries carries on the wire instead of a std::vector<LogEntry>.
class EntryView {
 public:
  EntryView() = default;

  EntryView(SegmentHandle segment, LogIndex first, std::size_t count)
      : segment_(std::move(segment)),
        offset_(static_cast<std::uint32_t>(first - segment_->first_index())),
        count_(static_cast<std::uint32_t>(count)) {
    DYNA_EXPECTS(segment_ != nullptr);
    DYNA_EXPECTS(first >= segment_->first_index());
    DYNA_EXPECTS(first + count - 1 <= segment_->last_index());
  }

  /// Wrap a loose entry vector in a fresh single-use segment (tests and
  /// ad-hoc message construction; the replication path goes through
  /// RaftLog::view instead).
  [[nodiscard]] static EntryView of(std::vector<LogEntry> entries) {
    if (entries.empty()) return {};
    const LogIndex first = entries.front().index;
    const std::size_t count = entries.size();
    return EntryView(std::make_shared<const LogSegment>(first, std::move(entries)), first,
                     count);
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] const LogEntry* begin() const noexcept {
    return count_ == 0 ? nullptr : segment_->data() + offset_;
  }
  [[nodiscard]] const LogEntry* end() const noexcept { return begin() + count_; }

  [[nodiscard]] const LogEntry& operator[](std::size_t i) const noexcept {
    return segment_->data()[offset_ + i];
  }

  [[nodiscard]] LogIndex first_index() const noexcept {
    return count_ == 0 ? 0 : segment_->first_index() + offset_;
  }
  [[nodiscard]] LogIndex last_index() const noexcept {
    return count_ == 0 ? 0 : first_index() + count_ - 1;
  }

  /// Backing segment (RaftLog::append_view adopts it; empty views have none).
  [[nodiscard]] const SegmentHandle& segment() const noexcept { return segment_; }

  /// Content equality (element-wise); identity of the backing segment is
  /// irrelevant — a materialized copy and a shared view compare equal.
  friend bool operator==(const EntryView& a, const EntryView& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  SegmentHandle segment_;
  std::uint32_t offset_ = 0;
  std::uint32_t count_ = 0;
};

/// The Raft log proper: sealed immutable runs + open tail. Indices are
/// 1-based and contiguous from first_index() to last_index(); a snapshot
/// compacts the prefix up to compacted_to() away (whole-segment drops — see
/// compact_to). Random access is O(1) in the tail, O(1) through the run hint
/// for the sequential access patterns Raft has (apply, prev-term checks),
/// and O(log #runs) otherwise; view() and append_view() are allocation-free
/// on the broadcast path.
class RaftLog {
 public:
  [[nodiscard]] LogIndex last_index() const noexcept {
    return tail_first_ - 1 + tail_.size();
  }
  /// Index of the first live (uncompacted) entry: compacted_to() + 1.
  [[nodiscard]] LogIndex first_index() const noexcept { return compacted_to_ + 1; }
  /// Number of live entries (equals last_index() while uncompacted).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(last_index() - compacted_to_);
  }
  [[nodiscard]] bool empty() const noexcept { return last_index() == compacted_to_; }

  /// Highest index folded into a snapshot (0 = nothing compacted), and its
  /// term. Entries at or below this index are no longer addressable.
  [[nodiscard]] LogIndex compacted_to() const noexcept { return compacted_to_; }
  [[nodiscard]] Term compacted_term() const noexcept { return compacted_term_; }

  /// 1-based access (Raft indices); index must be live.
  [[nodiscard]] const LogEntry& entry(LogIndex index) const {
    DYNA_EXPECTS(index >= first_index() && index <= last_index());
    if (index >= tail_first_) return tail_[static_cast<std::size_t>(index - tail_first_)];
    const Run& run = run_containing(index);
    return run.seg->data()[run.offset + (index - run.first)];
  }

  /// 0-based access (container idiom; entry i has Raft index i+1; only
  /// meaningful while uncompacted).
  [[nodiscard]] const LogEntry& operator[](std::size_t i) const { return entry(i + 1); }

  [[nodiscard]] const LogEntry& front() const { return entry(first_index()); }
  [[nodiscard]] const LogEntry& back() const { return entry(last_index()); }

  /// Term of the entry at `index`; 0 for the empty prefix (index 0). The
  /// compaction point itself stays addressable (its term is remembered for
  /// AppendEntries prev-term checks); anything below it is gone.
  [[nodiscard]] Term term_at(LogIndex index) const {
    if (index == compacted_to_) return compacted_term_;
    return entry(index).term;
  }

  /// Append one entry at the end; returns a reference valid until the next
  /// mutation (the node hands it straight to Storage::append).
  const LogEntry& append(LogEntry e) {
    DYNA_EXPECTS(e.index == last_index() + 1);
    tail_.push_back(std::move(e));
    return tail_.back();
  }

  /// Adopt a replicated view wholesale: the view's segment is spliced into
  /// this log's run chain by reference. The receive-side equivalent of
  /// view() — the follower's copy of the replicated suffix IS the leader's
  /// segment, so the cluster holds one materialization of the bulk log.
  /// Precondition: the view starts exactly at this log's next index.
  void append_view(const EntryView& v) {
    if (v.empty()) return;
    DYNA_EXPECTS(v.first_index() == last_index() + 1);
    seal_tail();
    runs_.push_back(Run{v.segment(),
                        static_cast<std::uint32_t>(v.first_index() - v.segment()->first_index()),
                        static_cast<std::uint32_t>(v.size()), v.first_index()});
    tail_first_ = v.last_index() + 1;
  }

  /// Remove all entries with index >= first_removed. Copy-on-write: views
  /// handed out earlier keep their (now superseded) segments alive. The
  /// compacted prefix is committed state and can never be cut.
  void truncate_from(LogIndex first_removed) {
    DYNA_EXPECTS(first_removed > compacted_to_);
    if (first_removed > last_index()) return;
    if (first_removed >= tail_first_) {
      tail_.resize(static_cast<std::size_t>(first_removed - tail_first_));
      return;
    }
    // The cut lands in sealed territory: the whole open tail goes, then
    // whole runs past the cut.
    tail_.clear();
    while (!runs_.empty() && runs_.back().first >= first_removed) {
      runs_.pop_back();
    }
    if (!runs_.empty() && runs_.back().last_index() >= first_removed) {
      // Straddling run: its surviving prefix becomes the new open tail.
      const Run run = runs_.back();
      runs_.pop_back();
      tail_first_ = run.first;
      tail_.assign(run.seg->data() + run.offset,
                   run.seg->data() + run.offset + (first_removed - run.first));
    } else {
      tail_first_ = first_removed;
    }
    hint_ = 0;
  }

  /// Drop everything up to and including index c (whose term is term_c),
  /// folding it behind the snapshot line. Granularity is whole segments:
  /// runs fully behind the cut are unlinked (their segments die once the
  /// last outstanding EntryView releases them); a run straddling the cut
  /// only advances its slice bookkeeping — the segment stays whole and
  /// alive, which is why views handed out before compaction remain valid
  /// without any copy-on-write here.
  void compact_to(LogIndex c, Term term_c) {
    DYNA_EXPECTS(c >= compacted_to_ && c <= last_index());
    if (c == compacted_to_) return;
    if (c >= tail_first_) seal_tail();
    std::size_t drop = 0;
    while (drop < runs_.size() && runs_[drop].last_index() <= c) ++drop;
    runs_.erase(runs_.begin(), runs_.begin() + static_cast<std::ptrdiff_t>(drop));
    if (!runs_.empty() && runs_.front().first <= c) {
      Run& r = runs_.front();
      const auto skip = static_cast<std::uint32_t>(c + 1 - r.first);
      r.offset += skip;
      r.count -= skip;
      r.first = c + 1;
    }
    compacted_to_ = c;
    compacted_term_ = term_c;
    hint_ = 0;
  }

  /// Replace the whole log with nothing but a snapshot line at (s, term_s):
  /// the InstallSnapshot path when the local log conflicts with (or is
  /// entirely behind) the leader's snapshot. All segments are released.
  void install(LogIndex s, Term term_s) {
    runs_.clear();
    tail_.clear();
    tail_first_ = s + 1;
    compacted_to_ = s;
    compacted_term_ = term_s;
    hint_ = 0;
  }

  /// Invoke fn(entry) for each index in [first, last], walking runs and the
  /// tail as contiguous arrays — the apply loop's sequential scan without a
  /// per-entry run lookup.
  template <typename Fn>
  void for_each(LogIndex first, LogIndex last, Fn&& fn) const {
    DYNA_EXPECTS(first >= first_index() && last <= last_index());
    LogIndex i = first;
    while (i <= last && i < tail_first_) {
      const Run& run = run_containing(i);
      const LogIndex stop = std::min(last, run.last_index());
      const LogEntry* p = run.seg->data() + run.offset + (i - run.first);
      for (; i <= stop; ++i, ++p) fn(*p);
    }
    for (; i <= last; ++i) fn(tail_[static_cast<std::size_t>(i - tail_first_)]);
  }

  /// Shared view over [first, first + count). Seals the open tail when the
  /// span reaches into it, so the common broadcast pattern — every follower
  /// asks for the same fresh suffix — materializes that suffix exactly once
  /// (as a move) and then hands out reference-counted aliases.
  [[nodiscard]] EntryView view(LogIndex first, std::size_t count) {
    if (count == 0) return {};
    DYNA_EXPECTS(first >= first_index() && first + count - 1 <= last_index());
    const LogIndex last = first + count - 1;
    if (last >= tail_first_) seal_tail();
    const Run& run = run_containing(first);
    if (run.last_index() >= last) {
      // Runs are always index-aligned with their segment (entry .index
      // fields are global), so a within-run span shares directly.
      DYNA_ASSERT(run.first - run.offset == run.seg->first_index());
      return EntryView(run.seg, first, count);
    }
    // Span crosses run boundaries (deep catch-up of a lagging follower):
    // materialize once for this request.
    std::vector<LogEntry> merged;
    merged.reserve(count);
    for (LogIndex i = first; i <= last; ++i) merged.push_back(entry(i));
    return EntryView(std::make_shared<const LogSegment>(first, std::move(merged)), first,
                     count);
  }

  /// Replace the whole log (crash recovery): the durable suffix `entries`
  /// starts right after the durable compaction line (c, term_c). Entries
  /// must be contiguous from c + 1, as Storage guarantees.
  void assign(LogIndex c, Term term_c, std::span<const LogEntry> entries) {
    DYNA_EXPECTS(entries.empty() || entries.front().index == c + 1);
    runs_.clear();
    tail_first_ = c + 1;
    tail_.assign(entries.begin(), entries.end());
    compacted_to_ = c;
    compacted_term_ = term_c;
    hint_ = 0;
  }

  /// Uncompacted recovery: entries are 1-based from index 1.
  void assign(std::span<const LogEntry> entries) { assign(0, 0, entries); }

  /// Number of sealed runs (introspection / tests).
  [[nodiscard]] std::size_t sealed_runs() const noexcept { return runs_.size(); }

 private:
  /// One sealed slice: `count` entries of `seg` starting at `offset`,
  /// holding log positions [first, first + count).
  struct Run {
    SegmentHandle seg;
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    LogIndex first = 0;

    [[nodiscard]] LogIndex last_index() const noexcept { return first + count - 1; }
  };

  void seal_tail() {
    if (tail_.empty()) return;
    const std::uint32_t n = static_cast<std::uint32_t>(tail_.size());
    runs_.push_back(Run{std::make_shared<const LogSegment>(tail_first_, std::move(tail_)), 0,
                        n, tail_first_});
    tail_first_ += n;
    tail_.clear();  // moved-from: make the empty state explicit
  }

  [[nodiscard]] const Run& run_containing(LogIndex index) const {
    // Raft's sealed-territory reads cluster on recently written runs (apply
    // loop, prev-entry term checks), so try the remembered run first and
    // fall back to binary search.
    if (hint_ < runs_.size()) {
      const Run& h = runs_[hint_];
      if (h.first <= index && index <= h.last_index()) return h;
    }
    const auto it =
        std::upper_bound(runs_.begin(), runs_.end(), index,
                         [](LogIndex i, const Run& r) { return i < r.first; });
    DYNA_ASSERT(it != runs_.begin());
    hint_ = static_cast<std::size_t>((it - 1) - runs_.begin());
    return *(it - 1);
  }

  std::vector<Run> runs_;       ///< contiguous, ascending, non-empty
  std::vector<LogEntry> tail_;  ///< open run after the last sealed slice
  LogIndex tail_first_ = 1;     ///< Raft index of tail_[0]
  LogIndex compacted_to_ = 0;   ///< snapshot line: entries <= this are gone
  Term compacted_term_ = 0;     ///< term of the entry at compacted_to_
  mutable std::size_t hint_ = 0;  ///< last run touched by run_containing
};

}  // namespace dyna::raft
