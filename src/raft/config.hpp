// Raft node configuration.
//
// The three variants evaluated in the paper are expressed purely through this
// struct plus the election policy:
//   * Raft      — etcd defaults: Et 1000 ms, h 100 ms, 100 ms ticks, static policy
//   * Raft-Low  — 1/10 of the defaults (Et 100 ms, h 10 ms, 10 ms ticks)
//   * Dynatune  — measurement + datagram heartbeats + per-follower timers +
//                 DynatunePolicy, 1 ms ticks
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace dyna::raft {

using namespace std::chrono_literals;

struct RaftConfig {
  /// Default (fallback) election timeout Et. The static policy always uses
  /// it; Dynatune starts from it and falls back to it on timer expiry.
  Duration election_timeout = 1000ms;

  /// Default (fallback) heartbeat interval h.
  Duration heartbeat_interval = 100ms;

  /// Timeout quantization. etcd counts timeouts in ticks; randomizedTimeout
  /// is therefore a whole number of ticks in [Et, 2·Et). Baseline Raft uses
  /// 100 ms ticks; Dynatune's fork re-times at 1 ms. Duration{0} disables
  /// quantization (continuous draw).
  Duration tick = 100ms;

  /// Run the pre-vote phase before real elections (modern Raft default).
  bool prevote = true;

  /// Attach HeartbeatMeta to heartbeats and echo it on responses
  /// (measurement plumbing; enabled in Dynatune mode).
  bool measure_network = false;

  /// Send empty AppendEntries (heartbeats) over the lossy datagram channel
  /// instead of the reliable one (the paper's UDP/TCP hybrid).
  bool datagram_heartbeats = false;

  /// One heartbeat timer per follower (required for per-path h tuning)
  /// instead of one broadcast timer.
  bool per_follower_heartbeat = false;

  /// §IV-E extension (a): skip an empty heartbeat when replication traffic
  /// to that follower within the current interval already proves liveness.
  /// Recovers part of Dynatune's peak-throughput cost under load.
  bool suppress_heartbeats_under_load = false;

  /// §IV-E extension (b): keep a single broadcast heartbeat timer but pace
  /// it at the *minimum* tuned h across followers (only meaningful with
  /// per_follower_heartbeat = false and a tuning policy). Trades some
  /// per-path pacing precision for one timer instead of n-1.
  bool consolidated_heartbeat_timer = false;

  /// Replication batching window: entries submitted within this window are
  /// shipped in one AppendEntries per follower.
  Duration batch_delay = 500us;

  /// Cap on entries per AppendEntries message.
  std::size_t max_entries_per_append = 4096;

  /// Leader-side group commit: client commands arriving within the
  /// batch_delay window coalesce into ONE multi-command log entry (a batch
  /// frame), with per-command completion fan-out when it applies. Admission
  /// is pipelined — a new batch accumulates while earlier ones are still in
  /// flight. Off by default: every reference trace predates this knob.
  bool group_commit = false;

  /// Group-commit caps: a batch seals early once it holds this many commands
  /// or this many payload bytes (whichever trips first).
  std::size_t max_batch_commands = 64;
  std::size_t max_batch_bytes = 64 * 1024;

  /// Leader ReadIndex fast path: read-only client commands (classified by
  /// the host's read hook) are answered from the leader's state machine
  /// after a quorum round confirms leadership — no log write, no
  /// replication. Off by default.
  bool read_index = false;

  /// Snapshot/compaction policy: take a state-machine snapshot once more
  /// than this many applied entries sit behind the last compaction point.
  /// 0 disables snapshots entirely (the default — reference runs replay
  /// from index 1 and stay byte-identical to the pre-snapshot behaviour).
  std::size_t snapshot_threshold = 0;

  /// How many applied entries to keep in the log behind the snapshot so
  /// slightly-lagging followers catch up via AppendEntries instead of a
  /// full InstallSnapshot (cf. etcd's snapshot-catchup-entries).
  std::size_t snapshot_trailing = 64;

  /// Factory presets matching the paper's variants (election policy is
  /// supplied separately — see raft/election_policy.hpp).
  [[nodiscard]] static RaftConfig etcd_default() { return RaftConfig{}; }

  [[nodiscard]] static RaftConfig raft_low() {
    RaftConfig c;
    c.election_timeout = 100ms;
    c.heartbeat_interval = 10ms;
    c.tick = 10ms;
    return c;
  }

  [[nodiscard]] static RaftConfig dynatune() {
    RaftConfig c;
    c.tick = 1ms;
    c.measure_network = true;
    c.datagram_heartbeats = true;
    c.per_follower_heartbeat = true;
    return c;
  }
};

}  // namespace dyna::raft
