// Keyspace router for sharded multi-raft: maps kvstore keys onto one of k
// independent consensus groups, deterministically, by hash or by contiguous
// lexicographic range. Also the client-side leader cache: sharded clients
// publish the leader a completed op discovered, later clients start there
// instead of re-walking the group (redirect handling stays in kv::KvClient;
// the router only shortcuts the first hop).
//
// Header-only and state-light on purpose — a router is per-run driver state,
// not simulation state, so it never participates in the reset contract.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dyna::shard {

/// How the keyspace splits across groups.
enum class PartitionMode : std::uint8_t {
  Hash,   ///< FNV-1a over the whole key, modulo shards (uniform, order-free)
  Range,  ///< contiguous ranges over the key's first 8 bytes (big-endian)
};

[[nodiscard]] constexpr std::string_view to_string(PartitionMode mode) noexcept {
  return mode == PartitionMode::Hash ? "hash" : "range";
}

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards, PartitionMode mode = PartitionMode::Hash)
      : shards_(shards), mode_(mode), leader_(shards, kNoNode) {
    DYNA_EXPECTS(shards >= 1);
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] PartitionMode mode() const noexcept { return mode_; }

  /// Deterministic shard assignment for a key.
  [[nodiscard]] std::size_t shard_of(std::string_view key) const noexcept {
    if (shards_ == 1) return 0;
    if (mode_ == PartitionMode::Hash) return hash64(key) % shards_;
    // Range: bucket the first 8 bytes read big-endian, so shard boundaries
    // are contiguous in lexicographic key order (shard i owns keys whose
    // prefix lies in [i*step, (i+1)*step)).
    return static_cast<std::size_t>(prefix64(key) / range_step());
  }

  /// A key that lands on `shard` and embeds `stem` (deterministic; same
  /// inputs always yield the same key). Hash mode appends the smallest salt
  /// that hashes home; range mode prepends the 8-byte big-endian midpoint of
  /// the shard's range — raw bytes, which the length-prefixed kv encoding
  /// carries verbatim. This is how pinned workload sessions draw keys that
  /// stay inside their own group.
  [[nodiscard]] std::string key_for_shard(std::size_t shard, std::string_view stem) const {
    DYNA_EXPECTS(shard < shards_);
    if (shards_ == 1) return std::string(stem);
    if (mode_ == PartitionMode::Range) {
      const std::uint64_t mid = range_step() * shard + range_step() / 2;
      std::string key(8, '\0');
      for (int b = 0; b < 8; ++b) {
        key[static_cast<std::size_t>(b)] =
            static_cast<char>((mid >> (56 - 8 * b)) & 0xFF);
      }
      key += stem;
      return key;
    }
    std::string key;
    for (std::uint64_t salt = 0;; ++salt) {
      key.assign(stem);
      key += '@';
      key += std::to_string(salt);
      if (shard_of(key) == shard) return key;
    }
  }

  // ---- Leader cache ----

  /// Publish a leader discovered for `shard` (a completed op's final target).
  void note_leader(std::size_t shard, NodeId leader) {
    DYNA_EXPECTS(shard < shards_);
    leader_[shard] = leader;
  }

  /// Last published leader for `shard`, or kNoNode if none yet.
  [[nodiscard]] NodeId leader_hint(std::size_t shard) const {
    DYNA_EXPECTS(shard < shards_);
    return leader_[shard];
  }

  /// Invalidate every cached leader entry naming `node` (the node left the
  /// cluster). A stale cache entry would seed new clients with a dead first
  /// hop; after invalidation they fall back to the ordinary leader walk.
  void note_removed(NodeId node) {
    for (NodeId& cached : leader_) {
      if (cached == node) cached = kNoNode;
    }
  }

 private:
  [[nodiscard]] static std::uint64_t hash64(std::string_view s) noexcept {
    // FNV-1a 64-bit.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  [[nodiscard]] static std::uint64_t prefix64(std::string_view s) noexcept {
    std::uint64_t p = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      const std::uint64_t byte =
          b < s.size() ? static_cast<std::uint8_t>(s[b]) : 0;
      p = (p << 8) | byte;
    }
    return p;
  }

  /// Width of one range-mode bucket; the +1 keeps prefix/step < shards even
  /// for the all-0xFF prefix.
  [[nodiscard]] std::uint64_t range_step() const noexcept {
    return std::numeric_limits<std::uint64_t>::max() / shards_ + 1;
  }

  std::size_t shards_;
  PartitionMode mode_;
  std::vector<NodeId> leader_;
};

}  // namespace dyna::shard
