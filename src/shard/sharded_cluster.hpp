// Sharded multi-raft deployment: k independent cluster::Cluster consensus
// groups multiplexed onto ONE Simulator and ONE Network. Sharing the
// substrate is the point — every group's traffic rides the same network
// (block-diagonal link table: one n×n tile per group, sparse promotion
// for touched cross-group pairs), so groups genuinely contend for the
// shared event queue and the network's jitter rng, which is the
// interference question the policy grid probes.
//
// Group g owns network node ids [g*servers, (g+1)*servers); client
// endpoints land after every server. Per-group seeds fork from the master
// seed in fixed group order, so a run is a pure function of (config, seed)
// exactly like a single cluster.
//
// Reset contract: reset-in-place per trial, same as Cluster (fresh ==
// reused, pinned by tests). The three-phase protocol matters — every
// group's reset_begin runs first (node teardown against the OLD simulator),
// then the shared Simulator/Network reset exactly once, then every group's
// reset_finish (rebuild against the fresh substrate). A geometry change
// (different shards or servers-per-group) rebuilds the Network outright:
// installed handlers capture the id→group mapping, which a re-stride would
// silently invalidate.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "shard/router.hpp"

namespace dyna::shard {

struct ShardedConfig {
  std::size_t shards = 2;
  /// Router partition mode baked into make_router().
  PartitionMode partition = PartitionMode::Hash;
  /// Per-group template: `servers` is the group size, `seed` the master
  /// seed (each group derives its own), everything else applies verbatim to
  /// every group. shared_sim/shared_net/node_base must stay null/0 — the
  /// ShardedCluster fills them per group.
  cluster::ClusterConfig group;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedConfig config);

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  /// Rebuild-in-place for a new trial; observationally identical to a fresh
  /// ShardedCluster(config). Geometry changes take the network-rebuild path.
  void reset(ShardedConfig config);

  /// Seed-only fast path, mirroring Cluster::reset(seed).
  void reset(std::uint64_t seed);

  // ---- Accessors ----
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *net_; }
  [[nodiscard]] const ShardedConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t shards() const noexcept { return groups_.size(); }
  [[nodiscard]] std::size_t total_servers() const noexcept {
    return cfg_.shards * cfg_.group.servers;
  }
  [[nodiscard]] cluster::Cluster& shard(std::size_t s) {
    DYNA_EXPECTS(s < groups_.size());
    return *groups_[s];
  }

  /// A router matching this deployment's shard count and partition mode.
  [[nodiscard]] ShardRouter make_router() const {
    return ShardRouter(cfg_.shards, cfg_.partition);
  }

  /// Advance simulation until every group has a leader (true) or `timeout`
  /// elapses. Groups elect concurrently on the shared substrate.
  bool await_all_leaders(Duration timeout);

  /// The seed group g derives from `master` (exposed for tests).
  [[nodiscard]] static std::uint64_t group_seed(std::uint64_t master, std::size_t g) {
    return derive_seed(master, 0x5AAD00 + g);
  }

  /// Fork an independent RNG stream for drivers built on this deployment
  /// (same derivation as Cluster::fork_rng, keyed by the master seed).
  [[nodiscard]] Rng fork_rng(std::uint64_t stream) const {
    return Rng(derive_seed(cfg_.group.seed, 0xC0FFEE ^ stream));
  }

 private:
  [[nodiscard]] cluster::ClusterConfig group_config(std::size_t g);
  void build_network();
  void build_groups();

  ShardedConfig cfg_;
  // Declaration order is destruction order in reverse: groups_ dies first
  // (node/timer destructors cancel against the still-live simulator), then
  // the network, then the simulator.
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<cluster::Cluster>> groups_;
};

/// True when every group can commit (service_available per group).
[[nodiscard]] bool all_shards_available(ShardedCluster& sc);

}  // namespace dyna::shard
