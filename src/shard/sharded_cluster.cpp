#include "shard/sharded_cluster.hpp"

namespace dyna::shard {

ShardedCluster::ShardedCluster(ShardedConfig config) : cfg_(std::move(config)) {
  DYNA_EXPECTS(cfg_.shards >= 1);
  DYNA_EXPECTS(cfg_.group.servers >= 1);
  DYNA_EXPECTS(cfg_.group.shared_sim == nullptr && cfg_.group.shared_net == nullptr);
  DYNA_EXPECTS(cfg_.group.node_base == 0);
  build_network();
  build_groups();
}

cluster::ClusterConfig ShardedCluster::group_config(std::size_t g) {
  cluster::ClusterConfig c = cfg_.group;
  c.seed = group_seed(cfg_.group.seed, g);
  c.shared_sim = &sim_;
  c.shared_net = net_.get();
  c.node_base = static_cast<NodeId>(g * cfg_.group.servers);
  return c;
}

void ShardedCluster::build_network() {
  // Same rng stream derivation as a standalone Cluster: the network draws
  // jitter from fork(1) of the master seed. One shared stream for every
  // group — link-level randomness couples the groups by construction.
  Rng master(cfg_.group.seed);
  net_ = std::make_unique<net::Network>(sim_, master.fork(1), cfg_.group.transport);
  // Block-diagonal link table: one servers^2 tile per shard instead of a
  // dense (shards*servers)^2 matrix. Cross-group pairs (client endpoints,
  // injected partitions) materialize sparsely on first touch; the storage
  // layout never changes the rng draw order, so sharded traces are
  // bit-identical to the dense layout's.
  net_->configure_groups(cfg_.group.servers, cfg_.shards);
  net_->set_default_schedule(cfg_.group.links);
}

void ShardedCluster::build_groups() {
  groups_.reserve(cfg_.shards);
  for (std::size_t g = 0; g < cfg_.shards; ++g) {
    // Construction order is the id-assignment order: group g's ctor calls
    // add_node() exactly `servers` times, landing on its node_base slice.
    groups_.push_back(std::make_unique<cluster::Cluster>(group_config(g)));
  }
}

void ShardedCluster::reset(ShardedConfig config) {
  const bool regeometry = config.shards != groups_.size() ||
                          config.group.servers != cfg_.group.servers;
  cfg_ = std::move(config);
  DYNA_EXPECTS(cfg_.shards >= 1);
  DYNA_EXPECTS(cfg_.group.servers >= 1);
  DYNA_EXPECTS(cfg_.group.shared_sim == nullptr && cfg_.group.shared_net == nullptr);
  DYNA_EXPECTS(cfg_.group.node_base == 0);

  if (regeometry) {
    // Different shard count or group size: installed network handlers
    // capture the old id→group mapping, so rebuild the network outright.
    // Groups die first, against the still-live simulator.
    groups_.clear();
    sim_.reset();
    build_network();
    build_groups();
    return;
  }

  // In-place path: three phases, substrate reset exactly once in the middle.
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    groups_[g]->reset_begin(group_config(g));
  }
  sim_.reset();
  Rng master(cfg_.group.seed);
  net_->reset_for_trial(master.fork(1), total_servers(), cfg_.group.transport);
  net_->set_default_schedule(cfg_.group.links);
  for (auto& g : groups_) g->reset_finish();
}

void ShardedCluster::reset(std::uint64_t seed) {
  cfg_.group.seed = seed;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    groups_[g]->reset_begin(group_seed(seed, g));
  }
  sim_.reset();
  Rng master(seed);
  net_->reset_for_trial(master.fork(1), total_servers());
  for (auto& g : groups_) g->reset_finish();
}

bool ShardedCluster::await_all_leaders(Duration timeout) {
  const TimePoint deadline = sim_.now() + timeout;
  auto all_led = [this] {
    for (auto& g : groups_) {
      if (g->current_leader() == kNoNode) return false;
    }
    return true;
  };
  while (!all_led()) {
    if (sim_.now() >= deadline) return false;
    sim_.run_for(std::chrono::milliseconds(10));
  }
  return true;
}

bool all_shards_available(ShardedCluster& sc) {
  for (std::size_t g = 0; g < sc.shards(); ++g) {
    if (!cluster::service_available(sc.shard(g))) return false;
  }
  return true;
}

}  // namespace dyna::shard
