// Sharded KV client: one kv::KvClient per consensus group behind a shared
// ShardRouter. Each op routes by key, rides the group client's normal
// redirect/retry machinery, and on success publishes the discovered leader
// back to the router — so every client constructed later starts its first op
// at the right server instead of walking the group.
//
// One ShardedKvClient == one logical client session whose key mix spans
// shards (a closed-loop session, an open-loop generator, an example). Group
// clients fork their rngs from this client's stream in fixed shard order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kvstore/client.hpp"
#include "shard/sharded_cluster.hpp"

namespace dyna::shard {

class ShardedKvClient {
 public:
  ShardedKvClient(ShardedCluster& sc, ShardRouter& router, Rng rng,
                  kv::KvClient::Config config = {});

  ShardedKvClient(const ShardedKvClient&) = delete;
  ShardedKvClient& operator=(const ShardedKvClient&) = delete;

  void put(std::string key, std::string value, kv::KvClient::DoneFn done);
  void get(std::string key, kv::KvClient::DoneFn done);
  void del(std::string key, kv::KvClient::DoneFn done);

  /// Raw encoded command; the routing key is decoded from the payload.
  void submit(std::string payload, kv::KvClient::DoneFn done);

  [[nodiscard]] std::size_t shard_of(std::string_view key) const {
    return router_->shard_of(key);
  }
  [[nodiscard]] kv::KvClient& client(std::size_t shard) {
    DYNA_EXPECTS(shard < clients_.size());
    return *clients_[shard];
  }
  [[nodiscard]] const ShardRouter& router() const noexcept { return *router_; }

  // ---- Counters (aggregated over group clients) ----
  [[nodiscard]] std::uint64_t completed() const noexcept;
  [[nodiscard]] std::uint64_t failed() const noexcept;
  [[nodiscard]] std::uint64_t retries() const noexcept;

 private:
  /// Wrap a completion so a successful op publishes the leader it ended on.
  [[nodiscard]] kv::KvClient::DoneFn publish_leader(std::size_t shard,
                                                    kv::KvClient::DoneFn done);

  ShardRouter* router_;
  std::vector<std::unique_ptr<kv::KvClient>> clients_;  // one per shard
};

}  // namespace dyna::shard
