#include "shard/client.hpp"

#include <utility>

#include "kvstore/command.hpp"

namespace dyna::shard {

ShardedKvClient::ShardedKvClient(ShardedCluster& sc, ShardRouter& router, Rng rng,
                                 kv::KvClient::Config config)
    : router_(&router) {
  DYNA_EXPECTS(router.shards() == sc.shards());
  clients_.reserve(sc.shards());
  for (std::size_t s = 0; s < sc.shards(); ++s) {
    auto client = std::make_unique<kv::KvClient>(sc.sim(), sc.network(),
                                                 sc.shard(s).server_ids(), rng.fork(s),
                                                 config);
    // Start at the router's cached leader when one is known — this is what
    // makes the cache pay: only the first client per shard walks the group.
    if (const NodeId hint = router_->leader_hint(s); hint != kNoNode) {
      client->set_target(hint);
    }
    clients_.push_back(std::move(client));
  }
}

kv::KvClient::DoneFn ShardedKvClient::publish_leader(std::size_t shard,
                                                     kv::KvClient::DoneFn done) {
  return [this, shard, done = std::move(done)](const kv::ClientResult& r) {
    if (r.ok) router_->note_leader(shard, clients_[shard]->target());
    done(r);
  };
}

void ShardedKvClient::put(std::string key, std::string value, kv::KvClient::DoneFn done) {
  const std::size_t s = router_->shard_of(key);
  clients_[s]->put(std::move(key), std::move(value), publish_leader(s, std::move(done)));
}

void ShardedKvClient::get(std::string key, kv::KvClient::DoneFn done) {
  const std::size_t s = router_->shard_of(key);
  clients_[s]->get(std::move(key), publish_leader(s, std::move(done)));
}

void ShardedKvClient::del(std::string key, kv::KvClient::DoneFn done) {
  const std::size_t s = router_->shard_of(key);
  clients_[s]->del(std::move(key), publish_leader(s, std::move(done)));
}

void ShardedKvClient::submit(std::string payload, kv::KvClient::DoneFn done) {
  const auto view = kv::decode_view(payload);
  DYNA_EXPECTS(view.has_value());
  const std::size_t s = router_->shard_of(view->key);
  clients_[s]->submit(std::move(payload), publish_leader(s, std::move(done)));
}

std::uint64_t ShardedKvClient::completed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients_) n += c->completed();
  return n;
}

std::uint64_t ShardedKvClient::failed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients_) n += c->failed();
  return n;
}

std::uint64_t ShardedKvClient::retries() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients_) n += c->retries();
  return n;
}

}  // namespace dyna::shard
