// Console reporting helpers shared by the bench binaries.
//
// Every bench prints plain aligned tables so `for b in build/bench/*; do $b;
// done` yields a readable transcript comparable against the paper.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace dyna::metrics {

/// Fixed-width console table. Column widths adapt to content.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) {
    DYNA_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
    }
    print_row(out, header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "-+-";
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& r : rows_) print_row(out, r, width);
  }

  [[nodiscard]] static std::string num(double v, int decimals = 1) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%-*s", static_cast<int>(width[c]), cells[c].c_str());
      if (c + 1 < cells.size()) std::fprintf(out, " | ");
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner for bench output.
inline void banner(const std::string& title, std::FILE* out = stdout) {
  std::fprintf(out, "\n===== %s =====\n", title.c_str());
}

}  // namespace dyna::metrics
