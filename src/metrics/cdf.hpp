// Empirical CDFs — the presentation form of the paper's Figs 4 and 8.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dyna::metrics {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  explicit EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
  }

  void add(double x) {
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// P(X <= x).
  [[nodiscard]] double probability_at(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
  }

  /// Quantile with linear interpolation, q in [0, 1].
  [[nodiscard]] double quantile(double q) const {
    DYNA_EXPECTS(!sorted_.empty());
    return Summary::percentile_sorted(sorted_, q);
  }

  [[nodiscard]] double mean() const {
    Welford w;
    for (double x : sorted_) w.add(x);
    return w.mean();
  }

  /// Evenly spaced (value, cumulative probability) points for plotting;
  /// at most `max_points` of them.
  [[nodiscard]] std::vector<std::pair<double, double>> points(std::size_t max_points = 50) const {
    std::vector<std::pair<double, double>> pts;
    if (sorted_.empty() || max_points == 0) return pts;
    const std::size_t stride = std::max<std::size_t>(1, sorted_.size() / max_points);
    for (std::size_t i = 0; i < sorted_.size(); i += stride) {
      pts.emplace_back(sorted_[i],
                       static_cast<double>(i + 1) / static_cast<double>(sorted_.size()));
    }
    if (pts.back().second < 1.0) {
      pts.emplace_back(sorted_.back(), 1.0);
    }
    return pts;
  }

  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Print a compact one-line CDF (the paper's Fig 4/8 presentation).
inline void print_quantiles(const std::string& label, const std::vector<double>& samples_ms,
                            std::FILE* out = stdout) {
  EmpiricalCdf cdf(samples_ms);
  if (cdf.empty()) {
    std::fprintf(out, "%s: no samples\n", label.c_str());
    return;
  }
  std::fprintf(out, "%s CDF (ms): ", label.c_str());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    std::fprintf(out, "p%.0f=%.0f ", q * 100.0, cdf.quantile(q));
  }
  std::fprintf(out, "mean=%.0f n=%zu\n", cdf.mean(), cdf.count());
}

}  // namespace dyna::metrics
