// Time series recorder — the presentation form of Figs 6 and 7.
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dyna::metrics {

/// A named sequence of (time, value) points sampled by an experiment driver.
class TimeSeries {
 public:
  struct Point {
    double t_sec;
    double value;
  };

  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void push(TimePoint t, double value) { points_.push_back({to_sec(t), value}); }
  void push_sec(double t_sec, double value) { points_.push_back({t_sec, value}); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  [[nodiscard]] double min_value() const {
    DYNA_EXPECTS(!points_.empty());
    double m = points_.front().value;
    for (const auto& p : points_) m = std::min(m, p.value);
    return m;
  }

  [[nodiscard]] double max_value() const {
    DYNA_EXPECTS(!points_.empty());
    double m = points_.front().value;
    for (const auto& p : points_) m = std::max(m, p.value);
    return m;
  }

  /// Average value over points with t in [t0, t1).
  [[nodiscard]] double mean_in(double t0_sec, double t1_sec) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& p : points_) {
      if (p.t_sec >= t0_sec && p.t_sec < t1_sec) {
        sum += p.value;
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  }

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace dyna::metrics
