// Deterministic parallel trial execution.
//
// run_trials(n, fn) evaluates fn(trial_index, trial_seed) for every trial and
// collects the results *in trial order*, regardless of which worker finished
// first or how many workers exist. Each trial's seed derives from the master
// seed and the trial index alone, so results are bit-identical across thread
// counts — verified by tests/test_parallel.cpp.
//
// Dispatch is chunked: the trial range is cut into contiguous blocks (one
// pool task per block, not per trial), so a 10k-trial sweep posts ~8 tasks
// per worker instead of 10k type-erased closures. A block descriptor is five
// scalars and fits the pool's inline task buffer — the per-trial allocation
// the old std::function path paid is gone entirely. Results land in the
// pre-sized output vector; a block is a contiguous span written by a single
// worker, so false sharing is confined to the block boundaries. Workers that
// finish early steal whole blocks from loaded peers (see thread_pool.hpp),
// which is what keeps the sweep's tail short when trial costs are skewed.
//
// Worker-local state: `trial_fn` may key reusable per-worker state (warmed
// simulation substrates) off ThreadPool::current_worker(), which is stable
// for the duration of a block and always < the thread count passed here.
#pragma once

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"

namespace dyna::par {

/// Trial blocks per worker the default chunking aims for. 8 gives stealing
/// enough granularity to balance a skewed tail while keeping the task count
/// (and the cold-start cost of any worker-local substrate) trivial.
inline constexpr std::size_t kBlocksPerWorker = 8;

[[nodiscard]] constexpr std::size_t default_block_size(std::size_t trials,
                                                       unsigned threads) noexcept {
  const std::size_t blocks = static_cast<std::size_t>(threads) * kBlocksPerWorker;
  const std::size_t size = (trials + blocks - 1) / blocks;
  return size > 0 ? size : 1;
}

/// Evaluate fn(trial_index, derive_seed(master_seed, trial_index)) for every
/// trial in [0, trials) in parallel, discarding return values — for callables
/// that stream their own output. `block` overrides the contiguous-block size
/// (0 = pick automatically). The callable is shared by every block and
/// invoked concurrently from several workers.
template <typename Fn>
void for_trials(std::size_t trials, std::uint64_t master_seed, Fn&& trial_fn,
                unsigned threads = std::thread::hardware_concurrency(),
                std::size_t block = 0) {
  if (trials == 0) return;
  if (threads == 0) threads = 1;
  if (block == 0) block = default_block_size(trials, threads);

  ThreadPool pool(threads);
  auto& fn = trial_fn;

  std::vector<ThreadPool::Task> tasks;
  tasks.reserve((trials + block - 1) / block);
  for (std::size_t begin = 0; begin < trials; begin += block) {
    const std::size_t end = begin + block < trials ? begin + block : trials;
    tasks.emplace_back([&fn, begin, end, master_seed] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i, derive_seed(master_seed, i));
      }
    });
  }
  pool.post_batch(std::move(tasks));
  pool.wait_idle();
}

/// Evaluate fn(trial_index, derive_seed(master_seed, trial_index)) for every
/// trial in [0, trials), in parallel, collecting results in trial order.
/// `block` overrides the contiguous-block size (0 = pick automatically).
template <typename Result, typename Fn>
std::vector<Result> run_trials(std::size_t trials, std::uint64_t master_seed, Fn&& trial_fn,
                               unsigned threads = std::thread::hardware_concurrency(),
                               std::size_t block = 0) {
  std::vector<Result> results(trials);
  Result* const out = results.data();
  // One callable shared by every block and invoked concurrently from several
  // workers — the same thread-safety contract the old std::function path had.
  auto& fn = trial_fn;
  for_trials(
      trials, master_seed,
      [out, &fn](std::size_t i, std::uint64_t seed) { out[i] = fn(i, seed); }, threads, block);
  return results;
}

}  // namespace dyna::par
