// Deterministic parallel trial execution.
//
// run_trials(n, fn) evaluates fn(trial_index, trial_seed) for every trial and
// collects the results *in trial order*, regardless of which worker finished
// first or how many workers exist. Each trial's seed derives from the master
// seed and the trial index alone, so results are bit-identical across thread
// counts — verified by tests/test_parallel.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"

namespace dyna::par {

template <typename Result>
std::vector<Result> run_trials(std::size_t trials, std::uint64_t master_seed,
                               const std::function<Result(std::size_t, std::uint64_t)>& trial_fn,
                               unsigned threads = std::thread::hardware_concurrency()) {
  std::vector<Result> results(trials);
  if (trials == 0) return results;
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < trials; ++i) {
    pool.post([&results, &trial_fn, i, master_seed] {
      results[i] = trial_fn(i, derive_seed(master_seed, i));
    });
  }
  pool.wait_idle();
  return results;
}

}  // namespace dyna::par
