// Work-stealing thread pool for trial-level parallelism.
//
// Discrete-event trials are single-threaded by design (determinism); Monte
// Carlo sweeps run many independent trials, so the parallelism lives here.
// The pool is built for the sweep-scale dispatch pattern (thousands of small
// tasks posted in one burst):
//
//  * one deque per worker instead of a single mutex-guarded queue — posting
//    and popping touch only that worker's lock, and an idle worker steals
//    from the *back* of a loaded peer's deque. Owners drain front-to-back:
//    a burst posts each worker a contiguous run of trial blocks, so the
//    owner ascends its run in order (which keeps streaming sinks' reorder
//    window small) while thieves peel blocks off the far end — the
//    tail-balancing steal;
//  * tasks are sim::InlineFn (48-byte small-buffer callables) rather than
//    std::function — a chunk descriptor is a few scalars, so posting a task
//    never heap-allocates;
//  * post_batch() hands a whole burst of tasks to the pool with one lock
//    acquisition per worker deque, not one per task.
//
// Exceptions propagate to the waiter (first one wins), matching the old
// single-queue pool. Tasks may post further tasks from inside a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sim/inline_fn.hpp"

namespace dyna::par {

class ThreadPool {
 public:
  /// Move-only small-buffer callable (see sim/inline_fn.hpp — a generic
  /// utility that happens to live with its first user, the event engine).
  using Task = sim::InlineFn;

  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency()) {
    if (threads == 0) threads = 1;
    shard_count_ = threads;
    shards_ = std::make_unique<Shard[]>(threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Index of the calling thread within the pool that owns it, in
  /// [0, size-of-that-pool), or -1 off-pool. The id is per *thread*, not per
  /// pool instance: a callable running on pool A that touches pool B must
  /// not use it to index B's state. Tasks dispatched through run_trials /
  /// for_trials always execute on that call's own pool, so trial callables
  /// may safely key worker-local state (reused simulation substrates) on it.
  [[nodiscard]] static int current_worker() noexcept { return tls_worker_; }

  void post(Task task) {
    DYNA_EXPECTS(static_cast<bool>(task));
    DYNA_EXPECTS(!stopping_);
    unfinished_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_relaxed);
    // One of *this* pool's workers posting from inside a task feeds its own
    // deque (cache-warm, no cross-thread contention); everyone else —
    // external threads and other pools' workers, whose id can exceed this
    // pool's shard count — round-robins across shards.
    const int self = tls_worker_;
    const unsigned target =
        self >= 0 && static_cast<unsigned>(self) < shard_count_
            ? static_cast<unsigned>(self)
            : next_shard_.fetch_add(1, std::memory_order_relaxed) % shard_count_;
    {
      std::lock_guard lock(shards_[target].mu);
      shards_[target].deque.push_back(std::move(task));
    }
    wake(1);
  }

  /// Post a whole burst with one lock acquisition per worker deque. Tasks
  /// are dealt out in contiguous runs (task i goes to deque i*P/N), so a
  /// burst of chunked trial blocks keeps each worker on a contiguous span of
  /// the results array until stealing kicks in.
  void post_batch(std::vector<Task> tasks) {
    if (tasks.empty()) return;
    DYNA_EXPECTS(!stopping_);
    unfinished_.fetch_add(tasks.size(), std::memory_order_relaxed);
    queued_.fetch_add(tasks.size(), std::memory_order_relaxed);
    const std::size_t n = tasks.size();
    const std::size_t shards = shard_count_;
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shards && begin < n; ++s) {
      const std::size_t end = n * (s + 1) / shards;
      if (end <= begin) continue;
      std::lock_guard lock(shards_[s].mu);
      for (std::size_t j = begin; j < end; ++j) {
        shards_[s].deque.push_back(std::move(tasks[j]));
      }
      begin = end;
    }
    wake(n);
  }

  /// Block until every posted task has finished. Rethrows the first task
  /// exception (if any occurred).
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return unfinished_.load(std::memory_order_acquire) == 0; });
    if (first_error_) {
      const std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  /// One per worker, padded so neighbouring deques never share a line.
  struct alignas(64) Shard {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void wake(std::size_t tasks) {
    // The empty critical section pairs with the worker's predicate check:
    // without it a notify could land between a worker's last scan and its
    // wait, and a burst would sit until the next post.
    { std::lock_guard lock(mu_); }
    if (tasks > 1) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  /// Pop from the front of the own deque (ascend the posted run in order),
  /// else steal from the back of the first non-empty peer (the work the
  /// owner would reach last).
  bool try_get(unsigned self, Task& out) {
    {
      Shard& own = shards_[self];
      std::lock_guard lock(own.mu);
      if (!own.deque.empty()) {
        out = std::move(own.deque.front());
        own.deque.pop_front();
        return true;
      }
    }
    for (unsigned d = 1; d < shard_count_; ++d) {
      Shard& victim = shards_[(self + d) % shard_count_];
      std::lock_guard lock(victim.mu);
      if (!victim.deque.empty()) {
        out = std::move(victim.deque.back());
        victim.deque.pop_back();
        return true;
      }
    }
    return false;
  }

  void worker_loop(unsigned self) {
    tls_worker_ = static_cast<int>(self);
    for (;;) {
      Task task;
      if (try_get(self, task)) {
        queued_.fetch_sub(1, std::memory_order_relaxed);
        try {
          task();
        } catch (...) {
          std::lock_guard lock(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        task.reset();  // destroy captures before signalling idle
        if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(mu_);
          idle_cv_.notify_all();
        }
        continue;
      }
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || queued_.load(std::memory_order_acquire) > 0;
      });
      if (stopping_ && queued_.load(std::memory_order_acquire) == 0) return;
    }
  }

  static thread_local int tls_worker_;

  std::unique_ptr<Shard[]> shards_;
  unsigned shard_count_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_shard_{0};

  std::atomic<std::size_t> queued_{0};      ///< tasks sitting in deques
  std::atomic<std::size_t> unfinished_{0};  ///< posted but not yet finished

  std::mutex mu_;
  std::condition_variable cv_;       ///< work available / stopping
  std::condition_variable idle_cv_;  ///< unfinished_ reached zero
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

inline thread_local int ThreadPool::tls_worker_ = -1;

}  // namespace dyna::par
