// Minimal fixed-size thread pool for trial-level parallelism.
//
// Discrete-event trials are single-threaded by design (determinism); Monte
// Carlo sweeps run many independent trials, so the parallelism lives here:
// N worker threads drain a task queue. Exceptions propagate to the waiter.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace dyna::par {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void post(std::function<void()> task) {
    DYNA_EXPECTS(task != nullptr);
    {
      std::lock_guard lock(mu_);
      DYNA_EXPECTS(!stopping_);
      queue_.push_back(std::move(task));
      ++unfinished_;
    }
    cv_.notify_one();
  }

  /// Block until every posted task has finished. Rethrows the first task
  /// exception (if any occurred).
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
    if (first_error_) {
      const std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        task();
      } catch (...) {
        std::lock_guard lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard lock(mu_);
        --unfinished_;
        if (unfinished_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t unfinished_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace dyna::par
