// Simulated message network with two transport classes.
//
// The paper's implementation sends heartbeats over UDP (so loss/reordering is
// observable — that is what the measurement needs) and all other Raft traffic
// over TCP. We model the same split:
//
//  * Transport::Datagram — each message independently suffers the link's
//    delay + jitter, can be lost, duplicated, and reordered (reordering
//    emerges from jitter; no ordering is enforced).
//  * Transport::Reliable — never lost and delivered in FIFO order per
//    directed (src,dst) pair; packet loss instead manifests as retransmission
//    delay (a small number of RTT-scale penalties), mimicking TCP recovery.
//
// Node pause ("container sleep", the paper's fault model): a paused node's
// datagrams are dropped on delivery (UDP buffer overflow) while reliable
// messages queue and flush on resume (kernel TCP buffering).
//
// Hot-path layout (see ARCHITECTURE.md): payloads are typed net::Message
// values (no std::any, no RTTI), in-flight messages live in a recycled arena
// so a delivery event is a sub-48-byte closure with no allocation, and all
// per-directed-link state (schedule override, FIFO watermark, TCP turbulence,
// partition flag) sits in an indexed Link table — one load per send where the
// seed engine did four red-black-tree lookups.
//
// Link-table layout (kilo-node geometries): by default the table is one
// dense n*n tile covering every node — the classic single-cluster shape.
// A sharded deployment calls configure_groups(g, k) before adding nodes,
// which switches the table to a *block-diagonal* layout: one g*g tile per
// group for the k*g nodes of the tiled region, O(k*g^2) memory instead of
// O((k*g)^2). Pairs outside a tile (cross-group servers, client endpoints
// added after the tiled region) stay *routable but stateless*: they share
// the network's jitter rng and the default ConditionSchedule, and reads see
// one immutable default Link. The first state-bearing touch (a send's FIFO
// watermark or TCP stream update, set_blocked, set_link_schedule) promotes
// the pair into a sparse side table with full per-pair state — so semantics
// are exactly those of the dense table, pay-per-touched-pair.
//
// Trial reset (sweep substrate): every Link carries a trial-epoch stamp.
// reset_for_trial bumps the network's epoch instead of walking the table;
// a link whose stamp is stale is rewound to its freshly-built state on
// first touch. Reset cost is O(nodes + touched cross-pairs), independent of
// the tile storage size — what keeps reset-in-place sweeps alive at
// thousand-node geometries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/condition.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dyna::net {

enum class Transport : std::uint8_t {
  Datagram,  ///< lossy, unordered (UDP-like) — used for Dynatune heartbeats
  Reliable,  ///< lossless, FIFO per pair, loss => extra delay (TCP-like)
};

/// Called on the destination node when a message arrives.
using Handler = std::function<void(NodeId from, const Message& payload)>;

/// Per-node traffic counters (message accounting for CPU/bandwidth models).
struct NodeTraffic {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t received_bytes = 0;
  std::uint64_t lost = 0;           ///< datagrams dropped by link loss
  std::uint64_t dropped_paused = 0; ///< datagrams dropped because node paused
};

/// Node-level processing stalls: models CPU oversubscription, GC pauses and
/// scheduler hiccups (the paper's testbed ran five 4-core containers on a
/// 12-core Xeon). While a node is stalled, its outgoing messages queue until
/// the stall ends and incoming deliveries are deferred — a correlated
/// disturbance across all of the node's links, which is precisely what trips
/// aggressively-tuned static timeouts (Raft-Low) while Dynatune's σ-term
/// absorbs it into the measured RTT distribution.
struct StallConfig {
  /// Mean gap between stalls per node; zero disables stalls.
  Duration mean_interval{0};
  /// Stall durations are lognormal with this median (ms) ...
  double duration_median_ms = 30.0;
  /// ... and this ln-space sigma.
  double duration_sigma = 1.0;
};

class Network {
 public:
  /// Knobs for the reliable transport's loss-recovery model.
  struct Config {
    /// Extra delay charged per simulated retransmission round.
    Duration retransmit_penalty = std::chrono::milliseconds(20);
    /// Cap on retransmission rounds per message (keeps tails bounded).
    int max_retransmits = 8;
    /// Processing-stall process applied to every node.
    StallConfig stall;
    /// TCP turbulence after an abrupt RTT increase: when a link's RTT jumps
    /// by more than `turbulence_threshold`, the sender's RTO/cwnd state is
    /// stale — segments in flight look lost, the head of the stream is
    /// spuriously retransmitted with exponential backoff, and in-order
    /// delivery blocks everything behind it. We model this as a stream
    /// outage: reliable messages sent inside the turbulence window depart
    /// when the window closes. Datagram traffic is unaffected — this
    /// asymmetry is exactly why Dynatune moves heartbeats to UDP.
    /// Only streams that were *active* at the jump carry stale RTO state; an
    /// idle connection's first post-jump packet just sees the new RTT. A
    /// stream counts as active if it sent within max(4 x old RTT, 250 ms).
    bool tcp_turbulence = true;
    double turbulence_threshold = 0.5;     ///< relative RTT jump that triggers it
    double turbulence_duration_rtts = 1.5; ///< outage length in new-RTT units
  };

  Network(sim::Simulator& simulator, Rng rng, Config config)
      : sim_(&simulator), rng_(std::move(rng)), config_(config) {}

  Network(sim::Simulator& simulator, Rng rng)
      : Network(simulator, std::move(rng), Config{}) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Switch the link table to the block-diagonal layout: `groups` tiles of
  /// `group_size` x `group_size`, covering node ids [0, groups*group_size).
  /// Must be called before any node is added; the geometry is fixed for the
  /// network's lifetime (a geometry change rebuilds the Network — installed
  /// handlers capture the id→group mapping anyway, see shard::ShardedCluster).
  /// Nodes added beyond the tiled region (client endpoints) take the sparse
  /// cross-pair path. Never calling this keeps the classic dense layout.
  void configure_groups(std::size_t group_size, std::size_t groups);

  [[nodiscard]] std::size_t group_size() const noexcept { return group_size_; }
  [[nodiscard]] std::size_t groups() const noexcept { return group_count_; }

  /// Register a node; returns its id. Handlers may be set/replaced later
  /// (nodes are constructed after the network exists).
  NodeId add_node(Handler handler = nullptr) {
    const NodeId id = add_nodes(1);
    nodes_.back().handler = std::move(handler);
    return id;
  }

  /// Register `count` nodes at once; returns the first id (ids are
  /// contiguous). One table growth for the whole batch — cluster
  /// construction uses this so the dense table is allocated exactly once at
  /// its final stride instead of re-striding per server.
  NodeId add_nodes(std::size_t count);

  void set_handler(NodeId node, Handler handler) {
    state(node).handler = std::move(handler);
  }

  [[nodiscard]] bool has_handler(NodeId node) const {
    return static_cast<bool>(state(node).handler);
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Return to the freshly-built state for a new trial while keeping the big
  /// allocations warm: the link table, the in-flight message arena and the
  /// per-node state vectors stay allocated; the RNG is replaced and all
  /// per-trial state (traffic counters, stall windows, pause/parked queues,
  /// link overrides, FIFO watermarks, TCP stream state, partition flags) is
  /// logically cleared. Link state is cleared *lazily*: the trial epoch is
  /// bumped and each Link rewinds on its first touch of the new trial, so
  /// the reset itself is O(nodes + touched cross-pairs) — it never walks the
  /// tile storage. Node handlers are configuration, not trial state, and
  /// survive for the node indices that survive; `node_count` resizes the
  /// tables when the next trial needs a different cluster size (in grouped
  /// mode the tiled geometry is fixed, so `node_count` must equal
  /// groups*group_size — a geometry change rebuilds the Network). The reset
  /// contract (fresh-construction equivalence) is pinned by
  /// tests/test_trial_reuse.cpp and tests/test_net_equivalence.cpp.
  void reset_for_trial(Rng rng, std::size_t node_count);

  /// Same, additionally replacing the transport config (sweeps whose cells
  /// vary retransmit/stall/turbulence knobs).
  void reset_for_trial(Rng rng, std::size_t node_count, Config config) {
    config_ = config;
    reset_for_trial(std::move(rng), node_count);
  }

  /// Default schedule for every link without a specific override.
  void set_default_schedule(ConditionSchedule schedule) {
    default_schedule_ = std::move(schedule);
  }

  /// Directed-link override. Use both orders for a symmetric path.
  void set_link_schedule(NodeId from, NodeId to, ConditionSchedule schedule) {
    link(from, to).override_schedule =
        std::make_unique<ConditionSchedule>(std::move(schedule));
  }

  /// Symmetric convenience: applies to both directions.
  void set_path_schedule(NodeId a, NodeId b, const ConditionSchedule& schedule) {
    set_link_schedule(a, b, schedule);
    set_link_schedule(b, a, schedule);
  }

  [[nodiscard]] const LinkCondition& condition(NodeId from, NodeId to) const {
    return schedule_for(link(from, to)).at(sim_->now());
  }

  /// Send `payload` from `from` to `to`. `bytes` feeds traffic accounting
  /// only; delivery semantics depend on the transport class.
  void send(NodeId from, NodeId to, Message payload, Transport transport,
            std::size_t bytes = 256);

  // ---- Fault injection -----------------------------------------------------

  /// Freeze / unfreeze a node's network endpoint (see file comment).
  void set_paused(NodeId node, bool paused);

  [[nodiscard]] bool paused(NodeId node) const { return state(node).paused; }

  /// Directionally block a link (network partition). Blocked messages are
  /// silently dropped for Datagram and for Reliable alike (a partition is
  /// indistinguishable from an endless outage, which TCP also cannot cross).
  void set_blocked(NodeId from, NodeId to, bool blocked) {
    link(from, to).blocked = blocked;
  }

  [[nodiscard]] bool link_blocked(NodeId from, NodeId to) const {
    return link(from, to).blocked;
  }

  /// Partition the node from everyone, both directions.
  void isolate(NodeId node, bool isolated) {
    for (NodeId other = 0; other < static_cast<NodeId>(nodes_.size()); ++other) {
      if (other == node) continue;
      set_blocked(node, other, isolated);
      set_blocked(other, node, isolated);
    }
  }

  // ---- Introspection --------------------------------------------------------

  [[nodiscard]] const NodeTraffic& traffic(NodeId node) const { return state(node).traffic; }

  /// Resident size of the link table (the scaling study's memory curve —
  /// see bench/fig_scale.cpp and bench/fig_shard.cpp): tile storage plus an
  /// estimate of the sparse cross-pair entries (hash node = key + Link + two
  /// pointers of bucket overhead). Deterministic for a given layout and ABI.
  [[nodiscard]] std::size_t link_table_bytes() const noexcept {
    return links_.capacity() * sizeof(Link) + cross_.size() * kCrossEntryBytes;
  }

  /// What a dense table over `nodes` endpoints would cost — the comparison
  /// baseline for the block-diagonal layout's memory claim.
  [[nodiscard]] static std::size_t dense_link_table_bytes(std::size_t nodes) noexcept {
    return nodes * nodes * sizeof(Link);
  }

  /// Touched cross-tile pairs currently materialized in the sparse table.
  [[nodiscard]] std::size_t cross_link_count() const noexcept { return cross_.size(); }

  /// Remaining stall time if `node` is stalled at `t` (lazy renewal process).
  [[nodiscard]] Duration stall_penalty(NodeId node, TimePoint t);

  /// Test hook: force the trial-epoch counter (exercises the wrap path of
  /// the epoch-stamped lazy reset without 2^32 real trials).
  void set_trial_epoch_for_test(std::uint32_t epoch) noexcept { trial_epoch_ = epoch; }

 private:
  struct StallWindow {
    TimePoint start = kNever;
    TimePoint end = kSimEpoch;
  };

  /// Advance the stall renewal process by one window.
  void roll_stall(StallWindow& window);

  struct NodeState {
    Handler handler;
    bool paused = false;
    /// Reliable messages that arrived while paused; flushed on resume.
    std::deque<std::pair<NodeId, Message>> parked;
    NodeTraffic traffic;
    StallWindow stall;
  };

  /// Per-directed-link TCP state for the turbulence model.
  struct StreamState {
    Duration last_rtt{0};
    TimePoint last_send = kNever;  // kNever => never sent
    TimePoint turbulent_until = kSimEpoch;
  };

  /// Everything the transport tracks about one directed (from,to) pair.
  /// Lives in a tile of the block-diagonal table (dense mode: the single
  /// tile), or in the sparse cross-pair table once touched. `epoch` is the
  /// lazy-reset stamp: a Link whose epoch differs from the network's
  /// trial_epoch_ is logically in its freshly-built state and is physically
  /// rewound on first access (see refresh()). The stamp lives in what used
  /// to be padding — sizeof(Link) is unchanged at 48 bytes on LP64, which
  /// the committed link_table_bytes reference columns depend on.
  struct Link {
    std::unique_ptr<ConditionSchedule> override_schedule;  ///< null => default
    TimePoint reliable_last_delivery = kSimEpoch;          ///< FIFO watermark
    StreamState stream;
    std::uint32_t epoch = 0;  ///< trial stamp; != trial_epoch_ => stale
    bool blocked = false;
  };

  /// Sparse cross-pair hash node estimate for link_table_bytes(): key,
  /// value, forward pointer + one bucket slot amortized.
  static constexpr std::size_t kCrossEntryBytes =
      sizeof(std::uint64_t) + sizeof(Link) + 2 * sizeof(void*);

  [[nodiscard]] bool valid(NodeId n) const noexcept {
    return n >= 0 && static_cast<std::size_t>(n) < nodes_.size();
  }

  NodeState& state(NodeId n) {
    DYNA_EXPECTS(valid(n));
    return nodes_[static_cast<std::size_t>(n)];
  }

  const NodeState& state(NodeId n) const {
    DYNA_EXPECTS(valid(n));
    return nodes_[static_cast<std::size_t>(n)];
  }

  [[nodiscard]] static std::uint64_t cross_key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  /// Rewind a stale Link to its freshly-built state (the lazy half of
  /// reset_for_trial). A stale stamp can never alias live state: stamps only
  /// ever equal a value trial_epoch_ has held, trial_epoch_ is monotone
  /// within its 32-bit period, and the wrap path below hard-clears every
  /// stamp before the counter re-enters old values.
  Link& refresh(Link& l) const noexcept {
    if (l.epoch != trial_epoch_) {
      l.override_schedule.reset();
      l.reliable_last_delivery = kSimEpoch;
      l.stream = StreamState{};
      l.blocked = false;
      l.epoch = trial_epoch_;
    }
    return l;
  }

  /// Storage cell for (from,to) if the pair lives in a tile: the dense
  /// single tile, or the group tile when both endpoints share a group.
  /// nullptr => cross-tile pair (sparse path).
  [[nodiscard]] Link* tile_slot(NodeId from, NodeId to) const noexcept {
    const auto f = static_cast<std::size_t>(from);
    const auto t = static_cast<std::size_t>(to);
    if (group_size_ == 0) return &links_[f * stride_ + t];
    const std::size_t g = f / group_size_;
    if (g >= group_count_ || g != t / group_size_) return nullptr;
    const std::size_t base = g * group_size_;
    return &links_[base * group_size_ + (f - base) * group_size_ + (t - base)];
  }

  /// The (from,to) Link with its per-trial state live (refreshed if stale).
  /// Cross-tile pairs are promoted into the sparse table on this path —
  /// mutating accessors and the send hot path need a real cell.
  Link& link(NodeId from, NodeId to) {
    DYNA_EXPECTS(valid(from) && valid(to));
    if (Link* l = tile_slot(from, to)) return refresh(*l);
    return refresh(cross_[cross_key(from, to)]);
  }

  /// Const read: an untouched cross-tile pair stays stateless and reads the
  /// shared immutable default Link (default schedule, unblocked, no stream).
  /// Refreshing a stale tile/sparse cell is logically const — it
  /// materializes the state reset_for_trial already promised.
  [[nodiscard]] const Link& link(NodeId from, NodeId to) const {
    DYNA_EXPECTS(valid(from) && valid(to));
    if (Link* l = tile_slot(from, to)) return refresh(*l);
    const auto it = cross_.find(cross_key(from, to));
    if (it == cross_.end()) return default_link_;
    return refresh(it->second);
  }

  /// Grow the dense tile after add_nodes. Batched construction allocates
  /// the exact final stride in one step; incremental add_node doubles the
  /// stride so k single adds re-stride O(log k) times, not k times.
  void grow_dense(std::size_t old_count);

  /// Eager fallback for the epoch wrap: physically rewind every tile cell
  /// so stale stamps from the previous 32-bit period cannot alias.
  void hard_reset_links();

  /// The schedule governing one link: its override if set, else the default.
  [[nodiscard]] const ConditionSchedule& schedule_for(const Link& l) const {
    return l.override_schedule != nullptr ? *l.override_schedule : default_schedule_;
  }

  /// Sample a one-way delay for the current condition of (from,to).
  [[nodiscard]] Duration sample_one_way_delay(const LinkCondition& cond);

  void deliver(NodeId from, NodeId to, const Message& payload, Transport transport,
               std::size_t bytes);

  /// `l` must be the (from,to) link — send() already holds it, so the hot
  /// path does not resolve the table index twice. Takes the payload by
  /// rvalue: one move from the sender's stack straight into the arena slot
  /// (the old by-value chain moved the variant three extra times per send).
  void schedule_delivery(Link& l, NodeId from, NodeId to, Message&& payload,
                         Transport transport, std::size_t bytes, Duration delay);

  /// Park `payload` in the in-flight arena; returns its slot.
  std::uint32_t arena_acquire(Message&& payload);

  /// Move the payload out of `slot` and recycle it.
  Message arena_release(std::uint32_t slot);

  sim::Simulator* sim_;
  Rng rng_;
  Config config_;
  ConditionSchedule default_schedule_{};
  std::vector<NodeState> nodes_;

  // ---- Link table ----
  /// Dense mode (group_size_ == 0): one stride_*stride_ tile, indexed
  /// from*stride_+to, stride_ >= node_count. Grouped mode: group_count_
  /// tiles of group_size_^2, tile g at offset g*group_size_^2.
  /// `mutable`: refresh() rewinds lazily-reset cells through const reads —
  /// observable state is unchanged (that is the reset contract).
  mutable std::vector<Link> links_;
  /// Touched cross-tile pairs (grouped mode only), keyed (from<<32)|to.
  mutable std::unordered_map<std::uint64_t, Link> cross_;
  /// Shared stateless entry read by untouched cross-tile pairs. Never
  /// mutated, never stamped — it *is* the freshly-built state.
  Link default_link_;
  std::size_t group_size_ = 0;   ///< 0 => dense single-tile mode
  std::size_t group_count_ = 1;
  std::size_t stride_ = 0;       ///< dense-mode row stride
  std::uint32_t trial_epoch_ = 1;

  /// In-flight message arena: a delivery event captures only a slot index,
  /// so scheduling it never allocates (the closure fits InlineFn's buffer)
  /// and slots are recycled through a free list.
  std::vector<Message> arena_;
  std::vector<std::uint32_t> arena_free_;
};

}  // namespace dyna::net
