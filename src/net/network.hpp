// Simulated message network with two transport classes.
//
// The paper's implementation sends heartbeats over UDP (so loss/reordering is
// observable — that is what the measurement needs) and all other Raft traffic
// over TCP. We model the same split:
//
//  * Transport::Datagram — each message independently suffers the link's
//    delay + jitter, can be lost, duplicated, and reordered (reordering
//    emerges from jitter; no ordering is enforced).
//  * Transport::Reliable — never lost and delivered in FIFO order per
//    directed (src,dst) pair; packet loss instead manifests as retransmission
//    delay (a small number of RTT-scale penalties), mimicking TCP recovery.
//
// Node pause ("container sleep", the paper's fault model): a paused node's
// datagrams are dropped on delivery (UDP buffer overflow) while reliable
// messages queue and flush on resume (kernel TCP buffering).
//
// Hot-path layout (see ARCHITECTURE.md): payloads are typed net::Message
// values (no std::any, no RTTI), in-flight messages live in a recycled arena
// so a delivery event is a sub-48-byte closure with no allocation, and all
// per-directed-link state (schedule override, FIFO watermark, TCP turbulence,
// partition flag) sits in one dense n*n table — one indexed load per send
// where the seed engine did four red-black-tree lookups.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/condition.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dyna::net {

enum class Transport : std::uint8_t {
  Datagram,  ///< lossy, unordered (UDP-like) — used for Dynatune heartbeats
  Reliable,  ///< lossless, FIFO per pair, loss => extra delay (TCP-like)
};

/// Called on the destination node when a message arrives.
using Handler = std::function<void(NodeId from, const Message& payload)>;

/// Per-node traffic counters (message accounting for CPU/bandwidth models).
struct NodeTraffic {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t received_bytes = 0;
  std::uint64_t lost = 0;           ///< datagrams dropped by link loss
  std::uint64_t dropped_paused = 0; ///< datagrams dropped because node paused
};

/// Node-level processing stalls: models CPU oversubscription, GC pauses and
/// scheduler hiccups (the paper's testbed ran five 4-core containers on a
/// 12-core Xeon). While a node is stalled, its outgoing messages queue until
/// the stall ends and incoming deliveries are deferred — a correlated
/// disturbance across all of the node's links, which is precisely what trips
/// aggressively-tuned static timeouts (Raft-Low) while Dynatune's σ-term
/// absorbs it into the measured RTT distribution.
struct StallConfig {
  /// Mean gap between stalls per node; zero disables stalls.
  Duration mean_interval{0};
  /// Stall durations are lognormal with this median (ms) ...
  double duration_median_ms = 30.0;
  /// ... and this ln-space sigma.
  double duration_sigma = 1.0;
};

class Network {
 public:
  /// Knobs for the reliable transport's loss-recovery model.
  struct Config {
    /// Extra delay charged per simulated retransmission round.
    Duration retransmit_penalty = std::chrono::milliseconds(20);
    /// Cap on retransmission rounds per message (keeps tails bounded).
    int max_retransmits = 8;
    /// Processing-stall process applied to every node.
    StallConfig stall;
    /// TCP turbulence after an abrupt RTT increase: when a link's RTT jumps
    /// by more than `turbulence_threshold`, the sender's RTO/cwnd state is
    /// stale — segments in flight look lost, the head of the stream is
    /// spuriously retransmitted with exponential backoff, and in-order
    /// delivery blocks everything behind it. We model this as a stream
    /// outage: reliable messages sent inside the turbulence window depart
    /// when the window closes. Datagram traffic is unaffected — this
    /// asymmetry is exactly why Dynatune moves heartbeats to UDP.
    /// Only streams that were *active* at the jump carry stale RTO state; an
    /// idle connection's first post-jump packet just sees the new RTT. A
    /// stream counts as active if it sent within max(4 x old RTT, 250 ms).
    bool tcp_turbulence = true;
    double turbulence_threshold = 0.5;     ///< relative RTT jump that triggers it
    double turbulence_duration_rtts = 1.5; ///< outage length in new-RTT units
  };

  Network(sim::Simulator& simulator, Rng rng, Config config)
      : sim_(&simulator), rng_(std::move(rng)), config_(config) {}

  Network(sim::Simulator& simulator, Rng rng)
      : Network(simulator, std::move(rng), Config{}) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a node; returns its id. Handlers may be set/replaced later
  /// (nodes are constructed after the network exists).
  NodeId add_node(Handler handler = nullptr) {
    nodes_.push_back(NodeState{});
    nodes_.back().handler = std::move(handler);
    grow_links();
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void set_handler(NodeId node, Handler handler) {
    state(node).handler = std::move(handler);
  }

  [[nodiscard]] bool has_handler(NodeId node) const {
    return static_cast<bool>(state(node).handler);
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Return to the freshly-built state for a new trial while keeping the big
  /// allocations warm: the dense n*n link table, the in-flight message arena
  /// and the per-node state vectors stay allocated; the RNG is replaced and
  /// all per-trial state (traffic counters, stall windows, pause/parked
  /// queues, link overrides, FIFO watermarks, TCP stream state, partition
  /// flags) is cleared. Node handlers are configuration, not trial state, and
  /// survive for the node indices that survive; `node_count` resizes the
  /// tables when the next trial needs a different cluster size. The reset
  /// contract (fresh-construction equivalence) is pinned by
  /// tests/test_trial_reuse.cpp.
  void reset_for_trial(Rng rng, std::size_t node_count);

  /// Same, additionally replacing the transport config (sweeps whose cells
  /// vary retransmit/stall/turbulence knobs).
  void reset_for_trial(Rng rng, std::size_t node_count, Config config) {
    config_ = config;
    reset_for_trial(std::move(rng), node_count);
  }

  /// Default schedule for every link without a specific override.
  void set_default_schedule(ConditionSchedule schedule) {
    default_schedule_ = std::move(schedule);
  }

  /// Directed-link override. Use both orders for a symmetric path.
  void set_link_schedule(NodeId from, NodeId to, ConditionSchedule schedule) {
    DYNA_EXPECTS(valid(from) && valid(to));
    link(from, to).override_schedule =
        std::make_unique<ConditionSchedule>(std::move(schedule));
  }

  /// Symmetric convenience: applies to both directions.
  void set_path_schedule(NodeId a, NodeId b, const ConditionSchedule& schedule) {
    set_link_schedule(a, b, schedule);
    set_link_schedule(b, a, schedule);
  }

  [[nodiscard]] const LinkCondition& condition(NodeId from, NodeId to) const {
    return schedule_for(link(from, to)).at(sim_->now());
  }

  /// Send `payload` from `from` to `to`. `bytes` feeds traffic accounting
  /// only; delivery semantics depend on the transport class.
  void send(NodeId from, NodeId to, Message payload, Transport transport,
            std::size_t bytes = 256);

  // ---- Fault injection -----------------------------------------------------

  /// Freeze / unfreeze a node's network endpoint (see file comment).
  void set_paused(NodeId node, bool paused);

  [[nodiscard]] bool paused(NodeId node) const { return state(node).paused; }

  /// Directionally block a link (network partition). Blocked messages are
  /// silently dropped for Datagram and for Reliable alike (a partition is
  /// indistinguishable from an endless outage, which TCP also cannot cross).
  void set_blocked(NodeId from, NodeId to, bool blocked) {
    DYNA_EXPECTS(valid(from) && valid(to));
    link(from, to).blocked = blocked;
  }

  /// Partition the node from everyone, both directions.
  void isolate(NodeId node, bool isolated) {
    for (NodeId other = 0; other < static_cast<NodeId>(nodes_.size()); ++other) {
      if (other == node) continue;
      set_blocked(node, other, isolated);
      set_blocked(other, node, isolated);
    }
  }

  // ---- Introspection --------------------------------------------------------

  [[nodiscard]] const NodeTraffic& traffic(NodeId node) const { return state(node).traffic; }

  /// Resident size of the dense n*n link table (the scaling study's memory
  /// curve — see bench/fig_scale.cpp). Deterministic for a given n and ABI.
  [[nodiscard]] std::size_t link_table_bytes() const noexcept {
    return links_.capacity() * sizeof(Link);
  }

  /// Remaining stall time if `node` is stalled at `t` (lazy renewal process).
  [[nodiscard]] Duration stall_penalty(NodeId node, TimePoint t);

 private:
  struct StallWindow {
    TimePoint start = kNever;
    TimePoint end = kSimEpoch;
  };

  /// Advance the stall renewal process by one window.
  void roll_stall(StallWindow& window);

  struct NodeState {
    Handler handler;
    bool paused = false;
    /// Reliable messages that arrived while paused; flushed on resume.
    std::deque<std::pair<NodeId, Message>> parked;
    NodeTraffic traffic;
    StallWindow stall;
  };

  /// Per-directed-link TCP state for the turbulence model.
  struct StreamState {
    Duration last_rtt{0};
    TimePoint last_send = kNever;  // kNever => never sent
    TimePoint turbulent_until = kSimEpoch;
  };

  /// Everything the transport tracks about one directed (from,to) pair.
  /// Lives in a dense node_count*node_count table, indexed from*n+to.
  struct Link {
    std::unique_ptr<ConditionSchedule> override_schedule;  ///< null => default
    TimePoint reliable_last_delivery = kSimEpoch;          ///< FIFO watermark
    StreamState stream;
    bool blocked = false;
  };

  [[nodiscard]] bool valid(NodeId n) const noexcept {
    return n >= 0 && static_cast<std::size_t>(n) < nodes_.size();
  }

  NodeState& state(NodeId n) {
    DYNA_EXPECTS(valid(n));
    return nodes_[static_cast<std::size_t>(n)];
  }

  const NodeState& state(NodeId n) const {
    DYNA_EXPECTS(valid(n));
    return nodes_[static_cast<std::size_t>(n)];
  }

  Link& link(NodeId from, NodeId to) {
    DYNA_EXPECTS(valid(from) && valid(to));
    return links_[static_cast<std::size_t>(from) * nodes_.size() +
                  static_cast<std::size_t>(to)];
  }

  [[nodiscard]] const Link& link(NodeId from, NodeId to) const {
    DYNA_EXPECTS(valid(from) && valid(to));
    return links_[static_cast<std::size_t>(from) * nodes_.size() +
                  static_cast<std::size_t>(to)];
  }

  /// Re-stride the dense link table after add_node (rare, never mid-flight
  /// on the hot path). Existing per-pair state is preserved.
  void grow_links();

  /// The schedule governing one link: its override if set, else the default.
  [[nodiscard]] const ConditionSchedule& schedule_for(const Link& l) const {
    return l.override_schedule != nullptr ? *l.override_schedule : default_schedule_;
  }

  /// Sample a one-way delay for the current condition of (from,to).
  [[nodiscard]] Duration sample_one_way_delay(const LinkCondition& cond);

  void deliver(NodeId from, NodeId to, const Message& payload, Transport transport,
               std::size_t bytes);

  /// `l` must be the (from,to) link — send() already holds it, so the hot
  /// path does not resolve the table index twice. Takes the payload by
  /// rvalue: one move from the sender's stack straight into the arena slot
  /// (the old by-value chain moved the variant three extra times per send).
  void schedule_delivery(Link& l, NodeId from, NodeId to, Message&& payload,
                         Transport transport, std::size_t bytes, Duration delay);

  /// Park `payload` in the in-flight arena; returns its slot.
  std::uint32_t arena_acquire(Message&& payload);

  /// Move the payload out of `slot` and recycle it.
  Message arena_release(std::uint32_t slot);

  sim::Simulator* sim_;
  Rng rng_;
  Config config_;
  ConditionSchedule default_schedule_{};
  std::vector<NodeState> nodes_;
  std::vector<Link> links_;  ///< dense n*n, indexed from*n+to

  /// In-flight message arena: a delivery event captures only a slot index,
  /// so scheduling it never allocates (the closure fits InlineFn's buffer)
  /// and slots are recycled through a free list.
  std::vector<Message> arena_;
  std::vector<std::uint32_t> arena_free_;
};

}  // namespace dyna::net
