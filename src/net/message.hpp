// Typed network payload over the closed set of wire messages.
//
// The network used to carry std::any, which costs one heap allocation per
// send (a raft::Message never fits std::any's small-object buffer) plus RTTI
// dispatch on every delivery. The simulation's wire vocabulary is closed —
// Raft protocol traffic plus a small scalar payload the transport suites and
// microbenches use — so a variant holds every payload inline and dispatch is
// an index check.
//
// Layering note: raft/message.hpp is a header-only *wire description* (plain
// structs over common/ vocabulary types, plus the shared-log EntryView from
// raft/log.hpp) with no dependency on the Raft engine, so including it here
// does not invert the net <- raft layering; the engine in raft/node.* still
// sits strictly above net. See ARCHITECTURE.md.
//
// Copy semantics on the wire: an AppendEntries payload carries an EntryView
// (segment handle + span), so the copies this class makes — into the
// in-flight arena, for datagram duplicates, into a paused node's parked
// queue — are reference-count bumps on an immutable segment, never entry
// deep-copies. That is what keeps large-cluster fan-out O(n).
#pragma once

#include <cstdint>
#include <utility>
#include <variant>

#include "raft/message.hpp"

namespace dyna::net {

/// Opaque scalar payload for transport-level tests and benchmarks (stands in
/// for "some datagram" where the content only matters for identity).
struct TestPayload {
  std::int64_t value = 0;
};

class Message {
 public:
  Message() = default;

  // NOLINTNEXTLINE(google-explicit-constructor): payload wrapper
  Message(raft::Message&& m) : payload_(std::move(m)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Message(const raft::Message& m) : payload_(m) {}
  Message(TestPayload p) : payload_(p) {}  // NOLINT(google-explicit-constructor)

  /// Convenience for the unit suites: send(a, b, 7, ...) builds a TestPayload.
  Message(int value) : payload_(TestPayload{value}) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool empty() const noexcept {
    return std::holds_alternative<std::monostate>(payload_);
  }

  /// The Raft protocol message, or nullptr when this is not Raft traffic.
  [[nodiscard]] const raft::Message* raft() const noexcept {
    return std::get_if<raft::Message>(&payload_);
  }

  /// The test payload, or nullptr when this is not test traffic.
  [[nodiscard]] const TestPayload* test() const noexcept {
    return std::get_if<TestPayload>(&payload_);
  }

 private:
  std::variant<std::monostate, raft::Message, TestPayload> payload_;
};

}  // namespace dyna::net
