#include "net/network.hpp"

#include <algorithm>
#include <cmath>

namespace dyna::net {

Duration Network::sample_one_way_delay(const LinkCondition& cond) {
  const double half_rtt_ms = to_ms(cond.rtt) / 2.0;
  // Jitter applies per direction; treat the configured jitter as the stddev
  // of the one-way perturbation (tc netem's `delay <d> <jitter>` semantics).
  const double jitter_ms = to_ms(cond.jitter);
  double delay_ms = half_rtt_ms;
  if (jitter_ms > 0.0) delay_ms += rng_.normal(0.0, jitter_ms);
  // OS/NIC noise floor: even a perfectly shaped link wobbles by tens of
  // microseconds. This breaks pathological event ties and keeps measured
  // RTT variance strictly positive (as on any real system).
  delay_ms += rng_.uniform(0.0, 0.1);
  // Physical floor: never faster than 5% of the nominal path, never negative.
  delay_ms = std::max(delay_ms, std::max(0.05 * half_rtt_ms, 0.01));
  return from_ms(delay_ms);
}

Duration Network::stall_penalty(NodeId node, TimePoint t) {
  if (config_.stall.mean_interval <= Duration{0}) return Duration{0};
  StallWindow& w = state(node).stall;
  if (w.start == kNever) {
    // Lazily seed the renewal process on first use.
    w.start = kSimEpoch;
    w.end = kSimEpoch;
    roll_stall(w);
  }
  while (w.end <= t) roll_stall(w);
  return t >= w.start ? w.end - t : Duration{0};
}

void Network::roll_stall(StallWindow& w) {
  const double gap_sec = rng_.exponential(1.0 / to_sec(config_.stall.mean_interval));
  w.start = w.end + from_ms(gap_sec * 1000.0);
  const double dur_ms =
      config_.stall.duration_median_ms * std::exp(config_.stall.duration_sigma * rng_.normal());
  w.end = w.start + from_ms(dur_ms);
}

void Network::configure_groups(std::size_t group_size, std::size_t groups) {
  DYNA_EXPECTS(nodes_.empty());
  DYNA_EXPECTS(group_size >= 1 && groups >= 1);
  group_size_ = group_size;
  group_count_ = groups;
  // One group_size^2 tile per group, allocated up front (the geometry is
  // fixed); the stamp-based lazy reset means we never walk this again.
  links_.clear();
  links_.resize(groups * group_size * group_size);
  cross_.clear();
}

NodeId Network::add_nodes(std::size_t count) {
  DYNA_EXPECTS(count >= 1);
  const std::size_t old_count = nodes_.size();
  const auto first = static_cast<NodeId>(old_count);
  nodes_.resize(old_count + count);
  // Grouped mode: the tiles already exist and ids beyond the tiled region
  // (client endpoints) take the sparse cross-pair path — no table growth.
  if (group_size_ == 0) grow_dense(old_count);
  return first;
}

void Network::grow_dense(std::size_t old_count) {
  const std::size_t n = nodes_.size();
  if (n <= stride_) return;  // still fits the current stride
  // Batched construction from empty allocates the exact final stride (the
  // committed link_table_bytes references are n^2 * sizeof(Link)); from a
  // live table the stride doubles so k incremental add_node calls re-stride
  // O(log k) times instead of k.
  const std::size_t new_stride = old_count == 0 ? n : std::max(n, stride_ * 2);
  std::vector<Link> grown(new_stride * new_stride);
  for (std::size_t from = 0; from < old_count; ++from) {
    for (std::size_t to = 0; to < old_count; ++to) {
      grown[from * new_stride + to] = std::move(links_[from * stride_ + to]);
    }
  }
  links_ = std::move(grown);
  stride_ = new_stride;
}

void Network::hard_reset_links() {
  for (Link& l : links_) {
    l.override_schedule.reset();
    l.reliable_last_delivery = kSimEpoch;
    l.stream = StreamState{};
    l.blocked = false;
    l.epoch = trial_epoch_;
  }
}

void Network::reset_for_trial(Rng rng, std::size_t node_count) {
  DYNA_EXPECTS(node_count >= 1);
  // A grouped table's geometry is fixed for the Network's lifetime: handlers
  // installed on it capture the id->group stride, so a geometry change must
  // rebuild the Network (shard::ShardedCluster::reset does exactly that).
  // Resetting back to the tiled region drops client endpoints, as in dense
  // mode.
  DYNA_EXPECTS(group_size_ == 0 || node_count == group_count_ * group_size_);
  rng_ = std::move(rng);
  nodes_.resize(node_count);
  for (NodeState& n : nodes_) {
    n.paused = false;
    n.parked.clear();
    n.traffic = NodeTraffic{};
    n.stall = StallWindow{};
  }
  if (group_size_ == 0 && node_count > stride_) {
    // Bigger cluster than the table has ever held: re-stride from scratch
    // (Link is move-only, so a fresh dense table is simpler than salvaging
    // the old stride).
    links_.clear();
    links_.resize(node_count * node_count);
    stride_ = node_count;
  }
  // Lazy link reset: bump the trial epoch instead of walking the table; a
  // Link with a stale stamp rewinds on first touch (refresh()). Touched
  // cross-tile pairs are simply dropped — an absent entry *is* the
  // freshly-built state. On 32-bit wrap the stamps from the previous epoch
  // period could alias new epochs, so that one reset in 2^32 walks the
  // table eagerly.
  cross_.clear();
  if (++trial_epoch_ == 0) {
    trial_epoch_ = 1;
    hard_reset_links();
  }
  // In-flight payloads whose delivery events died with the simulator reset.
  arena_.clear();
  arena_free_.clear();
}

std::uint32_t Network::arena_acquire(Message&& payload) {
  std::uint32_t slot;
  if (!arena_free_.empty()) {
    slot = arena_free_.back();
    arena_free_.pop_back();
    arena_[slot] = std::move(payload);
  } else {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(std::move(payload));
  }
  return slot;
}

Message Network::arena_release(std::uint32_t slot) {
  Message out = std::move(arena_[slot]);
  arena_[slot] = Message{};
  arena_free_.push_back(slot);
  return out;
}

void Network::send(NodeId from, NodeId to, Message payload, Transport transport,
                   std::size_t bytes) {
  DYNA_EXPECTS(valid(from) && valid(to));
  DYNA_EXPECTS(from != to);

  NodeState& src = state(from);
  src.traffic.sent += 1;
  src.traffic.sent_bytes += bytes;

  Link& l = link(from, to);
  if (l.blocked) return;  // partitioned: vanishes

  const LinkCondition cond = schedule_for(l).at(sim_->now());
  Duration delay = sample_one_way_delay(cond);
  // A stalled sender's packet leaves when the stall ends; a stalled receiver
  // processes it when its own stall ends.
  delay += stall_penalty(from, sim_->now());
  delay += stall_penalty(to, sim_->now() + delay);

  if (transport == Transport::Datagram) {
    if (rng_.bernoulli(cond.loss)) {
      state(to).traffic.lost += 1;
      return;
    }
    const bool duplicated = rng_.bernoulli(cond.duplicate);
    if (duplicated) {
      schedule_delivery(l, from, to, Message(payload), transport, bytes, delay);
      // The duplicate takes an independent path through the network.
      schedule_delivery(l, from, to, std::move(payload), transport, bytes,
                        sample_one_way_delay(cond));
    } else {
      schedule_delivery(l, from, to, std::move(payload), transport, bytes, delay);
    }
    return;
  }

  // Reliable: loss becomes retransmission delay; delivery is FIFO per pair.
  int retransmits = 0;
  while (retransmits < config_.max_retransmits && rng_.bernoulli(cond.loss)) {
    ++retransmits;
    delay += cond.rtt + config_.retransmit_penalty;
  }

  if (config_.tcp_turbulence) {
    // Detect an abrupt RTT upshift on this stream: the sender's RTO was
    // computed for the old RTT, so segments in flight look lost and the
    // head of the in-order stream thrashes through retransmit backoff for a
    // few new-RTT periods. Everything sent inside the window is blocked
    // behind it and departs when the stream recovers.
    StreamState& st = l.stream;
    const bool jumped = st.last_rtt > Duration{0} &&
                        to_ms(cond.rtt) > to_ms(st.last_rtt) * (1.0 + config_.turbulence_threshold);
    const Duration activity_window =
        std::max(st.last_rtt * 4, Duration(std::chrono::milliseconds(250)));
    const bool was_active = st.last_send != kNever && sim_->now() - st.last_send <= activity_window;
    if (jumped && was_active) {
      st.turbulent_until =
          sim_->now() + from_ms(to_ms(cond.rtt) * config_.turbulence_duration_rtts);
    }
    st.last_rtt = cond.rtt;
    st.last_send = sim_->now();
    if (sim_->now() < st.turbulent_until) {
      delay += st.turbulent_until - sim_->now();
    }
  }

  schedule_delivery(l, from, to, std::move(payload), transport, bytes, delay);
}

void Network::schedule_delivery(Link& l, NodeId from, NodeId to, Message&& payload,
                                Transport transport, std::size_t bytes, Duration delay) {
  TimePoint when = sim_->now() + delay;
  if (transport == Transport::Reliable) {
    // Enforce FIFO per directed pair: a message never overtakes its
    // predecessor on the same stream.
    TimePoint& last = l.reliable_last_delivery;
    when = std::max(when, last + Duration{1});
    last = when;
  }
  // The payload parks in the arena; the event closure is a few scalars and
  // stays inside InlineFn's inline buffer — no allocation on this path.
  const std::uint32_t slot = arena_acquire(std::move(payload));
  const auto nbytes = static_cast<std::uint32_t>(bytes);
  sim_->schedule_at(when, [this, from, to, slot, transport, nbytes] {
    const Message msg = arena_release(slot);
    deliver(from, to, msg, transport, nbytes);
  });
}

void Network::deliver(NodeId from, NodeId to, const Message& payload, Transport transport,
                      std::size_t bytes) {
  NodeState& dst = state(to);
  if (dst.paused) {
    if (transport == Transport::Datagram) {
      dst.traffic.dropped_paused += 1;
      return;
    }
    dst.parked.emplace_back(from, payload);
    return;
  }
  dst.traffic.received += 1;
  dst.traffic.received_bytes += bytes;
  if (dst.handler) dst.handler(from, payload);
}

void Network::set_paused(NodeId node, bool paused) {
  NodeState& st = state(node);
  if (st.paused == paused) return;
  st.paused = paused;
  if (!paused && !st.parked.empty()) {
    // Flush parked reliable traffic in arrival order, "now".
    auto parked = std::move(st.parked);
    st.parked.clear();
    for (auto& [from, payload] : parked) {
      const std::uint32_t slot = arena_acquire(std::move(payload));
      sim_->schedule_after(Duration{0}, [this, from = from, node, slot] {
        const Message msg = arena_release(slot);
        deliver(from, node, msg, Transport::Reliable, 0);
      });
    }
  }
}

}  // namespace dyna::net
