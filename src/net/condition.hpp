// Link conditions and time-varying condition schedules.
//
// This is the repo's substitute for the paper's `tc netem` shaping: every
// directed link has an RTT (with jitter), a packet-loss rate and a duplicate
// probability, and those can change over simulated time through a
// piecewise-constant ConditionSchedule. The schedule builders below express
// the exact fluctuation patterns of the paper's §IV-C experiments.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dyna::net {

using namespace std::chrono_literals;

/// Instantaneous condition of one directed link.
struct LinkCondition {
  Duration rtt = 100ms;      ///< round-trip time; one-way delay is rtt/2
  Duration jitter = 0ms;     ///< stddev of the one-way delay perturbation
  double loss = 0.0;         ///< probability a datagram is dropped
  double duplicate = 0.0;    ///< probability a datagram is delivered twice

  friend bool operator==(const LinkCondition&, const LinkCondition&) = default;
};

/// Piecewise-constant schedule: condition i applies from segment i's start
/// until the next segment's start. Times before the first segment use the
/// first condition.
class ConditionSchedule {
 public:
  struct Segment {
    TimePoint start;
    LinkCondition condition;
  };

  ConditionSchedule() : ConditionSchedule(LinkCondition{}) {}

  explicit ConditionSchedule(LinkCondition constant) {
    segments_.push_back({kSimEpoch, constant});
  }

  explicit ConditionSchedule(std::vector<Segment> segments) : segments_(std::move(segments)) {
    DYNA_EXPECTS(!segments_.empty());
    for (std::size_t i = 1; i < segments_.size(); ++i) {
      DYNA_EXPECTS(segments_[i - 1].start < segments_[i].start);
    }
  }

  [[nodiscard]] const LinkCondition& at(TimePoint t) const noexcept {
    // Linear scan from the back: experiment schedules have tens of segments
    // and queries are strongly biased toward "current" time.
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
      if (it->start <= t) return it->condition;
    }
    return segments_.front().condition;
  }

  [[nodiscard]] const std::vector<Segment>& segments() const noexcept { return segments_; }

  // ---- Builders for the paper's experiment patterns -----------------------

  /// Constant condition forever.
  [[nodiscard]] static ConditionSchedule constant(LinkCondition c) {
    return ConditionSchedule(c);
  }

  /// Step through a sequence of RTT values, holding each for `hold`
  /// (Fig 6a: 50→200→50 ms in 10 ms steps, one minute each).
  [[nodiscard]] static ConditionSchedule rtt_steps(LinkCondition base,
                                                   const std::vector<Duration>& rtts,
                                                   Duration hold, TimePoint start = kSimEpoch) {
    DYNA_EXPECTS(!rtts.empty());
    DYNA_EXPECTS(hold > Duration{0});
    std::vector<Segment> segs;
    segs.reserve(rtts.size());
    TimePoint t = start;
    for (Duration rtt : rtts) {
      LinkCondition c = base;
      c.rtt = rtt;
      segs.push_back({t, c});
      t += hold;
    }
    return ConditionSchedule(std::move(segs));
  }

  /// Symmetric up-then-down RTT ramp: lo, lo+step, ..., hi, ..., lo+step, lo.
  [[nodiscard]] static ConditionSchedule rtt_ramp_up_down(LinkCondition base, Duration lo,
                                                          Duration hi, Duration step,
                                                          Duration hold) {
    DYNA_EXPECTS(lo <= hi);
    DYNA_EXPECTS(step > Duration{0});
    std::vector<Duration> rtts;
    for (Duration r = lo; r < hi; r += step) rtts.push_back(r);
    rtts.push_back(hi);
    for (Duration r = hi - step; r >= lo; r -= step) rtts.push_back(r);
    return rtt_steps(base, rtts, hold);
  }

  /// Radical spike: `lo` until spike_start, `hi` for spike_len, then `lo`
  /// (Fig 6b: 50 ms → 500 ms for one minute → 50 ms).
  [[nodiscard]] static ConditionSchedule rtt_spike(LinkCondition base, Duration lo, Duration hi,
                                                   TimePoint spike_start, Duration spike_len) {
    DYNA_EXPECTS(spike_start > kSimEpoch);
    DYNA_EXPECTS(spike_len > Duration{0});
    LinkCondition low = base, high = base;
    low.rtt = lo;
    high.rtt = hi;
    return ConditionSchedule({{kSimEpoch, low}, {spike_start, high}, {spike_start + spike_len, low}});
  }

  /// Step through packet-loss rates, holding each (Fig 7: 0→30 %→0 in 5 %
  /// steps, three minutes each).
  [[nodiscard]] static ConditionSchedule loss_steps(LinkCondition base,
                                                    const std::vector<double>& losses,
                                                    Duration hold, TimePoint start = kSimEpoch) {
    DYNA_EXPECTS(!losses.empty());
    DYNA_EXPECTS(hold > Duration{0});
    std::vector<Segment> segs;
    segs.reserve(losses.size());
    TimePoint t = start;
    for (double p : losses) {
      DYNA_EXPECTS(p >= 0.0 && p < 1.0);
      LinkCondition c = base;
      c.loss = p;
      segs.push_back({t, c});
      t += hold;
    }
    return ConditionSchedule(std::move(segs));
  }

  /// Correlated loss bursts: the link is `base` except for `bursts` windows
  /// of length `burst_len`, one every `period`, during which the loss rate
  /// jumps to `burst_loss` (RTT/jitter unchanged). Loss on real paths is
  /// bursty, not i.i.d. — a congested queue or a flapping route drops many
  /// consecutive packets — and when installed as a default schedule the
  /// bursts hit every link at the same instants, which is exactly the
  /// correlated disturbance that defeats per-packet loss averaging.
  [[nodiscard]] static ConditionSchedule loss_bursts(LinkCondition base, double burst_loss,
                                                     Duration period, Duration burst_len,
                                                     std::size_t bursts,
                                                     TimePoint start = kSimEpoch) {
    DYNA_EXPECTS(burst_loss >= 0.0 && burst_loss < 1.0);
    DYNA_EXPECTS(bursts > 0);
    DYNA_EXPECTS(burst_len > Duration{0} && period > burst_len);
    LinkCondition burst = base;
    burst.loss = burst_loss;
    std::vector<Segment> segs;
    segs.reserve(2 * bursts + 1);
    if (start > kSimEpoch) segs.push_back({kSimEpoch, base});
    for (std::size_t i = 0; i < bursts; ++i) {
      const TimePoint burst_start = start + period * static_cast<int>(i);
      segs.push_back({burst_start, burst});
      segs.push_back({burst_start + burst_len, base});
    }
    return ConditionSchedule(std::move(segs));
  }

  /// Symmetric up-then-down loss ramp in `step` increments. Levels are
  /// computed by integer index so repeated float addition cannot leave dust
  /// on the endpoints.
  [[nodiscard]] static ConditionSchedule loss_ramp_up_down(LinkCondition base, double lo,
                                                           double hi, double step,
                                                           Duration hold) {
    DYNA_EXPECTS(lo <= hi);
    DYNA_EXPECTS(step > 0.0);
    const int levels = static_cast<int>(std::lround((hi - lo) / step));
    std::vector<double> losses;
    losses.reserve(2 * static_cast<std::size_t>(levels) + 1);
    for (int i = 0; i <= levels; ++i) losses.push_back(lo + step * i);
    for (int i = levels - 1; i >= 0; --i) losses.push_back(lo + step * i);
    return loss_steps(base, losses, hold);
  }

 private:
  std::vector<Segment> segments_;
};

}  // namespace dyna::net
