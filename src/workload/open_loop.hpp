// Open-loop workload ramp (Fig 5's procedure): clients issue PUTs at a fixed
// offered rate regardless of completions; the rate steps up every level
// (paper: +1000 req/s every 10 s) and each level's achieved throughput and
// mean latency are recorded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "kvstore/client.hpp"
#include "shard/client.hpp"
#include "shard/sharded_cluster.hpp"

namespace dyna::wl {

using namespace std::chrono_literals;

struct RampConfig {
  double start_rps = 1000.0;
  double step_rps = 1000.0;
  double max_rps = 16000.0;
  Duration level_duration = 10s;
  std::size_t keyspace = 10'000;   ///< keys drawn uniformly from this many
  std::size_t value_bytes = 16;
};

struct LevelResult {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;     ///< completions during the level / duration
  double mean_latency_ms = 0.0;  ///< over completions during the level
  double p99_latency_ms = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  friend bool operator==(const LevelResult&, const LevelResult&) = default;
};

class OpenLoopRamp {
 public:
  OpenLoopRamp(cluster::Cluster& cluster, kv::KvClient& client, RampConfig config, Rng rng)
      : sim_(&cluster.sim()), client_(&client), cfg_(config), rng_(std::move(rng)) {}

  /// Sharded variant: PUTs route by key across every consensus group.
  OpenLoopRamp(shard::ShardedCluster& sharded, shard::ShardedKvClient& client,
               RampConfig config, Rng rng)
      : sim_(&sharded.sim()), routed_(&client), cfg_(config), rng_(std::move(rng)) {}

  /// Run the whole ramp; one result per offered-rate level.
  [[nodiscard]] std::vector<LevelResult> run();

  /// Highest achieved throughput across levels (the paper's "peak").
  [[nodiscard]] static double peak_throughput(const std::vector<LevelResult>& levels);

 private:
  void arm_arrival(double rate, TimePoint level_end);
  void fire_request();

  sim::Simulator* sim_;
  kv::KvClient* client_ = nullptr;            ///< unsharded
  shard::ShardedKvClient* routed_ = nullptr;  ///< sharded
  RampConfig cfg_;
  Rng rng_;

  // Per-level collection (completions attributed to the level they finish in).
  std::vector<double> latencies_ms_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace dyna::wl
