// Closed-loop client pool at production intensity: N independent sessions,
// each with its own network endpoint and KvClient, issuing one operation at a
// time — the next op goes out only after the previous one completes (plus an
// optional think time). Unlike the open-loop ramp, offered load self-paces at
// whatever the service can actually absorb, which is how real client fleets
// behave at saturation and what makes group commit measurable: concurrent
// sessions are exactly the commands a batch window can coalesce.
//
// Operations draw from a GET/PUT mix with a value-size distribution; every
// random decision comes from a per-session RNG forked deterministically from
// the pool's stream, so a run is a pure function of (cluster seed, pool
// stream) — bit-identical whether the surrounding sweep uses 1 or 8 threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "kvstore/client.hpp"
#include "shard/client.hpp"
#include "shard/sharded_cluster.hpp"

namespace dyna::wl {

using namespace std::chrono_literals;

struct MixConfig {
  std::size_t clients = 8;        ///< concurrent closed-loop sessions
  double get_ratio = 0.0;         ///< fraction of ops that are GETs
  std::size_t keyspace = 10'000;  ///< keys drawn uniformly per session
  std::size_t value_bytes_min = 16;  ///< PUT value size, uniform in [min, max]
  std::size_t value_bytes_max = 16;
  Duration think_time{0};         ///< delay between completion and next op
  Duration duration = 10s;        ///< measurement horizon (and ops-mode cap)
  /// When > 0, each session stops after this many completions instead of at
  /// the horizon (equivalence checks want a load-independent op count;
  /// `duration` then only bounds a stuck run).
  std::uint64_t ops_per_client = 0;
  /// Give each session its own key prefix. With ops_per_client this makes
  /// the final store state independent of cross-session interleaving —
  /// the property the batched-vs-unbatched equivalence check pins.
  bool disjoint_keyspace = false;
  /// Sharded pools only: pin session i to shard (i % shards) and draw its
  /// keys inside that shard via ShardRouter::key_for_shard. Combined with
  /// ops_per_client + disjoint_keyspace this makes each shard's final store
  /// state independent of the other shards' timing — the isolation pin used
  /// by the shard-leader-kill checks.
  bool pin_sessions_to_shards = false;
};

/// Per-shard slice of a sharded pool run.
struct ShardOps {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;

  friend bool operator==(const ShardOps&, const ShardOps&) = default;
};

struct MixResult {
  double achieved_rps = 0.0;      ///< completions / elapsed
  double get_rps = 0.0;
  double put_rps = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t gets = 0;         ///< completed GETs
  std::uint64_t puts = 0;         ///< completed PUTs

  friend bool operator==(const MixResult&, const MixResult&) = default;
};

class ClosedLoopPool {
 public:
  ClosedLoopPool(cluster::Cluster& cluster, MixConfig config, Rng rng);

  /// Sharded variant: one client mix spans every consensus group. Each
  /// session holds a ShardedKvClient and routes per-op by key through
  /// `router` (or is pinned, see MixConfig::pin_sessions_to_shards). The
  /// unsharded constructor above is untouched — its rng fork order and key
  /// strings stay byte-identical to pre-sharding runs.
  ClosedLoopPool(shard::ShardedCluster& sharded, shard::ShardRouter& router,
                 MixConfig config, Rng rng);

  ClosedLoopPool(const ClosedLoopPool&) = delete;
  ClosedLoopPool& operator=(const ClosedLoopPool&) = delete;

  /// Run the pool to its horizon (or until every session reaches
  /// ops_per_client). Single-use.
  [[nodiscard]] MixResult run();

  /// Per-shard op counts; empty unless the sharded constructor was used.
  [[nodiscard]] const std::vector<ShardOps>& per_shard() const noexcept {
    return per_shard_;
  }

 private:
  struct Session {
    std::unique_ptr<kv::KvClient> client;           ///< unsharded pools
    std::unique_ptr<shard::ShardedKvClient> routed; ///< sharded pools
    Rng rng;
    std::uint64_t ops = 0;  ///< completions (ok or failed) so far
    std::size_t pin = kUnpinned;
  };
  static constexpr std::size_t kUnpinned = static_cast<std::size_t>(-1);

  void issue(std::size_t session);
  [[nodiscard]] bool session_done(const Session& s) const noexcept;

  cluster::Cluster* cluster_ = nullptr;           ///< unsharded pools
  shard::ShardRouter* router_ = nullptr;          ///< sharded pools
  sim::Simulator* sim_;                           ///< always set
  MixConfig cfg_;
  Rng rng_;
  std::vector<Session> sessions_;
  TimePoint horizon_{};
  std::uint64_t remaining_ = 0;  ///< ops-mode: sessions still short of quota
  std::vector<double> latencies_ms_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
  std::vector<ShardOps> per_shard_;  ///< sized only by the sharded ctor
};

}  // namespace dyna::wl
