#include "workload/open_loop.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace dyna::wl {

std::vector<LevelResult> OpenLoopRamp::run() {
  std::vector<LevelResult> results;
  DYNA_EXPECTS(cfg_.start_rps > 0.0 && cfg_.step_rps >= 0.0);

  for (double rate = cfg_.start_rps; rate <= cfg_.max_rps + 1e-9; rate += cfg_.step_rps) {
    latencies_ms_.clear();
    // Completions can't exceed (roughly) the offered arrivals, so one
    // up-front reservation per level stops the latency vector from
    // reallocating mid-measurement at high rates. Later levels reserve more,
    // and reserve() never shrinks, so the buffer is reused across levels.
    latencies_ms_.reserve(static_cast<std::size_t>(rate * to_sec(cfg_.level_duration)) + 16);
    completed_ = 0;
    failed_ = 0;

    const TimePoint level_end = sim_->now() + cfg_.level_duration;
    arm_arrival(rate, level_end);
    sim_->run_until(level_end);

    LevelResult r;
    r.offered_rps = rate;
    r.completed = completed_;
    r.failed = failed_;
    r.achieved_rps = static_cast<double>(completed_) / to_sec(cfg_.level_duration);
    if (!latencies_ms_.empty()) {
      const Summary s = Summary::of(latencies_ms_);
      r.mean_latency_ms = s.mean;
      r.p99_latency_ms = s.p99;
    }
    results.push_back(r);
    if (cfg_.step_rps <= 0.0) break;
  }
  return results;
}

double OpenLoopRamp::peak_throughput(const std::vector<LevelResult>& levels) {
  double peak = 0.0;
  for (const auto& l : levels) peak = std::max(peak, l.achieved_rps);
  return peak;
}

void OpenLoopRamp::arm_arrival(double rate, TimePoint level_end) {
  const Duration gap = from_ms(1000.0 * rng_.exponential(rate));
  const TimePoint when = sim_->now() + gap;
  if (when >= level_end) return;  // level over; the next level re-arms
  sim_->schedule_at(when, [this, rate, level_end] {
    fire_request();
    arm_arrival(rate, level_end);
  });
}

void OpenLoopRamp::fire_request() {
  const std::uint64_t key_id = rng_.uniform_index(cfg_.keyspace);
  std::string key = "key-" + std::to_string(key_id);
  std::string value(cfg_.value_bytes, 'x');
  auto done = [this](const kv::ClientResult& result) {
    if (result.ok) {
      ++completed_;
      latencies_ms_.push_back(to_ms(result.latency));
    } else {
      ++failed_;
    }
  };
  if (routed_ != nullptr) {
    routed_->put(std::move(key), std::move(value), std::move(done));
  } else {
    client_->put(std::move(key), std::move(value), std::move(done));
  }
}

}  // namespace dyna::wl
