#include "workload/closed_loop.hpp"

#include <algorithm>
#include <utility>

#include "common/stats.hpp"

namespace dyna::wl {

ClosedLoopPool::ClosedLoopPool(cluster::Cluster& cluster, MixConfig config, Rng rng)
    : cluster_(&cluster), cfg_(config), rng_(std::move(rng)) {
  DYNA_EXPECTS(cfg_.clients >= 1);
  DYNA_EXPECTS(cfg_.get_ratio >= 0.0 && cfg_.get_ratio <= 1.0);
  DYNA_EXPECTS(cfg_.value_bytes_min <= cfg_.value_bytes_max);
  DYNA_EXPECTS(cfg_.duration > Duration{0});
  sessions_.reserve(cfg_.clients);
  const std::vector<NodeId> servers = cluster_->server_ids();
  for (std::size_t i = 0; i < cfg_.clients; ++i) {
    // Session RNGs fork from the pool stream in construction order, and each
    // client gets its own derived stream too: every random decision in the
    // run is fixed by the pool RNG alone.
    Rng session_rng = rng_.fork(2 * i);
    auto client = std::make_unique<kv::KvClient>(cluster_->sim(), cluster_->network(), servers,
                                                 rng_.fork(2 * i + 1));
    sessions_.push_back(Session{std::move(client), std::move(session_rng), 0});
  }
}

bool ClosedLoopPool::session_done(const Session& s) const noexcept {
  return cfg_.ops_per_client > 0 && s.ops >= cfg_.ops_per_client;
}

MixResult ClosedLoopPool::run() {
  const TimePoint start = cluster_->sim().now();
  horizon_ = start + cfg_.duration;
  remaining_ = cfg_.ops_per_client > 0 ? sessions_.size() : 0;
  latencies_ms_.reserve(1024);

  for (std::size_t i = 0; i < sessions_.size(); ++i) issue(i);

  if (cfg_.ops_per_client > 0) {
    // Ops-bound: run until every session reaches its quota (horizon acts as
    // a stuck-run cap only). Completion callbacks drive progress, so polling
    // granularity does not affect the event schedule.
    while (remaining_ > 0 && cluster_->sim().now() < horizon_) {
      cluster_->sim().run_for(std::chrono::milliseconds(10));
    }
  } else {
    cluster_->sim().run_until(horizon_);
  }

  MixResult r;
  r.completed = completed_;
  r.failed = failed_;
  r.gets = gets_;
  r.puts = puts_;
  const double elapsed = to_sec(cluster_->sim().now() - start);
  if (elapsed > 0.0) {
    r.achieved_rps = static_cast<double>(completed_) / elapsed;
    r.get_rps = static_cast<double>(gets_) / elapsed;
    r.put_rps = static_cast<double>(puts_) / elapsed;
  }
  if (!latencies_ms_.empty()) {
    const Summary s = Summary::of(latencies_ms_);
    r.mean_latency_ms = s.mean;
    r.p99_latency_ms = s.p99;
  }
  return r;
}

void ClosedLoopPool::issue(std::size_t session) {
  Session& s = sessions_[session];
  if (session_done(s) || cluster_->sim().now() >= horizon_) return;

  const bool is_get = s.rng.uniform() < cfg_.get_ratio;
  const std::uint64_t key_id = s.rng.uniform_index(cfg_.keyspace);
  std::string key;
  if (cfg_.disjoint_keyspace) {
    key = "c" + std::to_string(session) + "-key-" + std::to_string(key_id);
  } else {
    key = "key-" + std::to_string(key_id);
  }

  auto done = [this, session, is_get](const kv::ClientResult& result) {
    Session& sess = sessions_[session];
    ++sess.ops;
    if (result.ok) {
      ++completed_;
      (is_get ? gets_ : puts_)++;
      latencies_ms_.push_back(to_ms(result.latency));
    } else {
      ++failed_;
    }
    if (session_done(sess)) {
      if (remaining_ > 0) --remaining_;
      return;
    }
    if (cfg_.think_time > Duration{0}) {
      cluster_->sim().schedule_after(cfg_.think_time, [this, session] { issue(session); });
    } else {
      issue(session);
    }
  };

  if (is_get) {
    s.client->get(std::move(key), std::move(done));
  } else {
    const std::size_t span = cfg_.value_bytes_max - cfg_.value_bytes_min + 1;
    const std::size_t bytes = cfg_.value_bytes_min + s.rng.uniform_index(span);
    s.client->put(std::move(key), std::string(bytes, 'v'), std::move(done));
  }
}

}  // namespace dyna::wl
