#include "workload/closed_loop.hpp"

#include <algorithm>
#include <utility>

#include "common/stats.hpp"

namespace dyna::wl {

ClosedLoopPool::ClosedLoopPool(cluster::Cluster& cluster, MixConfig config, Rng rng)
    : cluster_(&cluster), sim_(&cluster.sim()), cfg_(config), rng_(std::move(rng)) {
  DYNA_EXPECTS(cfg_.clients >= 1);
  DYNA_EXPECTS(cfg_.get_ratio >= 0.0 && cfg_.get_ratio <= 1.0);
  DYNA_EXPECTS(cfg_.value_bytes_min <= cfg_.value_bytes_max);
  DYNA_EXPECTS(cfg_.duration > Duration{0});
  sessions_.reserve(cfg_.clients);
  const std::vector<NodeId> servers = cluster_->server_ids();
  for (std::size_t i = 0; i < cfg_.clients; ++i) {
    // Session RNGs fork from the pool stream in construction order, and each
    // client gets its own derived stream too: every random decision in the
    // run is fixed by the pool RNG alone.
    Rng session_rng = rng_.fork(2 * i);
    auto client = std::make_unique<kv::KvClient>(cluster_->sim(), cluster_->network(), servers,
                                                 rng_.fork(2 * i + 1));
    sessions_.push_back(
        Session{std::move(client), nullptr, std::move(session_rng), 0, kUnpinned});
  }
}

ClosedLoopPool::ClosedLoopPool(shard::ShardedCluster& sharded, shard::ShardRouter& router,
                               MixConfig config, Rng rng)
    : router_(&router), sim_(&sharded.sim()), cfg_(config), rng_(std::move(rng)) {
  DYNA_EXPECTS(cfg_.clients >= 1);
  DYNA_EXPECTS(cfg_.get_ratio >= 0.0 && cfg_.get_ratio <= 1.0);
  DYNA_EXPECTS(cfg_.value_bytes_min <= cfg_.value_bytes_max);
  DYNA_EXPECTS(cfg_.duration > Duration{0});
  per_shard_.resize(router.shards());
  sessions_.reserve(cfg_.clients);
  for (std::size_t i = 0; i < cfg_.clients; ++i) {
    // Same fork schedule as the unsharded pool: stream 2i for the session's
    // decisions, 2i+1 for its client (which forks once more per shard).
    Rng session_rng = rng_.fork(2 * i);
    auto routed = std::make_unique<shard::ShardedKvClient>(sharded, router,
                                                           rng_.fork(2 * i + 1));
    const std::size_t pin =
        cfg_.pin_sessions_to_shards ? i % router.shards() : kUnpinned;
    sessions_.push_back(Session{nullptr, std::move(routed), std::move(session_rng), 0, pin});
  }
}

bool ClosedLoopPool::session_done(const Session& s) const noexcept {
  return cfg_.ops_per_client > 0 && s.ops >= cfg_.ops_per_client;
}

MixResult ClosedLoopPool::run() {
  const TimePoint start = sim_->now();
  horizon_ = start + cfg_.duration;
  remaining_ = cfg_.ops_per_client > 0 ? sessions_.size() : 0;
  latencies_ms_.reserve(1024);

  for (std::size_t i = 0; i < sessions_.size(); ++i) issue(i);

  if (cfg_.ops_per_client > 0) {
    // Ops-bound: run until every session reaches its quota (horizon acts as
    // a stuck-run cap only). Completion callbacks drive progress, so polling
    // granularity does not affect the event schedule.
    while (remaining_ > 0 && sim_->now() < horizon_) {
      sim_->run_for(std::chrono::milliseconds(10));
    }
  } else {
    sim_->run_until(horizon_);
  }

  MixResult r;
  r.completed = completed_;
  r.failed = failed_;
  r.gets = gets_;
  r.puts = puts_;
  const double elapsed = to_sec(sim_->now() - start);
  if (elapsed > 0.0) {
    r.achieved_rps = static_cast<double>(completed_) / elapsed;
    r.get_rps = static_cast<double>(gets_) / elapsed;
    r.put_rps = static_cast<double>(puts_) / elapsed;
  }
  if (!latencies_ms_.empty()) {
    const Summary s = Summary::of(latencies_ms_);
    r.mean_latency_ms = s.mean;
    r.p99_latency_ms = s.p99;
  }
  return r;
}

void ClosedLoopPool::issue(std::size_t session) {
  Session& s = sessions_[session];
  if (session_done(s) || sim_->now() >= horizon_) return;

  const bool is_get = s.rng.uniform() < cfg_.get_ratio;
  const std::uint64_t key_id = s.rng.uniform_index(cfg_.keyspace);
  std::string key;
  if (cfg_.disjoint_keyspace) {
    key = "c" + std::to_string(session) + "-key-" + std::to_string(key_id);
  } else {
    key = "key-" + std::to_string(key_id);
  }
  std::size_t shard = 0;
  if (router_ != nullptr) {
    if (s.pin != kUnpinned) {
      // Pinned session: relocate the drawn key into the session's own shard
      // (deterministic — same stem always yields the same shard-local key).
      shard = s.pin;
      key = router_->key_for_shard(shard, key);
    } else {
      shard = router_->shard_of(key);
    }
  }

  auto done = [this, session, is_get, shard](const kv::ClientResult& result) {
    Session& sess = sessions_[session];
    ++sess.ops;
    if (result.ok) {
      ++completed_;
      (is_get ? gets_ : puts_)++;
      latencies_ms_.push_back(to_ms(result.latency));
    } else {
      ++failed_;
    }
    if (!per_shard_.empty()) {
      ShardOps& ops = per_shard_[shard];
      if (result.ok) {
        ++ops.completed;
        (is_get ? ops.gets : ops.puts)++;
      } else {
        ++ops.failed;
      }
    }
    if (session_done(sess)) {
      if (remaining_ > 0) --remaining_;
      return;
    }
    if (cfg_.think_time > Duration{0}) {
      sim_->schedule_after(cfg_.think_time, [this, session] { issue(session); });
    } else {
      issue(session);
    }
  };

  if (is_get) {
    if (s.routed != nullptr) {
      s.routed->get(std::move(key), std::move(done));
    } else {
      s.client->get(std::move(key), std::move(done));
    }
  } else {
    const std::size_t span = cfg_.value_bytes_max - cfg_.value_bytes_min + 1;
    const std::size_t bytes = cfg_.value_bytes_min + s.rng.uniform_index(span);
    std::string value(bytes, 'v');
    if (s.routed != nullptr) {
      s.routed->put(std::move(key), std::move(value), std::move(done));
    } else {
      s.client->put(std::move(key), std::move(value), std::move(done));
    }
  }
}

}  // namespace dyna::wl
