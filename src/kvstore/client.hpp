// KV client session: a network endpoint that finds the leader, retries on
// redirects and timeouts, and completes requests through callbacks.
//
// This is the open-loop workload generator's building block and what the
// examples use to talk to a cluster.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kvstore/command.hpp"
#include "net/network.hpp"
#include "raft/message.hpp"
#include "sim/simulator.hpp"

namespace dyna::kv {

using namespace std::chrono_literals;

/// Final outcome of one client operation.
struct ClientResult {
  bool ok = false;
  std::string value;       ///< state-machine result (when ok)
  Duration latency{};      ///< submit -> completion
  int attempts = 0;        ///< sends performed (1 = first try succeeded)
};

class KvClient {
 public:
  using DoneFn = std::function<void(const ClientResult&)>;

  struct Config {
    Duration request_timeout = 1s;   ///< per-attempt timeout before retry
    Duration redirect_backoff = 5ms; ///< delay before following a redirect
    int max_attempts = 20;
  };

  KvClient(sim::Simulator& simulator, net::Network& network, std::vector<NodeId> servers,
           Rng rng, Config config);

  KvClient(sim::Simulator& simulator, net::Network& network, std::vector<NodeId> servers,
           Rng rng)
      : KvClient(simulator, network, std::move(servers), std::move(rng), Config{}) {}

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Unhooks the endpoint handler and cancels every pending timer: both
  /// capture `this`, and a scenario keeps simulating long after the workload
  /// phase (and this client) are gone.
  ~KvClient();

  /// This client's network endpoint id.
  [[nodiscard]] NodeId endpoint() const noexcept { return endpoint_; }

  /// The server currently believed to be the leader (follows redirects).
  [[nodiscard]] NodeId target() const noexcept { return target_; }

  /// Seed the leader belief (e.g. from shard::ShardRouter's cache) so the
  /// first op skips the random-start leader walk. `leader` must be one of
  /// this client's servers.
  void set_target(NodeId leader) {
    DYNA_EXPECTS(std::find(servers_.begin(), servers_.end(), leader) != servers_.end());
    target_ = leader;
  }

  /// Drop a server removed from the cluster (membership churn): it leaves
  /// the retry rotation, and if it was the current target the client rotates
  /// immediately instead of timing out against a dead endpoint. At least one
  /// server must remain.
  void remove_server(NodeId id) {
    const auto it = std::find(servers_.begin(), servers_.end(), id);
    if (it == servers_.end()) return;
    DYNA_EXPECTS(servers_.size() > 1);
    servers_.erase(it);
    if (target_ == id) rotate_target();
  }

  /// Register a server added to the cluster: it joins the retry rotation.
  void add_server(NodeId id) {
    if (std::find(servers_.begin(), servers_.end(), id) == servers_.end()) {
      servers_.push_back(id);
    }
  }

  void put(std::string key, std::string value, DoneFn done);
  void get(std::string key, DoneFn done);
  void del(std::string key, DoneFn done);
  void cas(std::string key, std::string expected, std::string value, DoneFn done);

  /// Fire a raw encoded command (workload generator path).
  void submit(std::string payload, DoneFn done);

  // ---- Counters ----
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::size_t outstanding() const noexcept { return pending_live_; }

 private:
  struct Pending {
    std::string payload;
    DoneFn done;
    TimePoint submitted;
    int attempts = 0;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  /// Open-addressed slot in the pending table (see pending_ below).
  struct PendingSlot {
    std::uint64_t seq = 0;
    bool live = false;
    Pending p;
  };

  [[nodiscard]] Pending* find_pending(std::uint64_t seq) noexcept;
  Pending& insert_pending(std::uint64_t seq);
  void grow_pending();

  void send_attempt(std::uint64_t seq);
  void on_message(NodeId from, const net::Message& payload);
  void complete(std::uint64_t seq, bool ok, std::string value);
  void rotate_target();

  sim::Simulator* sim_;
  net::Network* net_;
  std::vector<NodeId> servers_;
  Rng rng_;
  Config config_;
  NodeId endpoint_;
  NodeId target_;  ///< server currently believed to be the leader
  std::uint64_t next_seq_ = 1;
  /// Pending table: flat, open-addressed on `seq & (capacity-1)`. Sequence
  /// numbers are dense and mostly-FIFO, so the direct slot is almost always
  /// free; a live collision means the in-flight window outgrew the table and
  /// it doubles (rehash — rare, amortized). Replaces a std::map that paid a
  /// node allocation + red-black rebalance per request on the hottest client
  /// path; lookup/insert/erase are now O(1) with zero steady-state
  /// allocation.
  std::vector<PendingSlot> pending_;
  std::size_t pending_live_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace dyna::kv
