// Replicated state machine interface + the etcd-like KV implementation.
//
// Every replica applies the same committed payload sequence; determinism of
// apply() is what makes State Machine Replication hold, and the test suite
// checks replicas byte-for-byte against each other.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kvstore/command.hpp"

namespace dyna::kv {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply one committed command payload; returns the client-visible result.
  /// The payload is borrowed for the duration of the call (the log entry
  /// owns it), so implementations can decode it zero-copy.
  virtual std::string apply(std::string_view payload) = 0;

  /// Serialize the full machine state. Must be deterministic: two replicas
  /// in the same logical state must produce byte-identical blobs, whatever
  /// history brought them there (snapshots are compared and shipped across
  /// replicas).
  [[nodiscard]] virtual std::string snapshot() const = 0;

  /// Replace the machine state with a blob produced by snapshot().
  virtual void restore(std::string_view blob) = 0;
};

/// In-memory KV store with a global revision counter (mirrors etcd's
/// semantics at the granularity the experiments need — the Op vocabulary is
/// point ops only, so a hash index is observationally equivalent to etcd's
/// ordered index and keeps apply O(1)). The apply path is allocation-free
/// except where the store fundamentally must own bytes (a new key, a value
/// overwrite beyond capacity): commands decode to views and lookups are
/// heterogeneous, so replicating a PUT stream across a 65-node cluster does
/// not turn into an allocator-and-red-black-tree benchmark.
class KvStateMachine final : public StateMachine {
 public:
  std::string apply(std::string_view payload) override {
    if (is_batch(payload)) {
      // Group-commit frame: apply members in order, return member results in
      // the same length-prefixed framing (the leader fans them back out to
      // the per-command client completions). A malformed member poisons only
      // its own result slot — the frame keeps its arity either way.
      std::string out;
      const bool ok = for_each_batched(payload, [&](std::string_view member) {
        detail::encode_field(out, apply_one(member));
      });
      if (!ok) return "ERR malformed-batch";
      return out;
    }
    return apply_one(payload);
  }

  /// Apply a single (non-batch) command payload.
  std::string apply_one(std::string_view payload) {
    const auto cmd = decode_view(payload);
    if (!cmd) return "ERR malformed";
    switch (cmd->op) {
      case Op::Put: {
        ++revision_;
        const auto it = data_.find(cmd->key);
        if (it == data_.end()) {
          data_.emplace(cmd->key, cmd->value);
        } else {
          it->second.assign(cmd->value);  // existing key: reuse capacity
        }
        return ok_result(revision_);
      }
      case Op::Get: {
        const auto it = data_.find(cmd->key);
        return it == data_.end() ? "(nil)" : it->second;
      }
      case Op::Del: {
        const auto it = data_.find(cmd->key);
        if (it == data_.end()) return "(nil)";
        data_.erase(it);
        ++revision_;
        return ok_result(revision_);
      }
      case Op::Cas: {
        const auto it = data_.find(cmd->key);
        if (it != data_.end() && it->second == cmd->expected) {
          ++revision_;
          it->second.assign(cmd->value);
          return ok_result(revision_);
        }
        return "FAIL";
      }
    }
    return "ERR unknown-op";
  }

  /// Deterministic serialization: the revision, then every (key, value) pair
  /// in sorted key order, all fields length-prefixed (the same <len>:<bytes>
  /// framing the command encoding uses). Sorting matters: the hash map's
  /// iteration order depends on insertion history, which differs between a
  /// replica that applied every command and one restored from an earlier
  /// snapshot — equal states must serialize identically.
  [[nodiscard]] std::string snapshot() const override {
    std::vector<std::string_view> keys;
    keys.reserve(data_.size());
    for (const auto& [key, value] : data_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    std::string out;
    char rev[24];
    const auto [end, ec] = std::to_chars(rev, rev + sizeof rev, revision_);
    (void)ec;  // 64-bit decimal always fits
    detail::encode_field(out, std::string_view(rev, end));
    for (const std::string_view key : keys) {
      detail::encode_field(out, key);
      detail::encode_field(out, data_.find(key)->second);
    }
    return out;
  }

  void restore(std::string_view blob) override {
    data_.clear();
    std::size_t pos = 0;
    const auto rev = detail::decode_field(blob, pos);
    DYNA_EXPECTS(rev.has_value());
    revision_ = 0;
    const auto [ptr, ec] =
        std::from_chars(rev->data(), rev->data() + rev->size(), revision_);
    DYNA_EXPECTS(ec == std::errc{} && ptr == rev->data() + rev->size());
    while (pos < blob.size()) {
      const auto key = detail::decode_field(blob, pos);
      const auto value = detail::decode_field(blob, pos);
      DYNA_EXPECTS(key.has_value() && value.has_value());
      data_.emplace(*key, *value);
    }
  }

  /// Transparent hash so find(string_view) never materializes a key.
  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Store = std::unordered_map<std::string, std::string, StringHash, std::equal_to<>>;

  // ---- Introspection (tests, examples) ----
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] const Store& data() const noexcept { return data_; }

  /// Empty store, revision 0 — a brand-new replica. Keeps the hash table's
  /// bucket array (trial reuse).
  void reset_for_trial() {
    data_.clear();
    revision_ = 0;
  }

 private:
  /// "OK <revision>" without the snprintf detour inside std::to_string.
  [[nodiscard]] static std::string ok_result(std::uint64_t rev) {
    char buf[24] = {'O', 'K', ' '};
    const auto [end, ec] = std::to_chars(buf + 3, buf + sizeof(buf), rev);
    (void)ec;  // 64-bit decimal always fits in 21 chars
    return std::string(buf, end);
  }

  Store data_;
  std::uint64_t revision_ = 0;
};

}  // namespace dyna::kv
