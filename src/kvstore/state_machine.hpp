// Replicated state machine interface + the etcd-like KV implementation.
//
// Every replica applies the same committed payload sequence; determinism of
// apply() is what makes State Machine Replication hold, and the test suite
// checks replicas byte-for-byte against each other.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "kvstore/command.hpp"

namespace dyna::kv {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply one committed command payload; returns the client-visible result.
  virtual std::string apply(const std::string& payload) = 0;
};

/// In-memory ordered KV store with a global revision counter (mirrors etcd's
/// semantics at the granularity the experiments need).
class KvStateMachine final : public StateMachine {
 public:
  std::string apply(const std::string& payload) override {
    const auto cmd = decode(payload);
    if (!cmd) return "ERR malformed";
    switch (cmd->op) {
      case Op::Put:
        ++revision_;
        data_[cmd->key] = cmd->value;
        return "OK " + std::to_string(revision_);
      case Op::Get: {
        const auto it = data_.find(cmd->key);
        return it == data_.end() ? "(nil)" : it->second;
      }
      case Op::Del: {
        const auto erased = data_.erase(cmd->key);
        if (erased > 0) ++revision_;
        return erased > 0 ? "OK " + std::to_string(revision_) : "(nil)";
      }
      case Op::Cas: {
        const auto it = data_.find(cmd->key);
        if (it != data_.end() && it->second == cmd->expected) {
          ++revision_;
          it->second = cmd->value;
          return "OK " + std::to_string(revision_);
        }
        return "FAIL";
      }
    }
    return "ERR unknown-op";
  }

  // ---- Introspection (tests, examples) ----
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] const std::map<std::string, std::string>& data() const noexcept { return data_; }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t revision_ = 0;
};

}  // namespace dyna::kv
