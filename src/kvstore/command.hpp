// KV command serialization.
//
// Raft carries opaque payload strings; the KV layer defines a compact,
// deterministic, binary-safe encoding: length-prefixed fields so keys and
// values may contain any byte.
//
//   PUT key value   -> "P" <key> <value>
//   GET key         -> "G" <key>
//   DEL key         -> "D" <key>
//   CAS key exp new -> "C" <key> <expected> <new>
//
// Each field is encoded as <decimal length> ':' <bytes>.
//
// Group commit adds one frame on top: a *batch* payload is "B" followed by
// each member command payload as a length-prefixed field. The state machine
// applies members in order and returns the member results in the same
// length-prefixed framing, so the leader can fan one committed entry back
// out into per-command client completions.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace dyna::kv {

enum class Op : char {
  Put = 'P',
  Get = 'G',
  Del = 'D',
  Cas = 'C',
};

struct KvCommand {
  Op op = Op::Get;
  std::string key;
  std::string value;     // PUT: new value; CAS: new value
  std::string expected;  // CAS only

  friend bool operator==(const KvCommand&, const KvCommand&) = default;
};

/// Zero-copy decode result: fields alias the payload buffer. This is what
/// the apply path uses — every replica decodes every committed command, so
/// a decode that allocates three strings is a per-commit, per-node tax that
/// dominates large-cluster replication benches. Valid only while the payload
/// string outlives the view (the log entry does — it owns the payload).
struct KvCommandView {
  Op op = Op::Get;
  std::string_view key;
  std::string_view value;
  std::string_view expected;
};

namespace detail {

inline void encode_field(std::string& out, std::string_view field) {
  out += std::to_string(field.size());
  out += ':';
  out += field;
}

/// Parse one length-prefixed field as a view into `buf`; advances `pos`.
/// Returns nullopt on malformed input.
inline std::optional<std::string_view> decode_field(std::string_view buf, std::size_t& pos) {
  const std::size_t colon = buf.find(':', pos);
  if (colon == std::string_view::npos || colon == pos) return std::nullopt;
  std::size_t len = 0;
  for (std::size_t i = pos; i < colon; ++i) {
    const char c = buf[i];
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  pos = colon + 1;
  if (pos + len > buf.size()) return std::nullopt;
  std::string_view field = buf.substr(pos, len);
  pos += len;
  return field;
}

}  // namespace detail

[[nodiscard]] inline std::string encode(const KvCommand& cmd) {
  std::string out;
  out += static_cast<char>(cmd.op);
  detail::encode_field(out, cmd.key);
  if (cmd.op == Op::Put || cmd.op == Op::Cas) {
    detail::encode_field(out, cmd.value);
  }
  if (cmd.op == Op::Cas) {
    detail::encode_field(out, cmd.expected);
  }
  return out;
}

/// Decode without copying: the returned views alias `payload`.
[[nodiscard]] inline std::optional<KvCommandView> decode_view(std::string_view payload) {
  if (payload.empty()) return std::nullopt;
  KvCommandView cmd;
  switch (payload.front()) {
    case 'P': cmd.op = Op::Put; break;
    case 'G': cmd.op = Op::Get; break;
    case 'D': cmd.op = Op::Del; break;
    case 'C': cmd.op = Op::Cas; break;
    default: return std::nullopt;
  }
  std::size_t pos = 1;
  auto key = detail::decode_field(payload, pos);
  if (!key) return std::nullopt;
  cmd.key = *key;
  if (cmd.op == Op::Put || cmd.op == Op::Cas) {
    auto value = detail::decode_field(payload, pos);
    if (!value) return std::nullopt;
    cmd.value = *value;
  }
  if (cmd.op == Op::Cas) {
    auto expected = detail::decode_field(payload, pos);
    if (!expected) return std::nullopt;
    cmd.expected = *expected;
  }
  if (pos != payload.size()) return std::nullopt;  // trailing garbage
  return cmd;
}

/// Decode into an owning KvCommand (client/test convenience).
[[nodiscard]] inline std::optional<KvCommand> decode(std::string_view payload) {
  const auto view = decode_view(payload);
  if (!view) return std::nullopt;
  return KvCommand{view->op, std::string(view->key), std::string(view->value),
                   std::string(view->expected)};
}

// ---- Batch frame (group commit) ---------------------------------------------------

inline constexpr char kBatchTag = 'B';

/// A payload carrying many commands in one log entry.
[[nodiscard]] inline bool is_batch(std::string_view payload) noexcept {
  return !payload.empty() && payload.front() == kBatchTag;
}

/// A read-only command: never mutates the store, so a leader with the
/// ReadIndex fast path can answer it without a log write.
[[nodiscard]] inline bool is_read_only(std::string_view payload) noexcept {
  return !payload.empty() && payload.front() == static_cast<char>(Op::Get);
}

/// Append one member command payload to a batch frame under construction
/// (starts the frame on first use). The member may itself be any encoded
/// command — but not another batch; nesting is not part of the format.
inline void batch_append(std::string& frame, std::string_view command_payload) {
  DYNA_EXPECTS(!is_batch(command_payload));
  if (frame.empty()) frame.push_back(kBatchTag);
  detail::encode_field(frame, command_payload);
}

/// Bytes batch_append would add to a frame for this member (admission caps).
[[nodiscard]] inline std::size_t batch_overhead(std::string_view command_payload) noexcept {
  std::size_t digits = 1;
  for (std::size_t n = command_payload.size(); n >= 10; n /= 10) ++digits;
  return command_payload.size() + digits + 1;
}

/// Visit every member payload of a batch frame in order. Returns false (and
/// stops) on a malformed frame. `fn` receives views aliasing `frame`.
template <typename Fn>
[[nodiscard]] inline bool for_each_batched(std::string_view frame, Fn&& fn) {
  if (!is_batch(frame)) return false;
  std::size_t pos = 1;
  while (pos < frame.size()) {
    const auto member = detail::decode_field(frame, pos);
    if (!member) return false;
    fn(*member);
  }
  return true;
}

/// Split a batch result blob (length-prefixed member results, as produced by
/// KvStateMachine for a batch frame) into per-command results. Returns false
/// on malformed input.
template <typename Fn>
[[nodiscard]] inline bool for_each_batch_result(std::string_view blob, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < blob.size()) {
    const auto member = detail::decode_field(blob, pos);
    if (!member) return false;
    fn(*member);
  }
  return true;
}

}  // namespace dyna::kv
