#include "kvstore/client.hpp"

#include <algorithm>
#include <utility>

namespace dyna::kv {

KvClient::KvClient(sim::Simulator& simulator, net::Network& network, std::vector<NodeId> servers,
                   Rng rng, Config config)
    : sim_(&simulator),
      net_(&network),
      servers_(std::move(servers)),
      rng_(std::move(rng)),
      config_(config) {
  DYNA_EXPECTS(!servers_.empty());
  endpoint_ = net_->add_node([this](NodeId from, const net::Message& payload) {
    on_message(from, payload);
  });
  target_ = servers_[rng_.uniform_index(servers_.size())];
  pending_.resize(16);  // power of two; grows on in-flight window overflow
}

KvClient::~KvClient() {
  // In-flight state must not reach back into a destroyed client: the retry /
  // backoff timers and the endpoint handler all capture `this`. Late server
  // responses then land on a null handler and are dropped.
  for (PendingSlot& s : pending_) {
    if (s.live && s.p.timeout_event != sim::kInvalidEvent) sim_->cancel(s.p.timeout_event);
  }
  net_->set_handler(endpoint_, nullptr);
}

// ---- Pending table (open-addressed on seq) ------------------------------------

KvClient::Pending* KvClient::find_pending(std::uint64_t seq) noexcept {
  PendingSlot& s = pending_[seq & (pending_.size() - 1)];
  return s.live && s.seq == seq ? &s.p : nullptr;
}

KvClient::Pending& KvClient::insert_pending(std::uint64_t seq) {
  while (pending_[seq & (pending_.size() - 1)].live) grow_pending();
  PendingSlot& s = pending_[seq & (pending_.size() - 1)];
  s.seq = seq;
  s.live = true;
  ++pending_live_;
  s.p = Pending{};
  return s.p;
}

void KvClient::grow_pending() {
  // Double until every live seq maps to a distinct slot (checked before
  // moving anything, so a failed candidate size costs no element moves).
  for (std::size_t cap = pending_.size() * 2;; cap *= 2) {
    std::vector<char> used(cap, 0);
    bool distinct = true;
    for (const PendingSlot& s : pending_) {
      if (!s.live) continue;
      char& u = used[s.seq & (cap - 1)];
      if (u != 0) {
        distinct = false;
        break;
      }
      u = 1;
    }
    if (!distinct) continue;
    std::vector<PendingSlot> fresh(cap);
    for (PendingSlot& s : pending_) {
      if (s.live) fresh[s.seq & (cap - 1)] = std::move(s);
    }
    pending_ = std::move(fresh);
    return;
  }
}

void KvClient::put(std::string key, std::string value, DoneFn done) {
  KvCommand cmd{Op::Put, std::move(key), std::move(value), {}};
  submit(encode(cmd), std::move(done));
}

void KvClient::get(std::string key, DoneFn done) {
  KvCommand cmd{Op::Get, std::move(key), {}, {}};
  submit(encode(cmd), std::move(done));
}

void KvClient::del(std::string key, DoneFn done) {
  KvCommand cmd{Op::Del, std::move(key), {}, {}};
  submit(encode(cmd), std::move(done));
}

void KvClient::cas(std::string key, std::string expected, std::string value, DoneFn done) {
  KvCommand cmd{Op::Cas, std::move(key), std::move(value), std::move(expected)};
  submit(encode(cmd), std::move(done));
}

void KvClient::submit(std::string payload, DoneFn done) {
  const std::uint64_t seq = next_seq_++;
  Pending& p = insert_pending(seq);
  p.payload = std::move(payload);
  p.done = std::move(done);
  p.submitted = sim_->now();
  send_attempt(seq);
}

void KvClient::send_attempt(std::uint64_t seq) {
  Pending* pp = find_pending(seq);
  if (pp == nullptr) return;
  Pending& p = *pp;

  if (p.attempts >= config_.max_attempts) {
    complete(seq, false, "ERR too-many-attempts");
    return;
  }
  ++p.attempts;
  if (p.attempts > 1) ++retries_;

  raft::ClientRequest req;
  req.command.payload = p.payload;
  req.command.client = endpoint_;
  req.command.client_seq = seq;
  net_->send(endpoint_, target_, raft::Message(std::move(req)), net::Transport::Reliable,
             64 + p.payload.size());

  p.timeout_event = sim_->schedule_after(config_.request_timeout, [this, seq] {
    Pending* pending = find_pending(seq);
    if (pending == nullptr) return;
    pending->timeout_event = sim::kInvalidEvent;
    rotate_target();  // leader may be down: try another server
    send_attempt(seq);
  });
}

void KvClient::rotate_target() {
  const auto it = std::find(servers_.begin(), servers_.end(), target_);
  const std::size_t idx = it == servers_.end()
                              ? rng_.uniform_index(servers_.size())
                              : (static_cast<std::size_t>(it - servers_.begin()) + 1) %
                                    servers_.size();
  target_ = servers_[idx];
}

void KvClient::on_message(NodeId /*from*/, const net::Message& payload) {
  const raft::Message* msg = payload.raft();
  if (msg == nullptr) return;
  const auto* resp = std::get_if<raft::ClientResponse>(msg);
  if (resp == nullptr) return;

  Pending* pp = find_pending(resp->client_seq);
  if (pp == nullptr) return;  // duplicate/late response
  Pending& p = *pp;

  if (resp->ok) {
    complete(resp->client_seq, true, resp->result);
    return;
  }

  // Redirected: follow the hint (or rotate) after a short backoff.
  if (p.timeout_event != sim::kInvalidEvent) {
    sim_->cancel(p.timeout_event);
    p.timeout_event = sim::kInvalidEvent;
  }
  // Follow the hint only if it names a server we still know: a follower that
  // hasn't applied a Remove yet can hint at a departed node, and chasing it
  // would spin against a dead endpoint until the attempt budget ran out.
  if (resp->leader_hint != kNoNode &&
      std::find(servers_.begin(), servers_.end(), resp->leader_hint) != servers_.end()) {
    target_ = resp->leader_hint;
  } else {
    rotate_target();
  }
  // Track the backoff event in the same slot as the retry timer so teardown
  // can cancel it; send_attempt overwrites the slot when it fires.
  const std::uint64_t seq = resp->client_seq;
  p.timeout_event =
      sim_->schedule_after(config_.redirect_backoff, [this, seq] { send_attempt(seq); });
}

void KvClient::complete(std::uint64_t seq, bool ok, std::string value) {
  PendingSlot& slot = pending_[seq & (pending_.size() - 1)];
  DYNA_ASSERT(slot.live && slot.seq == seq);
  Pending p = std::move(slot.p);
  slot.live = false;
  --pending_live_;
  if (p.timeout_event != sim::kInvalidEvent) sim_->cancel(p.timeout_event);
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (p.done) {
    ClientResult result;
    result.ok = ok;
    result.value = std::move(value);
    result.latency = sim_->now() - p.submitted;
    result.attempts = p.attempts;
    p.done(result);
  }
}

}  // namespace dyna::kv
