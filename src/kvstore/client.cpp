#include "kvstore/client.hpp"

#include <algorithm>
#include <utility>

namespace dyna::kv {

KvClient::KvClient(sim::Simulator& simulator, net::Network& network, std::vector<NodeId> servers,
                   Rng rng, Config config)
    : sim_(&simulator),
      net_(&network),
      servers_(std::move(servers)),
      rng_(std::move(rng)),
      config_(config) {
  DYNA_EXPECTS(!servers_.empty());
  endpoint_ = net_->add_node([this](NodeId from, const net::Message& payload) {
    on_message(from, payload);
  });
  target_ = servers_[rng_.uniform_index(servers_.size())];
}

KvClient::~KvClient() {
  // In-flight state must not reach back into a destroyed client: the retry /
  // backoff timers and the endpoint handler all capture `this`. Late server
  // responses then land on a null handler and are dropped.
  for (auto& [seq, p] : pending_) {
    if (p.timeout_event != sim::kInvalidEvent) sim_->cancel(p.timeout_event);
  }
  net_->set_handler(endpoint_, nullptr);
}

void KvClient::put(std::string key, std::string value, DoneFn done) {
  KvCommand cmd{Op::Put, std::move(key), std::move(value), {}};
  submit(encode(cmd), std::move(done));
}

void KvClient::get(std::string key, DoneFn done) {
  KvCommand cmd{Op::Get, std::move(key), {}, {}};
  submit(encode(cmd), std::move(done));
}

void KvClient::del(std::string key, DoneFn done) {
  KvCommand cmd{Op::Del, std::move(key), {}, {}};
  submit(encode(cmd), std::move(done));
}

void KvClient::cas(std::string key, std::string expected, std::string value, DoneFn done) {
  KvCommand cmd{Op::Cas, std::move(key), std::move(value), std::move(expected)};
  submit(encode(cmd), std::move(done));
}

void KvClient::submit(std::string payload, DoneFn done) {
  const std::uint64_t seq = next_seq_++;
  Pending& p = pending_[seq];
  p.payload = std::move(payload);
  p.done = std::move(done);
  p.submitted = sim_->now();
  send_attempt(seq);
}

void KvClient::send_attempt(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Pending& p = it->second;

  if (p.attempts >= config_.max_attempts) {
    complete(seq, false, "ERR too-many-attempts");
    return;
  }
  ++p.attempts;
  if (p.attempts > 1) ++retries_;

  raft::ClientRequest req;
  req.command.payload = p.payload;
  req.command.client = endpoint_;
  req.command.client_seq = seq;
  net_->send(endpoint_, target_, raft::Message(std::move(req)), net::Transport::Reliable,
             64 + p.payload.size());

  p.timeout_event = sim_->schedule_after(config_.request_timeout, [this, seq] {
    const auto pit = pending_.find(seq);
    if (pit == pending_.end()) return;
    pit->second.timeout_event = sim::kInvalidEvent;
    rotate_target();  // leader may be down: try another server
    send_attempt(seq);
  });
}

void KvClient::rotate_target() {
  const auto it = std::find(servers_.begin(), servers_.end(), target_);
  const std::size_t idx = it == servers_.end()
                              ? rng_.uniform_index(servers_.size())
                              : (static_cast<std::size_t>(it - servers_.begin()) + 1) %
                                    servers_.size();
  target_ = servers_[idx];
}

void KvClient::on_message(NodeId /*from*/, const net::Message& payload) {
  const raft::Message* msg = payload.raft();
  if (msg == nullptr) return;
  const auto* resp = std::get_if<raft::ClientResponse>(msg);
  if (resp == nullptr) return;

  const auto it = pending_.find(resp->client_seq);
  if (it == pending_.end()) return;  // duplicate/late response
  Pending& p = it->second;

  if (resp->ok) {
    complete(resp->client_seq, true, resp->result);
    return;
  }

  // Redirected: follow the hint (or rotate) after a short backoff.
  if (p.timeout_event != sim::kInvalidEvent) {
    sim_->cancel(p.timeout_event);
    p.timeout_event = sim::kInvalidEvent;
  }
  if (resp->leader_hint != kNoNode) {
    target_ = resp->leader_hint;
  } else {
    rotate_target();
  }
  // Track the backoff event in the same slot as the retry timer so teardown
  // can cancel it; send_attempt overwrites the slot when it fires.
  const std::uint64_t seq = resp->client_seq;
  p.timeout_event =
      sim_->schedule_after(config_.redirect_backoff, [this, seq] { send_attempt(seq); });
}

void KvClient::complete(std::uint64_t seq, bool ok, std::string value) {
  const auto it = pending_.find(seq);
  DYNA_ASSERT(it != pending_.end());
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.timeout_event != sim::kInvalidEvent) sim_->cancel(p.timeout_event);
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (p.done) {
    ClientResult result;
    result.ok = ok;
    result.value = std::move(value);
    result.latency = sim_->now() - p.submitted;
    result.attempts = p.attempts;
    p.done(result);
  }
}

}  // namespace dyna::kv
