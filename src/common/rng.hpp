// Deterministic random number generation.
//
// Every stochastic component (link delay sampling, election-timeout
// randomization, workload arrivals, nemesis schedules) owns its own generator
// seeded from a single experiment seed via SplitMix64 stream derivation, so:
//   * a trial is reproducible from one 64-bit seed,
//   * adding RNG consumers does not perturb unrelated streams,
//   * trials run in parallel without sharing generator state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/check.hpp"

namespace dyna {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// deriver (seed -> per-component seeds) and to bootstrap xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive an independent child seed from (parent seed, stream id). Streams
/// with distinct ids are statistically independent.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  SplitMix64 mix(seed ^ (0xa0761d6478bd642fULL * (stream + 1)));
  mix.next();
  return mix.next();
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper bundling a generator with the distributions the
/// simulator needs. All sampling goes through here so components never
/// hand-roll float conversions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    // 53 random mantissa bits -> uniform double in [0,1).
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    DYNA_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    DYNA_EXPECTS(n > 0);
    // Lemire's multiply-shift rejection method: unbiased, one division at most.
    std::uint64_t x = gen_();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = gen_();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Standard normal via Box-Muller (no cached spare: keeps the stream
  /// position a pure function of draw count).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    DYNA_EXPECTS(stddev >= 0.0);
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (events per unit); used for Poisson
  /// arrival processes.
  [[nodiscard]] double exponential(double rate) noexcept {
    DYNA_EXPECTS(rate > 0.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t bits() noexcept { return gen_(); }

  /// Independent child RNG for a named sub-stream.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept {
    return Rng(derive_seed(gen_(), stream));
  }

 private:
  Xoshiro256 gen_;
};

}  // namespace dyna
