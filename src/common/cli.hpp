// Tiny `--key=value` command-line parser shared by benches and examples.
//
// Deliberately minimal: experiments need a handful of overridable knobs
// (seed, trial count, output path), not a full CLI framework.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dyna {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        kv_[std::string(arg)] = "true";
      } else {
        kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    }
    if (const char* scale = std::getenv("DYNA_BENCH_SCALE")) {
      scale_ = std::strtod(scale, nullptr);
      if (scale_ <= 0.0) scale_ = 1.0;
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string get_or(const std::string& key, std::string def) const {
    return get(key).value_or(std::move(def));
  }

  [[nodiscard]] std::int64_t get_or(const std::string& key, std::int64_t def) const {
    const auto v = get(key);
    return v ? std::strtoll(v->c_str(), nullptr, 10) : def;
  }

  [[nodiscard]] double get_or(const std::string& key, double def) const {
    const auto v = get(key);
    return v ? std::strtod(v->c_str(), nullptr) : def;
  }

  /// Parse a comma-separated unsigned integer list ("5,17,65"); `def` when
  /// the flag is absent. A malformed list (empty token, non-digit characters,
  /// trailing separator) aborts with a diagnostic instead of silently running
  /// a truncated experiment.
  [[nodiscard]] std::vector<std::size_t> get_sizes(const std::string& key,
                                                   std::vector<std::size_t> def) const {
    const auto v = get(key);
    if (!v) return def;
    constexpr std::uint64_t kMaxListEntry = 1'000'000;  // no experiment is bigger
    std::vector<std::size_t> out;
    std::string token;
    std::stringstream ss(*v);
    while (std::getline(ss, token, ',')) {
      if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "error: --%s=%s: bad list entry '%s' (expected digits)\n",
                     key.c_str(), v->c_str(), token.c_str());
        std::exit(2);
      }
      const std::uint64_t n =
          token.size() <= 7 ? std::strtoull(token.c_str(), nullptr, 10) : kMaxListEntry + 1;
      if (n == 0 || n > kMaxListEntry) {
        std::fprintf(stderr, "error: --%s=%s: entry '%s' out of range [1, %llu]\n",
                     key.c_str(), v->c_str(), token.c_str(),
                     static_cast<unsigned long long>(kMaxListEntry));
        std::exit(2);
      }
      out.push_back(static_cast<std::size_t>(n));
    }
    if (out.empty() || v->back() == ',') {
      std::fprintf(stderr, "error: --%s=%s: expected a comma-separated integer list\n",
                   key.c_str(), v->c_str());
      std::exit(2);
    }
    return out;
  }

  [[nodiscard]] bool flag(const std::string& key) const {
    const auto v = get(key);
    return v && *v != "false" && *v != "0";
  }

  /// DYNA_BENCH_SCALE multiplier for trial counts / durations (default 1).
  [[nodiscard]] double bench_scale() const noexcept { return scale_; }

  /// Scale an integer knob by DYNA_BENCH_SCALE, keeping it >= 1.
  [[nodiscard]] std::int64_t scaled(std::int64_t base) const {
    const auto v = static_cast<std::int64_t>(static_cast<double>(base) * scale_);
    return v > 0 ? v : 1;
  }

 private:
  std::map<std::string, std::string> kv_;
  double scale_ = 1.0;
};

}  // namespace dyna
