// Tiny `--key=value` command-line parser shared by benches and examples.
//
// Deliberately minimal: experiments need a handful of overridable knobs
// (seed, trial count, output path), not a full CLI framework.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace dyna {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        kv_[std::string(arg)] = "true";
      } else {
        kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    }
    if (const char* scale = std::getenv("DYNA_BENCH_SCALE")) {
      scale_ = std::strtod(scale, nullptr);
      if (scale_ <= 0.0) scale_ = 1.0;
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string get_or(const std::string& key, std::string def) const {
    return get(key).value_or(std::move(def));
  }

  [[nodiscard]] std::int64_t get_or(const std::string& key, std::int64_t def) const {
    const auto v = get(key);
    return v ? std::strtoll(v->c_str(), nullptr, 10) : def;
  }

  [[nodiscard]] double get_or(const std::string& key, double def) const {
    const auto v = get(key);
    return v ? std::strtod(v->c_str(), nullptr) : def;
  }

  [[nodiscard]] bool flag(const std::string& key) const {
    const auto v = get(key);
    return v && *v != "false" && *v != "0";
  }

  /// DYNA_BENCH_SCALE multiplier for trial counts / durations (default 1).
  [[nodiscard]] double bench_scale() const noexcept { return scale_; }

  /// Scale an integer knob by DYNA_BENCH_SCALE, keeping it >= 1.
  [[nodiscard]] std::int64_t scaled(std::int64_t base) const {
    const auto v = static_cast<std::int64_t>(static_cast<double>(base) * scale_);
    return v > 0 ? v : 1;
  }

 private:
  std::map<std::string, std::string> kv_;
  double scale_ = 1.0;
};

}  // namespace dyna
