// Streaming and windowed statistics used across the library.
//
// The Dynatune RTT estimator needs mean/stddev over a bounded sliding window
// (the paper's RTTs list with minListSize/maxListSize); experiment drivers
// need summary statistics (mean, percentiles) over sample sets. Both live
// here so the math is tested once.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace dyna {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (the paper's sigma is a descriptive statistic of the
  /// collected window, not an unbiased estimator of an infinite population).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  void reset() noexcept { *this = Welford{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-capacity sliding window of doubles with stable mean/stddev.
///
/// add() drops the oldest value once `capacity` is reached (the paper's
/// maxListSize behaviour). Mean/variance are maintained *incrementally* in
/// Welford form — O(1) per add and per query — because the Dynatune policy
/// reads both statistics on every received heartbeat (the window used to be
/// recomputed per query, which made the dynatune variant ~60x the raft
/// variant on BM_ClusterHeartbeatSecond). Removing a sample from a Welford
/// accumulator is exact in real arithmetic but accumulates float drift, so
/// every `kRefillEvery * capacity` replacements the accumulator is refilled
/// from the buffer with a full Welford pass, keeping the incremental path
/// bit-close (<= ~1e-12 relative) to the recompute path — verified by
/// tests/test_common_stats.cpp against the naive recompute.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    DYNA_EXPECTS(capacity > 0);
    buf_.reserve(capacity);
  }

  void add(double x) {
    if (buf_.size() < capacity_) {
      buf_.push_back(x);
      welford_add(x);
      return;
    }
    const double old = buf_[head_];
    buf_[head_] = x;
    head_ = (head_ + 1) % capacity_;
    welford_remove(old);
    welford_add(x);
    ++replacements_;
    // Refill on schedule, or immediately when m2 lands in the rounding-dust
    // band: after a large excursion drains out of a near-constant window the
    // residual m2 is pure float drift, and sqrt() would amplify it into a
    // spurious stddev. An exactly-zero m2 is already exact — skipping it
    // keeps constant streams O(1).
    if (replacements_ >= kRefillEvery * capacity_ ||
        (m2_ != 0.0 && m2_ < kVarianceFloor * static_cast<double>(buf_.size()))) {
      refill();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

  [[nodiscard]] double mean() const noexcept { return buf_.empty() ? 0.0 : mean_; }

  [[nodiscard]] double variance() const noexcept {
    return buf_.empty() ? 0.0 : std::max(m2_, 0.0) / static_cast<double>(buf_.size());
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  [[nodiscard]] double min() const noexcept {
    DYNA_EXPECTS(!buf_.empty());
    return *std::min_element(buf_.begin(), buf_.end());
  }

  [[nodiscard]] double max() const noexcept {
    DYNA_EXPECTS(!buf_.empty());
    return *std::max_element(buf_.begin(), buf_.end());
  }

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    replacements_ = 0;
  }

 private:
  /// Refill cadence in units of `capacity` replacements. Amortized cost is
  /// one Welford step per kRefillEvery adds; drift between refills stays far
  /// below the 1e-9 tolerance the exactness tests demand.
  static constexpr std::size_t kRefillEvery = 64;

  /// Per-sample variance below which a nonzero m2 is indistinguishable from
  /// drift (stddev floor ~1e-3 in sample units — far under the simulator's
  /// RTT noise floor). A window whose true variance sits under this floor
  /// refills per add, degrading to the recompute path's old cost, never
  /// worse.
  static constexpr double kVarianceFloor = 1e-6;

  /// Fold `x` into (mean_, m2_); buf_ already holds it.
  void welford_add(double x) noexcept {
    const double n = static_cast<double>(buf_.size());
    const double delta = x - mean_;
    mean_ += delta / n;
    m2_ += delta * (x - mean_);
  }

  /// Remove one sample from the accumulator (inverse Welford update); the
  /// count reverts to buf_.size() - 1 until the paired welford_add.
  void welford_remove(double y) noexcept {
    const std::size_t k = buf_.size();
    if (k <= 1) {
      mean_ = 0.0;
      m2_ = 0.0;
      return;
    }
    const double new_mean =
        mean_ - (y - mean_) / static_cast<double>(k - 1);
    m2_ -= (y - mean_) * (y - new_mean);
    mean_ = new_mean;
  }

  /// The Welford fallback: recompute the accumulator from the buffer.
  void refill() noexcept {
    Welford w;
    for (double x : buf_) w.add(x);
    mean_ = w.mean();
    m2_ = w.variance() * static_cast<double>(buf_.size());
    replacements_ = 0;
  }

  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<double> buf_;
  double mean_ = 0.0;
  double m2_ = 0.0;  ///< sum of squared deviations from mean_
  std::size_t replacements_ = 0;
};

/// Batch summary over a sample vector: mean, stddev, min/max, percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Linear-interpolation percentile of a *sorted* sample vector.
  [[nodiscard]] static double percentile_sorted(const std::vector<double>& sorted, double q) {
    DYNA_EXPECTS(!sorted.empty());
    DYNA_EXPECTS(q >= 0.0 && q <= 1.0);
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  [[nodiscard]] static Summary of(std::vector<double> samples) {
    Summary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    Welford w;
    for (double x : samples) w.add(x);
    s.mean = w.mean();
    s.stddev = w.stddev();
    s.min = samples.front();
    s.max = samples.back();
    s.p50 = percentile_sorted(samples, 0.50);
    s.p90 = percentile_sorted(samples, 0.90);
    s.p99 = percentile_sorted(samples, 0.99);
    return s;
  }
};

}  // namespace dyna
