// Streaming and windowed statistics used across the library.
//
// The Dynatune RTT estimator needs mean/stddev over a bounded sliding window
// (the paper's RTTs list with minListSize/maxListSize); experiment drivers
// need summary statistics (mean, percentiles) over sample sets. Both live
// here so the math is tested once.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace dyna {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (the paper's sigma is a descriptive statistic of the
  /// collected window, not an unbiased estimator of an infinite population).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  void reset() noexcept { *this = Welford{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-capacity sliding window of doubles with stable mean/stddev.
///
/// add() drops the oldest value once `capacity` is reached (the paper's
/// maxListSize behaviour). Statistics are recomputed with Welford over the
/// window on demand: the window is small (<= ~1000) and correctness beats
/// micro-optimization in a measurement pipeline.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    DYNA_EXPECTS(capacity > 0);
    buf_.reserve(capacity);
  }

  void add(double x) {
    if (buf_.size() < capacity_) {
      buf_.push_back(x);
    } else {
      buf_[head_] = x;
      head_ = (head_ + 1) % capacity_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

  [[nodiscard]] double mean() const noexcept { return welford().mean(); }
  [[nodiscard]] double stddev() const noexcept { return welford().stddev(); }

  [[nodiscard]] double min() const noexcept {
    DYNA_EXPECTS(!buf_.empty());
    return *std::min_element(buf_.begin(), buf_.end());
  }

  [[nodiscard]] double max() const noexcept {
    DYNA_EXPECTS(!buf_.empty());
    return *std::max_element(buf_.begin(), buf_.end());
  }

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

 private:
  [[nodiscard]] Welford welford() const noexcept {
    Welford w;
    for (double x : buf_) w.add(x);
    return w;
  }

  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<double> buf_;
};

/// Batch summary over a sample vector: mean, stddev, min/max, percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Linear-interpolation percentile of a *sorted* sample vector.
  [[nodiscard]] static double percentile_sorted(const std::vector<double>& sorted, double q) {
    DYNA_EXPECTS(!sorted.empty());
    DYNA_EXPECTS(q >= 0.0 && q <= 1.0);
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  [[nodiscard]] static Summary of(std::vector<double> samples) {
    Summary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    Welford w;
    for (double x : samples) w.add(x);
    s.mean = w.mean();
    s.stddev = w.stddev();
    s.min = samples.front();
    s.max = samples.back();
    s.p50 = percentile_sorted(samples, 0.50);
    s.p90 = percentile_sorted(samples, 0.90);
    s.p99 = percentile_sorted(samples, 0.99);
    return s;
  }
};

}  // namespace dyna
