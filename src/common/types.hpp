// Core vocabulary types shared by every Dynatune module.
//
// All simulation time is expressed with std::chrono on a dedicated SimClock,
// so durations written as `100ms` in experiment code are type-checked and the
// simulated time axis can never be confused with wall-clock time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace dyna {

/// Duration on the simulated time axis (nanosecond resolution).
using Duration = std::chrono::nanoseconds;

/// Clock tag for the simulated time axis. Never reads real time; the
/// simulator advances it explicitly.
struct SimClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = Duration;
  using time_point = std::chrono::time_point<SimClock, Duration>;
  static constexpr bool is_steady = true;
};

/// Instant on the simulated time axis.
using TimePoint = SimClock::time_point;

/// Simulation epoch (t = 0).
inline constexpr TimePoint kSimEpoch{Duration{0}};

/// Sentinel "never" instant, larger than any reachable simulation time.
inline constexpr TimePoint kNever{Duration{std::numeric_limits<std::int64_t>::max()}};

/// Convert a duration to fractional milliseconds (for reporting only).
[[nodiscard]] constexpr double to_ms(Duration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Convert a time point to fractional milliseconds since the sim epoch.
[[nodiscard]] constexpr double to_ms(TimePoint t) noexcept {
  return to_ms(t.time_since_epoch());
}

/// Convert a duration to fractional seconds (for reporting only).
[[nodiscard]] constexpr double to_sec(Duration d) noexcept {
  return std::chrono::duration<double>(d).count();
}

/// Convert a time point to fractional seconds since the sim epoch.
[[nodiscard]] constexpr double to_sec(TimePoint t) noexcept {
  return to_sec(t.time_since_epoch());
}

/// Build a Duration from fractional milliseconds (workload/tuning math).
[[nodiscard]] constexpr Duration from_ms(double ms) noexcept {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double, std::milli>(ms));
}

/// Identifies one server (or client endpoint) in a cluster. Dense, 0-based.
using NodeId = std::int32_t;

/// Sentinel for "no node" (unknown leader, unset vote, ...).
inline constexpr NodeId kNoNode = -1;

}  // namespace dyna
