// Lightweight contract checks (Expects/Ensures in the Core Guidelines sense).
//
// DYNA_EXPECTS / DYNA_ENSURES document pre/postconditions and abort with a
// message on violation. They stay enabled in all build types: this library is
// a measurement instrument, and a silently-corrupted invariant would poison
// every experiment built on top of it.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dyna::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr, const char* file,
                                          int line) {
  std::fprintf(stderr, "dynatune: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace dyna::detail

#define DYNA_EXPECTS(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::dyna::detail::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define DYNA_ENSURES(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::dyna::detail::contract_failure("postcondition", #cond, __FILE__, __LINE__))

#define DYNA_ASSERT(cond)                                                         \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::dyna::detail::contract_failure("invariant", #cond, __FILE__, __LINE__))
