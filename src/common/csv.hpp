// Minimal CSV writer for benchmark output.
//
// Every bench binary can dump the exact series it prints as CSV so figures
// can be re-plotted outside the repo. Quoting handles the few string cells we
// emit (variant names); numbers are written with full precision.
#pragma once

#include <charconv>
#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "common/check.hpp"

namespace dyna {

class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header) : out_(path) {
    DYNA_EXPECTS(out_.good());
    columns_ = header.size();
    write_row_impl(header);
  }

  /// Append one row; cell count must match the header.
  void row(const std::vector<std::string>& cells) {
    DYNA_EXPECTS(cells.size() == columns_);
    write_row_impl(cells);
  }

  /// Format with 12 significant digits (printf %.12g). std::to_chars emits
  /// the same digits the ostringstream-based writer produced, minus the
  /// stringstream construction — streaming a 10k-trial sweep's rows is
  /// allocation-free up to the returned string itself.
  [[nodiscard]] static std::string cell(double v) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                         std::chars_format::general, 12);
    DYNA_ASSERT(ec == std::errc{});
    return std::string(buf, end);
  }

  [[nodiscard]] static std::string cell(std::string_view v) { return std::string(v); }

 private:
  void write_row_impl(const std::vector<std::string>& cells) {
    bool first = true;
    for (const auto& c : cells) {
      if (!first) out_ << ',';
      first = false;
      if (c.find_first_of(",\"\n") != std::string::npos) {
        out_ << '"';
        for (char ch : c) {
          if (ch == '"') out_ << '"';
          out_ << ch;
        }
        out_ << '"';
      } else {
        out_ << c;
      }
    }
    out_ << '\n';
  }

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace dyna
