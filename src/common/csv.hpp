// Minimal CSV writer for benchmark output.
//
// Every bench binary can dump the exact series it prints as CSV so figures
// can be re-plotted outside the repo. Quoting handles the few string cells we
// emit (variant names); numbers are written with full precision.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace dyna {

class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header) : out_(path) {
    DYNA_EXPECTS(out_.good());
    columns_ = header.size();
    write_row_impl(header);
  }

  /// Append one row; cell count must match the header.
  void row(const std::vector<std::string>& cells) {
    DYNA_EXPECTS(cells.size() == columns_);
    write_row_impl(cells);
  }

  [[nodiscard]] static std::string cell(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }

  [[nodiscard]] static std::string cell(std::string_view v) { return std::string(v); }

 private:
  void write_row_impl(const std::vector<std::string>& cells) {
    bool first = true;
    for (const auto& c : cells) {
      if (!first) out_ << ',';
      first = false;
      if (c.find_first_of(",\"\n") != std::string::npos) {
        out_ << '"';
        for (char ch : c) {
          if (ch == '"') out_ << '"';
          out_ << ch;
        }
        out_ << '"';
      } else {
        out_ << c;
      }
    }
    out_ << '\n';
  }

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace dyna
