// The tuning formulas of the paper (§III-D), as pure functions.
//
// Keeping them free of estimator state means the exact math is unit-testable
// against the paper's own worked numbers (e.g. p = 0.3, x = 0.999 ⇒ K = 6).
#pragma once

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/types.hpp"
#include "dynatune/config.hpp"

namespace dyna::dt {

/// Election timeout from RTT statistics: Et = µ + s·σ, clamped.
[[nodiscard]] inline Duration compute_election_timeout(double mean_rtt_ms, double stddev_rtt_ms,
                                                       const DynatuneConfig& cfg) {
  DYNA_EXPECTS(mean_rtt_ms >= 0.0);
  DYNA_EXPECTS(stddev_rtt_ms >= 0.0);
  const double et_ms = mean_rtt_ms + cfg.safety_factor * stddev_rtt_ms;
  const auto et = from_ms(et_ms);
  return std::clamp(et, cfg.min_election_timeout, cfg.max_election_timeout);
}

/// Number of heartbeats K required so that P(at least one arrives) >= x under
/// loss rate p: smallest K with 1 - p^K >= x, i.e. K = ceil(log_p(1 - x)),
/// clamped into [min_k, max_k].
[[nodiscard]] inline int compute_k(double loss_rate, double delivery_target, int min_k,
                                   int max_k) {
  DYNA_EXPECTS(delivery_target > 0.0 && delivery_target < 1.0);
  DYNA_EXPECTS(min_k >= 1 && min_k <= max_k);
  if (loss_rate <= 0.0) return min_k;
  if (loss_rate >= 1.0) return max_k;
  const double raw = std::log(1.0 - delivery_target) / std::log(loss_rate);
  // Tolerate floating-point dust just below an integer boundary.
  const int k = static_cast<int>(std::ceil(raw - 1e-9));
  return std::clamp(k, min_k, max_k);
}

/// Heartbeat interval placing K beats evenly within Et: h = Et / K, floored.
[[nodiscard]] inline Duration compute_heartbeat_interval(Duration election_timeout, int k,
                                                         const DynatuneConfig& cfg) {
  DYNA_EXPECTS(k >= 1);
  const Duration h = election_timeout / k;
  return std::max(h, cfg.min_heartbeat);
}

}  // namespace dyna::dt
