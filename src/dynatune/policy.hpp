// DynatunePolicy: the paper's mechanism as a raft::ElectionPolicy.
//
// Follower side (Steps 0–3 of §III-B): record heartbeat metadata, estimate
// RTT statistics and loss rate, tune Et = µ + s·σ and h = Et/K, apply Et
// locally and return h for piggybacking. Until minListSize RTT samples exist
// (Step 0) the conservative defaults apply. Any election-timer expiry or
// leader change discards all measurement state and falls back to defaults.
//
// Leader side: remember the tuned h piggybacked by each follower and hand it
// to the per-follower heartbeat timer.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "dynatune/config.hpp"
#include "dynatune/loss_estimator.hpp"
#include "dynatune/rtt_estimator.hpp"
#include "dynatune/tuning.hpp"
#include "raft/election_policy.hpp"

namespace dyna::dt {

class DynatunePolicy final : public raft::ElectionPolicy {
 public:
  explicit DynatunePolicy(DynatuneConfig config)
      : cfg_(config), rtt_(config.max_list_size), loss_(config.max_list_size) {}

  // ---- Parameters in force --------------------------------------------------

  [[nodiscard]] Duration election_timeout() const override {
    return tuned_et_.value_or(cfg_.default_election_timeout);
  }

  [[nodiscard]] Duration heartbeat_interval(NodeId follower) const override {
    // Dense per-follower table (node ids are dense, 0-based): the leader
    // reads this on every heartbeat it paces, so it is one indexed load.
    // Duration{0} marks "not tuned yet" — a tuned h is clamped above zero.
    const auto i = static_cast<std::size_t>(follower);
    if (follower < 0 || i >= follower_h_.size() || follower_h_[i] == Duration{0}) {
      return cfg_.default_heartbeat;
    }
    return follower_h_[i];
  }

  // ---- Follower side ----------------------------------------------------------

  std::optional<Duration> on_heartbeat_meta(NodeId /*leader*/, const raft::HeartbeatMeta& meta,
                                            TimePoint /*now*/) override {
    loss_.record(meta.id);
    if (meta.measured_rtt) rtt_.record(*meta.measured_rtt);

    if (rtt_.count() < cfg_.min_list_size) {
      // Step 0: not enough data — advertise the default pace. The stale
      // tuned Et (if any) stays in force only while consecutive timeouts
      // remain under the fallback bound; the counter is cleared on a
      // *successful* retune below, not here, so a tuned-Et value that keeps
      // tripping the timer still converges to the conservative default.
      return cfg_.default_heartbeat;
    }
    consecutive_timeouts_ = 0;  // healthy again: measuring and tuning

    // Step 2: Et from RTT statistics, then h from the loss rate.
    const Duration et = compute_election_timeout(rtt_.mean_ms(), rtt_.stddev_ms(), cfg_);
    const int k = cfg_.fixed_k ? *cfg_.fixed_k
                               : compute_k(loss_.loss_rate(), cfg_.delivery_target,
                                           cfg_.min_heartbeats_per_timeout,
                                           cfg_.max_heartbeats_per_timeout);
    const Duration h = compute_heartbeat_interval(et, k, cfg_);
    tuned_et_ = et;
    tuned_h_ = h;
    return h;  // Step 3: piggybacked on the heartbeat response
  }

  void on_election_timeout() override {
    // Discard the measurement data right away (back to Step 0)...
    rtt_.reset();
    loss_.reset();
    ++consecutive_timeouts_;
    // ...but fight the election with the tuned timeout: Step 0 restarts
    // "with a newly elected leader". Only persistent failure to elect makes
    // us retreat to the conservative defaults.
    if (consecutive_timeouts_ >= cfg_.fallback_after_rounds) {
      tuned_et_.reset();
      tuned_h_.reset();
    }
  }

  void on_leader_changed(NodeId /*leader*/, raft::Term /*term*/) override {
    // New measurement path: restart from Step 0 under the new leader with
    // the default parameters.
    consecutive_timeouts_ = 0;
    fall_back();
  }

  // ---- Leader side ----------------------------------------------------------------

  void on_tuned_heartbeat(NodeId follower, Duration h) override {
    if (follower < 0) return;
    const auto i = static_cast<std::size_t>(follower);
    if (i >= follower_h_.size()) follower_h_.resize(i + 1, Duration{0});
    follower_h_[i] = std::clamp(h, cfg_.min_heartbeat, cfg_.max_election_timeout);
  }

  void on_became_leader() override {
    follower_h_.clear();
    consecutive_timeouts_ = 0;
  }

  // ---- Introspection (tests, telemetry, benches) ------------------------------------

  [[nodiscard]] const DynatuneConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const RttEstimator& rtt() const noexcept { return rtt_; }
  [[nodiscard]] const LossEstimator& loss() const noexcept { return loss_; }
  [[nodiscard]] std::optional<Duration> tuned_election_timeout() const noexcept {
    return tuned_et_;
  }
  [[nodiscard]] std::optional<Duration> tuned_heartbeat() const noexcept { return tuned_h_; }
  [[nodiscard]] bool warmed_up() const noexcept { return rtt_.count() >= cfg_.min_list_size; }

  // ---- Trial reuse ------------------------------------------------------------------

  [[nodiscard]] bool resettable_for_trial() const override { return true; }

  void reset_for_trial() override {
    fall_back();  // clears estimators (capacity kept) and tuned parameters
    consecutive_timeouts_ = 0;
    follower_h_.clear();
  }

 private:
  void fall_back() {
    rtt_.reset();
    loss_.reset();
    tuned_et_.reset();
    tuned_h_.reset();
  }

  DynatuneConfig cfg_;
  // Follower-side measurement state for the current leader path.
  RttEstimator rtt_;
  LossEstimator loss_;
  std::optional<Duration> tuned_et_;
  std::optional<Duration> tuned_h_;
  int consecutive_timeouts_ = 0;
  // Leader-side per-follower heartbeat intervals (piggybacked by followers),
  // dense-indexed by NodeId; Duration{0} == not tuned.
  std::vector<Duration> follower_h_;
};

}  // namespace dyna::dt
