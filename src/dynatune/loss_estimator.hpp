// Packet-loss estimator: the paper's ids list.
//
// The leader tags every heartbeat with a per-path sequential id. The follower
// keeps the ids it received, in ascending order with duplicates ignored
// (datagram heartbeats may be reordered or duplicated), and estimates
//   p = 1 − received / expected,  expected = ids.back − ids.front + 1.
// The window is capped at maxListSize; the oldest (smallest) ids are dropped,
// and stale ids below the window are ignored so eviction cannot re-widen the
// span.
//
// Storage is a flat sorted vector with a lazily-compacted front offset
// instead of a std::set: this runs once per received heartbeat (the
// Dynatune measurement hot path), ids arrive almost always in ascending
// order (append at the back), and eviction is an offset bump amortized to
// O(1) — no per-heartbeat node allocation, no red-black-tree rebalancing.
// Out-of-order arrivals pay one bounded memmove (the window is small).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dyna::dt {

class LossEstimator {
 public:
  explicit LossEstimator(std::size_t max_list_size) : max_size_(max_list_size) {
    DYNA_EXPECTS(max_list_size >= 2);
  }

  /// Record a received heartbeat id. Returns false for duplicates/stale ids.
  bool record(std::uint64_t id) {
    const std::size_t n = count();
    if (n >= max_size_ && id < ids_[begin_]) {
      return false;  // below the retained window: stale straggler
    }
    if (n == 0 || id > ids_.back()) {
      ids_.push_back(id);  // in-order arrival: the overwhelmingly common case
    } else {
      const auto it = std::lower_bound(ids_.begin() + static_cast<std::ptrdiff_t>(begin_),
                                       ids_.end(), id);
      if (it != ids_.end() && *it == id) return false;  // duplicate delivery
      ids_.insert(it, id);
    }
    if (count() > max_size_) {
      ++begin_;  // evict the oldest id; reclaim the prefix only occasionally
      if (begin_ >= max_size_) {
        ids_.erase(ids_.begin(), ids_.begin() + static_cast<std::ptrdiff_t>(begin_));
        begin_ = 0;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t count() const noexcept { return ids_.size() - begin_; }

  /// Estimated loss rate over the window; 0 until two ids are present.
  [[nodiscard]] double loss_rate() const noexcept {
    const std::size_t n = count();
    if (n < 2) return 0.0;
    const std::uint64_t expected = ids_.back() - ids_[begin_] + 1;
    DYNA_ASSERT(expected >= n);
    return 1.0 - static_cast<double>(n) / static_cast<double>(expected);
  }

  /// Discard everything (fallback / leader change: back to Step 0). Buffer
  /// capacity survives — this also runs on trial reuse.
  void reset() noexcept {
    ids_.clear();
    begin_ = 0;
  }

 private:
  std::size_t max_size_;
  std::vector<std::uint64_t> ids_;  ///< ascending; live window = [begin_, end)
  std::size_t begin_ = 0;
};

}  // namespace dyna::dt
