// Packet-loss estimator: the paper's ids list.
//
// The leader tags every heartbeat with a per-path sequential id. The follower
// keeps the ids it received, in ascending order with duplicates ignored
// (datagram heartbeats may be reordered or duplicated), and estimates
//   p = 1 − received / expected,  expected = ids.back − ids.front + 1.
// The window is capped at maxListSize; the oldest (smallest) ids are dropped,
// and stale ids below the window are ignored so eviction cannot re-widen the
// span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>

#include "common/check.hpp"

namespace dyna::dt {

class LossEstimator {
 public:
  explicit LossEstimator(std::size_t max_list_size) : max_size_(max_list_size) {
    DYNA_EXPECTS(max_list_size >= 2);
  }

  /// Record a received heartbeat id. Returns false for duplicates/stale ids.
  bool record(std::uint64_t id) {
    if (!ids_.empty() && ids_.size() >= max_size_ && id < *ids_.begin()) {
      return false;  // below the retained window: stale straggler
    }
    const auto [it, inserted] = ids_.insert(id);
    if (!inserted) return false;  // duplicate delivery
    if (ids_.size() > max_size_) ids_.erase(ids_.begin());
    return true;
  }

  [[nodiscard]] std::size_t count() const noexcept { return ids_.size(); }

  /// Estimated loss rate over the window; 0 until two ids are present.
  [[nodiscard]] double loss_rate() const noexcept {
    if (ids_.size() < 2) return 0.0;
    const std::uint64_t expected = *ids_.rbegin() - *ids_.begin() + 1;
    DYNA_ASSERT(expected >= ids_.size());
    return 1.0 - static_cast<double>(ids_.size()) / static_cast<double>(expected);
  }

  /// Discard everything (fallback / leader change: back to Step 0).
  void reset() noexcept { ids_.clear(); }

 private:
  std::size_t max_size_;
  std::set<std::uint64_t> ids_;
};

}  // namespace dyna::dt
