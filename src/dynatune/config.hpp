// Dynatune runtime configuration (the paper's §III-E runtime arguments, plus
// the engineering clamps any production deployment needs).
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace dyna::dt {

using namespace std::chrono_literals;

struct DynatuneConfig {
  /// Safety factor s in Et = µ_RTT + s·σ_RTT (paper default: 2).
  double safety_factor = 2.0;

  /// Target probability x that at least one heartbeat arrives within Et
  /// (paper default: 0.999).
  double delivery_target = 0.999;

  /// Tuning starts only once this many RTT samples are recorded (Step 0
  /// warm-up; paper default: 10).
  std::size_t min_list_size = 10;

  /// Measurement windows are capped at this many samples; oldest data is
  /// discarded (paper default: 1000).
  std::size_t max_list_size = 1000;

  /// Conservative fallback parameters used before warm-up completes and
  /// after any election-timer expiry (paper: etcd defaults).
  Duration default_election_timeout = 1000ms;
  Duration default_heartbeat = 100ms;

  /// Engineering clamps: keep tuned values physically sensible.
  Duration min_election_timeout = 10ms;
  Duration max_election_timeout = 10s;
  Duration min_heartbeat = 1ms;

  /// Cap on K = Et/h: bounds heartbeat load under catastrophic loss.
  int max_heartbeats_per_timeout = 50;

  /// Floor on K. The paper's formula yields K = 1 at p = 0, i.e. h = Et —
  /// zero margin between the heartbeat inter-arrival time and the smallest
  /// randomizedTimeout, so any delay jitter or scheduling stall trips the
  /// election timer. §II-B itself requires h "significantly smaller" than
  /// Et; K >= 2 restores a margin of at least Et/2. The ablation bench
  /// sweeps this knob to quantify the effect.
  int min_heartbeats_per_timeout = 2;

  /// When set, disable loss-driven K tuning and use this constant instead
  /// (the paper's Fix-K comparison variant, K = 10).
  std::optional<int> fixed_k;

  /// On election-timer expiry the measurement lists are discarded
  /// immediately (Step 0), but the tuned Et keeps governing the retry timer
  /// for this many consecutive timeouts before reverting to the conservative
  /// default. The paper restarts Step 0 "with a newly elected leader", i.e.
  /// elections are fought with the tuned (small) timeout — this bound adds a
  /// liveness escape hatch if the network degraded so much that tuned-Et
  /// elections cannot converge (cf. the Raft-Low death spiral of §IV-C1).
  int fallback_after_rounds = 3;
};

}  // namespace dyna::dt
