// RTT estimator: the paper's RTTs list.
//
// The leader measures RTT from heartbeat-timestamp echoes (on its own clock)
// and ships each measurement to the follower inside the next heartbeat; the
// follower records them here. Mean and standard deviation over the bounded
// window feed Et = µ + s·σ.
#pragma once

#include <cstddef>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace dyna::dt {

class RttEstimator {
 public:
  explicit RttEstimator(std::size_t max_list_size) : window_(max_list_size) {}

  /// Record one measured RTT. Oldest samples fall out beyond maxListSize.
  void record(Duration rtt) { window_.add(to_ms(rtt)); }

  [[nodiscard]] std::size_t count() const noexcept { return window_.size(); }
  [[nodiscard]] bool empty() const noexcept { return window_.empty(); }

  /// Mean RTT over the window, in milliseconds.
  [[nodiscard]] double mean_ms() const noexcept { return window_.mean(); }

  /// Standard deviation of RTT over the window, in milliseconds.
  [[nodiscard]] double stddev_ms() const noexcept { return window_.stddev(); }

  /// Discard everything (fallback / leader change: back to Step 0).
  void reset() noexcept { window_.clear(); }

 private:
  SlidingWindow window_;
};

}  // namespace dyna::dt
