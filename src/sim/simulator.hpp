// Deterministic discrete-event simulation engine.
//
// One Simulator instance is one experiment trial. Events execute in
// (time, insertion-id) order, so two runs with identical inputs produce
// identical traces — the property every reproduction experiment in this repo
// rests on. Trials are independent; parallelism happens across Simulators
// (see src/parallel), never inside one.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dyna::sim {

using EventFn = std::function<void()>;

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `when` (clamped to now if in the past).
  EventId schedule_at(TimePoint when, EventFn fn) {
    DYNA_EXPECTS(fn != nullptr);
    if (when < now_) when = now_;
    const EventId id = ++next_id_;
    queue_.push(Entry{when, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  /// Schedule `fn` after `delay` (negative delays clamp to "immediately").
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + (delay.count() > 0 ? delay : Duration{0}), std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id) {
    if (live_.erase(id) == 0) return false;
    cancelled_.insert(id);
    return true;
  }

  /// Execute the next pending event, advancing the clock. Returns false if
  /// the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      // Copy out before pop: the callback may schedule into the queue.
      Entry top = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      if (cancelled_.erase(top.id) > 0) continue;
      live_.erase(top.id);
      DYNA_ASSERT(top.when >= now_);
      now_ = top.when;
      ++executed_;
      top.fn();
      return true;
    }
    return false;
  }

  /// Run events until none remain at or before `horizon`, then advance the
  /// clock to `horizon` exactly (so back-to-back run_for calls tile time).
  void run_until(TimePoint horizon) {
    DYNA_EXPECTS(horizon >= now_);
    while (!queue_.empty() && queue_.top().when <= horizon) {
      if (peek_cancelled()) continue;
      step();
    }
    now_ = horizon;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  /// Drain the whole queue (tests / teardown). `max_events` guards against
  /// self-perpetuating schedules.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Entry {
    TimePoint when;
    EventId id;
    EventFn fn;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  /// Discard the queue head if it was cancelled. Returns true if discarded.
  bool peek_cancelled() {
    const Entry& top = queue_.top();
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      return true;
    }
    return false;
  }

  TimePoint now_ = kSimEpoch;
  EventId next_id_ = kInvalidEvent;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
  std::size_t executed_ = 0;
};

/// One-shot restartable timer: the idiom Raft nodes use for election and
/// heartbeat deadlines. Re-arming cancels the previous schedule; the callback
/// fires at most once per arm().
class Timer {
 public:
  Timer(Simulator& simulator, EventFn on_fire)
      : sim_(&simulator), on_fire_(std::move(on_fire)) {
    DYNA_EXPECTS(on_fire_ != nullptr);
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  void arm_at(TimePoint when) {
    cancel();
    deadline_ = when;
    id_ = sim_->schedule_at(when, [this] {
      id_ = kInvalidEvent;
      deadline_ = kNever;
      on_fire_();
    });
  }

  void arm(Duration delay) { arm_at(sim_->now() + delay); }

  void cancel() {
    if (id_ != kInvalidEvent) {
      sim_->cancel(id_);
      id_ = kInvalidEvent;
      deadline_ = kNever;
    }
  }

  [[nodiscard]] bool armed() const noexcept { return id_ != kInvalidEvent; }
  [[nodiscard]] TimePoint deadline() const noexcept { return deadline_; }

 private:
  Simulator* sim_;
  EventFn on_fire_;
  EventId id_ = kInvalidEvent;
  TimePoint deadline_ = kNever;
};

}  // namespace dyna::sim
