// Deterministic discrete-event simulation engine.
//
// One Simulator instance is one experiment trial. Events execute in
// (time, insertion-id) order, so two runs with identical inputs produce
// identical traces — the property every reproduction experiment in this repo
// rests on. Trials are independent; parallelism happens across Simulators
// (see src/parallel), never inside one.
//
// Engine layout (the repo's hottest path — see ARCHITECTURE.md):
//  * a 4-ary min-heap over 24-byte POD entries (when, seq, slot, gen). The
//    wide fan-out halves tree depth versus a binary heap and keeps sift paths
//    inside one or two cache lines of entries;
//  * a slot table holding the callables (sim::InlineFn, no allocation for
//    small captures), recycled through a free list;
//  * generation counters per slot: cancellation is O(1) — bump nothing, just
//    disarm the slot — and stale heap entries are lazily discarded on pop
//    when their generation no longer matches. No hash sets anywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/inline_fn.hpp"

namespace dyna::sim {

using EventFn = InlineFn;

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot << 32 | generation); never 0 for a live event.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `when` (clamped to now if in the past).
  EventId schedule_at(TimePoint when, EventFn fn) {
    DYNA_EXPECTS(static_cast<bool>(fn));
    if (when < now_) when = now_;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    // A fresh generation invalidates every outstanding id for this slot.
    // (The LIFO free list can concentrate reuse on one slot — a lone
    // re-armed timer bumps the same generation every arm — so the wrap
    // bound is 2^32 reuses of a *single* slot. Whole trials run ~1e8
    // events, two orders of magnitude under it; revisit if trials grow.)
    ++s.gen;
    s.armed = true;
    s.fn = std::move(fn);
    heap_push(HeapEntry{when, ++seq_, slot, s.gen});
    ++live_;
    return make_id(slot, s.gen);
  }

  /// Schedule `fn` after `delay` (negative delays clamp to "immediately").
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + (delay.count() > 0 ? delay : Duration{0}), std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before. O(1): the heap entry stays behind and is discarded
  /// lazily when it surfaces with a stale generation.
  bool cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (s.gen != gen || !s.armed) return false;
    release(s, slot);
    return true;
  }

  /// Execute the next pending event, advancing the clock. Returns false if
  /// the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      heap_pop();
      Slot& s = slots_[top.slot];
      if (s.gen != top.gen || !s.armed) continue;  // cancelled: lazy discard
      DYNA_ASSERT(top.when >= now_);
      now_ = top.when;
      ++executed_;
      // Move the callable out before invoking: the callback may schedule new
      // events, which can grow slots_ and recycle this very slot.
      InlineFn fn = std::move(s.fn);
      release(s, top.slot);
      fn();
      return true;
    }
    return false;
  }

  /// Run events until none remain at or before `horizon`, then advance the
  /// clock to `horizon` exactly (so back-to-back run_for calls tile time).
  void run_until(TimePoint horizon) {
    DYNA_EXPECTS(horizon >= now_);
    while (drop_stale_heads() && heap_.front().when <= horizon) {
      step();
    }
    now_ = horizon;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  /// Drain the whole queue (tests / teardown). `max_events` guards against
  /// self-perpetuating schedules.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Return to the freshly-constructed state while keeping every container's
  /// capacity (heap storage, slot table, free list). A reset simulator is
  /// observationally identical to a new one — clock at the epoch, no pending
  /// events, sequence and generation counters rewound — so trial k+1 of a
  /// sweep can reuse trial k's warmed allocations. The reset-exactness suite
  /// in tests/test_trial_reuse.cpp holds this to "bit-identical traces".
  void reset() noexcept {
    heap_.clear();
    slots_.clear();  // destroys the InlineFn callables, keeps the capacity
    free_slots_.clear();
    now_ = kSimEpoch;
    seq_ = 0;
    live_ = 0;
    executed_ = 0;
  }

 private:
  /// 24-byte POD heap entry. `seq` is the global insertion counter and breaks
  /// same-time ties FIFO; (slot, gen) locates and validates the callable.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  struct Slot {
    std::uint32_t gen = 0;
    bool armed = false;
    InlineFn fn;
  };

  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;  // FIFO among same-time events
  }

  /// Disarm a slot and return it to the free list (fired or cancelled).
  void release(Slot& s, std::uint32_t slot) {
    s.armed = false;
    s.fn.reset();
    free_slots_.push_back(slot);
    --live_;
  }

  /// Pop cancelled entries off the heap head. Returns false if nothing live
  /// remains (heap empty).
  bool drop_stale_heads() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.gen == top.gen && s.armed) return true;
      heap_pop();
    }
    return false;
  }

  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_pop() {
    DYNA_ASSERT(!heap_.empty());
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
    // Sift `last` down from the root.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  TimePoint now_ = kSimEpoch;
  std::uint64_t seq_ = 0;  ///< global insertion counter (FIFO tie-break)
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::size_t executed_ = 0;
};

/// One-shot restartable timer: the idiom Raft nodes use for election and
/// heartbeat deadlines. Re-arming cancels the previous schedule; the callback
/// fires at most once per arm().
class Timer {
 public:
  Timer(Simulator& simulator, EventFn on_fire)
      : sim_(&simulator), on_fire_(std::move(on_fire)) {
    DYNA_EXPECTS(static_cast<bool>(on_fire_));
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  void arm_at(TimePoint when) {
    cancel();
    deadline_ = when;
    id_ = sim_->schedule_at(when, [this] {
      id_ = kInvalidEvent;
      deadline_ = kNever;
      on_fire_();
    });
  }

  void arm(Duration delay) { arm_at(sim_->now() + delay); }

  void cancel() {
    if (id_ != kInvalidEvent) {
      sim_->cancel(id_);
      id_ = kInvalidEvent;
      deadline_ = kNever;
    }
  }

  /// Drop the handle without touching the simulator. For trial reuse only:
  /// after Simulator::reset() the stored id no longer refers to this timer's
  /// event, and cancelling it could hit an unrelated fresh event whose
  /// (slot, generation) happens to collide.
  void forget() noexcept {
    id_ = kInvalidEvent;
    deadline_ = kNever;
  }

  [[nodiscard]] bool armed() const noexcept { return id_ != kInvalidEvent; }
  [[nodiscard]] TimePoint deadline() const noexcept { return deadline_; }

 private:
  Simulator* sim_;
  EventFn on_fire_;
  EventId id_ = kInvalidEvent;
  TimePoint deadline_ = kNever;
};

}  // namespace dyna::sim
