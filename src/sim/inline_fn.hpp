// Small-buffer-optimized move-only callable for the event engine.
//
// Every scheduled event used to carry a std::function<void()>, which
// heap-allocates for captures beyond two pointers. Simulator callbacks are
// overwhelmingly tiny closures ([this], [this, peer], a slot index...), so
// InlineFn stores up to kInlineCapacity bytes in place and only falls back to
// the allocator for oversized or throwing-move callables. The type is
// move-only: events fire exactly once and are never copied, so paying for
// copyability (as std::function does) would be pure waste on the hot path.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.hpp"

namespace dyna::sim {

class InlineFn {
 public:
  /// Captures up to this size (and max_align_t alignment, and nothrow move)
  /// live inline; anything bigger goes through one heap allocation. 48 bytes
  /// covers every closure the engine itself creates with room to spare.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Invoke the stored callable (which stays stored; timers re-fire it).
  void operator()() {
    DYNA_EXPECTS(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename F>
  static constexpr bool kStoresInline = sizeof(F) <= kInlineCapacity &&
                                        alignof(F) <= alignof(std::max_align_t) &&
                                        std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (kStoresInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      static constexpr Ops kOps{
          [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
          [](void* dst, void* src) noexcept {
            D* from = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
          },
          [](void* self) noexcept { std::launder(reinterpret_cast<D*>(self))->~D(); }};
      ops_ = &kOps;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      static constexpr Ops kOps{
          [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
          [](void* dst, void* src) noexcept {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
          },
          [](void* self) noexcept { delete *std::launder(reinterpret_cast<D**>(self)); }};
      ops_ = &kOps;
    }
  }

  void move_from(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace dyna::sim
