#!/usr/bin/env python3
"""CI bench-diff gate: compare freshly generated bench CSVs against the
committed snapshots in bench/reference/.

For every reference file the generated counterpart must exist, carry the
exact same header (schema) and the same row count. Numeric value cells must
agree within --rtol/--atol; string cells must match exactly.

micro_core.csv (the Google Benchmark reporter) is special-cased: its timings
are machine-dependent, so only the schema and the benchmark-name column are
compared (the preamble context lines are skipped on both sides).

Exit code 0 = no drift; 1 = drift (all mismatches are listed first).
Stdlib only — no third-party dependencies.
"""

import argparse
import csv
import pathlib
import sys

# Reference files whose value columns are machine-dependent: compare schema
# and the `name` column only.
SCHEMA_ONLY = {"micro_core.csv"}

# Columns that are identities or exact integer counters, never measurements:
# compared as strings, no tolerance. (A 19-digit seed does not even round-trip
# through float64, and a drifted `completed` count is a real behaviour change.)
EXACT_COLUMNS = {"scenario", "variant", "servers", "seed", "kill", "ok", "available",
                 "completed", "failed"}


def read_csv(path):
    """Read a CSV, skipping any Google-Benchmark context preamble (lines
    before the header row that starts with 'name,')."""
    with open(path, newline="") as f:
        lines = f.read().splitlines()
    start = 0
    for i, line in enumerate(lines):
        if line.startswith("name,"):
            start = i
            break
    rows = list(csv.reader(lines[start:]))
    if not rows:
        raise SystemExit(f"error: {path} is empty")
    return rows[0], rows[1:]


def is_number(cell):
    try:
        float(cell)
        return True
    except ValueError:
        return False


def compare_file(ref_path, gen_path, rtol, atol, schema_only):
    errors = []
    ref_header, ref_rows = read_csv(ref_path)
    gen_header, gen_rows = read_csv(gen_path)

    if ref_header != gen_header:
        errors.append(f"{ref_path.name}: header drift\n  reference: {ref_header}\n"
                      f"  generated: {gen_header}")
        return errors  # cell comparison is meaningless across schemas

    if len(ref_rows) != len(gen_rows):
        errors.append(f"{ref_path.name}: row count drift "
                      f"(reference {len(ref_rows)}, generated {len(gen_rows)})")

    if schema_only:
        # Benchmark names must line up even when timings differ.
        name_col = ref_header.index("name") if "name" in ref_header else 0
        ref_names = [r[name_col] for r in ref_rows]
        gen_names = [r[name_col] for r in gen_rows]
        if ref_names != gen_names:
            missing = sorted(set(ref_names) - set(gen_names))
            added = sorted(set(gen_names) - set(ref_names))
            errors.append(f"{ref_path.name}: benchmark set drift "
                          f"(missing {missing}, added {added})")
        return errors

    exact_cols = {i for i, name in enumerate(ref_header) if name in EXACT_COLUMNS}
    mismatches = 0
    for i, (ref_row, gen_row) in enumerate(zip(ref_rows, gen_rows)):
        if len(ref_row) != len(gen_row):
            errors.append(f"{ref_path.name}:{i + 2}: cell count drift")
            continue
        for col, (a, b) in enumerate(zip(ref_row, gen_row)):
            if a == b:
                continue
            if col not in exact_cols and is_number(a) and is_number(b):
                fa, fb = float(a), float(b)
                if abs(fa - fb) <= atol + rtol * max(abs(fa), abs(fb)):
                    continue
            mismatches += 1
            if mismatches <= 10:  # cap the noise; the count below tells the rest
                errors.append(f"{ref_path.name}:{i + 2}: column "
                              f"'{ref_header[col]}' drifted: {a} -> {b}")
    if mismatches > 10:
        errors.append(f"{ref_path.name}: ... and {mismatches - 10} more drifted cells")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--generated", required=True, help="directory with fresh CSVs")
    ap.add_argument("--reference", required=True, help="bench/reference directory")
    ap.add_argument("--rtol", type=float, default=0.05,
                    help="relative tolerance for numeric cells (default 0.05)")
    ap.add_argument("--atol", type=float, default=1e-6,
                    help="absolute tolerance for numeric cells (default 1e-6)")
    args = ap.parse_args()

    ref_dir = pathlib.Path(args.reference)
    gen_dir = pathlib.Path(args.generated)
    references = sorted(ref_dir.glob("*.csv"))
    if not references:
        print(f"error: no reference CSVs under {ref_dir}", file=sys.stderr)
        return 1

    all_errors = []
    for ref_path in references:
        gen_path = gen_dir / ref_path.name
        if not gen_path.exists():
            all_errors.append(f"{ref_path.name}: not generated (expected {gen_path})")
            continue
        all_errors.extend(compare_file(ref_path, gen_path, args.rtol, args.atol,
                                       ref_path.name in SCHEMA_ONLY))
        print(f"checked {ref_path.name}")

    if all_errors:
        print(f"\nbench-diff gate FAILED ({len(all_errors)} finding(s)):", file=sys.stderr)
        for e in all_errors:
            print(f"  {e}", file=sys.stderr)
        print("\nIf the drift is intended, regenerate the snapshots with the commands in "
              "bench/reference/README.md and commit them.", file=sys.stderr)
        return 1
    print("bench-diff gate passed: schema, row counts and values within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
