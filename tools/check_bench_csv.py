#!/usr/bin/env python3
"""CI bench-diff gate: compare freshly generated bench CSVs against the
committed snapshots in bench/reference/.

For every reference file the generated counterpart must exist, carry the
exact same header (schema) and the same row count. Numeric value cells must
agree within --rtol/--atol; string cells must match exactly.

Machine-dependent timings get a separate, wider band that only arms on a
pinned runner class: bench/reference/runner_class.txt records the class of
the machine that generated the committed snapshots, and when the job passes
a matching --runner-class, timing cells are compared within --timing-rtol
(default 0.5 — catches hot-path regressions of 2x, ignores runner jitter).
On any other runner (or without the flag) timing cells are skipped, so the
gate can never flap on hardware differences:

  * micro_core.csv (the Google Benchmark reporter): schema and benchmark
    name set are always checked; the real_time/cpu_time columns join in
    under a matching runner class.
  * fig_scale.csv: most columns are deterministic (simulated-time metrics,
    the n*n link-table size) and use the strict band; the wall-clock
    throughput and RSS columns are timing cells.
  * fig_sweep.csv: per-cell election aggregates are deterministic; the
    trials-per-second columns (fresh / reused substrate), their ratio and
    the RSS column are timing cells.
  * fig_compaction.csv: committed-op / live-log / snapshot / replayed-entry
    counters are deterministic per seed; the peak-RSS and recovery-latency
    columns are timing cells.
  * fig_shard.csv: scale/failover/kilo phases. Completion counters, applied
    indices, rps/events-per-sim-second (simulated-time rates) and the
    link-table byte columns are deterministic — link_table_bytes and
    dense_link_table_bytes are exact integers, the direct record of the
    block-diagonal layout's k-fold memory win. reset_us is a wall-clock
    timing cell; peak_rss_mib is a memory cell.

Memory cells (peak_rss_mib) get their own band: allocator noise is far
smaller than scheduler noise, so on the pinned runner they are compared
within --memory-rtol (default 0.3) rather than the looser timing band — a
link table silently reverting to dense growth trips this long before it
trips a timing band.

Exit code 0 = no drift; 1 = drift (all mismatches are listed first).
Stdlib only — no third-party dependencies.
"""

import argparse
import csv
import pathlib
import sys

# Reference files whose value columns are machine-dependent: compare schema
# and the `name` column always, timing columns only under a pinned runner.
SCHEMA_ONLY = {"micro_core.csv"}

# Timing columns of SCHEMA_ONLY files (Google Benchmark reporter).
TIMING_COLUMNS = {"real_time", "cpu_time"}

# Machine-dependent columns of otherwise-deterministic files: skipped unless
# the runner class matches, then compared within --timing-rtol.
MACHINE_COLUMNS = {"sim_sec_per_wall_sec",
                   "trials_per_sec_fresh", "trials_per_sec_reused", "speedup",
                   "recovery_ms", "reset_us"}

# Memory columns: machine-dependent like timings, but allocator noise is much
# smaller than scheduler noise, so on the pinned runner they get the tighter
# --memory-rtol band instead of --timing-rtol.
MEMORY_COLUMNS = {"peak_rss_mib"}

# Columns that are identities or exact integer counters, never measurements:
# compared as strings, no tolerance. (A 19-digit seed does not even round-trip
# through float64, and a drifted `completed` count is a real behaviour change.)
EXACT_COLUMNS = {"scenario", "variant", "servers", "seed", "kill", "ok", "available",
                 "completed", "failed", "seeds", "elected", "elections", "expiries",
                 "mode", "phase", "ops", "log_entries", "snapshots", "replayed",
                 "max_cmds", "clients", "gets", "puts", "batches", "batched_cmds",
                 "rounds", "reads", "shards", "shard", "shard_servers", "partition",
                 "applied", "undisturbed", "link_table_bytes", "dense_link_table_bytes",
                 "fault", "violations", "firings", "churn_rounds"}


def read_csv(path):
    """Read a CSV, skipping any Google-Benchmark context preamble (lines
    before the header row that starts with 'name,')."""
    with open(path, newline="") as f:
        lines = f.read().splitlines()
    start = 0
    for i, line in enumerate(lines):
        if line.startswith("name,"):
            start = i
            break
    rows = list(csv.reader(lines[start:]))
    if not rows:
        raise SystemExit(f"error: {path} is empty")
    return rows[0], rows[1:]


def is_number(cell):
    try:
        float(cell)
        return True
    except ValueError:
        return False


def cells_close(a, b, rtol, atol):
    fa, fb = float(a), float(b)
    return abs(fa - fb) <= atol + rtol * max(abs(fa), abs(fb))


def compare_file(ref_path, gen_path, rtol, atol, schema_only, timing_banded, timing_rtol,
                 memory_rtol):
    errors = []
    ref_header, ref_rows = read_csv(ref_path)
    gen_header, gen_rows = read_csv(gen_path)

    if ref_header != gen_header:
        errors.append(f"{ref_path.name}: header drift\n  reference: {ref_header}\n"
                      f"  generated: {gen_header}")
        return errors  # cell comparison is meaningless across schemas

    if len(ref_rows) != len(gen_rows):
        errors.append(f"{ref_path.name}: row count drift "
                      f"(reference {len(ref_rows)}, generated {len(gen_rows)})")

    if schema_only:
        # Benchmark names must line up even when timings differ.
        name_col = ref_header.index("name") if "name" in ref_header else 0
        ref_names = [r[name_col] for r in ref_rows]
        gen_names = [r[name_col] for r in gen_rows]
        if ref_names != gen_names:
            missing = sorted(set(ref_names) - set(gen_names))
            added = sorted(set(gen_names) - set(ref_names))
            errors.append(f"{ref_path.name}: benchmark set drift "
                          f"(missing {missing}, added {added})")
            return errors
        if timing_banded:
            timing_cols = {i for i, name in enumerate(ref_header) if name in TIMING_COLUMNS}
            for i, (ref_row, gen_row) in enumerate(zip(ref_rows, gen_rows)):
                for col in timing_cols:
                    if col >= len(ref_row) or col >= len(gen_row):
                        continue
                    a, b = ref_row[col], gen_row[col]
                    if not (is_number(a) and is_number(b)):
                        continue
                    if not cells_close(a, b, timing_rtol, atol):
                        errors.append(
                            f"{ref_path.name}:{i + 2}: timing regression in "
                            f"'{ref_header[col]}' ({ref_row[0]}): {a} -> {b} "
                            f"(band +-{timing_rtol:.0%})")
        return errors

    exact_cols = {i for i, name in enumerate(ref_header) if name in EXACT_COLUMNS}
    machine_cols = {i for i, name in enumerate(ref_header) if name in MACHINE_COLUMNS}
    memory_cols = {i for i, name in enumerate(ref_header) if name in MEMORY_COLUMNS}
    mismatches = 0
    for i, (ref_row, gen_row) in enumerate(zip(ref_rows, gen_rows)):
        if len(ref_row) != len(gen_row):
            errors.append(f"{ref_path.name}:{i + 2}: cell count drift")
            continue
        for col, (a, b) in enumerate(zip(ref_row, gen_row)):
            if col in machine_cols or col in memory_cols:
                # Machine-dependent cell: banded on the pinned runner, else
                # skipped. Memory cells use the tighter memory band.
                band = memory_rtol if col in memory_cols else timing_rtol
                kind = "memory" if col in memory_cols else "timing"
                if timing_banded and is_number(a) and is_number(b) and \
                        not cells_close(a, b, band, atol):
                    mismatches += 1
                    if mismatches <= 10:
                        errors.append(f"{ref_path.name}:{i + 2}: {kind} column "
                                      f"'{ref_header[col]}' drifted: {a} -> {b} "
                                      f"(band +-{band:.0%})")
                continue
            if a == b:
                continue
            if col not in exact_cols and is_number(a) and is_number(b):
                if cells_close(a, b, rtol, atol):
                    continue
            mismatches += 1
            if mismatches <= 10:  # cap the noise; the count below tells the rest
                errors.append(f"{ref_path.name}:{i + 2}: column "
                              f"'{ref_header[col]}' drifted: {a} -> {b}")
    if mismatches > 10:
        errors.append(f"{ref_path.name}: ... and {mismatches - 10} more drifted cells")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--generated", required=True, help="directory with fresh CSVs")
    ap.add_argument("--reference", required=True, help="bench/reference directory")
    ap.add_argument("--rtol", type=float, default=0.05,
                    help="relative tolerance for numeric cells (default 0.05)")
    ap.add_argument("--atol", type=float, default=1e-6,
                    help="absolute tolerance for numeric cells (default 1e-6)")
    ap.add_argument("--runner-class", default=None,
                    help="class of the machine running this check; timing cells are "
                         "compared only when it matches bench/reference/runner_class.txt")
    ap.add_argument("--timing-rtol", type=float, default=0.5,
                    help="relative tolerance for timing cells on the pinned runner "
                         "(default 0.5)")
    ap.add_argument("--memory-rtol", type=float, default=0.3,
                    help="relative tolerance for memory cells (peak_rss_mib) on the "
                         "pinned runner (default 0.3)")
    args = ap.parse_args()

    ref_dir = pathlib.Path(args.reference)
    gen_dir = pathlib.Path(args.generated)
    references = sorted(ref_dir.glob("*.csv"))
    if not references:
        print(f"error: no reference CSVs under {ref_dir}", file=sys.stderr)
        return 1

    pinned_path = ref_dir / "runner_class.txt"
    pinned = pinned_path.read_text().strip() if pinned_path.exists() else None
    timing_banded = args.runner_class is not None and pinned is not None \
        and args.runner_class == pinned
    if timing_banded:
        print(f"runner class '{pinned}' matches: timing cells checked "
              f"within +-{args.timing_rtol:.0%}")
    else:
        print(f"timing cells skipped (runner class {args.runner_class!r} vs "
              f"pinned {pinned!r}); regenerate snapshots on the pinned runner "
              f"to arm the band")

    all_errors = []
    for ref_path in references:
        gen_path = gen_dir / ref_path.name
        if not gen_path.exists():
            all_errors.append(f"{ref_path.name}: not generated (expected {gen_path})")
            continue
        all_errors.extend(compare_file(ref_path, gen_path, args.rtol, args.atol,
                                       ref_path.name in SCHEMA_ONLY,
                                       timing_banded, args.timing_rtol,
                                       args.memory_rtol))
        print(f"checked {ref_path.name}")

    if all_errors:
        print(f"\nbench-diff gate FAILED ({len(all_errors)} finding(s)):", file=sys.stderr)
        for e in all_errors:
            print(f"  {e}", file=sys.stderr)
        print("\nIf the drift is intended, regenerate the snapshots with the commands in "
              "bench/reference/README.md and commit them.", file=sys.stderr)
        return 1
    print("bench-diff gate passed: schema, row counts and values within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
