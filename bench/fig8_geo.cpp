// Fig 8 + §IV-D: geo-replicated deployment across five AWS regions.
//
// Five servers in Tokyo, London, California, Sydney and São Paulo (public
// inter-region RTT matrix, 105-310 ms), jitter proportional to path length,
// light steady loss. The Fig 4 kill-the-leader procedure is repeated; log
// timestamps carry per-node NTP-like clock offsets (tens of ms) exactly as
// the paper cautions for its multi-machine measurement.
//
// Paper reference: detection 1137 -> 213 ms (-81 %), OTS 1718 -> 1145 ms
// (-33 %).
//
// Usage: fig8_geo [--kills=N] [--seed=S] [--skew-ms=S] [--csv=FILE]
#include <cstdio>

#include "common/cli.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

constexpr std::size_t kKillsPerTrial = 25;

scenario::SweepSpec fig8_sweep(scenario::Variant variant, std::size_t kills,
                               std::uint64_t seed, double skew_ms, unsigned threads) {
  scenario::ScenarioSpec base;
  base.name = "fig8";
  base.variant = variant;
  base.servers = 5;
  base.topology.wan = cluster::WanTopology::aws_five_regions();
  // Dedicated m5.large instances: no CPU oversubscription, so only a mild
  // stall process (NIC interrupts, Go GC) — far gentler than the
  // single-machine testbed.
  base.transport.stall.mean_interval = 10s;
  base.transport.stall.duration_median_ms = 5.0;
  base.transport.stall.duration_sigma = 1.0;
  base.faults = scenario::FaultPlan::leader_kills(kKillsPerTrial, 12s);
  if (skew_ms > 0.0) base.faults.clock_skew_ms = skew_ms;

  scenario::SweepSpec sweep;
  sweep.base = std::move(base);
  sweep.seeds = (kills + kKillsPerTrial - 1) / kKillsPerTrial;
  sweep.master_seed = seed;
  sweep.threads = threads;
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{150})));
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const double skew_ms = cli.get_or("skew-ms", 15.0);
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{0}));

  metrics::banner("Fig 8: AWS 5-region geo-replication (Tokyo/London/California/Sydney/Sao Paulo)");
  std::printf("kills per variant: %zu, NTP clock-skew sigma: %.0f ms\n", kills, skew_ms);

  auto raft_results = scenario::ScenarioRunner::run_sweep(
      fig8_sweep(scenario::Variant::Raft, kills, seed, skew_ms, threads));
  auto dyna_results = scenario::ScenarioRunner::run_sweep(
      fig8_sweep(scenario::Variant::Dynatune, kills, seed + 1, skew_ms, threads));
  scenario::trim_failovers(raft_results, kills);
  scenario::trim_failovers(dyna_results, kills);

  const auto raft = scenario::collect_failovers(raft_results);
  const auto dynatune = scenario::collect_failovers(dyna_results);

  const scenario::FailoverStats r = scenario::summarize_failovers(raft);
  const scenario::FailoverStats d = scenario::summarize_failovers(dynatune);

  metrics::Table t({"metric", "Raft", "Dynatune", "reduction", "paper Raft", "paper Dynatune",
                    "paper reduction"});
  t.row({"detection mean (ms)", metrics::Table::num(r.detection.mean),
         metrics::Table::num(d.detection.mean),
         metrics::Table::num(100.0 * (1.0 - d.detection.mean / r.detection.mean)) + "%", "1137",
         "213", "81%"});
  t.row({"OTS mean (ms)", metrics::Table::num(r.ots.mean), metrics::Table::num(d.ots.mean),
         metrics::Table::num(100.0 * (1.0 - d.ots.mean / r.ots.mean)) + "%", "1718", "1145",
         "33%"});
  t.print();

  std::printf("\n");
  scenario::print_failover_cdfs("Raft", raft);
  scenario::print_failover_cdfs("Dynatune", dynatune);

  if (const auto csv_path = cli.get("csv")) {
    scenario::CsvSink csv(*csv_path, scenario::CsvSection::Failover);
    csv.consume_all(raft_results);
    csv.consume_all(dyna_results);
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
