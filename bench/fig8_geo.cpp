// Fig 8 + §IV-D: geo-replicated deployment across five AWS regions.
//
// Five servers in Tokyo, London, California, Sydney and São Paulo (public
// inter-region RTT matrix, 105-310 ms), jitter proportional to path length,
// light steady loss. The Fig 4 kill-the-leader procedure is repeated; log
// timestamps carry per-node NTP-like clock offsets (tens of ms) exactly as
// the paper cautions for its multi-machine measurement.
//
// Paper reference: detection 1137 -> 213 ms (-81 %), OTS 1718 -> 1145 ms
// (-33 %).
//
// Usage: fig8_geo [--kills=N] [--seed=S] [--skew-ms=S]
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/topology.hpp"
#include "parallel/trial_runner.hpp"

namespace {

using namespace dyna;
using namespace dyna::bench;
using namespace std::chrono_literals;

std::vector<cluster::FailoverSample> run_variant(bool dynatune, std::size_t kills,
                                                 std::uint64_t seed, double skew_ms,
                                                 unsigned threads) {
  const std::size_t kills_per_trial = 25;
  const std::size_t trials = (kills + kills_per_trial - 1) / kills_per_trial;

  auto fn = [&](std::size_t /*trial*/, std::uint64_t trial_seed) {
    cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(5, trial_seed)
                                          : cluster::make_raft_config(5, trial_seed);
    // Dedicated m5.large instances: no CPU oversubscription, so only a mild
    // stall process (NIC interrupts, Go GC) — far gentler than the
    // single-machine testbed.
    cfg.transport.stall.mean_interval = 10s;
    cfg.transport.stall.duration_median_ms = 5.0;
    cfg.transport.stall.duration_sigma = 1.0;
    cluster::Cluster c(std::move(cfg));
    cluster::WanTopology::aws_five_regions().apply(c.network());

    cluster::FailoverOptions opt;
    opt.kills = kills_per_trial;
    opt.settle = 12s;
    if (skew_ms > 0.0) opt.clock_skew_ms = skew_ms;
    return cluster::FailoverExperiment::run(c, opt);
  };

  auto per_trial = par::run_trials<std::vector<cluster::FailoverSample>>(trials, seed, fn, threads);
  std::vector<cluster::FailoverSample> all;
  for (auto& t : per_trial) {
    for (auto& s : t) {
      if (all.size() < kills) all.push_back(s);
    }
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{150})));
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const double skew_ms = cli.get_or("skew-ms", 15.0);
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{0}));

  metrics::banner("Fig 8: AWS 5-region geo-replication (Tokyo/London/California/Sydney/Sao Paulo)");
  std::printf("kills per variant: %zu, NTP clock-skew sigma: %.0f ms\n", kills, skew_ms);

  const auto raft = run_variant(false, kills, seed, skew_ms, threads);
  const auto dynatune = run_variant(true, kills, seed + 1, skew_ms, threads);

  const FailoverStats r = summarize(raft);
  const FailoverStats d = summarize(dynatune);

  metrics::Table t({"metric", "Raft", "Dynatune", "reduction", "paper Raft", "paper Dynatune",
                    "paper reduction"});
  t.row({"detection mean (ms)", metrics::Table::num(r.detection.mean),
         metrics::Table::num(d.detection.mean),
         metrics::Table::num(100.0 * (1.0 - d.detection.mean / r.detection.mean)) + "%", "1137",
         "213", "81%"});
  t.row({"OTS mean (ms)", metrics::Table::num(r.ots.mean), metrics::Table::num(d.ots.mean),
         metrics::Table::num(100.0 * (1.0 - d.ots.mean / r.ots.mean)) + "%", "1718", "1145",
         "33%"});
  t.print();

  std::printf("\n");
  print_cdf("Raft detection", detection_samples(raft));
  print_cdf("Dynatune detection", detection_samples(dynatune));
  print_cdf("Raft OTS", ots_samples(raft));
  print_cdf("Dynatune OTS", ots_samples(dynatune));
  return 0;
}
