// Shard-scale characterization: aggregate closed-loop throughput vs shard
// count on the shared simulation substrate, plus a failover column showing
// one shard's leader loss leaves every other shard untouched.
//
// Three phases, one process:
//
//   scale    — shards x group-size grid. Each cell multiplexes k consensus
//              groups onto ONE Simulator/Network (genuine shared-link
//              contention), drives --clients zero-think closed-loop sessions
//              through the hash ShardRouter under the grouped CPU model
//              (a commit round costs --round-us plus --cmd-us per command),
//              and reports aggregate + per-shard throughput. One group's
//              leader is the CPU bottleneck, so routing across k groups
//              multiplies the ceiling — the headline pin: at the first
//              group size, shards=4 must beat shards=1 by >= --min-scaling
//              (2.5x) in aggregate achieved req/s, or the bench aborts.
//
//   failover — the isolation gate. A 4-shard deployment runs a pinned,
//              ops-bound, disjoint-keyspace workload twice from the same
//              seed: once undisturbed, once with a FaultPlan partition
//              window cutting shard 0's leader off mid-run (elections,
//              stalls and retries on shard 0 only). After both runs drain,
//              every replica snapshot of shards 1..k-1 must be
//              byte-identical across the two runs — the bench aborts if a
//              shard-leader kill perturbs any other shard's applied state.
//
//   kilo     — the thousand-node frontier enabled by the block-diagonal
//              link table: --kilo-shards x group-size grid up to 64x33 =
//              2112 server nodes, closed-loop as above, one aggregate row
//              per cell. Each row adds the memory and reset-cost evidence:
//              link_table_bytes() sampled after elections but BEFORE client
//              endpoints join (the steady tiled footprint — the same idle
//              sampling point fig_scale pins; client sessions later add
//              O(touched pairs) sparse entries on top), the dense (k*n)^2
//              formula it replaces, executed events per simulated second
//              over the measurement window, and the mean per-trial
//              reset_for_trial cost measured on a standalone network of the
//              cell's geometry. Two self-pins: every kilo cell must show
//              dense/actual >= 8x (the layout's k-fold claim at k >= 8),
//              and the reset cost ratio between the largest and smallest
//              kilo cells must stay under 1/8th of the dense link-count
//              ratio (reset is O(nodes + touched), not O(links) — the
//              epoch-stamp contract).
//
// All emitted columns except reset_us and peak_rss_mib are simulated-time
// or layout metrics — deterministic per seed, so the committed reference
// CSV sits in the strict band of tools/check_bench_csv.py (the two wall
//-clock columns sit in the machine band).
//
// Usage: fig_shard [--shards=1,2,4,8] [--sizes=5,15,33] [--clients=32]
//                  [--measure-sec=3] [--round-us=2000] [--cmd-us=50]
//                  [--ops=600] [--min-scaling=2.5] [--seed=42]
//                  [--kilo-shards=8,16,32,64] [--kilo-measure-sec=2]
//                  [--kilo-reset-reps=256] [--csv=FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "metrics/report.hpp"
#include "scenario/runner.hpp"
#include "shard/client.hpp"
#include "shard/router.hpp"
#include "shard/sharded_cluster.hpp"
#include "workload/closed_loop.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

struct BenchParams {
  std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  std::vector<std::size_t> sizes{5, 15, 33};
  std::size_t clients = 32;
  int measure_sec = 3;
  Duration round{};
  Duration per_command{};
  std::uint64_t ops = 600;
  std::uint64_t seed = 42;
  std::vector<std::size_t> kilo_shard_counts{8, 16, 32, 64};
  int kilo_measure_sec = 2;
  std::size_t kilo_reset_reps = 256;
};

/// One CSV row. `shard == -1` marks a cell-aggregate row; `undisturbed` is
/// -1 outside the failover phase; the trailing layout/cost columns are -1
/// outside the kilo phase.
struct Row {
  std::string phase;
  std::size_t shards = 0;
  std::size_t servers = 0;  ///< per group
  long long shard = -1;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double rps = 0.0;
  std::uint64_t applied = 0;
  int undisturbed = -1;
  long long link_table_bytes = -1;        ///< block-diagonal table, post-election
  long long dense_link_table_bytes = -1;  ///< the (k*n)^2 formula it replaces
  double events_per_sim_sec = -1.0;       ///< over the measurement window
  double reset_us = -1.0;                 ///< mean per-trial reset (standalone net)
  double peak_rss_mib = -1.0;             ///< process VmHWM after the cell
};

/// Peak resident set size of this process in MiB (Linux VmHWM), or -1 where
/// /proc is unavailable. Monotone over the process lifetime — the kilo grid
/// runs ascending, so each row reports the high-water mark through its own
/// (largest-so-far) configuration.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return -1.0;
}

cluster::ClusterConfig group_config(const BenchParams& p, std::size_t servers,
                                    bool model_cpu) {
  cluster::ClusterConfig cfg = cluster::make_raft_config(servers, p.seed);
  net::LinkCondition link;
  link.rtt = 2ms;
  cfg.links = net::ConditionSchedule::constant(link);
  cfg.durable_log = false;
  if (model_cpu) {
    cfg.round_service_time = p.round;
    cfg.command_service_time = p.per_command;
  }
  return cfg;
}

/// Leader's applied index for group g (0 when the group has no leader).
std::uint64_t leader_applied(cluster::Cluster& c) {
  const NodeId leader = c.current_leader();
  if (leader == kNoNode) return 0;
  raft::RaftNode* n = c.node_if_alive(leader);
  return n != nullptr ? n->last_applied() : 0;
}

// ---- Phase 1: scale grid -----------------------------------------------------------

/// One (shards, group size) cell: aggregate + per-shard rows appended.
double run_scale_cell(const BenchParams& p, std::size_t shards, std::size_t servers,
                      std::vector<Row>& rows) {
  shard::ShardedConfig cfg;
  cfg.shards = shards;
  cfg.group = group_config(p, servers, /*model_cpu=*/true);
  shard::ShardedCluster sc(cfg);
  if (!sc.await_all_leaders(30s)) {
    std::fprintf(stderr, "FATAL: scale %zux%zu: not every shard elected a leader\n",
                 shards, servers);
    std::exit(1);
  }
  sc.sim().run_for(1s);  // settle heartbeats before measuring

  shard::ShardRouter router = sc.make_router();
  wl::MixConfig mix;
  mix.clients = p.clients;
  mix.get_ratio = 0.0;
  mix.keyspace = 1000;
  mix.value_bytes_min = 16;
  mix.value_bytes_max = 64;
  mix.duration = std::chrono::seconds(p.measure_sec);
  wl::ClosedLoopPool pool(sc, router, mix, sc.fork_rng(0xF165));
  const wl::MixResult result = pool.run();

  Row agg;
  agg.phase = "scale";
  agg.shards = shards;
  agg.servers = servers;
  agg.completed = result.completed;
  agg.failed = result.failed;
  agg.rps = result.achieved_rps;
  for (std::size_t g = 0; g < shards; ++g) agg.applied += leader_applied(sc.shard(g));
  rows.push_back(agg);

  const auto& per_shard = pool.per_shard();
  const double elapsed = static_cast<double>(p.measure_sec);
  for (std::size_t g = 0; g < shards; ++g) {
    Row r;
    r.phase = "scale";
    r.shards = shards;
    r.servers = servers;
    r.shard = static_cast<long long>(g);
    r.completed = per_shard[g].completed;
    r.failed = per_shard[g].failed;
    r.rps = elapsed > 0.0 ? static_cast<double>(per_shard[g].completed) / elapsed : 0.0;
    r.applied = leader_applied(sc.shard(g));
    rows.push_back(r);
  }
  return result.achieved_rps;
}

// ---- Phase 2: failover isolation gate ----------------------------------------------

struct FailoverRun {
  scenario::ScenarioResult result;
  /// Every replica snapshot of shards 1..k-1, shard-major then node order,
  /// taken after the run drains to quiescence.
  std::vector<std::string> other_snapshots;
};

/// The failover workload spec: pinned sessions, per-session op quotas,
/// disjoint keys — each shard's final store is a pure function of its own
/// command stream, independent of the other shards' timing.
scenario::ScenarioSpec failover_spec(const BenchParams& p, std::size_t shards,
                                     std::size_t servers) {
  scenario::ScenarioSpec spec;
  spec.name = "fig_shard";
  spec.servers = servers;
  spec.shards = shards;
  spec.seed = p.seed;
  spec.topology = scenario::TopologySpec::constant(2ms);
  spec.durable_log = false;
  wl::MixConfig mix;
  mix.clients = 2 * shards;  // two pinned sessions per shard
  mix.get_ratio = 0.0;
  mix.ops_per_client = p.ops;
  mix.duration = 300s;  // ops-mode: duration only bounds a stuck run
  mix.disjoint_keyspace = true;
  mix.pin_sessions_to_shards = true;
  spec.workload = scenario::WorkloadPlan::closed_loop(mix);
  return spec;
}

FailoverRun run_failover(const BenchParams& p, std::size_t shards, std::size_t servers,
                         bool cut_shard0_leader) {
  scenario::ScenarioSpec spec = failover_spec(p, shards, servers);
  auto sc = scenario::ScenarioRunner::materialize_sharded(spec);
  if (!sc->await_all_leaders(30s)) {
    std::fprintf(stderr, "FATAL: failover: not every shard elected a leader\n");
    std::exit(1);
  }
  if (cut_shard0_leader) {
    // Isolate shard 0's sitting leader 200 ms into measurement for 2 s —
    // the FaultPlan partition window the scenario layer schedules itself.
    const NodeId victim = sc->shard(0).current_leader();
    spec.faults = scenario::FaultPlan::partitions(
        {{.start = 200ms, .duration = 2s, .nodes = {victim}}});
  }
  FailoverRun run;
  run.result = scenario::ScenarioRunner::run_on(*sc, spec);
  sc->sim().run_for(10s);  // drain replication so every replica converges
  for (std::size_t g = 1; g < shards; ++g) {
    for (const NodeId id : sc->shard(g).server_ids()) {
      run.other_snapshots.push_back(sc->shard(g).state_machine(id).snapshot());
    }
  }
  return run;
}

// ---- Phase 3: kilo-node frontier ---------------------------------------------------

/// Mean per-trial reset_for_trial cost (µs) on a standalone network of the
/// cell's block-diagonal geometry. Each iteration first touches one in-tile
/// link per group plus one cross-group pair (a realistic partition-injection
/// footprint), so the lazy epoch path has live state to retire; the reset
/// itself is O(nodes + touched cross-pairs), never O(links) — which is what
/// the cross-cell ratio pin in main() checks.
double measure_reset_us(const BenchParams& p, std::size_t shards, std::size_t servers) {
  sim::Simulator sim;
  net::Network net(sim, Rng(p.seed));
  net.configure_groups(servers, shards);
  const std::size_t total = shards * servers;
  net.add_nodes(total);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < p.kilo_reset_reps; ++rep) {
    for (std::size_t g = 0; g < shards; ++g) {
      net.set_blocked(static_cast<NodeId>(g * servers),
                      static_cast<NodeId>(g * servers + 1), true);
    }
    if (shards > 1) net.set_blocked(0, static_cast<NodeId>(servers), true);
    net.reset_for_trial(Rng(p.seed + rep), total);
  }
  const double wall_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  return wall_us / static_cast<double>(p.kilo_reset_reps);
}

/// One kilo cell: aggregate row with the layout/cost evidence columns.
Row run_kilo_cell(const BenchParams& p, std::size_t shards, std::size_t servers) {
  shard::ShardedConfig cfg;
  cfg.shards = shards;
  cfg.group = group_config(p, servers, /*model_cpu=*/true);
  shard::ShardedCluster sc(cfg);
  if (!sc.await_all_leaders(60s)) {
    std::fprintf(stderr, "FATAL: kilo %zux%zu: not every shard elected a leader\n",
                 shards, servers);
    std::exit(1);
  }

  Row row;
  row.phase = "kilo";
  row.shards = shards;
  row.servers = servers;
  // Memory sample point: after elections, before the pool adds client
  // endpoints — the steady tiled footprint (matches fig_scale's idle
  // sampling; client sessions add O(touched pairs) sparse entries later).
  row.link_table_bytes = static_cast<long long>(sc.network().link_table_bytes());
  row.dense_link_table_bytes =
      static_cast<long long>(net::Network::dense_link_table_bytes(sc.total_servers()));

  sc.sim().run_for(1s);  // settle heartbeats before measuring

  shard::ShardRouter router = sc.make_router();
  wl::MixConfig mix;
  mix.clients = p.clients;
  mix.get_ratio = 0.0;
  mix.keyspace = 1000;
  mix.value_bytes_min = 16;
  mix.value_bytes_max = 64;
  mix.duration = std::chrono::seconds(p.kilo_measure_sec);
  wl::ClosedLoopPool pool(sc, router, mix, sc.fork_rng(0xF165));
  const std::size_t events_before = sc.sim().executed();
  const wl::MixResult result = pool.run();
  row.events_per_sim_sec =
      static_cast<double>(sc.sim().executed() - events_before) /
      static_cast<double>(p.kilo_measure_sec);

  row.completed = result.completed;
  row.failed = result.failed;
  row.rps = result.achieved_rps;
  for (std::size_t g = 0; g < shards; ++g) row.applied += leader_applied(sc.shard(g));

  row.reset_us = measure_reset_us(p, shards, servers);
  row.peak_rss_mib = peak_rss_mib();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchParams p;
  p.shard_counts = cli.get_sizes("shards", p.shard_counts);
  p.sizes = cli.get_sizes("sizes", p.sizes);
  p.clients = static_cast<std::size_t>(cli.get_or("clients", std::int64_t{32}));
  p.measure_sec = static_cast<int>(cli.scaled(cli.get_or("measure-sec", std::int64_t{3})));
  p.round = std::chrono::microseconds(cli.get_or("round-us", std::int64_t{2000}));
  p.per_command = std::chrono::microseconds(cli.get_or("cmd-us", std::int64_t{50}));
  p.ops = static_cast<std::uint64_t>(cli.get_or("ops", std::int64_t{600}));
  p.seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{42}));
  const double min_scaling = cli.get_or("min-scaling", 2.5);
  p.kilo_shard_counts = cli.get_sizes("kilo-shards", p.kilo_shard_counts);
  p.kilo_measure_sec =
      static_cast<int>(cli.scaled(cli.get_or("kilo-measure-sec", std::int64_t{2})));
  p.kilo_reset_reps =
      static_cast<std::size_t>(cli.get_or("kilo-reset-reps", std::int64_t{256}));

  metrics::banner("Sharded multi-raft: throughput vs shard count, isolation under faults");
  std::printf("%zu clients, %d sim-s per cell; round=%lldus cmd=%lldus\n\n", p.clients,
              p.measure_sec, static_cast<long long>(p.round.count() / 1000),
              static_cast<long long>(p.per_command.count() / 1000));

  std::vector<Row> rows;

  // ---- Phase 1: shards x group-size grid -----------------------------------------
  double rps_1 = 0.0;
  double rps_4 = 0.0;
  for (const std::size_t servers : p.sizes) {
    for (const std::size_t shards : p.shard_counts) {
      const double rps = run_scale_cell(p, shards, servers, rows);
      if (servers == p.sizes.front() && shards == 1) rps_1 = rps;
      if (servers == p.sizes.front() && shards == 4) rps_4 = rps;
    }
  }

  // ---- Phase 2: failover isolation gate ------------------------------------------
  const std::size_t fo_shards = 4;
  const std::size_t fo_servers = p.sizes.front();
  const FailoverRun base = run_failover(p, fo_shards, fo_servers, false);
  const FailoverRun cut = run_failover(p, fo_shards, fo_servers, true);
  if (base.other_snapshots.size() != cut.other_snapshots.size()) {
    std::fprintf(stderr, "FATAL: failover runs disagree on replica count\n");
    return 1;
  }
  bool isolated = true;
  for (std::size_t i = 0; i < base.other_snapshots.size(); ++i) {
    if (base.other_snapshots[i].empty() || base.other_snapshots[i] != cut.other_snapshots[i]) {
      isolated = false;
    }
  }
  const std::uint64_t want_ops = 2 * fo_shards * p.ops;
  for (const FailoverRun* run : {&base, &cut}) {
    const auto& mix = run->result.mix;
    if (mix.empty() || mix.front().completed + mix.front().failed != want_ops) {
      std::fprintf(stderr, "FATAL: failover workload did not run to its op quota\n");
      return 1;
    }
  }
  const bool kill_happened = cut.result.shard_stats.size() == fo_shards &&
                             cut.result.shard_stats[0].elections >= 1;

  for (const FailoverRun* run : {&base, &cut}) {
    const bool disturbed = run == &cut;
    for (const auto& s : run->result.shard_stats) {
      Row r;
      r.phase = disturbed ? "failover_cut" : "failover_base";
      r.shards = fo_shards;
      r.servers = fo_servers;
      r.shard = static_cast<long long>(s.shard);
      r.completed = s.completed;
      r.failed = s.failed;
      r.rps = s.achieved_rps;
      r.applied = s.applied;
      // Shard 0 is the kill target; the others carry the isolation verdict.
      r.undisturbed = s.shard == 0 ? -1 : (isolated ? 1 : 0);
      rows.push_back(r);
    }
  }

  // ---- Phase 3: kilo-node frontier -----------------------------------------------
  // Ascending total-node order: the last cell is the largest, so the reset
  // ratio pin below compares the grid's extremes.
  std::vector<Row> kilo_rows;
  for (const std::size_t servers : p.sizes) {
    for (const std::size_t shards : p.kilo_shard_counts) {
      kilo_rows.push_back(run_kilo_cell(p, shards, servers));
    }
  }
  rows.insert(rows.end(), kilo_rows.begin(), kilo_rows.end());

  // ---- Report --------------------------------------------------------------------
  metrics::Table table({"phase", "shards", "n/group", "shard", "req/s", "completed",
                        "failed", "applied", "undisturbed"});
  for (const Row& r : rows) {
    if (r.phase == "kilo") continue;
    table.row({r.phase, std::to_string(r.shards), std::to_string(r.servers),
               r.shard < 0 ? "all" : std::to_string(r.shard),
               metrics::Table::num(r.rps, 0), std::to_string(r.completed),
               std::to_string(r.failed), std::to_string(r.applied),
               r.undisturbed < 0 ? "-" : std::to_string(r.undisturbed)});
  }
  table.print();

  metrics::Table kilo_table({"shards", "n/group", "nodes", "req/s", "events/sim-s",
                             "link table", "dense would-be", "reset(us)", "peak RSS"});
  for (const Row& r : kilo_rows) {
    kilo_table.row({std::to_string(r.shards), std::to_string(r.servers),
                    std::to_string(r.shards * r.servers), metrics::Table::num(r.rps, 0),
                    metrics::Table::num(r.events_per_sim_sec, 0),
                    std::to_string(r.link_table_bytes) + " B",
                    std::to_string(r.dense_link_table_bytes) + " B",
                    metrics::Table::num(r.reset_us),
                    metrics::Table::num(r.peak_rss_mib) + " MiB"});
  }
  std::printf("\nkilo-node frontier (block-diagonal link table):\n");
  kilo_table.print();

  const double scaling = rps_1 > 0.0 ? rps_4 / rps_1 : 0.0;
  std::printf("\naggregate closed-loop at n=%zu: %.0f req/s (1 shard) vs %.0f req/s "
              "(4 shards) — %.1fx\n", p.sizes.front(), rps_1, rps_4, scaling);
  std::printf("failover: shard 0 leader cut %s; other shards %s\n",
              kill_happened ? "triggered an election" : "did NOT trigger an election",
              isolated ? "byte-identical to the undisturbed run" : "DIVERGED");

  bool ok = true;
  if (rps_4 > 0.0 && scaling < min_scaling) {
    std::fprintf(stderr, "FATAL: shard scaling %.2fx < required %.2fx\n", scaling,
                 min_scaling);
    ok = false;
  }
  if (!kill_happened) {
    std::fprintf(stderr, "FATAL: partition window failed to depose shard 0's leader\n");
    ok = false;
  }
  if (!isolated) {
    std::fprintf(stderr, "FATAL: a shard-leader kill perturbed another shard's "
                         "applied state — shards are not isolated\n");
    ok = false;
  }

  // Kilo pin 1 (memory): every kilo cell runs >= 8 shards, so the
  // block-diagonal table must undercut the dense formula by >= 8x (the
  // layout's k-fold claim; at the 64-shard cells the ratio is ~64x).
  for (const Row& r : kilo_rows) {
    const double ratio = r.link_table_bytes > 0
                             ? static_cast<double>(r.dense_link_table_bytes) /
                                   static_cast<double>(r.link_table_bytes)
                             : 0.0;
    if (ratio < 8.0) {
      std::fprintf(stderr,
                   "FATAL: kilo %zux%zu link table %lld B is only %.1fx under the "
                   "dense %lld B (need >= 8x)\n",
                   r.shards, r.servers, r.link_table_bytes, ratio,
                   r.dense_link_table_bytes);
      ok = false;
    }
  }
  // Kilo pin 2 (reset cost): between the grid's smallest and largest cells
  // the dense link count grows quadratically; the epoch-stamped reset must
  // grow strictly sublinearly in it — pinned at 1/8th of the dense ratio,
  // generous enough for runner noise, far below what an O(links) walk
  // (or even an O(tile-storage) walk) could satisfy.
  if (kilo_rows.size() >= 2) {
    const auto extremes = std::minmax_element(
        kilo_rows.begin(), kilo_rows.end(), [](const Row& a, const Row& b) {
          return a.shards * a.servers < b.shards * b.servers;
        });
    const Row& small = *extremes.first;
    const Row& large = *extremes.second;
    const double n_small = static_cast<double>(small.shards * small.servers);
    const double n_large = static_cast<double>(large.shards * large.servers);
    const double dense_ratio = (n_large * n_large) / (n_small * n_small);
    const double measured = small.reset_us > 0.0 ? large.reset_us / small.reset_us : 0.0;
    std::printf("\nreset cost: %.2fus at %.0f nodes -> %.2fus at %.0f nodes "
                "(%.1fx; dense link ratio %.0fx, bound %.0fx)\n",
                small.reset_us, n_small, large.reset_us, n_large, measured,
                dense_ratio, dense_ratio / 8.0);
    if (measured <= 0.0 || measured > dense_ratio / 8.0) {
      std::fprintf(stderr,
                   "FATAL: per-trial reset cost scaled %.1fx from %.0f to %.0f nodes "
                   "(bound %.1fx) — reset is not sublinear in link count\n",
                   measured, n_small, n_large, dense_ratio / 8.0);
      ok = false;
    }
  }
  if (!ok) return 1;

  if (const auto csv_path = cli.get("csv")) {
    CsvWriter csv(*csv_path,
                  {"scenario", "phase", "partition", "shards", "servers", "shard",
                   "seed", "clients", "completed", "failed", "rps", "applied",
                   "undisturbed", "link_table_bytes", "dense_link_table_bytes",
                   "events_per_sim_sec", "reset_us", "peak_rss_mib"});
    for (const Row& r : rows) {
      const std::size_t clients =
          r.phase == "scale" || r.phase == "kilo" ? p.clients : 2 * fo_shards;
      csv.row({"fig_shard", r.phase, "hash", std::to_string(r.shards),
               std::to_string(r.servers), std::to_string(r.shard),
               std::to_string(p.seed), std::to_string(clients),
               std::to_string(r.completed), std::to_string(r.failed),
               CsvWriter::cell(r.rps), std::to_string(r.applied),
               std::to_string(r.undisturbed), std::to_string(r.link_table_bytes),
               std::to_string(r.dense_link_table_bytes),
               CsvWriter::cell(r.events_per_sim_sec), CsvWriter::cell(r.reset_us),
               CsvWriter::cell(r.peak_rss_mib)});
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
