// Fault-zoo robustness figure: every fault class the scenario layer can
// throw — leader crash/restart kills, asymmetric partitions, rolling
// restarts, probabilistic crash points, membership churn — crossed over
// {Raft, Dynatune} with seed-paired trials and the safety invariant checker
// on everywhere.
//
// Self-pinning twice over, the bench aborts (exit 1) if:
//   * any trial of any cell records an invariant violation — safety under
//     faults is the whole claim; or
//   * unavailability is unbounded — a cell ends a trial without a leader,
//     a cell's closed-loop workload completes zero ops, or the kill cell's
//     mean OTS unavailability exceeds 10 simulated seconds.
//
// All counter columns are deterministic (pure functions of the seeds);
// detect_ms/ots_ms are deterministic floats (kill cells only, -1 elsewhere).
// bench/reference/fig_faults.csv pins the whole table in CI.
//
// Usage: fig_faults [--seeds=N] [--servers=N] [--threads=T] [--csv=FILE]
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "metrics/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

/// One fault class of the zoo. Node ids are logical (0-based within the
/// group); all plans validate against the 5-server default and any larger.
struct FaultClass {
  std::string name;
  scenario::FaultPlan plan;
};

std::vector<FaultClass> fault_zoo() {
  std::vector<FaultClass> out;

  out.push_back({"kills", scenario::FaultPlan::crash_restart_kills(2, /*settle=*/5s)});

  {
    scenario::FaultPlan::DirectedPartitionWindow in;
    in.start = 1s;
    in.duration = 2s;
    in.nodes = {1};
    in.block_inbound = true;
    in.block_outbound = false;
    scenario::FaultPlan::DirectedPartitionWindow out_only;
    out_only.start = 4s;
    out_only.duration = 2s;
    out_only.nodes = {2};
    out_only.block_inbound = false;
    out_only.block_outbound = true;
    out.push_back({"asym", scenario::FaultPlan::asymmetric_partitions({in, out_only})});
  }

  out.push_back({"rolling", scenario::FaultPlan::rolling_restart(/*rounds=*/1,
                                                                 /*stagger=*/2s,
                                                                 /*down_time=*/800ms)});

  {
    fault::InjectorConfig inj;
    inj.mode = fault::Mode::UniformOverRun;
    inj.uniform_max = 500;
    inj.restart_delay = 500ms;
    out.push_back({"crashpoints", scenario::FaultPlan::probabilistic_crashes(inj)});
  }

  out.push_back({"churn", scenario::FaultPlan::membership_churn(/*rounds=*/1,
                                                                /*settle=*/1s)});
  return out;
}

/// One (fault class, variant) cell aggregated over its seed block.
struct FaultRow {
  std::string fault;
  std::string variant;
  std::size_t servers = 0;
  std::size_t seeds = 0;
  std::size_t elected = 0;        ///< trials ending with a live leader
  std::uint64_t violations = 0;   ///< invariant-checker count, summed
  std::uint64_t firings = 0;      ///< crash-point firings, summed
  std::size_t churn_rounds = 0;   ///< membership rounds completed, summed
  std::size_t elections = 0;
  std::size_t expiries = 0;
  std::uint64_t completed = 0;    ///< workload ops answered, summed
  std::uint64_t failed = 0;
  double detect_ms = -1.0;        ///< kill cells: mean detection latency
  double ots_ms = -1.0;           ///< kill cells: mean leaderless window
};

FaultRow measure_cell(const FaultClass& fc, scenario::Variant variant, std::size_t servers,
                      std::size_t seeds, unsigned threads) {
  scenario::SweepSpec sweep;
  sweep.base.name = "fig_faults-" + fc.name;
  sweep.base.variant = variant;
  sweep.base.servers = servers;
  sweep.base.warmup = 2s;
  sweep.base.durable_log = true;  // every class must be able to recover
  sweep.base.faults = fc.plan;
  wl::MixConfig mix;
  mix.clients = 2;
  mix.duration = 5s;
  sweep.base.workload = scenario::WorkloadPlan::closed_loop(mix);
  sweep.variants = {variant};
  sweep.seeds = seeds;
  sweep.master_seed = 99;
  sweep.threads = threads;

  FaultRow row;
  row.fault = fc.name;
  row.variant = std::string(to_string(variant));
  row.servers = servers;
  row.seeds = seeds;

  std::vector<scenario::FailoverSample> failovers;
  for (const scenario::ScenarioResult& r : scenario::ScenarioRunner::run_sweep(sweep)) {
    row.elected += r.leader_elected ? 1 : 0;
    row.violations += r.invariant_violations;
    row.firings += r.crash_firings;
    row.churn_rounds += r.membership_rounds;
    row.elections += r.elections;
    row.expiries += r.timer_expiries;
    for (const wl::MixResult& m : r.mix) {
      row.completed += m.completed;
      row.failed += m.failed;
    }
    failovers.insert(failovers.end(), r.failovers.begin(), r.failovers.end());
  }
  if (!failovers.empty()) {
    const scenario::FailoverStats stats = scenario::summarize_failovers(failovers);
    row.detect_ms = stats.detection.mean;
    row.ots_ms = stats.ots.mean;
  }
  return row;
}

/// The self-pins: zero violations everywhere, bounded unavailability.
bool pins_hold(const FaultRow& row) {
  bool ok = true;
  if (row.violations != 0) {
    std::fprintf(stderr, "PIN FAILED: %s/%s recorded %llu invariant violation(s)\n",
                 row.fault.c_str(), row.variant.c_str(),
                 static_cast<unsigned long long>(row.violations));
    ok = false;
  }
  if (row.elected != row.seeds) {
    std::fprintf(stderr, "PIN FAILED: %s/%s ended %zu/%zu trials without a leader\n",
                 row.fault.c_str(), row.variant.c_str(), row.seeds - row.elected, row.seeds);
    ok = false;
  }
  if (row.completed == 0) {
    std::fprintf(stderr, "PIN FAILED: %s/%s completed zero workload ops across the cell\n",
                 row.fault.c_str(), row.variant.c_str());
    ok = false;
  }
  if (row.ots_ms > 10'000.0) {
    std::fprintf(stderr, "PIN FAILED: %s/%s mean leaderless window %.0f ms exceeds 10 s\n",
                 row.fault.c_str(), row.variant.c_str(), row.ots_ms);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seeds = static_cast<std::size_t>(cli.scaled(cli.get_or("seeds", std::int64_t{20})));
  const auto servers = static_cast<std::size_t>(cli.get_or("servers", std::int64_t{5}));
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{0}));

  metrics::banner("Fault zoo: every fault class x {Raft, Dynatune}, invariants always on");
  std::printf("servers: %zu; seeds per cell: %zu\n\n", servers, seeds);

  metrics::Table table({"fault", "variant", "elected", "violations", "firings", "churn",
                        "elections", "ops", "detect(ms)", "OTS(ms)"});
  std::vector<FaultRow> rows;
  bool all_pins_hold = true;
  for (const FaultClass& fc : fault_zoo()) {
    fc.plan.validate(servers);
    for (const scenario::Variant variant :
         {scenario::Variant::Raft, scenario::Variant::Dynatune}) {
      FaultRow row = measure_cell(fc, variant, servers, seeds, threads);
      all_pins_hold = pins_hold(row) && all_pins_hold;
      table.row({row.fault, row.variant,
                 std::to_string(row.elected) + "/" + std::to_string(row.seeds),
                 std::to_string(row.violations), std::to_string(row.firings),
                 std::to_string(row.churn_rounds), std::to_string(row.elections),
                 std::to_string(row.completed), metrics::Table::num(row.detect_ms),
                 metrics::Table::num(row.ots_ms)});
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::printf("\npins: zero invariant violations, every trial re-elects, every cell "
              "makes progress, kill-cell mean OTS <= 10 s\n");

  if (const auto csv_path = cli.get("csv")) {
    CsvWriter csv(*csv_path,
                  {"scenario", "variant", "servers", "seed", "fault", "seeds", "elected",
                   "violations", "firings", "churn_rounds", "elections", "expiries",
                   "completed", "failed", "detect_ms", "ots_ms"});
    for (const FaultRow& r : rows) {
      csv.row({"fig_faults", r.variant, std::to_string(r.servers), "99", r.fault,
               std::to_string(r.seeds), std::to_string(r.elected),
               std::to_string(r.violations), std::to_string(r.firings),
               std::to_string(r.churn_rounds), std::to_string(r.elections),
               std::to_string(r.expiries), std::to_string(r.completed),
               std::to_string(r.failed), CsvWriter::cell(r.detect_ms),
               CsvWriter::cell(r.ots_ms)});
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return all_pins_hold ? 0 : 1;
}
