// Fig 5 + §IV-B2: peak throughput and latency without failures.
//
// Same cluster as Fig 4 (5 servers, RTT 100 ms, no loss), no failures.
// Open-loop clients ramp the offered PUT rate in +1000 req/s levels (paper:
// 10 s per level) and we record each level's achieved throughput and mean
// latency.
//
// The leader's request pipeline is a FIFO CPU (cluster::ServiceQueue) whose
// per-request service time is calibrated so the baseline peaks near the
// paper's 13 678 req/s; Dynatune carries a calibrated per-request overhead
// for its measurement/tuning plumbing (per-follower timers, UDP socket path)
// reproducing the paper's 6.4 % peak-throughput cost. Latency floor =
// client->leader half RTT + replication RTT + return half RTT = ~200 ms.
//
// Usage: fig5_throughput [--level-sec=N] [--max-rps=R] [--seed=S] [--csv=FILE]
#include <cstdio>

#include "common/cli.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"
#include "workload/open_loop.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

scenario::ScenarioSpec fig5_spec(bool dynatune, Duration level_duration, double max_rps,
                                 std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "fig5";
  spec.variant = dynatune ? scenario::Variant::Dynatune : scenario::Variant::Raft;
  spec.servers = 5;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(100ms, 1ms);
  // Calibrated once against the paper's baseline peak (13 678 req/s);
  // Dynatune pays the measured 6.4 % tuning overhead on the same budget.
  spec.request_service_time = dynatune ? std::chrono::nanoseconds(77'800)
                                       : std::chrono::nanoseconds(73'100);
  spec.durable_log = false;  // no crash/recovery in this experiment
  spec.warmup = 5s;          // let Dynatune warm up before offering load

  wl::RampConfig ramp;
  ramp.start_rps = 1000;
  ramp.step_rps = 1000;
  ramp.max_rps = max_rps;
  ramp.level_duration = level_duration;
  ramp.value_bytes = 16;
  spec.workload = scenario::WorkloadPlan::open_loop_ramp(ramp);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  // Paper: 10 s per level; default 3 s keeps the run quick (DYNA_BENCH_SCALE
  // or --level-sec restores paper scale).
  const auto level_sec = std::chrono::seconds(cli.scaled(cli.get_or("level-sec", std::int64_t{3})));
  const double max_rps = cli.get_or("max-rps", 16000.0);

  metrics::banner("Fig 5: throughput vs latency (open-loop ramp, +1000 req/s per level)");
  std::printf("level duration: %.0f s (paper: 10 s), ramp to %.0f req/s\n",
              to_sec(Duration(level_sec)), max_rps);

  const scenario::ScenarioResult raft =
      scenario::ScenarioRunner::run(fig5_spec(false, level_sec, max_rps, seed));
  const scenario::ScenarioResult dynatune =
      scenario::ScenarioRunner::run(fig5_spec(true, level_sec, max_rps, seed + 1));

  metrics::Table t({"offered (req/s)", "Raft tput", "Raft lat (ms)", "Dynatune tput",
                    "Dynatune lat (ms)"});
  for (std::size_t i = 0; i < raft.levels.size() && i < dynatune.levels.size(); ++i) {
    const auto& r = raft.levels[i];
    const auto& d = dynatune.levels[i];
    t.row({metrics::Table::num(r.offered_rps, 0), metrics::Table::num(r.achieved_rps, 0),
           metrics::Table::num(r.mean_latency_ms), metrics::Table::num(d.achieved_rps, 0),
           metrics::Table::num(d.mean_latency_ms)});
  }
  t.print();

  const double raft_peak = wl::OpenLoopRamp::peak_throughput(raft.levels);
  const double dyna_peak = wl::OpenLoopRamp::peak_throughput(dynatune.levels);
  const double drop = 100.0 * (1.0 - dyna_peak / raft_peak);
  std::printf("\npeak throughput: Raft %.0f req/s, Dynatune %.0f req/s (-%.1f%%)\n", raft_peak,
              dyna_peak, drop);
  std::printf("paper:           Raft 13678 req/s, Dynatune 12800 req/s (-6.4%%)\n");

  if (const auto csv_path = cli.get("csv")) {
    scenario::CsvSink csv(*csv_path, scenario::CsvSection::Levels);
    csv.consume(raft);
    csv.consume(dynatune);
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
