// Microbenchmarks (google-benchmark) for the hot paths of the library:
// estimator updates, the tuning formulas, event-queue churn, network send,
// and a full Raft heartbeat round trip.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "kvstore/command.hpp"
#include "dynatune/loss_estimator.hpp"
#include "dynatune/rtt_estimator.hpp"
#include "dynatune/tuning.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

void BM_RttEstimatorRecord(benchmark::State& state) {
  dt::RttEstimator est(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    est.record(from_ms(100.0 + rng.normal(0.0, 5.0)));
    benchmark::DoNotOptimize(est.count());
  }
}
BENCHMARK(BM_RttEstimatorRecord)->Arg(10)->Arg(100)->Arg(1000);

void BM_RttEstimatorStats(benchmark::State& state) {
  dt::RttEstimator est(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) est.record(from_ms(100.0 + rng.normal(0.0, 5.0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.mean_ms());
    benchmark::DoNotOptimize(est.stddev_ms());
  }
}
BENCHMARK(BM_RttEstimatorStats)->Arg(10)->Arg(100)->Arg(1000);

void BM_SlidingWindowAddStats(benchmark::State& state) {
  // The Dynatune per-heartbeat pattern: record one sample, read mean and
  // stddev. Incremental stats keep this O(1) regardless of window size.
  SlidingWindow w(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    w.add(100.0 + rng.normal(0.0, 5.0));
    benchmark::DoNotOptimize(w.mean());
    benchmark::DoNotOptimize(w.stddev());
  }
}
BENCHMARK(BM_SlidingWindowAddStats)->Arg(10)->Arg(100)->Arg(1000);

void BM_LossEstimatorRecord(benchmark::State& state) {
  dt::LossEstimator est(1000);
  std::uint64_t id = 0;
  for (auto _ : state) {
    est.record(++id);
    benchmark::DoNotOptimize(est.loss_rate());
  }
}
BENCHMARK(BM_LossEstimatorRecord);

void BM_TuningFormulas(benchmark::State& state) {
  dt::DynatuneConfig cfg;
  double p = 0.0;
  for (auto _ : state) {
    p += 0.001;
    if (p >= 0.9) p = 0.0;
    const Duration et = dt::compute_election_timeout(100.0, 7.5, cfg);
    const int k = dt::compute_k(p, cfg.delivery_target, cfg.min_heartbeats_per_timeout,
                                cfg.max_heartbeats_per_timeout);
    benchmark::DoNotOptimize(dt::compute_heartbeat_interval(et, k, cfg));
  }
}
BENCHMARK(BM_TuningFormulas);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim.schedule_after(1ms, [&fired] { ++fired; });
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueDeepSchedule(benchmark::State& state) {
  // Scheduling into a queue that already holds many pending events.
  sim::Simulator sim;
  for (int i = 0; i < state.range(0); ++i) {
    sim.schedule_after(std::chrono::seconds(3600 + i), [] {});
  }
  for (auto _ : state) {
    const auto id = sim.schedule_after(1h, [] {});
    sim.cancel(id);
  }
}
BENCHMARK(BM_EventQueueDeepSchedule)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_EventChurnSchedCancel(benchmark::State& state) {
  // Timer re-arm churn against a deep backlog (1e6 pending at Arg(1000000)):
  // schedule two deadlines, cancel the near one, fire the far one — the
  // pattern Raft nodes execute on every heartbeat. The step() at the end
  // also drains the cancelled entry, so the queue is at steady state across
  // iterations. The backlog sits ~11 simulated years out: the timed loop
  // advances the clock 20 ms per iteration and must never reach it.
  sim::Simulator sim;
  for (int i = 0; i < state.range(0); ++i) {
    sim.schedule_after(std::chrono::hours(100000) + std::chrono::milliseconds(i), [] {});
  }
  std::uint64_t cancelled = 0;
  for (auto _ : state) {
    const auto a = sim.schedule_after(10ms, [] {});
    sim.schedule_after(20ms, [] {});
    cancelled += sim.cancel(a) ? 1 : 0;
    sim.step();
  }
  benchmark::DoNotOptimize(cancelled);
}
BENCHMARK(BM_EventChurnSchedCancel)->Arg(1000000);

void BM_EventChurnSchedStep(benchmark::State& state) {
  // schedule+fire churn against a deep backlog: every iteration schedules a
  // near event and steps it to completion while 1e6 far events sit below
  // (far enough — ~11 simulated years — that the loop can never reach them).
  sim::Simulator sim;
  for (int i = 0; i < state.range(0); ++i) {
    sim.schedule_after(std::chrono::hours(100000) + std::chrono::milliseconds(i), [] {});
  }
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim.schedule_after(1ms, [&fired] { ++fired; });
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventChurnSchedStep)->Arg(1000000);

void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::Simulator sim;
  net::Network net(sim, Rng(7));
  std::uint64_t delivered = 0;
  const NodeId a = net.add_node();
  const NodeId b = net.add_node([&delivered](NodeId, const net::Message&) { ++delivered; });
  (void)a;
  for (auto _ : state) {
    net.send(0, b, net::TestPayload{42}, net::Transport::Datagram, 64);
    sim.run_all();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_NetworkSendDatagram(benchmark::State& state) {
  // Pure send+deliver cost on the lossy path, batched so the event queue sees
  // realistic in-flight depth (64 messages across a 5-node full mesh).
  sim::Simulator sim;
  net::Network net(sim, Rng(7));
  std::uint64_t delivered = 0;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(net.add_node([&delivered](NodeId, const net::Message&) { ++delivered; }));
  }
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      const NodeId from = nodes[static_cast<std::size_t>(k) % nodes.size()];
      const NodeId to = nodes[static_cast<std::size_t>(k + 1) % nodes.size()];
      net.send(from, to, net::TestPayload{42}, net::Transport::Datagram, 64);
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NetworkSendDatagram);

void BM_NetworkSendReliable(benchmark::State& state) {
  // Reliable path: FIFO enforcement + retransmit model + turbulence tracking.
  sim::Simulator sim;
  net::Network net(sim, Rng(7));
  std::uint64_t delivered = 0;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(net.add_node([&delivered](NodeId, const net::Message&) { ++delivered; }));
  }
  net::LinkCondition cond;
  cond.rtt = 10ms;
  cond.loss = 0.01;
  net.set_default_schedule(net::ConditionSchedule::constant(cond));
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      const NodeId from = nodes[static_cast<std::size_t>(k) % nodes.size()];
      const NodeId to = nodes[static_cast<std::size_t>(k + 1) % nodes.size()];
      net.send(from, to, net::TestPayload{42}, net::Transport::Reliable, 256);
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NetworkSendReliable);

void BM_LinkLookup(benchmark::State& state) {
  // Per-send link resolution: the one table access on the send hot path.
  // Arg(0) selects the layout/pair class: 0 = dense single tile (classic
  // unsharded network), 1 = block-diagonal in-group (tile hit), 2 =
  // block-diagonal cross-group (sparse side table, steady state after the
  // pair's first touch promoted it). The three must stay within the same
  // order of magnitude — the block-diagonal layout may not tax unsharded
  // call sites, and a promoted cross pair may not fall off a cliff.
  constexpr std::size_t kGroupSize = 33;
  constexpr std::size_t kGroups = 8;
  const int mode = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::Network net(sim, Rng(7));
  if (mode != 0) net.configure_groups(kGroupSize, kGroups);
  net.add_nodes(kGroupSize * kGroups);
  NodeId from = 0;
  NodeId to = 1;
  if (mode == 2) {
    to = static_cast<NodeId>(kGroupSize);  // next group over
    net.set_blocked(from, to, false);      // promote into the sparse table
  }
  bool acc = false;
  for (auto _ : state) {
    acc ^= net.link_blocked(from, to);
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(mode == 0 ? "dense" : mode == 1 ? "tile" : "cross");
}
BENCHMARK(BM_LinkLookup)->Arg(0)->Arg(1)->Arg(2);

void BM_NetworkResetForTrial(benchmark::State& state) {
  // Per-trial substrate reset at sweep scale: groups of 33 at 5/32/64
  // groups = 165/1056/2112 total nodes. The epoch-stamped lazy reset is
  // O(nodes + touched cross-pairs) — doubling the node count must roughly
  // double this, never quadruple it (the old dense walk cleared all
  // (k*n)^2 links). Each iteration touches one in-tile link per group plus
  // one cross pair first, so the stamp path has live state to retire.
  constexpr std::size_t kGroupSize = 33;
  const auto groups = static_cast<std::size_t>(state.range(0));
  const std::size_t total = kGroupSize * groups;
  sim::Simulator sim;
  net::Network net(sim, Rng(7));
  net.configure_groups(kGroupSize, groups);
  net.add_nodes(total);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    for (std::size_t g = 0; g < groups; ++g) {
      net.set_blocked(static_cast<NodeId>(g * kGroupSize),
                      static_cast<NodeId>(g * kGroupSize + 1), true);
    }
    net.set_blocked(0, static_cast<NodeId>(kGroupSize), true);
    net.reset_for_trial(Rng(++trial), total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_NetworkResetForTrial)->Arg(5)->Arg(32)->Arg(64);

void BM_ClusterHeartbeatSecond(benchmark::State& state) {
  // One simulated second of idle n-server cluster traffic (heartbeats,
  // responses, timers) per iteration. The n=65 rows are the scaling rows:
  // leader fan-out and response handling must stay O(n) array walks.
  const bool dynatune = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(n, 11)
                                        : cluster::make_raft_config(n, 11);
  cluster::Cluster c(std::move(cfg));
  c.await_leader(30s);
  for (auto _ : state) {
    c.sim().run_for(1s);
  }
  state.SetLabel(dynatune ? "dynatune" : "raft");
}
BENCHMARK(BM_ClusterHeartbeatSecond)
    ->Args({0, 5})
    ->Args({1, 5})
    ->Args({0, 65})
    ->Args({1, 65});

void BM_ClusterReplicationSecond(benchmark::State& state) {
  // One simulated second of steady replication fan-out: a paced stream
  // submits 256-byte PUTs (over a bounded 256-key working set) in 8-command
  // bursts, 320 commands/s, so each batch flush ships a multi-entry
  // AppendEntries to every follower and every replica decodes and applies
  // every commit. This is the path the shared-log view keeps copy-free:
  // one suffix materialization per broadcast round, segment adoption on the
  // follower side, zero-copy command decode in the state machine.
  const auto n = static_cast<std::size_t>(state.range(0));
  cluster::ClusterConfig cfg = cluster::make_raft_config(n, 11);
  cfg.durable_log = false;
  cluster::Cluster c(std::move(cfg));
  c.await_leader(30s);
  std::vector<std::string> payloads;
  payloads.reserve(256);
  for (int k = 0; k < 256; ++k) {
    payloads.push_back(
        kv::encode({kv::Op::Put, "key-" + std::to_string(k), std::string(256, 'x'), {}}));
  }
  std::uint64_t seq = 0;
  std::function<void()> burst = [&] {
    if (const NodeId leader = c.current_leader(); leader != kNoNode) {
      if (auto* node = c.node_if_alive(leader); node != nullptr && node->running()) {
        for (int i = 0; i < 8; ++i) {
          raft::Command cmd;
          cmd.payload = payloads[seq++ % payloads.size()];
          (void)node->submit(std::move(cmd));
        }
      }
    }
    c.sim().schedule_after(25ms, [&burst] { burst(); });
  };
  c.sim().schedule_after(25ms, [&burst] { burst(); });
  for (auto _ : state) {
    c.sim().run_for(1s);
  }
  state.SetItemsProcessed(state.iterations() * 320);
}
BENCHMARK(BM_ClusterReplicationSecond)->Arg(5)->Arg(15)->Arg(33)->Arg(65);

}  // namespace

BENCHMARK_MAIN();
