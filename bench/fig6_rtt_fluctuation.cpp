// Fig 6: adaptivity to RTT fluctuations.
//
// Three variants — Dynatune, Raft (defaults) and Raft-Low (1/10 defaults) —
// run with no failures while the inter-server RTT follows two patterns:
//   (a) gradual: 50 -> 200 -> 50 ms in 10 ms steps, one minute per step
//   (b) radical: 50 ms, a one-minute 500 ms spike, back to 50 ms
// Per second we sample the third-smallest randomizedTimeout (the pre-vote
// majority threshold for n=5), the in-force RTT, and whether the service is
// leaderless (the paper's OTS shading).
//
// Paper shapes: Dynatune tracks the RTT with no OTS; Raft stays ~1700 ms;
// Raft-Low collapses into repeated-election OTS once RTT approaches/exceeds
// its 100 ms timeout (gradual) or for the whole 500 ms spike (radical).
// Dynatune's radical-pattern false detections are absorbed by pre-vote.
//
// Usage: fig6_rtt_fluctuation [--pattern=gradual|radical|both] [--seed=S]
//        [--hold=SECONDS] (gradual per-step hold; paper: 60)
#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace dyna;
using namespace dyna::bench;

struct VariantTimeline {
  std::string name;
  std::vector<cluster::TimelinePoint> points;
  std::size_t elections = 0;
  std::size_t timeouts = 0;
  double ots_seconds = 0.0;
};

cluster::ClusterConfig variant_config(const std::string& variant, std::uint64_t seed) {
  if (variant == "Dynatune") return cluster::make_dynatune_config(5, seed);
  if (variant == "Raft-Low") return cluster::make_raft_low_config(5, seed);
  return cluster::make_raft_config(5, seed);
}

VariantTimeline run_timeline(const std::string& variant, const net::ConditionSchedule& schedule,
                             Duration duration, std::uint64_t seed) {
  cluster::ClusterConfig cfg = variant_config(variant, seed);
  cfg.links = schedule;
  cfg.transport.stall = testbed_stalls();
  cluster::Cluster c(std::move(cfg));

  VariantTimeline out;
  out.name = variant;
  c.await_leader(std::chrono::seconds(30));

  cluster::TimelineOptions opt;
  opt.duration = duration;
  opt.sample_every = std::chrono::seconds(1);
  opt.kth = 3;
  out.points = cluster::run_randomized_timeline(c, opt);

  for (const auto& p : out.points) {
    if (p.ots) out.ots_seconds += 1.0;
  }
  out.elections = c.probe().elections_started_in(kSimEpoch, c.sim().now());
  out.timeouts = c.probe().timeouts().size();
  return out;
}

void print_timeline(const VariantTimeline& v, Duration sample_print_every) {
  std::printf("\n--- %s: randomizedTimeout(3rd smallest)/RTT/OTS per %.0fs ---\n", v.name.c_str(),
              to_sec(sample_print_every));
  std::printf("%8s %12s %8s %4s\n", "t(s)", "rand(ms)", "rtt(ms)", "ots");
  const auto stride = static_cast<std::size_t>(std::max(1.0, to_sec(sample_print_every)));
  for (std::size_t i = 0; i < v.points.size(); i += stride) {
    const auto& p = v.points[i];
    std::printf("%8.0f %12.0f %8.0f %4s\n", p.t_sec, p.randomized_kth_ms, p.rtt_ms,
                p.ots ? "OTS" : "");
  }
  std::printf("%s summary: OTS total %.0f s, elections started: %zu, timer expiries: %zu\n",
              v.name.c_str(), v.ots_seconds, v.elections, v.timeouts);
}

void run_pattern(const std::string& pattern, std::uint64_t seed, Duration hold) {
  using namespace std::chrono_literals;
  net::LinkCondition base;
  base.jitter = 2ms;

  net::ConditionSchedule schedule = net::ConditionSchedule::constant(base);
  Duration duration{};
  if (pattern == "gradual") {
    // 50 -> 200 -> 50 in 10 ms steps, `hold` per step (paper: one minute).
    schedule = net::ConditionSchedule::rtt_ramp_up_down(base, 50ms, 200ms, 10ms, hold);
    duration = hold * 31 + 30s;  // 16 up + 15 down steps + tail
    metrics::banner("Fig 6a: gradual RTT fluctuation 50->200->50 ms (step 10 ms, hold " +
                    std::to_string(hold.count() / 1'000'000'000) + " s)");
  } else {
    // 50 ms for 60 s, 500 ms spike for 60 s, back to 50 ms.
    schedule = net::ConditionSchedule::rtt_spike(base, 50ms, 500ms,
                                                 kSimEpoch + 60s, 60s);
    duration = 210s;
    metrics::banner("Fig 6b: radical RTT fluctuation 50 -> 500 -> 50 ms (60 s spike)");
  }

  const Duration print_every = pattern == "gradual" ? std::chrono::seconds(30)
                                                    : std::chrono::seconds(5);
  for (const std::string variant : {"Dynatune", "Raft", "Raft-Low"}) {
    const VariantTimeline v = run_timeline(variant, schedule, duration, seed);
    print_timeline(v, print_every);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const std::string pattern = cli.get_or("pattern", std::string("both"));
  // Default hold is 20 s to keep the default run quick; the paper used 60 s.
  // DYNA_BENCH_SCALE=3 (or --hold=60) restores paper scale.
  const auto hold = std::chrono::seconds(cli.scaled(cli.get_or("hold", std::int64_t{20})));

  if (pattern == "gradual" || pattern == "both") run_pattern("gradual", seed, hold);
  if (pattern == "radical" || pattern == "both") run_pattern("radical", seed, hold);
  return 0;
}
