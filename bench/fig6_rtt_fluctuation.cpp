// Fig 6: adaptivity to RTT fluctuations.
//
// Three variants — Dynatune, Raft (defaults) and Raft-Low (1/10 defaults) —
// run with no failures while the inter-server RTT follows two patterns:
//   (a) gradual: 50 -> 200 -> 50 ms in 10 ms steps, one minute per step
//   (b) radical: 50 ms, a one-minute 500 ms spike, back to 50 ms
// Per second we sample the third-smallest randomizedTimeout (the pre-vote
// majority threshold for n=5), the in-force RTT, and whether the service is
// leaderless (the paper's OTS shading).
//
// Paper shapes: Dynatune tracks the RTT with no OTS; Raft stays ~1700 ms;
// Raft-Low collapses into repeated-election OTS once RTT approaches/exceeds
// its 100 ms timeout (gradual) or for the whole 500 ms spike (radical).
// Dynatune's radical-pattern false detections are absorbed by pre-vote.
//
// Usage: fig6_rtt_fluctuation [--pattern=gradual|radical|both] [--seed=S]
//        [--hold=SECONDS] (gradual per-step hold; paper: 60) [--csv=FILE]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

scenario::ScenarioSpec fig6_spec(const std::string& pattern, scenario::Variant variant,
                                 std::uint64_t seed, Duration hold) {
  net::LinkCondition base;
  base.jitter = 2ms;

  scenario::ScenarioSpec spec;
  spec.variant = variant;
  spec.servers = 5;
  spec.seed = seed;
  spec.transport.stall = scenario::testbed_stalls();

  Duration duration{};
  if (pattern == "gradual") {
    // 50 -> 200 -> 50 in 10 ms steps, `hold` per step (paper: one minute).
    spec.name = "fig6a-gradual";
    spec.topology.schedule =
        net::ConditionSchedule::rtt_ramp_up_down(base, 50ms, 200ms, 10ms, hold);
    duration = hold * 31 + 30s;  // 16 up + 15 down steps + tail
  } else {
    // 50 ms for 60 s, 500 ms spike for 60 s, back to 50 ms.
    spec.name = "fig6b-radical";
    spec.topology.schedule =
        net::ConditionSchedule::rtt_spike(base, 50ms, 500ms, kSimEpoch + 60s, 60s);
    duration = 210s;
  }
  spec.samples = scenario::SamplePlan::every(1s, duration, /*kth=*/3);
  return spec;
}

void print_timeline(const scenario::ScenarioResult& v, Duration sample_print_every) {
  std::printf("\n--- %s: randomizedTimeout(3rd smallest)/RTT/OTS per %.0fs ---\n",
              v.variant.c_str(), to_sec(sample_print_every));
  std::printf("%8s %12s %8s %4s\n", "t(s)", "rand(ms)", "rtt(ms)", "ots");
  const auto stride = static_cast<std::size_t>(std::max(1.0, to_sec(sample_print_every)));
  for (std::size_t i = 0; i < v.samples.size(); i += stride) {
    const auto& p = v.samples[i];
    std::printf("%8.0f %12.0f %8.0f %4s\n", p.t_sec, p.randomized_kth_ms, p.rtt_ms,
                p.available ? "" : "OTS");
  }
  std::printf("%s summary: OTS total %.0f s, elections started: %zu, timer expiries: %zu\n",
              v.variant.c_str(), v.ots_seconds, v.elections, v.timer_expiries);
}

void run_pattern(const std::string& pattern, std::uint64_t seed, Duration hold,
                 scenario::CsvSink* csv) {
  if (pattern == "gradual") {
    metrics::banner("Fig 6a: gradual RTT fluctuation 50->200->50 ms (step 10 ms, hold " +
                    std::to_string(hold.count() / 1'000'000'000) + " s)");
  } else {
    metrics::banner("Fig 6b: radical RTT fluctuation 50 -> 500 -> 50 ms (60 s spike)");
  }

  const Duration print_every = pattern == "gradual" ? std::chrono::seconds(30)
                                                    : std::chrono::seconds(5);
  for (const scenario::Variant variant :
       {scenario::Variant::Dynatune, scenario::Variant::Raft, scenario::Variant::RaftLow}) {
    const scenario::ScenarioResult v =
        scenario::ScenarioRunner::run(fig6_spec(pattern, variant, seed, hold));
    print_timeline(v, print_every);
    if (csv != nullptr) csv->consume(v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const std::string pattern = cli.get_or("pattern", std::string("both"));
  // Default hold is 20 s to keep the default run quick; the paper used 60 s.
  // DYNA_BENCH_SCALE=3 (or --hold=60) restores paper scale.
  const auto hold = std::chrono::seconds(cli.scaled(cli.get_or("hold", std::int64_t{20})));

  std::unique_ptr<scenario::CsvSink> csv;
  const auto csv_path = cli.get("csv");
  if (csv_path) {
    csv = std::make_unique<scenario::CsvSink>(*csv_path, scenario::CsvSection::Samples);
  }

  if (pattern == "gradual" || pattern == "both") run_pattern("gradual", seed, hold, csv.get());
  if (pattern == "radical" || pattern == "both") run_pattern("radical", seed, hold, csv.get());
  if (csv_path) std::printf("wrote %s\n", csv_path->c_str());
  return 0;
}
