// Fig 4 + §IV-B1: election performance under stable network conditions.
//
// Five servers, RTT 100 ms, no injected loss. The leader is repeatedly
// frozen ("container sleep") and we measure, per kill:
//   detection  = kill -> first follower election-timer expiry
//   OTS        = kill -> new leader established
// for baseline Raft (Et 1000 ms / h 100 ms) and Dynatune (s=2, x=0.999,
// lists 10/1000). Paper reference: detection 1205 -> 237 ms (-80 %),
// OTS 1449 -> 797 ms (-45 %); mean randomizedTimeout 1454 vs 152 ms;
// Dynatune's election phase is *longer* (560 vs 244 ms) due to split votes.
//
// The kill budget is sharded: a seed sweep of independent clusters each
// executes 25 sequential kills (the paper runs 1000 on one cluster;
// sharding only helps wall-clock and leaves the statistics unchanged).
//
// Usage: fig4_election [--kills=N] [--seed=S] [--threads=T] [--csv=FILE]
// DYNA_BENCH_SCALE=5 multiplies kill count (paper scale: 1000).
#include <cstdio>

#include "common/cli.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

constexpr std::size_t kKillsPerTrial = 25;

scenario::SweepSpec fig4_sweep(scenario::Variant variant, std::size_t kills,
                               std::uint64_t seed, unsigned threads, bool stalls) {
  scenario::ScenarioSpec base;
  base.name = "fig4";
  base.variant = variant;
  base.servers = 5;
  base.topology = scenario::TopologySpec::constant(100ms);
  if (stalls) base.transport.stall = scenario::testbed_stalls();
  base.faults = scenario::FaultPlan::leader_kills(kKillsPerTrial, 10s);

  scenario::SweepSpec sweep;
  sweep.base = std::move(base);
  sweep.seeds = (kills + kKillsPerTrial - 1) / kKillsPerTrial;
  sweep.master_seed = seed;
  sweep.threads = threads;
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{200})));
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{0}));
  const bool stalls = cli.get_or("stalls", std::int64_t{1}) != 0;

  metrics::banner("Fig 4: detection & OTS time, Raft vs Dynatune (5 servers, RTT 100 ms)");
  std::printf("kills per variant: %zu (DYNA_BENCH_SCALE to change; paper: 1000)\n", kills);

  auto raft_results = scenario::ScenarioRunner::run_sweep(
      fig4_sweep(scenario::Variant::Raft, kills, seed, threads, stalls));
  auto dyna_results = scenario::ScenarioRunner::run_sweep(
      fig4_sweep(scenario::Variant::Dynatune, kills, seed + 1, threads, stalls));
  scenario::trim_failovers(raft_results, kills);
  scenario::trim_failovers(dyna_results, kills);

  const auto raft = scenario::collect_failovers(raft_results);
  const auto dyna_samples = scenario::collect_failovers(dyna_results);

  const scenario::FailoverStats r = scenario::summarize_failovers(raft);
  const scenario::FailoverStats d = scenario::summarize_failovers(dyna_samples);

  metrics::Table t({"metric", "Raft", "Dynatune", "reduction", "paper Raft", "paper Dynatune",
                    "paper reduction"});
  t.row({"detection mean (ms)", metrics::Table::num(r.detection.mean),
         metrics::Table::num(d.detection.mean),
         metrics::Table::num(100.0 * (1.0 - d.detection.mean / r.detection.mean)) + "%", "1205",
         "237", "80%"});
  t.row({"OTS mean (ms)", metrics::Table::num(r.ots.mean), metrics::Table::num(d.ots.mean),
         metrics::Table::num(100.0 * (1.0 - d.ots.mean / r.ots.mean)) + "%", "1449", "797",
         "45%"});
  t.row({"election mean (ms)", metrics::Table::num(r.election.mean),
         metrics::Table::num(d.election.mean), "-", "244", "560", "(longer for Dynatune)"});
  t.row({"mean randomizedTimeout (ms)", metrics::Table::num(r.mean_randomized_ms),
         metrics::Table::num(d.mean_randomized_ms), "-", "1454", "152", "-"});
  t.print();

  std::printf("\n");
  scenario::print_failover_cdfs("Raft", raft);
  scenario::print_failover_cdfs("Dynatune", dyna_samples);

  if (r.failed_trials + d.failed_trials > 0) {
    std::printf("warning: %zu trials failed to elect within the horizon\n",
                r.failed_trials + d.failed_trials);
  }

  // --csv=FILE dumps the raw per-kill series for offline plotting / the CI
  // bench-diff gate (committed snapshot: bench/reference/fig4_election.csv).
  if (const auto csv_path = cli.get("csv")) {
    scenario::CsvSink csv(*csv_path, scenario::CsvSection::Failover);
    csv.consume_all(raft_results);
    csv.consume_all(dyna_results);
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
