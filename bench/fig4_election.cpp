// Fig 4 + §IV-B1: election performance under stable network conditions.
//
// Five servers, RTT 100 ms, no injected loss. The leader is repeatedly
// frozen ("container sleep") and we measure, per kill:
//   detection  = kill -> first follower election-timer expiry
//   OTS        = kill -> new leader established
// for baseline Raft (Et 1000 ms / h 100 ms) and Dynatune (s=2, x=0.999,
// lists 10/1000). Paper reference: detection 1205 -> 237 ms (-80 %),
// OTS 1449 -> 797 ms (-45 %); mean randomizedTimeout 1454 vs 152 ms;
// Dynatune's election phase is *longer* (560 vs 244 ms) due to split votes.
//
// Usage: fig4_election [--kills=N] [--seed=S] [--threads=T]
// DYNA_BENCH_SCALE=5 multiplies kill count (paper scale: 1000).
#include <cstdio>

#include "bench_common.hpp"
#include "parallel/trial_runner.hpp"

namespace {

using namespace dyna;
using namespace dyna::bench;

struct VariantResult {
  std::vector<cluster::FailoverSample> samples;
};

bool g_stalls = true;

std::vector<cluster::FailoverSample> run_variant(bool dynatune, std::size_t kills,
                                                 std::uint64_t seed, unsigned threads) {
  // Split the kill budget into independent parallel clusters, each executing
  // a share of sequential kills (the paper runs 1000 kills on one cluster;
  // splitting only helps wall-clock and leaves the statistics unchanged).
  const std::size_t kills_per_trial = 25;
  const std::size_t trials = (kills + kills_per_trial - 1) / kills_per_trial;

  auto fn = [&](std::size_t /*trial*/, std::uint64_t trial_seed) {
    cluster::ClusterConfig cfg = dynatune ? cluster::make_dynatune_config(5, trial_seed)
                                          : cluster::make_raft_config(5, trial_seed);
    net::LinkCondition link;
    link.rtt = std::chrono::milliseconds(100);
    cfg.links = net::ConditionSchedule::constant(link);
    if (g_stalls) cfg.transport.stall = testbed_stalls();
    cluster::Cluster c(std::move(cfg));

    cluster::FailoverOptions opt;
    opt.kills = kills_per_trial;
    opt.settle = std::chrono::seconds(10);
    return cluster::FailoverExperiment::run(c, opt);
  };

  auto per_trial = par::run_trials<std::vector<cluster::FailoverSample>>(trials, seed, fn, threads);
  std::vector<cluster::FailoverSample> all;
  for (auto& t : per_trial) {
    for (auto& s : t) {
      if (all.size() < kills) all.push_back(s);
    }
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{200})));
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{0}));
  g_stalls = cli.get_or("stalls", std::int64_t{1}) != 0;

  metrics::banner("Fig 4: detection & OTS time, Raft vs Dynatune (5 servers, RTT 100 ms)");
  std::printf("kills per variant: %zu (DYNA_BENCH_SCALE to change; paper: 1000)\n", kills);

  const auto raft = run_variant(false, kills, seed, threads);
  const auto dyna_samples = run_variant(true, kills, seed + 1, threads);

  const FailoverStats r = summarize(raft);
  const FailoverStats d = summarize(dyna_samples);

  metrics::Table t({"metric", "Raft", "Dynatune", "reduction", "paper Raft", "paper Dynatune",
                    "paper reduction"});
  t.row({"detection mean (ms)", metrics::Table::num(r.detection.mean),
         metrics::Table::num(d.detection.mean),
         metrics::Table::num(100.0 * (1.0 - d.detection.mean / r.detection.mean)) + "%", "1205",
         "237", "80%"});
  t.row({"OTS mean (ms)", metrics::Table::num(r.ots.mean), metrics::Table::num(d.ots.mean),
         metrics::Table::num(100.0 * (1.0 - d.ots.mean / r.ots.mean)) + "%", "1449", "797",
         "45%"});
  t.row({"election mean (ms)", metrics::Table::num(r.election.mean),
         metrics::Table::num(d.election.mean), "-", "244", "560", "(longer for Dynatune)"});
  t.row({"mean randomizedTimeout (ms)", metrics::Table::num(r.mean_randomized_ms),
         metrics::Table::num(d.mean_randomized_ms), "-", "1454", "152", "-"});
  t.print();

  std::printf("\n");
  print_cdf("Raft detection", detection_samples(raft));
  print_cdf("Dynatune detection", detection_samples(dyna_samples));
  print_cdf("Raft OTS", ots_samples(raft));
  print_cdf("Dynatune OTS", ots_samples(dyna_samples));

  if (r.failed_trials + d.failed_trials > 0) {
    std::printf("warning: %zu trials failed to elect within the horizon\n",
                r.failed_trials + d.failed_trials);
  }

  // --csv=FILE dumps the raw per-kill series for offline plotting / diffing.
  if (const auto csv_path = cli.get("csv")) {
    CsvWriter csv(*csv_path, failover_csv_header());
    append_failover_csv(csv, "raft", raft);
    append_failover_csv(csv, "dynatune", dyna_samples);
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
