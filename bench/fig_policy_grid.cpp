// Policy-comparison grid: the roadmap's BALLAST/SEER-style study as one
// command. Many tuning policies x many network conditions x paired seeds,
// each cell a short failover trial, all dispatched through the reused-
// substrate sweep path and streamed straight into the CSV sink (bounded
// memory regardless of grid size).
//
// The policy axis mixes the paper's built-in variants with a custom policy
// registered under a first-class name (scenario::PolicyRegistry) — the
// registered name is what appears in the variant column of the table and
// the CSV, not an anonymous-custom label.
//
// A shards axis rides on top (--shards=1,4 by default): at each shard count
// above 1 the grid re-runs Dynatune vs static Raft with k consensus groups
// multiplexed onto one shared network (spec.shards), asking whether the
// tuning verdict survives multi-group link contention. Sharded cells carry
// a "-s<k>" suffix in the scenario column; the kill lands on shard 0.
//
// Default grid: (4 policies x 1 shard + 2 policies x 4 shards) x 4
// conditions x 100 seeds = 2400 trials, one leader kill each. Usage:
//   fig_policy_grid [--seeds=N] [--servers=N] [--shards=1,4] [--threads=T]
//                   [--csv=FILE]
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

/// One network condition column of the grid.
struct Condition {
  std::string name;
  scenario::TopologySpec topology;
};

std::vector<Condition> conditions() {
  std::vector<Condition> out;
  out.push_back({"lan", scenario::TopologySpec::constant(10ms, 1ms)});
  out.push_back({"wan", scenario::TopologySpec::constant(100ms, 2ms)});
  out.push_back({"jittery", scenario::TopologySpec::constant(100ms, 20ms)});
  out.push_back({"lossy", scenario::TopologySpec::constant(100ms, 2ms, 0.05)});
  return out;
}

/// A custom policy under a first-class name: Dynatune with a paranoid safety
/// factor (Et = mu + 4*sigma) — the kind of one-line variant a comparison
/// study wants to drop into the grid without forking the harness.
void register_custom_policies() {
  scenario::PolicyRegistry::global().add(
      "Dynatune-s4", [](std::size_t servers, std::uint64_t seed) {
        dt::DynatuneConfig dt;
        dt.safety_factor = 4.0;
        return cluster::make_dynatune_config(servers, seed, dt);
      });
}

/// Streaming tee: forwards every trial to the CSV sink (when given) while
/// folding each cell's seed block into one aggregate row for the console
/// table. Holds one cell's worth of state, never the whole sweep — pairs
/// with ScenarioRunner's streaming run_sweep for bounded-memory grids.
class GridSink final : public scenario::ResultSink {
 public:
  GridSink(scenario::ResultSink* csv, std::size_t seeds_per_cell, scenario::TableSink& table)
      : csv_(csv), seeds_(seeds_per_cell), table_(&table) {}

  void consume(const scenario::ScenarioResult& r) override {
    if (csv_ != nullptr) csv_->consume(r);
    if (count_ == 0) {
      cell_ = r;
      cell_.seed = 0;  // aggregate row: individual seeds live in the CSV
    } else {
      cell_.failovers.insert(cell_.failovers.end(), r.failovers.begin(), r.failovers.end());
      cell_.elections += r.elections;
      cell_.timer_expiries += r.timer_expiries;
    }
    if (++count_ == seeds_) {
      table_->consume(cell_);
      cell_ = {};
      count_ = 0;
    }
  }

 private:
  scenario::ResultSink* csv_;
  std::size_t seeds_;
  scenario::TableSink* table_;
  scenario::ScenarioResult cell_;
  std::size_t count_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seeds = static_cast<std::size_t>(cli.scaled(cli.get_or("seeds", std::int64_t{100})));
  const auto servers = static_cast<std::size_t>(cli.get_or("servers", std::int64_t{5}));
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{0}));
  const auto shard_counts = cli.get_sizes("shards", {1, 4});

  register_custom_policies();

  metrics::banner("Policy grid: tuning policies x network conditions, seed-paired");

  scenario::SweepSpec sweep;
  sweep.base.servers = servers;
  sweep.base.faults = scenario::FaultPlan::leader_kills(1, /*settle=*/5s);
  sweep.seeds = seeds;
  sweep.master_seed = 7;
  sweep.threads = threads;

  // One CSV across the whole grid, streamed trial by trial: the scenario
  // column carries the condition name (with a -s<k> suffix when sharded).
  std::unique_ptr<scenario::CsvSink> csv;
  if (const auto csv_path = cli.get("csv")) {
    csv = std::make_unique<scenario::CsvSink>(*csv_path, scenario::CsvSection::Failover);
  }

  scenario::TableSink table;
  std::size_t trials = 0;
  for (const std::size_t shards : shard_counts) {
    sweep.base.shards = shards;
    if (shards == 1) {
      // The classic grid: every policy, single group.
      sweep.variants = {scenario::Variant::Raft, scenario::Variant::Dynatune,
                        scenario::Variant::FixK};
      sweep.policies = {"Dynatune-s4"};
    } else {
      // Sharded columns: the headline Dynatune-vs-static question, k groups
      // contending on one shared network. servers stays the per-group size.
      sweep.variants = {scenario::Variant::Raft, scenario::Variant::Dynatune};
      sweep.policies = {};
    }
    for (const Condition& cond : conditions()) {
      sweep.base.name = shards == 1 ? cond.name
                                    : cond.name + "-s" + std::to_string(shards);
      sweep.base.topology = cond.topology;
      // One streaming pass per (shards, condition): every trial goes
      // straight to the CSV and into the per-cell aggregate — memory stays
      // bounded at any grid size (results arrive in enumeration order,
      // cell-major).
      GridSink sink(csv.get(), seeds, table);
      scenario::ScenarioRunner::run_sweep(sweep, sink);
      trials += (sweep.variants.size() + sweep.policies.size()) * seeds;
    }
  }
  table.print();
  std::printf("\n%zu trials; one row per (shards, condition, policy) cell; detect/OTS "
              "are means over %zu seed-paired kills\n", trials, seeds);
  if (const auto csv_path = cli.get("csv")) std::printf("wrote %s\n", csv_path->c_str());
  return 0;
}
