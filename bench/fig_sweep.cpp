// Sweep-scale throughput study: trials per second on a reference policy grid.
//
// The roadmap's policy-comparison studies (BALLAST/SEER-style) are thousands
// of short trials — the metric that gates them is not events/second inside a
// trial but *trials per second* across a sweep. This bench pins that number
// on a reference grid — one SweepSpec crossing Raft / Dynatune / Fix-K with
// n in {5, 15} and `--seeds` paired seeds per cell (election-latency
// trials) — run whole, twice per repetition, interleaved:
//
//   fresh  — one freshly constructed Cluster per trial (the pre-reuse path,
//            SweepSpec::reuse_substrate = false);
//   reused — each worker recycles one warmed substrate through
//            Cluster::reset between trials (the default sweep path).
//
// The two modes must produce bit-identical ScenarioResult vectors — this
// bench aborts on any divergence, making it a reset-leak tripwire wherever
// it runs (CI bench-smoke included). Throughput is whole-grid (median over
// `--reps` interleaved repetitions): individual cells are a few
// milliseconds of wall clock, far too small a sample to gate on, so the
// machine-dependent CSV columns (trials_per_sec_fresh, trials_per_sec_reused,
// speedup, peak_rss_mib) carry the grid-level rates repeated on every row.
// Per-cell determinism aggregates (elected count, mean time-to-leader,
// election/expiry counters — pure functions of the seed) sit in the strict
// band of tools/check_bench_csv.py.
//
// Usage: fig_sweep [--seeds=N] [--reps=R] [--sizes=5,15] [--seed=S]
//                  [--threads=T] [--csv=FILE]
// A 10k-trial characterization is one command: fig_sweep --seeds=1700
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

/// Peak resident set size of this process in MiB (Linux VmHWM), or -1 where
/// /proc is unavailable.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return -1.0;
}

struct CellRow {
  std::string variant;
  std::size_t servers = 0;
  std::size_t seeds = 0;
  std::size_t elected = 0;       ///< trials that elected a leader
  double mean_elect_ms = 0.0;    ///< mean simulated time to the first leader
  std::size_t elections = 0;     ///< elections started, summed over trials
  std::size_t expiries = 0;      ///< election-timer expiries, summed
};

scenario::SweepSpec grid_sweep(const std::vector<scenario::Variant>& variants,
                               const std::vector<std::size_t>& sizes, std::size_t seeds,
                               std::uint64_t master, unsigned threads, bool reuse) {
  scenario::SweepSpec sweep;
  sweep.base.name = "fig_sweep";
  sweep.base.topology = scenario::TopologySpec::constant(50ms, 2ms, 0.01);
  sweep.base.await_leader = 10s;
  sweep.variants = variants;
  sweep.sizes = sizes;
  sweep.seeds = seeds;
  sweep.master_seed = master;
  sweep.threads = threads;
  sweep.reuse_substrate = reuse;
  return sweep;
}

double median(std::vector<double> v) {
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seeds = static_cast<std::size_t>(cli.scaled(cli.get_or("seeds", std::int64_t{100})));
  const auto reps = static_cast<std::size_t>(cli.get_or("reps", std::int64_t{3}));
  const auto sizes = cli.get_sizes("sizes", {5, 15});
  const auto master = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{42}));
  const auto threads = static_cast<unsigned>(cli.get_or("threads", std::int64_t{1}));

  const std::vector<scenario::Variant> variants = {
      scenario::Variant::Raft, scenario::Variant::Dynatune, scenario::Variant::FixK};

  metrics::banner("Sweep-scale throughput: fresh construction vs reused substrate");
  std::printf("grid: %zu variants x %zu sizes x %zu seeds = %zu trials per mode; "
              "%zu interleaved reps, %u thread(s)\n\n",
              variants.size(), sizes.size(), seeds, variants.size() * sizes.size() * seeds,
              reps, threads);

  using Clock = std::chrono::steady_clock;
  std::vector<double> fresh_sec, reused_sec;
  std::vector<scenario::ScenarioResult> fresh_results, reused_results;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    fresh_results = scenario::ScenarioRunner::run_sweep(
        grid_sweep(variants, sizes, seeds, master, threads, /*reuse=*/false));
    fresh_sec.push_back(std::chrono::duration<double>(Clock::now() - t0).count());

    t0 = Clock::now();
    reused_results = scenario::ScenarioRunner::run_sweep(
        grid_sweep(variants, sizes, seeds, master, threads, /*reuse=*/true));
    reused_sec.push_back(std::chrono::duration<double>(Clock::now() - t0).count());

    // The determinism contract, enforced where everyone can see it: a reused
    // substrate that leaks any state across trials changes some result bit
    // and dies here.
    if (fresh_results != reused_results) {
      std::fprintf(stderr,
                   "FATAL: reused-substrate sweep diverged from fresh construction "
                   "(rep=%zu) — cross-trial state leak\n", rep);
      return 1;
    }
  }

  // Results arrive cell-major (variant-major, then size, then seed): fold
  // each cell's seed block into its determinism-fingerprint row.
  std::vector<CellRow> rows;
  for (std::size_t cell = 0; cell * seeds < reused_results.size(); ++cell) {
    CellRow row;
    row.variant = reused_results[cell * seeds].variant;
    row.servers = reused_results[cell * seeds].servers;
    row.seeds = seeds;
    for (std::size_t i = cell * seeds; i < (cell + 1) * seeds; ++i) {
      const auto& r = reused_results[i];
      if (r.leader_elected) ++row.elected;
      row.mean_elect_ms += r.sim_seconds * 1000.0;
      row.elections += r.elections;
      row.expiries += r.timer_expiries;
    }
    row.mean_elect_ms /= static_cast<double>(seeds);
    rows.push_back(std::move(row));
  }

  const double total_trials = static_cast<double>(reused_results.size());
  const double fresh_tps = total_trials / median(fresh_sec);
  const double reused_tps = total_trials / median(reused_sec);
  const double rss = peak_rss_mib();

  metrics::Table table({"variant", "n", "elected", "elect(ms)", "elections", "expiries"});
  for (const CellRow& r : rows) {
    table.row({r.variant, std::to_string(r.servers),
               std::to_string(r.elected) + "/" + std::to_string(r.seeds),
               metrics::Table::num(r.mean_elect_ms), std::to_string(r.elections),
               std::to_string(r.expiries)});
  }
  table.print();

  std::printf("\nreference sweep (%0.f trials): fresh %.0f trials/s, reused %.0f trials/s "
              "(%.2fx); peak RSS %.1f MiB\n",
              total_trials, fresh_tps, reused_tps, reused_tps / fresh_tps, rss);

  if (const auto csv_path = cli.get("csv")) {
    // Machine columns carry the grid-level rates on every row (see the file
    // comment: cells are milliseconds of wall clock, not a gateable sample).
    CsvWriter csv(*csv_path,
                  {"scenario", "variant", "servers", "seeds", "elected", "mean_elect_ms",
                   "elections", "expiries", "trials_per_sec_fresh", "trials_per_sec_reused",
                   "speedup", "peak_rss_mib"});
    for (const CellRow& r : rows) {
      csv.row({"fig_sweep", r.variant, std::to_string(r.servers), std::to_string(r.seeds),
               std::to_string(r.elected), CsvWriter::cell(r.mean_elect_ms),
               std::to_string(r.elections), std::to_string(r.expiries),
               CsvWriter::cell(fresh_tps), CsvWriter::cell(reused_tps),
               CsvWriter::cell(reused_tps / fresh_tps), CsvWriter::cell(rss)});
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
