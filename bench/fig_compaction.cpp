// Snapshot compaction study: bounded memory under sustained load and fast
// crash recovery from a snapshot instead of a full log replay.
//
// Two phases, each run with compaction off (snapshot_threshold = 0, the
// default) and on, same seeds, so every deterministic column is directly
// comparable across modes:
//
//   soak     — n = `--servers` cluster under a sustained PUT stream
//              (`--rate` commands per simulated second) for `--soak-sec`
//              simulated seconds. Off-mode logs grow without bound; on-mode
//              logs must stay under snapshot_threshold + snapshot_trailing
//              (plus the unsnapshotted suffix accrued since the last cut) —
//              the bench aborts if any replica's live log exceeds that
//              envelope. Resident-set size is sampled once per simulated
//              second (current VmRSS, not the process high-water mark, so
//              the on-phase is not masked by an earlier off-phase peak).
//
//   recovery — n = 5 cluster, `--entries` committed PUTs, then a follower
//              crash/restart measured wall-clock from restart() until the
//              restarted node has re-applied up to the leader's commit
//              index, median over `--reps`. Off-mode replays the entire
//              log; on-mode restores the snapshot blob and replays only the
//              trailing suffix. At characterization scale (>= 50k entries)
//              the bench aborts unless snapshots recover >= 10x faster.
//
// The soak phases deliberately run on-before-off and the whole bench is one
// process: identical command streams across modes make ops/commit/log
// divergences loud (they are exact-match columns in check_bench_csv.py).
//
// Usage: fig_compaction [--servers=15] [--soak-sec=60] [--rate=200]
//                       [--entries=100000] [--reps=5] [--keys=200]
//                       [--seed=42] [--csv=FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "kvstore/command.hpp"
#include "metrics/report.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

/// Current resident set size of this process in MiB (Linux VmRSS), or -1
/// where /proc is unavailable. Deliberately not VmHWM: the high-water mark
/// is process-monotone and would carry the first phase's peak into every
/// later sample.
double current_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return -1.0;
}

double median(std::vector<double> v) {
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

struct PhaseRow {
  std::string mode;             ///< "off" | "on"
  std::string phase;            ///< "soak" | "recovery"
  std::size_t servers = 0;
  double sim_sec = 0.0;         ///< simulated time the phase covered
  std::uint64_t ops = 0;        ///< commands committed by the leader
  std::size_t log_entries = 0;  ///< largest live log across replicas, at end
  std::uint64_t snapshots = 0;  ///< snapshots taken, summed over replicas
  std::uint64_t replayed = 0;   ///< entries re-applied on restart (recovery)
  double peak_rss_mib = -1.0;   ///< soak: per-sim-second peak; recovery: end
  double recovery_ms = -1.0;    ///< median wall-clock restart -> caught up
};

cluster::ClusterConfig base_config(std::size_t servers, std::uint64_t seed, bool compaction) {
  auto cfg = cluster::make_raft_config(servers, seed);
  if (compaction) {
    cfg.raft.snapshot_threshold = 1000;
    cfg.raft.snapshot_trailing = 64;
  }
  return cfg;
}

std::string put_payload(std::uint64_t n, std::size_t keyspace) {
  kv::KvCommand cmd{kv::Op::Put, "k" + std::to_string(n % keyspace),
                    "v" + std::to_string(n), {}};
  return kv::encode(cmd);
}

/// Sustained PUT stream: bounded memory is the claim under test.
PhaseRow run_soak(bool compaction, std::size_t servers, int soak_sec, int rate,
                  std::size_t keyspace, std::uint64_t seed) {
  cluster::Cluster c(base_config(servers, seed, compaction));
  if (!c.await_leader(10s)) {
    std::fprintf(stderr, "FATAL: soak cluster elected no leader\n");
    std::exit(1);
  }

  PhaseRow row;
  row.mode = compaction ? "on" : "off";
  row.phase = "soak";
  row.servers = servers;

  std::uint64_t submitted = 0;
  double peak = current_rss_mib();
  // Four bursts per simulated second keeps per-call overhead low while the
  // stream stays effectively continuous at the Raft timescale (100 ms
  // heartbeats).
  for (int sec = 0; sec < soak_sec; ++sec) {
    for (int burst = 0; burst < 4; ++burst) {
      const NodeId leader = c.current_leader();
      if (leader != kNoNode) {
        for (int i = 0; i < rate / 4; ++i) {
          raft::Command cmd;
          cmd.payload = put_payload(submitted, keyspace);
          if (c.node(leader).submit(std::move(cmd))) ++submitted;
        }
      }
      c.sim().run_for(250ms);
    }
    peak = std::max(peak, current_rss_mib());
  }
  c.sim().run_for(2s);  // drain replication of the final burst

  const NodeId leader = c.current_leader();
  row.ops = submitted;
  row.sim_sec = std::chrono::duration<double>(c.sim().now().time_since_epoch()).count();
  row.peak_rss_mib = peak;
  for (const NodeId id : c.server_ids()) {
    row.log_entries = std::max(row.log_entries, c.node(id).log().size());
    row.snapshots += c.node(id).snapshots_taken();
  }

  if (leader == kNoNode || c.node(leader).commit_index() < submitted) {
    std::fprintf(stderr, "FATAL: soak (%s) did not commit its stream\n", row.mode.c_str());
    std::exit(1);
  }
  if (compaction) {
    // The bounded-memory pin: threshold + trailing + one threshold's worth
    // of unsnapshotted suffix is the largest a live log can legitimately be.
    const auto& r = c.config().raft;
    const std::size_t bound = 2 * r.snapshot_threshold + r.snapshot_trailing;
    if (row.snapshots == 0 || row.log_entries > bound) {
      std::fprintf(stderr,
                   "FATAL: compaction soak unbounded — %zu live entries (bound %zu), "
                   "%llu snapshots\n",
                   row.log_entries, bound, static_cast<unsigned long long>(row.snapshots));
      std::exit(1);
    }
  } else if (row.log_entries < submitted) {
    std::fprintf(stderr, "FATAL: off-mode soak log shrank — compaction not off by default?\n");
    std::exit(1);
  }
  return row;
}

/// Crash/restart a follower behind a large committed log and measure the
/// wall-clock cost of catching back up to the leader's commit index.
PhaseRow run_recovery(bool compaction, std::uint64_t entries, std::size_t reps,
                      std::size_t keyspace, std::uint64_t seed) {
  constexpr std::size_t kServers = 5;
  auto cfg = base_config(kServers, seed, compaction);
  if (compaction) {
    // Larger threshold than the soak's: snapshotting every 1000 entries of a
    // 100k build-up is pure overhead noise; the claim is about recovery.
    cfg.raft.snapshot_threshold = 10'000;
  }
  cluster::Cluster c(std::move(cfg));
  if (!c.await_leader(10s)) {
    std::fprintf(stderr, "FATAL: recovery cluster elected no leader\n");
    std::exit(1);
  }

  PhaseRow row;
  row.mode = compaction ? "on" : "off";
  row.phase = "recovery";
  row.servers = kServers;

  // Build the committed log in batches so replication interleaves with
  // submission instead of queueing the whole stream at once.
  std::uint64_t submitted = 0;
  const NodeId leader = c.current_leader();
  while (submitted < entries) {
    const std::uint64_t batch = std::min<std::uint64_t>(500, entries - submitted);
    for (std::uint64_t i = 0; i < batch; ++i) {
      raft::Command cmd;
      cmd.payload = put_payload(submitted, keyspace);
      if (c.node(leader).submit(std::move(cmd))) ++submitted;
    }
    c.sim().run_for(200ms);
  }
  c.sim().run_for(2s);
  const raft::LogIndex commit = c.node(leader).commit_index();
  if (c.current_leader() != leader || commit < entries) {
    std::fprintf(stderr, "FATAL: recovery build-up did not commit %llu entries\n",
                 static_cast<unsigned long long>(entries));
    std::exit(1);
  }

  const NodeId victim = leader == 1 ? NodeId{2} : NodeId{1};
  using Clock = std::chrono::steady_clock;
  std::vector<double> ms;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    c.crash(victim);
    c.sim().run_for(100ms);
    const auto t0 = Clock::now();
    c.restart(victim);  // storage load + snapshot restore happen here
    row.replayed = commit - c.node(victim).last_applied();
    // Replay is driven by the leader's next append/heartbeat advancing the
    // restarted node's commit index, so run the simulation until caught up.
    while (c.node(victim).last_applied() < commit) c.sim().run_for(5ms);
    ms.push_back(std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }

  row.ops = submitted;
  row.sim_sec = std::chrono::duration<double>(c.sim().now().time_since_epoch()).count();
  row.log_entries = c.node(victim).log().size();
  for (const NodeId id : c.server_ids()) row.snapshots += c.node(id).snapshots_taken();
  row.peak_rss_mib = current_rss_mib();
  row.recovery_ms = median(std::move(ms));

  if (compaction && c.node(victim).snapshot_index() == 0) {
    std::fprintf(stderr, "FATAL: recovery (on) restarted without a snapshot\n");
    std::exit(1);
  }
  if (!compaction && row.replayed < entries) {
    std::fprintf(stderr, "FATAL: recovery (off) replayed %llu < %llu — log was compacted?\n",
                 static_cast<unsigned long long>(row.replayed),
                 static_cast<unsigned long long>(entries));
    std::exit(1);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto servers = static_cast<std::size_t>(cli.get_or("servers", std::int64_t{15}));
  const auto soak_sec = static_cast<int>(cli.get_or("soak-sec", std::int64_t{60}));
  const auto rate = static_cast<int>(cli.get_or("rate", std::int64_t{200}));
  const auto entries =
      static_cast<std::uint64_t>(cli.scaled(cli.get_or("entries", std::int64_t{100'000})));
  const auto reps = static_cast<std::size_t>(cli.get_or("reps", std::int64_t{5}));
  const auto keyspace = static_cast<std::size_t>(cli.get_or("keys", std::int64_t{200}));
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{42}));

  metrics::banner("Snapshot compaction: bounded logs under load, fast restart recovery");
  std::printf("soak: n=%zu, %d sim-s at %d puts/sim-s; recovery: n=5, %llu entries, "
              "%zu reps\n\n",
              servers, soak_sec, rate, static_cast<unsigned long long>(entries), reps);

  // On-mode soak first: RSS samples read current VmRSS, but allocator arenas
  // grown by an earlier unbounded off-phase would still pad the on-phase
  // numbers. Run the bounded claim on a cold heap.
  std::vector<PhaseRow> rows;
  rows.push_back(run_soak(true, servers, soak_sec, rate, keyspace, seed));
  rows.push_back(run_soak(false, servers, soak_sec, rate, keyspace, seed));
  rows.push_back(run_recovery(true, entries, reps, keyspace, seed));
  rows.push_back(run_recovery(false, entries, reps, keyspace, seed));

  // Same seed, and snapshotting is node-local (no messages, no events): the
  // two modes must drive identical command streams.
  if (rows[0].ops != rows[1].ops || rows[2].ops != rows[3].ops) {
    std::fprintf(stderr, "FATAL: committed-op counts diverged between modes\n");
    return 1;
  }

  metrics::Table table({"phase", "mode", "ops", "log", "snaps", "replayed", "rss(MiB)",
                        "recovery(ms)"});
  for (const PhaseRow& r : rows) {
    table.row({r.phase, r.mode, std::to_string(r.ops), std::to_string(r.log_entries),
               std::to_string(r.snapshots), std::to_string(r.replayed),
               metrics::Table::num(r.peak_rss_mib),
               r.recovery_ms < 0 ? "-" : metrics::Table::num(r.recovery_ms)});
  }
  table.print();

  const double speedup = rows[3].recovery_ms / rows[2].recovery_ms;
  std::printf("\nsoak live log: %zu entries (on) vs %zu (off); "
              "recovery: %.1f ms (on) vs %.1f ms (off) — %.1fx\n",
              rows[0].log_entries, rows[1].log_entries, rows[2].recovery_ms,
              rows[3].recovery_ms, speedup);

  // The acceptance pin: at characterization scale a snapshot restore must
  // beat full replay by an order of magnitude. Below 50k entries (CI smoke)
  // fixed costs dominate and only the direction is asserted.
  const double required = entries >= 50'000 ? 10.0 : 1.2;
  if (speedup < required) {
    std::fprintf(stderr, "FATAL: snapshot recovery speedup %.2fx < required %.2fx\n",
                 speedup, required);
    return 1;
  }

  if (const auto csv_path = cli.get("csv")) {
    CsvWriter csv(*csv_path,
                  {"scenario", "mode", "phase", "servers", "sim_sec", "ops", "log_entries",
                   "snapshots", "replayed", "peak_rss_mib", "recovery_ms"});
    for (const PhaseRow& r : rows) {
      csv.row({"fig_compaction", r.mode, r.phase, std::to_string(r.servers),
               CsvWriter::cell(r.sim_sec), std::to_string(r.ops),
               std::to_string(r.log_entries), std::to_string(r.snapshots),
               std::to_string(r.replayed), CsvWriter::cell(r.peak_rss_mib),
               CsvWriter::cell(r.recovery_ms)});
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
