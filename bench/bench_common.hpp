// Shared setup helpers for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "metrics/cdf.hpp"
#include "metrics/report.hpp"
#include "net/condition.hpp"

namespace dyna::bench {

using namespace std::chrono_literals;

/// The paper's single-machine testbed: five 4-core containers demand 20
/// vCPUs of a 12-core Xeon, so node processes stall for tens of
/// milliseconds routinely and for hundreds of milliseconds in the tail
/// (cfs-quota throttling quanta). Calibrated once; applied identically to
/// every variant.
[[nodiscard]] inline net::StallConfig testbed_stalls() {
  net::StallConfig s;
  s.mean_interval = 4s;
  s.duration_median_ms = 25.0;
  s.duration_sigma = 1.4;
  return s;
}

/// Summarize failover samples for reporting.
struct FailoverStats {
  Summary detection;
  Summary ots;
  Summary election;
  double mean_randomized_ms = 0.0;
  std::size_t failed_trials = 0;
};

[[nodiscard]] inline FailoverStats summarize(const std::vector<cluster::FailoverSample>& samples) {
  FailoverStats out;
  std::vector<double> det, ots, el;
  Welford rand_mean;
  for (const auto& s : samples) {
    if (!s.ok) {
      ++out.failed_trials;
      continue;
    }
    det.push_back(s.detection_ms);
    ots.push_back(s.ots_ms);
    el.push_back(s.election_ms);
    rand_mean.add(s.mean_randomized_ms);
  }
  out.detection = Summary::of(det);
  out.ots = Summary::of(ots);
  out.election = Summary::of(el);
  out.mean_randomized_ms = rand_mean.mean();
  return out;
}

[[nodiscard]] inline std::vector<double> detection_samples(
    const std::vector<cluster::FailoverSample>& samples) {
  std::vector<double> v;
  for (const auto& s : samples) {
    if (s.ok) v.push_back(s.detection_ms);
  }
  return v;
}

[[nodiscard]] inline std::vector<double> ots_samples(
    const std::vector<cluster::FailoverSample>& samples) {
  std::vector<double> v;
  for (const auto& s : samples) {
    if (s.ok) v.push_back(s.ots_ms);
  }
  return v;
}

/// Append one variant's failover samples to an open CSV (the committed
/// copies live in bench/reference/; CI uploads fresh runs as artifacts so
/// paper-metric regressions stay diffable).
inline void append_failover_csv(CsvWriter& csv, const std::string& variant,
                                const std::vector<cluster::FailoverSample>& samples) {
  std::size_t kill = 0;
  for (const auto& s : samples) {
    csv.row({variant, CsvWriter::cell(static_cast<double>(kill++)),
             CsvWriter::cell(s.detection_ms), CsvWriter::cell(s.ots_ms),
             CsvWriter::cell(s.election_ms), CsvWriter::cell(s.mean_randomized_ms),
             s.ok ? "1" : "0"});
  }
}

/// Column set matching append_failover_csv.
[[nodiscard]] inline std::vector<std::string> failover_csv_header() {
  return {"variant", "kill", "detection_ms", "ots_ms", "election_ms", "mean_randomized_ms",
          "ok"};
}

/// Print a compact CDF (the paper's Fig 4/8 presentation) to stdout.
inline void print_cdf(const std::string& label, const std::vector<double>& samples_ms) {
  metrics::EmpiricalCdf cdf(samples_ms);
  if (cdf.empty()) {
    std::printf("%s: no samples\n", label.c_str());
    return;
  }
  std::printf("%s CDF (ms): ", label.c_str());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    std::printf("p%.0f=%.0f ", q * 100.0, cdf.quantile(q));
  }
  std::printf("mean=%.0f n=%zu\n", cdf.mean(), cdf.count());
}

}  // namespace dyna::bench
