// Large-cluster scaling study: election latency, steady-state simulation
// throughput and the n*n link-table memory curve at n in {5, 15, 33, 65},
// for baseline Raft and Dynatune.
//
// The paper evaluates at n=3-5; this bench characterizes how far the
// shared-log replication path and the dense O(n) leader fan-out carry the
// harness past that. Two measurement classes per (variant, n) cell:
//
//   * deterministic (pure functions of the seed): election latency of the
//     initial election, detection/OTS means over a short leader-kill sweep,
//     and executed simulation events per steady idle cluster-second;
//   * machine-dependent: wall-clock simulation throughput (cluster-seconds
//     simulated per wall second) and the process peak RSS (VmHWM) — the
//     CI gate compares these only under a matching --runner-class (see
//     tools/check_bench_csv.py), since absolute numbers move across hosts.
//
// The link-table column is exact: the dense n*n per-directed-link state the
// network keeps (bench/reference/fig_scale.csv pins the whole table).
//
// Usage: fig_scale [--sizes=5,15,33,65] [--kills=N] [--steady-sec=S]
//                  [--seed=S] [--threads=T] [--csv=FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

/// Peak resident set size of this process in MiB (Linux VmHWM), or -1 where
/// /proc is unavailable. Monotone over the process lifetime — the bench runs
/// sizes ascending, so each row reports the high-water mark through its own
/// (largest-so-far) configuration.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return -1.0;
}

struct ScaleRow {
  std::string variant;
  std::size_t servers = 0;
  double elect_ms = 0.0;            ///< start -> first leader (simulated)
  double detect_ms = 0.0;           ///< mean over the kill sweep
  double ots_ms = 0.0;              ///< mean over the kill sweep
  double events_per_sim_sec = 0.0;  ///< executed events per steady idle second
  double sim_sec_per_wall_sec = 0.0;
  double link_table_bytes = 0.0;
  double peak_rss_mib = 0.0;
};

ScaleRow measure_cell(scenario::Variant variant, std::size_t n, std::size_t kills,
                      Duration steady, std::uint64_t seed) {
  ScaleRow row;
  row.variant = std::string(to_string(variant));
  row.servers = n;

  scenario::ScenarioSpec spec;
  spec.name = "fig_scale";
  spec.variant = variant;
  spec.servers = n;
  spec.seed = seed;
  spec.topology = scenario::TopologySpec::constant(100ms);
  spec.faults = scenario::FaultPlan::leader_kills(kills, /*settle=*/5s);

  // ---- Deterministic election metrics through the scenario runner ----
  {
    auto c = scenario::ScenarioRunner::materialize(spec);
    const bool elected = c->await_leader(60s);
    row.elect_ms = elected ? to_ms(c->sim().now()) : -1.0;
  }
  const scenario::ScenarioResult result = scenario::ScenarioRunner::run(spec);
  const scenario::FailoverStats stats = scenario::summarize_failovers(result.failovers);
  row.detect_ms = stats.detection.mean;
  row.ots_ms = stats.ots.mean;

  // ---- Steady-state throughput: time an idle stretch of simulation ----
  // Three back-to-back windows; the wall-clock column takes the median so
  // the CI timing band gates on something a cache hiccup cannot move 2x.
  // The event rate spans all windows (it is deterministic either way).
  {
    auto c = scenario::ScenarioRunner::materialize(spec);
    c->await_leader(60s);
    c->sim().run_for(2s);  // settle heartbeat cadence
    constexpr int kWindows = 3;
    const std::size_t events_before = c->sim().executed();
    double window_sec[kWindows];
    for (double& w : window_sec) {
      const auto wall_start = std::chrono::steady_clock::now();
      c->sim().run_for(steady);
      w = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    }
    std::sort(window_sec, window_sec + kWindows);
    const double wall = window_sec[kWindows / 2];
    row.events_per_sim_sec = static_cast<double>(c->sim().executed() - events_before) /
                             (kWindows * to_sec(steady));
    row.sim_sec_per_wall_sec = wall > 0.0 ? to_sec(steady) / wall : -1.0;
    row.link_table_bytes = static_cast<double>(c->network().link_table_bytes());
  }
  row.peak_rss_mib = peak_rss_mib();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto sizes = cli.get_sizes("sizes", {5, 15, 33, 65});
  const auto kills = static_cast<std::size_t>(cli.scaled(cli.get_or("kills", std::int64_t{3})));
  const auto steady_sec = cli.get_or("steady-sec", std::int64_t{5});
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));

  metrics::banner("Scaling study: election latency, sim throughput, link-table memory");
  std::printf("sizes:");
  for (const std::size_t n : sizes) std::printf(" %zu", n);
  std::printf("; kills per cell: %zu; steady window: %llds\n\n", kills,
              static_cast<long long>(steady_sec));

  metrics::Table table({"variant", "n", "elect(ms)", "detect(ms)", "OTS(ms)", "events/sim-s",
                        "sim-s/wall-s", "link table", "peak RSS"});
  std::vector<ScaleRow> rows;
  for (const scenario::Variant variant :
       {scenario::Variant::Raft, scenario::Variant::Dynatune}) {
    for (const std::size_t n : sizes) {
      ScaleRow row = measure_cell(variant, n, kills, std::chrono::seconds(steady_sec), seed);
      table.row({row.variant, std::to_string(row.servers), metrics::Table::num(row.elect_ms),
                 metrics::Table::num(row.detect_ms), metrics::Table::num(row.ots_ms),
                 metrics::Table::num(row.events_per_sim_sec),
                 metrics::Table::num(row.sim_sec_per_wall_sec),
                 std::to_string(static_cast<std::size_t>(row.link_table_bytes)) + " B",
                 metrics::Table::num(row.peak_rss_mib) + " MiB"});
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::printf("\nlink table = dense n*n per-directed-link state; RSS = process VmHWM\n");

  if (const auto csv_path = cli.get("csv")) {
    CsvWriter csv(*csv_path,
                  {"scenario", "variant", "servers", "seed", "elect_ms", "detect_ms", "ots_ms",
                   "events_per_sim_sec", "sim_sec_per_wall_sec", "link_table_bytes",
                   "peak_rss_mib"});
    for (const ScaleRow& r : rows) {
      csv.row({"fig_scale", r.variant, std::to_string(r.servers), std::to_string(seed),
               CsvWriter::cell(r.elect_ms), CsvWriter::cell(r.detect_ms),
               CsvWriter::cell(r.ots_ms), CsvWriter::cell(r.events_per_sim_sec),
               CsvWriter::cell(r.sim_sec_per_wall_sec), CsvWriter::cell(r.link_table_bytes),
               CsvWriter::cell(r.peak_rss_mib)});
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}
