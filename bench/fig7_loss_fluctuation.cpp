// Fig 7: adaptivity to packet-loss fluctuations (h tuning + CPU cost).
//
// RTT fixed at 200 ms; the loss rate steps 0 -> 30 % -> 0 in 5 % increments,
// each held for a while (paper: 3 min). Variants: Dynatune (loss-driven K)
// vs Fix-K (K pinned to 10, Et still tuned). Server counts N in {5, 17, 65}.
// We sample, per bin: the leader's mean heartbeat interval toward followers,
// leader/follower CPU % (perf model), and we count elections (paper: zero
// for both variants in every configuration).
//
// Paper shapes (Fig 7a/b): Dynatune's h sits near Et (~250 ms at p=0; with
// our K>=2 floor, near Et/2), dives as loss grows (more heartbeats to keep
// delivery probability >= x), recovers as loss recedes; Fix-K's h stays flat
// ~Et/10. Fix-K's leader burns several times more CPU (N=65: saturating a
// core), with Dynatune peaking only under high loss.
//
// Usage: fig7_loss_fluctuation [--hold=SECONDS] [--servers=5,17,65] [--seed=S]
//        [--csv=FILE]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"

namespace {

using namespace dyna;
using namespace std::chrono_literals;

scenario::ScenarioSpec fig7_spec(bool fixk, std::size_t servers, Duration hold,
                                 std::uint64_t seed) {
  net::LinkCondition base;
  base.rtt = 200ms;
  base.jitter = 2ms;

  scenario::ScenarioSpec spec;
  spec.name = "fig7";
  spec.variant = fixk ? scenario::Variant::FixK : scenario::Variant::Dynatune;
  spec.fix_k = 10;
  spec.servers = servers;
  spec.seed = seed;
  spec.topology.schedule = net::ConditionSchedule::loss_ramp_up_down(base, 0.0, 0.30, 0.05, hold);
  // The N=65 run used a dedicated m6a.48xlarge (no CPU oversubscription):
  // no stall process here, only the perf model.
  cluster::CostModel cost;
  cost.charge_tuning = true;  // both variants carry the measurement plumbing
  spec.perf_cost = cost;
  spec.perf_bin = 5s;
  // 0..30..0 in 5% steps = 13 levels.
  spec.samples = scenario::SamplePlan::every(5s, hold * 13 + 10s, /*kth=*/3);
  return spec;
}

void print_run(const scenario::ScenarioResult& r, Duration print_every) {
  std::printf("\n--- %s, N=%zu: heartbeat interval & CPU per %.0fs ---\n", r.variant.c_str(),
              r.servers, to_sec(print_every));
  std::printf("%8s %9s %8s %12s %14s\n", "t(s)", "loss(%)", "h(ms)", "leaderCPU(%)",
              "followerCPU(%)");
  const auto stride =
      static_cast<std::size_t>(std::max(1.0, to_sec(print_every) / 5.0));
  for (std::size_t i = 0; i < r.samples.size(); i += stride) {
    const auto& p = r.samples[i];
    if (p.h_mean_ms < 0.0) continue;  // leaderless bin
    std::printf("%8.0f %9.1f %8.0f %12.1f %14.2f\n", p.t_sec, p.loss_pct, p.h_mean_ms,
                p.leader_cpu_pct, p.follower_cpu_pct);
  }
  double cpu_sum = 0.0, cpu_max = 0.0;
  std::size_t cpu_n = 0;
  for (const auto& p : r.samples) {
    if (p.leader_cpu_pct < 0.0) continue;
    cpu_sum += p.leader_cpu_pct;
    cpu_max = std::max(cpu_max, p.leader_cpu_pct);
    ++cpu_n;
  }
  std::printf("%s N=%zu summary: elections=%zu (paper: 0), timer expiries=%zu, "
              "leader CPU mean=%.1f%% max=%.1f%%\n",
              r.variant.c_str(), r.servers, r.elections, r.timer_expiries,
              cpu_n > 0 ? cpu_sum / static_cast<double>(cpu_n) : 0.0, cpu_max);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  // Default hold 30 s per loss level for a quick run; paper used 180 s.
  const auto hold = std::chrono::seconds(cli.scaled(cli.get_or("hold", std::int64_t{30})));
  const std::vector<std::size_t> server_counts = cli.get_sizes("servers", {5, 17, 65});

  metrics::banner("Fig 7: packet-loss fluctuation 0->30%->0 at RTT 200 ms, Dynatune vs Fix-K");
  std::printf("hold per loss level: %.0f s (paper: 180 s)\n", to_sec(Duration(hold)));

  std::unique_ptr<scenario::CsvSink> csv;
  const auto csv_path = cli.get("csv");
  if (csv_path) {
    csv = std::make_unique<scenario::CsvSink>(*csv_path, scenario::CsvSection::Samples);
  }

  for (const std::size_t n : server_counts) {
    for (const bool fixk : {false, true}) {
      const scenario::ScenarioResult r =
          scenario::ScenarioRunner::run(fig7_spec(fixk, n, hold, seed));
      print_run(r, std::chrono::seconds(std::max<std::int64_t>(30, hold.count() / 2)));
      if (csv != nullptr) csv->consume(r);
    }
  }
  if (csv_path) std::printf("wrote %s\n", csv_path->c_str());
  return 0;
}
