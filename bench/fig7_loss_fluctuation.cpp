// Fig 7: adaptivity to packet-loss fluctuations (h tuning + CPU cost).
//
// RTT fixed at 200 ms; the loss rate steps 0 -> 30 % -> 0 in 5 % increments,
// each held for a while (paper: 3 min). Variants: Dynatune (loss-driven K)
// vs Fix-K (K pinned to 10, Et still tuned). Server counts N in {5, 17, 65}.
// We sample, per bin: the leader's mean heartbeat interval toward followers,
// leader/follower CPU % (perf model), and we count elections (paper: zero
// for both variants in every configuration).
//
// Paper shapes (Fig 7a/b): Dynatune's h sits near Et (~250 ms at p=0; with
// our K>=2 floor, near Et/2), dives as loss grows (more heartbeats to keep
// delivery probability >= x), recovers as loss recedes; Fix-K's h stays flat
// ~Et/10. Fix-K's leader burns several times more CPU (N=65: saturating a
// core), with Dynatune peaking only under high loss.
//
// Usage: fig7_loss_fluctuation [--hold=SECONDS] [--servers=5,17,65] [--seed=S]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace dyna;
using namespace dyna::bench;

struct LossRunResult {
  std::string variant;
  std::size_t servers = 0;
  metrics::TimeSeries heartbeat_ms{"h"};
  metrics::TimeSeries leader_cpu{"leader-cpu"};
  metrics::TimeSeries follower_cpu{"follower-cpu"};
  metrics::TimeSeries loss{"loss"};
  std::size_t elections = 0;
  std::size_t expiries = 0;
};

LossRunResult run_loss_experiment(bool fixk, std::size_t servers, Duration hold,
                                  std::uint64_t seed) {
  using namespace std::chrono_literals;

  net::LinkCondition base;
  base.rtt = 200ms;
  base.jitter = 2ms;

  cluster::ClusterConfig cfg = fixk ? cluster::make_fixk_config(servers, seed)
                                    : cluster::make_dynatune_config(servers, seed);
  cfg.links = net::ConditionSchedule::loss_ramp_up_down(base, 0.0, 0.30, 0.05, hold);
  // The N=65 run used a dedicated m6a.48xlarge (no CPU oversubscription):
  // no stall process here, only the perf model.
  cluster::CostModel cost;
  cost.charge_tuning = true;  // both variants carry the measurement plumbing
  cfg.perf_cost = cost;
  cfg.perf_bin = 5s;

  cluster::Cluster c(std::move(cfg));
  c.await_leader(30s);
  const TimePoint experiment_start = c.sim().now();

  LossRunResult out;
  out.variant = fixk ? "Fix-K" : "Dynatune";
  out.servers = servers;

  const Duration total = hold * 13 + 10s;  // 0..30..0 in 5% steps = 13 levels
  const Duration sample = 5s;
  const auto steps = static_cast<std::size_t>(total.count() / sample.count());
  for (std::size_t i = 0; i < steps; ++i) {
    c.sim().run_for(sample);
    const TimePoint now = c.sim().now();
    const NodeId leader = c.current_leader();
    if (leader == kNoNode) continue;

    // Leader's mean heartbeat interval across followers.
    double h_sum = 0.0;
    int h_n = 0;
    for (const NodeId id : c.server_ids()) {
      if (id == leader) continue;
      if (auto* n = c.node_if_alive(leader); n != nullptr) {
        h_sum += to_ms(n->effective_heartbeat_interval(id));
        ++h_n;
      }
    }
    if (h_n > 0) out.heartbeat_ms.push(now, h_sum / h_n);
    out.loss.push(now, c.network().condition(0, 1).loss * 100.0);

    const NodeId follower = leader == 0 ? 1 : 0;
    out.leader_cpu.push(now, c.perf()->cpu_percent_at(leader, now - sample));
    out.follower_cpu.push(now, c.perf()->cpu_percent_at(follower, now - sample));
  }
  out.elections = c.probe().elections_started_in(experiment_start, c.sim().now());
  out.expiries = c.probe().timeouts().size();
  return out;
}

void print_run(const LossRunResult& r, Duration print_every) {
  std::printf("\n--- %s, N=%zu: heartbeat interval & CPU per %.0fs ---\n", r.variant.c_str(),
              r.servers, to_sec(print_every));
  std::printf("%8s %9s %8s %12s %14s\n", "t(s)", "loss(%)", "h(ms)", "leaderCPU(%)",
              "followerCPU(%)");
  const auto stride =
      static_cast<std::size_t>(std::max(1.0, to_sec(print_every) / 5.0));
  const auto& hp = r.heartbeat_ms.points();
  for (std::size_t i = 0; i < hp.size(); i += stride) {
    std::printf("%8.0f %9.1f %8.0f %12.1f %14.2f\n", hp[i].t_sec, r.loss.points()[i].value,
                hp[i].value, r.leader_cpu.points()[i].value, r.follower_cpu.points()[i].value);
  }
  std::printf("%s N=%zu summary: elections=%zu (paper: 0), timer expiries=%zu, "
              "leader CPU mean=%.1f%% max=%.1f%%\n",
              r.variant.c_str(), r.servers, r.elections, r.expiries,
              r.leader_cpu.mean_in(0, 1e18), r.leader_cpu.max_value());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  // Default hold 30 s per loss level for a quick run; paper used 180 s.
  const auto hold = std::chrono::seconds(cli.scaled(cli.get_or("hold", std::int64_t{30})));
  const std::string servers_arg = cli.get_or("servers", std::string("5,17,65"));

  std::vector<std::size_t> server_counts;
  std::stringstream ss(servers_arg);
  for (std::string tok; std::getline(ss, tok, ',');) {
    server_counts.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }

  metrics::banner("Fig 7: packet-loss fluctuation 0->30%->0 at RTT 200 ms, Dynatune vs Fix-K");
  std::printf("hold per loss level: %.0f s (paper: 180 s)\n", to_sec(Duration(hold)));

  for (const std::size_t n : server_counts) {
    for (const bool fixk : {false, true}) {
      const LossRunResult r = run_loss_experiment(fixk, n, hold, seed);
      print_run(r, std::chrono::seconds(std::max<std::int64_t>(30, hold.count() / 2)));
    }
  }
  return 0;
}
